/**
 * @file
 * Serving-subsystem tests: the fused batch cull against per-view
 * frustumCull (exact membership in every build flavor), the fused
 * multi-view forward against sequential renderForward (bitwise, SIMD
 * and scalar configs, mixed resolutions, arena reuse), model snapshots
 * (versioning, hashing, buffer reuse), and the RenderService end to end
 * — including snapshot-swap-under-load: every served frame must be
 * reproducible from exactly the published snapshot it claims, which a
 * torn read could not satisfy.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "math/rng.hpp"
#include "render/batch.hpp"
#include "render/culling.hpp"
#include "render/rasterizer.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"
#include "serve/render_service.hpp"
#include "serve/snapshot.hpp"

namespace clm {
namespace {

/** Bitwise comparison of two forward-pass outputs. */
void
expectOutputsIdentical(const RenderOutput &a, const RenderOutput &b)
{
    ASSERT_EQ(a.image.width(), b.image.width());
    ASSERT_EQ(a.image.height(), b.image.height());
    EXPECT_EQ(a.image.data(), b.image.data());
    EXPECT_EQ(a.final_t, b.final_t);
    EXPECT_EQ(a.n_contrib, b.n_contrib);
    EXPECT_EQ(a.isect_vals, b.isect_vals);
    ASSERT_EQ(a.tile_ranges.size(), b.tile_ranges.size());
    for (size_t t = 0; t < a.tile_ranges.size(); ++t) {
        EXPECT_EQ(a.tile_ranges[t].begin, b.tile_ranges[t].begin);
        EXPECT_EQ(a.tile_ranges[t].end, b.tile_ranges[t].end);
    }
    EXPECT_EQ(a.tiles_x, b.tiles_x);
    EXPECT_EQ(a.tiles_y, b.tiles_y);
}

struct BatchFixture
{
    GaussianModel model;
    std::vector<Camera> cameras;

    explicit BatchFixture(size_t n_gaussians = 1500, int width = 96,
                          int height = 61)
    {
        SceneSpec spec = SceneSpec::bicycle();
        model = generateSceneGaussians(spec, n_gaussians);
        cameras = generateCameraPath(spec, 6, width, height);
    }
};

TEST(FrustumCullBatch, MatchesPerViewCullExactly)
{
    BatchFixture fix;
    for (size_t batch : {size_t(1), size_t(3), size_t(5)}) {
        std::vector<Camera> cams(fix.cameras.begin(),
                                 fix.cameras.begin() + batch);
        BatchCullScratch scratch;
        std::vector<std::vector<uint32_t>> subsets;
        frustumCullBatch(fix.model, cams, scratch, subsets);
        ASSERT_EQ(subsets.size(), batch);
        for (size_t v = 0; v < batch; ++v)
            EXPECT_EQ(subsets[v], frustumCull(fix.model, cams[v]))
                << "batch " << batch << " view " << v;
    }
}

TEST(FrustumCullBatch, SnapshotScopedCullCacheIsBitwiseNeutral)
{
    // Satellite of the sharding PR: passing the same non-zero cache
    // key again must skip the shared SoA rebuild (the stage is a pure
    // function of the model) without changing any membership; a new
    // key over a *changed* model must invalidate and rebuild.
    BatchFixture fix;
    std::vector<Camera> cams(fix.cameras.begin(), fix.cameras.begin() + 3);
    BatchCullScratch cached, fresh;
    std::vector<std::vector<uint32_t>> a, b, c;

    frustumCullBatch(fix.model, cams, cached, a, true, /*cache_key=*/7);
    EXPECT_EQ(cached.cached_key, 7u);
    // Poison detector: a cached second call must not touch the stage
    // (same key + size), and must produce identical subsets.
    const std::vector<float> stage_before = cached.neg_thresh;
    frustumCullBatch(fix.model, cams, cached, b, true, /*cache_key=*/7);
    EXPECT_EQ(cached.neg_thresh, stage_before);
    EXPECT_EQ(a, b);
    for (size_t v = 0; v < cams.size(); ++v)
        EXPECT_EQ(a[v], frustumCull(fix.model, cams[v]));

    // Model changed, key advanced: results must track the new model.
    GaussianModel moved = fix.model;
    for (size_t i = 0; i < moved.size(); ++i)
        moved.position(i).x += 3.0f;
    frustumCullBatch(moved, cams, cached, c, true, /*cache_key=*/8);
    EXPECT_EQ(cached.cached_key, 8u);
    std::vector<std::vector<uint32_t>> ref;
    frustumCullBatch(moved, cams, fresh, ref);
    EXPECT_EQ(c, ref);

    // Key 0 untags: the next keyed call cannot falsely hit.
    frustumCullBatch(fix.model, cams, cached, b, true, /*cache_key=*/0);
    EXPECT_EQ(cached.cached_key, 0u);
    EXPECT_EQ(b, a);
}

TEST(ServeStats, LatencyReservoirSlotsAreDeterministic)
{
    // Satellite: reservoir membership is a pure function of
    // (seed, observation index), so benched p50/p99 are reproducible
    // run-to-run — no shared-RNG draw order involved.
    for (uint64_t seed : {uint64_t(0x5e12e), uint64_t(1), uint64_t(42)}) {
        size_t hits = 0;
        for (uint64_t i = 4097; i < 8192; ++i) {
            const uint64_t j = latencyReservoirSlot(seed, i);
            EXPECT_EQ(j, latencyReservoirSlot(seed, i));    // pure
            EXPECT_LT(j, i);                                // in range
            if (j < 4096)
                ++hits;
        }
        // Algorithm R keeps the sample uniform: the acceptance rate
        // over indices (R, 2R] is ~R * (H(2R) - H(R)) ≈ R ln 2 — allow
        // generous slack, this is a sanity band, not a statistics test.
        EXPECT_GT(hits, 4096 * 0.55);
        EXPECT_LT(hits, 4096 * 0.85);
    }
    // Different seeds sample different index sets (the seed matters).
    size_t differs = 0;
    for (uint64_t i = 4097; i < 4197; ++i)
        if (latencyReservoirSlot(1, i) != latencyReservoirSlot(2, i))
            ++differs;
    EXPECT_GT(differs, 50u);
}

TEST(FrustumCullBatch, SerialAndParallelIdentical)
{
    BatchFixture fix;
    std::vector<Camera> cams(fix.cameras.begin(), fix.cameras.begin() + 4);
    BatchCullScratch s1, s2;
    std::vector<std::vector<uint32_t>> a, b;
    frustumCullBatch(fix.model, cams, s1, a, /*parallel=*/false);
    frustumCullBatch(fix.model, cams, s2, b, /*parallel=*/true);
    EXPECT_EQ(a, b);
}

void
checkBatchAgainstSequential(const BatchFixture &fix,
                            const std::vector<Camera> &cams,
                            const RenderConfig &cfg)
{
    std::vector<std::vector<uint32_t>> subsets(cams.size());
    for (size_t v = 0; v < cams.size(); ++v)
        subsets[v] = frustumCull(fix.model, cams[v]);

    BatchRenderArena batch_arena;
    renderForwardBatch(fix.model, cams, subsets, cfg, batch_arena);

    for (size_t v = 0; v < cams.size(); ++v) {
        RenderOutput seq =
            renderForward(fix.model, cams[v], subsets[v], cfg);
        SCOPED_TRACE("view " + std::to_string(v));
        expectOutputsIdentical(batch_arena.views[v].out, seq);
    }
}

TEST(RenderForwardBatch, BitwiseIdenticalToSequentialSimd)
{
    BatchFixture fix;
    std::vector<Camera> cams(fix.cameras.begin(), fix.cameras.begin() + 3);
    RenderConfig cfg;
    cfg.sh_degree = 2;
    cfg.use_simd = true;    // scalar fallback in CLM_DISABLE_SIMD builds
    checkBatchAgainstSequential(fix, cams, cfg);
}

TEST(RenderForwardBatch, BitwiseIdenticalToSequentialScalar)
{
    BatchFixture fix;
    std::vector<Camera> cams(fix.cameras.begin(), fix.cameras.begin() + 3);
    RenderConfig cfg;
    cfg.sh_degree = 2;
    cfg.use_simd = false;    // the scalar reference compositor
    checkBatchAgainstSequential(fix, cams, cfg);
}

TEST(RenderForwardBatch, MixedResolutionsAndEmptySubset)
{
    BatchFixture fix;
    std::vector<Camera> cams;
    cams.push_back(fix.cameras[0]);
    // A different resolution in the same batch (different tile grid).
    cams.push_back(Camera::lookAt(Vec3{6, 0, 2}, Vec3{0, 0, 1},
                                  Vec3{0, 0, 1}, 64, 48, 0.9f, 0.05f,
                                  11.0f));
    // Looking straight away from the scene: empty subset.
    cams.push_back(Camera::lookAt(Vec3{40, 0, 2}, Vec3{80, 0, 2},
                                  Vec3{0, 0, 1}, 48, 32, 0.9f, 0.05f,
                                  11.0f));
    RenderConfig cfg;
    cfg.sh_degree = 1;
    std::vector<std::vector<uint32_t>> subsets(cams.size());
    for (size_t v = 0; v < cams.size(); ++v)
        subsets[v] = frustumCull(fix.model, cams[v]);
    EXPECT_TRUE(subsets[2].empty());

    BatchRenderArena arena;
    renderForwardBatch(fix.model, cams, subsets, cfg, arena);
    for (size_t v = 0; v < cams.size(); ++v) {
        RenderOutput seq =
            renderForward(fix.model, cams[v], subsets[v], cfg);
        SCOPED_TRACE("view " + std::to_string(v));
        expectOutputsIdentical(arena.views[v].out, seq);
    }
}

TEST(RenderForwardBatch, AllSubsetsEmptyRendersBackgrounds)
{
    // Regression: a coalesced batch whose every view sees no Gaussians
    // must render plain backgrounds (the flat pair list is empty; the
    // view-probe of each fused pass has nothing to walk).
    BatchFixture fix(200);
    std::vector<Camera> cams;
    for (int v = 0; v < 3; ++v)
        cams.push_back(Camera::lookAt(Vec3{40.0f + v, 0, 2},
                                      Vec3{80, 0, 2}, Vec3{0, 0, 1}, 48,
                                      32, 0.9f, 0.05f, 11.0f));
    RenderConfig cfg;
    cfg.background = {0.25f, 0.5f, 0.75f};
    std::vector<std::vector<uint32_t>> subsets(cams.size());
    for (size_t v = 0; v < cams.size(); ++v) {
        subsets[v] = frustumCull(fix.model, cams[v]);
        ASSERT_TRUE(subsets[v].empty());
    }
    BatchRenderArena arena;
    renderForwardBatch(fix.model, cams, subsets, cfg, arena);
    for (size_t v = 0; v < cams.size(); ++v) {
        RenderOutput seq =
            renderForward(fix.model, cams[v], subsets[v], cfg);
        SCOPED_TRACE("view " + std::to_string(v));
        expectOutputsIdentical(arena.views[v].out, seq);
        const Vec3 px = arena.views[v].out.image.pixel(0, 0);
        EXPECT_EQ(px.x, 0.25f);
        EXPECT_EQ(px.y, 0.5f);
        EXPECT_EQ(px.z, 0.75f);
    }
}

TEST(RenderForwardBatch, ArenaReuseIsBitwiseNeutral)
{
    BatchFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 2;
    BatchRenderArena reused;
    // Render a larger batch first so every scratch buffer is dirty and
    // over-sized for the second call.
    {
        std::vector<Camera> warm(fix.cameras.begin(),
                                 fix.cameras.begin() + 4);
        std::vector<std::vector<uint32_t>> subsets(4);
        for (size_t v = 0; v < 4; ++v)
            subsets[v] = frustumCull(fix.model, warm[v]);
        renderForwardBatch(fix.model, warm, subsets, cfg, reused);
    }
    std::vector<Camera> cams(fix.cameras.begin() + 4,
                             fix.cameras.begin() + 6);
    std::vector<std::vector<uint32_t>> subsets(2);
    for (size_t v = 0; v < 2; ++v)
        subsets[v] = frustumCull(fix.model, cams[v]);
    renderForwardBatch(fix.model, cams, subsets, cfg, reused);

    BatchRenderArena fresh;
    renderForwardBatch(fix.model, cams, subsets, cfg, fresh);
    for (size_t v = 0; v < 2; ++v) {
        SCOPED_TRACE("view " + std::to_string(v));
        expectOutputsIdentical(reused.views[v].out, fresh.views[v].out);
    }
}

TEST(SnapshotSlot, PublishesVersionsAndHashes)
{
    BatchFixture fix(300);
    SnapshotSlot slot;
    EXPECT_EQ(slot.version(), 0u);
    EXPECT_EQ(slot.acquire(), nullptr);

    slot.publish(fix.model, 0);
    auto s1 = slot.acquire();
    ASSERT_NE(s1, nullptr);
    EXPECT_EQ(s1->version, 1u);
    EXPECT_EQ(s1->train_step, 0);
    EXPECT_EQ(s1->model.size(), fix.model.size());
    EXPECT_EQ(s1->param_hash, hashModelParams(fix.model));

    // A parameter change must land in a NEW snapshot with a new hash;
    // the acquired one stays frozen.
    const uint64_t old_hash = s1->param_hash;
    fix.model.position(0).x += 1.0f;
    slot.publish(fix.model, 7);
    auto s2 = slot.acquire();
    ASSERT_NE(s2, nullptr);
    EXPECT_EQ(s2->version, 2u);
    EXPECT_EQ(s2->train_step, 7);
    EXPECT_NE(s2->param_hash, old_hash);
    EXPECT_EQ(s1->param_hash, old_hash);
    EXPECT_EQ(s1->version, 1u);
}

TEST(SnapshotSlot, ReusesRetiredBuffersWhenUnreferenced)
{
    BatchFixture fix(200);
    SnapshotSlot slot;
    slot.publish(fix.model, 0);
    slot.publish(fix.model, 1);
    const ModelSnapshot *retired = slot.acquire().get();
    // With no outside readers, the buffer retired by the next publish
    // must be recycled by the one after it (double buffering).
    slot.publish(fix.model, 2);
    slot.publish(fix.model, 3);
    EXPECT_EQ(slot.acquire().get(), retired);
    EXPECT_EQ(slot.acquire()->version, 4u);
}

TEST(RenderService, ServesFramesIdenticalToDirectRenders)
{
    BatchFixture fix(800);
    SnapshotSlot slot;
    slot.publish(fix.model, 0);

    ServeConfig cfg;
    cfg.workers = 2;
    cfg.max_batch = 4;
    cfg.render.sh_degree = 1;
    RenderService service(slot, cfg);

    std::vector<std::future<RenderResponse>> futs;
    for (int r = 0; r < 12; ++r)
        futs.push_back(service.submit(fix.cameras[r % 6]));
    for (int r = 0; r < 12; ++r) {
        RenderResponse resp = futs[r].get();
        EXPECT_EQ(resp.snapshot_version, 1u);
        EXPECT_GE(resp.batch_size, 1);
        auto subset = frustumCull(fix.model, fix.cameras[r % 6]);
        Image direct = renderForward(fix.model, fix.cameras[r % 6],
                                     subset, cfg.render)
                           .image;
        EXPECT_EQ(resp.image.data(), direct.data()) << "request " << r;
    }
    service.stop();
    ServeStats stats = service.stats();
    EXPECT_EQ(stats.requests, 12u);
    EXPECT_GE(stats.batches, 3u);    // 12 requests, batches of <= 4
    EXPECT_LE(stats.p50_ms, stats.p99_ms);
    EXPECT_EQ(stats.min_snapshot_version, 1u);
    EXPECT_EQ(stats.max_snapshot_version, 1u);
}

TEST(RenderService, ViewAtATimeModeMatchesFused)
{
    BatchFixture fix(600);
    SnapshotSlot slot;
    slot.publish(fix.model, 0);

    ServeConfig fused_cfg;
    fused_cfg.max_batch = 4;
    fused_cfg.render.sh_degree = 1;
    ServeConfig single_cfg = fused_cfg;
    single_cfg.fused_batch = false;

    std::vector<Image> fused_frames, single_frames;
    for (const ServeConfig &cfg : {fused_cfg, single_cfg}) {
        RenderService service(slot, cfg);
        std::vector<std::future<RenderResponse>> futs;
        for (int r = 0; r < 8; ++r)
            futs.push_back(service.submit(fix.cameras[r % 6]));
        auto &frames =
            cfg.fused_batch ? fused_frames : single_frames;
        for (auto &f : futs)
            frames.push_back(f.get().image);
    }
    for (size_t r = 0; r < fused_frames.size(); ++r)
        EXPECT_EQ(fused_frames[r].data(), single_frames[r].data())
            << "request " << r;
}

/**
 * Snapshot-swap-under-load: a publisher thread keeps mutating the model
 * and republishing while client threads hammer the service. Every
 * response must be bitwise reproducible from the *published* model copy
 * of the version it claims — a torn or half-published snapshot could
 * not satisfy this for any version. Runs under ASan/UBSan via
 * scripts/verify.sh like every suite.
 */
TEST(RenderService, SnapshotSwapUnderLoadIsRaceFree)
{
    BatchFixture fix(400, 64, 48);
    SnapshotSlot slot;

    // Deterministic model sequence; keep a private copy per version.
    std::map<uint64_t, GaussianModel> published;
    std::map<uint64_t, uint64_t> published_hash;
    GaussianModel work = fix.model;
    auto publish_next = [&](int step) {
        Rng rng(1000 + step);
        for (int k = 0; k < 50; ++k) {
            size_t i = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(work.size()) - 1));
            work.position(i).x += 0.01f * static_cast<float>(step % 7);
            work.rawOpacity(i) += 0.01f;
        }
        slot.publish(work, step);
        const uint64_t v = slot.version();
        published.emplace(v, work);
        published_hash[v] = hashModelParams(work);
    };
    publish_next(0);

    ServeConfig cfg;
    cfg.workers = 2;
    cfg.max_batch = 4;
    cfg.render.sh_degree = 1;
    RenderService service(slot, cfg);

    std::atomic<bool> stop_publishing{false};
    std::thread publisher([&] {
        // Capped + throttled: each publish stores a full model copy for
        // later verification, so keep the version count bounded.
        for (int step = 1; step <= 300 && !stop_publishing.load();
             ++step) {
            publish_next(step);
            std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
    });

    constexpr int kClients = 3;
    constexpr int kPerClient = 20;
    std::vector<RenderResponse> responses(kClients * kPerClient);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int r = 0; r < kPerClient; ++r) {
                const Camera &cam = fix.cameras[(c + r) % 6];
                responses[c * kPerClient + r] =
                    service.submit(cam).get();
            }
        });
    }
    for (auto &t : clients)
        t.join();
    stop_publishing = true;
    publisher.join();
    service.stop();

    // Verify every served frame against the recorded publish of its
    // claimed version.
    for (int c = 0; c < kClients; ++c) {
        for (int r = 0; r < kPerClient; ++r) {
            const RenderResponse &resp = responses[c * kPerClient + r];
            auto it = published.find(resp.snapshot_version);
            ASSERT_NE(it, published.end())
                << "served an unpublished version "
                << resp.snapshot_version;
            EXPECT_EQ(resp.snapshot_hash,
                      published_hash[resp.snapshot_version]);
            const Camera &cam = fix.cameras[(c + r) % 6];
            auto subset = frustumCull(it->second, cam);
            Image direct =
                renderForward(it->second, cam, subset, cfg.render).image;
            EXPECT_EQ(resp.image.data(), direct.data())
                << "client " << c << " request " << r << " version "
                << resp.snapshot_version;
        }
    }
    ServeStats stats = service.stats();
    EXPECT_EQ(stats.requests,
              static_cast<uint64_t>(kClients * kPerClient));
    EXPECT_GE(stats.max_snapshot_version, stats.min_snapshot_version);
}

/**
 * Satellite regression: submit() after stop() must fulfill a
 * RejectedShutdown response — future::get() never throws
 * std::future_error (the old contract silently dropped the promise).
 */
TEST(RenderService, SubmitAfterStopResolvesRejectedShutdown)
{
    BatchFixture fix(300);
    SnapshotSlot slot;
    slot.publish(fix.model, 0);

    ServeConfig cfg;
    cfg.render.sh_degree = 1;
    RenderService service(slot, cfg);
    RenderResponse ok = service.submit(fix.cameras[0]).get();
    EXPECT_TRUE(ok.ok());
    service.stop();

    for (int i = 0; i < 3; ++i) {
        std::future<RenderResponse> fut = service.submit(fix.cameras[1]);
        ASSERT_TRUE(fut.valid());
        RenderResponse resp;
        EXPECT_NO_THROW(resp = fut.get());    // never std::future_error
        EXPECT_EQ(resp.status, ServeStatus::RejectedShutdown);
        EXPECT_FALSE(resp.ok());
        EXPECT_GT(resp.request_id, 0u);
        EXPECT_STREQ(serveStatusName(resp.status), "rejected_shutdown");
    }
    ServeStats stats = service.stats();
    EXPECT_EQ(stats.rejected_shutdown, 3u);
    EXPECT_EQ(stats.requests, 1u);
    EXPECT_EQ(stats.submitted, 4u);
}

TEST(RenderService, DropOldestEvictsStalestAndServesNewest)
{
    BatchFixture fix(400);
    SnapshotSlot slot;
    slot.publish(fix.model, 0);

    FaultPlan plan;
    plan.at(FaultPoint::WorkerStall).every_n = 1;
    plan.at(FaultPoint::WorkerStall).hold = true;
    FaultInjector faults(plan);

    ServeConfig cfg;
    cfg.workers = 1;
    cfg.max_batch = 4;
    cfg.queue_capacity = 3;
    cfg.render.sh_degree = 1;
    cfg.admission.shed = ShedPolicy::DropOldest;
    cfg.faults = &faults;
    RenderService service(slot, cfg);

    // Worker pinned: 6 submits through a 3-deep queue evict ids 1-3.
    std::vector<std::future<RenderResponse>> futs;
    for (int r = 0; r < 6; ++r)
        futs.push_back(service.submit(fix.cameras[r % 6]));
    faults.release(FaultPoint::WorkerStall);
    for (int r = 0; r < 6; ++r) {
        RenderResponse resp = futs[r].get();
        if (r < 3) {
            EXPECT_EQ(resp.status, ServeStatus::ShedQueueFull)
                << "request " << r;
        } else {
            ASSERT_TRUE(resp.ok()) << "request " << r;
            // Admitted frames stay bitwise identical to direct renders.
            auto subset = frustumCull(fix.model, fix.cameras[r % 6]);
            Image direct = renderForward(fix.model, fix.cameras[r % 6],
                                         subset, cfg.render)
                               .image;
            EXPECT_EQ(resp.image.data(), direct.data());
        }
    }
    service.stop();
    ServeStats stats = service.stats();
    EXPECT_EQ(stats.shed_queue_full, 3u);
    EXPECT_EQ(stats.requests, 3u);
}

TEST(RenderService, DeadlineExpiredRequestsAreShedAtDequeue)
{
    BatchFixture fix(400);
    SnapshotSlot slot;
    slot.publish(fix.model, 0);

    FaultPlan plan;
    plan.at(FaultPoint::WorkerStall).every_n = 1;
    plan.at(FaultPoint::WorkerStall).hold = true;
    FaultInjector faults(plan);

    ServeConfig cfg;
    cfg.workers = 1;
    cfg.max_batch = 4;
    cfg.render.sh_degree = 1;
    cfg.admission.deadline_s = 0.02;
    cfg.faults = &faults;
    RenderService service(slot, cfg);

    // Queue 6 requests behind a pinned worker, outlive their deadline,
    // then release: the sweep fails all of them without rendering.
    std::vector<std::future<RenderResponse>> futs;
    for (int r = 0; r < 6; ++r)
        futs.push_back(service.submit(fix.cameras[r % 6]));
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    faults.release(FaultPoint::WorkerStall);
    for (auto &f : futs) {
        RenderResponse resp = f.get();
        EXPECT_EQ(resp.status, ServeStatus::ShedDeadline);
        EXPECT_GE(resp.queue_s, 0.02);
    }
    // The service is still healthy: a fresh request renders Ok.
    RenderResponse fresh = service.submit(fix.cameras[0]).get();
    EXPECT_TRUE(fresh.ok());
    service.stop();
    ServeStats stats = service.stats();
    EXPECT_EQ(stats.shed_deadline, 6u);
    EXPECT_EQ(stats.requests, 1u);
    EXPECT_EQ(stats.submitted, 7u);
}

TEST(RenderService, TokenBucketThrottlesPerClientDeterministically)
{
    BatchFixture fix(300);
    SnapshotSlot slot;
    slot.publish(fix.model, 0);

    ServeConfig cfg;
    cfg.workers = 1;
    cfg.render.sh_degree = 1;
    // No refill: exactly the first burst=2 requests per client admit —
    // the deterministic fairness configuration.
    cfg.admission.client_burst = 2;
    cfg.admission.client_rate = 0;
    RenderService service(slot, cfg);

    std::vector<std::future<RenderResponse>> futs;
    for (int r = 0; r < 4; ++r)
        futs.push_back(service.submit(fix.cameras[r % 6],
                                      /*client_id=*/10));
    for (int r = 0; r < 3; ++r)
        futs.push_back(service.submit(fix.cameras[r % 6],
                                      /*client_id=*/20));
    std::vector<ServeStatus> statuses;
    for (auto &f : futs)
        statuses.push_back(f.get().status);
    // Client 10: 2 admitted then 2 throttled; client 20: 2 then 1 —
    // one client's burst never eats another's.
    EXPECT_EQ(statuses,
              (std::vector<ServeStatus>{
                  ServeStatus::Ok, ServeStatus::Ok,
                  ServeStatus::ThrottledClient,
                  ServeStatus::ThrottledClient, ServeStatus::Ok,
                  ServeStatus::Ok, ServeStatus::ThrottledClient}));
    service.stop();
    ServeStats stats = service.stats();
    EXPECT_EQ(stats.throttled_client, 3u);
    EXPECT_EQ(stats.requests, 4u);

    // With a refill rate, a drained bucket recovers.
    SnapshotSlot slot2;
    slot2.publish(fix.model, 0);
    ServeConfig cfg2 = cfg;
    cfg2.admission.client_burst = 1;
    cfg2.admission.client_rate = 200;    // 1 token per 5 ms
    RenderService service2(slot2, cfg2);
    EXPECT_TRUE(service2.submit(fix.cameras[0], 1).get().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    EXPECT_TRUE(service2.submit(fix.cameras[1], 1).get().ok());
    service2.stop();
}

TEST(RenderService, BlockTimeoutShedsInsteadOfWaitingForever)
{
    BatchFixture fix(300);
    SnapshotSlot slot;
    slot.publish(fix.model, 0);

    FaultPlan plan;
    plan.at(FaultPoint::WorkerStall).every_n = 1;
    plan.at(FaultPoint::WorkerStall).hold = true;
    FaultInjector faults(plan);

    ServeConfig cfg;
    cfg.workers = 1;
    cfg.max_batch = 2;
    cfg.queue_capacity = 2;
    cfg.render.sh_degree = 1;
    cfg.admission.shed = ShedPolicy::Block;
    cfg.admission.block_timeout_s = 0.01;
    cfg.faults = &faults;
    RenderService service(slot, cfg);

    std::vector<std::future<RenderResponse>> futs;
    for (int r = 0; r < 3; ++r)
        futs.push_back(service.submit(fix.cameras[r % 6]));
    // The third submit waited its 10 ms window against a pinned worker
    // and shed; it did NOT hang the caller.
    EXPECT_EQ(futs[2].get().status, ServeStatus::ShedQueueFull);
    faults.release(FaultPoint::WorkerStall);
    EXPECT_TRUE(futs[0].get().ok());
    EXPECT_TRUE(futs[1].get().ok());
    service.stop();
}

} // namespace
} // namespace clm
