/**
 * @file
 * Batch-planner tests: DAG validity for all four systems, byte
 * accounting, the 1F1B two-stream structure of §5.3 (prefetch before the
 * previous store on the communication stream) and CLM's dependency wiring
 * (loads gated on double-buffer reuse, Adam gated on gradient arrival).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "math/rng.hpp"
#include "offload/planner.hpp"

namespace clm {
namespace {

BatchWorkload
makeWorkload(int views, uint32_t universe, double density, uint64_t seed,
             double n_target_scale = 1.0)
{
    Rng rng(seed);
    BatchWorkload wl;
    for (int v = 0; v < views; ++v) {
        std::vector<uint32_t> s;
        for (uint32_t g = 0; g < universe; ++g)
            if (rng.uniform() < density)
                s.push_back(g);
        wl.sets.push_back(std::move(s));
        wl.camera_centers.push_back(
            rng.uniformInBox({0, 0, 0}, {10, 10, 10}));
    }
    wl.n_synthetic = universe;
    wl.n_target = universe * n_target_scale;
    wl.pixels_per_view = 1920.0 * 1080.0;
    return wl;
}

int
countOps(const BatchPlan &plan, OpKind kind)
{
    int n = 0;
    for (const auto &op : plan.ops)
        if (op.kind == kind)
            ++n;
    return n;
}

TEST(Planner, SystemNames)
{
    EXPECT_STREQ(systemName(SystemKind::Clm), "CLM");
    EXPECT_STREQ(systemName(SystemKind::NaiveOffload),
                 "Naive Offloading");
}

class PlannerSystemsTest : public ::testing::TestWithParam<SystemKind>
{
};

TEST_P(PlannerSystemsTest, PlanIsValidDag)
{
    PlannerConfig cfg;
    cfg.system = GetParam();
    BatchWorkload wl = makeWorkload(6, 400, 0.2, 1);
    BatchPlanResult r = planBatch(cfg, wl);
    r.plan.validate();    // panics on violation
    EXPECT_EQ(r.plan.batch_size, 6);
    // One forward and one backward per view for every system.
    EXPECT_EQ(countOps(r.plan, OpKind::Forward), 6);
    EXPECT_EQ(countOps(r.plan, OpKind::Backward), 6);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, PlannerSystemsTest,
    ::testing::Values(SystemKind::Baseline, SystemKind::EnhancedBaseline,
                      SystemKind::NaiveOffload, SystemKind::Clm));

TEST(Planner, BaselineProcessesAllGaussians)
{
    PlannerConfig cfg;
    cfg.system = SystemKind::Baseline;
    BatchWorkload wl = makeWorkload(3, 500, 0.1, 2);
    BatchPlanResult r = planBatch(cfg, wl);
    for (const auto &op : r.plan.ops) {
        if (op.kind == OpKind::Forward) {
            EXPECT_DOUBLE_EQ(op.gaussians, 500.0);    // no pre-cull
        }
    }
    EXPECT_EQ(countOps(r.plan, OpKind::Cull), 0);
    EXPECT_DOUBLE_EQ(r.plan.h2dBytes(), 0.0);
    EXPECT_DOUBLE_EQ(r.plan.d2hBytes(), 0.0);
}

TEST(Planner, EnhancedBaselineProcessesInFrustumOnly)
{
    PlannerConfig cfg;
    cfg.system = SystemKind::EnhancedBaseline;
    BatchWorkload wl = makeWorkload(3, 500, 0.1, 3);
    BatchPlanResult r = planBatch(cfg, wl);
    EXPECT_EQ(countOps(r.plan, OpKind::Cull), 1);
    int f = 0;
    for (const auto &op : r.plan.ops) {
        if (op.kind == OpKind::Forward) {
            EXPECT_DOUBLE_EQ(op.gaussians,
                             static_cast<double>(wl.sets[f++].size()));
        }
    }
}

TEST(Planner, NaiveMovesAllParametersBothWays)
{
    PlannerConfig cfg;
    cfg.system = SystemKind::NaiveOffload;
    BatchWorkload wl = makeWorkload(4, 300, 0.2, 4);
    BatchPlanResult r = planBatch(cfg, wl);
    // The Figure 3 pattern: one bulk load, one bulk store, one CPU Adam.
    EXPECT_EQ(countOps(r.plan, OpKind::LoadAll), 1);
    EXPECT_EQ(countOps(r.plan, OpKind::StoreAll), 1);
    EXPECT_EQ(countOps(r.plan, OpKind::CpuAdam), 1);
    EXPECT_DOUBLE_EQ(r.plan.h2dBytes(),
                     300.0 * kParamBytesPerGaussian);
    EXPECT_DOUBLE_EQ(r.plan.d2hBytes(),
                     300.0 * kParamBytesPerGaussian);
}

TEST(Planner, ClmLoadsMatchCachePlan)
{
    PlannerConfig cfg;
    cfg.system = SystemKind::Clm;
    BatchWorkload wl = makeWorkload(6, 400, 0.25, 5);
    BatchPlanResult r = planBatch(cfg, wl);

    double load_bytes = 0;
    for (const auto &op : r.plan.ops)
        if (op.kind == OpKind::LoadParams)
            load_bytes += op.h2d_bytes;
    EXPECT_NEAR(load_bytes, static_cast<double>(r.cache.paramLoadBytes()),
                1.0);

    double store_bytes = 0;
    for (const auto &op : r.plan.ops)
        if (op.kind == OpKind::StoreGrads)
            store_bytes += op.d2h_bytes;
    EXPECT_NEAR(store_bytes,
                static_cast<double>(r.cache.gradStoreBytes()), 1.0);
}

TEST(Planner, ClmScalesToTargetModelSize)
{
    PlannerConfig cfg;
    cfg.system = SystemKind::Clm;
    BatchWorkload small = makeWorkload(4, 400, 0.25, 6, 1.0);
    BatchWorkload big = makeWorkload(4, 400, 0.25, 6, 1000.0);
    BatchPlanResult rs = planBatch(cfg, small);
    BatchPlanResult rb = planBatch(cfg, big);
    EXPECT_NEAR(rb.paramLoadBytesScaled(),
                1000.0 * rs.paramLoadBytesScaled(), 1e-3);
    EXPECT_DOUBLE_EQ(rb.scale, 1000.0);
}

TEST(Planner, Clm1F1BCommStreamInterleaving)
{
    // On the communication stream, microbatch i+1's LoadParams must be
    // enqueued before microbatch i's StoreGrads (prefetching, Figure 6).
    PlannerConfig cfg;
    cfg.system = SystemKind::Clm;
    BatchWorkload wl = makeWorkload(5, 400, 0.3, 7);
    BatchPlanResult r = planBatch(cfg, wl);

    std::vector<std::pair<OpKind, int>> comm_seq;
    for (const auto &op : r.plan.ops)
        if (op.engine == EngineId::CommStream
            && (op.kind == OpKind::LoadParams
                || op.kind == OpKind::StoreGrads))
            comm_seq.emplace_back(op.kind, op.microbatch);

    for (size_t a = 0; a < comm_seq.size(); ++a) {
        for (size_t b = a + 1; b < comm_seq.size(); ++b) {
            if (comm_seq[a].first == OpKind::StoreGrads
                && comm_seq[b].first == OpKind::LoadParams) {
                // A store enqueued before a load implies the store's
                // microbatch is at least two behind (1F1B).
                EXPECT_LT(comm_seq[a].second, comm_seq[b].second);
            }
        }
    }
    // Load for microbatch 1 precedes store for microbatch 0.
    auto find_pos = [&](OpKind k, int mb) {
        for (size_t i = 0; i < comm_seq.size(); ++i)
            if (comm_seq[i] == std::make_pair(k, mb))
                return static_cast<int>(i);
        return -1;
    };
    EXPECT_LT(find_pos(OpKind::LoadParams, 1),
              find_pos(OpKind::StoreGrads, 0));
}

TEST(Planner, ClmComputeStreamIsFwdBwdAlternating)
{
    PlannerConfig cfg;
    cfg.system = SystemKind::Clm;
    BatchWorkload wl = makeWorkload(4, 300, 0.3, 8);
    BatchPlanResult r = planBatch(cfg, wl);
    std::vector<std::pair<OpKind, int>> seq;
    for (const auto &op : r.plan.ops)
        if (op.engine == EngineId::ComputeStream
            && (op.kind == OpKind::Forward
                || op.kind == OpKind::Backward))
            seq.emplace_back(op.kind, op.microbatch);
    ASSERT_EQ(seq.size(), 8u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(seq[2 * i].first, OpKind::Forward);
        EXPECT_EQ(seq[2 * i].second, i);
        EXPECT_EQ(seq[2 * i + 1].first, OpKind::Backward);
        EXPECT_EQ(seq[2 * i + 1].second, i);
    }
}

TEST(Planner, ClmOverlapAdamEmitsPerMicrobatchUpdates)
{
    PlannerConfig cfg;
    cfg.system = SystemKind::Clm;
    cfg.overlap_adam = true;
    BatchWorkload wl = makeWorkload(6, 400, 0.3, 9);
    BatchPlanResult with = planBatch(cfg, wl);
    cfg.overlap_adam = false;
    BatchPlanResult without = planBatch(cfg, wl);
    EXPECT_GT(countOps(with.plan, OpKind::CpuAdam), 1);
    EXPECT_EQ(countOps(without.plan, OpKind::CpuAdam), 1);
    // Total Adam work identical.
    auto total_adam = [](const BatchPlan &p) {
        double g = 0;
        for (const auto &op : p.ops)
            if (op.kind == OpKind::CpuAdam)
                g += op.gaussians;
        return g;
    };
    EXPECT_NEAR(total_adam(with.plan), total_adam(without.plan), 1e-6);
}

TEST(Planner, ClmNoCacheLoadsEverything)
{
    PlannerConfig cfg;
    cfg.system = SystemKind::Clm;
    cfg.enable_cache = false;
    BatchWorkload wl = makeWorkload(5, 400, 0.3, 10);
    BatchPlanResult r = planBatch(cfg, wl);
    size_t total = 0;
    for (const auto &s : wl.sets)
        total += s.size();
    EXPECT_DOUBLE_EQ(static_cast<double>(r.cache.paramLoadBytes()),
                     static_cast<double>(total)
                         * kNonCriticalBytesPerGaussian);
    EXPECT_EQ(r.cache.cacheHits(), 0u);
}

TEST(Planner, OrderingStrategyChangesOrder)
{
    PlannerConfig cfg;
    cfg.system = SystemKind::Clm;
    BatchWorkload wl = makeWorkload(8, 400, 0.3, 11);
    cfg.ordering = OrderingStrategy::GsCount;
    auto by_count = planBatch(cfg, wl).order;
    // GS-count order: descending set sizes.
    for (size_t i = 0; i + 1 < by_count.size(); ++i)
        EXPECT_GE(wl.sets[by_count[i]].size(),
                  wl.sets[by_count[i + 1]].size());
}

TEST(Planner, TspOrderingReducesLoadsVsRandom)
{
    // Sliding-window sets shuffled; TSP must recover the sweep and load
    // strictly less than the random order.
    Rng rng(12);
    BatchWorkload wl;
    std::vector<int> shuffled(10);
    std::iota(shuffled.begin(), shuffled.end(), 0);
    std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
    for (int v : shuffled) {
        std::vector<uint32_t> s;
        for (uint32_t g = v * 20; g < uint32_t(v * 20 + 120); ++g)
            s.push_back(g);
        wl.sets.push_back(std::move(s));
        wl.camera_centers.push_back({float(v), 0, 0});
    }
    wl.n_synthetic = 400;
    wl.n_target = 400;
    wl.pixels_per_view = 1e6;

    PlannerConfig cfg;
    cfg.system = SystemKind::Clm;
    cfg.tsp.time_limit_ms = 5.0;
    cfg.ordering = OrderingStrategy::Tsp;
    auto tsp = planBatch(cfg, wl);
    cfg.ordering = OrderingStrategy::Random;
    auto random = planBatch(cfg, wl);
    EXPECT_LT(tsp.cache.paramLoadBytes(),
              random.cache.paramLoadBytes());
}

TEST(Planner, RejectsMalformedWorkloads)
{
    PlannerConfig cfg;
    BatchWorkload empty;
    EXPECT_ANY_THROW(planBatch(cfg, empty));
    BatchWorkload wl = makeWorkload(3, 100, 0.2, 13);
    wl.camera_centers.pop_back();
    EXPECT_ANY_THROW(planBatch(cfg, wl));
}

} // namespace
} // namespace clm
