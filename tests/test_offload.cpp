/**
 * @file
 * Offload-core tests: the cache planner's conservation invariants, the
 * finalization schedule (§4.2.2), the pinned pool layout (§5.2), the
 * selective copy kernels' round-trip/accumulation semantics (§5.3) and
 * the TransferEngine's staging/scatter/prefetch behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "gaussian/model.hpp"
#include "math/rng.hpp"
#include "offload/cache_planner.hpp"
#include "offload/finalization.hpp"
#include "offload/frustum_sets.hpp"
#include "offload/pinned_pool.hpp"
#include "offload/selective_copy.hpp"
#include "offload/transfer_engine.hpp"

namespace clm {
namespace {

std::vector<std::vector<uint32_t>>
randomSets(size_t n_views, uint32_t universe, double density,
           uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<uint32_t>> sets(n_views);
    for (auto &s : sets)
        for (uint32_t g = 0; g < universe; ++g)
            if (rng.uniform() < density)
                s.push_back(g);
    return sets;
}

std::vector<uint32_t>
merge(const std::vector<uint32_t> &a, const std::vector<uint32_t> &b)
{
    std::vector<uint32_t> u = a;
    u.insert(u.end(), b.begin(), b.end());
    std::sort(u.begin(), u.end());
    u.erase(std::unique(u.begin(), u.end()), u.end());
    return u;
}

/** Property suite over random batch shapes. */
class CachePlanProperty
    : public ::testing::TestWithParam<std::tuple<int, double, uint64_t>>
{
};

TEST_P(CachePlanProperty, ConservationInvariants)
{
    auto [views, density, seed] = GetParam();
    auto sets = randomSets(views, 500, density, seed);
    CachePlan plan = planCache(sets, true);
    ASSERT_EQ(plan.mb.size(), sets.size());

    for (size_t i = 0; i < sets.size(); ++i) {
        const MicrobatchTransfers &t = plan.mb[i];
        // (1) load_new and copy_cached partition S_i.
        EXPECT_EQ(merge(t.load_new, t.copy_cached), sets[i]) << i;
        std::vector<uint32_t> inter;
        std::set_intersection(t.load_new.begin(), t.load_new.end(),
                              t.copy_cached.begin(), t.copy_cached.end(),
                              std::back_inserter(inter));
        EXPECT_TRUE(inter.empty());
        // (2) cached rows must exist in the previous microbatch.
        if (i == 0) {
            EXPECT_TRUE(t.copy_cached.empty());
        } else {
            EXPECT_TRUE(std::includes(sets[i - 1].begin(),
                                      sets[i - 1].end(),
                                      t.copy_cached.begin(),
                                      t.copy_cached.end()));
        }
        // (3) store_grads and carry_grads partition S_i.
        EXPECT_EQ(merge(t.store_grads, t.carry_grads), sets[i]);
        // (4) carried rows must be in the next microbatch.
        if (i + 1 == sets.size()) {
            EXPECT_TRUE(t.carry_grads.empty());
        } else {
            EXPECT_TRUE(std::includes(sets[i + 1].begin(),
                                      sets[i + 1].end(),
                                      t.carry_grads.begin(),
                                      t.carry_grads.end()));
        }
    }
    // (5) every Gaussian's gradient reaches the CPU exactly as many
    // times as it leaves the working set == store events reconstruct
    // the full touched multiset.
    EXPECT_EQ(plan.totalLoads(),
              std::accumulate(sets.begin(), sets.end(), size_t{0},
                              [](size_t acc, const auto &s) {
                                  return acc + s.size();
                              }));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CachePlanProperty,
    ::testing::Combine(::testing::Values(1, 2, 5, 12),
                       ::testing::Values(0.05, 0.3, 0.8),
                       ::testing::Values(1u, 2u, 3u)));

TEST(CachePlan, NoCacheDisablesEverything)
{
    auto sets = randomSets(6, 200, 0.4, 4);
    CachePlan plan = planCache(sets, false);
    for (size_t i = 0; i < sets.size(); ++i) {
        EXPECT_EQ(plan.mb[i].load_new, sets[i]);
        EXPECT_TRUE(plan.mb[i].copy_cached.empty());
        EXPECT_EQ(plan.mb[i].store_grads, sets[i]);
        EXPECT_TRUE(plan.mb[i].carry_grads.empty());
    }
    EXPECT_EQ(plan.cacheHits(), 0u);
}

TEST(CachePlan, CachingReducesLoadBytes)
{
    // Overlapping consecutive sets: the cache must cut PCIe loads.
    std::vector<std::vector<uint32_t>> sets;
    for (uint32_t v = 0; v < 8; ++v) {
        std::vector<uint32_t> s;
        for (uint32_t g = v * 5; g < v * 5 + 40; ++g)
            s.push_back(g);
        sets.push_back(std::move(s));
    }
    CachePlan with = planCache(sets, true);
    CachePlan without = planCache(sets, false);
    EXPECT_LT(with.paramLoadBytes(), without.paramLoadBytes());
    EXPECT_GT(with.cacheHits(), 0u);
    EXPECT_LT(with.gradStoreBytes(), without.gradStoreBytes());
}

TEST(CachePlan, ByteAccounting)
{
    std::vector<std::vector<uint32_t>> sets{{0, 1, 2}, {2, 3}};
    CachePlan plan = planCache(sets, true);
    // Loads: 3 new + 1 new (gaussian 2 cached).
    EXPECT_EQ(plan.paramLoadBytes(),
              4u * kNonCriticalBytesPerGaussian);
    EXPECT_EQ(plan.cacheCopyBytes(), 1u * kNonCriticalBytesPerGaussian);
    // Stores: mb0 flushes {0,1} (2 carried to mb1), mb1 flushes {2,3}.
    EXPECT_EQ(plan.gradStoreBytes(), 4u * kGradBytesPerGaussian);
    EXPECT_EQ(plan.gradFetchBytes(), plan.gradStoreBytes());
}

TEST(Finalization, LastTouchComputedCorrectly)
{
    std::vector<std::vector<uint32_t>> sets{
        {0, 1, 2}, {1, 3}, {1, 4}};
    FinalizationSchedule f = computeFinalization(6, sets, true);
    ASSERT_EQ(f.finalized_after.size(), 4u);
    EXPECT_EQ(f.finalized_after[0], (std::vector<uint32_t>{5}));
    EXPECT_EQ(f.finalized_after[1], (std::vector<uint32_t>{0, 2}));
    EXPECT_EQ(f.finalized_after[2], (std::vector<uint32_t>{3}));
    EXPECT_EQ(f.finalized_after[3], (std::vector<uint32_t>{1, 4}));
    EXPECT_EQ(f.touched(), 5u);
    EXPECT_EQ(f.overlappableUpdates(), 3u);
    EXPECT_EQ(f.trailingUpdates(), 2u);
}

TEST(Finalization, SafetyProperty)
{
    // A Gaussian may never be finalized before a microbatch that still
    // touches it (the §4.2.2 safety property).
    auto sets = randomSets(8, 300, 0.25, 5);
    FinalizationSchedule f = computeFinalization(300, sets, false);
    for (size_t j = 0; j < f.finalized_after.size(); ++j) {
        for (uint32_t g : f.finalized_after[j]) {
            for (size_t later = j; later < sets.size(); ++later) {
                // Microbatch indices are 1-based in the schedule:
                // ordered_sets[later] is microbatch later+1 > j.
                EXPECT_FALSE(std::binary_search(sets[later].begin(),
                                                sets[later].end(), g))
                    << "g=" << g << " finalized at " << j
                    << " but touched by microbatch " << later + 1;
            }
        }
    }
}

TEST(Finalization, PartitionsTouchedSet)
{
    auto sets = randomSets(6, 200, 0.3, 6);
    FinalizationSchedule f = computeFinalization(200, sets, true);
    // Union of all F_j (j>=1) == union of sets; F_0 is the complement.
    std::vector<uint32_t> all_f;
    for (size_t j = 1; j < f.finalized_after.size(); ++j)
        all_f.insert(all_f.end(), f.finalized_after[j].begin(),
                     f.finalized_after[j].end());
    std::sort(all_f.begin(), all_f.end());
    std::vector<uint32_t> expected;
    for (const auto &s : sets)
        expected = merge(expected, s);
    EXPECT_EQ(all_f, expected);
    EXPECT_EQ(f.finalized_after[0].size(), 200u - expected.size());
}

TEST(PinnedPool, LayoutAndAlignment)
{
    PinnedPool pool(100);
    EXPECT_EQ(pool.size(), 100u);
    EXPECT_EQ(PinnedLayout::paramStride(), 256u);
    EXPECT_EQ(PinnedLayout::gradStride(), 256u);    // 236 -> 256
    EXPECT_EQ(pool.bytes(), PinnedLayout::totalBytes(100));
    // Every record cache-line aligned (§5.2).
    for (size_t i : {0u, 1u, 57u, 99u}) {
        EXPECT_EQ(reinterpret_cast<uintptr_t>(pool.paramRecord(i))
                      % kCacheLineBytes,
                  0u);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(pool.gradRecord(i))
                      % kCacheLineBytes,
                  0u);
    }
    // Signal slots distinct cache lines (§5.4).
    EXPECT_NE(pool.signalSlot(0), pool.signalSlot(1));
    EXPECT_GE(reinterpret_cast<uintptr_t>(pool.signalSlot(1))
                  - reinterpret_cast<uintptr_t>(pool.signalSlot(0)),
              kCacheLineBytes);
}

TEST(PinnedPool, UploadDownloadRoundTrip)
{
    Rng rng(13);
    GaussianModel m = GaussianModel::random(20, {-1, -1, -1}, {1, 1, 1},
                                            0.1f, rng);
    for (size_t i = 0; i < m.size(); ++i)
        for (int k = 0; k < kShDim; ++k)
            m.sh(i)[k] = rng.normal();
    PinnedPool pool(20);
    pool.uploadParams(m);
    GaussianModel m2(20);
    pool.downloadParams(m2);
    for (size_t i = 0; i < 20; ++i) {
        EXPECT_FLOAT_EQ(m2.sh(i)[17], m.sh(i)[17]);
        EXPECT_FLOAT_EQ(m2.rawOpacity(i), m.rawOpacity(i));
    }
}

TEST(DeviceBuffer, BindAndRowLookup)
{
    DeviceBuffer buf(10);
    buf.bind({2, 5, 9});
    EXPECT_EQ(buf.rows(), 3u);
    EXPECT_EQ(buf.rowOf(2), 0);
    EXPECT_EQ(buf.rowOf(9), 2);
    EXPECT_EQ(buf.rowOf(3), -1);
    EXPECT_THROW(buf.bind({3, 1}), std::logic_error);    // unsorted
}

TEST(SelectiveCopy, GatherScatterRoundTrip)
{
    Rng rng(14);
    GaussianModel m = GaussianModel::random(30, {-1, -1, -1}, {1, 1, 1},
                                            0.1f, rng);
    PinnedPool pool(30);
    pool.uploadParams(m);

    DeviceBuffer buf(30);
    std::vector<uint32_t> set{3, 7, 8, 21};
    buf.bind(set);
    gatherParams(pool, buf, set);
    for (size_t r = 0; r < set.size(); ++r) {
        float expect[kNonCriticalDim];
        m.packNonCritical(set[r], expect);
        for (int k = 0; k < kNonCriticalDim; ++k)
            EXPECT_FLOAT_EQ(buf.paramRow(r)[k], expect[k]);
    }
}

TEST(SelectiveCopy, CachedCopyMatchesPinnedLoad)
{
    Rng rng(15);
    GaussianModel m = GaussianModel::random(30, {-1, -1, -1}, {1, 1, 1},
                                            0.1f, rng);
    PinnedPool pool(30);
    pool.uploadParams(m);

    DeviceBuffer a(30), b(30);
    a.bind({1, 2, 3, 4});
    gatherParams(pool, a, a.indices());
    b.bind({2, 3, 10});
    // 2 and 3 cached from a; 10 loaded from pinned memory.
    copyCachedParams(a, b, {2, 3});
    gatherParams(pool, b, {10});
    for (uint32_t g : {2u, 3u, 10u}) {
        float expect[kNonCriticalDim];
        m.packNonCritical(g, expect);
        const float *row = b.paramRow(b.boundRow(g));
        for (int k = 0; k < kNonCriticalDim; ++k)
            EXPECT_FLOAT_EQ(row[k], expect[k]) << "g=" << g;
    }
}

TEST(SelectiveCopy, ScatterAccumulatesRmw)
{
    PinnedPool pool(5);
    pool.zeroGradients();
    DeviceBuffer buf(5);
    buf.bind({1, 3});
    buf.zeroGrads();
    buf.gradRow(0)[0] = 2.0f;      // gaussian 1
    buf.gradRow(1)[58] = -1.5f;    // gaussian 3, opacity slot

    scatterAccumulateGrads(buf, pool, {1, 3});
    scatterAccumulateGrads(buf, pool, {1});    // accumulate again
    EXPECT_FLOAT_EQ(pool.gradRecord(1)[0], 4.0f);
    EXPECT_FLOAT_EQ(pool.gradRecord(3)[58], -1.5f);
    EXPECT_FLOAT_EQ(pool.gradRecord(0)[0], 0.0f);
}

TEST(SelectiveCopy, CarryAccumulation)
{
    DeviceBuffer a(6), b(6);
    a.bind({2, 4});
    a.zeroGrads();
    a.gradRow(0)[5] = 1.25f;    // gaussian 2
    b.bind({2, 5});
    b.zeroGrads();
    b.gradRow(0)[5] = 0.75f;
    accumulateCarriedGrads(a, b, {2});
    EXPECT_FLOAT_EQ(b.gradRow(0)[5], 2.0f);
}

TEST(TransferEngine, GatherScatterRoundTripBitExact)
{
    Rng rng(16);
    GaussianModel m = GaussianModel::random(40, {-1, -1, -1}, {1, 1, 1},
                                            0.1f, rng);
    for (size_t i = 0; i < m.size(); ++i)
        for (int k = 0; k < kShDim; ++k)
            m.sh(i)[k] = rng.normal();

    TransferEngineConfig ec;
    ec.prefetch = false;
    TransferEngine engine(40, ec);
    engine.uploadParams(m);

    std::vector<uint32_t> set{1, 4, 5, 19, 33};
    CachePlan cache = planCache({set}, true);
    engine.beginBatch({set}, std::move(cache), FinalizationSchedule{});
    DeviceBuffer &buf = engine.acquire(0);

    // Staged parameter rows are bit-exact copies of the pinned records.
    for (size_t r = 0; r < set.size(); ++r) {
        float expect[kNonCriticalDim];
        m.packNonCritical(set[r], expect);
        EXPECT_EQ(std::memcmp(buf.paramRow(r), expect,
                              sizeof(expect)),
                  0)
            << "row " << r;
    }

    // Gradient rows written on the "GPU" come back bit-exactly through
    // the RMW scatter (pool gradients start at zero).
    for (size_t r = 0; r < set.size(); ++r)
        for (int k = 0; k < kParamsPerGaussian; ++k)
            buf.gradRow(r)[k] = 0.25f * float(r + 1) - 0.01f * float(k);
    engine.release(0);
    engine.endBatch();
    for (size_t r = 0; r < set.size(); ++r)
        EXPECT_EQ(std::memcmp(engine.pool().gradRecord(set[r]),
                              buf.gradRow(r),
                              kParamsPerGaussian * sizeof(float)),
                  0)
            << "record " << set[r];

    EXPECT_EQ(engine.counters().records_loaded, set.size());
    EXPECT_EQ(engine.counters().records_stored, set.size());
    EXPECT_EQ(engine.peakBufferRows(), set.size());
}

/** Drive one batch through an engine with a deterministic fake "compute"
 *  (grad row r of microbatch i gets i + r/100), return pool grads. */
std::vector<std::vector<float>>
runFakeBatch(TransferEngine &engine, const GaussianModel &m,
             const std::vector<std::vector<uint32_t>> &sets)
{
    engine.uploadParams(m);
    CachePlan cache = planCache(sets, true);
    engine.beginBatch(sets, std::move(cache), FinalizationSchedule{});
    for (size_t i = 0; i < sets.size(); ++i) {
        DeviceBuffer &buf = engine.acquire(i);
        // Staged params must match the pinned records regardless of
        // whether they arrived via PCIe gather or cached copy.
        for (size_t r = 0; r < buf.rows(); ++r) {
            float expect[kNonCriticalDim];
            m.packNonCritical(buf.indices()[r], expect);
            EXPECT_EQ(std::memcmp(buf.paramRow(r), expect,
                                  sizeof(expect)),
                      0);
        }
        for (size_t r = 0; r < buf.rows(); ++r)
            for (int k = 0; k < kParamsPerGaussian; ++k)
                buf.gradRow(r)[k] += float(i) + float(r) / 100.0f;
        engine.release(i);
    }
    engine.endBatch();
    std::vector<std::vector<float>> grads;
    for (size_t g = 0; g < m.size(); ++g)
        grads.emplace_back(engine.pool().gradRecord(g),
                           engine.pool().gradRecord(g)
                               + kParamsPerGaussian);
    return grads;
}

TEST(TransferEngine, PrefetchMatchesSynchronousStaging)
{
    Rng rng(17);
    GaussianModel m = GaussianModel::random(60, {-1, -1, -1}, {1, 1, 1},
                                            0.1f, rng);
    // Overlapping sets exercise caching, carried grads and RMW stores.
    auto sets = randomSets(6, 60, 0.4, 18);

    TransferEngineConfig sync_cfg;
    sync_cfg.prefetch = false;
    TransferEngineConfig pre_cfg;
    pre_cfg.prefetch = true;
    TransferEngine sync_engine(60, sync_cfg);
    TransferEngine pre_engine(60, pre_cfg);

    auto sync_grads = runFakeBatch(sync_engine, m, sets);
    auto pre_grads = runFakeBatch(pre_engine, m, sets);
    for (size_t g = 0; g < 60; ++g)
        EXPECT_EQ(std::memcmp(sync_grads[g].data(), pre_grads[g].data(),
                              kParamsPerGaussian * sizeof(float)),
                  0)
            << "gaussian " << g;

    // Identical plans -> identical traffic counters either way.
    EXPECT_EQ(sync_engine.counters().records_loaded,
              pre_engine.counters().records_loaded);
    EXPECT_EQ(sync_engine.counters().cache_hits,
              pre_engine.counters().cache_hits);
    EXPECT_EQ(sync_engine.counters().records_stored,
              pre_engine.counters().records_stored);
}

TEST(TransferEngine, FinalizationDispatchAndCounters)
{
    Rng rng(19);
    GaussianModel m = GaussianModel::random(30, {-1, -1, -1}, {1, 1, 1},
                                            0.1f, rng);
    std::vector<std::vector<uint32_t>> sets{{0, 1, 2, 3}, {2, 3, 9}};
    FinalizationSchedule fin = computeFinalization(30, sets, false);

    for (bool async : {false, true}) {
        TransferEngineConfig ec;
        ec.prefetch = true;
        ec.async_finalize = async;
        TransferEngine engine(30, ec);
        engine.uploadParams(m);
        std::vector<uint32_t> finalized;
        engine.setFinalizeFn([&](const std::vector<uint32_t> &f) {
            finalized.insert(finalized.end(), f.begin(), f.end());
            return f.size();
        });
        CachePlan cache = planCache(sets, true);
        engine.beginBatch(sets, std::move(cache), fin);
        for (size_t i = 0; i < sets.size(); ++i) {
            engine.acquire(i);
            engine.release(i);
        }
        engine.endBatch();
        // Every touched Gaussian finalized exactly once.
        std::sort(finalized.begin(), finalized.end());
        EXPECT_EQ(finalized,
                  (std::vector<uint32_t>{0, 1, 2, 3, 9}))
            << "async=" << async;
        EXPECT_EQ(engine.counters().finalized, 5u);
    }
}

TEST(TransferEngine, StageTimingsAccumulate)
{
    Rng rng(20);
    GaussianModel m = GaussianModel::random(30, {-1, -1, -1}, {1, 1, 1},
                                            0.1f, rng);
    auto sets = randomSets(3, 30, 0.5, 21);
    TransferEngine engine(30, {});
    runFakeBatch(engine, m, sets);
    const StageTimings &t = engine.timings();
    EXPECT_EQ(t.microbatches.size(), sets.size());
    EXPECT_GT(t[TrainStage::Compute], 0.0);
    EXPECT_GT(t[TrainStage::Gather], 0.0);
    EXPECT_GT(t[TrainStage::Scatter], 0.0);
    EXPECT_GT(t.batch_seconds, 0.0);
    engine.resetTimings();
    EXPECT_EQ(engine.timings().total(), 0.0);
    EXPECT_TRUE(engine.timings().microbatches.empty());
}

TEST(DeviceBuffer, BoundRowAssertsOnMiss)
{
    DeviceBuffer buf(10);
    buf.bind({2, 5, 9});
    EXPECT_EQ(buf.boundRow(5), 1u);
    EXPECT_THROW(buf.boundRow(3), std::logic_error);
}

TEST(FrustumSetsHelpers, UnionAndSelect)
{
    FrustumSets fs;
    fs.total_gaussians = 10;
    fs.sets = {{1, 2}, {2, 3}, {8}};
    EXPECT_EQ(fs.unionSet(), (std::vector<uint32_t>{1, 2, 3, 8}));
    auto rho = fs.sparsities();
    EXPECT_DOUBLE_EQ(rho[0], 0.2);
    FrustumSets sel = selectViews(fs, {2, 0});
    ASSERT_EQ(sel.sets.size(), 2u);
    EXPECT_EQ(sel.sets[0], (std::vector<uint32_t>{8}));
}

} // namespace
} // namespace clm
