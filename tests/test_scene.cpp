/**
 * @file
 * Tests for the synthetic scene/camera generators: the five presets must
 * reproduce the paper's workload structure — the sparsity ordering of
 * Figure 5 (BigCity sparsest ... Bicycle densest) and the spatial
 * locality that makes caching and TSP ordering effective.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "offload/frustum_sets.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"
#include "sched/ordering.hpp"

namespace clm {
namespace {

/** Scaled-down profile for fast set computation in tests. */
FrustumSets
smallSets(const SceneSpec &spec, size_t n_gaussians = 4000,
          int n_views = 16)
{
    GaussianModel m = generateSceneGaussians(spec, n_gaussians);
    auto cams = generateCameraPath(spec, n_views, 64, 48);
    return computeFrustumSets(m, cams);
}

TEST(SceneSpec, PresetsMatchPaperTables)
{
    auto all = SceneSpec::all();
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all[0].name, "Bicycle");
    EXPECT_EQ(all[4].name, "BigCity");
    // Table 3 batch sizes.
    EXPECT_EQ(all[0].batch_size, 4);
    EXPECT_EQ(all[1].batch_size, 8);
    EXPECT_EQ(all[2].batch_size, 8);
    EXPECT_EQ(all[3].batch_size, 16);
    EXPECT_EQ(all[4].batch_size, 64);
    // Table 2 model sizes (millions).
    EXPECT_DOUBLE_EQ(all[4].paper_gaussians_m, 100.0);
    EXPECT_DOUBLE_EQ(all[1].paper_memory_gb, 50.0);
    EXPECT_EQ(SceneSpec::byName("Ithaca").paper_images, 8200);
    EXPECT_THROW(SceneSpec::byName("Nope"), std::runtime_error);
}

TEST(SceneSpec, SparsityDecreasesWithSceneScale)
{
    auto all = SceneSpec::all();
    for (size_t i = 0; i + 1 < all.size(); ++i)
        EXPECT_GT(all[i].mean_rho, all[i + 1].mean_rho)
            << all[i].name << " vs " << all[i + 1].name;
    // BigCity's headline numbers from §3.
    EXPECT_NEAR(all[4].mean_rho, 0.0039, 1e-6);
    EXPECT_NEAR(all[4].max_rho, 0.0106, 1e-6);
}

TEST(Synthetic, DeterministicForSeed)
{
    SceneSpec spec = SceneSpec::rubble();
    GaussianModel a = generateSceneGaussians(spec, 500);
    GaussianModel b = generateSceneGaussians(spec, 500);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i += 37)
        EXPECT_FLOAT_EQ(a.position(i).x, b.position(i).x);
}

TEST(Synthetic, GaussiansInsideWorld)
{
    for (const SceneSpec &spec : SceneSpec::all()) {
        GaussianModel m = generateSceneGaussians(spec, 800);
        Aabb box;
        box.lo = spec.world_lo;
        box.hi = spec.world_hi;
        box.inflate(0.25f * (spec.world_hi - spec.world_lo).norm());
        size_t inside = 0;
        for (size_t i = 0; i < m.size(); ++i)
            if (box.contains(m.position(i)))
                ++inside;
        EXPECT_GT(double(inside) / m.size(), 0.99) << spec.name;
    }
}

TEST(Synthetic, GroundTruthHasSolidOpacity)
{
    GaussianModel gt = generateGroundTruth(SceneSpec::bicycle(), 300);
    double mean_op = 0;
    for (size_t i = 0; i < gt.size(); ++i)
        mean_op += gt.worldOpacity(i);
    mean_op /= gt.size();
    EXPECT_GT(mean_op, 0.5);
}

TEST(CameraPath, ProducesRequestedViews)
{
    for (const SceneSpec &spec : SceneSpec::all()) {
        auto cams = generateCameraPath(spec, 13, 32, 24);
        EXPECT_EQ(cams.size(), 13u) << spec.name;
        for (const Camera &c : cams) {
            EXPECT_EQ(c.width(), 32);
            EXPECT_EQ(c.height(), 24);
        }
    }
}

TEST(CameraPath, ViewsSeeContent)
{
    // Every view of every scene must select a non-trivial Gaussian set.
    for (const SceneSpec &spec : SceneSpec::all()) {
        FrustumSets fs = smallSets(spec);
        for (size_t v = 0; v < fs.sets.size(); ++v)
            EXPECT_GT(fs.sets[v].size(), 10u)
                << spec.name << " view " << v;
    }
}

/** Parameterized over scenes: the measured per-view sparsity must sit in
 *  a plausible band around the paper-calibrated mean_rho. */
class SceneSparsityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SceneSparsityTest, MeasuredRhoTracksCalibration)
{
    SceneSpec spec = SceneSpec::all()[GetParam()];
    FrustumSets fs = smallSets(spec, spec.sim.n_gaussians / 4, 16);
    auto rho = fs.sparsities();
    double mean =
        std::accumulate(rho.begin(), rho.end(), 0.0) / rho.size();
    // Within a factor of ~2.5 of the paper value (synthetic stand-in).
    EXPECT_GT(mean, spec.mean_rho / 2.5) << spec.name;
    EXPECT_LT(mean, spec.mean_rho * 2.5) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllScenes, SceneSparsityTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(SceneSparsity, OrderingAcrossScenesMatchesFigure5)
{
    // The empirical sparsity ordering must match the paper's CDF order.
    std::vector<double> means;
    for (const SceneSpec &spec : SceneSpec::all()) {
        FrustumSets fs = smallSets(spec, spec.sim.n_gaussians / 4, 16);
        auto rho = fs.sparsities();
        means.push_back(std::accumulate(rho.begin(), rho.end(), 0.0)
                        / rho.size());
    }
    for (size_t i = 0; i + 1 < means.size(); ++i)
        EXPECT_GT(means[i], means[i + 1])
            << SceneSpec::all()[i].name << " should be denser than "
            << SceneSpec::all()[i + 1].name;
}

TEST(SceneLocality, ConsecutiveViewsOverlapMoreThanDistant)
{
    // Spatial locality (§3): consecutive capture-order views share more
    // Gaussians than views far apart on the path.
    // BigCity's synthetic capture is too sparse in views for adjacency
    // overlap at this scale (its cache benefit is small in the paper
    // too, Fig. 14); test the dense-path scenes.
    for (const SceneSpec &spec :
         {SceneSpec::rubble(), SceneSpec::ithaca()}) {
        FrustumSets fs =
            smallSets(spec, spec.sim.n_gaussians / 8, spec.sim.n_views);
        double consecutive = 0, distant = 0;
        int n = static_cast<int>(fs.sets.size());
        int pairs = 0;
        for (int v = 0; v + 1 < n; ++v) {
            consecutive += intersectionSize(fs.sets[v], fs.sets[v + 1]);
            distant +=
                intersectionSize(fs.sets[v], fs.sets[(v + n / 2) % n]);
            ++pairs;
        }
        EXPECT_GT(consecutive / pairs, distant / pairs + 1.0)
            << spec.name;
    }
}

} // namespace
} // namespace clm
