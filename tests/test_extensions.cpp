/**
 * @file
 * Tests for the extensions beyond the paper's core: BVH-accelerated
 * culling (§8 future work), the thread pool, parallel rasterization/Adam
 * determinism, the dedicated asynchronous CPU Adam thread (§5.4),
 * densification integrated with the offloaded trainer, and model I/O.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <numeric>

#include "gaussian/io.hpp"
#include "math/rng.hpp"
#include "render/bvh.hpp"
#include "render/culling.hpp"
#include "scene/camera_path.hpp"
#include "scene/synthetic.hpp"
#include "train/clm_trainer.hpp"
#include "train/quality_harness.hpp"
#include "util/thread_pool.hpp"

namespace clm {
namespace {

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            hits[i]++;
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWait)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&] { counter++; });
    pool.wait();
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, EmptyAndTinyRanges)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [&](size_t, size_t) { FAIL(); });
    std::atomic<int> n{0};
    pool.parallelFor(1, [&](size_t b, size_t e) {
        n += static_cast<int>(e - b);
    });
    EXPECT_EQ(n.load(), 1);
}

class BvhTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BvhTest, CullIdenticalToLinearSweep)
{
    int leaf_size = GetParam();
    SceneSpec spec = SceneSpec::rubble();
    GaussianModel m = generateSceneGaussians(spec, 3000);
    auto cams = generateCameraPath(spec, 8, 64, 48);

    BvhConfig cfg;
    cfg.leaf_size = leaf_size;
    GaussianBvh bvh(m, cfg);
    for (const Camera &cam : cams) {
        auto linear = frustumCull(m, cam);
        auto accel = bvh.cull(cam);
        EXPECT_EQ(linear, accel);
    }
}

INSTANTIATE_TEST_SUITE_P(LeafSizes, BvhTest, ::testing::Values(1, 8, 64));

TEST(Bvh, SkipsMostLeafTestsOnSparseScenes)
{
    SceneSpec spec = SceneSpec::bigCity();
    GaussianModel m = generateSceneGaussians(spec, 20000);
    auto cams = generateCameraPath(spec, 4, 64, 48);
    GaussianBvh bvh(m);
    bvh.cull(cams[0]);
    const auto &stats = bvh.lastStats();
    // The tree should prune the vast majority of exact tests (BigCity
    // views touch <1% of Gaussians).
    EXPECT_LT(stats.leaf_tests, m.size() / 4);
    EXPECT_GT(stats.boxes_rejected, 0u);
}

TEST(Bvh, RefitFollowsParameterDrift)
{
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel m = generateSceneGaussians(spec, 1000);
    GaussianBvh bvh(m);
    // Drift every Gaussian, refit, and compare against fresh culling.
    Rng rng(5);
    for (size_t i = 0; i < m.size(); ++i)
        m.position(i) += rng.normal3({0, 0, 0}, 0.5f);
    bvh.refit(m);
    auto cams = generateCameraPath(spec, 4, 48, 48);
    for (const Camera &cam : cams)
        EXPECT_EQ(bvh.cull(cam), frustumCull(m, cam));
}

TEST(Bvh, EmptyAndSingletonModels)
{
    GaussianModel empty;
    GaussianBvh b0(empty);
    Camera cam = Camera::lookAt({0, 0, 0}, {0, 0, 5}, {0, 1, 0}, 32, 32,
                                1.0f);
    EXPECT_TRUE(b0.cull(cam).empty());

    GaussianModel one(1);
    one.position(0) = {0, 0, 3};
    one.logScale(0) = {-1, -1, -1};
    one.rotation(0) = {1, 0, 0, 0};
    GaussianBvh b1(one);
    EXPECT_EQ(b1.cull(cam), (std::vector<uint32_t>{0}));
}

TEST(ParallelRender, IdenticalToSerial)
{
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel m = generateGroundTruth(spec, 800);
    auto cams = generateCameraPath(spec, 2, 96, 64);
    for (const Camera &cam : cams) {
        auto subset = frustumCull(m, cam);
        RenderConfig serial;
        serial.parallel = false;
        RenderConfig parallel;
        parallel.parallel = true;
        RenderOutput a = renderForward(m, cam, subset, serial);
        RenderOutput b = renderForward(m, cam, subset, parallel);
        EXPECT_EQ(a.image.data(), b.image.data());    // bitwise
        EXPECT_EQ(a.n_contrib, b.n_contrib);
    }
}

TEST(ParallelRender, BackwardIdenticalToSerial)
{
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel m = generateGroundTruth(spec, 600);
    auto cams = generateCameraPath(spec, 1, 96, 64);
    auto subset = frustumCull(m, cams[0]);
    Image d_image(96, 64, {0.3f, -0.2f, 0.1f});

    auto run = [&](bool parallel) {
        RenderConfig cfg;
        cfg.parallel = parallel;
        RenderOutput out = renderForward(m, cams[0], subset, cfg);
        GaussianGrads g;
        g.resize(m.size());
        renderBackward(m, cams[0], cfg, out, d_image, g);
        return g;
    };
    GaussianGrads a = run(false);
    GaussianGrads b = run(true);
    double max_rel = 0;
    for (size_t i = 0; i < m.size(); ++i) {
        double denom =
            std::max(1e-12, std::abs(double(a.d_position[i].x)));
        max_rel = std::max(
            max_rel,
            std::abs(double(a.d_position[i].x) - b.d_position[i].x)
                / denom);
    }
    // Chunked reduction can reorder float sums across tiles; the drift
    // must stay at rounding level.
    EXPECT_LT(max_rel, 1e-4);
}

TEST(ParallelAdam, IdenticalToSerial)
{
    Rng rng(6);
    GaussianModel m1 = GaussianModel::random(3000, {-5, -5, -5},
                                             {5, 5, 5}, 0.1f, rng);
    GaussianModel m2 = m1;
    GaussianGrads g;
    g.resize(3000);
    for (size_t i = 0; i < 3000; ++i)
        g.d_position[i] = {float(i % 7) - 3.0f, 1.0f, -0.5f};

    AdamConfig serial_cfg;
    serial_cfg.parallel = false;
    AdamConfig parallel_cfg;
    parallel_cfg.parallel = true;
    CpuAdam a(serial_cfg), b(parallel_cfg);
    a.reset(3000);
    b.reset(3000);
    std::vector<uint32_t> all(3000);
    std::iota(all.begin(), all.end(), 0u);
    a.updateSubset(m1, g, all);
    b.updateSubset(m2, g, all);
    for (size_t i = 0; i < 3000; i += 97) {
        EXPECT_FLOAT_EQ(m1.position(i).x, m2.position(i).x);
        EXPECT_FLOAT_EQ(m1.sh(i)[3], m2.sh(i)[3]);
    }
}

struct TrainFixture
{
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel gt;
    std::vector<Camera> cameras;
    std::vector<Image> gt_images;
    TrainConfig config;

    TrainFixture()
    {
        spec.train = {700, 8, 48, 48};
        gt = generateGroundTruth(spec, 700);
        cameras = trainCameras(spec);
        config.batch_size = 4;
        config.render.sh_degree = 1;
        config.loss.ssim_window = 5;
        gt_images = renderGroundTruth(gt, cameras, config.render);
    }
};

TEST(AsyncAdam, MatchesSynchronousClmTrainer)
{
    TrainFixture f;
    TrainConfig sync_cfg = f.config;
    TrainConfig async_cfg = f.config;
    async_cfg.async_adam = true;

    ClmTrainer sync_t(makeTrainee(f.gt, 300, 9), f.cameras, f.gt_images,
                      sync_cfg);
    ClmTrainer async_t(makeTrainee(f.gt, 300, 9), f.cameras, f.gt_images,
                       async_cfg);
    for (int step = 0; step < 3; ++step) {
        std::vector<int> ids{step % 8, (step + 2) % 8, (step + 4) % 8,
                             (step + 6) % 8};
        BatchStats ss = sync_t.trainBatch(ids);
        BatchStats sa = async_t.trainBatch(ids);
        EXPECT_EQ(ss.adam_updated, sa.adam_updated);
        EXPECT_NEAR(ss.loss, sa.loss, 1e-6);
    }
    for (size_t i = 0; i < sync_t.model().size(); i += 13) {
        EXPECT_FLOAT_EQ(sync_t.model().position(i).x,
                        async_t.model().position(i).x);
        EXPECT_FLOAT_EQ(sync_t.model().rawOpacity(i),
                        async_t.model().rawOpacity(i));
    }
}

TEST(DensifyTraining, GpuOnlyGrowsAndKeepsTraining)
{
    TrainFixture f;
    GpuOnlyTrainer t(makeTrainee(f.gt, 200, 10), f.cameras, f.gt_images,
                     f.config);
    DensifyConfig dc;
    dc.grad_threshold = 1e-7f;    // aggressive for the test
    dc.prune_opacity = 1e-4f;
    t.enableDensification(dc);
    t.trainSteps(3);
    size_t before = t.model().size();
    DensifyStats stats = t.densifyNow();
    EXPECT_EQ(stats.resulting_size, t.model().size());
    EXPECT_GT(t.model().size(), before);    // clones/splits happened
    // Training continues after the topology change.
    auto s = t.trainSteps(2);
    EXPECT_GT(s.back().adam_updated, 0u);
}

TEST(DensifyTraining, ClmRebuildsOffloadStateAndStaysEquivalent)
{
    TrainFixture f;
    DensifyConfig dc;
    dc.grad_threshold = 1e-7f;

    GpuOnlyTrainer gpu(makeTrainee(f.gt, 200, 11), f.cameras, f.gt_images,
                       f.config);
    ClmTrainer clm(makeTrainee(f.gt, 200, 11), f.cameras, f.gt_images,
                   f.config);
    gpu.enableDensification(dc);
    clm.enableDensification(dc);

    std::vector<int> ids{0, 2, 4, 6};
    gpu.trainBatch(ids);
    clm.trainBatch(ids);
    DensifyStats sg = gpu.densifyNow();
    DensifyStats sc = clm.densifyNow();
    // Same observations + same seed -> same densification decisions.
    EXPECT_EQ(sg.cloned, sc.cloned);
    EXPECT_EQ(sg.split, sc.split);
    EXPECT_EQ(sg.pruned, sc.pruned);
    ASSERT_EQ(gpu.model().size(), clm.model().size());
    EXPECT_EQ(clm.pinnedBytes(),
              PinnedLayout::totalBytes(clm.model().size()));

    // Both keep training and stay equivalent afterwards.
    std::vector<int> ids2{1, 3, 5, 7};
    gpu.trainBatch(ids2);
    clm.trainBatch(ids2);
    for (size_t i = 0; i < gpu.model().size(); i += 17) {
        EXPECT_NEAR(gpu.model().position(i).x, clm.model().position(i).x,
                    2e-4f);
    }
}

TEST(ModelIo, SaveLoadRoundTrip)
{
    Rng rng(12);
    GaussianModel m = GaussianModel::random(50, {-2, -2, -2}, {2, 2, 2},
                                            0.2f, rng);
    for (size_t i = 0; i < m.size(); ++i)
        for (int k = 0; k < kShDim; ++k)
            m.sh(i)[k] = rng.normal();
    std::string path = "/tmp/clm_test_checkpoint.bin";
    saveModel(m, path);
    GaussianModel loaded = loadModel(path);
    ASSERT_EQ(loaded.size(), m.size());
    for (size_t i = 0; i < m.size(); ++i) {
        EXPECT_FLOAT_EQ(loaded.position(i).x, m.position(i).x);
        EXPECT_FLOAT_EQ(loaded.logScale(i).y, m.logScale(i).y);
        EXPECT_FLOAT_EQ(loaded.rotation(i).z, m.rotation(i).z);
        EXPECT_FLOAT_EQ(loaded.sh(i)[47], m.sh(i)[47]);
        EXPECT_FLOAT_EQ(loaded.rawOpacity(i), m.rawOpacity(i));
    }
    std::remove(path.c_str());
}

TEST(ModelIo, RejectsGarbageFiles)
{
    std::string path = "/tmp/clm_test_garbage.bin";
    std::FILE *file = std::fopen(path.c_str(), "wb");
    std::fputs("not a checkpoint", file);
    std::fclose(file);
    EXPECT_ANY_THROW(loadModel(path));
    EXPECT_ANY_THROW(loadModel("/nonexistent/path/x.bin"));
    std::remove(path.c_str());
}

TEST(ModelIo, PlyExportHasHeaderAndRows)
{
    Rng rng(13);
    GaussianModel m = GaussianModel::random(10, {-1, -1, -1}, {1, 1, 1},
                                            0.1f, rng);
    std::string path = "/tmp/clm_test_points.ply";
    exportPly(m, path);
    std::FILE *file = std::fopen(path.c_str(), "r");
    ASSERT_NE(file, nullptr);
    char line[256];
    ASSERT_NE(std::fgets(line, sizeof(line), file), nullptr);
    EXPECT_STREQ(line, "ply\n");
    int lines = 0;
    while (std::fgets(line, sizeof(line), file))
        ++lines;
    std::fclose(file);
    // 10 more header lines (format, element, 7 properties, end_header)
    // + 10 vertex rows.
    EXPECT_EQ(lines, 10 + 10);
    std::remove(path.c_str());
}


TEST(LrSchedule, PositionLrDecaysExponentially)
{
    AdamConfig cfg;
    cfg.lr_position = 1.6e-4f;
    cfg.lr_position_final = 1.6e-6f;
    cfg.position_lr_max_steps = 100;
    cfg.parallel = false;
    CpuAdam adam(cfg);
    adam.reset(1);
    GaussianModel m(1);
    GaussianGrads g;
    g.resize(1);
    g.d_position[0] = {1.0f, 0, 0};

    // With a constant gradient, Adam's bias-corrected step magnitude
    // approaches lr; later steps must therefore shrink with the
    // schedule. Compare early vs late step sizes.
    float prev = m.position(0).x;
    adam.update(m, g);
    float early_step = std::abs(m.position(0).x - prev);
    for (int t = 0; t < 120; ++t)
        adam.update(m, g);
    prev = m.position(0).x;
    adam.update(m, g);
    float late_step = std::abs(m.position(0).x - prev);
    EXPECT_LT(late_step, early_step / 20.0f);    // ~100x LR decay

    // Disabled schedule keeps the step size flat.
    AdamConfig flat = cfg;
    flat.lr_position_final = flat.lr_position;
    CpuAdam adam2(flat);
    adam2.reset(1);
    GaussianModel m2(1);
    adam2.update(m2, g);
    float first = std::abs(m2.position(0).x);
    for (int t = 0; t < 120; ++t)
        adam2.update(m2, g);
    prev = m2.position(0).x;
    adam2.update(m2, g);
    EXPECT_NEAR(std::abs(m2.position(0).x - prev), first, first * 0.2f);
}

TEST(ShRamp, DegreeIncreasesWithBatches)
{
    TrainFixture f;
    TrainConfig cfg = f.config;
    cfg.render.sh_degree = 2;
    cfg.sh_degree_interval = 2;    // +1 degree every 2 batches
    GpuOnlyTrainer t(makeTrainee(f.gt, 200, 30), f.cameras, f.gt_images,
                     cfg);
    EXPECT_EQ(t.activeShDegree(), 0);
    t.trainSteps(2);
    EXPECT_EQ(t.activeShDegree(), 1);
    t.trainSteps(2);
    EXPECT_EQ(t.activeShDegree(), 2);
    t.trainSteps(4);
    EXPECT_EQ(t.activeShDegree(), 2);    // capped at render.sh_degree
}

TEST(AttributeOffload, PoisonedUnloadedAttributesNeverRead)
{
    // The strongest form of the §4.1 claim: rendering only ever touches
    // non-critical attributes that the selective loader placed. Poison
    // everything; the loads must overwrite exactly what rendering reads.
    TrainFixture f;
    ClmTrainer t(makeTrainee(f.gt, 300, 33), f.cameras, f.gt_images,
                 f.config);
    for (int step = 0; step < 3; ++step) {
        t.debugPoisonScratchNonCritical();
        BatchStats s = t.trainBatch({0, 2, 4, 6});
        EXPECT_TRUE(std::isfinite(s.loss)) << "step " << step;
    }
    // The learned model itself stays finite.
    for (size_t i = 0; i < t.model().size(); ++i) {
        EXPECT_TRUE(std::isfinite(t.model().rawOpacity(i)));
        EXPECT_TRUE(std::isfinite(t.model().sh(i)[0]));
    }
}

TEST(Robustness, ViewWithEmptyFrustumSet)
{
    // A camera pointing away from all content: |S_i| == 0. The whole
    // pipeline (planner, buffers, rasterizer, Adam) must cope.
    TrainFixture f;
    auto cameras = f.cameras;
    cameras.push_back(Camera::lookAt({0, 0, 50}, {0, 0, 100}, {0, 1, 0},
                                     48, 48, 0.6f, 0.1f, 20.0f));
    auto gt_images = f.gt_images;
    gt_images.push_back(Image(48, 48, {0, 0, 0}));

    ClmTrainer t(makeTrainee(f.gt, 200, 31), cameras, gt_images,
                 f.config);
    int empty_view = static_cast<int>(cameras.size()) - 1;
    BatchStats s = t.trainBatch({0, empty_view, 2, empty_view});
    EXPECT_GT(s.adam_updated, 0u);
    // And a batch of only empty views updates nothing but still runs.
    BatchStats s2 = t.trainBatch({empty_view, empty_view});
    EXPECT_EQ(s2.adam_updated, 0u);
    EXPECT_EQ(s2.gaussians_rendered, 0u);
}

} // namespace
} // namespace clm
