/**
 * @file
 * Tests for the self-watching layer (src/obs/slo.*, src/obs/anomaly.*):
 * the SLO rule-spec parser (round-trip, malformed-line skipping),
 * windowed registry snapshots (HistogramSnapshot::delta equals a
 * histogram of only the in-window records, counter/gauge delta
 * semantics), verdict threshold transitions for all three rule kinds,
 * the streaming anomaly detectors (EWMA spike, step-change level
 * shift, repeated-run identity), the determinism contract (concurrent
 * recording produces the same verdicts as serial), breach spans in the
 * Chrome trace export, the exporter tick-hook ordering, and the
 * acceptance scenario: a clean Reject-policy RenderService run stays
 * Healthy under the same rules a worker-stall fault flips to Breached.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/anomaly.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"
#include "serve/render_service.hpp"
#include "serve/snapshot.hpp"
#include "util/fault.hpp"

namespace clm {
namespace {

/** Every test starts and ends with tracing off — no global tracer
 *  state leaks between tests (or into other suites). */
class SloTest : public ::testing::Test
{
  protected:
    void SetUp() override { Tracer::enable(nullptr); }
    void TearDown() override { Tracer::enable(nullptr); }
};

// --------------------------------------------------------------------------
// Rule-spec parser

TEST_F(SloTest, ParseAllRuleKindsAndRoundTrip)
{
    const std::string spec =
        "# latency bound\n"
        "hist serve.latency_ms p99 warn 10 fail 50\n"
        "ratio serve.shed_deadline / serve.requests warn 0.1 fail 0.5; "
        "gauge serve.queue_depth fail 64\n";
    int n_errors = -1;
    std::vector<SloRule> rules = parseSloRules(spec, &n_errors);
    EXPECT_EQ(n_errors, 0);
    ASSERT_EQ(rules.size(), 3u);

    EXPECT_EQ(rules[0].kind, SloRuleKind::HistogramPercentile);
    EXPECT_EQ(rules[0].metric, "serve.latency_ms");
    EXPECT_DOUBLE_EQ(rules[0].percentile, 99.0);
    EXPECT_DOUBLE_EQ(rules[0].warn, 10.0);
    EXPECT_DOUBLE_EQ(rules[0].fail, 50.0);
    EXPECT_EQ(rules[0].name, "serve.latency_ms.p99");

    EXPECT_EQ(rules[1].kind, SloRuleKind::CounterRatio);
    EXPECT_EQ(rules[1].metric, "serve.shed_deadline");
    EXPECT_EQ(rules[1].denominator, "serve.requests");
    EXPECT_EQ(rules[1].name, "serve.shed_deadline/serve.requests");

    EXPECT_EQ(rules[2].kind, SloRuleKind::GaugeBound);
    EXPECT_DOUBLE_EQ(rules[2].warn, 0.0);    // warn omitted -> disabled
    EXPECT_DOUBLE_EQ(rules[2].fail, 64.0);

    // formatSloRule output re-parses to the identical rule set.
    std::string canon;
    for (const SloRule &r : rules)
        canon += formatSloRule(r) + "\n";
    std::vector<SloRule> again = parseSloRules(canon, &n_errors);
    EXPECT_EQ(n_errors, 0);
    ASSERT_EQ(again.size(), rules.size());
    for (size_t i = 0; i < rules.size(); ++i) {
        EXPECT_EQ(again[i].kind, rules[i].kind) << i;
        EXPECT_EQ(again[i].name, rules[i].name) << i;
        EXPECT_EQ(again[i].metric, rules[i].metric) << i;
        EXPECT_EQ(again[i].denominator, rules[i].denominator) << i;
        EXPECT_DOUBLE_EQ(again[i].percentile, rules[i].percentile) << i;
        EXPECT_DOUBLE_EQ(again[i].warn, rules[i].warn) << i;
        EXPECT_DOUBLE_EQ(again[i].fail, rules[i].fail) << i;
    }
}

TEST_F(SloTest, ParseSkipsMalformedLinesAndCountsThem)
{
    const std::string spec =
        "hist serve.latency_ms p99 fail 50\n"
        "bogus kind here\n"               // unknown kind
        "hist serve.latency_ms p99\n"     // missing fail clause
        "ratio a b warn not_a_number fail 2\n"
        "gauge depth fail 8\n";
    int n_errors = 0;
    std::vector<SloRule> rules = parseSloRules(spec, &n_errors);
    EXPECT_EQ(n_errors, 3);
    ASSERT_EQ(rules.size(), 2u);    // the two well-formed lines survive
    EXPECT_EQ(rules[0].metric, "serve.latency_ms");
    EXPECT_EQ(rules[1].metric, "depth");

    // Empty / comment-only spec parses to no rules, no errors.
    rules = parseSloRules("# nothing\n\n  \n", &n_errors);
    EXPECT_EQ(n_errors, 0);
    EXPECT_TRUE(rules.empty());
}

// --------------------------------------------------------------------------
// Windowed snapshots

TEST_F(SloTest, HistogramDeltaEqualsWindowOnlyHistogram)
{
    Histogram h(1.0, 16.0, 1);
    h.record(1.5);
    h.record(3.0);
    h.record(0.5);
    HistogramSnapshot before = h.snapshot();

    // The window: records landing between the two snapshots.
    const double window_values[] = {2.5, 7.0, 7.5, 12.0};
    Histogram window_only(1.0, 16.0, 1);
    for (double v : window_values) {
        h.record(v);
        window_only.record(v);
    }
    HistogramSnapshot delta = h.snapshot().delta(before);
    HistogramSnapshot expect = window_only.snapshot();

    EXPECT_EQ(delta.count, expect.count);
    ASSERT_EQ(delta.buckets.size(), expect.buckets.size());
    ASSERT_EQ(delta.bucket_index.size(), expect.bucket_index.size());
    for (size_t i = 0; i < delta.buckets.size(); ++i) {
        EXPECT_EQ(delta.bucket_index[i], expect.bucket_index[i]) << i;
        EXPECT_EQ(delta.buckets[i], expect.buckets[i]) << i;
    }
    // Windowed percentiles equal those of the window-only histogram.
    for (double p : {0.0, 50.0, 90.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(delta.percentile(p), expect.percentile(p)) << p;
    EXPECT_DOUBLE_EQ(delta.p99, expect.p99);
}

TEST_F(SloTest, HistogramDeltaSurvivesMovingOverflowEdge)
{
    // The overflow bucket reports the running max as its "edge", which
    // moves between snapshots — delta must key on bucket INDEX, not on
    // the edge value, or overflow counts mis-subtract.
    Histogram h(1.0, 4.0, 1);
    h.record(100.0);    // overflow, max = 100
    HistogramSnapshot before = h.snapshot();
    h.record(200.0);    // overflow again, max moves to 200
    HistogramSnapshot delta = h.snapshot().delta(before);
    EXPECT_EQ(delta.count, 1u);
    EXPECT_DOUBLE_EQ(delta.percentile(99), 200.0);
}

TEST_F(SloTest, RegistrySnapshotDeltaCountersAndGauges)
{
    MetricsRegistry reg;
    reg.counter("req").add(10);
    reg.gauge("depth").set(3.0);
    RegistrySnapshot before = reg.snapshot(1.0);

    reg.counter("req").add(7);
    reg.counter("late").add(2);    // registered after the baseline
    reg.gauge("depth").set(8.0);
    RegistrySnapshot window = reg.snapshotDelta(before, 2.5);

    EXPECT_EQ(window.counters.at("req"), 7u);      // delta, not total
    EXPECT_EQ(window.counters.at("late"), 2u);     // new counter: full value
    EXPECT_DOUBLE_EQ(window.gauges.at("depth"), 8.0);    // last write wins
    EXPECT_DOUBLE_EQ(window.ts_s, 2.5);
}

// --------------------------------------------------------------------------
// Verdicts

TEST_F(SloTest, VerdictThresholdTransitions)
{
    MetricsRegistry reg;
    Histogram &lat = reg.histogram("lat_ms", 1e-3, 1e5, 8);

    SloMonitorConfig cfg;
    cfg.detect_anomalies = false;
    SloMonitor slo(reg, parseSloRules("hist lat_ms p99 warn 10 fail 50"),
                   cfg);

    for (int i = 0; i < 20; ++i)
        lat.record(1.0);
    SloReport rep = slo.tick(1.0);
    ASSERT_EQ(rep.rules.size(), 1u);
    EXPECT_EQ(rep.verdict, SloVerdict::Healthy);
    EXPECT_EQ(rep.rules[0].samples, 20u);

    for (int i = 0; i < 20; ++i)
        lat.record(20.0);    // window p99 ~20: above warn, below fail
    rep = slo.tick(2.0);
    EXPECT_EQ(rep.verdict, SloVerdict::Degraded);
    EXPECT_GT(rep.rules[0].value, 10.0);
    EXPECT_LT(rep.rules[0].value, 50.0);

    for (int i = 0; i < 20; ++i)
        lat.record(100.0);
    rep = slo.tick(3.0);
    EXPECT_EQ(rep.verdict, SloVerdict::Breached);
    EXPECT_GT(rep.rules[0].value, 50.0);

    // Ticks window independently: a quiet window is insufficient data,
    // never a carried-over breach — but worstVerdict() remembers.
    rep = slo.tick(4.0);
    EXPECT_EQ(rep.verdict, SloVerdict::Healthy);
    EXPECT_EQ(rep.rules[0].samples, 0u);
    EXPECT_EQ(slo.worstVerdict(), SloVerdict::Breached);
    EXPECT_EQ(slo.ticks(), 4);

    // total() windows from construction: dominated by the later
    // breaching samples, and a pure read (tick count unchanged).
    SloReport tot = slo.total(4.0);
    EXPECT_EQ(tot.tick, 0);
    EXPECT_EQ(tot.verdict, SloVerdict::Breached);
    EXPECT_EQ(tot.rules[0].samples, 60u);
    EXPECT_EQ(slo.ticks(), 4);
}

TEST_F(SloTest, CounterRatioTreatsZeroDenominatorAsOne)
{
    // Sheds with zero completed renders must still breach — the ratio
    // evaluates num / max(den, 1), never a silent 0/0.
    MetricsRegistry reg;
    SloMonitorConfig cfg;
    cfg.detect_anomalies = false;
    SloMonitor slo(reg,
                   parseSloRules("ratio shed / done warn 0.1 fail 0.5"),
                   cfg);
    reg.counter("shed").add(6);
    SloReport rep = slo.tick(1.0);
    ASSERT_EQ(rep.rules.size(), 1u);
    EXPECT_DOUBLE_EQ(rep.rules[0].value, 6.0);
    EXPECT_EQ(rep.verdict, SloVerdict::Breached);

    // Healthy ratio: sheds rare relative to completions.
    reg.counter("shed").add(1);
    reg.counter("done").add(100);
    rep = slo.tick(2.0);
    EXPECT_DOUBLE_EQ(rep.rules[0].value, 0.01);
    EXPECT_EQ(rep.verdict, SloVerdict::Healthy);
}

TEST_F(SloTest, GaugeBoundAndDisabledWarnBand)
{
    MetricsRegistry reg;
    Gauge &depth = reg.gauge("depth");
    SloMonitorConfig cfg;
    cfg.detect_anomalies = false;
    // warn omitted -> no Degraded band: value sits either side of fail.
    SloMonitor slo(reg, parseSloRules("gauge depth fail 8"), cfg);

    depth.set(7.0);
    EXPECT_EQ(slo.tick(1.0).verdict, SloVerdict::Healthy);
    depth.set(9.0);
    EXPECT_EQ(slo.tick(2.0).verdict, SloVerdict::Breached);
}

TEST_F(SloTest, MinSamplesGatesWindowedRulesOnly)
{
    MetricsRegistry reg;
    Histogram &lat = reg.histogram("lat_ms", 1e-3, 1e5, 8);
    reg.gauge("depth").set(100.0);

    SloMonitorConfig cfg;
    cfg.detect_anomalies = false;
    cfg.min_samples = 10;
    SloMonitor slo(reg,
                   parseSloRules("hist lat_ms p99 fail 50\n"
                                 "gauge depth fail 8"),
                   cfg);

    // 5 breaching samples < min_samples: insufficient data, Healthy —
    // but the gauge rule is instantaneous and still breaches.
    for (int i = 0; i < 5; ++i)
        lat.record(1000.0);
    SloReport rep = slo.tick(1.0);
    ASSERT_EQ(rep.rules.size(), 2u);
    EXPECT_EQ(rep.rules[0].verdict, SloVerdict::Healthy);
    EXPECT_EQ(rep.rules[1].verdict, SloVerdict::Breached);

    for (int i = 0; i < 10; ++i)
        lat.record(1000.0);
    rep = slo.tick(2.0);
    EXPECT_EQ(rep.rules[0].verdict, SloVerdict::Breached);
}

// --------------------------------------------------------------------------
// Anomaly detectors

TEST_F(SloTest, EwmaDetectorFlagsSpikeAfterWarmupAndIsRepeatable)
{
    EwmaConfig cfg;    // alpha 0.3, z 4, warmup 5
    auto run = [&cfg](std::vector<bool> &fired) {
        EwmaDetector d(cfg);
        for (int i = 0; i < 10; ++i)
            fired.push_back(d.observe(10.0 + 0.1 * (i % 3)));
        fired.push_back(d.observe(100.0));    // spike
        fired.push_back(d.observe(10.0));
    };
    std::vector<bool> a, b;
    run(a);
    run(b);
    EXPECT_EQ(a, b);    // pure function of the observation sequence
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(a[i]) << i;    // stable baseline never flags
    EXPECT_TRUE(a[10]);             // the spike flags

    // Warmup: a spike inside the first `warmup` samples never flags.
    EwmaDetector early(cfg);
    for (int i = 0; i < cfg.warmup - 1; ++i)
        early.observe(10.0);
    EXPECT_FALSE(early.observe(1e6));

    // NaN observations are ignored, not folded into the baseline.
    EwmaDetector nan_d(cfg);
    for (int i = 0; i < 8; ++i)
        nan_d.observe(10.0);
    EXPECT_FALSE(nan_d.observe(std::nan("")));
    EXPECT_EQ(nan_d.samples(), 8);
}

TEST_F(SloTest, StepChangeDetectorFlagsLevelShift)
{
    StepChangeConfig cfg;    // window 8, rel_threshold 0.5
    StepChangeDetector d(cfg);
    // Old level 10 for W samples, new level 20 for W samples: the
    // comparison needs a full 2W before it can fire.
    for (int i = 0; i < cfg.window; ++i)
        EXPECT_FALSE(d.observe(10.0)) << i;
    bool fired = false;
    for (int i = 0; i < cfg.window; ++i)
        fired = d.observe(20.0) || fired;
    EXPECT_TRUE(fired);
    EXPECT_NEAR(d.lastShift(), 1.0, 0.02);    // 20/10 - 1

    // A stream that never shifts never fires, even over many windows.
    StepChangeDetector flat(cfg);
    for (int i = 0; i < 6 * cfg.window; ++i)
        EXPECT_FALSE(flat.observe(10.0)) << i;
}

TEST_F(SloTest, AnomalyEscalatesHealthyWindowToDegradedOnly)
{
    MetricsRegistry reg;
    Histogram &lat = reg.histogram("lat_ms", 1e-3, 1e5, 8);
    // fail far above anything recorded: thresholds alone stay Healthy.
    SloMonitor slo(reg, parseSloRules("hist lat_ms p99 fail 1e6"));

    // Warm the EWMA baseline with stable windows...
    for (int t = 1; t <= 8; ++t) {
        for (int i = 0; i < 20; ++i)
            lat.record(10.0);
        SloReport rep = slo.tick(static_cast<double>(t));
        EXPECT_EQ(rep.verdict, SloVerdict::Healthy) << t;
        EXPECT_FALSE(rep.rules[0].anomaly) << t;
    }
    // ...then one wildly different window: anomalous, but NOT a
    // threshold crossing — Degraded, never Breached.
    for (int i = 0; i < 20; ++i)
        lat.record(500.0);
    SloReport rep = slo.tick(9.0);
    EXPECT_TRUE(rep.rules[0].anomaly);
    EXPECT_GT(rep.rules[0].z, 4.0);
    EXPECT_EQ(rep.verdict, SloVerdict::Degraded);
    EXPECT_EQ(slo.worstVerdict(), SloVerdict::Degraded);
}

// --------------------------------------------------------------------------
// Determinism

TEST_F(SloTest, ConcurrentRecordingMatchesSerialVerdicts)
{
    // The same multiset of samples, recorded serially vs from four
    // threads, must produce identical windowed values and verdicts —
    // the PR-9 histogram determinism carries through snapshot deltas
    // into SLO evaluation.
    const std::string spec =
        "hist lat_ms p99 warn 10 fail 50\n"
        "ratio shed / done warn 0.1 fail 0.5";
    std::vector<double> samples;
    for (int i = 0; i < 4000; ++i)
        samples.push_back(0.5 + (i % 97) * 0.37);

    auto evaluate = [&](bool threaded, SloReport &out) {
        MetricsRegistry reg;
        Histogram &lat = reg.histogram("lat_ms", 1e-3, 1e5, 8);
        SloMonitorConfig cfg;
        cfg.detect_anomalies = false;
        SloMonitor slo(reg, parseSloRules(spec), cfg);
        if (threaded) {
            std::vector<std::thread> workers;
            for (int w = 0; w < 4; ++w)
                workers.emplace_back([&, w] {
                    for (size_t i = w; i < samples.size(); i += 4) {
                        lat.record(samples[i]);
                        reg.counter("done").add();
                        if (i % 50 == 0)
                            reg.counter("shed").add();
                    }
                });
            for (std::thread &t : workers)
                t.join();
        } else {
            for (size_t i = 0; i < samples.size(); ++i) {
                lat.record(samples[i]);
                reg.counter("done").add();
                if (i % 50 == 0)
                    reg.counter("shed").add();
            }
        }
        out = slo.tick(1.0);
    };

    SloReport serial, threaded;
    evaluate(false, serial);
    evaluate(true, threaded);
    ASSERT_EQ(serial.rules.size(), threaded.rules.size());
    EXPECT_EQ(serial.verdict, threaded.verdict);
    for (size_t i = 0; i < serial.rules.size(); ++i) {
        EXPECT_DOUBLE_EQ(serial.rules[i].value, threaded.rules[i].value);
        EXPECT_EQ(serial.rules[i].samples, threaded.rules[i].samples);
        EXPECT_EQ(serial.rules[i].verdict, threaded.rules[i].verdict);
    }
}

// --------------------------------------------------------------------------
// Breach spans and exporter wiring

TEST_F(SloTest, BreachedWindowRecordsSpanIntoChromeTrace)
{
    MetricsRegistry reg;
    Histogram &lat = reg.histogram("lat_ms", 1e-3, 1e5, 8);
    SloMonitorConfig cfg;
    cfg.detect_anomalies = false;
    SloMonitor slo(reg, parseSloRules("hist lat_ms p99 fail 50"), cfg);

    Tracer tracer;
    Tracer::enable(&tracer);
    lat.record(1.0);
    slo.tick(1.0);       // healthy: no span
    lat.record(1000.0);
    slo.tick(2.0);       // breached: one "slo.breach" span
    Tracer::enable(nullptr);

    int breach_spans = 0;
    for (const auto &span : tracer.snapshotSpans())
        if (std::string(span.name) == "slo.breach")
            ++breach_spans;
    EXPECT_EQ(breach_spans, 1);

    std::ostringstream os;
    tracer.writeChromeTrace(os);
    EXPECT_NE(os.str().find("slo.breach"), std::string::npos);
}

TEST_F(SloTest, ExporterTickHookRunsBeforeFinalFlush)
{
    // The tick hook must run before EVERY snapshot line — including the
    // final flush stop() writes — so gauges the hook sets (the SLO
    // verdict stream) appear even in a run too short for one period.
    const std::string path = "test_slo_exporter.jsonl";
    MetricsRegistry reg;
    reg.counter("req").add(3);
    {
        MetricsExporter exporter(reg, path, /*period_ms=*/60'000);
        exporter.setTickHook(
            [&reg](double) { reg.gauge("hook.fired").set(1.0); });
        exporter.stop();
        EXPECT_GE(exporter.snapshots(), 1);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line, last;
    int lines = 0;
    while (std::getline(in, line))
        if (!line.empty()) {
            last = line;
            ++lines;
        }
    in.close();
    std::remove(path.c_str());
    EXPECT_GE(lines, 1);
    EXPECT_NE(last.find("\"hook.fired\""), std::string::npos);
    EXPECT_NE(last.find("\"req\""), std::string::npos);
}

// --------------------------------------------------------------------------
// Acceptance scenario: clean serving Healthy, worker-stall Breached

TEST_F(SloTest, ServiceCleanRejectRunIsHealthyWorkerStallBreaches)
{
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel model = generateSceneGaussians(spec, 500);
    std::vector<Camera> cameras = generateCameraPath(spec, 6, 64, 40);
    // The exact rules micro_overload embeds (anchored loosely here —
    // what matters is the clean/fault verdict FLIP, not the band).
    const std::string rules =
        "ratio serve.shed_deadline / serve.requests warn 0.1 fail 0.5";

    auto run = [&](bool stall) {
        SnapshotSlot slot;
        slot.publish(model, 0);
        FaultPlan plan;
        plan.at(FaultPoint::WorkerStall).every_n = 1;
        plan.at(FaultPoint::WorkerStall).hold = true;
        FaultInjector faults(plan);

        MetricsRegistry reg;
        ServeConfig cfg;
        cfg.workers = 1;
        cfg.max_batch = 2;
        cfg.queue_capacity = 16;
        cfg.render.sh_degree = 1;
        cfg.admission.shed = ShedPolicy::Reject;
        cfg.admission.deadline_s = stall ? 0.05 : 30.0;
        cfg.metrics = &reg;
        if (stall)
            cfg.faults = &faults;
        RenderService service(slot, cfg);
        SloMonitorConfig mon_cfg;
        mon_cfg.detect_anomalies = false;
        SloMonitor slo(reg, parseSloRules(rules), mon_cfg);

        std::vector<std::future<RenderResponse>> futs;
        for (int r = 0; r < 8; ++r)
            futs.push_back(service.submit(cameras[r % 6]));
        if (stall) {
            // Pin the worker past every queued request's deadline, then
            // release: each dequeue finds an expired request.
            std::this_thread::sleep_for(std::chrono::milliseconds(150));
            faults.release(FaultPoint::WorkerStall);
        }
        int ok = 0, shed_deadline = 0;
        for (auto &f : futs) {
            RenderResponse resp = f.get();    // must never hang or throw
            if (resp.ok())
                ++ok;
            else if (resp.status == ServeStatus::ShedDeadline)
                ++shed_deadline;
        }
        service.stop();
        SloReport rep = slo.total(1.0);
        if (stall) {
            EXPECT_EQ(ok, 0);
            EXPECT_EQ(shed_deadline, 8);
            EXPECT_EQ(rep.verdict, SloVerdict::Breached) << rep.summary();
        } else {
            EXPECT_EQ(ok, 8);
            EXPECT_EQ(rep.verdict, SloVerdict::Healthy) << rep.summary();
        }
    };
    run(/*stall=*/false);
    run(/*stall=*/true);
}

} // namespace
} // namespace clm
