/**
 * @file
 * Spatial-sharding tests: partitioner invariants (disjoint cover,
 * sphere-containing bounds, determinism, arbitrary K), sharded
 * snapshots (bitwise row copies, rebuild-only-on-version-change),
 * frustum routing (conservative: never prunes a shard holding an
 * in-frustum Gaussian; edge cases: zero shards hit, one-cluster
 * models, empty model, K = 1), and the tentpole exactness property —
 * renderForwardSharded is bitwise identical to unsharded renderForward
 * for shard counts {1, 2, 4, 8}, in the SIMD and scalar compositor
 * configs, with and without router pruning, under arena reuse — plus
 * the sharded RenderService end to end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <vector>

#include "render/culling.hpp"
#include "render/rasterizer.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"
#include "serve/render_service.hpp"
#include "serve/snapshot.hpp"
#include "shard/partitioner.hpp"
#include "shard/router.hpp"
#include "shard/shard_renderer.hpp"
#include "shard/sharded_snapshot.hpp"
#include "core/clm.hpp"

namespace clm {
namespace {

/** Bitwise comparison of two forward-pass outputs (same helper as
 *  tests/test_serve.cpp — the sharded pipeline asserts the identical
 *  contract). */
void
expectOutputsIdentical(const RenderOutput &a, const RenderOutput &b)
{
    ASSERT_EQ(a.image.width(), b.image.width());
    ASSERT_EQ(a.image.height(), b.image.height());
    EXPECT_EQ(a.image.data(), b.image.data());
    EXPECT_EQ(a.final_t, b.final_t);
    EXPECT_EQ(a.n_contrib, b.n_contrib);
    EXPECT_EQ(a.isect_vals, b.isect_vals);
    ASSERT_EQ(a.tile_ranges.size(), b.tile_ranges.size());
    for (size_t t = 0; t < a.tile_ranges.size(); ++t) {
        EXPECT_EQ(a.tile_ranges[t].begin, b.tile_ranges[t].begin);
        EXPECT_EQ(a.tile_ranges[t].end, b.tile_ranges[t].end);
    }
    EXPECT_EQ(a.tiles_x, b.tiles_x);
    EXPECT_EQ(a.tiles_y, b.tiles_y);
}

struct ShardFixture
{
    GaussianModel model;
    std::vector<Camera> cameras;

    explicit ShardFixture(const char *scene = "Bicycle",
                          size_t n_gaussians = 1500, int width = 96,
                          int height = 61)
    {
        SceneSpec spec = SceneSpec::byName(scene);
        model = generateSceneGaussians(spec, n_gaussians);
        cameras = generateCameraPath(spec, 6, width, height);
    }

    std::shared_ptr<const ShardedSnapshot>
    sharded(int shards) const
    {
        auto base = std::make_shared<ModelSnapshot>();
        base->model = model;
        base->version = 1;
        base->param_hash = hashModelParams(model);
        return buildShardedSnapshot(base, shards);
    }
};

/** A camera looking straight away from every scene generator's
 *  content (mirrors the empty-subset camera of test_serve.cpp). */
Camera
lookAwayCamera(int width = 64, int height = 48)
{
    return Camera::lookAt(Vec3{40, 0, 2}, Vec3{80, 0, 2}, Vec3{0, 0, 1},
                          width, height, 0.9f, 0.05f, 11.0f);
}

TEST(Partitioner, DisjointCoverWithContainingBounds)
{
    ShardFixture fix;
    for (int k : {1, 2, 3, 4, 8}) {
        ShardPartition part = partitionModel(fix.model, k);
        ASSERT_EQ(part.shardCount(), static_cast<size_t>(k));
        std::vector<uint32_t> seen;
        for (const ShardCell &cell : part.cells) {
            EXPECT_TRUE(
                std::is_sorted(cell.members.begin(), cell.members.end()));
            for (uint32_t g : cell.members) {
                seen.push_back(g);
                // Bounds must contain the member's cull sphere.
                const float r = cullBoundingRadius(fix.model, g);
                const Vec3 &p = fix.model.position(g);
                EXPECT_TRUE(cell.bounds.contains(p));
                EXPECT_LE(cell.bounds.lo.x, p.x - r);
                EXPECT_LE(cell.bounds.lo.y, p.y - r);
                EXPECT_LE(cell.bounds.lo.z, p.z - r);
                EXPECT_GE(cell.bounds.hi.x, p.x + r);
                EXPECT_GE(cell.bounds.hi.y, p.y + r);
                EXPECT_GE(cell.bounds.hi.z, p.z + r);
            }
        }
        // Disjoint cover: every Gaussian in exactly one shard.
        std::sort(seen.begin(), seen.end());
        ASSERT_EQ(seen.size(), fix.model.size()) << "k=" << k;
        for (size_t i = 0; i < seen.size(); ++i)
            EXPECT_EQ(seen[i], static_cast<uint32_t>(i));
    }
}

TEST(Partitioner, DeterministicAndBalanced)
{
    ShardFixture fix;
    ShardPartition a = partitionModel(fix.model, 4);
    ShardPartition b = partitionModel(fix.model, 4);
    ASSERT_EQ(a.shardCount(), b.shardCount());
    for (size_t s = 0; s < a.shardCount(); ++s) {
        EXPECT_EQ(a.cells[s].members, b.cells[s].members);
        // Median-by-count splits keep shards within 2x of each other
        // for any spatial distribution.
        EXPECT_GE(a.cells[s].members.size(), fix.model.size() / 4 / 2);
    }
}

TEST(Partitioner, MoreShardsThanGaussiansYieldsEmptyCells)
{
    ShardFixture fix;
    GaussianModel tiny;
    tiny.resize(3);
    for (size_t i = 0; i < 3; ++i)
        tiny.position(i) = fix.model.position(i);
    ShardPartition part = partitionModel(tiny, 8);
    ASSERT_EQ(part.shardCount(), 8u);
    size_t members = 0, empty = 0;
    for (const ShardCell &cell : part.cells) {
        members += cell.members.size();
        if (cell.members.empty()) {
            ++empty;
            EXPECT_TRUE(cell.bounds.empty());
        }
    }
    EXPECT_EQ(members, 3u);
    EXPECT_EQ(empty, 5u);
}

TEST(Partitioner, OneSpatialClusterSplitsByCount)
{
    // All Gaussians share one center: K exceeds the occupied spatial
    // cells, yet the count-median split still spreads members and
    // keeps the partition a disjoint cover.
    GaussianModel model(20);
    for (size_t i = 0; i < model.size(); ++i) {
        model.position(i) = Vec3{1.0f, 2.0f, 3.0f};
        model.logScale(i) = Vec3{-2.0f, -2.0f, -2.0f};
        model.rotation(i) = Quat{1, 0, 0, 0};
    }
    ShardPartition part = partitionModel(model, 8);
    size_t members = 0;
    for (const ShardCell &cell : part.cells) {
        members += cell.members.size();
        EXPECT_LE(cell.members.size(), 3u);
    }
    EXPECT_EQ(members, 20u);
}

TEST(Partitioner, NonFiniteRowsStayRoutableAndExact)
{
    // Diverged-training hardening: frustumCull conservatively KEEPS
    // rows with NaN parameters, so the partition comparator must stay
    // a strict weak order and the owning shard must become unprunable
    // (full-range bounds) — otherwise routing would drop a row the
    // exact cull selects and break bitwise identity.
    ShardFixture fix;
    GaussianModel model = fix.model;
    const float nan = std::numeric_limits<float>::quiet_NaN();
    model.position(7).y = nan;                      // NaN center
    model.logScale(11) = Vec3{nan, nan, nan};       // NaN cull radius
    ShardPartition part = partitionModel(model, 4);
    size_t members = 0;
    for (const ShardCell &cell : part.cells) {
        members += cell.members.size();
        const bool has_nonfinite =
            std::binary_search(cell.members.begin(), cell.members.end(),
                               7u)
            || std::binary_search(cell.members.begin(),
                                  cell.members.end(), 11u);
        if (has_nonfinite) {
            EXPECT_EQ(cell.bounds.lo.x,
                      -std::numeric_limits<float>::max());
            EXPECT_EQ(cell.bounds.hi.z,
                      std::numeric_limits<float>::max());
        }
    }
    EXPECT_EQ(members, model.size());

    auto base = std::make_shared<ModelSnapshot>();
    base->model = model;
    base->version = 1;
    auto snap = buildShardedSnapshot(base, 4);
    ShardRouter router(*snap);
    ShardRenderArena arena;
    RenderConfig cfg;
    cfg.sh_degree = 1;
    for (const Camera &cam : fix.cameras) {
        router.route(cam.frustum(), arena.route);
        renderForwardSharded(*snap, arena.route, cam, cfg, arena);
        RenderOutput ref = renderForward(model, cam,
                                         frustumCull(model, cam), cfg);
        expectOutputsIdentical(arena.out, ref);
    }
}

TEST(ShardedSnapshot, CompactModelsAreBitwiseRowCopies)
{
    ShardFixture fix;
    auto snap = fix.sharded(4);
    ASSERT_EQ(snap->shardCount(), 4u);
    EXPECT_EQ(snap->totalGaussians(), fix.model.size());
    for (const ModelShard &shard : snap->shards) {
        ASSERT_EQ(shard.model.size(), shard.global_indices.size());
        for (size_t i = 0; i < shard.model.size(); ++i) {
            const size_t g = shard.global_indices[i];
            EXPECT_EQ(shard.model.position(i).x, fix.model.position(g).x);
            EXPECT_EQ(shard.model.position(i).y, fix.model.position(g).y);
            EXPECT_EQ(shard.model.position(i).z, fix.model.position(g).z);
            EXPECT_EQ(shard.model.logScale(i).x, fix.model.logScale(g).x);
            EXPECT_EQ(shard.model.rawOpacity(i),
                      fix.model.rawOpacity(g));
            for (int c = 0; c < kShDim; ++c)
                EXPECT_EQ(shard.model.sh(i)[c], fix.model.sh(g)[c]);
        }
    }
}

TEST(ShardedSnapshotSlot, RebuildsOnlyOnVersionChange)
{
    ShardFixture fix(/*scene=*/"Bicycle", /*n_gaussians=*/300);
    SnapshotSlot base;
    ShardedSnapshotSlot slot(4);
    EXPECT_EQ(slot.acquire(), nullptr);
    EXPECT_EQ(slot.version(), 0u);

    base.publish(fix.model, 0);
    slot.publish(base.acquire());
    auto s1 = slot.acquire();
    ASSERT_NE(s1, nullptr);
    EXPECT_EQ(slot.version(), 1u);

    // Same base version: publish must be a no-op (same object).
    slot.publish(base.acquire());
    EXPECT_EQ(slot.acquire().get(), s1.get());

    // New base version: re-partitioned snapshot.
    fix.model.position(0).x += 1.0f;
    base.publish(fix.model, 1);
    slot.publish(base.acquire());
    auto s2 = slot.acquire();
    ASSERT_NE(s2, nullptr);
    EXPECT_NE(s2.get(), s1.get());
    EXPECT_EQ(slot.version(), 2u);
    EXPECT_EQ(s2->base->param_hash, hashModelParams(fix.model));
}

TEST(ShardRouter, NeverPrunesAShardWithInFrustumMembers)
{
    ShardFixture fix;
    for (int k : {1, 2, 4, 8}) {
        auto snap = fix.sharded(k);
        ShardRouter router(*snap);
        std::vector<uint32_t> selected;
        for (const Camera &cam : fix.cameras) {
            router.route(cam.frustum(), selected);
            EXPECT_TRUE(std::is_sorted(selected.begin(), selected.end()));
            // Conservative: any shard whose compact cull is non-empty
            // must have been selected.
            for (size_t s = 0; s < snap->shardCount(); ++s) {
                auto local = frustumCull(snap->shards[s].model, cam);
                if (local.empty())
                    continue;
                EXPECT_TRUE(std::binary_search(selected.begin(),
                                               selected.end(),
                                               static_cast<uint32_t>(s)))
                    << "k=" << k << " shard " << s << " pruned with "
                    << local.size() << " in-frustum members";
            }
        }
    }
}

TEST(ShardRouter, ViewAwayFromSceneSelectsZeroShards)
{
    ShardFixture fix;
    auto snap = fix.sharded(4);
    ShardRouter router(*snap);
    const Camera away = lookAwayCamera();
    ASSERT_TRUE(frustumCull(fix.model, away).empty());
    std::vector<uint32_t> selected;
    router.route(away.frustum(), selected);
    EXPECT_TRUE(selected.empty());
}

TEST(ShardRouter, EmptyModelRoutesNowhere)
{
    GaussianModel empty;
    auto base = std::make_shared<ModelSnapshot>();
    base->model = empty;
    base->version = 1;
    auto snap = buildShardedSnapshot(base, 4);
    ASSERT_EQ(snap->shardCount(), 4u);
    EXPECT_EQ(snap->totalGaussians(), 0u);
    ShardRouter router(*snap);
    std::vector<uint32_t> selected;
    for (const Camera &cam :
         ShardFixture(/*scene=*/"Bicycle", /*n_gaussians=*/1).cameras) {
        router.route(cam.frustum(), selected);
        EXPECT_TRUE(selected.empty());
    }
}

void
checkShardedAgainstUnsharded(const ShardFixture &fix,
                             const RenderConfig &cfg,
                             std::initializer_list<int> shard_counts)
{
    for (int k : shard_counts) {
        auto snap = fix.sharded(k);
        ShardRouter router(*snap);
        ShardRenderArena arena;
        for (size_t v = 0; v < fix.cameras.size(); ++v) {
            const Camera &cam = fix.cameras[v];
            RenderOutput ref = renderForward(
                fix.model, cam, frustumCull(fix.model, cam), cfg);
            // Routed selection (the serving path)...
            std::vector<uint32_t> selected;
            router.route(cam.frustum(), selected);
            renderForwardSharded(*snap, selected, cam, cfg, arena);
            SCOPED_TRACE("k=" + std::to_string(k) + " view "
                         + std::to_string(v));
            expectOutputsIdentical(arena.out, ref);
            // ...and the all-shards overload must agree too.
            ShardRenderArena all_arena;
            renderForwardSharded(*snap, cam, cfg, all_arena);
            expectOutputsIdentical(all_arena.out, ref);
        }
    }
}

TEST(ShardRenderer, BitwiseIdenticalToUnshardedSimd)
{
    ShardFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 2;
    cfg.use_simd = true;    // scalar fallback in CLM_DISABLE_SIMD builds
    checkShardedAgainstUnsharded(fix, cfg, {1, 2, 4, 8});
}

TEST(ShardRenderer, BitwiseIdenticalToUnshardedScalar)
{
    ShardFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 2;
    cfg.use_simd = false;    // the scalar reference compositor
    checkShardedAgainstUnsharded(fix, cfg, {1, 2, 4, 8});
}

TEST(ShardRenderer, BitwiseIdenticalOnAllQualityHarnessScenes)
{
    // The full K sweep on every harness scene topology — aerial
    // (Rubble), indoor (Alameda), street (Ithaca: long drives whose
    // directional frustums prune most shards), city-scale aerial
    // (BigCity) — so a scene-dependent regression on any (scene, K)
    // pair cannot slip past. Bicycle gets the sweep in both compositor
    // configs above.
    for (const char *scene : {"Rubble", "Alameda", "Ithaca", "BigCity"}) {
        SCOPED_TRACE(scene);
        ShardFixture fix(scene, /*n_gaussians=*/1200, /*width=*/80,
                         /*height=*/45);
        RenderConfig cfg;
        cfg.sh_degree = 1;
        checkShardedAgainstUnsharded(fix, cfg, {1, 2, 4, 8});
    }
}

TEST(ShardRenderer, ShardCountOneEquivalentToUnsharded)
{
    // The K=1 fast path: one shard holding the whole model, router
    // selects it (or prunes it for an away view) — output must equal
    // plain renderForward either way.
    ShardFixture fix;
    auto snap = fix.sharded(1);
    ASSERT_EQ(snap->shardCount(), 1u);
    ASSERT_EQ(snap->shards[0].model.size(), fix.model.size());
    RenderConfig cfg;
    cfg.sh_degree = 1;
    ShardRouter router(*snap);
    ShardRenderArena arena;
    std::vector<uint32_t> selected;
    for (const Camera &cam : fix.cameras) {
        router.route(cam.frustum(), selected);
        EXPECT_EQ(selected.size(), 1u);
        renderForwardSharded(*snap, selected, cam, cfg, arena);
        RenderOutput ref = renderForward(fix.model, cam,
                                         frustumCull(fix.model, cam),
                                         cfg);
        expectOutputsIdentical(arena.out, ref);
    }
}

TEST(ShardRenderer, ZeroSelectedShardsRendersBackground)
{
    ShardFixture fix;
    auto snap = fix.sharded(4);
    RenderConfig cfg;
    cfg.background = {0.25f, 0.5f, 0.75f};
    const Camera away = lookAwayCamera();
    ShardRouter router(*snap);
    ShardRenderArena arena;
    router.route(away.frustum(), arena.route);
    ASSERT_TRUE(arena.route.empty());
    renderForwardSharded(*snap, arena.route, away, cfg, arena);
    RenderOutput ref =
        renderForward(fix.model, away, frustumCull(fix.model, away), cfg);
    expectOutputsIdentical(arena.out, ref);
    const Vec3 px = arena.out.image.pixel(0, 0);
    EXPECT_EQ(px.x, 0.25f);
    EXPECT_EQ(px.y, 0.5f);
    EXPECT_EQ(px.z, 0.75f);
}

TEST(ShardRenderer, EmptyModelRendersBackground)
{
    GaussianModel empty;
    auto base = std::make_shared<ModelSnapshot>();
    base->model = empty;
    base->version = 1;
    auto snap = buildShardedSnapshot(base, 4);
    ShardFixture fix(/*scene=*/"Bicycle", /*n_gaussians=*/1);
    RenderConfig cfg;
    ShardRenderArena arena;
    const RenderOutput &out =
        renderForwardSharded(*snap, fix.cameras[0], cfg, arena);
    RenderOutput ref = renderForward(empty, fix.cameras[0], {}, cfg);
    expectOutputsIdentical(out, ref);
}

TEST(ShardRenderer, ArenaReuseIsBitwiseNeutral)
{
    ShardFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 2;
    auto snap8 = fix.sharded(8);
    auto snap2 = fix.sharded(2);
    ShardRenderArena reused;
    // Dirty every scratch buffer with a larger shard fan-out first.
    renderForwardSharded(*snap8, fix.cameras[0], cfg, reused);
    renderForwardSharded(*snap2, fix.cameras[1], cfg, reused);
    ShardRenderArena fresh;
    renderForwardSharded(*snap2, fix.cameras[1], cfg, fresh);
    expectOutputsIdentical(reused.out, fresh.out);
}

TEST(RenderServiceSharded, ServesFramesIdenticalToDirectRenders)
{
    ShardFixture fix(/*scene=*/"Bicycle", /*n_gaussians=*/800);
    SnapshotSlot base;
    base.publish(fix.model, 0);
    ShardedSnapshotSlot slot(4);
    slot.publish(base.acquire());

    ServeConfig cfg;
    cfg.workers = 2;
    cfg.max_batch = 4;
    cfg.render.sh_degree = 1;
    RenderService service(slot, cfg);

    std::vector<std::future<RenderResponse>> futs;
    for (int r = 0; r < 12; ++r)
        futs.push_back(service.submit(fix.cameras[r % 6]));
    for (int r = 0; r < 12; ++r) {
        RenderResponse resp = futs[r].get();
        EXPECT_EQ(resp.snapshot_version, 1u);
        EXPECT_EQ(resp.shards_total, 4);
        EXPECT_GE(resp.shards_selected, 1);
        EXPECT_LE(resp.shards_selected, 4);
        auto subset = frustumCull(fix.model, fix.cameras[r % 6]);
        Image direct = renderForward(fix.model, fix.cameras[r % 6],
                                     subset, cfg.render)
                           .image;
        EXPECT_EQ(resp.image.data(), direct.data()) << "request " << r;
    }
    service.stop();
    ServeStats stats = service.stats();
    EXPECT_EQ(stats.requests, 12u);
    EXPECT_EQ(stats.sharded_requests, 12u);
    EXPECT_GE(stats.mean_shards_selected, 1.0);
    EXPECT_LE(stats.mean_shards_selected, 4.0);
    EXPECT_GE(stats.mean_shard_frac_pruned, 0.0);
    EXPECT_LE(stats.mean_shard_frac_pruned, 1.0);
}

TEST(RenderServiceSharded, TrainingRepublishesShardedSnapshots)
{
    // Clm::enableSharding wires the trainer's sharded sink: training
    // must advance the sharded slot in lockstep with the plain slot,
    // and served frames must reproduce from the published base model.
    ClmConfig config;
    config.scene = SceneSpec::bicycle();
    config.scene.train = {400, 6, 48, 32};
    config.train.render.sh_degree = 1;
    config.train.loss.ssim_window = 5;
    Clm session(config);
    ShardedSnapshotSlot &slot = session.enableSharding(4);
    EXPECT_EQ(slot.version(), session.snapshots().version());

    session.train(2);
    EXPECT_EQ(slot.version(), session.snapshots().version());
    auto snap = slot.acquire();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->base->param_hash,
              hashModelParams(session.model()));

    ServeConfig cfg;
    cfg.render = config.train.render;
    RenderService service(slot, cfg);
    RenderResponse resp = service.submit(session.camera(0)).get();
    EXPECT_EQ(resp.snapshot_version, snap->base->version);
    Image direct =
        renderForward(session.model(), session.camera(0),
                      frustumCull(session.model(), session.camera(0)),
                      cfg.render)
            .image;
    EXPECT_EQ(resp.image.data(), direct.data());
}

} // namespace
} // namespace clm
