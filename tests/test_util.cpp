/**
 * @file
 * Tests for the util layer: logging error paths, the table printer, the
 * timer, image file output, and the blocking MPMC queue behind the
 * render service.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <thread>

#include <cstdlib>

#include "render/image.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"
#include "util/mpmc_queue.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace clm {
namespace {

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(CLM_PANIC("boom ", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(CLM_FATAL("bad config"), std::runtime_error);
}

TEST(Logging, AssertPassesAndFails)
{
    CLM_ASSERT(1 + 1 == 2, "fine");
    EXPECT_THROW(CLM_ASSERT(false, "value was ", 7), std::logic_error);
}

TEST(Logging, LevelsAreSettable)
{
    LogLevel old_level = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    warn("suppressed");    // must not crash
    inform("suppressed");
    setLogLevel(old_level);
}

TEST(Table, PrintsAlignedMarkdown)
{
    Table t({"A", "Long header"});
    t.addRow({"1", "x"});
    t.addRow({"22", "yy"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("| A "), std::string::npos);
    EXPECT_NE(s.find("Long header"), std::string::npos);
    // Header + separator + 2 rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsWrongArity)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), std::logic_error);
}

TEST(Table, Formatting)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
    EXPECT_EQ(Table::fmtBytes(1024.0), "1.00 KB");
    EXPECT_EQ(Table::fmtBytes(1536.0 * 1024 * 1024), "1.50 GB");
}

TEST(Timer, MeasuresElapsedTime)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    double ms = t.millis();
    EXPECT_GE(ms, 10.0);
    EXPECT_LT(ms, 2000.0);
    t.reset();
    EXPECT_LT(t.millis(), 10.0);
}

TEST(Image, PpmRoundTripHeader)
{
    Image img(4, 3, {1.0f, 0.0f, 0.5f});
    std::string path = "/tmp/clm_test_img.ppm";
    img.writePpm(path);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char magic[3] = {};
    ASSERT_EQ(std::fscanf(f, "%2s", magic), 1);
    EXPECT_STREQ(magic, "P6");
    int w = 0, h = 0, maxv = 0;
    ASSERT_EQ(std::fscanf(f, "%d %d %d", &w, &h, &maxv), 3);
    EXPECT_EQ(w, 4);
    EXPECT_EQ(h, 3);
    EXPECT_EQ(maxv, 255);
    std::fgetc(f);    // newline
    // First pixel: clamped bytes 255, 0, 127|128.
    int r = std::fgetc(f), g = std::fgetc(f), b = std::fgetc(f);
    EXPECT_EQ(r, 255);
    EXPECT_EQ(g, 0);
    EXPECT_NEAR(b, 128, 1);
    std::fclose(f);
    std::remove(path.c_str());
}

TEST(Env, IntParsesClampsAndRejectsGarbage)
{
    // The one shared env-parsing policy (util/env.hpp): unset -> the
    // fallback, numbers clamp into range, garbage warns and falls back
    // instead of silently turning into 0.
    ASSERT_EQ(unsetenv("CLM_TEST_ENV"), 0);
    EXPECT_EQ(envInt("CLM_TEST_ENV", 7, 1, 100), 7);
    ASSERT_EQ(setenv("CLM_TEST_ENV", "42", 1), 0);
    EXPECT_EQ(envInt("CLM_TEST_ENV", 7, 1, 100), 42);
    ASSERT_EQ(setenv("CLM_TEST_ENV", "-5", 1), 0);
    EXPECT_EQ(envInt("CLM_TEST_ENV", 7, 1, 100), 1);    // clamp low
    ASSERT_EQ(setenv("CLM_TEST_ENV", "4096", 1), 0);
    EXPECT_EQ(envInt("CLM_TEST_ENV", 7, 1, 100), 100);    // clamp high
    // strtol-style leading whitespace is tolerated.
    ASSERT_EQ(setenv("CLM_TEST_ENV", " 3", 1), 0);
    EXPECT_EQ(envInt("CLM_TEST_ENV", 7, 1, 100), 3);
    for (const char *garbage :
         {"", "abc", "12abc", "1.5", "999999999999999999999"}) {
        ASSERT_EQ(setenv("CLM_TEST_ENV", garbage, 1), 0);
        EXPECT_EQ(envInt("CLM_TEST_ENV", 7, 1, 100), 7)
            << "value \"" << garbage << "\"";
    }
    ASSERT_EQ(unsetenv("CLM_TEST_ENV"), 0);
}

TEST(Env, ChoiceMatchesExactlyOrFallsBack)
{
    static const char *const kChoices[] = {"avx2", "sse2", "scalar"};
    ASSERT_EQ(unsetenv("CLM_TEST_ENV"), 0);
    EXPECT_EQ(envChoice("CLM_TEST_ENV", kChoices, 3, nullptr), nullptr);
    ASSERT_EQ(setenv("CLM_TEST_ENV", "sse2", 1), 0);
    // Matches return the canonical table pointer (pointer identity).
    EXPECT_EQ(envChoice("CLM_TEST_ENV", kChoices, 3, nullptr),
              kChoices[1]);
    for (const char *garbage : {"SSE2", "sse", "sse2 ", "", "banana"}) {
        ASSERT_EQ(setenv("CLM_TEST_ENV", garbage, 1), 0);
        EXPECT_EQ(envChoice("CLM_TEST_ENV", kChoices, 3, kChoices[2]),
                  kChoices[2])
            << "value \"" << garbage << "\"";
    }
    ASSERT_EQ(unsetenv("CLM_TEST_ENV"), 0);
}

TEST(ThreadPool, ClmThreadsEnvPinsDefaultWorkerCount)
{
    // CLM_THREADS pins the default (threads == 0) pool size through
    // util/env.hpp: numeric values clamp into [1, 1024], garbage warns
    // and falls back to hardware concurrency, unset falls back
    // silently. Local pools read the env at construction, exactly
    // like the lazily-constructed global() pool does.
    ASSERT_EQ(setenv("CLM_THREADS", "3", 1), 0);
    {
        ThreadPool pool;
        EXPECT_EQ(pool.threads(), 3u);
    }
    ASSERT_EQ(setenv("CLM_THREADS", "0", 1), 0);
    {
        ThreadPool pool;
        EXPECT_EQ(pool.threads(), 1u);    // clamped to >= 1
    }
    ASSERT_EQ(setenv("CLM_THREADS", "-4", 1), 0);
    {
        ThreadPool pool;
        EXPECT_EQ(pool.threads(), 1u);
    }
    ASSERT_EQ(unsetenv("CLM_THREADS"), 0);
    {
        ThreadPool pool;
        EXPECT_GE(pool.threads(), 1u);
    }
    // Garbage warns and falls back to hardware concurrency, the same
    // count an unset variable selects.
    ASSERT_EQ(setenv("CLM_THREADS", "lots", 1), 0);
    {
        ThreadPool pool;
        EXPECT_EQ(pool.threads(),
                  std::max(1u, std::thread::hardware_concurrency()));
    }
    // An explicit count always wins over the environment.
    ASSERT_EQ(setenv("CLM_THREADS", "5", 1), 0);
    {
        ThreadPool pool(2);
        EXPECT_EQ(pool.threads(), 2u);
    }
    ASSERT_EQ(unsetenv("CLM_THREADS"), 0);
}

TEST(MpmcQueue, PopBatchDrainsInFifoOrderUpToCap)
{
    MpmcQueue<int> q(16);
    for (int i = 0; i < 7; ++i)
        EXPECT_TRUE(q.push(i));
    EXPECT_EQ(q.size(), 7u);

    std::vector<int> batch;
    EXPECT_TRUE(q.popBatch(batch, 4));
    EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_TRUE(q.popBatch(batch, 4));
    EXPECT_EQ(batch, (std::vector<int>{4, 5, 6}));
}

TEST(MpmcQueue, CloseDrainsRemainderThenFails)
{
    MpmcQueue<int> q(8);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    q.close();
    EXPECT_FALSE(q.push(3));    // dropped

    std::vector<int> batch;
    EXPECT_TRUE(q.popBatch(batch, 8));
    EXPECT_EQ(batch, (std::vector<int>{1, 2}));
    EXPECT_FALSE(q.popBatch(batch, 8));    // closed and empty
    EXPECT_TRUE(batch.empty());
}

TEST(MpmcQueue, BoundedPushBlocksUntilConsumed)
{
    MpmcQueue<int> q(2);
    EXPECT_TRUE(q.push(0));
    EXPECT_TRUE(q.push(1));
    std::atomic<bool> third_pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(q.push(2));    // blocks until a pop makes room
        third_pushed = true;
    });
    // The producer must be parked on the full queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(third_pushed.load());
    std::vector<int> batch;
    EXPECT_TRUE(q.popBatch(batch, 1));
    producer.join();
    EXPECT_TRUE(third_pushed.load());
    EXPECT_TRUE(q.popBatch(batch, 4));
    EXPECT_EQ(batch, (std::vector<int>{1, 2}));
}

TEST(MpmcQueue, ManyProducersOneConsumer)
{
    MpmcQueue<int> q(32);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 50;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i)
                EXPECT_TRUE(q.push(p * kPerProducer + i));
        });
    std::vector<int> got;
    std::vector<int> batch;
    while (got.size() < kProducers * kPerProducer) {
        ASSERT_TRUE(q.popBatch(batch, 8));
        EXPECT_GE(batch.size(), 1u);
        EXPECT_LE(batch.size(), 8u);
        got.insert(got.end(), batch.begin(), batch.end());
    }
    for (auto &t : producers)
        t.join();
    std::sort(got.begin(), got.end());
    for (int i = 0; i < kProducers * kPerProducer; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(MpmcQueue, TryPushRejectsWithoutConsumingTheItem)
{
    MpmcQueue<std::unique_ptr<int>> q(2);
    auto a = std::make_unique<int>(1);
    auto b = std::make_unique<int>(2);
    auto c = std::make_unique<int>(3);
    EXPECT_EQ(q.tryPush(a), QueuePush::Ok);
    EXPECT_EQ(a, nullptr);    // consumed on Ok
    EXPECT_EQ(q.tryPush(b), QueuePush::Ok);
    EXPECT_EQ(q.tryPush(c), QueuePush::Full);
    ASSERT_NE(c, nullptr);    // NOT consumed on Full
    EXPECT_EQ(*c, 3);
    q.close();
    EXPECT_EQ(q.tryPush(c), QueuePush::Closed);
    ASSERT_NE(c, nullptr);    // NOT consumed on Closed either
}

TEST(MpmcQueue, PushForTimesOutOnFullAndSucceedsWhenDrained)
{
    MpmcQueue<int> q(1);
    int v = 7;
    EXPECT_EQ(q.pushFor(v, 0.01), QueuePush::Ok);
    v = 8;
    EXPECT_EQ(q.pushFor(v, 0.01), QueuePush::Full);    // timed out
    EXPECT_EQ(v, 8);
    // A consumer frees space while a timed push waits.
    std::thread consumer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        std::vector<int> batch;
        EXPECT_TRUE(q.popBatch(batch, 1));
        EXPECT_EQ(batch, (std::vector<int>{7}));
    });
    EXPECT_EQ(q.pushFor(v, 5.0), QueuePush::Ok);
    consumer.join();
    std::vector<int> batch;
    EXPECT_TRUE(q.popBatch(batch, 1));
    EXPECT_EQ(batch, (std::vector<int>{8}));
}

TEST(MpmcQueue, PushDropOldestEvictsFromTheHead)
{
    MpmcQueue<int> q(3);
    std::vector<int> evicted;
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(q.push(i));
    int v = 3;
    EXPECT_EQ(q.pushDropOldest(v, evicted), QueuePush::Ok);
    EXPECT_EQ(evicted, (std::vector<int>{0}));    // oldest out
    v = 4;
    EXPECT_EQ(q.pushDropOldest(v, evicted), QueuePush::Ok);
    EXPECT_EQ(evicted, (std::vector<int>{0, 1}));    // appended
    std::vector<int> batch;
    EXPECT_TRUE(q.popBatch(batch, 8));
    EXPECT_EQ(batch, (std::vector<int>{2, 3, 4}));
    q.close();
    v = 5;
    EXPECT_EQ(q.pushDropOldest(v, evicted), QueuePush::Closed);
    EXPECT_EQ(evicted.size(), 2u);    // close evicts nothing
}

TEST(MpmcQueue, PopBatchFilteredSweepsAllExpiredItems)
{
    MpmcQueue<int> q(16);
    // 0..9 queued; odd values "expired". Cap of 3 applies to FRESH
    // items only; every expired item is swept out in one pop.
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(q.push(i));
    std::vector<int> out, expired;
    EXPECT_TRUE(q.popBatchFiltered(
        out, 3, [](int v) { return v % 2 == 1; }, expired));
    EXPECT_EQ(out, (std::vector<int>{0, 2, 4}));
    EXPECT_EQ(expired, (std::vector<int>{1, 3, 5, 7, 9}));
    EXPECT_EQ(q.size(), 2u);    // 6, 8 still queued
    EXPECT_TRUE(q.popBatchFiltered(
        out, 3, [](int v) { return v % 2 == 1; }, expired));
    EXPECT_EQ(out, (std::vector<int>{6, 8}));
    EXPECT_TRUE(expired.empty());

    // All-expired wakeup: returns true with an empty fresh batch (the
    // consumer loops again) — not the closed-and-drained false.
    EXPECT_TRUE(q.push(11));
    EXPECT_TRUE(q.popBatchFiltered(
        out, 3, [](int v) { return v % 2 == 1; }, expired));
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(expired, (std::vector<int>{11}));
    q.close();
    EXPECT_FALSE(q.popBatchFiltered(
        out, 3, [](int v) { return v % 2 == 1; }, expired));
}

/**
 * Satellite regression (close/push/pop races): producers blocking on a
 * full queue while a consumer drains and a third thread closes
 * mid-stream. Every item reported Ok by its push must be popped exactly
 * once, every push after close must fail without consuming, and nothing
 * may deadlock — this also exercises the notify-only-when-items-were-
 * removed fix (a closed-and-drained popBatch frees no capacity and must
 * not need to notify producers for the test to terminate).
 */
TEST(MpmcQueue, CloseWhileProducersBlockedAndConsumerDraining)
{
    for (int round = 0; round < 8; ++round) {
        MpmcQueue<int> q(4);
        constexpr int kProducers = 4;
        constexpr int kPerProducer = 64;
        std::array<std::atomic<int>, kProducers> pushed_ok{};
        std::vector<std::thread> producers;
        for (int p = 0; p < kProducers; ++p)
            producers.emplace_back([&, p] {
                for (int i = 0; i < kPerProducer; ++i) {
                    int v = p * kPerProducer + i;
                    if (!q.push(v))
                        break;    // closed: stop producing
                    pushed_ok[p].fetch_add(1);
                }
            });
        std::atomic<int> popped{0};
        std::thread consumer([&] {
            std::vector<int> batch;
            while (q.popBatch(batch, 3))
                popped.fetch_add(static_cast<int>(batch.size()));
        });
        // Let the system churn briefly, then slam the door.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        q.close();
        for (auto &t : producers)
            t.join();
        consumer.join();
        int ok = 0;
        for (int p = 0; p < kProducers; ++p)
            ok += pushed_ok[p].load();
        EXPECT_EQ(popped.load(), ok) << "round " << round;
        EXPECT_EQ(q.size(), 0u);
        // Closed queue: every intake fails and leaves the item alone.
        int v = -1;
        EXPECT_FALSE(q.push(v));
        EXPECT_EQ(q.tryPush(v), QueuePush::Closed);
        std::vector<int> evicted;
        EXPECT_EQ(q.pushDropOldest(v, evicted), QueuePush::Closed);
        EXPECT_EQ(q.pushFor(v, 0.001), QueuePush::Closed);
    }
}

} // namespace
} // namespace clm
