/**
 * @file
 * Flat key-sorted binning tests: the reusable stable radix sort against
 * std::stable_sort, depth-key monotonicity, the clamped float->int cast
 * helpers, and buildTileIntersections against a brute-force per-tile
 * reference built with independent code.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "math/rng.hpp"
#include "render/binning.hpp"
#include "render/camera.hpp"
#include "render/culling.hpp"
#include "render/rasterizer.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"

namespace clm {
namespace {

void
checkAgainstStableSort(std::vector<uint64_t> keys, int key_bits,
                       bool parallel)
{
    const size_t n = keys.size();
    std::vector<uint32_t> vals(n);
    std::iota(vals.begin(), vals.end(), 0u);

    // Reference: stable sort of (key, original index) pairs.
    std::vector<std::pair<uint64_t, uint32_t>> ref(n);
    for (size_t i = 0; i < n; ++i)
        ref[i] = {keys[i], vals[i]};
    std::stable_sort(ref.begin(), ref.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    std::vector<uint64_t> ks, vs_k;
    std::vector<uint32_t> vs;
    radixSortPairs(keys, vals, ks, vs, key_bits, parallel);
    ASSERT_EQ(keys.size(), n);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(keys[i], ref[i].first) << "key at " << i;
        EXPECT_EQ(vals[i], ref[i].second) << "stability at " << i;
    }
}

TEST(RadixSort, MatchesStableSortWithDuplicates)
{
    Rng rng(1);
    std::vector<uint64_t> keys(5000);
    for (auto &k : keys)
        // Few distinct values -> many stability-relevant ties.
        k = static_cast<uint64_t>(rng.uniformInt(0, 50)) << 32
          | static_cast<uint64_t>(rng.uniformInt(0, 20));
    checkAgainstStableSort(keys, 64, true);
    checkAgainstStableSort(keys, 64, false);
}

TEST(RadixSort, FullWidthRandomKeys)
{
    Rng rng(2);
    std::vector<uint64_t> keys(3000);
    for (auto &k : keys)
        k = (static_cast<uint64_t>(rng.uniformInt(0, int64_t{1} << 60))
             << 3)
          ^ static_cast<uint64_t>(rng.uniformInt(0, int64_t{1} << 40));
    checkAgainstStableSort(keys, 64, true);
}

TEST(RadixSort, TruncatedKeyBitsSortLowBitsOnly)
{
    // With key_bits = 16, only the low 16 bits participate; equal low
    // bits keep their original order regardless of high bits.
    std::vector<uint64_t> keys{0xff00000000000002ull,
                               0x0000000000000001ull,
                               0x1100000000000002ull,
                               0x0000000000000000ull};
    std::vector<uint32_t> vals{0, 1, 2, 3};
    std::vector<uint64_t> ks;
    std::vector<uint32_t> vs;
    radixSortPairs(keys, vals, ks, vs, 16, false);
    EXPECT_EQ(vals, (std::vector<uint32_t>{3, 1, 0, 2}));
}

TEST(RadixSort, EmptyAndSingleton)
{
    std::vector<uint64_t> keys, ks;
    std::vector<uint32_t> vals, vs;
    radixSortPairs(keys, vals, ks, vs);
    EXPECT_TRUE(keys.empty());

    keys = {42};
    vals = {7};
    radixSortPairs(keys, vals, ks, vs);
    EXPECT_EQ(keys[0], 42u);
    EXPECT_EQ(vals[0], 7u);
}

TEST(RadixSort, LargeInputUsesWideDigits)
{
    // Cross the 65536 threshold so the 11-bit-digit path runs.
    Rng rng(3);
    std::vector<uint64_t> keys(70000);
    for (auto &k : keys)
        k = static_cast<uint64_t>(rng.uniformInt(0, 1 << 20)) << 32
          | static_cast<uint64_t>(rng.uniformInt(0, INT32_MAX));
    checkAgainstStableSort(keys, 52, true);
}

TEST(DepthBits, MonotonicForNonNegativeFloats)
{
    std::vector<float> depths{0.0f,    1e-30f, 0.099f, 0.1f, 1.0f,
                              1.0001f, 7.25f,  1e4f,   3e38f};
    for (size_t i = 1; i < depths.size(); ++i)
        EXPECT_LT(depthBits(depths[i - 1]), depthBits(depths[i]))
            << depths[i - 1] << " vs " << depths[i];
    EXPECT_EQ(depthBits(2.5f), depthBits(2.5f));
}

TEST(ClampedCasts, BoundsAndExtremes)
{
    EXPECT_EQ(clampedFloor(3.7f, 0, 10), 3);
    EXPECT_EQ(clampedFloor(-3.7f, 0, 10), 0);
    EXPECT_EQ(clampedFloor(12.0f, 0, 10), 10);
    EXPECT_EQ(clampedFloor(1e30f, 0, 10), 10);
    EXPECT_EQ(clampedFloor(-1e30f, 0, 10), 0);
    EXPECT_EQ(clampedFloor(std::nanf(""), 0, 10), 0);
    EXPECT_EQ(clampedCeil(3.2f, 0, 10), 4);
    EXPECT_EQ(clampedCeil(-0.5f, -3, 10), 0);
    EXPECT_EQ(clampedCeil(1e30f, 0, 10), 10);
    EXPECT_EQ(clampedCeil(std::nanf(""), -2, 10), -2);
    // Exact boundary values.
    EXPECT_EQ(clampedFloor(10.0f, 0, 10), 10);
    EXPECT_EQ(clampedFloor(0.0f, 0, 10), 0);
}

TEST(TileGrid, CoversImage)
{
    TileGrid g = TileGrid::forImage(100, 33, 16);
    EXPECT_EQ(g.tiles_x, 7);
    EXPECT_EQ(g.tiles_y, 3);
    EXPECT_EQ(g.tileCount(), 21u);
}

/** Randomized cross-check: flat binning == brute-force per-tile lists.
 *  The reference bins with the plain square bound and sorts each tile
 *  with std::stable_sort by (depth, subset position) — independent code
 *  exercising the count/scan/fill/radix machinery end to end. */
TEST(FlatBinning, MatchesBruteForcePerTileReference)
{
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel m = generateGroundTruth(spec, 900);
    auto cams = generateCameraPath(spec, 3, 120, 72);
    for (const Camera &cam : cams) {
        auto subset = frustumCull(m, cam);
        RenderConfig cfg;
        cfg.exact_tile_bounds = false;    // reference uses square bound
        RenderOutput out = renderForward(m, cam, subset, cfg);

        TileGrid grid = TileGrid::forImage(cam.width(), cam.height(),
                                           cfg.tile_size);
        std::vector<std::vector<uint32_t>> ref(grid.tileCount());
        for (size_t s = 0; s < out.projected.size(); ++s) {
            const ProjectedGaussian &p = out.projected[s];
            if (!p.valid || p.radius <= 0.0f)
                continue;
            int x0 = std::max(
                0, static_cast<int>(std::floor(
                       (p.mean2d.x - p.radius) / cfg.tile_size)));
            int x1 = std::min(
                grid.tiles_x - 1,
                static_cast<int>(std::floor((p.mean2d.x + p.radius)
                                            / cfg.tile_size)));
            int y0 = std::max(
                0, static_cast<int>(std::floor(
                       (p.mean2d.y - p.radius) / cfg.tile_size)));
            int y1 = std::min(
                grid.tiles_y - 1,
                static_cast<int>(std::floor((p.mean2d.y + p.radius)
                                            / cfg.tile_size)));
            for (int ty = y0; ty <= y1; ++ty)
                for (int tx = x0; tx <= x1; ++tx)
                    ref[static_cast<size_t>(ty) * grid.tiles_x + tx]
                        .push_back(static_cast<uint32_t>(s));
        }
        for (auto &list : ref)
            std::stable_sort(list.begin(), list.end(),
                             [&](uint32_t a, uint32_t b) {
                                 return out.projected[a].depth
                                      < out.projected[b].depth;
                             });

        ASSERT_EQ(out.tile_ranges.size(), ref.size());
        size_t total = 0;
        for (size_t t = 0; t < ref.size(); ++t) {
            const TileRange r = out.tile_ranges[t];
            ASSERT_EQ(r.size(), ref[t].size()) << "tile " << t;
            for (size_t j = 0; j < ref[t].size(); ++j)
                EXPECT_EQ(out.isect_vals[r.begin + j], ref[t][j])
                    << "tile " << t << " pos " << j;
            total += ref[t].size();
        }
        EXPECT_EQ(out.totalTileIntersections(), total);
    }
}

/** The exact overlap test may only ever *drop* intersections, and must
 *  leave the rendered image and transmittance bitwise unchanged. */
TEST(FlatBinning, ExactTileBoundsAreImageNeutral)
{
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel m = generateGroundTruth(spec, 1200);
    Rng rng(9);
    // Mix in low opacities so the cut radius varies widely.
    for (size_t i = 0; i < m.size(); i += 3)
        m.rawOpacity(i) = inverseSigmoid(rng.uniform(0.02f, 0.3f));
    auto cams = generateCameraPath(spec, 3, 150, 90);
    for (const Camera &cam : cams) {
        auto subset = frustumCull(m, cam);
        RenderConfig square;
        square.exact_tile_bounds = false;
        RenderConfig exact;
        exact.exact_tile_bounds = true;
        RenderOutput a = renderForward(m, cam, subset, square);
        RenderOutput b = renderForward(m, cam, subset, exact);
        EXPECT_LE(b.totalTileIntersections(),
                  a.totalTileIntersections());
        EXPECT_EQ(a.image.data(), b.image.data());    // bitwise
        EXPECT_EQ(a.final_t, b.final_t);
    }
}

} // namespace
} // namespace clm
