/**
 * @file
 * Composed-pipeline tests: sharded rendering × fused multi-view
 * batching (shard/shard_batch.hpp) and the fused multi-view backward
 * (renderBackwardBatch). The tentpole contracts:
 *
 *  - renderForwardBatchSharded() is bitwise identical, per view, to
 *    sequential unsharded renderForward() — for K in {1, 2, 4, 8}, in
 *    the SIMD and scalar compositor configs, under arena reuse, and
 *    across routing edge cases (disjoint frusta, single-view batches,
 *    empty-route members, a routed shard whose exact cull keeps
 *    nothing).
 *  - The (snapshot version, shard id) cull-stage cache is invalidated
 *    by a republish and bitwise neutral on a hit.
 *  - renderBackwardBatch() accumulates gradients bitwise identical to
 *    the sequential per-view renderBackward loop — batched ==
 *    sequential, parallel == serial, retained == re-staged staging,
 *    under the dispatched, forced-scalar and use_simd=false kernels —
 *    and the fused GpuOnlyTrainer step reproduces the view-at-a-time
 *    parameter trajectory exactly.
 *  - The sharded RenderService coalesces batches through the composed
 *    pipeline and reports batch-composition stats.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <vector>

#include "core/clm.hpp"
#include "render/batch.hpp"
#include "render/culling.hpp"
#include "render/rasterizer.hpp"
#include "render/simd_kernels.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"
#include "serve/render_service.hpp"
#include "serve/snapshot.hpp"
#include "shard/router.hpp"
#include "shard/shard_batch.hpp"
#include "shard/shard_renderer.hpp"
#include "shard/sharded_snapshot.hpp"
#include "train/quality_harness.hpp"
#include "train/trainer.hpp"

namespace clm {
namespace {

/** Bitwise comparison of two forward-pass outputs (same contract as
 *  tests/test_shard.cpp asserts for the sharded renderer). */
void
expectOutputsIdentical(const RenderOutput &a, const RenderOutput &b)
{
    ASSERT_EQ(a.image.width(), b.image.width());
    ASSERT_EQ(a.image.height(), b.image.height());
    EXPECT_EQ(a.image.data(), b.image.data());
    EXPECT_EQ(a.final_t, b.final_t);
    EXPECT_EQ(a.n_contrib, b.n_contrib);
    EXPECT_EQ(a.isect_vals, b.isect_vals);
    ASSERT_EQ(a.tile_ranges.size(), b.tile_ranges.size());
    for (size_t t = 0; t < a.tile_ranges.size(); ++t) {
        EXPECT_EQ(a.tile_ranges[t].begin, b.tile_ranges[t].begin);
        EXPECT_EQ(a.tile_ranges[t].end, b.tile_ranges[t].end);
    }
}

/** Bitwise comparison of full-model gradient buffers. */
void
expectGradsIdentical(const GaussianGrads &a, const GaussianGrads &b)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.d_sh, b.d_sh);
    EXPECT_EQ(a.d_opacity, b.d_opacity);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.d_position[i].x, b.d_position[i].x) << i;
        EXPECT_EQ(a.d_position[i].y, b.d_position[i].y) << i;
        EXPECT_EQ(a.d_position[i].z, b.d_position[i].z) << i;
        EXPECT_EQ(a.d_log_scale[i].x, b.d_log_scale[i].x) << i;
        EXPECT_EQ(a.d_log_scale[i].y, b.d_log_scale[i].y) << i;
        EXPECT_EQ(a.d_log_scale[i].z, b.d_log_scale[i].z) << i;
        EXPECT_EQ(a.d_rotation[i].w, b.d_rotation[i].w) << i;
        EXPECT_EQ(a.d_rotation[i].x, b.d_rotation[i].x) << i;
        EXPECT_EQ(a.d_rotation[i].y, b.d_rotation[i].y) << i;
        EXPECT_EQ(a.d_rotation[i].z, b.d_rotation[i].z) << i;
    }
}

struct ComposeFixture
{
    GaussianModel model;
    std::vector<Camera> cameras;

    explicit ComposeFixture(const char *scene = "Bicycle",
                            size_t n_gaussians = 1500, int width = 96,
                            int height = 61)
    {
        SceneSpec spec = SceneSpec::byName(scene);
        model = generateSceneGaussians(spec, n_gaussians);
        cameras = generateCameraPath(spec, 6, width, height);
    }

    std::shared_ptr<const ShardedSnapshot>
    sharded(int shards, uint64_t version = 1) const
    {
        auto base = std::make_shared<ModelSnapshot>();
        base->model = model;
        base->version = version;
        base->param_hash = hashModelParams(model);
        return buildShardedSnapshot(base, shards);
    }
};

/** A camera looking straight away from every scene generator's
 *  content (mirrors the empty-subset camera of test_shard.cpp). */
Camera
lookAwayCamera(int width = 96, int height = 61)
{
    return Camera::lookAt(Vec3{40, 0, 2}, Vec3{80, 0, 2}, Vec3{0, 0, 1},
                          width, height, 0.9f, 0.05f, 11.0f);
}

void
checkComposedAgainstUnsharded(const ComposeFixture &fix,
                              const RenderConfig &cfg,
                              std::initializer_list<int> shard_counts)
{
    for (int k : shard_counts) {
        auto snap = fix.sharded(k);
        ShardRouter router(*snap);
        ShardBatchRenderArena arena;
        renderForwardBatchSharded(*snap, router, fix.cameras, cfg, arena,
                                  snap->base->version);
        ASSERT_EQ(arena.views.size(), fix.cameras.size());
        for (size_t v = 0; v < fix.cameras.size(); ++v) {
            SCOPED_TRACE("k=" + std::to_string(k) + " view "
                         + std::to_string(v));
            RenderOutput ref =
                renderForward(fix.model, fix.cameras[v],
                              frustumCull(fix.model, fix.cameras[v]),
                              cfg);
            expectOutputsIdentical(arena.views[v].out, ref);
        }
    }
}

TEST(ComposedForward, BitwiseIdenticalToUnshardedSimd)
{
    ComposeFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 2;
    cfg.use_simd = true;    // scalar fallback in CLM_DISABLE_SIMD builds
    checkComposedAgainstUnsharded(fix, cfg, {1, 2, 4, 8});
}

TEST(ComposedForward, BitwiseIdenticalToUnshardedScalar)
{
    ComposeFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 2;
    cfg.use_simd = false;    // the scalar reference compositor
    checkComposedAgainstUnsharded(fix, cfg, {1, 2, 4, 8});
}

TEST(ComposedForward, SingleViewBatchMatchesViewAtATimeRouting)
{
    // A batch of one view must route exactly like the view-at-a-time
    // serving path and produce the same frame.
    ComposeFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 1;
    auto snap = fix.sharded(4);
    ShardRouter router(*snap);
    ShardBatchRenderArena arena;
    ShardRenderArena single;
    for (const Camera &cam : fix.cameras) {
        std::vector<Camera> batch{cam};
        renderForwardBatchSharded(*snap, router, batch, cfg, arena,
                                  snap->base->version);
        router.route(cam.frustum(), single.route);
        ASSERT_EQ(arena.routes.size(), 1u);
        EXPECT_EQ(arena.routes[0], single.route);
        EXPECT_EQ(arena.union_shards, single.route);
        renderForwardSharded(*snap, single.route, cam, cfg, single);
        expectOutputsIdentical(arena.views[0].out, single.out);
    }
}

TEST(ComposedForward, DisjointFrustaUnionRouting)
{
    // Two clusters far apart; each camera sees exactly one of them, so
    // the per-view selections are disjoint and the batch union must be
    // exactly their concatenation — and each frame must still match
    // the sequential unsharded render.
    GaussianModel model;
    float sh[kShDim] = {};
    sh[0] = 1.0f;
    for (int i = 0; i < 40; ++i) {
        const float o = 0.05f * i;
        model.append(Vec3{30.0f + o, o - 1.0f, 0.0f},
                     Vec3{-1.5f, -1.5f, -1.5f}, Quat{1, 0, 0, 0}, sh,
                     0.5f);
        model.append(Vec3{-30.0f - o, 1.0f - o, 0.0f},
                     Vec3{-1.5f, -1.5f, -1.5f}, Quat{1, 0, 0, 0}, sh,
                     0.5f);
    }
    Camera cam_a = Camera::lookAt(Vec3{0, 0, 0}, Vec3{30, 0, 0},
                                  Vec3{0, 0, 1}, 64, 48, 0.8f, 0.05f,
                                  60.0f);
    Camera cam_b = Camera::lookAt(Vec3{0, 0, 0}, Vec3{-30, 0, 0},
                                  Vec3{0, 0, 1}, 64, 48, 0.8f, 0.05f,
                                  60.0f);
    auto base = std::make_shared<ModelSnapshot>();
    base->model = model;
    base->version = 1;
    auto snap = buildShardedSnapshot(base, 4);
    ShardRouter router(*snap);

    std::vector<uint32_t> route_a, route_b;
    router.route(cam_a.frustum(), route_a);
    router.route(cam_b.frustum(), route_b);
    ASSERT_FALSE(route_a.empty());
    ASSERT_FALSE(route_b.empty());
    for (uint32_t s : route_a)
        EXPECT_TRUE(std::find(route_b.begin(), route_b.end(), s)
                    == route_b.end())
            << "shard " << s << " selected by both disjoint frusta";

    RenderConfig cfg;
    cfg.sh_degree = 0;
    ShardBatchRenderArena arena;
    std::vector<Camera> batch{cam_a, cam_b};
    renderForwardBatchSharded(*snap, router, batch, cfg, arena, 1);
    EXPECT_EQ(arena.routes[0], route_a);
    EXPECT_EQ(arena.routes[1], route_b);
    std::vector<uint32_t> expected_union = route_a;
    expected_union.insert(expected_union.end(), route_b.begin(),
                          route_b.end());
    std::sort(expected_union.begin(), expected_union.end());
    EXPECT_EQ(arena.union_shards, expected_union);
    for (size_t v = 0; v < batch.size(); ++v) {
        RenderOutput ref = renderForward(
            model, batch[v], frustumCull(model, batch[v]), cfg);
        expectOutputsIdentical(arena.views[v].out, ref);
    }
}

TEST(ComposedForward, EmptyRouteMemberRendersBackground)
{
    // A batch member whose frustum selects zero shards must come back
    // as pure background without disturbing the other members.
    ComposeFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 1;
    cfg.background = {0.25f, 0.5f, 0.75f};
    auto snap = fix.sharded(4);
    ShardRouter router(*snap);
    const Camera away = lookAwayCamera();
    std::vector<uint32_t> away_route;
    router.route(away.frustum(), away_route);
    ASSERT_TRUE(away_route.empty());

    std::vector<Camera> batch{fix.cameras[0], away, fix.cameras[1]};
    ShardBatchRenderArena arena;
    renderForwardBatchSharded(*snap, router, batch, cfg, arena, 1);
    EXPECT_TRUE(arena.routes[1].empty());
    for (size_t v = 0; v < batch.size(); ++v) {
        RenderOutput ref = renderForward(
            fix.model, batch[v], frustumCull(fix.model, batch[v]), cfg);
        expectOutputsIdentical(arena.views[v].out, ref);
    }
    const Vec3 px = arena.views[1].out.image.pixel(0, 0);
    EXPECT_EQ(px.x, 0.25f);
    EXPECT_EQ(px.y, 0.5f);
    EXPECT_EQ(px.z, 0.75f);
}

TEST(ComposedForward, RoutedShardWithNoCullSurvivorsIsExact)
{
    // Routing is conservative per shard AABB, the cull is exact per
    // Gaussian: a shard whose members straddle BOTH side planes (half
    // far left of the frustum, half far right) is selected — its AABB
    // spans the frustum — yet every member fails the exact cull. The
    // composed pass must render through that empty contribution
    // bitwise-identically.
    GaussianModel model;
    float sh[kShDim] = {};
    sh[0] = 1.0f;
    // Visible cluster V: x in [5, 10], centered on the axis.
    for (int i = 0; i < 50; ++i)
        model.append(Vec3{5.0f + 0.1f * i, 0.01f * i - 0.25f, 0.0f},
                     Vec3{-2.0f, -2.0f, -2.0f}, Quat{1, 0, 0, 0}, sh,
                     0.5f);
    // Wing cluster W at x = 30, y = +/-9: outside the side planes of a
    // 0.4 rad frustum (half-width at x=30 is at most ~8.1 whichever
    // axis the fov parameter binds, cull radius ~0.4), but W's AABB
    // spans y in [-9.2, 9.2] across the frustum interior, so its shard
    // stays routed. W's y extent (18.5) stays below the model's x
    // extent (25.2) so the K=2 median split separates V from W on x.
    for (int i = 0; i < 25; ++i) {
        model.append(Vec3{30.0f + 0.01f * i, -9.0f - 0.01f * i, 0.0f},
                     Vec3{-2.0f, -2.0f, -2.0f}, Quat{1, 0, 0, 0}, sh,
                     0.5f);
        model.append(Vec3{30.0f + 0.01f * i, 9.0f + 0.01f * i, 0.0f},
                     Vec3{-2.0f, -2.0f, -2.0f}, Quat{1, 0, 0, 0}, sh,
                     0.5f);
    }
    const Camera cam =
        Camera::lookAt(Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 0, 1}, 64,
                       48, 0.4f, 0.05f, 60.0f);
    auto base = std::make_shared<ModelSnapshot>();
    base->model = model;
    base->version = 1;
    // K=2 splits on x (the dominant extent): shard {V}, shard {W}.
    auto snap = buildShardedSnapshot(base, 2);
    ShardRouter router(*snap);
    std::vector<uint32_t> route;
    router.route(cam.frustum(), route);

    // Verify the construction: some routed shard has in-frustum AABB
    // but zero exact-cull survivors.
    bool found_empty_after_cull = false;
    for (uint32_t s : route)
        if (frustumCull(snap->shards[s].model, cam).empty())
            found_empty_after_cull = true;
    ASSERT_TRUE(found_empty_after_cull)
        << "construction failed to produce a routed-but-culled shard";

    RenderConfig cfg;
    cfg.sh_degree = 0;
    std::vector<Camera> batch{cam, cam};
    ShardBatchRenderArena arena;
    renderForwardBatchSharded(*snap, router, batch, cfg, arena, 1);
    RenderOutput ref =
        renderForward(model, cam, frustumCull(model, cam), cfg);
    expectOutputsIdentical(arena.views[0].out, ref);
    expectOutputsIdentical(arena.views[1].out, ref);
}

TEST(ComposedForward, CullCacheInvalidatesOnRepublish)
{
    // Satellite: the (snapshot version, shard id) cull-stage cache.
    // Serving version 1 twice through one arena must hit the cache
    // (tags stick, output bitwise unchanged); republishing a mutated
    // model as version 2 must rebuild — frames must track the NEW
    // model, not the cached stage.
    ComposeFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 1;
    auto snap1 = fix.sharded(4, /*version=*/1);
    ShardRouter router1(*snap1);
    std::vector<Camera> batch{fix.cameras[0], fix.cameras[1]};

    ShardBatchRenderArena arena;
    renderForwardBatchSharded(*snap1, router1, batch, cfg, arena, 1);
    for (uint32_t s : arena.union_shards) {
        EXPECT_EQ(arena.shards[s].cull.cached_key,
                  shardCullCacheKey(1, s));
        EXPECT_EQ(arena.shards[s].cull.cached_size,
                  snap1->shards[s].model.size());
    }
    Image first = arena.views[0].out.image;
    renderForwardBatchSharded(*snap1, router1, batch, cfg, arena, 1);
    EXPECT_EQ(arena.views[0].out.image.data(), first.data());

    // Republish: grow every Gaussian so cull membership shifts.
    for (size_t i = 0; i < fix.model.size(); ++i)
        fix.model.position(i).x += 0.5f;
    auto snap2 = fix.sharded(4, /*version=*/2);
    ShardRouter router2(*snap2);
    renderForwardBatchSharded(*snap2, router2, batch, cfg, arena, 2);
    for (uint32_t s : arena.union_shards)
        EXPECT_EQ(arena.shards[s].cull.cached_key,
                  shardCullCacheKey(2, s));
    for (size_t v = 0; v < batch.size(); ++v) {
        RenderOutput ref = renderForward(
            fix.model, batch[v], frustumCull(fix.model, batch[v]), cfg);
        expectOutputsIdentical(arena.views[v].out, ref);
    }
}

TEST(ComposedForward, ArenaReuseIsBitwiseNeutral)
{
    ComposeFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 2;
    auto snap8 = fix.sharded(8);
    auto snap2 = fix.sharded(2);
    ShardRouter router8(*snap8);
    ShardRouter router2(*snap2);
    ShardBatchRenderArena reused;
    // Dirty every scratch buffer with a larger fan-out + batch first.
    renderForwardBatchSharded(*snap8, router8, fix.cameras, cfg, reused,
                              1);
    std::vector<Camera> batch{fix.cameras[1], fix.cameras[2]};
    renderForwardBatchSharded(*snap2, router2, batch, cfg, reused, 1);
    ShardBatchRenderArena fresh;
    renderForwardBatchSharded(*snap2, router2, batch, cfg, fresh, 1);
    for (size_t v = 0; v < batch.size(); ++v)
        expectOutputsIdentical(reused.views[v].out, fresh.views[v].out);
}

/** Sequential reference: per-view forward + backward accumulating into
 *  one gradient buffer, exactly as GpuOnlyTrainer's view-at-a-time
 *  loop does. */
GaussianGrads
sequentialBackward(const GaussianModel &model,
                   const std::vector<Camera> &cams,
                   const std::vector<Image> &d_images,
                   const RenderConfig &cfg)
{
    GaussianGrads grads;
    grads.resize(model.size());
    RenderArena arena;
    for (size_t v = 0; v < cams.size(); ++v) {
        auto subset = frustumCull(model, cams[v]);
        const RenderOutput &out =
            renderForward(model, cams[v], subset, cfg, arena);
        renderBackward(model, cams[v], cfg, out, d_images[v], grads,
                       arena);
    }
    return grads;
}

GaussianGrads
fusedBackward(const GaussianModel &model,
              const std::vector<Camera> &cams,
              const std::vector<Image> &d_images, const RenderConfig &cfg,
              bool retain_staging, BatchRenderArena *reuse = nullptr)
{
    GaussianGrads grads;
    grads.resize(model.size());
    BatchRenderArena local;
    BatchRenderArena &arena = reuse != nullptr ? *reuse : local;
    arena.retain_staging = retain_staging;
    std::vector<std::vector<uint32_t>> subsets;
    frustumCullBatch(model, cams, arena.cull, subsets, cfg.parallel);
    renderForwardBatch(model, cams, subsets, cfg, arena);
    renderBackwardBatch(model, cams, cfg, d_images, grads, arena);
    return grads;
}

struct BackwardFixture
{
    GaussianModel model;
    std::vector<Camera> cams;
    std::vector<Image> d_images;

    explicit BackwardFixture(int n_views = 4)
    {
        SceneSpec spec = SceneSpec::byName("Rubble");
        model = generateSceneGaussians(spec, 900);
        cams = generateCameraPath(spec, n_views, 96, 61);
        // Distinct synthetic loss gradients per view (sign flips mixed
        // in so negative-gradient paths are exercised).
        for (int v = 0; v < n_views; ++v)
            d_images.emplace_back(96, 61,
                                  Vec3{0.3f - 0.1f * v, -0.2f + 0.07f * v,
                                       0.05f * (v + 1)});
    }
};

TEST(FusedBackward, BatchedBitwiseEqualsSequential)
{
    BackwardFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 2;
    GaussianGrads ref =
        sequentialBackward(fix.model, fix.cams, fix.d_images, cfg);
    // Retained staging (the training configuration)...
    GaussianGrads fused =
        fusedBackward(fix.model, fix.cams, fix.d_images, cfg, true);
    expectGradsIdentical(fused, ref);
    // ...and the re-staging fallback must agree too.
    GaussianGrads restaged =
        fusedBackward(fix.model, fix.cams, fix.d_images, cfg, false);
    expectGradsIdentical(restaged, ref);
}

TEST(FusedBackward, ParallelMatchesSerial)
{
    BackwardFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 1;
    cfg.parallel = true;
    GaussianGrads par =
        fusedBackward(fix.model, fix.cams, fix.d_images, cfg, true);
    cfg.parallel = false;
    GaussianGrads ser =
        fusedBackward(fix.model, fix.cams, fix.d_images, cfg, true);
    expectGradsIdentical(par, ser);
    expectGradsIdentical(
        par, sequentialBackward(fix.model, fix.cams, fix.d_images, cfg));
}

TEST(FusedBackward, BitwiseAcrossKernelTablesAndScalarPath)
{
    BackwardFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 1;
    GaussianGrads ref =
        sequentialBackward(fix.model, fix.cams, fix.d_images, cfg);

    // Forced scalar kernel TABLE: the same grad8 replay one lane at a
    // time — bitwise identical to whatever table the CPU dispatched
    // (the PR-6 dispatch-invariance property), fused or sequential.
    const RenderKernels *scalar_kern =
        renderKernelsFor(SimdBackend::kScalar);
    ASSERT_NE(scalar_kern, nullptr);
    RenderConfig forced = cfg;
    forced.kernels = scalar_kern;
    expectGradsIdentical(
        fusedBackward(fix.model, fix.cams, fix.d_images, forced, true),
        sequentialBackward(fix.model, fix.cams, fix.d_images, forced));
    expectGradsIdentical(
        fusedBackward(fix.model, fix.cams, fix.d_images, forced, true),
        ref);

    // use_simd = false: the pre-SIMD reference replay
    // (backwardTileScalar) — a different arithmetic structure, so it is
    // only PSNR-close to the SIMD path; the fused==sequential contract
    // still holds bitwise WITHIN the path.
    RenderConfig no_simd = cfg;
    no_simd.use_simd = false;
    expectGradsIdentical(
        fusedBackward(fix.model, fix.cams, fix.d_images, no_simd, true),
        sequentialBackward(fix.model, fix.cams, fix.d_images, no_simd));
}

TEST(FusedBackward, ArenaReuseIsBitwiseNeutral)
{
    BackwardFixture fix;
    RenderConfig cfg;
    cfg.sh_degree = 1;
    BackwardFixture small(2);
    BatchRenderArena reused;
    // Dirty the arena with a different batch shape first.
    fusedBackward(small.model, small.cams, small.d_images, cfg, true,
                  &reused);
    GaussianGrads a = fusedBackward(fix.model, fix.cams, fix.d_images,
                                    cfg, true, &reused);
    GaussianGrads b =
        fusedBackward(fix.model, fix.cams, fix.d_images, cfg, true);
    expectGradsIdentical(a, b);
}

TEST(FusedTrainer, TrajectoryMatchesViewAtATime)
{
    // The fused multi-view training step must reproduce the
    // view-at-a-time GpuOnlyTrainer trajectory bit for bit: same
    // per-batch loss, same parameters after several steps — including
    // a batch with a DUPLICATE view id (the fused chain accumulates
    // per model row in batch-slot order, which is the sequential
    // loop's order).
    SceneSpec spec = SceneSpec::bicycle();
    spec.train = {500, 6, 48, 48};
    GaussianModel gt = generateGroundTruth(spec, 500);
    std::vector<Camera> cameras = trainCameras(spec);
    TrainConfig config;
    config.batch_size = 4;
    config.render.sh_degree = 1;
    config.loss.ssim_window = 5;
    std::vector<Image> gt_images =
        renderGroundTruth(gt, cameras, config.render);
    GaussianModel trainee = makeTrainee(gt, 300, 1234);

    TrainConfig fused_cfg = config;
    fused_cfg.fused_batch = true;
    TrainConfig seq_cfg = config;
    seq_cfg.fused_batch = false;
    GpuOnlyTrainer fused(trainee, cameras, gt_images, fused_cfg);
    GpuOnlyTrainer seq(trainee, cameras, gt_images, seq_cfg);

    const std::vector<std::vector<int>> batches = {
        {0, 1, 2, 3}, {4, 5, 0, 1}, {2, 2, 4, 5}};
    for (const auto &ids : batches) {
        BatchStats a = fused.trainBatch(ids);
        BatchStats b = seq.trainBatch(ids);
        EXPECT_EQ(a.loss, b.loss);
        EXPECT_EQ(a.gaussians_rendered, b.gaussians_rendered);
        EXPECT_EQ(a.adam_updated, b.adam_updated);
    }
    const GaussianModel &ma = fused.model();
    const GaussianModel &mb = seq.model();
    ASSERT_EQ(ma.size(), mb.size());
    for (size_t i = 0; i < ma.size(); ++i) {
        EXPECT_EQ(ma.position(i).x, mb.position(i).x) << i;
        EXPECT_EQ(ma.position(i).y, mb.position(i).y) << i;
        EXPECT_EQ(ma.position(i).z, mb.position(i).z) << i;
        EXPECT_EQ(ma.logScale(i).x, mb.logScale(i).x) << i;
        EXPECT_EQ(ma.rotation(i).w, mb.rotation(i).w) << i;
        EXPECT_EQ(ma.rawOpacity(i), mb.rawOpacity(i)) << i;
        EXPECT_EQ(ma.sh(i)[0], mb.sh(i)[0]) << i;
    }
}

TEST(ComposedServing, ServesFramesIdenticalAndRecordsBatchStats)
{
    // End to end: the sharded service with coalescing renders through
    // the composed pipeline; frames must equal direct unsharded
    // renders and the batch-composition stats must be populated.
    ComposeFixture fix(/*scene=*/"Bicycle", /*n_gaussians=*/800);
    SnapshotSlot base;
    base.publish(fix.model, 0);
    ShardedSnapshotSlot slot(4);
    slot.publish(base.acquire());

    ServeConfig cfg;
    cfg.workers = 1;    // single worker => batches actually coalesce
    cfg.max_batch = 4;
    cfg.render.sh_degree = 1;
    RenderService service(slot, cfg);

    std::vector<std::future<RenderResponse>> futs;
    for (int r = 0; r < 12; ++r)
        futs.push_back(service.submit(fix.cameras[r % 6]));
    for (int r = 0; r < 12; ++r) {
        RenderResponse resp = futs[r].get();
        ASSERT_TRUE(resp.ok());
        EXPECT_GE(resp.shards_selected, 1);
        EXPECT_LE(resp.shards_selected, 4);
        Image direct =
            renderForward(fix.model, fix.cameras[r % 6],
                          frustumCull(fix.model, fix.cameras[r % 6]),
                          cfg.render)
                .image;
        EXPECT_EQ(resp.image.data(), direct.data()) << "request " << r;
    }
    service.stop();
    ServeStats stats = service.stats();
    EXPECT_EQ(stats.requests, 12u);
    ASSERT_FALSE(stats.batch_occupancy.empty());
    uint64_t hist_requests = 0, hist_batches = 0;
    for (size_t k = 0; k < stats.batch_occupancy.size(); ++k) {
        hist_requests += (k + 1) * stats.batch_occupancy[k];
        hist_batches += stats.batch_occupancy[k];
    }
    EXPECT_EQ(hist_requests, stats.requests);
    EXPECT_EQ(hist_batches, stats.batches);
    EXPECT_GE(stats.mean_batch_shards, 1.0);
    EXPECT_LE(stats.mean_batch_shards, 4.0);
}

} // namespace
} // namespace clm
