/**
 * @file
 * Gradient checks: the analytic backward pass of the full differentiable
 * pipeline (rasterizer -> projection -> SH/covariance/opacity) and of the
 * L1 + D-SSIM loss are validated against central finite differences.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "math/rng.hpp"
#include "render/arena.hpp"
#include "render/camera.hpp"
#include "render/culling.hpp"
#include "render/loss.hpp"
#include "render/rasterizer.hpp"
#include "render/simd_kernels.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"

namespace clm {
namespace {

Camera
testCamera(int wh = 24)
{
    return Camera::lookAt({0, 0, 0}, {0, 0, 10}, {0, 1, 0}, wh, wh, 1.0f,
                          0.1f, 100.0f);
}

/** A well-conditioned random scene away from clamp boundaries. */
GaussianModel
fdScene(size_t n, uint64_t seed)
{
    Rng rng(seed);
    GaussianModel m(n);
    constexpr float kY0 = 0.28209479177387814f;
    for (size_t i = 0; i < n; ++i) {
        m.position(i) = {rng.uniform(-2.0f, 2.0f),
                         rng.uniform(-2.0f, 2.0f),
                         rng.uniform(4.0f, 9.0f)};
        float ls = std::log(rng.uniform(0.3f, 0.7f));
        m.logScale(i) = {ls + rng.normal(0.0f, 0.15f),
                         ls + rng.normal(0.0f, 0.15f),
                         ls + rng.normal(0.0f, 0.15f)};
        Vec3 axis{rng.normal(), rng.normal(), rng.normal()};
        m.rotation(i) = Quat::fromAxisAngle(
            axis.norm() > 1e-5f ? axis : Vec3{0, 0, 1},
            rng.uniform(0.0f, 3.0f));
        // Mid-range colors keep the SH clamp inactive.
        m.sh(i)[0] = (rng.uniform(0.35f, 0.75f) - 0.5f) / kY0;
        m.sh(i)[1] = (rng.uniform(0.35f, 0.75f) - 0.5f) / kY0;
        m.sh(i)[2] = (rng.uniform(0.35f, 0.75f) - 0.5f) / kY0;
        for (int k = 3; k < kShDim; ++k)
            m.sh(i)[k] = rng.normal(0.0f, 0.03f);
        m.rawOpacity(i) = inverseSigmoid(rng.uniform(0.4f, 0.75f));
    }
    return m;
}

Image
fdGroundTruth(int wh, uint64_t seed)
{
    Rng rng(seed);
    Image gt(wh, wh);
    for (int y = 0; y < wh; ++y)
        for (int x = 0; x < wh; ++x)
            gt.setPixel(x, y, {0.5f + 0.3f * std::sin(0.4f * x),
                               0.5f + 0.3f * std::cos(0.3f * y),
                               rng.uniform(0.3f, 0.7f)});
    return gt;
}

/**
 * The renderer backward is checked against a *smooth* random linear
 * functional L = sum_ij w_ij . image_ij, so finite differences are exact.
 * (The L1 term of the real loss has sign kinks that make FD unreliable;
 * the loss backward has its own dedicated FD test below.)
 */
struct Pipeline
{
    Camera cam = testCamera();
    RenderConfig render;
    Image weights = fdGroundTruth(24, 99);    // random smooth weights
    std::vector<uint32_t> subset;

    explicit Pipeline(size_t n, int sh_degree = 3)
    {
        render.sh_degree = sh_degree;
        render.background = {0.1f, 0.1f, 0.1f};
        // The production thresholds (1/255 alpha cut, early termination)
        // and the 3-sigma tile truncation are step discontinuities; FD
        // across them measures the jump, not the gradient. Relax the
        // thresholds and use a larger eps so the jumps' contribution is
        // negligible relative to the smooth gradient.
        render.alpha_min = 1e-6f;
        render.transmittance_min = 1e-9f;
        for (size_t i = 0; i < n; ++i)
            subset.push_back(static_cast<uint32_t>(i));
    }

    double
    forward(const GaussianModel &m) const
    {
        RenderOutput out = renderForward(m, cam, subset, render);
        double acc = 0.0;
        const auto &img = out.image.data();
        const auto &w = weights.data();
        for (size_t i = 0; i < img.size(); ++i)
            acc += double(w[i]) * img[i];
        return acc;
    }

    GaussianGrads
    backward(const GaussianModel &m) const
    {
        RenderOutput out = renderForward(m, cam, subset, render);
        GaussianGrads g;
        g.resize(m.size());
        renderBackward(m, cam, render, out, weights, g);
        return g;
    }
};

/** Central finite difference of the pipeline loss w.r.t. one scalar. */
double
finiteDiff(Pipeline &pipe, GaussianModel &m, float &param,
           float eps = 1e-2f)
{
    float saved = param;
    param = saved + eps;
    double lp = pipe.forward(m);
    param = saved - eps;
    double lm = pipe.forward(m);
    param = saved;
    return (lp - lm) / (2.0 * eps);
}

void
expectClose(double analytic, double fd, double scale_hint)
{
    double tol = 5e-2 * std::max({std::abs(analytic), std::abs(fd),
                                  scale_hint});
    EXPECT_NEAR(analytic, fd, tol);
}

TEST(LossBackward, MatchesFiniteDifference)
{
    Rng rng(7);
    int wh = 12;
    Image x(wh, wh), y(wh, wh);
    for (int py = 0; py < wh; ++py)
        for (int px = 0; px < wh; ++px) {
            x.setPixel(px, py, {rng.uniform(0.2f, 0.8f),
                                rng.uniform(0.2f, 0.8f),
                                rng.uniform(0.2f, 0.8f)});
            y.setPixel(px, py, {rng.uniform(0.2f, 0.8f),
                                rng.uniform(0.2f, 0.8f),
                                rng.uniform(0.2f, 0.8f)});
        }
    LossConfig cfg;
    cfg.ssim_window = 5;
    Image d;
    computeLoss(x, y, &d, cfg);

    const float eps = 1e-3f;
    Rng pick(8);
    for (int it = 0; it < 30; ++it) {
        size_t idx = static_cast<size_t>(
            pick.uniformInt(0, static_cast<int64_t>(x.data().size()) - 1));
        float saved = x.data()[idx];
        x.data()[idx] = saved + eps;
        double lp = computeLoss(x, y, nullptr, cfg).total;
        x.data()[idx] = saved - eps;
        double lm = computeLoss(x, y, nullptr, cfg).total;
        x.data()[idx] = saved;
        double fd = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(d.data()[idx], fd,
                    2e-2 * std::max(1e-4, std::abs(fd)))
            << "pixel value index " << idx;
    }
}

class RenderBackwardTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RenderBackwardTest, PositionGradients)
{
    int sh_degree = GetParam();
    Pipeline pipe(6, sh_degree);
    GaussianModel m = fdScene(6, 10 + sh_degree);
    GaussianGrads g = pipe.backward(m);
    for (size_t i = 0; i < m.size(); i += 2) {
        expectClose(g.d_position[i].x,
                    finiteDiff(pipe, m, m.position(i).x), 1e-4);
        expectClose(g.d_position[i].y,
                    finiteDiff(pipe, m, m.position(i).y), 1e-4);
        expectClose(g.d_position[i].z,
                    finiteDiff(pipe, m, m.position(i).z), 1e-4);
    }
}

TEST_P(RenderBackwardTest, ScaleGradients)
{
    Pipeline pipe(6, GetParam());
    GaussianModel m = fdScene(6, 20 + GetParam());
    GaussianGrads g = pipe.backward(m);
    for (size_t i = 0; i < m.size(); i += 2) {
        expectClose(g.d_log_scale[i].x,
                    finiteDiff(pipe, m, m.logScale(i).x), 1e-4);
        expectClose(g.d_log_scale[i].z,
                    finiteDiff(pipe, m, m.logScale(i).z), 1e-4);
    }
}

TEST_P(RenderBackwardTest, RotationGradients)
{
    Pipeline pipe(6, GetParam());
    GaussianModel m = fdScene(6, 30 + GetParam());
    GaussianGrads g = pipe.backward(m);
    for (size_t i = 0; i < m.size(); i += 3) {
        expectClose(g.d_rotation[i].w,
                    finiteDiff(pipe, m, m.rotation(i).w), 1e-4);
        expectClose(g.d_rotation[i].x,
                    finiteDiff(pipe, m, m.rotation(i).x), 1e-4);
        expectClose(g.d_rotation[i].y,
                    finiteDiff(pipe, m, m.rotation(i).y), 1e-4);
        expectClose(g.d_rotation[i].z,
                    finiteDiff(pipe, m, m.rotation(i).z), 1e-4);
    }
}

TEST_P(RenderBackwardTest, OpacityGradients)
{
    Pipeline pipe(6, GetParam());
    GaussianModel m = fdScene(6, 40 + GetParam());
    GaussianGrads g = pipe.backward(m);
    for (size_t i = 0; i < m.size(); ++i) {
        expectClose(g.d_opacity[i],
                    finiteDiff(pipe, m, m.rawOpacity(i)), 1e-4);
    }
}

TEST_P(RenderBackwardTest, ShGradients)
{
    int sh_degree = GetParam();
    Pipeline pipe(4, sh_degree);
    GaussianModel m = fdScene(4, 50 + sh_degree);
    GaussianGrads g = pipe.backward(m);
    int nb = shBasisCount(sh_degree);
    for (size_t i = 0; i < m.size(); i += 2) {
        for (int k = 0; k < nb * 3; k += 7) {
            expectClose(g.d_sh[i * kShDim + k],
                        finiteDiff(pipe, m, m.sh(i)[k]), 1e-4);
        }
        // Coefficients above the active degree must have zero gradient.
        for (int k = nb * 3; k < kShDim; ++k)
            EXPECT_FLOAT_EQ(g.d_sh[i * kShDim + k], 0.0f);
    }
}

INSTANTIATE_TEST_SUITE_P(ShDegrees, RenderBackwardTest,
                         ::testing::Values(0, 1, 3));

TEST(RenderBackward, UntouchedRowsStayZero)
{
    Pipeline pipe(3);
    GaussianModel m = fdScene(3, 60);
    // Render only Gaussian 1; rows 0 and 2 must keep zero gradients.
    pipe.subset = {1};
    GaussianGrads g = pipe.backward(m);
    for (size_t i : {0u, 2u}) {
        EXPECT_FLOAT_EQ(g.d_position[i].x, 0.0f);
        EXPECT_FLOAT_EQ(g.d_opacity[i], 0.0f);
        EXPECT_FLOAT_EQ(g.d_sh[i * kShDim], 0.0f);
    }
    EXPECT_NE(g.d_opacity[1], 0.0f);
}

TEST(RenderBackward, ParallelBitwiseIdenticalToSerial)
{
    // The backward pass accumulates per-chunk partial gradients over a
    // FIXED tile-chunk partition (independent of execution mode) and
    // reduces them in chunk order, so parallel and serial runs perform
    // identical floating-point arithmetic: gradients must match bit
    // for bit, not just within tolerance.
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel m = generateGroundTruth(spec, 600);
    auto cams = generateCameraPath(spec, 2, 97, 61);
    for (const Camera &cam : cams) {
        auto subset = frustumCull(m, cam);
        Image d_image(97, 61, {0.3f, -0.2f, 0.1f});
        auto run = [&](bool parallel, bool with_arena) {
            RenderConfig cfg;
            cfg.parallel = parallel;
            GaussianGrads g;
            g.resize(m.size());
            if (with_arena) {
                RenderArena arena;
                const RenderOutput &out =
                    renderForward(m, cam, subset, cfg, arena);
                renderBackward(m, cam, cfg, out, d_image, g, arena);
            } else {
                RenderOutput out = renderForward(m, cam, subset, cfg);
                renderBackward(m, cam, cfg, out, d_image, g);
            }
            return g;
        };
        GaussianGrads a = run(false, false);
        GaussianGrads b = run(true, false);
        GaussianGrads c = run(true, true);
        for (size_t i = 0; i < m.size(); ++i) {
            EXPECT_EQ(a.d_position[i].x, b.d_position[i].x) << i;
            EXPECT_EQ(a.d_position[i].y, b.d_position[i].y) << i;
            EXPECT_EQ(a.d_position[i].z, b.d_position[i].z) << i;
            EXPECT_EQ(a.d_opacity[i], b.d_opacity[i]) << i;
            EXPECT_EQ(a.d_log_scale[i].x, b.d_log_scale[i].x) << i;
            EXPECT_EQ(a.d_rotation[i].w, b.d_rotation[i].w) << i;
            EXPECT_EQ(a.d_sh[i * kShDim], b.d_sh[i * kShDim]) << i;
            // The arena overloads are pure scratch reuse.
            EXPECT_EQ(a.d_position[i].x, c.d_position[i].x) << i;
            EXPECT_EQ(a.d_opacity[i], c.d_opacity[i]) << i;
        }
    }
}

TEST(RenderBackward, MaskedTailWidthsBitwiseAcrossKernelTables)
{
    // The SIMD backward replays pixels in groups of 8; image widths
    // 96..103 sweep every tail width (w mod 8 = 0..7), so partial
    // groups at the right tile edge exercise the masked lanes. The
    // scalar kernel table runs the identical IEEE op sequence one lane
    // at a time, so gradients must agree bit for bit with whatever
    // table the CPU dispatched.
    const RenderKernels *scalar_kern =
        renderKernelsFor(SimdBackend::kScalar);
    ASSERT_NE(scalar_kern, nullptr);
    SceneSpec spec = SceneSpec::rubble();
    GaussianModel m = generateGroundTruth(spec, 500);
    for (int w = 96; w <= 103; ++w) {
        Camera cam = generateCameraPath(spec, 2, w, 59)[0];
        auto subset = frustumCull(m, cam);
        Image d_image(w, 59, {0.3f, -0.2f, 0.1f});
        auto run = [&](const RenderKernels *kern) {
            RenderConfig cfg;
            cfg.kernels = kern;
            RenderOutput out = renderForward(m, cam, subset, cfg);
            GaussianGrads g;
            g.resize(m.size());
            renderBackward(m, cam, cfg, out, d_image, g);
            return g;
        };
        GaussianGrads a = run(nullptr);    // dispatched table
        GaussianGrads b = run(scalar_kern);
        for (size_t i = 0; i < m.size(); ++i) {
            ASSERT_EQ(a.d_position[i].x, b.d_position[i].x)
                << "w=" << w << " i=" << i;
            ASSERT_EQ(a.d_position[i].y, b.d_position[i].y)
                << "w=" << w << " i=" << i;
            ASSERT_EQ(a.d_opacity[i], b.d_opacity[i])
                << "w=" << w << " i=" << i;
            ASSERT_EQ(a.d_log_scale[i].y, b.d_log_scale[i].y)
                << "w=" << w << " i=" << i;
            ASSERT_EQ(a.d_rotation[i].x, b.d_rotation[i].x)
                << "w=" << w << " i=" << i;
            ASSERT_EQ(a.d_sh[i * kShDim], b.d_sh[i * kShDim])
                << "w=" << w << " i=" << i;
        }
    }
}

TEST(RenderBackward, GradientDescentReducesRealLoss)
{
    // End-to-end: SGD along the analytic gradient of the *real* training
    // loss (L1 + D-SSIM) must reduce it.
    Camera cam = testCamera();
    RenderConfig render;
    LossConfig loss;
    loss.ssim_window = 5;
    Image gt = fdGroundTruth(24, 99);
    GaussianModel m = fdScene(8, 70);
    std::vector<uint32_t> subset;
    for (size_t i = 0; i < m.size(); ++i)
        subset.push_back(static_cast<uint32_t>(i));

    auto eval = [&](GaussianGrads *g) {
        RenderOutput out = renderForward(m, cam, subset, render);
        Image d_image;
        LossResult r =
            computeLoss(out.image, gt, g ? &d_image : nullptr, loss);
        if (g)
            renderBackward(m, cam, render, out, d_image, *g);
        return r.total;
    };

    double before = eval(nullptr);
    for (int step = 0; step < 8; ++step) {
        GaussianGrads g;
        g.resize(m.size());
        eval(&g);
        for (size_t i = 0; i < m.size(); ++i) {
            m.position(i) -= g.d_position[i] * 20.0f;
            m.logScale(i) -= g.d_log_scale[i] * 5.0f;
            m.rawOpacity(i) -= 50.0f * g.d_opacity[i];
            for (int k = 0; k < kShDim; ++k)
                m.sh(i)[k] -= 50.0f * g.d_sh[i * kShDim + k];
        }
    }
    double after = eval(nullptr);
    EXPECT_LT(after, before);
}

} // namespace
} // namespace clm
