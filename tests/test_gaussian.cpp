/**
 * @file
 * Tests for the Gaussian parameter store, the attribute-wise split, the
 * subset-capable CPU Adam and adaptive densification.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gaussian/adam.hpp"
#include "gaussian/densify.hpp"
#include "gaussian/model.hpp"
#include "math/rng.hpp"

namespace clm {
namespace {

GaussianModel
randomModel(size_t n, uint64_t seed)
{
    Rng rng(seed);
    GaussianModel m = GaussianModel::random(n, {-5, -5, -5}, {5, 5, 5},
                                            0.1f, rng);
    for (size_t i = 0; i < n; ++i) {
        m.rotation(i) = Quat{rng.normal(), rng.normal(), rng.normal(),
                             rng.normal()};
        if (m.rotation(i).norm() < 1e-3f)
            m.rotation(i) = Quat{1, 0, 0, 0};
        for (int k = 0; k < kShDim; ++k)
            m.sh(i)[k] = rng.normal(0.0f, 0.3f);
    }
    return m;
}

GaussianGrads
randomGrads(size_t n, uint64_t seed)
{
    Rng rng(seed);
    GaussianGrads g;
    g.resize(n);
    for (size_t i = 0; i < n; ++i) {
        g.d_position[i] = rng.normal3({0, 0, 0}, 1.0f);
        g.d_log_scale[i] = rng.normal3({0, 0, 0}, 1.0f);
        g.d_rotation[i] = Quat{rng.normal(), rng.normal(), rng.normal(),
                               rng.normal()};
        g.d_opacity[i] = rng.normal();
        for (int k = 0; k < kShDim; ++k)
            g.d_sh[i * kShDim + k] = rng.normal();
    }
    return g;
}

TEST(Attributes, LayoutConstants)
{
    EXPECT_EQ(kParamsPerGaussian, 59);
    EXPECT_EQ(kCriticalDim, 10);
    EXPECT_EQ(kNonCriticalDim, 49);
    EXPECT_EQ(kModelStateBytesPerGaussian, 59u * 4u * 4u);
    EXPECT_EQ(kPaddedNonCriticalBytes % kCacheLineBytes, 0u);
    // Critical fraction is under 20% of the footprint (§4.1).
    EXPECT_LT(double(kCriticalDim) / kParamsPerGaussian, 0.20);
}

TEST(GaussianModel, PackUnpackCriticalRoundTrip)
{
    GaussianModel m = randomModel(8, 1);
    float rec[kCriticalDim];
    m.packCritical(3, rec);
    GaussianModel m2(8);
    m2.unpackCritical(3, rec);
    EXPECT_FLOAT_EQ(m2.position(3).x, m.position(3).x);
    EXPECT_FLOAT_EQ(m2.logScale(3).z, m.logScale(3).z);
    EXPECT_FLOAT_EQ(m2.rotation(3).w, m.rotation(3).w);
    EXPECT_FLOAT_EQ(m2.rotation(3).z, m.rotation(3).z);
}

TEST(GaussianModel, PackUnpackNonCriticalRoundTrip)
{
    GaussianModel m = randomModel(8, 2);
    float rec[kNonCriticalDim];
    m.packNonCritical(5, rec);
    GaussianModel m2(8);
    m2.unpackNonCritical(5, rec);
    for (int k = 0; k < kShDim; ++k)
        EXPECT_FLOAT_EQ(m2.sh(5)[k], m.sh(5)[k]);
    EXPECT_FLOAT_EQ(m2.rawOpacity(5), m.rawOpacity(5));
}

TEST(GaussianModel, ActivationsApplied)
{
    GaussianModel m(1);
    m.logScale(0) = {0.0f, std::log(2.0f), std::log(0.5f)};
    m.rawOpacity(0) = 0.0f;
    Vec3 ws = m.worldScale(0);
    EXPECT_NEAR(ws.x, 1.0f, 1e-6f);
    EXPECT_NEAR(ws.y, 2.0f, 1e-6f);
    EXPECT_NEAR(ws.z, 0.5f, 1e-6f);
    EXPECT_NEAR(m.worldOpacity(0), 0.5f, 1e-6f);
    EXPECT_NEAR(inverseSigmoid(0.1f), -2.19722f, 1e-4f);
}

TEST(GaussianModel, CovarianceIsSymmetricPsd)
{
    GaussianModel m = randomModel(20, 3);
    for (size_t i = 0; i < m.size(); ++i) {
        Mat3 cov = m.covariance(i);
        for (int a = 0; a < 3; ++a)
            for (int b = 0; b < 3; ++b)
                EXPECT_NEAR(cov.m[a][b], cov.m[b][a], 1e-4f);
        // Diagonal entries of a PSD matrix are non-negative; determinant
        // of R S^2 R^T equals det(S^2) > 0.
        for (int a = 0; a < 3; ++a)
            EXPECT_GE(cov.m[a][a], 0.0f);
        EXPECT_GT(cov.det(), 0.0f);
    }
}

TEST(GaussianModel, RemoveRowsKeepsOrder)
{
    GaussianModel m = randomModel(10, 4);
    Vec3 keep2 = m.position(2);
    Vec3 keep9 = m.position(9);
    m.removeRows({0, 5, 7});
    EXPECT_EQ(m.size(), 7u);
    EXPECT_FLOAT_EQ(m.position(1).x, keep2.x);    // 2 shifted to 1
    EXPECT_FLOAT_EQ(m.position(6).x, keep9.x);    // 9 shifted to 6
}

TEST(GaussianModel, AppendGrows)
{
    GaussianModel m(2);
    float sh[kShDim] = {1.5f};
    size_t idx = m.append({1, 2, 3}, {0, 0, 0}, {1, 0, 0, 0}, sh, 0.25f);
    EXPECT_EQ(idx, 2u);
    EXPECT_EQ(m.size(), 3u);
    EXPECT_FLOAT_EQ(m.sh(2)[0], 1.5f);
    EXPECT_FLOAT_EQ(m.rawOpacity(2), 0.25f);
}

TEST(GaussianGrads, AccumulateRowsMatchesFull)
{
    size_t n = 16;
    GaussianGrads a = randomGrads(n, 5);
    GaussianGrads b = randomGrads(n, 6);
    GaussianGrads full = a;
    full.accumulate(b);

    GaussianGrads partial = a;
    std::vector<uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0u);
    partial.accumulateRows(b, all);

    for (size_t i = 0; i < n; ++i) {
        EXPECT_FLOAT_EQ(partial.d_position[i].x, full.d_position[i].x);
        EXPECT_FLOAT_EQ(partial.d_sh[i * kShDim + 7],
                        full.d_sh[i * kShDim + 7]);
        EXPECT_FLOAT_EQ(partial.d_opacity[i], full.d_opacity[i]);
    }
}

TEST(GaussianGrads, ZeroRowsOnlyTouchesListed)
{
    GaussianGrads g = randomGrads(4, 7);
    float keep = g.d_opacity[1];
    g.zeroRows({0, 2});
    EXPECT_FLOAT_EQ(g.d_position[0].x, 0.0f);
    EXPECT_FLOAT_EQ(g.d_sh[2 * kShDim + 3], 0.0f);
    EXPECT_FLOAT_EQ(g.d_opacity[1], keep);
}

/** Reference scalar Adam for cross-checking. */
void
refAdam(float &p, float g, float &m, float &v, float lr, int t,
        const AdamConfig &c)
{
    m = c.beta1 * m + (1 - c.beta1) * g;
    v = c.beta2 * v + (1 - c.beta2) * g * g;
    float mh = m / (1 - std::pow(c.beta1, float(t)));
    float vh = v / (1 - std::pow(c.beta2, float(t)));
    p -= lr * mh / (std::sqrt(vh) + c.epsilon);
}

TEST(CpuAdam, MatchesReferenceScalarAdam)
{
    GaussianModel m = randomModel(3, 8);
    float p0 = m.position(1).x;
    CpuAdam adam;
    adam.reset(3);
    GaussianGrads g = randomGrads(3, 9);

    float rp = p0, rm = 0, rv = 0;
    for (int t = 1; t <= 5; ++t) {
        adam.update(m, g);
        refAdam(rp, g.d_position[1].x, rm, rv,
                adam.config().lr_position, t, adam.config());
    }
    EXPECT_NEAR(m.position(1).x, rp, 1e-5f);
}

TEST(CpuAdam, SubsetUpdateOnlyTouchesSubset)
{
    GaussianModel m = randomModel(6, 10);
    GaussianModel before = m;
    CpuAdam adam;
    adam.reset(6);
    GaussianGrads g = randomGrads(6, 11);
    adam.updateSubset(m, g, {1, 4});

    for (size_t i : {0u, 2u, 3u, 5u}) {
        EXPECT_FLOAT_EQ(m.position(i).x, before.position(i).x);
        EXPECT_FLOAT_EQ(m.rawOpacity(i), before.rawOpacity(i));
    }
    EXPECT_NE(m.position(1).x, before.position(1).x);
    EXPECT_NE(m.position(4).x, before.position(4).x);
    EXPECT_EQ(adam.stepCount(1), 1u);
    EXPECT_EQ(adam.stepCount(0), 0u);
}

TEST(CpuAdam, EarlySubsetUpdateEqualsBatchEndUpdate)
{
    // The §4.2.2 safety property: updating a finalized Gaussian early
    // gives the identical result to updating it at batch end, because
    // per-Gaussian step counters drive bias correction.
    GaussianModel m1 = randomModel(4, 12);
    GaussianModel m2 = m1;
    CpuAdam a1, a2;
    a1.reset(4);
    a2.reset(4);
    GaussianGrads g = randomGrads(4, 13);

    // a1: update {0,1} "early", then {2,3} "later".
    a1.updateSubset(m1, g, {0, 1});
    a1.updateSubset(m1, g, {2, 3});
    // a2: one batch-end update of everything.
    a2.update(m2, g);

    for (size_t i = 0; i < 4; ++i) {
        EXPECT_FLOAT_EQ(m1.position(i).x, m2.position(i).x);
        EXPECT_FLOAT_EQ(m1.logScale(i).y, m2.logScale(i).y);
        EXPECT_FLOAT_EQ(m1.rawOpacity(i), m2.rawOpacity(i));
        EXPECT_FLOAT_EQ(m1.sh(i)[10], m2.sh(i)[10]);
    }
}

TEST(CpuAdam, StateBytesMatchPaperEstimate)
{
    CpuAdam adam;
    adam.reset(1000);
    // Two moments per parameter = half of the 4-values-per-param total.
    EXPECT_EQ(adam.stateBytes(), 1000u * 59u * 2u * sizeof(float));
}

TEST(Densifier, PrunesTransparent)
{
    GaussianModel m = randomModel(10, 14);
    for (size_t i = 0; i < 3; ++i)
        m.rawOpacity(i) = inverseSigmoid(0.001f);    // below threshold
    CpuAdam adam;
    adam.reset(10);
    Densifier d;
    d.reset(10);
    Rng rng(1);
    DensifyStats stats = d.densify(m, adam, rng);
    EXPECT_EQ(stats.pruned, 3u);
    EXPECT_EQ(m.size(), 7u);
    EXPECT_EQ(adam.size(), 7u);
}

TEST(Densifier, ClonesHighGradientSmallGaussians)
{
    GaussianModel m = randomModel(4, 15);
    for (size_t i = 0; i < 4; ++i) {
        m.rawOpacity(i) = inverseSigmoid(0.8f);
        m.logScale(i) = {-5, -5, -5};    // tiny -> clone, not split
    }
    Densifier d;
    d.reset(4);
    GaussianGrads g;
    g.resize(4);
    g.d_position[2] = {1.0f, 0, 0};    // only #2 above threshold
    d.observe(g);
    CpuAdam adam;
    adam.reset(4);
    Rng rng(2);
    DensifyStats stats = d.densify(m, adam, rng);
    EXPECT_EQ(stats.cloned, 1u);
    EXPECT_EQ(stats.split, 0u);
    EXPECT_EQ(m.size(), 5u);
}

TEST(Densifier, SplitsLargeGaussiansAndRemovesParent)
{
    GaussianModel m = randomModel(4, 16);
    for (size_t i = 0; i < 4; ++i)
        m.rawOpacity(i) = inverseSigmoid(0.8f);
    m.logScale(1) = {2.0f, 2.0f, 2.0f};    // huge -> split
    Densifier d;
    d.reset(4);
    GaussianGrads g;
    g.resize(4);
    g.d_position[1] = {1.0f, 0, 0};
    d.observe(g);
    CpuAdam adam;
    adam.reset(4);
    Rng rng(3);
    DensifyStats stats = d.densify(m, adam, rng);
    EXPECT_EQ(stats.split, 1u);
    // 4 - 1 parent + 2 children = 5.
    EXPECT_EQ(m.size(), 5u);
}

TEST(Densifier, RespectsMaxGaussiansCap)
{
    DensifyConfig cfg;
    cfg.max_gaussians = 4;
    Densifier d(cfg);
    GaussianModel m = randomModel(4, 17);
    for (size_t i = 0; i < 4; ++i)
        m.rawOpacity(i) = inverseSigmoid(0.8f);
    d.reset(4);
    GaussianGrads g;
    g.resize(4);
    for (size_t i = 0; i < 4; ++i)
        g.d_position[i] = {1.0f, 0, 0};
    d.observe(g);
    CpuAdam adam;
    adam.reset(4);
    Rng rng(4);
    d.densify(m, adam, rng);
    EXPECT_LE(m.size(), 4u);
}

} // namespace
} // namespace clm
