/**
 * @file
 * Tests for the observability layer (src/obs): counters, gauges, the
 * deterministic fixed-log-bucket histogram (bucket placement, exact
 * fixed-point sums, merge-order independence, concurrent recording),
 * the metrics registry + JSON-lines exporter, and the span tracer
 * (enable/disable, ring overflow eviction, span nesting, trace-context
 * scoping, StageClock laps, Chrome export shape) — plus the invariant
 * the whole layer is built around: tracing must not perturb rendering
 * bitwise.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "render/arena.hpp"
#include "render/culling.hpp"
#include "render/rasterizer.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"
#include "serve/render_service.hpp"
#include "serve/snapshot.hpp"
#include "sim/stage_timings.hpp"

namespace clm {
namespace {

/** Every test starts and ends with tracing off — no global tracer
 *  state leaks between tests (or into other suites). */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override { Tracer::enable(nullptr); }
    void TearDown() override { Tracer::enable(nullptr); }
};

// --------------------------------------------------------------------------
// Metrics

TEST_F(ObsTest, CounterAndGaugeBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);

    Gauge g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(1.5);
    g.set(-2.25);    // last write wins
    EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(ObsTest, HistogramBucketPlacementIsDeterministic)
{
    // per_octave=1 over [1, 16] -> edges 1, 2, 4, 8, 16 + overflow.
    Histogram h(1.0, 16.0, 1);
    ASSERT_EQ(h.bucketCount(), 6u);
    EXPECT_DOUBLE_EQ(h.bucketUpperEdge(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bucketUpperEdge(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketUpperEdge(4), 16.0);

    h.record(0.5);     // underflow -> bucket 0 (v <= lo)
    h.record(1.0);     // exactly lo -> bucket 0
    h.record(1.5);     // (1, 2] -> bucket 1
    h.record(3.0);     // (2, 4] -> bucket 2
    h.record(16.0);    // (8, 16] -> bucket 4
    h.record(100.0);   // overflow -> bucket 5
    EXPECT_EQ(h.bucketValue(0), 2u);
    EXPECT_EQ(h.bucketValue(1), 1u);
    EXPECT_EQ(h.bucketValue(2), 1u);
    EXPECT_EQ(h.bucketValue(3), 0u);
    EXPECT_EQ(h.bucketValue(4), 1u);
    EXPECT_EQ(h.bucketValue(5), 1u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);

    // Percentiles are bucket upper edges; the overflow bucket reports
    // the exact max, never an invented larger edge.
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
}

TEST_F(ObsTest, HistogramEmptySingleAndNan)
{
    Histogram h(1.0, 16.0, 1);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);

    h.record(std::nan(""));
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.nanDropped(), 1u);

    h.record(3.0);
    EXPECT_EQ(h.count(), 1u);
    // Single sample: every percentile answers its bucket's upper edge.
    EXPECT_DOUBLE_EQ(h.percentile(0), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST_F(ObsTest, HistogramSumIsExactFixedPoint)
{
    // 0.1 is not representable in binary floating point; a naive double
    // accumulator would drift. The fixed-point micro-unit sum is exact.
    Histogram h(1e-3, 1e3, 8);
    for (int i = 0; i < 10; ++i)
        h.record(0.1);
    EXPECT_DOUBLE_EQ(h.sum(), 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.1);
}

TEST_F(ObsTest, HistogramMergeIsOrderIndependent)
{
    // Three "per-thread" histograms with disjoint value mixes, merged
    // in two different orders: every observable must agree bitwise with
    // the single-histogram reference.
    const std::vector<std::vector<double>> parts = {
        {0.5, 1.0, 7.0, 200.0},
        {3.0, 3.0, 0.001},
        {16.0, 9.9, 1e6},
    };
    // Histograms hold atomics (not movable), so "per-thread" instances
    // live behind unique_ptr.
    std::vector<std::unique_ptr<Histogram>> threads;
    Histogram reference(1.0, 16.0, 2);
    for (const auto &vals : parts)
    {
        threads.push_back(std::make_unique<Histogram>(1.0, 16.0, 2));
        for (double v : vals)
        {
            threads.back()->record(v);
            reference.record(v);
        }
    }

    Histogram a(1.0, 16.0, 2), b(1.0, 16.0, 2);
    for (int i : {0, 1, 2})
        a.merge(*threads[static_cast<size_t>(i)]);
    for (int i : {2, 0, 1})
        b.merge(*threads[static_cast<size_t>(i)]);

    for (const Histogram *m : {&a, &b})
    {
        EXPECT_EQ(m->count(), reference.count());
        EXPECT_DOUBLE_EQ(m->sum(), reference.sum());
        EXPECT_DOUBLE_EQ(m->min(), reference.min());
        EXPECT_DOUBLE_EQ(m->max(), reference.max());
        for (size_t i = 0; i < reference.bucketCount(); ++i)
            EXPECT_EQ(m->bucketValue(i), reference.bucketValue(i));
        for (double p : {50.0, 90.0, 99.0})
            EXPECT_DOUBLE_EQ(m->percentile(p), reference.percentile(p));
    }
}

TEST_F(ObsTest, HistogramConcurrentRecordMatchesSerial)
{
    // 4 threads hammer one histogram with a fixed value set; the result
    // must equal a serial recording of the same multiset (integer adds
    // commute — there is no interleaving-dependent state).
    const int kThreads = 4, kPerThread = 2000;
    Histogram shared(1e-3, 1e3, 8);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&shared] {
            for (int i = 0; i < kPerThread; ++i)
                shared.record(0.5 + (i % 100));
        });
    for (auto &w : workers)
        w.join();

    Histogram serial(1e-3, 1e3, 8);
    for (int t = 0; t < kThreads; ++t)
        for (int i = 0; i < kPerThread; ++i)
            serial.record(0.5 + (i % 100));

    EXPECT_EQ(shared.count(), serial.count());
    EXPECT_DOUBLE_EQ(shared.sum(), serial.sum());
    for (size_t i = 0; i < serial.bucketCount(); ++i)
        EXPECT_EQ(shared.bucketValue(i), serial.bucketValue(i));
    for (double p : {50.0, 90.0, 99.0})
        EXPECT_DOUBLE_EQ(shared.percentile(p), serial.percentile(p));
}

TEST_F(ObsTest, RegistryReturnsStableIdentities)
{
    MetricsRegistry reg;
    Counter &c1 = reg.counter("a");
    Counter &c2 = reg.counter("a");
    EXPECT_EQ(&c1, &c2);
    Histogram &h1 = reg.histogram("h", 1e-3, 1e3, 8);
    Histogram &h2 = reg.histogram("h", 1e-3, 1e3, 8);
    EXPECT_EQ(&h1, &h2);
    reg.gauge("g").set(3.0);

    auto names = reg.names();
    ASSERT_EQ(names.size(), 3u);    // sorted: a, g, h
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "g");
    EXPECT_EQ(names[2], "h");
}

TEST_F(ObsTest, RegistryJsonLineShape)
{
    MetricsRegistry reg;
    reg.counter("req").add(2);
    reg.gauge("depth").set(5);
    reg.histogram("lat_ms", 1e-3, 1e3, 8).record(2.0);

    std::ostringstream os;
    reg.writeJsonLine(os, 1.25);
    const std::string line = os.str();
    EXPECT_NE(line.find("\"ts_s\": 1.25"), std::string::npos);
    EXPECT_NE(line.find("\"req\": 2"), std::string::npos);
    EXPECT_NE(line.find("\"depth\": 5"), std::string::npos);
    EXPECT_NE(line.find("\"lat_ms\": {\"count\": 1"), std::string::npos);
    EXPECT_NE(line.find("\"buckets\": [["), std::string::npos);
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(line[line.size() - 2], '}');
}

TEST_F(ObsTest, ExporterWritesAtLeastOneLine)
{
    const std::string path = "test_obs_metrics.jsonl";
    MetricsRegistry reg;
    reg.counter("events").add(7);
    {
        MetricsExporter exporter(reg, path, 1e6);    // period >> test
        exporter.stop();    // final line written even with no tick
        EXPECT_GE(exporter.snapshots(), 1);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    int lines = 0;
    while (std::getline(in, line))
    {
        ++lines;
        EXPECT_NE(line.find("\"events\": 7"), std::string::npos);
    }
    EXPECT_GE(lines, 1);
    std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// Tracer

TEST_F(ObsTest, ScopedSpanRecordsOnlyWhileEnabled)
{
    Tracer tracer;
    EXPECT_FALSE(Tracer::enabled());
    { ScopedSpan span("off"); }
    EXPECT_EQ(tracer.stats().recorded, 0u);

    Tracer::enable(&tracer);
    EXPECT_TRUE(Tracer::enabled());
    { ScopedSpan span("on"); }
    Tracer::enable(nullptr);
    { ScopedSpan span("off-again"); }

    TraceStats s = tracer.stats();
    EXPECT_EQ(s.recorded, 1u);
    EXPECT_EQ(s.dropped, 0u);
    auto spans = tracer.snapshotSpans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_STREQ(spans[0].name, "on");
    EXPECT_GE(spans[0].t1_ns, spans[0].t0_ns);
}

TEST_F(ObsTest, RingOverflowEvictsOldestAndCountsDropped)
{
    Tracer tracer(8);
    Tracer::enable(&tracer);
    for (uint64_t i = 0; i < 11; ++i)
        tracer.record("s", i, i, i + 1);
    Tracer::enable(nullptr);

    TraceStats s = tracer.stats();
    EXPECT_EQ(s.recorded, 8u);    // ring capacity
    EXPECT_EQ(s.dropped, 3u);     // the 3 oldest were overwritten
    EXPECT_EQ(s.threads, 1u);

    // Snapshot is oldest-first and holds exactly the newest 8.
    auto spans = tracer.snapshotSpans();
    ASSERT_EQ(spans.size(), 8u);
    for (size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(spans[i].trace_id, 3 + i);

    tracer.clear();
    EXPECT_EQ(tracer.stats().recorded, 0u);
    EXPECT_EQ(tracer.stats().threads, 1u);    // rings stay registered
}

TEST_F(ObsTest, SpanNestingRecordsDepths)
{
    Tracer tracer;
    Tracer::enable(&tracer);
    {
        ScopedSpan outer("outer");
        {
            ScopedSpan mid("mid");
            ScopedSpan inner("inner");
        }
    }
    Tracer::enable(nullptr);

    // Spans complete innermost-first.
    auto spans = tracer.snapshotSpans();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_STREQ(spans[0].name, "inner");
    EXPECT_EQ(spans[0].depth, 2u);
    EXPECT_STREQ(spans[1].name, "mid");
    EXPECT_EQ(spans[1].depth, 1u);
    EXPECT_STREQ(spans[2].name, "outer");
    EXPECT_EQ(spans[2].depth, 0u);
}

TEST_F(ObsTest, TraceContextScopesAndRestoresId)
{
    EXPECT_EQ(currentTraceId(), 0u);
    Tracer tracer;
    Tracer::enable(&tracer);
    {
        TraceContext outer(42);
        EXPECT_EQ(currentTraceId(), 42u);
        {
            TraceContext inner(7);
            EXPECT_EQ(currentTraceId(), 7u);
        }
        EXPECT_EQ(currentTraceId(), 42u);
        ScopedSpan span("tagged");    // inherits the ambient id
    }
    Tracer::enable(nullptr);
    EXPECT_EQ(currentTraceId(), 0u);

    auto spans = tracer.snapshotSpans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].trace_id, 42u);
}

TEST_F(ObsTest, StageClockLapsAreContiguousSpans)
{
    Tracer tracer;
    Tracer::enable(&tracer);
    StageClock clock;
    const double s1 = clock.lap("stage.a");
    const double s2 = clock.lap("stage.b");
    Tracer::enable(nullptr);
    EXPECT_GE(s1, 0.0);
    EXPECT_GE(s2, 0.0);

    auto spans = tracer.snapshotSpans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_STREQ(spans[0].name, "stage.a");
    EXPECT_STREQ(spans[1].name, "stage.b");
    // Laps tile time: stage.b starts exactly where stage.a ended.
    EXPECT_EQ(spans[1].t0_ns, spans[0].t1_ns);
}

TEST_F(ObsTest, StageClockWorksWithoutTracer)
{
    StageClock clock;
    EXPECT_GE(clock.lap("a"), 0.0);
    EXPECT_GE(clock.lap("b"), 0.0);
}

TEST_F(ObsTest, ChromeExportShape)
{
    Tracer tracer;
    Tracer::enable(&tracer);
    tracer.record("work", 5, 1000, 2500);
    tracer.record("queue_wait", 99, 100, 900, 0, SpanKind::Async);
    Tracer::enable(nullptr);

    std::ostringstream os;
    tracer.writeChromeTrace(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);   // thread span
    EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);   // async begin
    EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);   // async end
    EXPECT_NE(json.find("\"id\": 99"), std::string::npos);      // keyed by trace
    EXPECT_NE(json.find("\"dur\": 1.500"), std::string::npos);  // 1500 ns
    EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
}

TEST_F(ObsTest, StageTimingsFeedTracerAndRegistry)
{
    Tracer tracer;
    Tracer::enable(&tracer);
    StageTimings timings;
    timings.add(TrainStage::Compute, 0.25);
    timings.add(TrainStage::Gather, 0.125);
    Tracer::enable(nullptr);

    auto spans = tracer.snapshotSpans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_STREQ(spans[0].name, "train.compute");
    EXPECT_STREQ(spans[1].name, "train.gather");

    MetricsRegistry reg;
    timings.exportTo(reg);
    EXPECT_EQ(reg.counter("train.stage.Compute.calls").value(), 1u);
    EXPECT_EQ(reg.counter("train.stage.Gather.calls").value(), 1u);
    EXPECT_EQ(reg.counter("train.stage.Scatter.calls").value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("train.stage.Compute.busy_s").value(), 0.25);
    EXPECT_DOUBLE_EQ(reg.gauge("train.batch_s").value(), 0.0);
}

// --------------------------------------------------------------------------
// The invariant everything above exists to protect

TEST_F(ObsTest, TracingPreservesRenderBitwise)
{
    SceneSpec spec = SceneSpec::byName("BigCity");
    GaussianModel model = generateSceneGaussians(spec, 4000);
    std::vector<Camera> path = generateCameraPath(spec, 2, 64, 36);
    RenderConfig cfg;

    Tracer tracer;
    RenderArena arena_off, arena_on;
    for (const Camera &cam : path)
    {
        auto subset = frustumCull(model, cam);
        const RenderOutput &off =
            renderForward(model, cam, subset, cfg, arena_off);
        Tracer::enable(&tracer);
        const RenderOutput &on =
            renderForward(model, cam, subset, cfg, arena_on);
        Tracer::enable(nullptr);
        EXPECT_TRUE(off.image.data() == on.image.data());
        EXPECT_TRUE(off.final_t == on.final_t);
        EXPECT_TRUE(off.n_contrib == on.n_contrib);
    }
    // The traced renders did record the pipeline stage spans.
    EXPECT_GT(tracer.stats().recorded, 0u);
}

TEST_F(ObsTest, ServiceWithTracingStaysBitwiseAndExportsMetrics)
{
    SceneSpec spec = SceneSpec::byName("BigCity");
    GaussianModel model = generateSceneGaussians(spec, 4000);
    std::vector<Camera> path = generateCameraPath(spec, 4, 64, 36);
    RenderConfig render;

    SnapshotSlot slot;
    slot.publish(model, 0);

    Tracer tracer;    // declared before the service: workers record
                      // into it, so it must outlive (and be disabled
                      // after) service shutdown
    Tracer::enable(&tracer);
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.max_batch = 2;
    cfg.render = render;
    {
        RenderService service(slot, cfg);
        RenderArena direct_arena;
        for (const Camera &cam : path)
        {
            RenderResponse resp = service.submit(cam).get();
            ASSERT_EQ(resp.status, ServeStatus::Ok);
            auto subset = frustumCull(model, cam);
            const RenderOutput &direct =
                renderForward(model, cam, subset, render, direct_arena);
            EXPECT_TRUE(resp.image.data() == direct.image.data());
        }
        service.stop();
        ServeStats stats = service.stats();
        EXPECT_EQ(stats.requests, path.size());
        // The decomposition fields come from the registry histograms.
        EXPECT_GE(stats.queue_wait_p99_ms, 0.0);
        EXPECT_GT(stats.render_p99_ms, 0.0);
        std::ostringstream os;
        service.metrics().writeJsonLine(os, 0.0);
        const std::string line = os.str();
        EXPECT_NE(line.find("\"serve.queue_wait_ms\": {\"count\": 4"),
                  std::string::npos);
        EXPECT_NE(line.find("\"serve.requests\": 4"), std::string::npos);
    }
    Tracer::enable(nullptr);

    // The request lifecycle left spans: admission, queue wait, render.
    bool saw_admit = false, saw_queue_wait = false, saw_render = false;
    for (const SpanRecord &s : tracer.snapshotSpans())
    {
        saw_admit = saw_admit || std::string(s.name) == "serve.admit";
        saw_queue_wait =
            saw_queue_wait || std::string(s.name) == "serve.queue_wait";
        saw_render = saw_render
                  || std::string(s.name).rfind("serve.render", 0) == 0;
    }
    EXPECT_TRUE(saw_admit);
    EXPECT_TRUE(saw_queue_wait);
    EXPECT_TRUE(saw_render);
}

} // namespace
} // namespace clm
