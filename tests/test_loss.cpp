/**
 * @file
 * SAT-loss tests: the summed-area-table SSIM forward/backward against
 * the retained brute-force reference (random images, window-clipped
 * borders included), a finite-difference gradient check of the full
 * SSIM+L1 backward at the production window size, parallel ≡ serial
 * bitwise determinism, and scratch-reuse bit-exactness.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.hpp"
#include "render/image.hpp"
#include "render/loss.hpp"

namespace clm {
namespace {

Image
randomImage(int w, int h, uint64_t seed)
{
    Rng rng(seed);
    Image img(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            img.setPixel(x, y, {rng.uniform(0.0f, 1.0f),
                                rng.uniform(0.0f, 1.0f),
                                rng.uniform(0.0f, 1.0f)});
    return img;
}

void
expectLossMatchesReference(int w, int h, int window, uint64_t seed)
{
    Image x = randomImage(w, h, seed);
    Image y = randomImage(w, h, seed + 1);
    LossConfig cfg;
    cfg.ssim_window = window;

    Image d_sat, d_ref;
    LossResult sat = computeLoss(x, y, &d_sat, cfg);
    LossResult ref = computeLossReference(x, y, &d_ref, cfg);

    // Same L1 reduction, identical bits.
    EXPECT_EQ(sat.l1, ref.l1);
    // The SAT arithmetic regroups the window sums; values agree to
    // double-rounding levels.
    EXPECT_NEAR(sat.dssim, ref.dssim, 1e-9);
    EXPECT_NEAR(sat.total, ref.total, 1e-9);

    ASSERT_EQ(d_sat.data().size(), d_ref.data().size());
    for (size_t i = 0; i < d_ref.data().size(); ++i) {
        double r = d_ref.data()[i];
        ASSERT_NEAR(d_sat.data()[i], r, 1e-8 + 1e-5 * std::abs(r))
            << "grad index " << i << " (" << w << "x" << h << " win "
            << window << ")";
    }
}

TEST(SatLoss, MatchesBruteForceOnRandomImages)
{
    expectLossMatchesReference(16, 16, 5, 100);
    expectLossMatchesReference(33, 21, 11, 101);    // odd, non-square
    expectLossMatchesReference(64, 24, 7, 102);
}

TEST(SatLoss, MatchesBruteForceWhenWindowClipsEverywhere)
{
    // 8x8 image with an 11-tap window: every center's window is clipped
    // by at least one border, so the clamped-count (1/N) paths are the
    // only paths exercised.
    expectLossMatchesReference(8, 8, 11, 103);
    // Extreme: window wider than both image dimensions.
    expectLossMatchesReference(5, 3, 11, 104);
}

TEST(SatLoss, MeanSsimMatchesReference)
{
    Image a = randomImage(24, 18, 105);
    Image b = randomImage(24, 18, 106);
    LossConfig cfg;
    double sat = meanSsim(a, b, cfg);
    double ref = 1.0 - computeLossReference(a, b, nullptr, cfg).dssim;
    EXPECT_NEAR(sat, ref, 1e-9);
    EXPECT_NEAR(meanSsim(a, a, cfg), 1.0, 1e-6);
}

TEST(SatLoss, GradientMatchesFiniteDifferenceAtProductionWindow)
{
    // FD check of the full (1-lam)*L1 + lam*D-SSIM backward with the
    // production 11-tap window on an image small enough that every
    // window is border-clipped.
    Rng rng(9);
    const int w = 16, h = 12;
    Image x = randomImage(w, h, 107);
    Image y = randomImage(w, h, 108);
    LossConfig cfg;    // ssim_window = 11
    Image d;
    computeLoss(x, y, &d, cfg);

    const float eps = 1e-3f;
    Rng pick(10);
    for (int it = 0; it < 30; ++it) {
        size_t idx = static_cast<size_t>(
            pick.uniformInt(0, static_cast<int64_t>(x.data().size()) - 1));
        float saved = x.data()[idx];
        x.data()[idx] = saved + eps;
        double lp = computeLoss(x, y, nullptr, cfg).total;
        x.data()[idx] = saved - eps;
        double lm = computeLoss(x, y, nullptr, cfg).total;
        x.data()[idx] = saved;
        double fd = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(d.data()[idx], fd, 2e-2 * std::max(1e-4, std::abs(fd)))
            << "pixel value index " << idx;
    }
}

TEST(SatLoss, ParallelBitwiseIdenticalToSerial)
{
    // Chunk partitions are derived from the pool size, never from the
    // parallel flag, and partial sums reduce in chunk order — so the
    // parallel loss (forward values AND the gradient image) must equal
    // the serial loss bit for bit.
    Image x = randomImage(64, 48, 109);
    Image y = randomImage(64, 48, 110);
    LossConfig serial;
    serial.parallel = false;
    LossConfig parallel;
    parallel.parallel = true;

    Image d_serial, d_parallel;
    LossResult a = computeLoss(x, y, &d_serial, serial);
    LossResult b = computeLoss(x, y, &d_parallel, parallel);
    EXPECT_EQ(a.total, b.total);
    EXPECT_EQ(a.l1, b.l1);
    EXPECT_EQ(a.dssim, b.dssim);
    EXPECT_EQ(d_serial.data(), d_parallel.data());    // bitwise
}

TEST(SatLoss, ScratchReuseBitwiseIdentical)
{
    // One scratch reused across differently-sized calls reproduces the
    // scratch-free overload bit for bit.
    LossScratch scratch;
    LossConfig cfg;
    int sizes[][2] = {{48, 32}, {16, 12}, {48, 32}};
    uint64_t seed = 111;
    for (auto &wh : sizes) {
        Image x = randomImage(wh[0], wh[1], seed++);
        Image y = randomImage(wh[0], wh[1], seed++);
        Image d_fresh, d_reused;
        LossResult fresh = computeLoss(x, y, &d_fresh, cfg);
        LossResult reused =
            computeLoss(x, y, &d_reused, cfg, scratch, nullptr);
        EXPECT_EQ(fresh.total, reused.total);
        EXPECT_EQ(fresh.dssim, reused.dssim);
        EXPECT_EQ(d_fresh.data(), d_reused.data());
    }
}

TEST(SatLoss, StageTimesReported)
{
    Image x = randomImage(32, 24, 120);
    Image y = randomImage(32, 24, 121);
    LossScratch scratch;
    LossStageTimes times;
    Image d;
    computeLoss(x, y, &d, {}, scratch, &times);
    EXPECT_GT(times.forward_s, 0.0);
    EXPECT_GT(times.backward_s, 0.0);
    // Forward-only calls must not report a backward phase.
    LossStageTimes fwd_only;
    computeLoss(x, y, nullptr, {}, scratch, &fwd_only);
    EXPECT_GT(fwd_only.forward_s, 0.0);
    EXPECT_EQ(fwd_only.backward_s, 0.0);
}

} // namespace
} // namespace clm
