/**
 * @file
 * Cross-scene integration sweeps: for every scene preset, CLM's offloaded
 * trainer must match GPU-only training, batch statistics must obey their
 * conservation identities, checkpoints must resume identically, and the
 * full train -> densify -> save -> load -> continue lifecycle must hold
 * together.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "gaussian/io.hpp"
#include "render/culling.hpp"
#include "scene/camera_path.hpp"
#include "scene/synthetic.hpp"
#include "sim/metrics.hpp"
#include "train/clm_trainer.hpp"
#include "train/quality_harness.hpp"

namespace clm {
namespace {

struct SceneFixture
{
    SceneSpec spec;
    GaussianModel gt;
    std::vector<Camera> cameras;
    std::vector<Image> gt_images;
    TrainConfig config;

    explicit SceneFixture(int scene_index)
        : spec(SceneSpec::all()[scene_index])
    {
        spec.train = {900, 8, 48, 32};
        gt = generateGroundTruth(spec, 900);
        cameras = trainCameras(spec);
        config.batch_size = 4;
        config.render.sh_degree = 1;
        config.loss.ssim_window = 5;
        config.planner.tsp.time_limit_ms = 0.5;
        gt_images = renderGroundTruth(gt, cameras, config.render);
    }
};

class CrossSceneEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(CrossSceneEquivalence, ClmMatchesGpuOnlyOnEveryScene)
{
    SceneFixture f(GetParam());
    GpuOnlyTrainer gpu(makeTrainee(f.gt, 350, 21), f.cameras,
                       f.gt_images, f.config);
    ClmTrainer clm(makeTrainee(f.gt, 350, 21), f.cameras, f.gt_images,
                   f.config);
    std::vector<int> ids{0, 2, 5, 7};
    BatchStats sg = gpu.trainBatch(ids);
    BatchStats sc = clm.trainBatch(ids);
    EXPECT_NEAR(sg.loss, sc.loss, 1e-4) << f.spec.name;
    EXPECT_EQ(sg.gaussians_rendered, sc.gaussians_rendered);
    for (size_t i = 0; i < gpu.model().size(); i += 11) {
        EXPECT_NEAR(gpu.model().position(i).x, clm.model().position(i).x,
                    2e-4f)
            << f.spec.name << " gaussian " << i;
        EXPECT_NEAR(gpu.model().sh(i)[1], clm.model().sh(i)[1], 2e-4f);
    }
}

TEST_P(CrossSceneEquivalence, BatchStatsObeyConservation)
{
    SceneFixture f(GetParam());
    ClmTrainer clm(makeTrainee(f.gt, 350, 22), f.cameras, f.gt_images,
                   f.config);
    std::vector<int> ids{1, 3, 4, 6};
    BatchStats s = clm.trainBatch(ids);
    const BatchPlanResult &plan = clm.lastPlan();

    // Loads + cache hits == total in-frustum rows rendered.
    EXPECT_EQ(static_cast<size_t>(s.h2d_bytes
                                  / kNonCriticalBytesPerGaussian)
                  + s.cache_hits,
              s.gaussians_rendered);
    // Every touched Gaussian got exactly one Adam update.
    EXPECT_EQ(s.adam_updated, plan.fin.touched());
    // Stored gradient bytes cover the batch's distinct store events.
    EXPECT_EQ(static_cast<size_t>(s.d2h_bytes / kGradBytesPerGaussian),
              plan.cache.gradStoreBytes() / kGradBytesPerGaussian);
}

INSTANTIATE_TEST_SUITE_P(AllScenes, CrossSceneEquivalence,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(CheckpointResume, SaveLoadContinuesIdentically)
{
    SceneFixture f(0);
    ClmTrainer a(makeTrainee(f.gt, 300, 23), f.cameras, f.gt_images,
                 f.config);
    std::vector<int> ids{0, 2, 4, 6};
    a.trainBatch(ids);

    // Snapshot, reload into a fresh trainer, and compare renderings.
    std::string path = "/tmp/clm_integration_ckpt.bin";
    saveModel(a.model(), path);
    GaussianModel restored = loadModel(path);
    std::remove(path.c_str());

    ClmTrainer b(restored, f.cameras, f.gt_images, f.config);
    for (size_t v = 0; v < 2; ++v) {
        Image ia = renderForward(a.model(), f.cameras[v],
                                 frustumCull(a.model(), f.cameras[v]),
                                 f.config.render)
                       .image;
        Image ib = renderForward(b.model(), f.cameras[v],
                                 frustumCull(b.model(), f.cameras[v]),
                                 f.config.render)
                       .image;
        EXPECT_LT(ia.mse(ib), 1e-12);
    }
}

TEST(Lifecycle, TrainDensifySaveLoadContinue)
{
    SceneFixture f(1);    // Rubble
    ClmTrainer t(makeTrainee(f.gt, 250, 24), f.cameras, f.gt_images,
                 f.config);
    DensifyConfig dc;
    dc.grad_threshold = 1e-7f;
    t.enableDensification(dc);

    t.trainSteps(2);
    double psnr_mid = t.evaluatePsnr();
    DensifyStats ds = t.densifyNow();
    EXPECT_GT(ds.resulting_size, 0u);
    t.trainSteps(2);

    std::string path = "/tmp/clm_lifecycle_ckpt.bin";
    saveModel(t.model(), path);
    GaussianModel restored = loadModel(path);
    std::remove(path.c_str());
    ASSERT_EQ(restored.size(), t.model().size());

    ClmTrainer resumed(restored, f.cameras, f.gt_images, f.config);
    double psnr_resumed = resumed.evaluatePsnr();
    // The resumed model reproduces the trained quality.
    EXPECT_NEAR(psnr_resumed, t.evaluatePsnr(), 1e-6);
    // And training did not regress across the topology change.
    EXPECT_GT(psnr_resumed, psnr_mid - 1.0);
    auto stats = resumed.trainSteps(1);
    EXPECT_GT(stats.back().adam_updated, 0u);
}

TEST(Lifecycle, AsyncAdamWithDensification)
{
    SceneFixture f(2);    // Alameda
    TrainConfig cfg = f.config;
    cfg.async_adam = true;
    ClmTrainer t(makeTrainee(f.gt, 250, 25), f.cameras, f.gt_images,
                 cfg);
    DensifyConfig dc;
    dc.grad_threshold = 1e-7f;
    t.enableDensification(dc);
    t.trainSteps(2);
    DensifyStats ds = t.densifyNow();    // must drain the Adam thread
    EXPECT_EQ(ds.resulting_size, t.model().size());
    auto stats = t.trainSteps(2);
    EXPECT_GT(stats.back().adam_updated, 0u);
    EXPECT_EQ(t.pinnedBytes(),
              PinnedLayout::totalBytes(t.model().size()));
}

TEST(TransferEnginePolicy, PrefetchMatchesSynchronousTrajectory)
{
    // Prefetch staging is a pure overlap optimization: the TransferEngine
    // performs the same gathers/copies/scatters in the same order, so the
    // learned parameters must be bit-identical with it on or off.
    SceneFixture f(0);
    TrainConfig sync_cfg = f.config;
    sync_cfg.prefetch = false;
    TrainConfig pre_cfg = f.config;
    pre_cfg.prefetch = true;
    ClmTrainer sync_t(makeTrainee(f.gt, 350, 28), f.cameras, f.gt_images,
                      sync_cfg);
    ClmTrainer pre_t(makeTrainee(f.gt, 350, 28), f.cameras, f.gt_images,
                     pre_cfg);
    for (int step = 0; step < 3; ++step) {
        std::vector<int> ids{step % 8, (step + 3) % 8, (step + 5) % 8,
                             (step + 6) % 8};
        BatchStats ss = sync_t.trainBatch(ids);
        BatchStats sp = pre_t.trainBatch(ids);
        EXPECT_EQ(ss.cache_hits, sp.cache_hits);
        EXPECT_EQ(ss.h2d_bytes, sp.h2d_bytes);
        EXPECT_EQ(ss.adam_updated, sp.adam_updated);
    }
    for (size_t i = 0; i < sync_t.model().size(); ++i) {
        EXPECT_FLOAT_EQ(sync_t.model().position(i).x,
                        pre_t.model().position(i).x);
        EXPECT_FLOAT_EQ(sync_t.model().sh(i)[3], pre_t.model().sh(i)[3]);
        EXPECT_FLOAT_EQ(sync_t.model().rawOpacity(i),
                        pre_t.model().rawOpacity(i));
    }
}

TEST(TransferEnginePolicy, StageTimingsCoverTheBatch)
{
    SceneFixture f(0);
    ClmTrainer t(makeTrainee(f.gt, 350, 29), f.cameras, f.gt_images,
                 f.config);
    t.trainBatch({0, 2, 5, 7});
    const StageTimings &st = t.stageTimings();
    EXPECT_EQ(st.microbatches.size(), 4u);
    EXPECT_GT(st[TrainStage::Schedule], 0.0);
    EXPECT_GT(st[TrainStage::Compute], 0.0);
    EXPECT_GT(st[TrainStage::Finalize], 0.0);
    EXPECT_GE(st.batch_seconds, st[TrainStage::Compute]);
    RuntimeBreakdown b = computeBreakdown(st);
    EXPECT_EQ(b.compute, st[TrainStage::Compute]);
    EXPECT_GT(b.total, 0.0);
    auto idle = gpuIdleSamples(st, 500);
    ASSERT_EQ(idle.size(), 500u);
    for (double v : idle)
        EXPECT_TRUE(v == 0.0 || v == 100.0);
}

TEST(Determinism, SameSeedSameTrajectory)
{
    SceneFixture f(0);
    auto run = [&] {
        ClmTrainer t(makeTrainee(f.gt, 300, 26), f.cameras, f.gt_images,
                     f.config);
        t.trainSteps(3);
        return t.model().position(17).x;
    };
    EXPECT_FLOAT_EQ(run(), run());
}

TEST(Robustness, SingleViewBatchAndRepeatedViews)
{
    SceneFixture f(0);
    ClmTrainer t(makeTrainee(f.gt, 300, 27), f.cameras, f.gt_images,
                 f.config);
    // Batch of one microbatch: no caching possible, trailing Adam only.
    BatchStats s1 = t.trainBatch({3});
    EXPECT_EQ(s1.cache_hits, 0u);
    EXPECT_GT(s1.adam_updated, 0u);
    // Batch repeating a view: the duplicate set overlaps 100%.
    BatchStats s2 = t.trainBatch({5, 5});
    EXPECT_GT(s2.cache_hits, 0u);
}

} // namespace
} // namespace clm
