/**
 * @file
 * Simulator tests: device presets, cost-model ratios, discrete-event
 * engine causality (stream FIFO + event dependencies), overlap behaviour
 * (CLM hides communication; naive cannot), the memory model's Figure 8
 * ordering, and the Nsight-style metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.hpp"
#include "offload/planner.hpp"
#include "sim/cost_model.hpp"
#include "sim/device_spec.hpp"
#include "sim/engine.hpp"
#include "sim/memory_model.hpp"
#include "sim/metrics.hpp"

namespace clm {
namespace {

BatchWorkload
makeWorkload(int views, uint32_t universe, double density, uint64_t seed)
{
    Rng rng(seed);
    BatchWorkload wl;
    for (int v = 0; v < views; ++v) {
        std::vector<uint32_t> s;
        for (uint32_t g = 0; g < universe; ++g)
            if (rng.uniform() < density)
                s.push_back(g);
        wl.sets.push_back(std::move(s));
        wl.camera_centers.push_back(
            rng.uniformInBox({0, 0, 0}, {10, 10, 10}));
    }
    wl.n_synthetic = universe;
    wl.n_target = universe;
    wl.pixels_per_view = 1920.0 * 1080.0;
    return wl;
}

Timeline
runSystem(SystemKind system, const BatchWorkload &wl,
          const DeviceSpec &dev, BatchPlanResult *out_plan = nullptr)
{
    PlannerConfig cfg;
    cfg.system = system;
    BatchPlanResult r = planBatch(cfg, wl);
    CostModel cost(dev);
    Timeline tl = simulate(r.plan, cost);
    if (out_plan)
        *out_plan = std::move(r);
    return tl;
}

TEST(DeviceSpec, PresetsMatchTestbeds)
{
    DeviceSpec a = DeviceSpec::rtx4090();
    DeviceSpec b = DeviceSpec::rtx2080ti();
    EXPECT_NEAR(a.gpu_memory_bytes, 24e9, 1e6);
    EXPECT_NEAR(b.gpu_memory_bytes, 11e9, 1e6);
    // ~7x FLOPs and 2x PCIe, as §6.1 states.
    EXPECT_NEAR(a.flops / b.flops, 7.0, 1.0);
    EXPECT_NEAR(a.pcie_bw / b.pcie_bw, 2.0, 0.1);
    EXPECT_GT(a.usableGpuBytes(), 0.0);
    EXPECT_LT(a.usableGpuBytes(), a.gpu_memory_bytes);
}

TEST(CostModel, TransfersScaleWithBytes)
{
    DeviceSpec dev = DeviceSpec::rtx4090();
    CostModel cost(dev);
    double t1 = cost.pcieSeconds(1e9);
    double t2 = cost.pcieSeconds(2e9);
    EXPECT_GT(t2, t1);
    // The marginal gigabyte costs 1/(effective bandwidth) seconds; the
    // latency term cancels in the difference.
    EXPECT_NEAR(t2 - t1,
                1e9 / (dev.pcie_bw * cost.config().pcie_efficiency),
                1e-6);
    EXPECT_DOUBLE_EQ(cost.pcieSeconds(0.0), 0.0);
}

TEST(CostModel, Pcie3IsTwiceAsSlow)
{
    CostModel fast(DeviceSpec::rtx4090());
    CostModel slow(DeviceSpec::rtx2080ti());
    double ratio = slow.pcieSeconds(4e9) / fast.pcieSeconds(4e9);
    EXPECT_NEAR(ratio, 2.0, 0.15);
}

TEST(CostModel, KernelsAreBandwidthBoundNotFlopBound)
{
    // The 2080 Ti should be ~1.5-1.7x slower on render kernels (the
    // paper's measured behaviour), not 7x (the FLOP ratio).
    CostModel fast(DeviceSpec::rtx4090());
    CostModel slow(DeviceSpec::rtx2080ti());
    double ratio =
        slow.kernelSeconds(1e6, 2e6) / fast.kernelSeconds(1e6, 2e6);
    EXPECT_GT(ratio, 1.3);
    EXPECT_LT(ratio, 2.5);
}

TEST(CostModel, CpuAdamScalesWithGaussians)
{
    CostModel cost(DeviceSpec::rtx4090());
    EXPECT_NEAR(cost.cpuAdamSeconds(2e6), 2.0 * cost.cpuAdamSeconds(1e6),
                1e-9);
    // ~46M Gaussians take on the order of a second (Figure 13 scale).
    double t = cost.cpuAdamSeconds(46e6);
    EXPECT_GT(t, 0.2);
    EXPECT_LT(t, 5.0);
}

TEST(CostModel, FixedSecondsOverride)
{
    CostModel cost(DeviceSpec::rtx4090());
    PlanOp op;
    op.kind = OpKind::Schedule;
    op.engine = EngineId::CpuThread;
    op.fixed_seconds = 0.0125;
    EXPECT_DOUBLE_EQ(cost.duration(op), 0.0125);
}

TEST(Engine, RespectsDependencies)
{
    BatchPlan plan;
    plan.batch_size = 1;
    PlanOp a;
    a.kind = OpKind::LoadAll;
    a.engine = EngineId::CommStream;
    a.h2d_bytes = 1e9;
    a.label = "load";
    int ia = plan.add(a);
    PlanOp b;
    b.kind = OpKind::Forward;
    b.engine = EngineId::ComputeStream;
    b.gaussians = 1e6;
    b.pixels = 1e6;
    b.deps.push_back(ia);
    b.label = "fwd";
    plan.add(b);

    CostModel cost(DeviceSpec::rtx4090());
    Timeline tl = simulate(plan, cost);
    EXPECT_GE(tl.records[1].start, tl.records[0].end);
    EXPECT_DOUBLE_EQ(tl.makespan, tl.records[1].end);
}

TEST(Engine, StreamFifoSerializesSameEngine)
{
    BatchPlan plan;
    plan.batch_size = 1;
    for (int i = 0; i < 3; ++i) {
        PlanOp op;
        op.kind = OpKind::Forward;
        op.engine = EngineId::ComputeStream;
        op.gaussians = 1e6;
        op.label = "k" + std::to_string(i);
        plan.add(op);
    }
    CostModel cost(DeviceSpec::rtx4090());
    Timeline tl = simulate(plan, cost);
    for (int i = 1; i < 3; ++i)
        EXPECT_GE(tl.records[i].start, tl.records[i - 1].end - 1e-12);
}

TEST(Engine, IndependentEnginesOverlap)
{
    BatchPlan plan;
    plan.batch_size = 1;
    PlanOp comm;
    comm.kind = OpKind::LoadAll;
    comm.engine = EngineId::CommStream;
    comm.h2d_bytes = 2e9;
    comm.label = "load";
    plan.add(comm);
    PlanOp kern;
    kern.kind = OpKind::Forward;
    kern.engine = EngineId::ComputeStream;
    kern.gaussians = 10e6;
    kern.pixels = 8e6;
    kern.label = "fwd";
    plan.add(kern);

    CostModel cost(DeviceSpec::rtx4090());
    Timeline tl = simulate(plan, cost);
    // No dependency: both start at zero and overlap fully.
    EXPECT_DOUBLE_EQ(tl.records[0].start, 0.0);
    EXPECT_DOUBLE_EQ(tl.records[1].start, 0.0);
    EXPECT_LT(tl.makespan,
              tl.records[0].duration() + tl.records[1].duration());
}

TEST(Engine, CausalityPropertyOnClmPlan)
{
    BatchWorkload wl = makeWorkload(8, 2000, 0.15, 31);
    BatchPlanResult r;
    Timeline tl = runSystem(SystemKind::Clm, wl,
                            DeviceSpec::rtx4090(), &r);
    // Every op starts after its deps end and engines never overlap
    // themselves.
    for (size_t i = 0; i < r.plan.ops.size(); ++i)
        for (int d : r.plan.ops[i].deps)
            EXPECT_GE(tl.records[i].start, tl.records[d].end - 1e-12);
    for (int e = 0; e < kNumEngines; ++e) {
        auto iv = tl.engineIntervals(r.plan, static_cast<EngineId>(e));
        for (size_t i = 1; i < iv.size(); ++i)
            EXPECT_GE(iv[i].first, iv[i - 1].second - 1e-12);
    }
}

TEST(Sim, ClmFasterThanNaiveOffloading)
{
    // Strong consecutive overlap (locality) + moderate sparsity: the
    // regime where CLM's pipelining pays (Figure 11).
    BatchWorkload wl = makeWorkload(8, 20000, 0.05, 32);
    wl.n_target = 30e6;    // paper-scale model
    for (auto dev : {DeviceSpec::rtx4090(), DeviceSpec::rtx2080ti()}) {
        double t_clm = runSystem(SystemKind::Clm, wl, dev).makespan;
        double t_naive =
            runSystem(SystemKind::NaiveOffload, wl, dev).makespan;
        EXPECT_LT(t_clm, t_naive) << dev.name;
        EXPECT_GT(t_naive / t_clm, 1.2) << dev.name;
    }
}

TEST(Sim, ClmOverheadVsEnhancedBaselineIsModest)
{
    BatchWorkload wl = makeWorkload(8, 20000, 0.05, 33);
    wl.n_target = 15e6;
    for (auto dev : {DeviceSpec::rtx4090(), DeviceSpec::rtx2080ti()}) {
        double t_clm = runSystem(SystemKind::Clm, wl, dev).makespan;
        double t_enh =
            runSystem(SystemKind::EnhancedBaseline, wl, dev).makespan;
        EXPECT_GT(t_clm, t_enh) << dev.name;    // offloading costs >0
        EXPECT_LT(t_clm / t_enh, 2.2) << dev.name;    // but modest
    }
}

TEST(Sim, SlowGpuHidesOffloadingBetter)
{
    // §6.3: the 2080 Ti's longer kernels overlap more of the
    // communication, so CLM's relative overhead is smaller there.
    BatchWorkload wl = makeWorkload(8, 20000, 0.05, 34);
    wl.n_target = 15e6;
    auto ratio = [&](const DeviceSpec &dev) {
        double t_clm = runSystem(SystemKind::Clm, wl, dev).makespan;
        double t_enh =
            runSystem(SystemKind::EnhancedBaseline, wl, dev).makespan;
        return t_clm / t_enh;
    };
    EXPECT_LT(ratio(DeviceSpec::rtx2080ti()),
              ratio(DeviceSpec::rtx4090()));
}

TEST(MemoryModel, Figure8SystemOrdering)
{
    MemoryModelConfig cfg;
    for (const SceneSpec &scene : SceneSpec::all()) {
        for (auto dev :
             {DeviceSpec::rtx4090(), DeviceSpec::rtx2080ti()}) {
            double base = maxTrainableGaussians(SystemKind::Baseline,
                                                scene, dev, cfg);
            double enh = maxTrainableGaussians(
                SystemKind::EnhancedBaseline, scene, dev, cfg);
            double naive = maxTrainableGaussians(
                SystemKind::NaiveOffload, scene, dev, cfg);
            double cl =
                maxTrainableGaussians(SystemKind::Clm, scene, dev, cfg);
            EXPECT_GT(enh, base) << scene.name << dev.name;
            EXPECT_GT(naive, enh) << scene.name << dev.name;
            EXPECT_GT(cl, naive) << scene.name << dev.name;
        }
    }
}

TEST(MemoryModel, ClmHeadroomLargestOnBigCity)
{
    // The paper's headline: ~6x the enhanced baseline on BigCity, and
    // ~2x over naive offloading.
    MemoryModelConfig cfg;
    DeviceSpec dev = DeviceSpec::rtx4090();
    SceneSpec big = SceneSpec::bigCity();
    double enh = maxTrainableGaussians(SystemKind::EnhancedBaseline, big,
                                       dev, cfg);
    double naive =
        maxTrainableGaussians(SystemKind::NaiveOffload, big, dev, cfg);
    double cl = maxTrainableGaussians(SystemKind::Clm, big, dev, cfg);
    EXPECT_GT(cl / enh, 3.5);
    EXPECT_GT(cl / naive, 1.7);
    // And the absolute scale: tens of millions on 24 GB.
    EXPECT_GT(cl, 60e6);
    EXPECT_LT(cl, 150e6);
}

TEST(MemoryModel, DemandIsMonotoneInN)
{
    MemoryModelConfig cfg;
    DeviceSpec dev = DeviceSpec::rtx4090();
    SceneSpec scene = SceneSpec::rubble();
    for (SystemKind s :
         {SystemKind::Baseline, SystemKind::EnhancedBaseline,
          SystemKind::NaiveOffload, SystemKind::Clm}) {
        double prev = 0;
        for (double n : {1e6, 5e6, 20e6, 80e6}) {
            double total = gpuMemoryDemand(s, scene, n, dev, cfg).total();
            EXPECT_GT(total, prev);
            prev = total;
        }
    }
}

TEST(MemoryModel, Table2ModelStateEstimate)
{
    // 59 params x 4 floats x 4 bytes: 100M Gaussians ~ 94.4 GB of model
    // state (the bulk of Table 2's 110 GB demand).
    EXPECT_NEAR(modelStateDemandBytes(100e6), 94.4e9, 0.1e9);
}

TEST(MemoryModel, BreakdownComponentsPositive)
{
    MemoryBreakdown b =
        gpuMemoryDemand(SystemKind::Clm, SceneSpec::bigCity(), 50e6,
                        DeviceSpec::rtx4090());
    EXPECT_GT(b.model_state_bytes, 0);
    EXPECT_GT(b.activation_bytes, 0);
    EXPECT_GT(b.reserve_bytes, 0);
    EXPECT_NEAR(b.total(), b.model_state_bytes + b.activation_bytes
                               + b.reserve_bytes,
                1.0);
    // CLM's model-state share is small: critical attrs + buffers only.
    MemoryBreakdown base =
        gpuMemoryDemand(SystemKind::Baseline, SceneSpec::bigCity(), 50e6,
                        DeviceSpec::rtx4090());
    EXPECT_LT(b.model_state_bytes, 0.25 * base.model_state_bytes);
}

TEST(Metrics, UtilizationInRangeAndClmBeatsNaive)
{
    BatchWorkload wl = makeWorkload(8, 20000, 0.05, 35);
    wl.n_target = 30e6;
    DeviceSpec dev = DeviceSpec::rtx4090();

    BatchPlanResult rc, rn;
    Timeline tc = runSystem(SystemKind::Clm, wl, dev, &rc);
    Timeline tn = runSystem(SystemKind::NaiveOffload, wl, dev, &rn);
    HardwareUtilization uc = computeUtilization(rc.plan, tc, dev);
    HardwareUtilization un = computeUtilization(rn.plan, tn, dev);

    for (double v : {uc.cpu_util, uc.sm_active, uc.pcie_rx_util,
                     uc.pcie_tx_util, uc.dram_read_util,
                     uc.dram_write_util}) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 100.0);
    }
    // Table 7's shape: CLM keeps both the CPU and the GPU busier.
    EXPECT_GT(uc.cpu_util, un.cpu_util);
    EXPECT_GT(uc.sm_active, un.sm_active);
}

TEST(Metrics, IdleCdfClmLowerIdleThanNaive)
{
    BatchWorkload wl = makeWorkload(8, 20000, 0.05, 36);
    wl.n_target = 30e6;
    DeviceSpec dev = DeviceSpec::rtx4090();
    BatchPlanResult rc, rn;
    Timeline tc = runSystem(SystemKind::Clm, wl, dev, &rc);
    Timeline tn = runSystem(SystemKind::NaiveOffload, wl, dev, &rn);
    auto idle_c = gpuIdleSamples(rc.plan, tc, 1000);
    auto idle_n = gpuIdleSamples(rn.plan, tn, 1000);
    double mean_c = 0, mean_n = 0;
    for (double v : idle_c)
        mean_c += v;
    for (double v : idle_n)
        mean_n += v;
    EXPECT_LT(mean_c / idle_c.size(), mean_n / idle_n.size());
}

TEST(Metrics, BreakdownSumsAreConsistent)
{
    BatchWorkload wl = makeWorkload(6, 10000, 0.1, 37);
    wl.n_target = 20e6;
    DeviceSpec dev = DeviceSpec::rtx4090();
    BatchPlanResult r;
    Timeline tl = runSystem(SystemKind::Clm, wl, dev, &r);
    RuntimeBreakdown b = computeBreakdown(r.plan, tl);
    EXPECT_GT(b.total, 0);
    EXPECT_GT(b.compute, 0);
    EXPECT_GT(b.communication, 0);
    EXPECT_GE(b.overlapped_adam, 0);
    EXPECT_GE(b.trailing_adam, 0);
    // Compute alone can't exceed the makespan.
    EXPECT_LE(b.compute, b.total + 1e-9);
    // Trailing Adam is bounded by total CPU Adam time.
    EXPECT_LE(b.trailing_adam, b.overlapped_adam + b.trailing_adam + 1e-9);
}

TEST(Metrics, OverlapAdamReducesTrailingTime)
{
    BatchWorkload wl = makeWorkload(8, 20000, 0.08, 38);
    wl.n_target = 30e6;
    DeviceSpec dev = DeviceSpec::rtx4090();
    CostModel cost(dev);

    PlannerConfig cfg;
    cfg.system = SystemKind::Clm;
    cfg.overlap_adam = true;
    BatchPlanResult with = planBatch(cfg, wl);
    cfg.overlap_adam = false;
    BatchPlanResult without = planBatch(cfg, wl);

    double trail_with =
        adamTrailingSeconds(with.plan, simulate(with.plan, cost));
    double trail_without =
        adamTrailingSeconds(without.plan, simulate(without.plan, cost));
    EXPECT_LT(trail_with, trail_without);
}


TEST(Metrics, MeasuredStageTimingsBreakdown)
{
    // Hand-built stage record: the measured-path overloads must apply
    // the same decomposition rules as the simulated path.
    StageTimings t;
    t.add(TrainStage::Schedule, 0.5);
    t.add(TrainStage::Gather, 1.0);
    t.add(TrainStage::CacheCopy, 0.25);
    t.add(TrainStage::Scatter, 0.5);
    t.add(TrainStage::Carry, 0.25);
    t.add(TrainStage::Compute, 4.0);
    t.add(TrainStage::Finalize, 1.5);
    t.trailing_adam_seconds = 0.5;
    t.batch_seconds = 6.0;
    t.noteMicrobatch(0.5, 2.0);
    t.noteMicrobatch(0.0, 2.0);

    RuntimeBreakdown b = computeBreakdown(t);
    EXPECT_DOUBLE_EQ(b.total, 6.0);
    EXPECT_DOUBLE_EQ(b.compute, 4.0);
    EXPECT_DOUBLE_EQ(b.communication, 2.0);
    EXPECT_DOUBLE_EQ(b.scheduling, 0.5);
    EXPECT_DOUBLE_EQ(b.trailing_adam, 0.5);
    EXPECT_DOUBLE_EQ(b.overlapped_adam, 1.0);

    // Idle timeline: 0.5 sched idle + (0.5 idle, 2 busy) + (0, 2 busy)
    // + 0.5 trailing idle -> 4 busy of 5.5 total.
    std::vector<double> idle = gpuIdleSamples(t, 1100);
    double mean = 0;
    for (double v : idle)
        mean += v;
    mean /= idle.size();
    EXPECT_NEAR(mean, 100.0 * 1.5 / 5.5, 1.0);

    // merge() folds records additively.
    StageTimings u;
    u.merge(t);
    u.merge(t);
    EXPECT_DOUBLE_EQ(u[TrainStage::Compute], 8.0);
    EXPECT_EQ(u.microbatches.size(), 4u);
    EXPECT_DOUBLE_EQ(u.batch_seconds, 12.0);

    // Inline finalization (no dedicated Adam thread) is never
    // overlapped: all Finalize time counts as non-overlapped and the
    // idle timeline stalls for its full duration.
    t.finalize_inline = true;
    RuntimeBreakdown bi = computeBreakdown(t);
    EXPECT_DOUBLE_EQ(bi.overlapped_adam, 0.0);
    EXPECT_DOUBLE_EQ(bi.trailing_adam, 1.5);
    std::vector<double> idle_inline = gpuIdleSamples(t, 1300);
    double mean_inline = 0;
    for (double v : idle_inline)
        mean_inline += v;
    mean_inline /= idle_inline.size();
    // 0.5 sched + 0.5 wait + 1.5 inline adam idle of 6.5 total.
    EXPECT_NEAR(mean_inline, 100.0 * 2.5 / 6.5, 1.0);
}

TEST(Sim, ThroughputMonotoneInDeviceParameters)
{
    // Sanity for the what-if analyses: more PCIe bandwidth, more DRAM
    // bandwidth or more host cores can never slow a system down.
    BatchWorkload wl = makeWorkload(6, 10000, 0.05, 40);
    wl.n_target = 20e6;
    for (SystemKind sys : {SystemKind::NaiveOffload, SystemKind::Clm}) {
        PlannerConfig cfg;
        cfg.system = sys;
        BatchPlanResult r = planBatch(cfg, wl);
        auto makespan = [&](auto mutate) {
            DeviceSpec dev = DeviceSpec::rtx4090();
            mutate(dev);
            CostModel cost(dev);
            return simulate(r.plan, cost).makespan;
        };
        double base = makespan([](DeviceSpec &) {});
        EXPECT_LE(makespan([](DeviceSpec &d) { d.pcie_bw *= 2; }),
                  base + 1e-12);
        EXPECT_LE(makespan([](DeviceSpec &d) { d.cpu_cores *= 2; }),
                  base + 1e-12);
        EXPECT_GE(makespan([](DeviceSpec &d) { d.pcie_bw *= 0.25; }),
                  base - 1e-12);
    }
}

TEST(Sim, EveryOpKindHasFiniteNonNegativeCost)
{
    CostModel cost(DeviceSpec::rtx2080ti());
    for (OpKind kind :
         {OpKind::Cull, OpKind::Schedule, OpKind::LoadParams,
          OpKind::CopyCached, OpKind::Forward, OpKind::Backward,
          OpKind::StoreGrads, OpKind::CarryGrads, OpKind::CpuAdam,
          OpKind::GpuAdam, OpKind::LoadAll, OpKind::StoreAll,
          OpKind::WriteCritical}) {
        PlanOp op;
        op.kind = kind;
        op.engine = EngineId::ComputeStream;
        op.gaussians = 1e6;
        op.pixels = 1e6;
        op.h2d_bytes = 1e8;
        op.d2h_bytes = 1e8;
        op.dram_bytes = 1e8;
        double d = cost.duration(op);
        EXPECT_TRUE(std::isfinite(d)) << opKindName(kind);
        EXPECT_GE(d, 0.0) << opKindName(kind);
    }
}

TEST(Sim, ScatteredAdamCostsMoreThanBulk)
{
    CostModel cost(DeviceSpec::rtx4090());
    PlanOp bulk, scattered;
    bulk.kind = scattered.kind = OpKind::CpuAdam;
    bulk.engine = scattered.engine = EngineId::CpuThread;
    bulk.gaussians = scattered.gaussians = 1e6;
    scattered.scattered_adam = true;
    EXPECT_GT(cost.duration(scattered), cost.duration(bulk));
}

} // namespace
} // namespace clm
