/**
 * @file
 * Fault-injection and admission-control tests: the FaultInjector's
 * deterministic firing (pure function of seed + occurrence index), and
 * the serving stack under injected faults — a stalled worker, delayed
 * snapshot publication, and forced queue saturation. The overload
 * contract under test: every submitted request resolves to a
 * RenderResponse with an explicit status (no hang, no broken promise),
 * admitted frames stay bitwise identical to direct renders, and with a
 * fixed FaultPlan seed plus a fixed arrival schedule the set of shed
 * request ids is reproducible run-to-run (same spirit as the
 * deterministic latency reservoir). Runs under ASan/UBSan via
 * scripts/verify.sh and under TSan in the thread-sanitizer CI job.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "render/culling.hpp"
#include "render/rasterizer.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"
#include "serve/render_service.hpp"
#include "serve/retry.hpp"
#include "serve/snapshot.hpp"
#include "util/fault.hpp"

namespace clm {
namespace {

struct ServeFixture
{
    GaussianModel model;
    std::vector<Camera> cameras;
    SnapshotSlot slot;

    explicit ServeFixture(size_t n_gaussians = 500, int width = 64,
                          int height = 40)
    {
        SceneSpec spec = SceneSpec::bicycle();
        model = generateSceneGaussians(spec, n_gaussians);
        cameras = generateCameraPath(spec, 6, width, height);
        slot.publish(model, 0);
    }
};

TEST(FaultInjector, ProbabilisticFiringIsDeterministic)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.at(FaultPoint::WorkerStall).probability = 0.3;
    plan.at(FaultPoint::AdmitSaturate).probability = 0.3;

    // Two injectors over the same plan must fire on exactly the same
    // occurrence indices (the decision is splitmix64(seed, point,
    // index), not a shared RNG draw).
    FaultInjector a(plan), b(plan);
    std::vector<bool> seq_a, seq_b;
    for (int i = 0; i < 400; ++i) {
        seq_a.push_back(a.fires(FaultPoint::WorkerStall));
        seq_b.push_back(b.fires(FaultPoint::WorkerStall));
    }
    EXPECT_EQ(seq_a, seq_b);
    const uint64_t fired = a.fireCount(FaultPoint::WorkerStall);
    EXPECT_GT(fired, 400 * 0.15);    // generous band around p=0.3
    EXPECT_LT(fired, 400 * 0.45);
    EXPECT_EQ(a.occurrences(FaultPoint::WorkerStall), 400u);

    // A different seed fires on a different index set.
    FaultPlan other = plan;
    other.seed = 43;
    FaultInjector c(other);
    std::vector<bool> seq_c;
    for (int i = 0; i < 400; ++i)
        seq_c.push_back(c.fires(FaultPoint::WorkerStall));
    EXPECT_NE(seq_a, seq_c);

    // Points are decorrelated: the same seed draws independently per
    // FaultPoint (the point id is folded into the hash).
    FaultInjector d(plan);
    std::vector<bool> seq_d;
    for (int i = 0; i < 400; ++i)
        seq_d.push_back(d.fires(FaultPoint::AdmitSaturate));
    EXPECT_NE(seq_a, seq_d);
}

TEST(FaultInjector, EveryNAndMaxFiresSemantics)
{
    FaultPlan plan;
    plan.at(FaultPoint::PublishDelay).every_n = 3;
    plan.at(FaultPoint::PublishDelay).max_fires = 2;
    FaultInjector inj(plan);
    std::vector<bool> fired;
    for (int i = 0; i < 9; ++i)
        fired.push_back(inj.fires(FaultPoint::PublishDelay));
    // Occurrences 0, 3 fire; 6 is capped by max_fires = 2.
    EXPECT_EQ(fired, (std::vector<bool>{true, false, false, true, false,
                                        false, false, false, false}));
    EXPECT_EQ(inj.fireCount(FaultPoint::PublishDelay), 2u);

    // Disabled: nothing fires, nothing counts.
    inj.disable();
    EXPECT_FALSE(inj.fires(FaultPoint::PublishDelay));
    EXPECT_EQ(inj.occurrences(FaultPoint::PublishDelay), 9u);
}

/** A held worker + Reject shedding: the deterministic saturation
 *  scenario. Runs the identical schedule twice and asserts the SAME
 *  set of shed request ids both times (satellite: shed determinism). */
TEST(FaultInjection, ShedSetIsReproducibleRunToRun)
{
    auto run_once = [](std::set<uint64_t> &shed_ids,
                       std::set<uint64_t> &ok_ids) {
        ServeFixture fix;
        FaultPlan plan;
        plan.seed = 7;
        // Hold every worker wakeup until released: the queue state the
        // submissions build is exactly schedule-order, independent of
        // worker timing.
        plan.at(FaultPoint::WorkerStall).every_n = 1;
        plan.at(FaultPoint::WorkerStall).hold = true;
        FaultInjector faults(plan);

        ServeConfig cfg;
        cfg.workers = 1;
        cfg.max_batch = 4;
        cfg.queue_capacity = 4;
        cfg.render.sh_degree = 1;
        cfg.admission.shed = ShedPolicy::Reject;
        cfg.faults = &faults;
        RenderService service(fix.slot, cfg);

        // Fixed arrival schedule: 12 submits from one thread while the
        // worker is pinned. Capacity 4 admits the first 4; 5..12 shed.
        std::vector<std::future<RenderResponse>> futs;
        for (int r = 0; r < 12; ++r)
            futs.push_back(service.submit(fix.cameras[r % 6]));
        faults.release(FaultPoint::WorkerStall);
        for (auto &f : futs) {
            RenderResponse resp = f.get();    // must never throw
            if (resp.ok())
                ok_ids.insert(resp.request_id);
            else {
                EXPECT_EQ(resp.status, ServeStatus::ShedQueueFull);
                shed_ids.insert(resp.request_id);
            }
        }
        service.stop();
        ServeStats stats = service.stats();
        EXPECT_EQ(stats.submitted, 12u);
        EXPECT_EQ(stats.requests, ok_ids.size());
        EXPECT_EQ(stats.shed_queue_full, shed_ids.size());
    };

    std::set<uint64_t> shed_a, ok_a, shed_b, ok_b;
    run_once(shed_a, ok_a);
    run_once(shed_b, ok_b);
    EXPECT_EQ(shed_a, shed_b);
    EXPECT_EQ(ok_a, ok_b);
    EXPECT_EQ(ok_a, (std::set<uint64_t>{1, 2, 3, 4}));
    EXPECT_EQ(shed_a.size(), 8u);
    EXPECT_EQ(*shed_a.begin(), 5u);
}

/** Seeded AdmitSaturate shedding is also reproducible: the admission
 *  path itself draws deterministically per submission index. */
TEST(FaultInjection, SaturationFaultShedsTheSameRequestsEveryRun)
{
    auto run_once = [](std::set<uint64_t> &shed_ids) {
        ServeFixture fix;
        FaultPlan plan;
        plan.seed = 0xbeef;
        plan.at(FaultPoint::AdmitSaturate).probability = 0.4;
        FaultInjector faults(plan);

        ServeConfig cfg;
        cfg.workers = 1;
        cfg.max_batch = 2;
        cfg.render.sh_degree = 1;
        cfg.faults = &faults;
        RenderService service(fix.slot, cfg);
        std::vector<std::future<RenderResponse>> futs;
        for (int r = 0; r < 24; ++r)
            futs.push_back(service.submit(fix.cameras[r % 6]));
        for (auto &f : futs) {
            RenderResponse resp = f.get();
            if (!resp.ok()) {
                EXPECT_EQ(resp.status, ServeStatus::ShedQueueFull);
                shed_ids.insert(resp.request_id);
            }
        }
        service.stop();
    };
    std::set<uint64_t> a, b;
    run_once(a);
    run_once(b);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.size(), 2u);     // p=0.4 over 24 single-thread submits
    EXPECT_LT(a.size(), 20u);
}

/** A stalled worker delays service but loses nothing: every request
 *  completes Ok, frames bitwise identical to direct renders. */
TEST(FaultInjection, StalledWorkerDelaysButCompletesEverything)
{
    ServeFixture fix;
    FaultPlan plan;
    plan.at(FaultPoint::WorkerStall).every_n = 2;
    plan.at(FaultPoint::WorkerStall).stall_ms = 5;
    FaultInjector faults(plan);

    ServeConfig cfg;
    cfg.workers = 2;
    cfg.max_batch = 4;
    cfg.render.sh_degree = 1;
    cfg.faults = &faults;
    RenderService service(fix.slot, cfg);
    std::vector<std::future<RenderResponse>> futs;
    for (int r = 0; r < 16; ++r)
        futs.push_back(service.submit(fix.cameras[r % 6]));
    for (int r = 0; r < 16; ++r) {
        RenderResponse resp = futs[r].get();
        ASSERT_TRUE(resp.ok());
        auto subset = frustumCull(fix.model, fix.cameras[r % 6]);
        Image direct = renderForward(fix.model, fix.cameras[r % 6],
                                     subset, cfg.render)
                           .image;
        EXPECT_EQ(resp.image.data(), direct.data()) << "request " << r;
    }
    service.stop();
    EXPECT_GT(faults.fireCount(FaultPoint::WorkerStall), 0u);
    ServeStats stats = service.stats();
    EXPECT_EQ(stats.requests, 16u);
    EXPECT_EQ(stats.shed_queue_full + stats.shed_deadline
                  + stats.rejected_shutdown + stats.throttled_client,
              0u);
}

/** Delayed snapshot publication: publishes stall inside the slot while
 *  clients hammer the service — readers keep serving the previous
 *  version (never a torn or missing snapshot), everything resolves, no
 *  deadlock. */
TEST(FaultInjection, DelayedPublishNeverBlocksServing)
{
    ServeFixture fix(400, 48, 32);
    FaultPlan plan;
    plan.at(FaultPoint::PublishDelay).every_n = 1;
    plan.at(FaultPoint::PublishDelay).stall_ms = 3;
    FaultInjector faults(plan);
    fix.slot.setFaultInjector(&faults);

    std::map<uint64_t, uint64_t> published_hash;
    published_hash[fix.slot.version()] =
        fix.slot.acquire()->param_hash;

    ServeConfig cfg;
    cfg.workers = 2;
    cfg.max_batch = 4;
    cfg.render.sh_degree = 1;
    RenderService service(fix.slot, cfg);

    std::atomic<bool> stop_publishing{false};
    GaussianModel work = fix.model;
    std::thread publisher([&] {
        for (int step = 1; step <= 40 && !stop_publishing.load();
             ++step) {
            work.position(0).x += 0.01f;
            fix.slot.publish(work, step);    // stalls 3 ms inside
            published_hash[fix.slot.version()] =
                fix.slot.acquire()->param_hash;
        }
    });

    std::vector<std::future<RenderResponse>> futs;
    for (int r = 0; r < 24; ++r)
        futs.push_back(service.submit(fix.cameras[r % 6]));
    for (auto &f : futs) {
        RenderResponse resp = f.get();
        EXPECT_TRUE(resp.ok());
        EXPECT_GE(resp.snapshot_version, 1u);
    }
    stop_publishing = true;
    publisher.join();
    service.stop();
    fix.slot.setFaultInjector(nullptr);
    EXPECT_GT(faults.fireCount(FaultPoint::PublishDelay), 0u);
    // Every served version was a fully published one.
    ServeStats stats = service.stats();
    for (uint64_t v = stats.min_snapshot_version;
         v <= stats.max_snapshot_version; ++v)
        EXPECT_TRUE(published_hash.count(v)) << "version " << v;
}

/** Retry policy: deterministic jitter, cap, and the retryable table;
 *  submitWithRetry degrades seeded shedding into eventual success. */
TEST(RetryPolicy, DeterministicBackoffAndRetryLoop)
{
    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.base_s = 0.001;
    policy.cap_s = 0.004;
    policy.seed = 99;

    // Pure function of (seed, key, attempt); capped; in [cap/2, cap).
    for (uint64_t key : {uint64_t(1), uint64_t(77)}) {
        double prev = 0;
        for (int attempt = 1; attempt <= 6; ++attempt) {
            const double b = policy.backoffSeconds(key, attempt);
            EXPECT_EQ(b, policy.backoffSeconds(key, attempt));
            EXPECT_GE(b, 0.0005 * (1 << std::min(attempt - 1, 2)));
            EXPECT_LT(b, 0.004);
            prev = b;
        }
        (void)prev;
    }
    EXPECT_NE(policy.backoffSeconds(1, 1), policy.backoffSeconds(2, 1));

    EXPECT_TRUE(policy.retryable(ServeStatus::ShedQueueFull));
    EXPECT_TRUE(policy.retryable(ServeStatus::ShedDeadline));
    EXPECT_TRUE(policy.retryable(ServeStatus::ThrottledClient));
    EXPECT_FALSE(policy.retryable(ServeStatus::Ok));
    EXPECT_FALSE(policy.retryable(ServeStatus::RejectedShutdown));

    // Against a service whose admission path sheds every other submit:
    // each logical request succeeds within a retry or two.
    ServeFixture fix;
    FaultPlan plan;
    plan.at(FaultPoint::AdmitSaturate).every_n = 2;
    FaultInjector faults(plan);
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.render.sh_degree = 1;
    cfg.faults = &faults;
    RenderService service(fix.slot, cfg);

    RetryStats rstats;
    for (int r = 0; r < 6; ++r) {
        RenderResponse resp = submitWithRetry(
            service, fix.cameras[r % 6], /*client_id=*/1, policy,
            /*request_key=*/static_cast<uint64_t>(r), &rstats);
        EXPECT_TRUE(resp.ok()) << "request " << r;
    }
    service.stop();
    EXPECT_GT(rstats.retries, 0u);        // shedding did happen
    EXPECT_EQ(rstats.gave_up, 0u);        // and retries absorbed it
    EXPECT_GE(rstats.attempts, 6u + rstats.retries);

    // After stop: terminal, exactly one attempt, no retry loop (the
    // saturation fault is disabled so the closed queue is what decides).
    faults.disable();
    RetryStats after;
    RenderResponse resp = submitWithRetry(service, fix.cameras[0], 1,
                                          policy, 123, &after);
    EXPECT_EQ(resp.status, ServeStatus::RejectedShutdown);
    EXPECT_EQ(after.attempts, 1u);
    EXPECT_EQ(after.gave_up, 1u);
}

} // namespace
} // namespace clm
