/**
 * @file
 * Unit and property tests for the math substrate: vectors, matrices,
 * quaternions, spherical harmonics (values and analytic gradients),
 * frustum extraction and the 3-sigma ellipsoid intersection test.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "math/ellipsoid.hpp"
#include "math/frustum.hpp"
#include "math/mat.hpp"
#include "math/quat.hpp"
#include "math/rng.hpp"
#include "math/sh.hpp"
#include "math/stats.hpp"
#include "render/camera.hpp"

namespace clm {
namespace {

TEST(Vec3, BasicAlgebra)
{
    Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_FLOAT_EQ((a + b).x, 5.0f);
    EXPECT_FLOAT_EQ(a.dot(b), 32.0f);
    Vec3 c = a.cross(b);
    EXPECT_FLOAT_EQ(c.x, -3.0f);
    EXPECT_FLOAT_EQ(c.y, 6.0f);
    EXPECT_FLOAT_EQ(c.z, -3.0f);
    EXPECT_NEAR(Vec3(3, 4, 0).norm(), 5.0f, 1e-6f);
    EXPECT_NEAR(Vec3(3, 4, 0).normalized().norm(), 1.0f, 1e-6f);
}

TEST(Vec3, CrossIsOrthogonal)
{
    Rng rng(1);
    for (int it = 0; it < 50; ++it) {
        Vec3 a = rng.normal3({0, 0, 0}, 1.0f);
        Vec3 b = rng.normal3({0, 0, 0}, 1.0f);
        Vec3 c = a.cross(b);
        EXPECT_NEAR(c.dot(a), 0.0f, 1e-3f);
        EXPECT_NEAR(c.dot(b), 0.0f, 1e-3f);
    }
}

TEST(Mat3, MulIdentity)
{
    Mat3 i = Mat3::identity();
    Vec3 v{1, -2, 3};
    Vec3 r = i.mul(v);
    EXPECT_FLOAT_EQ(r.x, v.x);
    EXPECT_FLOAT_EQ(r.y, v.y);
    EXPECT_FLOAT_EQ(r.z, v.z);
}

TEST(Mat3, TransposeOfProduct)
{
    Rng rng(2);
    Mat3 a, b;
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c) {
            a.m[r][c] = rng.normal();
            b.m[r][c] = rng.normal();
        }
    Mat3 lhs = a.mul(b).transposed();
    Mat3 rhs = b.transposed().mul(a.transposed());
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c)
            EXPECT_NEAR(lhs.m[r][c], rhs.m[r][c], 1e-5f);
}

TEST(Mat2, InverseRoundTrip)
{
    Mat2 m;
    m.m = {{{3.0f, 1.0f}, {1.0f, 2.0f}}};
    Mat2 inv = m.inverse();
    // m * inv == I
    EXPECT_NEAR(m.m[0][0] * inv.m[0][0] + m.m[0][1] * inv.m[1][0], 1.0f,
                1e-6f);
    EXPECT_NEAR(m.m[0][0] * inv.m[0][1] + m.m[0][1] * inv.m[1][1], 0.0f,
                1e-6f);
}

TEST(Quat, RotationMatrixIsOrthonormal)
{
    Rng rng(3);
    for (int it = 0; it < 50; ++it) {
        Quat q{rng.normal(), rng.normal(), rng.normal(), rng.normal()};
        if (q.norm() < 1e-3f)
            continue;
        Mat3 r = q.toRotationMatrix();
        Mat3 rrt = r.mul(r.transposed());
        for (int a = 0; a < 3; ++a)
            for (int b = 0; b < 3; ++b)
                EXPECT_NEAR(rrt.m[a][b], a == b ? 1.0f : 0.0f, 1e-5f);
        EXPECT_NEAR(r.det(), 1.0f, 1e-5f);
    }
}

TEST(Quat, AxisAngleMatchesManualRotation)
{
    // 90 degrees about +z maps +x to +y.
    Quat q = Quat::fromAxisAngle({0, 0, 1}, 3.14159265f / 2.0f);
    Vec3 v = q.toRotationMatrix().mul(Vec3{1, 0, 0});
    EXPECT_NEAR(v.x, 0.0f, 1e-6f);
    EXPECT_NEAR(v.y, 1.0f, 1e-6f);
    EXPECT_NEAR(v.z, 0.0f, 1e-6f);
}

TEST(Sh, Degree0IsConstant)
{
    auto b1 = shBasis(Vec3{0, 0, 1});
    auto b2 = shBasis(Vec3{1, 0, 0});
    EXPECT_FLOAT_EQ(b1[0], b2[0]);
    EXPECT_NEAR(b1[0], 0.2820948f, 1e-6f);
}

TEST(Sh, EvaluateDcOnly)
{
    float coeffs[kShCoeffs] = {};
    // DC coefficient chosen so color = 0.75 exactly.
    coeffs[0] = coeffs[1] = coeffs[2] = 0.25f / 0.28209479177387814f;
    Vec3 c = shEvaluate(coeffs, Vec3{0, 0, 1}, 0);
    EXPECT_NEAR(c.x, 0.75f, 1e-5f);
    EXPECT_NEAR(c.y, 0.75f, 1e-5f);
    EXPECT_NEAR(c.z, 0.75f, 1e-5f);
}

TEST(Sh, ClampsNegativeToZero)
{
    float coeffs[kShCoeffs] = {};
    coeffs[0] = -10.0f;    // drives red far negative
    Vec3 c = shEvaluate(coeffs, Vec3{0, 0, 1}, 0);
    EXPECT_FLOAT_EQ(c.x, 0.0f);
    EXPECT_NEAR(c.y, 0.5f, 1e-6f);
}

/** Parameterized over SH degree: analytic basis gradient vs finite diff. */
class ShGradTest : public ::testing::TestWithParam<int>
{
};

TEST_P(ShGradTest, BasisGradientMatchesFiniteDifference)
{
    int degree = GetParam();
    int nb = shBasisCount(degree);
    Rng rng(100 + degree);
    const float eps = 1e-3f;
    for (int it = 0; it < 20; ++it) {
        Vec3 d = rng.normal3({0, 0, 0}, 1.0f).normalized();
        auto grad = shBasisGrad(d);
        for (int axis = 0; axis < 3; ++axis) {
            Vec3 dp = d, dm = d;
            (axis == 0 ? dp.x : axis == 1 ? dp.y : dp.z) += eps;
            (axis == 0 ? dm.x : axis == 1 ? dm.y : dm.z) -= eps;
            auto bp = shBasis(dp);
            auto bm = shBasis(dm);
            for (int k = 0; k < nb; ++k) {
                float fd = (bp[k] - bm[k]) / (2 * eps);
                float an = axis == 0   ? grad[k].x
                           : axis == 1 ? grad[k].y
                                       : grad[k].z;
                EXPECT_NEAR(an, fd, 5e-3f)
                    << "basis " << k << " axis " << axis;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, ShGradTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(Sh, BackwardAccumulatesBasisTimesGrad)
{
    Vec3 dir = Vec3{0.3f, -0.5f, 0.8f}.normalized();
    float d_coeffs[kShCoeffs] = {};
    shBackward(dir, 3, {1.0f, 2.0f, 3.0f}, {true, true, false}, d_coeffs);
    auto basis = shBasis(dir);
    for (int k = 0; k < kShBasis; ++k) {
        EXPECT_NEAR(d_coeffs[k * 3 + 0], basis[k] * 1.0f, 1e-6f);
        EXPECT_NEAR(d_coeffs[k * 3 + 1], basis[k] * 2.0f, 1e-6f);
        EXPECT_FLOAT_EQ(d_coeffs[k * 3 + 2], 0.0f);    // masked channel
    }
}

TEST(Frustum, ContainsPointsInFront)
{
    Camera cam = Camera::lookAt({0, 0, 0}, {0, 0, 10}, {0, 1, 0}, 64, 64,
                                1.0f, 0.1f, 100.0f);
    const Frustum &f = cam.frustum();
    EXPECT_TRUE(f.contains({0, 0, 5}));
    EXPECT_TRUE(f.contains({0, 0, 50}));
    EXPECT_FALSE(f.contains({0, 0, -5}));     // behind
    EXPECT_FALSE(f.contains({0, 0, 150}));    // beyond far plane
    EXPECT_FALSE(f.contains({100, 0, 5}));    // far off axis
}

TEST(Frustum, SphereTestIsConservative)
{
    Camera cam = Camera::lookAt({0, 0, 0}, {0, 0, 10}, {0, 1, 0}, 64, 64,
                                1.0f, 0.1f, 100.0f);
    const Frustum &f = cam.frustum();
    // Center outside, but the sphere pokes in.
    EXPECT_TRUE(f.intersectsSphere({0, 0, -0.5f}, 2.0f));
    // Far outside in every direction.
    EXPECT_FALSE(f.intersectsSphere({0, 0, -50}, 2.0f));
}

TEST(Frustum, AabbTest)
{
    Camera cam = Camera::lookAt({0, 0, 0}, {0, 0, 10}, {0, 1, 0}, 64, 64,
                                1.0f, 0.1f, 100.0f);
    Aabb inside;
    inside.extend({-1, -1, 4});
    inside.extend({1, 1, 6});
    EXPECT_TRUE(cam.frustum().intersectsAabb(inside));
    Aabb behind;
    behind.extend({-1, -1, -6});
    behind.extend({1, 1, -4});
    EXPECT_FALSE(cam.frustum().intersectsAabb(behind));
}

TEST(Ellipsoid, SupportDistanceSphere)
{
    Ellipsoid e{{0, 0, 0}, Quat{1, 0, 0, 0}, {2, 2, 2}};
    // A sphere's support distance is its radius in every direction.
    EXPECT_NEAR(e.supportDistance({1, 0, 0}), 2.0f, 1e-5f);
    EXPECT_NEAR(e.supportDistance(Vec3{1, 1, 1}.normalized()), 2.0f,
                1e-5f);
}

TEST(Ellipsoid, SupportDistanceAnisotropic)
{
    Ellipsoid e{{0, 0, 0}, Quat{1, 0, 0, 0}, {4, 1, 1}};
    EXPECT_NEAR(e.supportDistance({1, 0, 0}), 4.0f, 1e-5f);
    EXPECT_NEAR(e.supportDistance({0, 1, 0}), 1.0f, 1e-5f);
    // Rotate 90 degrees about z: the long axis now points along y.
    Ellipsoid r{{0, 0, 0},
                Quat::fromAxisAngle({0, 0, 1}, 3.14159265f / 2),
                {4, 1, 1}};
    EXPECT_NEAR(r.supportDistance({0, 1, 0}), 4.0f, 1e-4f);
    EXPECT_NEAR(r.supportDistance({1, 0, 0}), 1.0f, 1e-4f);
}

TEST(Ellipsoid, FrustumIntersectionNearBoundary)
{
    Camera cam = Camera::lookAt({0, 0, 0}, {0, 0, 10}, {0, 1, 0}, 64, 64,
                                1.0f, 0.1f, 100.0f);
    // Center behind the near plane, but a fat ellipsoid reaches through.
    Ellipsoid fat{{0, 0, -1.0f}, Quat{1, 0, 0, 0}, {3, 3, 3}};
    EXPECT_TRUE(fat.intersectsFrustum(cam.frustum()));
    Ellipsoid thin{{0, 0, -1.0f}, Quat{1, 0, 0, 0}, {0.1f, 0.1f, 0.1f}};
    EXPECT_FALSE(thin.intersectsFrustum(cam.frustum()));
}

TEST(Ellipsoid, ThreeSigmaScaling)
{
    Vec3 scale{0.5f, 1.0f, 2.0f};
    Ellipsoid e =
        Ellipsoid::fromGaussian({1, 2, 3}, scale, Quat{1, 0, 0, 0});
    EXPECT_FLOAT_EQ(e.radii.x, 1.5f);
    EXPECT_FLOAT_EQ(e.radii.z, 6.0f);
    EXPECT_FLOAT_EQ(e.boundingRadius(), 6.0f);
}

TEST(RunningStats, Accumulates)
{
    RunningStats s;
    for (double x : {4.0, 2.0, 6.0})
        s.add(x);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(EmpiricalCdf, StepValuesAndPercentiles)
{
    EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.percentile(100), 4.0);
    EXPECT_DOUBLE_EQ(cdf.percentile(50), 2.5);
    auto series = cdf.series(0.0, 5.0, 6);
    EXPECT_EQ(series.size(), 6u);
    EXPECT_DOUBLE_EQ(series.front().second, 0.0);
    EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(EmpiricalCdf, EmptyAndSingleSampleAreTotal)
{
    // percentile() is total: no asserts to trip, whatever the reservoir
    // holds — an empty CDF answers 0, a single sample answers itself,
    // and out-of-range p is clamped instead of rejected.
    EmpiricalCdf empty({});
    EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(100), 0.0);
    EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
    EXPECT_EQ(empty.count(), 0u);

    EmpiricalCdf one({7.5});
    EXPECT_DOUBLE_EQ(one.percentile(0), 7.5);
    EXPECT_DOUBLE_EQ(one.percentile(50), 7.5);
    EXPECT_DOUBLE_EQ(one.percentile(100), 7.5);
    EXPECT_DOUBLE_EQ(one.percentile(-10), 7.5);
    EXPECT_DOUBLE_EQ(one.percentile(250), 7.5);
}

TEST(EmpiricalCdf, OutOfRangePercentileClamps)
{
    EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf.percentile(-5), cdf.percentile(0));
    EXPECT_DOUBLE_EQ(cdf.percentile(105), cdf.percentile(100));
}

TEST(EmpiricalCdf, MonotoneProperty)
{
    Rng rng(7);
    std::vector<double> samples;
    for (int i = 0; i < 200; ++i)
        samples.push_back(rng.normal(0.0, 2.0));
    EmpiricalCdf cdf(samples);
    double prev = -1.0;
    for (auto [x, f] : cdf.series(-6, 6, 50)) {
        EXPECT_GE(f, prev);
        prev = f;
    }
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 10; ++i)
        EXPECT_FLOAT_EQ(a.uniform(), b.uniform());
}

} // namespace
} // namespace clm
