/**
 * @file
 * Scheduler tests: sorted-set algebra, the symmetric-difference metric
 * (Appendix A.1's metric-TSP claim), TSP solver validity and quality
 * (SLS reaches the Held-Karp optimum on small instances), and the four
 * ordering strategies of Table 4.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "math/rng.hpp"
#include "sched/ordering.hpp"
#include "sched/tsp.hpp"

namespace clm {
namespace {

std::vector<std::vector<uint32_t>>
randomSets(size_t n_views, uint32_t universe, double density,
           uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<uint32_t>> sets(n_views);
    for (auto &s : sets) {
        for (uint32_t g = 0; g < universe; ++g)
            if (rng.uniform() < density)
                s.push_back(g);
    }
    return sets;
}

bool
isPermutation(const std::vector<int> &tour, size_t n)
{
    if (tour.size() != n)
        return false;
    std::vector<bool> seen(n, false);
    for (int v : tour) {
        if (v < 0 || static_cast<size_t>(v) >= n || seen[v])
            return false;
        seen[v] = true;
    }
    return true;
}

TEST(SetOps, IntersectionAndSymmetricDifference)
{
    std::vector<uint32_t> a{1, 3, 5, 7};
    std::vector<uint32_t> b{3, 4, 5, 9, 11};
    EXPECT_EQ(intersectionSize(a, b), 2u);
    EXPECT_EQ(symmetricDifferenceSize(a, b), 4u + 5u - 4u);
    EXPECT_EQ(symmetricDifferenceSize(a, a), 0u);
    EXPECT_EQ(intersectionSize(a, {}), 0u);
    EXPECT_EQ(symmetricDifferenceSize(a, {}), a.size());
}

TEST(SetOps, SymmetricDifferenceIsMetric)
{
    // |A xor B| is a metric: the distance matrix over random sets must
    // satisfy symmetry, identity and the triangle inequality.
    auto sets = randomSets(12, 200, 0.2, 21);
    DistanceMatrix d = buildOverlapDistanceMatrix(sets);
    EXPECT_TRUE(d.isMetric());
}

TEST(DistanceMatrix, SetAndGet)
{
    DistanceMatrix d(3);
    d.set(0, 2, 5.0);
    EXPECT_DOUBLE_EQ(d.at(0, 2), 5.0);
    EXPECT_DOUBLE_EQ(d.at(2, 0), 5.0);
    EXPECT_DOUBLE_EQ(d.at(1, 1), 0.0);
}

TEST(Tsp, TrivialInstances)
{
    DistanceMatrix d0(0);
    EXPECT_TRUE(solveTsp(d0).tour.empty());
    DistanceMatrix d1(1);
    EXPECT_EQ(solveTsp(d1).tour, std::vector<int>{0});
    DistanceMatrix d2(2);
    d2.set(0, 1, 3.0);
    TspResult r = solveTsp(d2);
    EXPECT_TRUE(isPermutation(r.tour, 2));
    EXPECT_DOUBLE_EQ(r.length, 3.0);
}

TEST(Tsp, TourIsAlwaysAValidPermutation)
{
    Rng rng(5);
    for (int n : {3, 7, 16, 40}) {
        DistanceMatrix d(n);
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j)
                d.set(i, j, rng.uniform(1.0f, 100.0f));
        TspConfig cfg;
        cfg.time_limit_ms = 2.0;
        TspResult r = solveTsp(d, cfg);
        EXPECT_TRUE(isPermutation(r.tour, n)) << "n=" << n;
        EXPECT_NEAR(r.length, tourLength(d, r.tour), 1e-9);
    }
}

TEST(Tsp, SolvesLineGraphOptimally)
{
    // Points on a line: the optimal open path visits them in order.
    int n = 10;
    DistanceMatrix d(n);
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            d.set(i, j, std::abs(i - j));
    TspConfig cfg;
    cfg.time_limit_ms = 5.0;
    TspResult r = solveTsp(d, cfg);
    EXPECT_DOUBLE_EQ(r.length, n - 1.0);    // 9 unit edges
}

TEST(TspExact, MatchesBruteForceOnTinyInstance)
{
    Rng rng(6);
    int n = 7;
    DistanceMatrix d(n);
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            d.set(i, j, rng.uniform(1.0f, 50.0f));
    TspResult exact = solveTspExact(d);
    EXPECT_TRUE(isPermutation(exact.tour, n));

    // Brute force over all permutations.
    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    double best = 1e300;
    do {
        best = std::min(best, tourLength(d, perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(exact.length, best, 1e-9);
}

/** Appendix A.1's empirical claim: the 1 ms SLS finds the optimum for
 *  batch-sized instances. Parameterized over instance size. */
class TspQualityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(TspQualityTest, SlsReachesExactOptimum)
{
    int n = GetParam();
    for (uint64_t seed = 0; seed < 5; ++seed) {
        auto sets = randomSets(n, 400, 0.25, 100 + seed);
        DistanceMatrix d = buildOverlapDistanceMatrix(sets);
        TspConfig cfg;
        cfg.time_limit_ms = 1.0;    // the paper's budget
        cfg.seed = seed;
        TspResult sls = solveTsp(d, cfg);
        TspResult exact = solveTspExact(d);
        // Metric instances this small: SLS should match the optimum
        // (allow a 2% slack to keep the test robust).
        EXPECT_LE(sls.length, exact.length * 1.02 + 1e-9)
            << "n=" << n << " seed=" << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, TspQualityTest,
                         ::testing::Values(4, 8, 12));

TEST(Tsp, TwoOptImprovesOverNearestNeighbour)
{
    // On clustered metric instances, polishing must never hurt.
    Rng rng(7);
    DistanceMatrix d(24);
    std::vector<Vec3> pts;
    for (int i = 0; i < 24; ++i)
        pts.push_back(rng.uniformInBox({0, 0, 0}, {100, 100, 0}));
    for (int i = 0; i < 24; ++i)
        for (int j = i + 1; j < 24; ++j)
            d.set(i, j, (pts[i] - pts[j]).norm());

    TspConfig no_polish;
    no_polish.time_limit_ms = 0.0;    // construction only
    no_polish.use_3opt = false;
    TspConfig full;
    full.time_limit_ms = 10.0;
    EXPECT_LE(solveTsp(d, full).length,
              solveTsp(d, no_polish).length + 1e-9);
}

TEST(Ordering, NamesAndInventory)
{
    auto all = allOrderingStrategies();
    EXPECT_EQ(all.size(), 4u);
    EXPECT_STREQ(orderingName(OrderingStrategy::Tsp), "TSP Order");
    EXPECT_STREQ(orderingName(OrderingStrategy::GsCount),
                 "GS Count Order");
}

TEST(Ordering, AllStrategiesReturnPermutations)
{
    auto sets = randomSets(10, 300, 0.2, 9);
    std::vector<Vec3> centers;
    Rng rng(10);
    for (int i = 0; i < 10; ++i)
        centers.push_back(rng.uniformInBox({0, 0, 0}, {10, 10, 10}));
    OrderingInputs in;
    in.sets = &sets;
    in.camera_centers = &centers;
    for (OrderingStrategy s : allOrderingStrategies()) {
        auto order = orderViews(s, 10, in);
        EXPECT_TRUE(isPermutation(order, 10)) << orderingName(s);
    }
}

TEST(Ordering, GsCountSortsDescending)
{
    std::vector<std::vector<uint32_t>> sets{{1, 2}, {1, 2, 3, 4}, {7}};
    OrderingInputs in;
    in.sets = &sets;
    auto order = orderViews(OrderingStrategy::GsCount, 3, in);
    EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(Ordering, CameraSortsAlongPrincipalAxis)
{
    // Centers spread along x: camera order must be an x-sweep (either
    // direction, as the principal axis sign is arbitrary).
    std::vector<Vec3> centers{
        {5, 0, 0}, {1, 0.1f, 0}, {9, -0.1f, 0}, {3, 0, 0.1f}};
    OrderingInputs in;
    in.camera_centers = &centers;
    auto order = orderViews(OrderingStrategy::Camera, 4, in);
    std::vector<int> fwd{1, 3, 0, 2};
    std::vector<int> rev{2, 0, 3, 1};
    EXPECT_TRUE(order == fwd || order == rev);
}

TEST(Ordering, TspMaximizesConsecutiveOverlap)
{
    // TSP order must achieve no worse total symmetric difference than
    // random order on a locality-rich instance.
    Rng rng(11);
    // Sets with a sliding-window structure: view v covers [v*10, v*10+60).
    std::vector<std::vector<uint32_t>> sets;
    std::vector<int> shuffled(12);
    std::iota(shuffled.begin(), shuffled.end(), 0);
    std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
    for (int v : shuffled) {
        std::vector<uint32_t> s;
        for (uint32_t g = v * 10; g < uint32_t(v * 10 + 60); ++g)
            s.push_back(g);
        sets.push_back(std::move(s));
    }
    OrderingInputs in;
    in.sets = &sets;
    in.tsp.time_limit_ms = 5.0;

    auto cost = [&](const std::vector<int> &order) {
        double c = 0;
        for (size_t i = 0; i + 1 < order.size(); ++i)
            c += symmetricDifferenceSize(sets[order[i]],
                                         sets[order[i + 1]]);
        return c;
    };
    auto tsp = orderViews(OrderingStrategy::Tsp, sets.size(), in);
    auto random = orderViews(OrderingStrategy::Random, sets.size(), in);
    EXPECT_LE(cost(tsp), cost(random));
    // The sliding-window instance has a known optimal sweep cost.
    double optimal = 11 * 20.0;    // each adjacent pair differs by 20
    EXPECT_NEAR(cost(tsp), optimal, 1e-9);
}

TEST(Ordering, RandomIsSeedDeterministic)
{
    OrderingInputs a, b;
    a.seed = b.seed = 77;
    auto sets = randomSets(8, 100, 0.3, 12);
    a.sets = b.sets = &sets;
    EXPECT_EQ(orderViews(OrderingStrategy::Random, 8, a),
              orderViews(OrderingStrategy::Random, 8, b));
}

} // namespace
} // namespace clm
