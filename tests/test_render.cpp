/**
 * @file
 * Forward-pass renderer tests: camera geometry, culling vs a brute-force
 * reference, rasterizer compositing semantics, image metrics, and the
 * loss forward values.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "math/ellipsoid.hpp"
#include "math/rng.hpp"
#include "render/arena.hpp"
#include "render/camera.hpp"
#include "render/culling.hpp"
#include "render/image.hpp"
#include "render/loss.hpp"
#include "render/rasterizer.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"

namespace clm {
namespace {

/** A single Gaussian dead ahead of a canonical camera. */
GaussianModel
singleGaussian(const Vec3 &pos, float scale, const Vec3 &color,
               float opacity)
{
    GaussianModel m(1);
    m.position(0) = pos;
    float ls = std::log(scale);
    m.logScale(0) = {ls, ls, ls};
    m.rotation(0) = Quat{1, 0, 0, 0};
    constexpr float kY0 = 0.28209479177387814f;
    m.sh(0)[0] = (color.x - 0.5f) / kY0;
    m.sh(0)[1] = (color.y - 0.5f) / kY0;
    m.sh(0)[2] = (color.z - 0.5f) / kY0;
    m.rawOpacity(0) = inverseSigmoid(opacity);
    return m;
}

Camera
canonicalCamera(int w = 64, int h = 64)
{
    return Camera::lookAt({0, 0, 0}, {0, 0, 10}, {0, 1, 0}, w, h, 1.0f,
                          0.1f, 100.0f);
}

TEST(Camera, ToCameraSpaceDepth)
{
    Camera cam = canonicalCamera();
    Vec3 t = cam.toCameraSpace({0, 0, 7});
    EXPECT_NEAR(t.x, 0.0f, 1e-5f);
    EXPECT_NEAR(t.y, 0.0f, 1e-5f);
    EXPECT_NEAR(t.z, 7.0f, 1e-5f);
}

TEST(Camera, CenterProjectsToPrincipalPoint)
{
    Camera cam = canonicalCamera(128, 96);
    GaussianModel m = singleGaussian({0, 0, 5}, 0.2f, {1, 0, 0}, 0.9f);
    ProjectedGaussian p = projectGaussian(m, 0, cam, 0);
    ASSERT_TRUE(p.valid);
    EXPECT_NEAR(p.mean2d.x, 64.0f, 1e-3f);
    EXPECT_NEAR(p.mean2d.y, 48.0f, 1e-3f);
    EXPECT_NEAR(p.depth, 5.0f, 1e-5f);
}

TEST(Camera, LookAtOrientation)
{
    // Point above the target appears in the upper image half (y down).
    Camera cam = canonicalCamera();
    GaussianModel m = singleGaussian({0, 2, 10}, 0.2f, {1, 1, 1}, 0.9f);
    ProjectedGaussian p = projectGaussian(m, 0, cam, 0);
    ASSERT_TRUE(p.valid);
    EXPECT_LT(p.mean2d.y, 32.0f);
}

TEST(Projection, BehindCameraInvalid)
{
    Camera cam = canonicalCamera();
    GaussianModel m = singleGaussian({0, 0, -5}, 0.2f, {1, 1, 1}, 0.9f);
    EXPECT_FALSE(projectGaussian(m, 0, cam, 0).valid);
}

TEST(Projection, FartherGaussianHasSmallerFootprint)
{
    Camera cam = canonicalCamera();
    GaussianModel near = singleGaussian({0, 0, 3}, 0.3f, {1, 1, 1}, 0.9f);
    GaussianModel far = singleGaussian({0, 0, 30}, 0.3f, {1, 1, 1}, 0.9f);
    ProjectedGaussian pn = projectGaussian(near, 0, cam, 0);
    ProjectedGaussian pf = projectGaussian(far, 0, cam, 0);
    ASSERT_TRUE(pn.valid && pf.valid);
    EXPECT_GT(pn.radius, pf.radius);
}

/** Brute-force reference: sample the frustum test on a dense set of
 *  points on the ellipsoid surface + center. */
bool
bruteForceInFrustum(const GaussianModel &m, size_t i, const Camera &cam)
{
    const Frustum &f = cam.frustum();
    Mat3 r = m.unitRotation(i).toRotationMatrix();
    Vec3 s = m.worldScale(i) * 3.0f;
    if (f.contains(m.position(i)))
        return true;
    for (int a = 0; a < 24; ++a) {
        for (int b = 0; b < 12; ++b) {
            float theta = 6.2831853f * a / 24;
            float phi = 3.1415926f * b / 12;
            Vec3 u{std::sin(phi) * std::cos(theta),
                   std::sin(phi) * std::sin(theta), std::cos(phi)};
            Vec3 p = m.position(i) + r.mul(u.cwiseMul(s));
            if (f.contains(p))
                return true;
        }
    }
    return false;
}

TEST(Culling, MatchesBruteForceReference)
{
    Camera cam = canonicalCamera();
    Rng rng(42);
    GaussianModel m = GaussianModel::random(400, {-15, -15, -10},
                                            {15, 15, 30}, 0.4f, rng);
    auto culled = frustumCull(m, cam);
    std::vector<bool> in_set(m.size(), false);
    for (uint32_t g : culled)
        in_set[g] = true;

    for (size_t i = 0; i < m.size(); ++i) {
        bool brute = bruteForceInFrustum(m, i, cam);
        if (brute) {
            // The support test is exact per plane, so it must accept
            // everything the sampled reference accepts.
            EXPECT_TRUE(in_set[i]) << "gaussian " << i << " missed";
        }
        // The plane test may conservatively accept near corners; accept
        // false positives but they must be near the boundary: reject only
        // wild mismatches (center far outside every plane).
        if (!brute && in_set[i]) {
            float d = 0.0f;
            for (int pl = 0; pl < 6; ++pl)
                d = std::min(
                    d, cam.frustum().plane(pl).signedDistance(
                           m.position(i)));
            Ellipsoid e = Ellipsoid::fromGaussian(
                m.position(i), m.worldScale(i), m.rotation(i));
            EXPECT_GT(d, -2.0f * e.boundingRadius());
        }
    }
}

TEST(Culling, PackedMatchesModel)
{
    Camera cam = canonicalCamera();
    Rng rng(43);
    GaussianModel m = GaussianModel::random(300, {-15, -15, -10},
                                            {15, 15, 30}, 0.4f, rng);
    std::vector<float> packed(m.size() * kCriticalDim);
    for (size_t i = 0; i < m.size(); ++i)
        m.packCritical(i, &packed[i * kCriticalDim]);

    auto a = frustumCull(m, cam);
    auto b = frustumCullPacked(packed.data(), m.size(), cam);
    EXPECT_EQ(a, b);
}

TEST(Culling, SparsityHelper)
{
    EXPECT_DOUBLE_EQ(sparsity(5, 100), 0.05);
    EXPECT_DOUBLE_EQ(sparsity(0, 0), 0.0);
}

TEST(Rasterizer, SingleGaussianBrightensCenter)
{
    Camera cam = canonicalCamera();
    GaussianModel m = singleGaussian({0, 0, 5}, 0.5f, {0.9f, 0.1f, 0.1f},
                                     0.95f);
    RenderConfig cfg;
    cfg.sh_degree = 0;
    RenderOutput out = renderForward(m, cam, {0}, cfg);
    Vec3 center = out.image.pixel(32, 32);
    Vec3 corner = out.image.pixel(1, 1);
    EXPECT_GT(center.x, 0.5f);
    EXPECT_GT(center.x, center.y);             // red dominates
    EXPECT_LT(corner.x, 0.1f);                 // background black
    EXPECT_LT(out.final_t[32 * 64 + 32], 0.3f);
    EXPECT_EQ(out.n_contrib[32 * 64 + 32], 1u);
}

TEST(Rasterizer, EmptySubsetRendersBackground)
{
    Camera cam = canonicalCamera();
    GaussianModel m = singleGaussian({0, 0, 5}, 0.5f, {1, 1, 1}, 0.9f);
    RenderConfig cfg;
    cfg.background = {0.2f, 0.4f, 0.6f};
    RenderOutput out = renderForward(m, cam, {}, cfg);
    Vec3 p = out.image.pixel(10, 10);
    EXPECT_FLOAT_EQ(p.x, 0.2f);
    EXPECT_FLOAT_EQ(p.y, 0.4f);
    EXPECT_FLOAT_EQ(p.z, 0.6f);
}

TEST(Rasterizer, FrontGaussianOccludesBack)
{
    Camera cam = canonicalCamera();
    GaussianModel m(2);
    // Back gaussian: green, nearly opaque; front: red, nearly opaque.
    constexpr float kY0 = 0.28209479177387814f;
    m.position(0) = {0, 0, 8};
    m.position(1) = {0, 0, 4};
    for (size_t i = 0; i < 2; ++i) {
        float ls = std::log(0.6f);
        m.logScale(i) = {ls, ls, ls};
        m.rotation(i) = Quat{1, 0, 0, 0};
        m.rawOpacity(i) = inverseSigmoid(0.97f);
    }
    m.sh(0)[1] = 0.5f / kY0;     // green back
    m.sh(0)[0] = -0.5f / kY0;
    m.sh(0)[2] = -0.5f / kY0;
    m.sh(1)[0] = 0.5f / kY0;     // red front
    m.sh(1)[1] = -0.5f / kY0;
    m.sh(1)[2] = -0.5f / kY0;

    RenderConfig cfg;
    cfg.sh_degree = 0;
    RenderOutput out = renderForward(m, cam, {0, 1}, cfg);
    Vec3 c = out.image.pixel(32, 32);
    EXPECT_GT(c.x, 5.0f * c.y);    // red in front wins
}

TEST(Rasterizer, SubsetMattersOnlyForListedGaussians)
{
    Camera cam = canonicalCamera();
    Rng rng(44);
    GaussianModel m = GaussianModel::random(50, {-3, -3, 3}, {3, 3, 12},
                                            0.3f, rng);
    RenderConfig cfg;
    cfg.sh_degree = 0;
    auto all = frustumCull(m, cam);
    RenderOutput full = renderForward(m, cam, all, cfg);
    // Adding out-of-frustum Gaussians to the subset must not change the
    // image (they project invalid or contribute nothing).
    std::vector<uint32_t> everything(m.size());
    for (size_t i = 0; i < m.size(); ++i)
        everything[i] = static_cast<uint32_t>(i);
    RenderOutput with_extra = renderForward(m, cam, everything, cfg);
    EXPECT_LT(full.image.mse(with_extra.image), 1e-10);
}

TEST(Rasterizer, ParallelBitwiseIdenticalToSerial)
{
    // Every stage of the pipeline (projection, flat binning, stable
    // radix sort, per-tile compositing) is deterministic, so the
    // parallel path must reproduce the serial path bit for bit —
    // including the activation state the backward pass replays.
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel m = generateGroundTruth(spec, 700);
    // Odd resolution: exercises partial edge tiles and the non-quad
    // remainder pixels.
    auto cams = generateCameraPath(spec, 2, 97, 61);
    for (const Camera &cam : cams) {
        auto subset = frustumCull(m, cam);
        RenderConfig serial;
        serial.parallel = false;
        RenderConfig parallel;
        parallel.parallel = true;
        RenderOutput a = renderForward(m, cam, subset, serial);
        RenderOutput b = renderForward(m, cam, subset, parallel);
        EXPECT_EQ(a.image.data(), b.image.data());    // bitwise
        EXPECT_EQ(a.final_t, b.final_t);
        EXPECT_EQ(a.n_contrib, b.n_contrib);
        EXPECT_EQ(a.isect_vals, b.isect_vals);
        ASSERT_EQ(a.tile_ranges.size(), b.tile_ranges.size());
        for (size_t t = 0; t < a.tile_ranges.size(); ++t) {
            EXPECT_EQ(a.tile_ranges[t].begin, b.tile_ranges[t].begin);
            EXPECT_EQ(a.tile_ranges[t].end, b.tile_ranges[t].end);
        }
    }
}

TEST(Rasterizer, ArenaReuseMatchesFreshAllocation)
{
    // One arena reused across differently-sized views must reproduce
    // the value-returning overload bit for bit.
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel m = generateGroundTruth(spec, 500);
    RenderArena arena;
    RenderConfig cfg;
    int sizes[][2] = {{96, 64}, {48, 32}, {96, 64}};
    for (auto &wh : sizes) {
        Camera cam = generateCameraPath(spec, 2, wh[0], wh[1])[0];
        auto subset = frustumCull(m, cam);
        const RenderOutput &reused =
            renderForward(m, cam, subset, cfg, arena);
        RenderOutput fresh = renderForward(m, cam, subset, cfg);
        EXPECT_EQ(fresh.image.data(), reused.image.data());
        EXPECT_EQ(fresh.final_t, reused.final_t);
        EXPECT_EQ(fresh.n_contrib, reused.n_contrib);
        EXPECT_EQ(fresh.isect_vals, reused.isect_vals);
    }
}

TEST(Rasterizer, ActivationBytesScaleWithResolution)
{
    GaussianModel m = singleGaussian({0, 0, 5}, 0.5f, {1, 1, 1}, 0.9f);
    RenderConfig cfg;
    RenderOutput small =
        renderForward(m, canonicalCamera(32, 32), {0}, cfg);
    RenderOutput big =
        renderForward(m, canonicalCamera(128, 128), {0}, cfg);
    EXPECT_GT(big.activationBytes(), small.activationBytes());
}

TEST(Rasterizer, ActivationBytesCountEveryBuffer)
{
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel m = generateGroundTruth(spec, 300);
    Camera cam = generateCameraPath(spec, 2, 64, 48)[0];
    auto subset = frustumCull(m, cam);
    RenderOutput out = renderForward(m, cam, subset, {});
    ASSERT_GT(out.totalTileIntersections(), 0u);
    size_t expected = out.image.data().size() * sizeof(float)
                    + out.final_t.size() * sizeof(float)
                    + out.n_contrib.size() * sizeof(uint32_t)
                    + out.projected.size() * sizeof(ProjectedGaussian)
                    + out.isect_vals.size() * sizeof(uint32_t)
                    + out.tile_ranges.size() * sizeof(TileRange);
    EXPECT_EQ(out.activationBytes(), expected);
}

TEST(Image, MetricsBasics)
{
    Image a(8, 8, {0.5f, 0.5f, 0.5f});
    Image b(8, 8, {0.5f, 0.5f, 0.5f});
    EXPECT_DOUBLE_EQ(a.mse(b), 0.0);
    EXPECT_GE(a.psnr(b), 99.0);
    b.setPixel(0, 0, {1.0f, 0.5f, 0.5f});
    EXPECT_GT(a.mse(b), 0.0);
    EXPECT_LT(a.psnr(b), 99.0);
    EXPECT_GT(a.l1(b), 0.0);
}

TEST(Image, PsnrDecreasesWithNoise)
{
    Rng rng(45);
    Image gt(16, 16, {0.5f, 0.5f, 0.5f});
    Image small_noise = gt, big_noise = gt;
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x) {
            float n = rng.normal(0.0f, 1.0f);
            small_noise.addPixel(x, y, {0.01f * n, 0.01f * n, 0.01f * n});
            big_noise.addPixel(x, y, {0.1f * n, 0.1f * n, 0.1f * n});
        }
    EXPECT_GT(gt.psnr(small_noise), gt.psnr(big_noise));
}

TEST(Loss, ZeroForIdenticalImages)
{
    Image a(16, 16, {0.3f, 0.6f, 0.9f});
    LossResult r = computeLoss(a, a, nullptr);
    EXPECT_NEAR(r.l1, 0.0, 1e-9);
    EXPECT_NEAR(r.dssim, 0.0, 1e-6);
    EXPECT_NEAR(r.total, 0.0, 1e-6);
}

TEST(Loss, SsimPenalizesStructuralChange)
{
    Rng rng(46);
    Image a(24, 24);
    for (int y = 0; y < 24; ++y)
        for (int x = 0; x < 24; ++x) {
            float v = 0.5f + 0.4f * std::sin(0.5f * x);
            a.setPixel(x, y, {v, v, v});
        }
    // Constant image with the same mean destroys structure.
    Image b(24, 24, {0.5f, 0.5f, 0.5f});
    double ssim = meanSsim(a, b);
    EXPECT_LT(ssim, 0.9);
    EXPECT_GT(meanSsim(a, a), 0.999);
}

TEST(Loss, WeightsCombine)
{
    Image a(12, 12, {0.5f, 0.5f, 0.5f});
    Image b(12, 12, {0.7f, 0.7f, 0.7f});
    LossConfig cfg;
    cfg.lambda_dssim = 0.0f;
    LossResult l1_only = computeLoss(a, b, nullptr, cfg);
    EXPECT_NEAR(l1_only.total, l1_only.l1, 1e-9);
    cfg.lambda_dssim = 1.0f;
    LossResult ssim_only = computeLoss(a, b, nullptr, cfg);
    EXPECT_NEAR(ssim_only.total, ssim_only.dssim, 1e-9);
}

} // namespace
} // namespace clm
