/**
 * @file
 * Integration tests: the three functional trainers must be equivalent —
 * CLM's offloading (attribute split, caching, carried gradients, subset
 * Adam) is a pure systems transformation of GPU-only training — and
 * training must actually reconstruct scenes (loss down, PSNR up). Also
 * covers the Clm facade and the quality harness.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/clm.hpp"
#include "train/clm_trainer.hpp"
#include "train/naive_offload_trainer.hpp"
#include "train/quality_harness.hpp"

namespace clm {
namespace {

struct Fixture
{
    SceneSpec spec;
    GaussianModel gt;
    std::vector<Camera> cameras;
    std::vector<Image> gt_images;
    TrainConfig config;

    explicit Fixture(size_t gt_size = 700, int views = 8, int wh = 48)
        : spec(SceneSpec::bicycle())
    {
        spec.train = {gt_size, views, wh, wh};
        gt = generateGroundTruth(spec, gt_size);
        cameras = trainCameras(spec);
        config.batch_size = 4;
        config.render.sh_degree = 1;
        config.loss.ssim_window = 5;
        config.planner.tsp.time_limit_ms = 0.5;
        gt_images = renderGroundTruth(gt, cameras, config.render);
    }

    GaussianModel
    trainee(size_t size) const
    {
        return makeTrainee(gt, size, 1234);
    }
};

void
expectModelsClose(const GaussianModel &a, const GaussianModel &b,
                  float tol)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a.position(i).x, b.position(i).x, tol);
        EXPECT_NEAR(a.position(i).y, b.position(i).y, tol);
        EXPECT_NEAR(a.logScale(i).z, b.logScale(i).z, tol);
        EXPECT_NEAR(a.rotation(i).w, b.rotation(i).w, tol);
        EXPECT_NEAR(a.rawOpacity(i), b.rawOpacity(i), tol);
        EXPECT_NEAR(a.sh(i)[0], b.sh(i)[0], tol);
        EXPECT_NEAR(a.sh(i)[5], b.sh(i)[5], tol);
    }
}

TEST(TrainerEquivalence, ClmMatchesGpuOnlyTrajectory)
{
    // The core systems claim: CLM's offloaded execution computes the
    // same training step as GPU-only training.
    Fixture f;
    GpuOnlyTrainer gpu(f.trainee(300), f.cameras, f.gt_images, f.config);
    ClmTrainer clm(f.trainee(300), f.cameras, f.gt_images, f.config);

    std::vector<int> batch1{0, 3, 5, 6};
    std::vector<int> batch2{1, 2, 4, 7};
    for (const auto &ids : {batch1, batch2}) {
        BatchStats sg = gpu.trainBatch(ids);
        BatchStats sc = clm.trainBatch(ids);
        EXPECT_NEAR(sg.loss, sc.loss, 1e-4);
        EXPECT_EQ(sg.gaussians_rendered, sc.gaussians_rendered);
    }
    expectModelsClose(gpu.model(), clm.model(), 2e-4f);
}

TEST(TrainerEquivalence, NaiveMatchesGpuOnlyTrajectory)
{
    Fixture f;
    GpuOnlyTrainer gpu(f.trainee(300), f.cameras, f.gt_images, f.config);
    NaiveOffloadTrainer naive(f.trainee(300), f.cameras, f.gt_images,
                              f.config);
    std::vector<int> ids{0, 2, 4, 6};
    gpu.trainBatch(ids);
    naive.trainBatch(ids);
    expectModelsClose(gpu.model(), naive.model(), 1e-5f);
}

/** Equivalence must hold for every ordering strategy and with caching
 *  and Adam overlap toggled — they are performance knobs, not math. */
class ClmAblationEquivalence
    : public ::testing::TestWithParam<std::tuple<OrderingStrategy, bool>>
{
};

TEST_P(ClmAblationEquivalence, TrajectoryUnchanged)
{
    auto [ordering, enable_cache] = GetParam();
    Fixture f;
    TrainConfig cfg = f.config;
    cfg.planner.ordering = ordering;
    cfg.planner.enable_cache = enable_cache;

    GpuOnlyTrainer gpu(f.trainee(250), f.cameras, f.gt_images, f.config);
    ClmTrainer clm(f.trainee(250), f.cameras, f.gt_images, cfg);
    std::vector<int> ids{0, 1, 4, 7};
    gpu.trainBatch(ids);
    clm.trainBatch(ids);
    expectModelsClose(gpu.model(), clm.model(), 2e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, ClmAblationEquivalence,
    ::testing::Combine(::testing::Values(OrderingStrategy::Random,
                                         OrderingStrategy::Camera,
                                         OrderingStrategy::GsCount,
                                         OrderingStrategy::Tsp),
                       ::testing::Bool()));

TEST(ClmTrainerAccounting, CacheReducesTrafficNotResults)
{
    Fixture f;
    TrainConfig no_cache = f.config;
    no_cache.planner.enable_cache = false;
    no_cache.planner.ordering = OrderingStrategy::Tsp;
    TrainConfig cache = f.config;
    cache.planner.enable_cache = true;
    cache.planner.ordering = OrderingStrategy::Tsp;

    ClmTrainer a(f.trainee(300), f.cameras, f.gt_images, cache);
    ClmTrainer b(f.trainee(300), f.cameras, f.gt_images, no_cache);
    std::vector<int> ids{0, 1, 2, 3};
    BatchStats sa = a.trainBatch(ids);
    BatchStats sb = b.trainBatch(ids);
    EXPECT_LT(sa.h2d_bytes, sb.h2d_bytes);
    EXPECT_GT(sa.cache_hits, 0u);
    EXPECT_EQ(sb.cache_hits, 0u);
    expectModelsClose(a.model(), b.model(), 2e-4f);
}

TEST(ClmTrainerAccounting, PinnedBytesMatchLayout)
{
    Fixture f;
    ClmTrainer t(f.trainee(300), f.cameras, f.gt_images, f.config);
    EXPECT_EQ(t.pinnedBytes(), PinnedLayout::totalBytes(300));
}

TEST(ClmTrainerAccounting, AdamUpdatesEveryTouchedGaussianOnce)
{
    Fixture f;
    ClmTrainer t(f.trainee(300), f.cameras, f.gt_images, f.config);
    std::vector<int> ids{0, 1, 2, 3};
    BatchStats s = t.trainBatch(ids);
    EXPECT_EQ(s.adam_updated, t.lastPlan().fin.touched());
}

TEST(Training, LossDecreasesOverSteps)
{
    Fixture f;
    ClmTrainer t(f.trainee(400), f.cameras, f.gt_images, f.config);
    auto stats = t.trainSteps(10);
    double first = stats.front().loss;
    double last = stats.back().loss;
    EXPECT_LT(last, first);
}

TEST(Training, PsnrImprovesFromPerturbedInit)
{
    Fixture f;
    ClmTrainer t(f.trainee(500), f.cameras, f.gt_images, f.config);
    double before = t.evaluatePsnr();
    t.trainSteps(10);
    double after = t.evaluatePsnr();
    EXPECT_GT(after, before);
}

TEST(QualityHarness, LargerModelsScoreHigher)
{
    SceneSpec spec = SceneSpec::bicycle();
    spec.train = {600, 6, 40, 40};
    QualityConfig qc;
    qc.gt_gaussians = 600;
    qc.model_sizes = {60, 600};
    qc.steps = 4;
    qc.train.batch_size = 3;
    qc.train.render.sh_degree = 1;
    qc.train.loss.ssim_window = 5;
    auto points = runQualitySweep(spec, qc);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_GT(points[1].psnr_final, points[0].psnr_final);
    // Training never hurts a converged-seeded model much; final PSNR
    // should beat the perturbed initialization.
    EXPECT_GT(points[1].psnr_final, points[1].psnr_initial);
}

TEST(ClmFacade, QuickstartFlow)
{
    ClmConfig cfg;
    cfg.scene = SceneSpec::bicycle();
    cfg.scene.train = {400, 6, 40, 40};
    cfg.model_size = 200;
    cfg.train.render.sh_degree = 1;
    cfg.train.loss.ssim_window = 5;
    Clm session(cfg);
    EXPECT_EQ(session.viewCount(), 6u);
    double before = session.evaluatePsnr();
    session.train(3);
    EXPECT_GE(session.evaluatePsnr(), before - 0.5);
    Image img = session.renderView(0);
    EXPECT_EQ(img.width(), 40);
    // Novel view renders without crashing and produces finite pixels.
    Camera novel = Camera::lookAt({8, 8, 4}, {0, 0, 1}, {0, 0, 1}, 40,
                                  40, 1.0f);
    Image nv = session.renderNovelView(novel);
    for (float v : nv.data())
        EXPECT_TRUE(std::isfinite(v));
}

TEST(ClmFacade, ConfigValidation)
{
    ClmConfig cfg;
    cfg.scene.train.n_views = 0;
    EXPECT_ANY_THROW(Clm{cfg});
}

} // namespace
} // namespace clm
