/**
 * @file
 * SIMD kernel layer tests: F8 batch semantics, the documented exp8()
 * ULP bound against std::exp, lane-tail handling in the SIMD
 * compositor, and the quality impact of SIMD vs scalar compositing
 * (quality-harness-style PSNR delta < 0.05 dB).
 *
 * These tests run in every build flavor: under -DCLM_DISABLE_SIMD=ON
 * the F8 scalar fallback executes the same IEEE op sequence, so the
 * same bounds must hold.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "math/simd.hpp"
#include "render/arena.hpp"
#include "render/culling.hpp"
#include "render/rasterizer.hpp"
#include "render/simd_kernels.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"
#include "train/quality_harness.hpp"

namespace clm {
namespace {

int32_t
floatBits(float x)
{
    int32_t u;
    std::memcpy(&u, &x, sizeof(u));
    return u;
}

TEST(Simd, LoadStoreRoundTrip)
{
    float src[9] = {0.0f, -1.5f, 2.25f, 1e-30f, -1e30f, 3.0f, -0.0f,
                    42.0f, 7.0f};
    float dst[9] = {};
    // Unaligned: exercise the offset-by-one path.
    F8::load(src + 1).store(dst + 1);
    for (int l = 1; l < 9; ++l)
        EXPECT_EQ(floatBits(dst[l]), floatBits(src[l])) << l;
}

TEST(Simd, ArithmeticAndSelectSemantics)
{
    float a_v[8] = {1, 2, 3, 4, -1, -2, 0.5f, 0};
    float b_v[8] = {4, 3, 2, 1, -2, -1, 0.25f, 0};
    F8 a = F8::load(a_v), b = F8::load(b_v);
    float sum[8], prod[8], mn[8], sel[8];
    (a + b).store(sum);
    (a * b).store(prod);
    F8::min(a, b).store(mn);
    F8::select(F8::lt(a, b), a, b).store(sel);
    for (int l = 0; l < 8; ++l) {
        EXPECT_EQ(sum[l], a_v[l] + b_v[l]);
        EXPECT_EQ(prod[l], a_v[l] * b_v[l]);
        EXPECT_EQ(mn[l], a_v[l] < b_v[l] ? a_v[l] : b_v[l]);
        // select(lt(a,b), a, b) is exactly min's definition.
        EXPECT_EQ(sel[l], mn[l]);
    }
}

TEST(Simd, MinMaxNanTakeSecondOperand)
{
    // Documented SSE convention on every backend: min(a, b) = a < b ?
    // a : b, so an unordered compare yields the SECOND operand.
    const float nan = std::numeric_limits<float>::quiet_NaN();
    float a_v[8] = {nan, 1.0f, nan, 5.0f, nan, 2.0f, nan, 3.0f};
    float b_v[8] = {7.0f, nan, 8.0f, nan, 9.0f, nan, 1.0f, nan};
    float mn[8], mx[8];
    F8::min(F8::load(a_v), F8::load(b_v)).store(mn);
    F8::max(F8::load(a_v), F8::load(b_v)).store(mx);
    for (int l = 0; l < 8; ++l) {
        if (std::isnan(a_v[l])) {
            EXPECT_EQ(mn[l], b_v[l]) << l;
            EXPECT_EQ(mx[l], b_v[l]) << l;
        } else {
            EXPECT_TRUE(std::isnan(mn[l])) << l;
            EXPECT_TRUE(std::isnan(mx[l])) << l;
        }
    }
}

TEST(Simd, MaskAnyAll)
{
    float a_v[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    F8 a = F8::load(a_v);
    F8 none = F8::lt(a, F8::zero());
    F8 all = F8::gt(a, F8::zero());
    F8 some = F8::gt(a, F8::broadcast(4.5f));
    EXPECT_FALSE(F8::any(none));
    EXPECT_TRUE(F8::all(all));
    EXPECT_TRUE(F8::any(some));
    EXPECT_FALSE(F8::all(some));
    EXPECT_TRUE(F8::any(F8::bitOr(none, some)));
    EXPECT_FALSE(F8::any(F8::bitAnd(none, some)));
    EXPECT_TRUE(F8::all(F8::bitOr(all, none)));
    // bitAndNot(mask, v) = ~mask & v.
    EXPECT_FALSE(F8::any(F8::bitAndNot(all, some)));
    EXPECT_TRUE(F8::any(F8::bitAndNot(some, all)));
}

TEST(Simd, Exp8WithinDocumentedUlpBound)
{
    // Dense sweep of the full clamped domain: exp8 must stay within
    // kExp8MaxUlp of the correctly-rounded float exponential.
    const double x0 = -87.33, x1 = 88.37;
    const int n = 800000;
    int32_t worst = 0;
    for (int i = 0; i < n; i += 8) {
        float xs[8], ys[8];
        for (int l = 0; l < 8; ++l)
            xs[l] = static_cast<float>(x0 + (x1 - x0) * (i + l) / n);
        exp8(F8::load(xs)).store(ys);
        for (int l = 0; l < 8; ++l) {
            float ref = static_cast<float>(
                std::exp(static_cast<double>(xs[l])));
            int32_t ulp = std::abs(floatBits(ys[l]) - floatBits(ref));
            worst = std::max(worst, ulp);
            ASSERT_LE(ulp, kExp8MaxUlp) << "x = " << xs[l];
        }
    }
    // The bound is not vacuous: the kernel is at most off by rounding.
    EXPECT_GE(worst, 0);

    // Exact and clamping behavior.
    float in[8] = {0.0f, -1000.0f, 1000.0f, -87.33f, 88.37f, 1.0f, -1.0f,
                   0.5f};
    float out[8];
    exp8(F8::load(in)).store(out);
    EXPECT_EQ(out[0], 1.0f);    // exp8(0) == 1 exactly
    EXPECT_GT(out[1], 0.0f);    // deep negative clamps to a normal float
    EXPECT_TRUE(std::isfinite(out[1]));
    EXPECT_TRUE(std::isfinite(out[2]));    // clamped, no overflow to inf
}

/** Forward renders of a real scene with the SIMD and scalar
 *  compositors. */
struct TwoPathRender
{
    RenderOutput simd, scalar;

    TwoPathRender(const GaussianModel &m, const Camera &cam)
    {
        auto subset = frustumCull(m, cam);
        RenderConfig cfg;
        cfg.use_simd = true;
        simd = renderForward(m, cam, subset, cfg);
        cfg.use_simd = false;
        scalar = renderForward(m, cam, subset, cfg);
    }
};

TEST(SimdCompositor, LaneTailWidthsMatchScalarClosely)
{
    // Widths that exercise every lane-tail remainder (w mod 8 = 0..7)
    // including partial edge tiles. exp8's rounding may move pixels by
    // ULPs, never by visible amounts.
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel m = generateGroundTruth(spec, 500);
    for (int w : {96, 97, 98, 99, 100, 101, 102, 103}) {
        Camera cam = generateCameraPath(spec, 2, w, 61)[0];
        TwoPathRender r(m, cam);
        // Near-identical images: PSNR of one against the other.
        EXPECT_GT(r.simd.image.psnr(r.scalar.image), 55.0) << "w=" << w;
        // Termination bookkeeping stays consistent with the image.
        ASSERT_EQ(r.simd.final_t.size(), r.scalar.final_t.size());
    }
}

TEST(SimdCompositor, ParallelBitwiseIdenticalToSerial)
{
    // The SIMD path must preserve the pipeline's determinism guarantee:
    // parallel and serial runs produce bit-identical images (odd
    // resolution: partial tiles + lane tails).
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel m = generateGroundTruth(spec, 700);
    auto cams = generateCameraPath(spec, 2, 97, 61);
    for (const Camera &cam : cams) {
        auto subset = frustumCull(m, cam);
        RenderConfig serial;
        serial.parallel = false;
        serial.use_simd = true;
        RenderConfig parallel;
        parallel.parallel = true;
        parallel.use_simd = true;
        RenderOutput a = renderForward(m, cam, subset, serial);
        RenderOutput b = renderForward(m, cam, subset, parallel);
        EXPECT_EQ(a.image.data(), b.image.data());    // bitwise
        EXPECT_EQ(a.final_t, b.final_t);
        EXPECT_EQ(a.n_contrib, b.n_contrib);
    }
}

TEST(SimdCompositor, BackwardGradientsCloseToScalar)
{
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel m = generateGroundTruth(spec, 400);
    Camera cam = generateCameraPath(spec, 2, 80, 60)[0];
    auto subset = frustumCull(m, cam);
    Image d_image(80, 60, {0.3f, -0.2f, 0.1f});

    auto run = [&](bool use_simd) {
        RenderConfig cfg;
        cfg.use_simd = use_simd;
        RenderOutput out = renderForward(m, cam, subset, cfg);
        GaussianGrads g;
        g.resize(m.size());
        renderBackward(m, cam, cfg, out, d_image, g);
        return g;
    };
    GaussianGrads a = run(true);
    GaussianGrads b = run(false);
    for (size_t i = 0; i < m.size(); ++i) {
        EXPECT_NEAR(a.d_position[i].x, b.d_position[i].x,
                    1e-5 + 1e-3 * std::abs(b.d_position[i].x));
        EXPECT_NEAR(a.d_opacity[i], b.d_opacity[i],
                    1e-5 + 1e-3 * std::abs(b.d_opacity[i]));
        EXPECT_NEAR(a.d_sh[i * kShDim], b.d_sh[i * kShDim],
                    1e-5 + 1e-3 * std::abs(b.d_sh[i * kShDim]));
    }
}

TEST(SimdDispatch, ResolveBackendHonorsTokensAndSupport)
{
    const SimdBackend pref = simdPreferredBackend();
    EXPECT_TRUE(simdBackendSupported(pref));
    // No token: the CPUID-preferred backend.
    EXPECT_EQ(simdResolveBackend(nullptr, pref), pref);
    // Scalar is supported everywhere and always honored.
    EXPECT_EQ(simdResolveBackend("scalar", pref), SimdBackend::kScalar);
    // Any supported backend's own token resolves to itself.
    for (int b = 0; b < kNumSimdBackends; ++b) {
        const SimdBackend be = static_cast<SimdBackend>(b);
        if (simdBackendSupported(be))
            EXPECT_EQ(simdResolveBackend(simdBackendName(be), pref), be)
                << simdBackendName(be);
    }
    // Unknown tokens warn and keep the preferred choice.
    EXPECT_EQ(simdResolveBackend("banana", pref), pref);
    // The startup choice is supported and its kernel table exists and
    // self-identifies.
    const SimdBackend chosen = simdDispatchBackend();
    EXPECT_TRUE(simdBackendSupported(chosen));
    const RenderKernels &kern = renderKernels();
    EXPECT_EQ(kern.backend, chosen);
    EXPECT_STREQ(kern.name, simdBackendName(chosen));
    // Unsupported backends have no table; supported ones all do.
    for (int b = 0; b < kNumSimdBackends; ++b) {
        const SimdBackend be = static_cast<SimdBackend>(b);
        const RenderKernels *t = renderKernelsFor(be);
        EXPECT_EQ(t != nullptr, simdBackendSupported(be))
            << simdBackendName(be);
        if (t)
            EXPECT_EQ(t->backend, be);
    }
}

TEST(SimdDispatch, KernelTablesBitwiseIdenticalAcrossBackends)
{
    // THE dispatch-invariance guarantee: every backend's kernel table
    // runs the same IEEE op sequence, so forward images, activation
    // state, and backward gradients must match BIT FOR BIT across every
    // backend this CPU supports — on all five paper scenes (odd
    // resolution: partial tiles + lane tails).
    for (const SceneSpec &spec :
         {SceneSpec::bicycle(), SceneSpec::rubble(), SceneSpec::alameda(),
          SceneSpec::ithaca(), SceneSpec::bigCity()}) {
        GaussianModel m = generateGroundTruth(spec, 600);
        Camera cam = generateCameraPath(spec, 2, 97, 61)[0];
        auto subset = frustumCull(m, cam);
        Image d_image(97, 61, {0.3f, -0.2f, 0.1f});

        bool have_ref = false;
        RenderOutput ref_out;
        GaussianGrads ref_g;
        for (int b = 0; b < kNumSimdBackends; ++b) {
            const RenderKernels *kern =
                renderKernelsFor(static_cast<SimdBackend>(b));
            if (!kern)
                continue;
            RenderConfig cfg;
            cfg.kernels = kern;
            RenderOutput out = renderForward(m, cam, subset, cfg);
            GaussianGrads g;
            g.resize(m.size());
            renderBackward(m, cam, cfg, out, d_image, g);
            if (!have_ref) {
                ref_out = std::move(out);
                ref_g = std::move(g);
                have_ref = true;
                continue;
            }
            const char *name = kern->name;
            // Bitwise: float vectors compared as exact values.
            EXPECT_EQ(out.image.data(), ref_out.image.data())
                << spec.name << " image vs " << name;
            EXPECT_EQ(out.final_t, ref_out.final_t)
                << spec.name << " final_t vs " << name;
            EXPECT_EQ(out.n_contrib, ref_out.n_contrib)
                << spec.name << " n_contrib vs " << name;
            ASSERT_EQ(g.d_position.size(), ref_g.d_position.size());
            for (size_t i = 0; i < m.size(); ++i) {
                ASSERT_EQ(floatBits(g.d_position[i].x),
                          floatBits(ref_g.d_position[i].x))
                    << spec.name << " " << name << " row " << i;
                ASSERT_EQ(floatBits(g.d_position[i].y),
                          floatBits(ref_g.d_position[i].y))
                    << spec.name << " " << name << " row " << i;
                ASSERT_EQ(floatBits(g.d_opacity[i]),
                          floatBits(ref_g.d_opacity[i]))
                    << spec.name << " " << name << " row " << i;
                ASSERT_EQ(floatBits(g.d_log_scale[i].z),
                          floatBits(ref_g.d_log_scale[i].z))
                    << spec.name << " " << name << " row " << i;
                ASSERT_EQ(floatBits(g.d_sh[i * kShDim]),
                          floatBits(ref_g.d_sh[i * kShDim]))
                    << spec.name << " " << name << " row " << i;
            }
        }
        EXPECT_TRUE(have_ref);
    }
}

TEST(SimdCompositor, QualityHarnessPsnrDeltaUnder005Db)
{
    // The acceptance bound for the SIMD compositor: rendering the same
    // trainee against the same ground truth, PSNR moves by less than
    // 0.05 dB between the SIMD and scalar compositing paths.
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel gt_model = generateGroundTruth(spec, 1500);
    Camera cam = generateCameraPath(spec, 2, 160, 90)[0];
    RenderConfig scalar_cfg;
    scalar_cfg.use_simd = false;
    Image target = renderForward(gt_model, cam,
                                 frustumCull(gt_model, cam), scalar_cfg)
                       .image;

    GaussianModel trainee = makeTrainee(gt_model, 1500, 3);
    TwoPathRender r(trainee, cam);
    double psnr_simd = r.simd.image.psnr(target);
    double psnr_scalar = r.scalar.image.psnr(target);
    EXPECT_LT(std::abs(psnr_simd - psnr_scalar), 0.05)
        << "simd " << psnr_simd << " dB vs scalar " << psnr_scalar
        << " dB";
}

} // namespace
} // namespace clm
