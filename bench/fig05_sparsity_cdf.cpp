/**
 * @file
 * Figure 5: empirical CDF of per-view sparsity rho_i for the five scenes.
 * Prints the CDF series each curve would plot plus mean/max rho, and
 * verifies the paper's ordering (larger scenes are sparser).
 *
 * Also reports the rasterizer's tile-intersection reduction from the
 * exact circle-vs-tile-rect overlap test (render/binning.hpp) relative
 * to the classic square bound — the same per-view working-set story at
 * tile granularity.
 */

#include <iostream>

#include "common.hpp"
#include "math/stats.hpp"
#include "render/arena.hpp"
#include "render/culling.hpp"
#include "render/rasterizer.hpp"

using namespace clm;
using namespace clm::bench;

int
main()
{
    std::cout << "=== Figure 5: per-view sparsity CDFs ===\n\n";

    Table summary({"Scene", "Views", "Mean rho", "Max rho",
                   "Paper mean rho", "Paper max rho"});
    std::vector<std::pair<std::string, EmpiricalCdf>> cdfs;

    for (const SceneSpec &spec : SceneSpec::all()) {
        SimWorkload w = SimWorkload::load(spec);
        auto rho = w.sets.sparsities();
        EmpiricalCdf cdf(rho);
        summary.addRow({spec.name, std::to_string(rho.size()),
                        Table::fmt(cdf.mean(), 4),
                        Table::fmt(cdf.max(), 4),
                        Table::fmt(spec.mean_rho, 4),
                        Table::fmt(spec.max_rho, 4)});
        cdfs.emplace_back(spec.name, std::move(cdf));
    }
    summary.print(std::cout);

    std::cout << "\nCDF series (proportion of views with rho <= x):\n";
    Table series({"x (fraction of Gaussians)", "Bicycle", "Rubble",
                  "Alameda", "Ithaca", "BigCity"});
    for (int i = 0; i <= 12; ++i) {
        double x = 0.30 * i / 12.0;
        std::vector<std::string> row{Table::fmt(x, 3)};
        for (auto &[name, cdf] : cdfs)
            row.push_back(Table::fmt(cdf.at(x), 3));
        series.addRow(std::move(row));
    }
    series.print(std::cout);

    std::cout << "\nShape check: scenes order Bicycle > Rubble > Alameda "
                 "> Ithaca > BigCity in density, as in Figure 5.\n";

    // --- Exact tile binning: intersection reduction vs square bound ---
    std::cout << "\nTile-intersection reduction from exact "
                 "circle-vs-tile-rect binning\n(image-neutral: dropped "
                 "tiles provably cannot pass the alpha test):\n\n";
    Table isect({"Scene", "Square bound", "Exact overlap", "Reduction"});
    for (const char *name : {"Bicycle", "Ithaca"}) {
        SceneSpec spec = SceneSpec::byName(name);
        GaussianModel m = generateGroundTruth(spec, 6000);
        auto cams = generateCameraPath(spec, 3, 320, 180);
        size_t square = 0, exact = 0;
        RenderArena arena;
        for (const Camera &cam : cams) {
            auto subset = frustumCull(m, cam);
            RenderConfig cfg;
            cfg.exact_tile_bounds = false;
            square += renderForward(m, cam, subset, cfg, arena)
                          .totalTileIntersections();
            cfg.exact_tile_bounds = true;
            exact += renderForward(m, cam, subset, cfg, arena)
                         .totalTileIntersections();
        }
        double reduction =
            square > 0 ? 100.0 * (1.0 - double(exact) / square) : 0.0;
        isect.addRow({name, std::to_string(square),
                      std::to_string(exact),
                      Table::fmt(reduction, 1) + "%"});
    }
    isect.print(std::cout);
    return 0;
}
