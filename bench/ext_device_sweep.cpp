/**
 * @file
 * Extension bench: sensitivity of CLM and naive offloading to the
 * interconnect and the host. Sweeps PCIe bandwidth (0.25x-4x of PCIe 4.0
 * x16) and CPU-core count on the BigCity workload — a what-if analysis
 * the paper motivates (§6.1 picks two points of this space; §8 notes the
 * design ports to any DMA-capable GPU stack).
 */

#include <iostream>

#include "common.hpp"

using namespace clm;
using namespace clm::bench;

int
main()
{
    std::cout << "=== Extension: device-sensitivity sweep (BigCity) "
                 "===\n\n";
    SceneSpec scene = SceneSpec::bigCity();
    SimWorkload w = SimWorkload::load(scene, 0.5);
    DeviceSpec base = DeviceSpec::rtx4090();
    double n_target =
        maxTrainableGaussians(SystemKind::NaiveOffload, scene, base);

    auto run = [&](const DeviceSpec &dev, SystemKind sys) {
        PlannerConfig cfg;
        cfg.system = sys;
        return simulateThroughput(cfg, w, n_target, dev, 2)
            .images_per_sec;
    };

    std::cout << "PCIe bandwidth sweep (16 cores fixed):\n";
    Table pcie({"PCIe (GB/s)", "Naive (img/s)", "CLM (img/s)",
                "CLM speedup", "CLM vs full-bw CLM"});
    double clm_ref = 0;
    for (double mult : {4.0, 2.0, 1.0, 0.5, 0.25}) {
        DeviceSpec dev = base;
        dev.pcie_bw = base.pcie_bw * mult;
        double naive = run(dev, SystemKind::NaiveOffload);
        double cl = run(dev, SystemKind::Clm);
        if (mult == 4.0)
            clm_ref = cl;
        pcie.addRow({Table::fmt(dev.pcie_bw / 1e9, 0),
                     Table::fmt(naive, 1), Table::fmt(cl, 1),
                     Table::fmt(cl / naive, 2) + "x",
                     Table::fmt(100.0 * cl / clm_ref, 0) + "%"});
    }
    pcie.print(std::cout);

    std::cout << "\nCPU-core sweep (PCIe 4.0 fixed):\n";
    Table cores({"Cores", "Naive (img/s)", "CLM (img/s)", "CLM speedup"});
    for (int c : {4, 8, 16, 32, 64}) {
        DeviceSpec dev = base;
        dev.cpu_cores = c;
        cores.addRow({std::to_string(c),
                      Table::fmt(run(dev, SystemKind::NaiveOffload), 1),
                      Table::fmt(run(dev, SystemKind::Clm), 1),
                      Table::fmt(run(dev, SystemKind::Clm)
                                     / run(dev, SystemKind::NaiveOffload),
                                 2)
                          + "x"});
    }
    cores.print(std::cout);

    std::cout
        << "\nShape check: naive throughput degrades with both the link "
           "and the host (its critical path contains both), while CLM "
           "stays near its compute bound until the link gets very slow — "
           "the overlap headroom the paper's design creates.\n";
    return 0;
}
