/**
 * @file
 * Appendix A.1: quality of the stochastic-local-search TSP solver. The
 * paper claims the 1 ms SLS (nearest-neighbour + 2-opt/3-opt) reaches
 * the optimum on batch-sized metric instances; this harness compares the
 * SLS against exact Held-Karp DP across instance sizes and ablates the
 * solver stages (construction only / +2-opt / +3-opt kicks).
 */

#include <iostream>

#include "common.hpp"
#include "sched/tsp.hpp"

using namespace clm;
using namespace clm::bench;

namespace {

DistanceMatrix
sceneInstance(const SimWorkload &w, int n, uint64_t seed)
{
    auto ids = sampleBatches(w.cameras.size(), n, 1, seed)[0];
    std::vector<std::vector<uint32_t>> sets;
    for (int v : ids)
        sets.push_back(w.sets.sets[v]);
    return buildOverlapDistanceMatrix(sets);
}

} // namespace

int
main()
{
    std::cout << "=== Appendix A.1: TSP solver quality ===\n\n";
    SimWorkload w = SimWorkload::load(SceneSpec::rubble(), 0.5);

    Table t({"Batch size", "Instances", "NN-only gap", "SLS 1ms gap",
             "SLS optimal (of 8)", "Mean SLS time (ms)"});
    for (int n : {4, 8, 12, 16}) {
        double nn_gap = 0, sls_gap = 0, sls_ms = 0;
        int optimal = 0;
        const int kInstances = 8;
        for (uint64_t seed = 0; seed < kInstances; ++seed) {
            DistanceMatrix d = sceneInstance(w, n, 50 + seed);
            TspResult exact = solveTspExact(d);

            TspConfig nn_cfg;
            nn_cfg.time_limit_ms = 0.0;    // construction only
            nn_cfg.use_3opt = false;
            TspResult nn = solveTsp(d, nn_cfg);

            TspConfig sls_cfg;
            sls_cfg.time_limit_ms = 1.0;    // the paper's budget
            Timer timer;
            TspResult sls = solveTsp(d, sls_cfg);
            sls_ms += timer.millis();

            double base = std::max(exact.length, 1.0);
            nn_gap += (nn.length - exact.length) / base;
            sls_gap += (sls.length - exact.length) / base;
            if (sls.length <= exact.length * 1.001)
                ++optimal;
        }
        t.addRow({std::to_string(n), std::to_string(8),
                  Table::fmt(100.0 * nn_gap / kInstances, 2) + "%",
                  Table::fmt(100.0 * sls_gap / kInstances, 2) + "%",
                  std::to_string(optimal),
                  Table::fmt(sls_ms / kInstances, 2)});
    }
    t.print(std::cout);
    std::cout << "\nShape check (A.1): the 1 ms SLS closes the "
                 "nearest-neighbour gap and matches the Held-Karp "
                 "optimum on batch-sized metric instances.\n";
    return 0;
}
