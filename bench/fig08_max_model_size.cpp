/**
 * @file
 * Figure 8: maximum trainable model size before OOM, for the four systems
 * on both testbeds across the five scenes. Measured via the calibrated
 * memory model; paper-reported values printed alongside.
 */

#include <iostream>

#include "common.hpp"

using namespace clm;
using namespace clm::bench;

namespace {

/** Paper-reported values (millions of Gaussians) for comparison. */
struct PaperRow
{
    const char *scene;
    double values[4];    // baseline, enhanced, naive, clm
};

const PaperRow kPaper2080[] = {
    {"Bicycle", {6.5, 7.2, 11.6, 15.9}},
    {"Rubble", {6.5, 7.5, 13.3, 20.3}},
    {"Alameda", {7.1, 7.8, 12.7, 21.6}},
    {"Ithaca", {7.2, 7.9, 18.0, 35.6}},
    {"BigCity", {7.0, 7.7, 20.6, 47.0}},
};
const PaperRow kPaper4090[] = {
    {"Bicycle", {15.4, 17.5, 27.0, 37.6}},
    {"Rubble", {15.3, 17.8, 30.4, 45.2}},
    {"Alameda", {16.2, 17.9, 28.6, 42.8}},
    {"Ithaca", {16.4, 18.4, 40.0, 76.7}},
    {"BigCity", {15.3, 17.9, 46.0, 102.2}},
};

void
report(const DeviceSpec &dev, const PaperRow *paper)
{
    std::cout << "--- " << dev.name << " ("
              << Table::fmt(dev.gpu_memory_bytes / 1e9, 0) << " GB) ---\n";
    Table t({"Scene", "Baseline (M)", "Enhanced (M)", "Naive (M)",
             "CLM (M)", "CLM/Enhanced", "CLM/Naive", "Paper CLM (M)"});
    auto scenes = SceneSpec::all();
    for (size_t i = 0; i < scenes.size(); ++i) {
        const SceneSpec &s = scenes[i];
        double base =
            maxTrainableGaussians(SystemKind::Baseline, s, dev);
        double enh =
            maxTrainableGaussians(SystemKind::EnhancedBaseline, s, dev);
        double naive =
            maxTrainableGaussians(SystemKind::NaiveOffload, s, dev);
        double cl = maxTrainableGaussians(SystemKind::Clm, s, dev);
        t.addRow({s.name, fmtMillions(base), fmtMillions(enh),
                  fmtMillions(naive), fmtMillions(cl),
                  Table::fmt(cl / enh, 1) + "x",
                  Table::fmt(cl / naive, 1) + "x",
                  Table::fmt(paper[i].values[3], 1)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Figure 8: max trainable model size before OOM "
                 "===\n\n";
    report(DeviceSpec::rtx2080ti(), kPaper2080);
    report(DeviceSpec::rtx4090(), kPaper4090);
    std::cout << "Shape check: CLM > Naive > Enhanced > Baseline on every "
                 "scene/testbed; the gain is largest on BigCity "
                 "(paper: 6.1x/5.7x over enhanced).\n";
    return 0;
}
