/**
 * @file
 * Composed-serving micro-benchmark: requests/sec and p50/p99 latency of
 * the RenderService across the batch x shards grid {1,4} x {1,8} on a
 * city-scale synthetic model with a single render worker. The corners:
 *
 *   batch=1, shards=1  view-at-a-time unsharded serving (the baseline)
 *   batch=4, shards=1  fused multi-view batching alone (PR 4)
 *   batch=1, shards=8  frustum-routed sharding alone (PR 5)
 *   batch=4, shards=8  the COMPOSED pipeline (shard/shard_batch.hpp):
 *                      union routing, one fused cull/precompute/sort
 *                      per union shard, per-view k-way merges
 *
 * The headline number is composed_speedup — the composed corner's
 * req/s over the view-at-a-time unsharded baseline — since both
 * amortizations (routing prunes the working set, batching pays the
 * per-Gaussian stages once per batch instead of once per view) stack
 * on the same request stream.
 *
 * Before timing, every grid point re-renders probe batches offline and
 * verifies the served pipeline bitwise against sequential unsharded
 * renderForward via FNV-1a hashes over (image, final_t, n_contrib) —
 * under the dispatched kernel table AND the forced scalar table, so
 * the exactness claim is checked in SIMD and scalar flavors.
 *
 * Load model: N closed-loop synthetic clients walk the scene's camera
 * path from staggered offsets (the micro_serve/micro_shard protocol,
 * so the three JSONs are comparable).
 *
 * Prints a table and emits BENCH_compose.json (scripts/bench_compose.sh)
 * with the machine/build context block.
 *
 * Usage: micro_compose [--smoke] [--out FILE.json]
 */

#include <atomic>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "math/simd_backend.hpp"
#include "render/batch.hpp"
#include "render/culling.hpp"
#include "render/rasterizer.hpp"
#include "render/simd_kernels.hpp"
#include "serve/render_service.hpp"
#include "serve/snapshot.hpp"
#include "shard/router.hpp"
#include "shard/shard_batch.hpp"
#include "shard/sharded_snapshot.hpp"

using namespace clm;

namespace {

struct ComposeCase
{
    std::string name;
    std::string scene;
    size_t n_gaussians;
    int width, height;
    int sh_degree;
    int clients;
    int requests;         //!< Per grid point.
    int probe_batches;    //!< Offline batches checked for bit identity.
};

struct GridPoint
{
    int batch = 1;     //!< ServeConfig::max_batch.
    int shards = 1;    //!< 1 = unsharded SnapshotSlot service.
    double rps = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double mean_batch = 0;           //!< Realized requests/batch.
    double mean_batch_shards = 0;    //!< Realized union shards/batch.
    bool bitwise_identical = false;  //!< Dispatched AND scalar tables.
};

struct CaseResult
{
    ComposeCase cfg;
    int views = 0;
    size_t mean_subset = 0;
    std::vector<GridPoint> grid;

    const GridPoint *find(int batch, int shards) const
    {
        for (const GridPoint &p : grid)
            if (p.batch == batch && p.shards == shards)
                return &p;
        return nullptr;
    }
    /** Composed corner vs view-at-a-time unsharded baseline. */
    double composedSpeedup() const
    {
        const GridPoint *base = find(1, 1);
        const GridPoint *comp = find(4, 8);
        return base && comp && base->rps > 0 ? comp->rps / base->rps : 0;
    }
};

/** FNV-1a over the per-view outputs the exactness gate names. */
uint64_t
hashOutput(const RenderOutput &out)
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const void *data, size_t bytes) {
        const unsigned char *c = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < bytes; ++i) {
            h ^= c[i];
            h *= 1099511628211ull;
        }
    };
    mix(out.image.data().data(), out.image.data().size() * sizeof(float));
    mix(out.final_t.data(), out.final_t.size() * sizeof(float));
    mix(out.n_contrib.data(), out.n_contrib.size() * sizeof(uint32_t));
    return h;
}

/** Hash of the sequential unsharded reference frame for @p cam. */
uint64_t
referenceHash(const GaussianModel &model, const Camera &cam,
              const RenderConfig &render, RenderArena &arena)
{
    return hashOutput(
        renderForward(model, cam, frustumCull(model, cam), render, arena));
}

/** Fused unsharded batch vs per-view renderForward, one config. */
bool
verifyFusedUnsharded(const GaussianModel &model,
                     const std::vector<Camera> &cams,
                     const RenderConfig &render)
{
    BatchRenderArena ba;
    std::vector<std::vector<uint32_t>> subsets;
    frustumCullBatch(model, cams, ba.cull, subsets, render.parallel);
    renderForwardBatch(model, cams, subsets, render, ba);
    RenderArena ref;
    for (size_t v = 0; v < cams.size(); ++v)
        if (hashOutput(ba.views[v].out)
            != referenceHash(model, cams[v], render, ref))
            return false;
    return true;
}

/** Composed sharded batch vs per-view renderForward, one config. */
bool
verifyComposedSharded(const GaussianModel &model,
                      const ShardedSnapshot &snap,
                      const std::vector<Camera> &cams,
                      const RenderConfig &render)
{
    ShardRouter router(snap);
    ShardBatchRenderArena arena;
    renderForwardBatchSharded(snap, router, cams, render, arena,
                              snap.base->version);
    RenderArena ref;
    for (size_t v = 0; v < cams.size(); ++v)
        if (hashOutput(arena.views[v].out)
            != referenceHash(model, cams[v], render, ref))
            return false;
    return true;
}

/** Run the point's pipeline offline on probe batches under the
 *  dispatched kernel table and the forced scalar table; both must
 *  match their same-config sequential unsharded references. */
bool
verifyPoint(const GaussianModel &model, const ShardedSnapshot *snap,
            const std::vector<Camera> &path, int batch, int probe_batches,
            const RenderConfig &render)
{
    RenderConfig scalar = render;
    scalar.kernels = renderKernelsFor(SimdBackend::kScalar);
    for (int b = 0; b < probe_batches; ++b) {
        std::vector<Camera> cams;
        for (int i = 0; i < batch; ++i)
            cams.push_back(path[(b * batch + i) % path.size()]);
        for (const RenderConfig *cfg :
             {&render, static_cast<const RenderConfig *>(&scalar)}) {
            bool ok = snap != nullptr
                          ? verifyComposedSharded(model, *snap, cams, *cfg)
                          : verifyFusedUnsharded(model, cams, *cfg);
            if (!ok)
                return false;
        }
    }
    return true;
}

/** Closed-loop clients from staggered path offsets (micro_serve
 *  protocol); fills the point's throughput/latency/composition stats. */
void
driveLoad(RenderService &service, const std::vector<Camera> &path,
          int n_clients, int n_requests, GridPoint &p)
{
    std::atomic<int> budget{n_requests};
    Timer wall;
    std::vector<std::thread> clients;
    for (int c = 0; c < n_clients; ++c) {
        clients.emplace_back([&, c] {
            size_t pos = static_cast<size_t>(c) * path.size()
                       / static_cast<size_t>(n_clients);
            while (budget.fetch_sub(1) > 0) {
                service.submit(path[pos % path.size()]).get();
                ++pos;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    const double elapsed = wall.seconds();
    service.stop();    // join before reading stats (last batch counted)
    ServeStats stats = service.stats();

    p.rps = elapsed > 0 ? stats.requests / elapsed : 0.0;
    p.p50_ms = stats.p50_ms;
    p.p99_ms = stats.p99_ms;
    p.mean_batch = stats.mean_batch;
    p.mean_batch_shards = stats.mean_batch_shards;
}

CaseResult
runCase(const ComposeCase &c)
{
    SceneSpec spec = SceneSpec::byName(c.scene);
    GaussianModel model = generateSceneGaussians(spec, c.n_gaussians);
    const int n_views = 48;
    std::vector<Camera> path =
        generateCameraPath(spec, n_views, c.width, c.height);

    RenderConfig render;
    render.sh_degree = c.sh_degree;

    CaseResult r;
    r.cfg = c;
    r.views = n_views;

    // Warm-up + mean working-set size (context for the speedups).
    {
        RenderArena arena;
        size_t subset_sum = 0;
        const int reps = 4;
        for (int v = 0; v < reps; ++v) {
            auto s = frustumCull(model, path[v]);
            subset_sum += s.size();
            renderForward(model, path[v], s, render, arena);
        }
        r.mean_subset = subset_sum / reps;
    }

    auto base = std::make_shared<ModelSnapshot>();
    base->model = model;
    base->version = 1;
    base->param_hash = hashModelParams(model);

    SnapshotSlot flat_slot;
    flat_slot.publish(model, 0);

    for (int shards : {1, 8}) {
        // One sharded slot per K, shared by both batch points so the
        // partition/carve cost is paid once.
        ShardedSnapshotSlot sharded_slot(shards);
        if (shards > 1)
            sharded_slot.publish(base);
        std::shared_ptr<const ShardedSnapshot> snap =
            shards > 1 ? sharded_slot.acquire() : nullptr;

        for (int batch : {1, 4}) {
            GridPoint p;
            p.batch = batch;
            p.shards = shards;
            p.bitwise_identical =
                verifyPoint(model, snap.get(), path, batch,
                            c.probe_batches, render);

            ServeConfig cfg;
            cfg.workers = 1;
            cfg.max_batch = batch;
            cfg.render = render;
            if (shards > 1) {
                RenderService service(sharded_slot, cfg);
                driveLoad(service, path, c.clients, c.requests, p);
            } else {
                RenderService service(flat_slot, cfg);
                driveLoad(service, path, c.clients, c.requests, p);
            }
            r.grid.push_back(std::move(p));
        }
    }
    return r;
}

void
writeJson(const std::string &path, const std::vector<CaseResult> &results,
          bool smoke)
{
    std::ofstream f(path);
    f << "{\n  \"bench\": \"compose\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n";
    bench::writeJsonContext(f);
    f << "  \"cases\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const CaseResult &r = results[i];
        f << "    {\"name\": \"" << r.cfg.name << "\""
          << ", \"scene\": \"" << r.cfg.scene << "\""
          << ", \"gaussians\": " << r.cfg.n_gaussians
          << ", \"width\": " << r.cfg.width
          << ", \"height\": " << r.cfg.height
          << ", \"sh_degree\": " << r.cfg.sh_degree
          << ", \"views\": " << r.views
          << ", \"mean_subset\": " << r.mean_subset
          << ", \"clients\": " << r.cfg.clients
          << ", \"requests\": " << r.cfg.requests
          << ", \"composed_speedup\": " << r.composedSpeedup()
          << ",\n     \"grid\": [\n";
        for (size_t g = 0; g < r.grid.size(); ++g) {
            const GridPoint &p = r.grid[g];
            f << "       {\"batch\": " << p.batch
              << ", \"shards\": " << p.shards
              << ", \"rps\": " << p.rps
              << ", \"p50_ms\": " << p.p50_ms
              << ", \"p99_ms\": " << p.p99_ms
              << ", \"mean_batch\": " << p.mean_batch
              << ", \"mean_batch_shards\": " << p.mean_batch_shards
              << ", \"bitwise_identical\": "
              << (p.bitwise_identical ? "true" : "false") << "}"
              << (g + 1 < r.grid.size() ? "," : "") << "\n";
        }
        f << "     ]}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_compose.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else {
            std::cerr << "usage: micro_compose [--smoke] [--out FILE]\n";
            return 2;
        }
    }

    // City-scale models with camera paths that see only part of the
    // scene per view — the regime where routing bounds the working set
    // and batching amortizes what's left.
    std::vector<ComposeCase> cases;
    if (smoke) {
        cases = {{"smoke", "BigCity", 20000, 96, 54, 1, 4, 24, 1}};
    } else {
        cases = {{"small", "BigCity", 150000, 128, 72, 2, 8, 96, 2},
                 {"medium", "BigCity", 400000, 160, 90, 2, 8, 64, 1}};
    }

    std::cout << "=== micro_compose: batched x sharded serving grid ===\n"
              << bench::contextLine() << " (1 serve worker)\n\n";
    Table table({"Case", "Gaussians", "WxH", "Batch", "Shards", "Req/s",
                 "p50 ms", "p99 ms", "MeanB", "UShards", "Bitwise"});
    std::vector<CaseResult> results;
    bool all_identical = true;
    for (const ComposeCase &c : cases) {
        CaseResult r = runCase(c);
        for (const GridPoint &p : r.grid) {
            all_identical = all_identical && p.bitwise_identical;
            table.addRow(
                {r.cfg.name, std::to_string(r.cfg.n_gaussians),
                 std::to_string(c.width) + "x" + std::to_string(c.height),
                 std::to_string(p.batch), std::to_string(p.shards),
                 Table::fmt(p.rps, 1), Table::fmt(p.p50_ms, 1),
                 Table::fmt(p.p99_ms, 1), Table::fmt(p.mean_batch, 2),
                 Table::fmt(p.mean_batch_shards, 2),
                 p.bitwise_identical ? "yes" : "NO"});
        }
        std::cout << "[" << r.cfg.name << "] composed (batch=4, K=8) vs "
                  << "view-at-a-time unsharded: "
                  << Table::fmt(r.composedSpeedup(), 2) << "x req/s"
                  << " (subset " << r.mean_subset << ")\n";
        results.push_back(std::move(r));
    }
    std::cout << "\n";
    table.print(std::cout);

    writeJson(out_path, results, smoke);
    std::cout << "\nwrote " << out_path << "\n";
    if (!all_identical) {
        std::cerr << "FAIL: composed frames differ from sequential "
                     "unsharded renders\n";
        return 1;
    }
    return 0;
}
