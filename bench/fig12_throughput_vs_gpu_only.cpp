/**
 * @file
 * Figure 12: training throughput of CLM vs the GPU-only baseline and the
 * enhanced baseline (pre-rendering frustum culling). Model sizes are the
 * largest the plain baseline supports (Figure 8 memory model), as in the
 * paper. The two shapes to reproduce: CLM can *beat* the plain baseline
 * on sparse scenes (culling wins exceed offloading costs), and CLM
 * retains a large fraction of the enhanced baseline's throughput —
 * more on the slower GPU.
 */

#include <iostream>

#include "common.hpp"

using namespace clm;
using namespace clm::bench;

namespace {

struct PaperRow
{
    const char *scene;
    double baseline, enhanced, clm;
};

const PaperRow kPaper2080[] = {
    {"Bicycle", 4.2, 4.8, 4.3},    {"Rubble", 6.7, 7.3, 7.0},
    {"Alameda", 13.5, 15.0, 13.6}, {"Ithaca", 25.3, 40.3, 39.0},
    {"BigCity", 37.5, 88.5, 75.7},
};
const PaperRow kPaper4090[] = {
    {"Bicycle", 5.3, 7.1, 6.4},    {"Rubble", 7.4, 10.9, 9.4},
    {"Alameda", 11.1, 20.2, 13.8}, {"Ithaca", 26.4, 57.2, 31.4},
    {"BigCity", 35.8, 131.9, 88.3},
};

void
report(const DeviceSpec &dev, const PaperRow *paper)
{
    std::cout << "--- " << dev.name << " ---\n";
    Table t({"Scene", "Model (M)", "Baseline", "Enhanced", "CLM",
             "CLM/Enhanced", "Paper CLM/Enh"});
    auto scenes = SceneSpec::all();
    for (size_t i = 0; i < scenes.size(); ++i) {
        const SceneSpec &s = scenes[i];
        SimWorkload w = SimWorkload::load(s);
        double n_target =
            maxTrainableGaussians(SystemKind::Baseline, s, dev);

        auto run = [&](SystemKind sys) {
            PlannerConfig cfg;
            cfg.system = sys;
            return simulateThroughput(cfg, w, n_target, dev)
                .images_per_sec;
        };
        double base = run(SystemKind::Baseline);
        double enh = run(SystemKind::EnhancedBaseline);
        double cl = run(SystemKind::Clm);
        t.addRow({s.name, fmtMillions(n_target), Table::fmt(base, 1),
                  Table::fmt(enh, 1), Table::fmt(cl, 1),
                  Table::fmt(100.0 * cl / enh, 0) + "%",
                  Table::fmt(100.0 * paper[i].clm / paper[i].enhanced, 0)
                      + "%"});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Figure 12: CLM vs GPU-only baselines ===\n\n";
    report(DeviceSpec::rtx2080ti(), kPaper2080);
    report(DeviceSpec::rtx4090(), kPaper4090);
    std::cout << "Shape check: enhanced > baseline everywhere; CLM "
                 "retains most of the enhanced baseline's throughput, "
                 "more on the 2080 Ti (paper: 86-97%) than on the 4090 "
                 "(paper: 55-90%), and CLM beats the *plain* baseline on "
                 "sparse scenes (BigCity).\n";
    return 0;
}
