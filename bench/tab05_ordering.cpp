/**
 * @file
 * Table 5: (a) training throughput and (b) CPU Adam trailing time under
 * the four ordering strategies, on the RTX 4090 at the largest
 * naive-offloading model size — the paper's ordering-strategy ablation.
 */

#include <iostream>

#include "common.hpp"

using namespace clm;
using namespace clm::bench;

int
main()
{
    std::cout << "=== Table 5: ordering-strategy ablation (RTX 4090) "
                 "===\n\n";
    DeviceSpec dev = DeviceSpec::rtx4090();
    auto strategies = allOrderingStrategies();

    Table thpt({"Method", "Bicycle", "Rubble", "Alameda", "Ithaca",
                "BigCity"});
    Table trail({"Method", "Bicycle", "Rubble", "Alameda", "Ithaca",
                 "BigCity"});

    std::vector<std::vector<double>> thpt_vals(
        strategies.size()), trail_vals(strategies.size());

    for (const SceneSpec &s : SceneSpec::all()) {
        SimWorkload w = SimWorkload::load(s);
        double n_target =
            maxTrainableGaussians(SystemKind::NaiveOffload, s, dev);
        for (size_t k = 0; k < strategies.size(); ++k) {
            PlannerConfig cfg;
            cfg.system = SystemKind::Clm;
            cfg.ordering = strategies[k];
            ThroughputResult r =
                simulateThroughput(cfg, w, n_target, dev);
            thpt_vals[k].push_back(r.images_per_sec);
            trail_vals[k].push_back(r.adam_trailing_seconds * 1e3);
        }
    }

    for (size_t k = 0; k < strategies.size(); ++k) {
        std::vector<std::string> trow{orderingName(strategies[k])};
        std::vector<std::string> lrow{orderingName(strategies[k])};
        for (double v : thpt_vals[k])
            trow.push_back(Table::fmt(v, 2));
        for (double v : trail_vals[k])
            lrow.push_back(Table::fmt(v, 1));
        thpt.addRow(std::move(trow));
        trail.addRow(std::move(lrow));
    }

    std::cout << "(a) Training throughput (img/s):\n";
    thpt.print(std::cout);
    std::cout << "\n(b) CPU Adam trailing time (ms):\n";
    trail.print(std::cout);
    std::cout
        << "\nShape check (Table 5): the informed strategies (TSP, GS "
           "Count) lead in throughput; GS Count tends to minimize "
           "trailing time while TSP minimizes communication volume; "
           "BigCity shows the least variation across orders.\n";
    return 0;
}
