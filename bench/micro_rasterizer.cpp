/**
 * @file
 * Rasterizer micro-benchmark: forward and backward throughput of the tile
 * rasterizer (the system-wide hot path — every trainer step runs it) at
 * several subset sizes and resolutions on the default synthetic scene.
 *
 * Prints a table and emits a machine-readable BENCH_rasterizer.json so the
 * perf trajectory of the render core is tracked across PRs
 * (scripts/bench_rasterizer.sh).
 *
 * Usage: micro_rasterizer [--smoke] [--out FILE.json]
 *   --smoke  one tiny config, single rep (CI: "builds and runs" gate only)
 *   --out    JSON output path (default BENCH_rasterizer.json in $PWD)
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "render/arena.hpp"
#include "render/culling.hpp"
#include "render/rasterizer.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace clm;

namespace {

struct BenchCase
{
    std::string name;
    size_t n_gaussians;
    int width, height;
};

struct BenchResult
{
    BenchCase cfg;
    size_t subset = 0;
    size_t intersections = 0;
    int reps = 0;
    double fwd_ms = 0;          //!< Mean forward milliseconds per frame.
    double bwd_ms = 0;          //!< Mean backward milliseconds per frame.
    double fwd_gauss_per_s = 0; //!< Subset Gaussians projected+composited /s.
    double mpix_per_s = 0;      //!< Forward megapixels per second.
};

/** Run one config; reps adapt to hit ~min_seconds of forward time. */
BenchResult
runCase(const BenchCase &cfg, double min_seconds, int max_reps)
{
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel m = generateGroundTruth(spec, cfg.n_gaussians);
    Camera cam = generateCameraPath(spec, 2, cfg.width, cfg.height)[0];
    std::vector<uint32_t> subset = frustumCull(m, cam);

    RenderConfig render;
    render.sh_degree = 3;

    BenchResult r;
    r.cfg = cfg;
    r.subset = subset.size();

    // Hot-loop configuration: one arena reused across frames, exactly
    // like the trainers drive the rasterizer.
    RenderArena arena;

    // Warm-up (thread pool spin-up, arena growth) + activation stats.
    {
        const RenderOutput &out = renderForward(m, cam, subset, render,
                                                arena);
        r.intersections = out.totalTileIntersections();
    }

    Image d_image(cfg.width, cfg.height, {0.3f, -0.2f, 0.1f});
    GaussianGrads grads;
    grads.resize(m.size());

    double fwd_s = 0, bwd_s = 0;
    int reps = 0;
    while (reps == 0 || (reps < max_reps && fwd_s < min_seconds)) {
        Timer t;
        const RenderOutput &out = renderForward(m, cam, subset, render,
                                                arena);
        fwd_s += t.seconds();
        t.reset();
        renderBackward(m, cam, render, out, d_image, grads, arena);
        bwd_s += t.seconds();
        ++reps;
    }
    r.reps = reps;
    r.fwd_ms = fwd_s * 1e3 / reps;
    r.bwd_ms = bwd_s * 1e3 / reps;
    r.fwd_gauss_per_s = double(r.subset) * reps / fwd_s;
    r.mpix_per_s =
        double(cfg.width) * cfg.height * reps / fwd_s / 1e6;
    return r;
}

void
writeJson(const std::string &path, const std::vector<BenchResult> &results,
          bool smoke)
{
    std::ofstream f(path);
    f << "{\n  \"bench\": \"rasterizer\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n";
    bench::writeJsonContext(f);
    f << "  \"cases\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        f << "    {\"name\": \"" << r.cfg.name << "\""
          << ", \"gaussians\": " << r.cfg.n_gaussians
          << ", \"subset\": " << r.subset
          << ", \"width\": " << r.cfg.width
          << ", \"height\": " << r.cfg.height
          << ", \"reps\": " << r.reps
          << ", \"intersections\": " << r.intersections
          << ", \"fwd_ms\": " << r.fwd_ms
          << ", \"bwd_ms\": " << r.bwd_ms
          << ", \"fwd_gaussians_per_s\": " << r.fwd_gauss_per_s
          << ", \"fwd_mpix_per_s\": " << r.mpix_per_s << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_rasterizer.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else {
            std::cerr << "usage: micro_rasterizer [--smoke] [--out FILE]\n";
            return 2;
        }
    }

    std::vector<BenchCase> cases;
    double min_seconds;
    int max_reps;
    if (smoke) {
        cases = {{"smoke", 2000, 160, 90}};
        min_seconds = 0.0;    // single rep: builds-and-runs gate only
        max_reps = 1;
    } else {
        cases = {{"small", 4000, 320, 180},
                 {"medium", 16000, 640, 360},
                 {"large", 64000, 960, 540}};
        min_seconds = 1.0;
        max_reps = 50;
    }

    std::cout << "=== micro_rasterizer: tile rasterizer throughput ===\n\n";
    Table table({"Case", "Subset", "WxH", "Isects", "Fwd ms", "Bwd ms",
                 "Fwd MGauss/s", "Fwd Mpix/s", "Reps"});
    std::vector<BenchResult> results;
    for (const BenchCase &c : cases) {
        BenchResult r = runCase(c, min_seconds, max_reps);
        table.addRow({r.cfg.name, std::to_string(r.subset),
                      std::to_string(c.width) + "x"
                          + std::to_string(c.height),
                      std::to_string(r.intersections),
                      Table::fmt(r.fwd_ms, 3), Table::fmt(r.bwd_ms, 3),
                      Table::fmt(r.fwd_gauss_per_s / 1e6, 3),
                      Table::fmt(r.mpix_per_s, 2),
                      std::to_string(r.reps)});
        results.push_back(r);
    }
    table.print(std::cout);

    writeJson(out_path, results, smoke);
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
