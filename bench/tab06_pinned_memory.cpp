/**
 * @file
 * Table 6: pinned host memory used by CLM at the maximum model size of
 * each scene/testbed. Only parameter and gradient records are pinned
 * (optimizer state stays pageable), so usage remains a modest fraction
 * of host RAM.
 */

#include <iostream>

#include "common.hpp"
#include "offload/pinned_pool.hpp"

using namespace clm;
using namespace clm::bench;

int
main()
{
    std::cout << "=== Table 6: CLM pinned memory usage ===\n\n";
    Table t({"Testbed", "Scene", "Max model (M)", "Pinned (GB)",
             "Host RAM (GB)", "Share of RAM"});
    for (auto dev : {DeviceSpec::rtx2080ti(), DeviceSpec::rtx4090()}) {
        for (const SceneSpec &s : SceneSpec::all()) {
            double n = maxTrainableGaussians(SystemKind::Clm, s, dev);
            double pinned = static_cast<double>(
                PinnedLayout::totalBytes(static_cast<size_t>(n)));
            t.addRow({dev.name, s.name, fmtMillions(n),
                      Table::fmt(pinned / 1e9, 1),
                      Table::fmt(dev.host_memory_bytes / 1e9, 0),
                      Table::fmt(100.0 * pinned / dev.host_memory_bytes,
                                 0)
                          + "%"});
        }
    }
    t.print(std::cout);
    std::cout << "\nShape check (Table 6): pinned usage scales with the "
                 "model and stays well under half of host RAM (paper: "
                 "<10% on the 256 GB testbed, <30% on the 128 GB one).\n";
    return 0;
}
