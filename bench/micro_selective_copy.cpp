/**
 * @file
 * Microbenchmark for the selective loading / gradient offloading kernels
 * of §5.2-§5.3 (google-benchmark): batched gather from padded pinned
 * records vs naive per-record copy calls (the cudaMemcpyAsync-per-
 * Gaussian strawman the paper rejects), plus the RMW gradient scatter
 * and the GPU-side cache copy.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>

#include "math/rng.hpp"
#include "offload/cache_planner.hpp"
#include "offload/pinned_pool.hpp"
#include "offload/selective_copy.hpp"
#include "render/culling.hpp"

namespace clm {
namespace {

constexpr size_t kPoolSize = 1 << 16;

/** Sparse ascending index set covering `frac` of the pool. */
std::vector<uint32_t>
sparseIndices(double frac, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> idx;
    for (uint32_t g = 0; g < kPoolSize; ++g)
        if (rng.uniform() < frac)
            idx.push_back(g);
    return idx;
}

void
BM_GatherBatched(benchmark::State &state)
{
    PinnedPool pool(kPoolSize);
    auto idx = sparseIndices(0.05, 1);
    DeviceBuffer buf(idx.size());
    buf.bind(idx);
    for (auto _ : state) {
        gatherParams(pool, buf, idx);
        benchmark::DoNotOptimize(buf.paramRow(0));
    }
    state.SetBytesProcessed(state.iterations() * idx.size()
                            * kNonCriticalBytesPerGaussian);
}
BENCHMARK(BM_GatherBatched);

void
BM_GatherPerRecordCalls(benchmark::State &state)
{
    // The strawman: one "transfer call" per Gaussian, modeled as an
    // individually dispatched copy through a volatile call boundary.
    PinnedPool pool(kPoolSize);
    auto idx = sparseIndices(0.05, 1);
    DeviceBuffer buf(idx.size());
    buf.bind(idx);
    // One dispatched copy per Gaussian with a per-call row lookup —
    // the cudaMemcpyAsync-per-record pattern §5.2 rejects.
    using CopyFn = void (*)(const float *, float *);
    static volatile CopyFn copy_one = +[](const float *src, float *dst) {
        std::memcpy(dst, src, kNonCriticalDim * sizeof(float));
    };
    for (auto _ : state) {
        for (uint32_t g : idx) {
            size_t r = buf.boundRow(g);
            copy_one(pool.paramRecord(g), buf.paramRow(r));
        }
        benchmark::DoNotOptimize(buf.paramRow(0));
    }
    state.SetBytesProcessed(state.iterations() * idx.size()
                            * kNonCriticalBytesPerGaussian);
}
BENCHMARK(BM_GatherPerRecordCalls);

void
BM_ScatterAccumulateGrads(benchmark::State &state)
{
    PinnedPool pool(kPoolSize);
    auto idx = sparseIndices(0.05, 2);
    DeviceBuffer buf(idx.size());
    buf.bind(idx);
    buf.zeroGrads();
    for (auto _ : state) {
        scatterAccumulateGrads(buf, pool, idx);
        benchmark::DoNotOptimize(pool.gradRecord(idx[0]));
    }
    state.SetBytesProcessed(state.iterations() * idx.size()
                            * kGradBytesPerGaussian * 2);    // RMW
}
BENCHMARK(BM_ScatterAccumulateGrads);

void
BM_CachedCopy(benchmark::State &state)
{
    PinnedPool pool(kPoolSize);
    auto idx = sparseIndices(0.05, 3);
    DeviceBuffer a(idx.size()), b(idx.size());
    a.bind(idx);
    b.bind(idx);
    gatherParams(pool, a, idx);
    for (auto _ : state) {
        copyCachedParams(a, b, idx);
        benchmark::DoNotOptimize(b.paramRow(0));
    }
    state.SetBytesProcessed(state.iterations() * idx.size()
                            * kNonCriticalBytesPerGaussian);
}
BENCHMARK(BM_CachedCopy);

void
BM_CullPacked(benchmark::State &state)
{
    // Supporting micro: the pre-rendering culling sweep over the packed
    // critical store (§5.1) — the kernel CLM keeps resident-only.
    const size_t n = static_cast<size_t>(state.range(0));
    Rng rng(4);
    std::vector<float> critical(n * kCriticalDim);
    for (size_t i = 0; i < n; ++i) {
        float *rec = &critical[i * kCriticalDim];
        Vec3 p = rng.uniformInBox({-50, -50, -50}, {50, 50, 50});
        rec[0] = p.x;
        rec[1] = p.y;
        rec[2] = p.z;
        rec[3] = rec[4] = rec[5] = std::log(0.5f);
        rec[6] = 1;
    }
    Camera cam = Camera::lookAt({0, 0, -60}, {0, 0, 0}, {0, 1, 0}, 640,
                                480, 1.0f, 0.1f, 200.0f);
    for (auto _ : state) {
        auto sel = frustumCullPacked(critical.data(), n, cam);
        benchmark::DoNotOptimize(sel.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CullPacked)->Arg(1 << 14)->Arg(1 << 17);

} // namespace
} // namespace clm

BENCHMARK_MAIN();
