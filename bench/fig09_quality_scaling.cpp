/**
 * @file
 * Figure 9: reconstruction quality (PSNR) vs model size on BigCity,
 * trained with CLM. Scaled to a CPU-feasible profile: a procedural
 * BigCity ground truth is rendered to images, then models of doubling
 * capacity are trained with the full CLM pipeline. The paper's shape to
 * reproduce: PSNR increases monotonically with model size; the largest
 * (CLM-only) sizes beat the biggest model the GPU-only baseline fits.
 */

#include <iostream>

#include "common.hpp"
#include "train/quality_harness.hpp"

using namespace clm;
using namespace clm::bench;

int
main()
{
    std::cout << "=== Figure 9: PSNR vs model size (BigCity, CLM) "
                 "===\n\n";

    SceneSpec spec = SceneSpec::bigCity();
    // CPU-feasible training profile; the geometry/cameras keep BigCity's
    // structure (city blocks, aerial sweep).
    spec.train = {4000, 24, 72, 40};

    QualityConfig qc;
    qc.gt_gaussians = 4000;
    // Doubling sizes, mirroring the paper's 6.4M..102.2M sweep. The
    // third entry plays the role of the baseline's 15.3M upper limit.
    qc.model_sizes = {250, 500, 1000, 2000, 4000};
    qc.steps = 12;
    qc.system = SystemKind::Clm;
    qc.train.batch_size = 8;
    qc.train.render.sh_degree = 1;
    qc.train.loss.ssim_window = 5;
    qc.train.planner.tsp.time_limit_ms = 0.5;

    auto points = runQualitySweep(spec, qc);

    const size_t baseline_limit_index = 2;    // analog of 15.3M
    Table t({"Model size", "PSNR initial (dB)", "PSNR final (dB)",
             "Loss final", "Role"});
    for (size_t i = 0; i < points.size(); ++i) {
        const QualityPoint &p = points[i];
        t.addRow({std::to_string(p.model_size),
                  Table::fmt(p.psnr_initial, 2),
                  Table::fmt(p.psnr_final, 2),
                  Table::fmt(p.loss_final, 4),
                  i == baseline_limit_index
                      ? "baseline upper limit"
                      : (i > baseline_limit_index ? "CLM only" : "")});
    }
    t.print(std::cout);

    double baseline_best = points[baseline_limit_index].psnr_final;
    double clm_best = points.back().psnr_final;
    std::cout << "\nBaseline-limit PSNR: " << Table::fmt(baseline_best, 2)
              << " dB; largest CLM model: " << Table::fmt(clm_best, 2)
              << " dB (paper: 23.93 -> 25.15 dB going 15.3M -> 102.2M)."
              << "\nShape check: PSNR grows monotonically with model "
                 "size; sizes beyond the baseline limit keep improving."
              << std::endl;
    return 0;
}
