/**
 * @file
 * Figure 13: per-batch runtime decomposition for Rubble and BigCity on
 * the RTX 4090, CLM vs naive offloading, normalized to the naive total.
 * Naive decomposes into communication / computation / non-overlapped CPU
 * Adam; CLM into scheduling / overlapped pipeline / non-overlapped Adam.
 */

#include <iostream>

#include "common.hpp"

using namespace clm;
using namespace clm::bench;

namespace {

void
report(const SceneSpec &scene)
{
    DeviceSpec dev = DeviceSpec::rtx4090();
    SimWorkload w = SimWorkload::load(scene);
    double n_target =
        maxTrainableGaussians(SystemKind::NaiveOffload, scene, dev);

    PlannerConfig naive_cfg;
    naive_cfg.system = SystemKind::NaiveOffload;
    PlannerConfig clm_cfg;
    clm_cfg.system = SystemKind::Clm;
    ThroughputResult rn = simulateThroughput(naive_cfg, w, n_target, dev);
    ThroughputResult rc = simulateThroughput(clm_cfg, w, n_target, dev);

    double norm = rn.mean_batch_seconds;
    std::cout << "--- " << scene.name << " at " << fmtMillions(n_target)
              << "M Gaussians (times normalized to naive total = 1.00) "
                 "---\n";
    Table t({"System", "Total", "Compute", "Communication",
             "Scheduling", "Non-overlapped CPU Adam"});
    auto add = [&](const char *name, const ThroughputResult &r,
                   bool pipelined) {
        const RuntimeBreakdown &b = r.breakdown;
        t.addRow({name, Table::fmt(r.mean_batch_seconds / norm, 2),
                  Table::fmt(b.compute / norm, 2),
                  pipelined
                      ? Table::fmt(b.communication / norm, 2)
                            + " (overlapped)"
                      : Table::fmt(b.communication / norm, 2),
                  Table::fmt(b.scheduling / norm, 3),
                  Table::fmt(b.trailing_adam / norm, 2)});
    };
    add("Naive Offloading", rn, false);
    add("CLM", rc, true);
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Figure 13: runtime decomposition (RTX 4090) "
                 "===\n\n";
    report(SceneSpec::rubble());
    report(SceneSpec::bigCity());
    std::cout
        << "Shape check: naive spends >50% of the batch on "
           "communication + CPU Adam; CLM's total approaches its "
           "compute time (communication hidden), and its scheduling "
           "cost is marginal.\n";
    return 0;
}
