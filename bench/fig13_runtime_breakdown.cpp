/**
 * @file
 * Figure 13: per-batch runtime decomposition for Rubble and BigCity on
 * the RTX 4090, CLM vs naive offloading, normalized to the naive total.
 * Naive decomposes into communication / computation / non-overlapped CPU
 * Adam; CLM into scheduling / overlapped pipeline / non-overlapped Adam.
 *
 * Two sources back the figure: the calibrated event simulator at paper
 * scale, and *measured* stage timers — the TransferEngine stamps every
 * gather / cached copy / compute / scatter / finalize while the
 * functional trainers run, and sim/metrics decomposes the record with
 * the same rules, so no stage time is recomputed by the bench.
 */

#include <iostream>

#include "common.hpp"
#include "train/clm_trainer.hpp"
#include "train/naive_offload_trainer.hpp"
#include "train/quality_harness.hpp"

using namespace clm;
using namespace clm::bench;

namespace {

void
report(const SceneSpec &scene)
{
    DeviceSpec dev = DeviceSpec::rtx4090();
    SimWorkload w = SimWorkload::load(scene);
    double n_target =
        maxTrainableGaussians(SystemKind::NaiveOffload, scene, dev);

    PlannerConfig naive_cfg;
    naive_cfg.system = SystemKind::NaiveOffload;
    PlannerConfig clm_cfg;
    clm_cfg.system = SystemKind::Clm;
    ThroughputResult rn = simulateThroughput(naive_cfg, w, n_target, dev);
    ThroughputResult rc = simulateThroughput(clm_cfg, w, n_target, dev);

    double norm = rn.mean_batch_seconds;
    std::cout << "--- " << scene.name << " at " << fmtMillions(n_target)
              << "M Gaussians (times normalized to naive total = 1.00) "
                 "---\n";
    Table t({"System", "Total", "Compute", "Communication",
             "Scheduling", "Non-overlapped CPU Adam"});
    auto add = [&](const char *name, const ThroughputResult &r,
                   bool pipelined) {
        const RuntimeBreakdown &b = r.breakdown;
        t.addRow({name, Table::fmt(r.mean_batch_seconds / norm, 2),
                  Table::fmt(b.compute / norm, 2),
                  pipelined
                      ? Table::fmt(b.communication / norm, 2)
                            + " (overlapped)"
                      : Table::fmt(b.communication / norm, 2),
                  Table::fmt(b.scheduling / norm, 3),
                  Table::fmt(b.trailing_adam / norm, 2)});
    };
    add("Naive Offloading", rn, false);
    add("CLM", rc, true);
    t.print(std::cout);
    std::cout << "\n";
}

/** Measured decomposition from the functional trainers' stage timers. */
void
reportMeasured()
{
    SceneSpec spec = SceneSpec::rubble();
    spec.train = {1200, 8, 48, 48};
    GaussianModel gt = generateGroundTruth(spec, 1200);
    std::vector<Camera> cameras = trainCameras(spec);
    TrainConfig cfg;
    cfg.batch_size = 4;
    cfg.render.sh_degree = 1;
    cfg.loss.ssim_window = 5;
    cfg.planner.tsp.time_limit_ms = 0.5;
    std::vector<Image> gt_images =
        renderGroundTruth(gt, cameras, cfg.render);

    // CLM runs the full pipeline including the dedicated Adam thread
    // (§5.4); naive keeps Figure 3's synchronous, non-overlapped Adam.
    TrainConfig clm_cfg = cfg;
    clm_cfg.async_adam = true;
    ClmTrainer clm_t(makeTrainee(gt, 900, 3), cameras, gt_images,
                     clm_cfg);
    NaiveOffloadTrainer naive_t(makeTrainee(gt, 900, 3), cameras,
                                gt_images, cfg);
    clm_t.trainSteps(4);
    naive_t.trainSteps(4);

    RuntimeBreakdown bn = computeBreakdown(naive_t.stageTimings());
    RuntimeBreakdown bc = computeBreakdown(clm_t.stageTimings());
    double norm = bn.total;

    std::cout << "--- Measured (functional trainers, CPU-scale profile; "
                 "stage timers from the TransferEngine,\n    normalized "
                 "to naive total = 1.00) ---\n";
    Table t({"System", "Total", "Compute", "Communication", "Scheduling",
             "Overlapped Adam", "Non-overlapped CPU Adam"});
    auto add = [&](const char *name, const RuntimeBreakdown &b,
                   bool pipelined) {
        t.addRow({name, Table::fmt(b.total / norm, 2),
                  Table::fmt(b.compute / norm, 2),
                  pipelined ? Table::fmt(b.communication / norm, 2)
                                  + " (overlapped)"
                            : Table::fmt(b.communication / norm, 2),
                  Table::fmt(b.scheduling / norm, 3),
                  Table::fmt(b.overlapped_adam / norm, 3),
                  Table::fmt(b.trailing_adam / norm, 3)});
    };
    add("Naive Offloading", bn, false);
    add("CLM", bc, true);
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Figure 13: runtime decomposition (RTX 4090) "
                 "===\n\n";
    report(SceneSpec::rubble());
    report(SceneSpec::bigCity());
    reportMeasured();
    std::cout
        << "Shape check: naive spends >50% of the batch on "
           "communication + CPU Adam; CLM's total approaches its "
           "compute time (communication hidden), and its scheduling "
           "cost is marginal. The measured table shows the same shape "
           "from real stage timers: CLM's staging time overlaps compute "
           "instead of extending the total.\n";
    return 0;
}
