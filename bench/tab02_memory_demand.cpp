/**
 * @file
 * Table 2: number of Gaussians and minimum training-memory demand per
 * scene. Reproduces the paper's 59-param x 4-float x 4-byte model-state
 * estimate plus the activation estimate, and flags which scenes exceed a
 * 24 GB RTX 4090.
 */

#include <iostream>

#include "common.hpp"

using namespace clm;
using namespace clm::bench;

int
main()
{
    std::cout << "=== Table 2: memory demand of 3DGS training ===\n\n";
    Table t({"Scene", "Resolution", "#Gaussians (M)", "Model state (GB)",
             "Total demand (GB)", "Paper (GB)", "Fits 24GB 4090?"});

    DeviceSpec dev = DeviceSpec::rtx4090();
    for (const SceneSpec &s : SceneSpec::all()) {
        double n = s.paper_gaussians_m * 1e6;
        double model_state = modelStateDemandBytes(n);
        MemoryBreakdown demand = gpuMemoryDemand(
            SystemKind::EnhancedBaseline, s, n, dev);
        t.addRow({
            s.name,
            std::to_string(s.paper_width) + "x"
                + std::to_string(s.paper_height),
            Table::fmt(s.paper_gaussians_m, 0),
            Table::fmt(model_state / 1e9, 1),
            Table::fmt(demand.total() / 1e9, 1),
            Table::fmt(s.paper_memory_gb, 0),
            demand.total() <= dev.gpu_memory_bytes ? "yes" : "NO",
        });
    }
    t.print(std::cout);
    std::cout << "\nAll scenes except Bicycle exceed a single 24 GB GPU, "
                 "matching the paper's motivation (Table 2).\n";
    return 0;
}
