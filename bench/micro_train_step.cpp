/**
 * @file
 * End-to-end train-step micro-benchmark: one full optimization step
 * (frustum cull -> project -> bin -> composite -> loss forward -> loss
 * backward -> rasterizer backward -> subset Adam) on the default
 * synthetic scene, with a per-stage wall-clock breakdown — so perf PRs
 * see the whole step's trajectory, not just the rasterizer's.
 *
 * Also times the retained brute-force loss reference
 * (computeLossReference) once per case and reports the SAT-loss
 * speedup over it.
 *
 * Prints a table and emits machine-readable BENCH_train_step.json
 * (scripts/bench_train_step.sh) including the machine/build context
 * block, so recorded points are comparable across runs.
 *
 * Usage: micro_train_step [--smoke] [--no-ref] [--out FILE.json]
 *   --smoke   one tiny config, single rep (CI "builds and runs" gate)
 *   --no-ref  skip the brute-force loss baseline timing
 *   --out     JSON output path (default BENCH_train_step.json in $PWD)
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "gaussian/adam.hpp"
#include "render/arena.hpp"
#include "render/culling.hpp"
#include "render/loss.hpp"
#include "render/rasterizer.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"
#include "train/quality_harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace clm;

namespace {

struct BenchCase
{
    std::string name;
    size_t n_gaussians;
    int width, height;
};

struct BenchResult
{
    BenchCase cfg;
    size_t subset = 0;
    int reps = 0;
    double loss = 0;    //!< Loss of the last step (sanity).
    // Mean milliseconds per step, by stage.
    double cull_ms = 0;
    double project_ms = 0;
    double bin_ms = 0;
    double composite_ms = 0;
    double raster_bwd_ms = 0;
    double loss_fwd_ms = 0;
    double loss_bwd_ms = 0;
    double adam_ms = 0;
    double step_ms = 0;    //!< Whole measured step (incl. grad zeroing).
    // Brute-force loss baseline (one call; 0 when skipped).
    double loss_ref_fwd_ms = 0;
    double loss_ref_bwd_ms = 0;

    double lossSpeedup() const
    {
        double sat = loss_fwd_ms + loss_bwd_ms;
        double ref = loss_ref_fwd_ms + loss_ref_bwd_ms;
        return sat > 0 && ref > 0 ? ref / sat : 0.0;
    }
};

/** Run one config; reps adapt to hit ~min_seconds of stepping. */
BenchResult
runCase(const BenchCase &cfg, double min_seconds, int max_reps,
        bool with_ref)
{
    SceneSpec spec = SceneSpec::bicycle();
    GaussianModel gt_model = generateGroundTruth(spec, cfg.n_gaussians);
    Camera cam = generateCameraPath(spec, 2, cfg.width, cfg.height)[0];

    RenderConfig render;
    render.sh_degree = 3;
    LossConfig loss_cfg;

    // Ground truth rendered from the reference model; the trainee is a
    // perturbed copy, exactly like the quality harness trains.
    Image gt =
        renderForward(gt_model, cam, frustumCull(gt_model, cam), render)
            .image;
    GaussianModel model = makeTrainee(gt_model, cfg.n_gaussians, 7);

    CpuAdam adam;
    adam.reset(model.size());
    GaussianGrads grads;
    grads.resize(model.size());
    RenderArena arena;
    LossScratch scratch;
    Image d_image;

    BenchResult r;
    r.cfg = cfg;

    // Warm-up step (thread pool spin-up, arena/scratch growth).
    {
        auto subset = frustumCull(model, cam);
        const RenderOutput &out =
            renderForward(model, cam, subset, render, arena);
        computeLoss(out.image, gt, &d_image, loss_cfg, scratch);
        grads.zero();
        renderBackward(model, cam, render, out, d_image, grads, arena);
        r.subset = subset.size();
    }

    double step_s = 0;
    int reps = 0;
    while (reps == 0 || (reps < max_reps && step_s < min_seconds)) {
        Timer step_t;
        Timer t;
        auto subset = frustumCull(model, cam);
        r.cull_ms += t.millis();
        const RenderOutput &out =
            renderForward(model, cam, subset, render, arena);
        r.project_ms += arena.stage_times.project_s * 1e3;
        r.bin_ms += arena.stage_times.bin_s * 1e3;
        r.composite_ms += arena.stage_times.composite_s * 1e3;
        LossStageTimes lt;
        LossResult lr =
            computeLoss(out.image, gt, &d_image, loss_cfg, scratch, &lt);
        r.loss_fwd_ms += lt.forward_s * 1e3;
        r.loss_bwd_ms += lt.backward_s * 1e3;
        grads.zero();
        t.reset();
        renderBackward(model, cam, render, out, d_image, grads, arena);
        r.raster_bwd_ms += t.millis();
        t.reset();
        adam.updateSubset(model, grads, subset);
        r.adam_ms += t.millis();
        r.step_ms += step_t.millis();
        step_s = r.step_ms / 1e3;
        r.loss = lr.total;
        r.subset = subset.size();
        ++reps;
    }
    r.reps = reps;
    for (double *m : {&r.cull_ms, &r.project_ms, &r.bin_ms,
                      &r.composite_ms, &r.raster_bwd_ms, &r.loss_fwd_ms,
                      &r.loss_bwd_ms, &r.adam_ms, &r.step_ms})
        *m /= reps;

    if (with_ref) {
        // One brute-force loss call on the final rendered image — the
        // pre-SAT baseline the SAT loss is compared against.
        auto subset = frustumCull(model, cam);
        const RenderOutput &out =
            renderForward(model, cam, subset, render, arena);
        LossStageTimes rt;
        Image d_ref;
        computeLossReference(out.image, gt, &d_ref, loss_cfg, &rt);
        r.loss_ref_fwd_ms = rt.forward_s * 1e3;
        r.loss_ref_bwd_ms = rt.backward_s * 1e3;
    }
    return r;
}

void
writeJson(const std::string &path, const std::vector<BenchResult> &results,
          bool smoke)
{
    std::ofstream f(path);
    f << "{\n  \"bench\": \"train_step\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n";
    bench::writeJsonContext(f);
    f << "  \"cases\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        f << "    {\"name\": \"" << r.cfg.name << "\""
          << ", \"gaussians\": " << r.cfg.n_gaussians
          << ", \"subset\": " << r.subset
          << ", \"width\": " << r.cfg.width
          << ", \"height\": " << r.cfg.height
          << ", \"reps\": " << r.reps
          << ", \"cull_ms\": " << r.cull_ms
          << ", \"project_ms\": " << r.project_ms
          << ", \"bin_ms\": " << r.bin_ms
          << ", \"composite_ms\": " << r.composite_ms
          << ", \"raster_bwd_ms\": " << r.raster_bwd_ms
          << ", \"loss_fwd_ms\": " << r.loss_fwd_ms
          << ", \"loss_bwd_ms\": " << r.loss_bwd_ms
          << ", \"adam_ms\": " << r.adam_ms
          << ", \"step_ms\": " << r.step_ms
          << ", \"loss_ref_fwd_ms\": " << r.loss_ref_fwd_ms
          << ", \"loss_ref_bwd_ms\": " << r.loss_ref_bwd_ms
          << ", \"loss_speedup\": " << r.lossSpeedup() << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool with_ref = true;
    std::string out_path = "BENCH_train_step.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--no-ref")
            with_ref = false;
        else if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else {
            std::cerr << "usage: micro_train_step [--smoke] [--no-ref]"
                         " [--out FILE]\n";
            return 2;
        }
    }

    std::vector<BenchCase> cases;
    double min_seconds;
    int max_reps;
    if (smoke) {
        cases = {{"smoke", 2000, 160, 90}};
        min_seconds = 0.0;    // single rep: builds-and-runs gate only
        max_reps = 1;
    } else {
        // Same scene/resolution ladder as micro_rasterizer, so the
        // composite/backward stages are directly comparable with
        // BENCH_rasterizer.json points.
        cases = {{"small", 4000, 320, 180},
                 {"medium", 16000, 640, 360},
                 {"large", 64000, 960, 540}};
        min_seconds = 1.0;
        max_reps = 20;
    }

    std::cout << "=== micro_train_step: full training-step breakdown ===\n"
              << "(simd: " << simdIsaName()
              << ", threads: " << ThreadPool::global().threads() << ")\n\n";
    Table table({"Case", "Subset", "WxH", "Cull", "Proj", "Bin", "Comp",
                 "RastBwd", "LossFwd", "LossBwd", "Adam", "Step ms",
                 "RefLoss", "LossX"});
    std::vector<BenchResult> results;
    for (const BenchCase &c : cases) {
        BenchResult r = runCase(c, min_seconds, max_reps, with_ref);
        table.addRow({r.cfg.name, std::to_string(r.subset),
                      std::to_string(c.width) + "x"
                          + std::to_string(c.height),
                      Table::fmt(r.cull_ms, 2), Table::fmt(r.project_ms, 2),
                      Table::fmt(r.bin_ms, 2),
                      Table::fmt(r.composite_ms, 2),
                      Table::fmt(r.raster_bwd_ms, 2),
                      Table::fmt(r.loss_fwd_ms, 2),
                      Table::fmt(r.loss_bwd_ms, 2),
                      Table::fmt(r.adam_ms, 2), Table::fmt(r.step_ms, 2),
                      Table::fmt(r.loss_ref_fwd_ms + r.loss_ref_bwd_ms, 1),
                      Table::fmt(r.lossSpeedup(), 1)});
        results.push_back(r);
    }
    table.print(std::cout);

    writeJson(out_path, results, smoke);
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
