/**
 * @file
 * End-to-end train-step micro-benchmark: one full optimization step
 * (frustum cull -> project -> bin -> composite -> loss forward -> loss
 * backward -> rasterizer backward -> subset Adam) on the default
 * synthetic scene, with a per-stage wall-clock breakdown — so perf PRs
 * see the whole step's trajectory, not just the rasterizer's.
 *
 * Also times the retained brute-force loss reference
 * (computeLossReference) once per case and reports the SAT-loss
 * speedup over it.
 *
 * Prints a table and emits machine-readable BENCH_train_step.json
 * (scripts/bench_train_step.sh) including the machine/build context
 * block, so recorded points are comparable across runs.
 *
 * Usage: micro_train_step [--smoke] [--no-ref] [--out FILE.json]
 *   --smoke   one tiny config, single rep (CI "builds and runs" gate)
 *   --no-ref  skip the brute-force loss baseline timing
 *   --out     JSON output path (default BENCH_train_step.json in $PWD)
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "gaussian/adam.hpp"
#include "math/simd_backend.hpp"
#include "render/arena.hpp"
#include "render/batch.hpp"
#include "render/culling.hpp"
#include "render/loss.hpp"
#include "render/rasterizer.hpp"
#include "render/simd_kernels.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene_spec.hpp"
#include "scene/synthetic.hpp"
#include "train/quality_harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace clm;

namespace {

struct BenchCase
{
    std::string name;
    size_t n_gaussians;
    int width, height;
    /** "bicycle" (orbit) or "bigcity" (aerial flythrough — the serving
     *  scene, at serving resolution: the cull-dense composed regime). */
    const char *scene = "bicycle";
};

/** One forced-kernel-table rerun of the forward + backward pass. */
struct BackendResult
{
    const char *name = "";
    double raster_bwd_ms = 0;
    bool forward_identical = true;     //!< Image bits vs first backend.
    bool backward_identical = true;    //!< Gradient bits vs first backend.
};

/** One kernel-table flavor of the fused-vs-sequential backward race. */
struct BatchBwdResult
{
    const char *table = "";         //!< "dispatch", "sse2", "scalar".
    double seq_bwd_ms = 0;          //!< Sum of per-view renderBackward.
    double fused_bwd_ms = 0;        //!< One renderBackwardBatch call.
    bool batched_identical = true;  //!< Fused grads == sequential grads.
    bool parallel_identical = true; //!< Fused parallel == fused serial.

    double speedup() const
    {
        return fused_bwd_ms > 0 ? seq_bwd_ms / fused_bwd_ms : 0;
    }
};

struct BenchResult
{
    BenchCase cfg;
    size_t subset = 0;
    int reps = 0;
    double loss = 0;    //!< Loss of the last step (sanity).
    // Mean milliseconds per step, by stage.
    double cull_ms = 0;
    double project_ms = 0;
    double bin_ms = 0;
    double composite_ms = 0;
    double raster_bwd_ms = 0;
    double loss_fwd_ms = 0;
    double loss_bwd_ms = 0;
    double adam_ms = 0;
    double step_ms = 0;    //!< Whole measured step (incl. grad zeroing).
    // Brute-force loss baseline (one call; 0 when skipped).
    double loss_ref_fwd_ms = 0;
    double loss_ref_bwd_ms = 0;
    /** Forced-backend reruns (every table this CPU supports). */
    std::vector<BackendResult> backends;
    /** Fused multi-view backward (renderBackwardBatch, batch=4) vs the
     *  sequential per-view backward loop, per kernel-table flavor. */
    int batch_views = 0;
    std::vector<BatchBwdResult> batch_bwd;

    /** Headline fused-backward speedup (default-dispatch flavor). */
    double batchBwdSpeedup() const
    {
        return batch_bwd.empty() ? 0 : batch_bwd.front().speedup();
    }

    double lossSpeedup() const
    {
        double sat = loss_fwd_ms + loss_bwd_ms;
        double ref = loss_ref_fwd_ms + loss_ref_bwd_ms;
        return sat > 0 && ref > 0 ? ref / sat : 0.0;
    }
};

/** FNV-1a over a raw byte range, chainable via @p h. */
uint64_t
fnv1a(const void *data, size_t bytes,
      uint64_t h = 1469598103934665603ull)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

/** FNV-1a over every gradient buffer (bitwise comparison proxy). */
uint64_t
gradHash(const GaussianGrads &g)
{
    uint64_t h = fnv1a(g.d_position.data(),
                       g.d_position.size() * sizeof(Vec3));
    h = fnv1a(g.d_log_scale.data(), g.d_log_scale.size() * sizeof(Vec3),
              h);
    h = fnv1a(g.d_rotation.data(), g.d_rotation.size() * sizeof(Quat), h);
    h = fnv1a(g.d_sh.data(), g.d_sh.size() * sizeof(float), h);
    h = fnv1a(g.d_opacity.data(), g.d_opacity.size() * sizeof(float), h);
    return h;
}

/**
 * Fused multi-view backward vs the sequential per-view loop: the same
 * 4-view batch run (a) as four cull/forward/loss/backward passes with
 * the per-view renderBackward timed, and (b) as one batched cull + one
 * retained-staging renderForwardBatch + ONE renderBackwardBatch (the
 * trainer's fused_batch path), timed on the fused backward alone. Run
 * per kernel-table flavor (runtime dispatch, forced sse2 when the CPU
 * has it, forced scalar); each flavor also checks the two determinism
 * claims — fused gradients bitwise equal to the sequential loop's, and
 * a serial (parallel=false) fused rerun bitwise equal to the parallel
 * one.
 */
void
runBatchBackward(const SceneSpec &spec, const GaussianModel &gt_model,
                 const GaussianModel &model, const BenchCase &cfg,
                 const RenderConfig &render, const LossConfig &loss_cfg,
                 int reps, BenchResult &r)
{
    const int B = 4;
    r.batch_views = B;
    std::vector<Camera> cams =
        generateCameraPath(spec, B, cfg.width, cfg.height);
    RenderArena arena;
    LossScratch scratch;
    std::vector<Image> gts(B);
    for (int v = 0; v < B; ++v)
        gts[v] = renderForward(gt_model, cams[v],
                               frustumCull(gt_model, cams[v]), render,
                               arena)
                     .image;

    GaussianGrads seq_grads, fused_grads, serial_grads;
    seq_grads.resize(model.size());
    fused_grads.resize(model.size());
    BatchRenderArena ba;
    std::vector<Image> d_images(B);
    Image d_image;
    std::vector<std::vector<uint32_t>> subsets;

    auto runFused = [&](const RenderConfig &rc, GaussianGrads &grads) {
        grads.zero();
        frustumCullBatch(model, cams, ba.cull, subsets, rc.parallel);
        ba.retain_staging = true;
        renderForwardBatch(model, cams, subsets, rc, ba);
        for (int v = 0; v < B; ++v)
            computeLoss(ba.views[v].out.image, gts[v], &d_images[v],
                        loss_cfg, scratch);
        Timer t;
        renderBackwardBatch(model, cams, rc, d_images, grads, ba);
        return t.millis();
    };

    struct Flavor
    {
        const char *name;
        const RenderKernels *kern;
    };
    std::vector<Flavor> flavors = {{"dispatch", nullptr}};
    if (const RenderKernels *k = renderKernelsFor(SimdBackend::kSse2))
        flavors.push_back({"sse2", k});
    flavors.push_back({"scalar", renderKernelsFor(SimdBackend::kScalar)});

    for (const Flavor &fl : flavors) {
        RenderConfig rc = render;
        rc.kernels = fl.kern;
        BatchBwdResult b;
        b.table = fl.name;
        for (int rep = 0; rep <= reps; ++rep) {
            // Sequential reference: per-view loop, backward timed.
            seq_grads.zero();
            double seq_ms = 0;
            for (int v = 0; v < B; ++v) {
                auto subset = frustumCull(model, cams[v]);
                const RenderOutput &out =
                    renderForward(model, cams[v], subset, rc, arena);
                computeLoss(out.image, gts[v], &d_image, loss_cfg,
                            scratch);
                Timer t;
                renderBackward(model, cams[v], rc, out, d_image,
                               seq_grads, arena);
                seq_ms += t.millis();
            }
            const double fused_ms = runFused(rc, fused_grads);
            if (rep > 0) {    // rep 0 is the untimed warm-up
                b.seq_bwd_ms += seq_ms;
                b.fused_bwd_ms += fused_ms;
            }
        }
        b.seq_bwd_ms /= reps;
        b.fused_bwd_ms /= reps;
        b.batched_identical =
            gradHash(seq_grads) == gradHash(fused_grads);

        RenderConfig serial = rc;
        serial.parallel = false;
        serial_grads.resize(model.size());
        runFused(serial, serial_grads);
        b.parallel_identical =
            gradHash(fused_grads) == gradHash(serial_grads);
        r.batch_bwd.push_back(b);
    }
}

/** Run one config; reps adapt to hit ~min_seconds of stepping. */
BenchResult
runCase(const BenchCase &cfg, double min_seconds, int max_reps,
        bool with_ref)
{
    SceneSpec spec = std::string(cfg.scene) == "bigcity"
                         ? SceneSpec::bigCity()
                         : SceneSpec::bicycle();
    GaussianModel gt_model = generateGroundTruth(spec, cfg.n_gaussians);
    Camera cam = generateCameraPath(spec, 2, cfg.width, cfg.height)[0];

    RenderConfig render;
    render.sh_degree = 3;
    LossConfig loss_cfg;

    // Ground truth rendered from the reference model; the trainee is a
    // perturbed copy, exactly like the quality harness trains.
    Image gt =
        renderForward(gt_model, cam, frustumCull(gt_model, cam), render)
            .image;
    GaussianModel model = makeTrainee(gt_model, cfg.n_gaussians, 7);

    CpuAdam adam;
    adam.reset(model.size());
    GaussianGrads grads;
    grads.resize(model.size());
    RenderArena arena;
    LossScratch scratch;
    Image d_image;

    BenchResult r;
    r.cfg = cfg;

    // Warm-up step (thread pool spin-up, arena/scratch growth).
    {
        auto subset = frustumCull(model, cam);
        const RenderOutput &out =
            renderForward(model, cam, subset, render, arena);
        computeLoss(out.image, gt, &d_image, loss_cfg, scratch);
        grads.zero();
        renderBackward(model, cam, render, out, d_image, grads, arena);
        r.subset = subset.size();
    }

    double step_s = 0;
    int reps = 0;
    while (reps == 0 || (reps < max_reps && step_s < min_seconds)) {
        Timer step_t;
        Timer t;
        auto subset = frustumCull(model, cam);
        r.cull_ms += t.millis();
        const RenderOutput &out =
            renderForward(model, cam, subset, render, arena);
        r.project_ms += arena.stage_times.project_s * 1e3;
        r.bin_ms += arena.stage_times.bin_s * 1e3;
        r.composite_ms += arena.stage_times.composite_s * 1e3;
        LossStageTimes lt;
        LossResult lr =
            computeLoss(out.image, gt, &d_image, loss_cfg, scratch, &lt);
        r.loss_fwd_ms += lt.forward_s * 1e3;
        r.loss_bwd_ms += lt.backward_s * 1e3;
        grads.zero();
        t.reset();
        renderBackward(model, cam, render, out, d_image, grads, arena);
        r.raster_bwd_ms += t.millis();
        t.reset();
        adam.updateSubset(model, grads, subset);
        r.adam_ms += t.millis();
        r.step_ms += step_t.millis();
        step_s = r.step_ms / 1e3;
        r.loss = lr.total;
        r.subset = subset.size();
        ++reps;
    }
    r.reps = reps;
    for (double *m : {&r.cull_ms, &r.project_ms, &r.bin_ms,
                      &r.composite_ms, &r.raster_bwd_ms, &r.loss_fwd_ms,
                      &r.loss_bwd_ms, &r.adam_ms, &r.step_ms})
        *m /= reps;

    if (with_ref) {
        // One brute-force loss call on the final rendered image — the
        // pre-SAT baseline the SAT loss is compared against.
        auto subset = frustumCull(model, cam);
        const RenderOutput &out =
            renderForward(model, cam, subset, render, arena);
        LossStageTimes rt;
        Image d_ref;
        computeLossReference(out.image, gt, &d_ref, loss_cfg, &rt);
        r.loss_ref_fwd_ms = rt.forward_s * 1e3;
        r.loss_ref_bwd_ms = rt.backward_s * 1e3;
    }

    // Forced-backend sweep: rerun forward + backward under every kernel
    // table this CPU supports and check the dispatch-invariance claim —
    // the image and gradient bits must not depend on the backend.
    {
        const int backend_reps = max_reps > 1 ? 3 : 1;
        auto subset = frustumCull(model, cam);
        RenderConfig forced = render;
        uint64_t ref_img = 0, ref_grad = 0;
        bool have_ref = false;
        for (int bi = 0; bi < kNumSimdBackends; ++bi) {
            const RenderKernels *kern =
                renderKernelsFor(static_cast<SimdBackend>(bi));
            if (!kern)
                continue;    // unsupported on this CPU / build
            forced.kernels = kern;
            BackendResult b;
            b.name = kern->name;
            uint64_t img = 0, gh = 0;
            for (int rep = 0; rep < backend_reps; ++rep) {
                const RenderOutput &out =
                    renderForward(model, cam, subset, forced, arena);
                computeLoss(out.image, gt, &d_image, loss_cfg, scratch);
                grads.zero();
                Timer t;
                renderBackward(model, cam, forced, out, d_image, grads,
                               arena);
                b.raster_bwd_ms += t.millis();
                img = fnv1a(out.image.data().data(),
                            out.image.data().size() * sizeof(float));
                gh = gradHash(grads);
            }
            b.raster_bwd_ms /= backend_reps;
            if (!have_ref) {
                ref_img = img;
                ref_grad = gh;
                have_ref = true;
            }
            b.forward_identical = img == ref_img;
            b.backward_identical = gh == ref_grad;
            r.backends.push_back(b);
        }
    }

    runBatchBackward(spec, gt_model, model, cfg, render, loss_cfg,
                     max_reps > 1 ? 3 : 1, r);
    return r;
}

void
writeJson(const std::string &path, const std::vector<BenchResult> &results,
          bool smoke)
{
    std::ofstream f(path);
    f << "{\n  \"bench\": \"train_step\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n";
    bench::writeJsonContext(f);
    f << "  \"cases\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        f << "    {\"name\": \"" << r.cfg.name << "\""
          << ", \"scene\": \"" << r.cfg.scene << "\""
          << ", \"gaussians\": " << r.cfg.n_gaussians
          << ", \"subset\": " << r.subset
          << ", \"width\": " << r.cfg.width
          << ", \"height\": " << r.cfg.height
          << ", \"reps\": " << r.reps
          << ", \"cull_ms\": " << r.cull_ms
          << ", \"project_ms\": " << r.project_ms
          << ", \"bin_ms\": " << r.bin_ms
          << ", \"composite_ms\": " << r.composite_ms
          << ", \"raster_bwd_ms\": " << r.raster_bwd_ms
          << ", \"loss_fwd_ms\": " << r.loss_fwd_ms
          << ", \"loss_bwd_ms\": " << r.loss_bwd_ms
          << ", \"adam_ms\": " << r.adam_ms
          << ", \"step_ms\": " << r.step_ms
          << ", \"loss_ref_fwd_ms\": " << r.loss_ref_fwd_ms
          << ", \"loss_ref_bwd_ms\": " << r.loss_ref_bwd_ms
          << ", \"loss_speedup\": " << r.lossSpeedup();
        bool fwd_same = true, bwd_same = true;
        f << ", \"raster_bwd_by_backend\": {";
        for (size_t b = 0; b < r.backends.size(); ++b) {
            const BackendResult &br = r.backends[b];
            f << (b ? ", " : "") << "\"" << br.name
              << "\": " << br.raster_bwd_ms;
            fwd_same = fwd_same && br.forward_identical;
            bwd_same = bwd_same && br.backward_identical;
        }
        f << "}, \"forward_bitwise_identical\": "
          << (fwd_same ? "true" : "false")
          << ", \"backward_bitwise_identical\": "
          << (bwd_same ? "true" : "false")
          << ",\n     \"batch_views\": " << r.batch_views
          << ", \"fused_backward_speedup\": " << r.batchBwdSpeedup()
          << ", \"backward_batch\": [";
        for (size_t b = 0; b < r.batch_bwd.size(); ++b) {
            const BatchBwdResult &bb = r.batch_bwd[b];
            f << (b ? ", " : "") << "{\"table\": \"" << bb.table << "\""
              << ", \"seq_bwd_ms\": " << bb.seq_bwd_ms
              << ", \"fused_bwd_ms\": " << bb.fused_bwd_ms
              << ", \"speedup\": " << bb.speedup()
              << ", \"batched_bitwise_identical\": "
              << (bb.batched_identical ? "true" : "false")
              << ", \"parallel_bitwise_identical\": "
              << (bb.parallel_identical ? "true" : "false") << "}";
        }
        f << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool with_ref = true;
    std::string out_path = "BENCH_train_step.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--no-ref")
            with_ref = false;
        else if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else {
            std::cerr << "usage: micro_train_step [--smoke] [--no-ref]"
                         " [--out FILE]\n";
            return 2;
        }
    }

    std::vector<BenchCase> cases;
    double min_seconds;
    int max_reps;
    if (smoke) {
        cases = {{"smoke", 2000, 160, 90}};
        min_seconds = 0.0;    // single rep: builds-and-runs gate only
        max_reps = 1;
    } else {
        // Same scene/resolution ladder as micro_rasterizer, so the
        // composite/backward stages are directly comparable with
        // BENCH_rasterizer.json points.
        cases = {{"small", 4000, 320, 180},
                 {"medium", 16000, 640, 360},
                 {"large", 64000, 960, 540},
                 // The composed-serving regime: the BENCH_compose scene
                 // at serving resolution — a big model behind small
                 // frames, where cull/stage overheads (not pixel work)
                 // carry the step.
                 {"dense", 400000, 160, 90, "bigcity"}};
        min_seconds = 1.0;
        max_reps = 20;
    }

    std::cout << "=== micro_train_step: full training-step breakdown ===\n"
              << bench::contextLine() << "\n\n";
    Table table({"Case", "Subset", "WxH", "Cull", "Proj", "Bin", "Comp",
                 "RastBwd", "LossFwd", "LossBwd", "Adam", "Step ms",
                 "RefLoss", "LossX"});
    std::vector<BenchResult> results;
    for (const BenchCase &c : cases) {
        BenchResult r = runCase(c, min_seconds, max_reps, with_ref);
        table.addRow({r.cfg.name, std::to_string(r.subset),
                      std::to_string(c.width) + "x"
                          + std::to_string(c.height),
                      Table::fmt(r.cull_ms, 2), Table::fmt(r.project_ms, 2),
                      Table::fmt(r.bin_ms, 2),
                      Table::fmt(r.composite_ms, 2),
                      Table::fmt(r.raster_bwd_ms, 2),
                      Table::fmt(r.loss_fwd_ms, 2),
                      Table::fmt(r.loss_bwd_ms, 2),
                      Table::fmt(r.adam_ms, 2), Table::fmt(r.step_ms, 2),
                      Table::fmt(r.loss_ref_fwd_ms + r.loss_ref_bwd_ms, 1),
                      Table::fmt(r.lossSpeedup(), 1)});
        results.push_back(r);
    }
    table.print(std::cout);

    std::cout << "\nbackward by forced kernel table (ms, bitwise vs "
                 "first backend):\n";
    for (const BenchResult &r : results) {
        std::cout << "  " << r.cfg.name << ":";
        for (const BackendResult &b : r.backends)
            std::cout << "  " << b.name << "="
                      << Table::fmt(b.raster_bwd_ms, 2)
                      << (b.forward_identical && b.backward_identical
                              ? ""
                              : " [BITS DIFFER]");
        std::cout << "\n";
    }

    std::cout << "\nfused multi-view backward (batch=4) vs sequential "
                 "per-view loop (ms, bitwise batched==seq / par==ser):\n";
    for (const BenchResult &r : results) {
        std::cout << "  " << r.cfg.name << ":";
        for (const BatchBwdResult &b : r.batch_bwd)
            std::cout << "  " << b.table << " seq="
                      << Table::fmt(b.seq_bwd_ms, 2)
                      << " fused=" << Table::fmt(b.fused_bwd_ms, 2) << " ("
                      << Table::fmt(b.speedup(), 2) << "x)"
                      << (b.batched_identical && b.parallel_identical
                              ? ""
                              : " [BITS DIFFER]");
        std::cout << "\n";
    }

    writeJson(out_path, results, smoke);
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
