/**
 * @file
 * Shared infrastructure for the benchmark harnesses: synthetic sim-profile
 * workloads (scene + camera path + in-frustum sets), batch sampling, and
 * the simulate-throughput loop every performance figure uses.
 *
 * Each bench binary reproduces one table/figure of the paper and prints
 * measured values next to the paper's reported ones where applicable.
 * Absolute numbers come from the calibrated event simulator; the claims
 * to check are the *shapes* (who wins, by what factor, where crossovers
 * fall).
 */

#ifndef CLM_BENCH_COMMON_HPP
#define CLM_BENCH_COMMON_HPP

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "math/rng.hpp"
#include "math/simd_backend.hpp"
#include "util/thread_pool.hpp"
#include "offload/frustum_sets.hpp"
#include "offload/planner.hpp"
#include "scene/camera_path.hpp"
#include "scene/synthetic.hpp"
#include "sim/cost_model.hpp"
#include "sim/device_spec.hpp"
#include "sim/engine.hpp"
#include "sim/memory_model.hpp"
#include "sim/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace clm::bench {

/** A scene's sim-profile instantiation with precomputed frustum sets. */
struct SimWorkload
{
    SceneSpec spec;
    GaussianModel model;
    std::vector<Camera> cameras;
    FrustumSets sets;

    /**
     * Build the workload. @p fraction scales the profile down for faster
     * harness runs (1.0 = the full sim profile).
     */
    static SimWorkload
    load(const SceneSpec &spec, double fraction = 1.0)
    {
        SimWorkload w;
        w.spec = spec;
        size_t n = static_cast<size_t>(spec.sim.n_gaussians * fraction);
        int views =
            std::max(spec.batch_size + 1,
                     static_cast<int>(spec.sim.n_views * fraction));
        w.model = generateSceneGaussians(spec, n);
        w.cameras = generateCameraPath(spec, views, spec.sim.width,
                                       spec.sim.height);
        w.sets = computeFrustumSets(w.model, w.cameras);
        return w;
    }

    double pixelsPerView() const
    { return double(spec.sim.width) * spec.sim.height; }
};

/** Sample @p count random batches of view indices. */
inline std::vector<std::vector<int>>
sampleBatches(size_t n_views, int batch_size, int count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<int>> batches(count);
    for (auto &b : batches)
        for (int i = 0; i < batch_size; ++i)
            b.push_back(static_cast<int>(
                rng.uniformInt(0, static_cast<int64_t>(n_views) - 1)));
    return batches;
}

/** Build the planner workload for one sampled batch at target scale. */
inline BatchWorkload
makeBatchWorkload(const SimWorkload &w, const std::vector<int> &view_ids,
                  double n_target)
{
    BatchWorkload wl;
    for (int v : view_ids) {
        wl.sets.push_back(w.sets.sets[v]);
        wl.camera_centers.push_back(w.cameras[v].eye());
    }
    wl.n_synthetic = w.model.size();
    wl.n_target = n_target;
    wl.pixels_per_view = w.pixelsPerView();
    return wl;
}

/** Aggregated result of simulating several batches. */
struct ThroughputResult
{
    double images_per_sec = 0;
    double mean_batch_seconds = 0;
    double h2d_bytes_per_batch = 0;
    double d2h_bytes_per_batch = 0;
    double adam_trailing_seconds = 0;
    RuntimeBreakdown breakdown;          //!< Of the last batch.
    HardwareUtilization utilization;     //!< Of the last batch.
    std::vector<double> idle_samples;    //!< Of the last batch.
};

/** Simulate @p n_batches batches of @p config's system on @p device. */
inline ThroughputResult
simulateThroughput(PlannerConfig config, const SimWorkload &w,
                   double n_target, const DeviceSpec &device,
                   int n_batches = 3, uint64_t seed = 1)
{
    CostModel cost(device);
    auto batches = sampleBatches(w.cameras.size(), w.spec.batch_size,
                                 n_batches, seed);
    ThroughputResult res;
    double total_time = 0;
    int total_images = 0;
    for (const auto &ids : batches) {
        BatchWorkload wl = makeBatchWorkload(w, ids, n_target);
        config.seed = seed++;
        BatchPlanResult plan = planBatch(config, wl);
        Timeline tl = simulate(plan.plan, cost);
        total_time += tl.makespan;
        total_images += static_cast<int>(ids.size());
        res.h2d_bytes_per_batch = plan.plan.h2dBytes();
        res.d2h_bytes_per_batch = plan.plan.d2hBytes();
        res.adam_trailing_seconds = adamTrailingSeconds(plan.plan, tl);
        res.breakdown = computeBreakdown(plan.plan, tl);
        res.utilization = computeUtilization(plan.plan, tl, device);
        res.idle_samples = gpuIdleSamples(plan.plan, tl, 2000);
    }
    res.images_per_sec = total_images / total_time;
    res.mean_batch_seconds = total_time / n_batches;
    return res;
}

/** Millions, formatted like the paper's figures. */
inline std::string
fmtMillions(double n, int digits = 1)
{
    return Table::fmt(n / 1e6, digits);
}

/**
 * Machine/build context block for BENCH_*.json files, so recorded perf
 * points are comparable across runs: worker-thread count (and whether
 * CLM_THREADS pinned it), compiler, the compile-time SIMD baseline
 * (`"simd"`), the runtime-dispatched kernel backend actually executing
 * (`"simd_dispatch"` — CPUID choice, or the CLM_SIMD override), and
 * whether the build disabled SIMD (-DCLM_DISABLE_SIMD=ON). Emitted as a
 * `"context": {...},` line inside the top-level JSON object.
 */
inline void
writeJsonContext(std::ostream &f)
{
    const char *env_threads = std::getenv("CLM_THREADS");
    f << "  \"context\": {\"threads\": "
      << ThreadPool::global().threads() << ", \"clm_threads_env\": ";
    if (env_threads)
        f << "\"" << env_threads << "\"";
    else
        f << "null";
    f << ", \"compiler\": \""
#if defined(__clang__)
      << "clang " << __clang_major__ << "." << __clang_minor__
#elif defined(__GNUC__)
      << "gcc " << __GNUC__ << "." << __GNUC_MINOR__
#else
      << "unknown"
#endif
      << "\", \"simd\": \"" << simdIsaName() << "\", \"simd_dispatch\": \""
      << simdDispatchName() << "\", \"simd_disabled\": "
      << (kSimdDisabled ? "true" : "false") << ", \"build\": \""
#ifdef NDEBUG
      << "release"
#else
      << "debug"
#endif
      << "\"},\n";
}

/** The matching one-line console context ("(threads: N, simd: ...)"),
 *  so every bench binary reports the same facts the same way. */
inline std::string
contextLine()
{
    return "(threads: " + std::to_string(ThreadPool::global().threads())
         + ", simd: " + simdDispatchName() + ", build baseline: "
         + simdIsaName() + ")";
}

} // namespace clm::bench

#endif // CLM_BENCH_COMMON_HPP
