/**
 * @file
 * Figure 14: average CPU->GPU parameter volume per training batch, for
 * naive offloading, CLM without caching ("No Cache"), and CLM with
 * caching under the four ordering strategies of Table 4. Also reports
 * cache hit rates (an extra ablation beyond the paper's plot).
 */

#include <iostream>

#include "common.hpp"

using namespace clm;
using namespace clm::bench;

int
main()
{
    std::cout << "=== Figure 14: CPU->GPU communication volume per batch "
                 "===\n\n";
    DeviceSpec dev = DeviceSpec::rtx4090();
    Table t({"Scene", "Naive (GB)", "No Cache (GB)", "Random (GB)",
             "Camera (GB)", "GS Count (GB)", "TSP/CLM (GB)",
             "TSP vs naive", "TSP hit rate"});

    for (const SceneSpec &s : SceneSpec::all()) {
        SimWorkload w = SimWorkload::load(s);
        double n_target =
            maxTrainableGaussians(SystemKind::NaiveOffload, s, dev);
        auto batches =
            sampleBatches(w.cameras.size(), s.batch_size, 3, 7);

        double naive_gb =
            n_target * kParamBytesPerGaussian / 1e9;    // per batch

        auto mean_load = [&](OrderingStrategy ord, bool cache,
                             double *hit_rate = nullptr) {
            double total = 0, hits = 0, loads = 0;
            for (const auto &ids : batches) {
                BatchWorkload wl = makeBatchWorkload(w, ids, n_target);
                PlannerConfig cfg;
                cfg.system = SystemKind::Clm;
                cfg.ordering = ord;
                cfg.enable_cache = cache;
                BatchPlanResult r = planBatch(cfg, wl);
                total += r.paramLoadBytesScaled();
                hits += static_cast<double>(r.cache.cacheHits());
                loads += static_cast<double>(r.cache.totalLoads());
            }
            if (hit_rate)
                *hit_rate = hits / std::max(loads, 1.0);
            return total / batches.size() / 1e9;
        };

        double no_cache = mean_load(OrderingStrategy::Random, false);
        double random = mean_load(OrderingStrategy::Random, true);
        double camera = mean_load(OrderingStrategy::Camera, true);
        double gscount = mean_load(OrderingStrategy::GsCount, true);
        double hit_rate = 0;
        double tsp = mean_load(OrderingStrategy::Tsp, true, &hit_rate);

        t.addRow({s.name, Table::fmt(naive_gb, 2),
                  Table::fmt(no_cache, 2), Table::fmt(random, 2),
                  Table::fmt(camera, 2), Table::fmt(gscount, 2),
                  Table::fmt(tsp, 2),
                  "-" + Table::fmt(100.0 * (1.0 - tsp / naive_gb), 0)
                      + "%",
                  Table::fmt(100.0 * hit_rate, 0) + "%"});
    }
    t.print(std::cout);
    std::cout
        << "\nShape check (Figure 14): selective loading alone cuts "
           "volume vs naive; caching helps most on dense scenes "
           "(Bicycle) and least on BigCity (low rho); TSP order always "
           "yields the lowest volume (paper: -37% to -82% vs naive).\n";
    return 0;
}
