/**
 * @file
 * Extension bench: contribution of each CLM technique to batch time.
 * Starting from naive offloading, adds selective loading + pipelining,
 * then Gaussian caching, then overlapped CPU Adam, then TSP ordering —
 * an incremental decomposition DESIGN.md calls out that the paper only
 * reports in aggregate (Figures 11/13/14).
 */

#include <iostream>

#include "common.hpp"

using namespace clm;
using namespace clm::bench;

int
main()
{
    std::cout << "=== Extension: incremental CLM technique ablation "
                 "(RTX 4090) ===\n\n";
    DeviceSpec dev = DeviceSpec::rtx4090();

    struct Variant
    {
        const char *name;
        SystemKind system;
        bool cache;
        bool overlap;
        OrderingStrategy ordering;
    };
    const Variant variants[] = {
        {"Naive offloading", SystemKind::NaiveOffload, false, false,
         OrderingStrategy::Random},
        {"+ selective load & pipeline", SystemKind::Clm, false, false,
         OrderingStrategy::Random},
        {"+ Gaussian caching", SystemKind::Clm, true, false,
         OrderingStrategy::Random},
        {"+ overlapped CPU Adam", SystemKind::Clm, true, true,
         OrderingStrategy::Random},
        {"+ TSP ordering (full CLM)", SystemKind::Clm, true, true,
         OrderingStrategy::Tsp},
    };

    for (const SceneSpec &s :
         {SceneSpec::rubble(), SceneSpec::bigCity()}) {
        SimWorkload w = SimWorkload::load(s);
        double n_target =
            maxTrainableGaussians(SystemKind::NaiveOffload, s, dev);
        std::cout << "--- " << s.name << " at " << fmtMillions(n_target)
                  << "M Gaussians ---\n";
        Table t({"Variant", "Batch (s)", "img/s", "vs naive",
                 "PCIe RX (GB/batch)"});
        double naive_time = 0;
        for (const Variant &v : variants) {
            PlannerConfig cfg;
            cfg.system = v.system;
            cfg.enable_cache = v.cache;
            cfg.overlap_adam = v.overlap;
            cfg.ordering = v.ordering;
            ThroughputResult r =
                simulateThroughput(cfg, w, n_target, dev);
            if (naive_time == 0)
                naive_time = r.mean_batch_seconds;
            t.addRow({v.name, Table::fmt(r.mean_batch_seconds, 3),
                      Table::fmt(r.images_per_sec, 1),
                      Table::fmt(naive_time / r.mean_batch_seconds, 2)
                          + "x",
                      Table::fmt(r.h2d_bytes_per_batch / 1e9, 2)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Shape check: selective loading + pipelining provides "
                 "the bulk of the win; caching and ordering matter more "
                 "on denser scenes; overlapped Adam removes most of the "
                 "trailing optimizer time.\n";
    return 0;
}
