/**
 * @file
 * Figure 11: training throughput of CLM vs naive offloading on both
 * testbeds. For each scene/testbed pair the model size is the largest
 * supported by naive offloading (from the Figure 8 memory model), as in
 * the paper.
 */

#include <iostream>

#include "common.hpp"

using namespace clm;
using namespace clm::bench;

namespace {

struct PaperRow
{
    const char *scene;
    double naive, clm;
};

const PaperRow kPaper2080[] = {
    {"Bicycle", 2.1, 2.9},   {"Rubble", 3.3, 4.8},
    {"Alameda", 5.6, 9.6},   {"Ithaca", 9.4, 15.4},
    {"BigCity", 27.7, 53.1},
};
const PaperRow kPaper4090[] = {
    {"Bicycle", 2.1, 4.0},   {"Rubble", 3.6, 6.7},
    {"Alameda", 4.8, 8.2},   {"Ithaca", 7.9, 12.9},
    {"BigCity", 24.4, 38.5},
};

void
report(const DeviceSpec &dev, const PaperRow *paper)
{
    std::cout << "--- " << dev.name << " ---\n";
    Table t({"Scene", "Model (M)", "Naive (img/s)", "CLM (img/s)",
             "Speedup", "Paper speedup"});
    auto scenes = SceneSpec::all();
    for (size_t i = 0; i < scenes.size(); ++i) {
        const SceneSpec &s = scenes[i];
        SimWorkload w = SimWorkload::load(s);
        double n_target =
            maxTrainableGaussians(SystemKind::NaiveOffload, s, dev);

        PlannerConfig naive_cfg;
        naive_cfg.system = SystemKind::NaiveOffload;
        PlannerConfig clm_cfg;
        clm_cfg.system = SystemKind::Clm;

        ThroughputResult rn =
            simulateThroughput(naive_cfg, w, n_target, dev);
        ThroughputResult rc =
            simulateThroughput(clm_cfg, w, n_target, dev);
        t.addRow({s.name, fmtMillions(n_target),
                  Table::fmt(rn.images_per_sec, 1),
                  Table::fmt(rc.images_per_sec, 1),
                  Table::fmt(rc.images_per_sec / rn.images_per_sec, 2)
                      + "x",
                  Table::fmt(paper[i].clm / paper[i].naive, 2) + "x"});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Figure 11: CLM vs naive offloading throughput "
                 "===\n\n";
    report(DeviceSpec::rtx2080ti(), kPaper2080);
    report(DeviceSpec::rtx4090(), kPaper4090);
    std::cout << "Shape check: CLM beats naive offloading on every pair "
                 "(paper: 1.38x-1.92x).\n";
    return 0;
}
