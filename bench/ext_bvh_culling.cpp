/**
 * @file
 * Extension bench (§8 future work): BVH-accelerated frustum culling vs
 * the linear sweep. Reports wall-clock per cull, exact-test counts and
 * verifies identical selections, across the five scenes — quantifying
 * when the paper's proposed spatial data structure starts to pay.
 */

#include <iostream>

#include "common.hpp"
#include "render/bvh.hpp"
#include "render/culling.hpp"

using namespace clm;
using namespace clm::bench;

int
main()
{
    std::cout << "=== Extension: BVH-accelerated frustum culling (§8) "
                 "===\n\n";
    Table t({"Scene", "Gaussians", "Linear (ms/view)", "BVH (ms/view)",
             "Speedup", "Exact tests", "Identical?"});

    for (const SceneSpec &spec : SceneSpec::all()) {
        size_t n = spec.sim.n_gaussians / 2;
        GaussianModel m = generateSceneGaussians(spec, n);
        auto cams = generateCameraPath(spec, 12, spec.sim.width,
                                       spec.sim.height);
        GaussianBvh bvh(m);

        Timer linear_timer;
        std::vector<std::vector<uint32_t>> linear_sets;
        for (const Camera &cam : cams)
            linear_sets.push_back(frustumCull(m, cam));
        double linear_ms = linear_timer.millis() / cams.size();

        Timer bvh_timer;
        std::vector<std::vector<uint32_t>> bvh_sets;
        size_t exact_tests = 0;
        for (const Camera &cam : cams) {
            bvh_sets.push_back(bvh.cull(cam));
            exact_tests += bvh.lastStats().leaf_tests;
        }
        double bvh_ms = bvh_timer.millis() / cams.size();

        bool identical = linear_sets == bvh_sets;
        t.addRow({spec.name, std::to_string(n), Table::fmt(linear_ms, 2),
                  Table::fmt(bvh_ms, 2),
                  Table::fmt(linear_ms / bvh_ms, 1) + "x",
                  Table::fmt(100.0 * exact_tests / (cams.size() * n), 1)
                      + "%",
                  identical ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout
        << "\nShape check: the BVH prunes almost all exact ellipsoid "
           "tests on sparse scenes (BigCity) and pays off more the "
           "sparser the scene — confirming §8's expectation that "
           "spatial structures matter once N grows while rho shrinks.\n";
    return 0;
}
