/**
 * @file
 * Serving micro-benchmark: requests/sec and p50/p99 latency of the
 * RenderService over city-scale synthetic models, swept across
 * coalescing batch sizes 1/2/4/8. max_batch=1 is view-at-a-time
 * serving (plain frustumCull + renderForward per request); larger
 * batches render through the fused multi-view pipeline, whose shared
 * per-Gaussian work (cull setup, covariance/opacity precompute, one
 * key-sorted buffer) is what batching amortizes. The workload is the
 * paper's serving setting: a large host-resident model with small
 * per-view sparsity, so per-request culling is a dominant cost.
 *
 * Before timing, each case verifies the fused batch path bitwise
 * against sequential renders (the images must be identical — batching
 * is a scheduling choice, never a quality choice).
 *
 * Load model: N closed-loop synthetic clients walk the scene's camera
 * path from staggered offsets, each keeping one request in flight, so
 * the queue stays deep enough for the service to coalesce full batches.
 *
 * Prints a table and emits BENCH_serve.json (scripts/bench_serve.sh)
 * with the machine/build context block.
 *
 * Usage: micro_serve [--smoke] [--out FILE.json]
 */

#include <algorithm>
#include <atomic>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "render/batch.hpp"
#include "render/culling.hpp"
#include "render/rasterizer.hpp"
#include "serve/render_service.hpp"
#include "serve/snapshot.hpp"

using namespace clm;

namespace {

struct ServeCase
{
    std::string name;
    std::string scene;
    size_t n_gaussians;
    int width, height;
    int sh_degree;
    int clients;
    int requests;    //!< Per sweep point.
};

struct SweepPoint
{
    int max_batch = 1;
    double elapsed_s = 0;
    double rps = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double mean_batch = 0;
    /** SLO verdict over the point (obs/slo): closed-loop latency p99
     *  bound + queue-full shed ratio (must stay ~0 under Block). */
    SloReport slo;
};

/** Closed-loop SLO rules: with N clients each keeping one request in
 *  flight, end-to-end latency sits near N * per-view render time, so
 *  bound p99 at a 3x margin over that; and a closed-loop Block config
 *  must never shed. */
std::vector<SloRule>
makeServeSloRules(double direct_ms, int n_clients)
{
    std::vector<SloRule> rules(2);
    rules[0].kind = SloRuleKind::HistogramPercentile;
    rules[0].metric = "serve.latency_ms";
    rules[0].percentile = 99;
    rules[0].name = "latency_p99_ms";
    rules[0].warn = (2.0 * n_clients + 8.0) * direct_ms;
    rules[0].fail = 3.0 * rules[0].warn;
    rules[1].kind = SloRuleKind::CounterRatio;
    rules[1].metric = "serve.shed_queue_full";
    rules[1].denominator = "serve.requests";
    rules[1].name = "queue_shed_ratio";
    rules[1].warn = 0.01;
    rules[1].fail = 0.1;
    return rules;
}

struct CaseResult
{
    ServeCase cfg;
    size_t mean_subset = 0;
    int views = 0;
    double direct_ms_per_view = 0;    //!< No-service reference loop.
    bool bitwise_identical = false;
    std::vector<SweepPoint> sweep;
    // Traced rerun (batch 4, tracing enabled): observability must not
    // perturb determinism and should cost ~nothing on the hot path.
    double traced_rps = 0;
    double trace_overhead_frac = 0;    //!< (rps4 - traced_rps) / rps4.
    bool traced_bitwise_identical = false;

    double
    batch4Speedup() const
    {
        double rps1 = 0, rps4 = 0;
        for (const SweepPoint &p : sweep) {
            if (p.max_batch == 1)
                rps1 = p.rps;
            if (p.max_batch == 4)
                rps4 = p.rps;
        }
        return rps1 > 0 ? rps4 / rps1 : 0.0;
    }
};

/** Fused batch vs sequential renders: must be bitwise identical. */
bool
verifyBitIdentity(const GaussianModel &model,
                  const std::vector<Camera> &cams,
                  const RenderConfig &render)
{
    BatchCullScratch cull;
    std::vector<std::vector<uint32_t>> subsets;
    frustumCullBatch(model, cams, cull, subsets);
    BatchRenderArena arena;
    renderForwardBatch(model, cams, subsets, render, arena);
    RenderArena seq_arena;
    for (size_t v = 0; v < cams.size(); ++v) {
        auto subset = frustumCull(model, cams[v]);
        if (subset != subsets[v])
            return false;
        const RenderOutput &seq =
            renderForward(model, cams[v], subset, render, seq_arena);
        const RenderOutput &bat = arena.views[v].out;
        if (seq.image.data() != bat.image.data()
            || seq.final_t != bat.final_t
            || seq.n_contrib != bat.n_contrib)
            return false;
    }
    return true;
}

/** Drive one sweep point with closed-loop clients. */
SweepPoint
runSweepPoint(const SnapshotSlot &slot, const RenderConfig &render,
              const std::vector<Camera> &path, int max_batch,
              int n_clients, int n_requests,
              const std::vector<SloRule> &slo_rules)
{
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.max_batch = max_batch;
    cfg.render = render;
    MetricsRegistry registry;
    cfg.metrics = &registry;
    RenderService service(slot, cfg);
    SloMonitor slo(registry, slo_rules);

    std::atomic<int> budget{n_requests};
    Timer wall;
    std::vector<std::thread> clients;
    for (int c = 0; c < n_clients; ++c) {
        clients.emplace_back([&, c] {
            // Staggered start along the shared route.
            size_t pos = static_cast<size_t>(c) * path.size()
                       / static_cast<size_t>(n_clients);
            while (budget.fetch_sub(1) > 0) {
                service.submit(path[pos % path.size()]).get();
                ++pos;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    const double elapsed = wall.seconds();
    // Join the worker before reading stats: the last batch's futures
    // resolve before its counters are recorded, so a pre-stop read
    // could miss up to one batch of requests/latencies.
    service.stop();
    ServeStats stats = service.stats();

    SweepPoint p;
    p.max_batch = max_batch;
    p.elapsed_s = elapsed;
    p.rps = elapsed > 0 ? stats.requests / elapsed : 0.0;
    p.p50_ms = stats.p50_ms;
    p.p99_ms = stats.p99_ms;
    p.mean_batch = stats.mean_batch;
    p.slo = slo.total(elapsed);
    return p;
}

CaseResult
runCase(const ServeCase &c)
{
    SceneSpec spec = SceneSpec::byName(c.scene);
    GaussianModel model = generateSceneGaussians(spec, c.n_gaussians);
    const int n_views = 48;
    std::vector<Camera> path =
        generateCameraPath(spec, n_views, c.width, c.height);

    RenderConfig render;
    render.sh_degree = c.sh_degree;

    CaseResult r;
    r.cfg = c;
    r.views = n_views;

    // Reference: the direct per-view loop, no service in the way.
    RenderArena arena;
    size_t subset_sum = 0;
    {
        for (int v = 0; v < 4; ++v) {    // warm-up
            auto s = frustumCull(model, path[v]);
            renderForward(model, path[v], s, render, arena);
        }
        Timer t;
        const int reps = 8;
        for (int v = 0; v < reps; ++v) {
            auto s = frustumCull(model, path[v]);
            subset_sum += s.size();
            renderForward(model, path[v], s, render, arena);
        }
        r.direct_ms_per_view = t.millis() / reps;
        r.mean_subset = subset_sum / reps;
    }

    std::vector<Camera> probe(path.begin(), path.begin() + 4);
    r.bitwise_identical = verifyBitIdentity(model, probe, render);

    SnapshotSlot slot;
    slot.publish(model, 0);
    const std::vector<SloRule> slo_rules =
        makeServeSloRules(r.direct_ms_per_view, c.clients);
    for (int b : {1, 2, 4, 8})
        r.sweep.push_back(runSweepPoint(slot, render, path, b,
                                        c.clients, c.requests,
                                        slo_rules));

    // Traced rerun: enable the span tracer, re-verify bit-identity and
    // re-drive the batch-4 point. The untraced baseline is a FRESH
    // back-to-back point, not the sweep measurement above — machine
    // drift between the sweep and this comparison would otherwise
    // masquerade as tracing overhead. Acceptance: images stay bitwise
    // identical and throughput stays close to untraced (the overhead
    // fraction is reported, not gated — wall-clock noise on shared
    // runners would make a hard gate flaky; only a determinism
    // violation fails the bench).
    {
        // Best-of-5 on each side: a single ~1-2s closed-loop point has
        // several percent of scheduler noise, which would drown the
        // actual tracing cost (a handful of clock reads + ring writes
        // per request).
        double baseline_rps = 0, traced_rps = 0;
        for (int rep = 0; rep < 5; ++rep) {
            SweepPoint b = runSweepPoint(slot, render, path, 4,
                                         c.clients, c.requests,
                                         slo_rules);
            baseline_rps = std::max(baseline_rps, b.rps);
            Tracer::global().clear();
            Tracer::enable(&Tracer::global());
            if (rep == 0)
                r.traced_bitwise_identical =
                    verifyBitIdentity(model, probe, render);
            SweepPoint t = runSweepPoint(slot, render, path, 4,
                                         c.clients, c.requests,
                                         slo_rules);
            Tracer::enable(nullptr);
            traced_rps = std::max(traced_rps, t.rps);
        }
        r.traced_rps = traced_rps;
        r.trace_overhead_frac =
            baseline_rps > 0 ? (baseline_rps - traced_rps) / baseline_rps
                             : 0.0;
    }
    return r;
}

bool
anySweepBreached(const std::vector<CaseResult> &results)
{
    for (const CaseResult &r : results)
        for (const SweepPoint &p : r.sweep)
            if (p.slo.verdict == SloVerdict::Breached)
                return true;
    return false;
}

void
writeJson(const std::string &path, const std::vector<CaseResult> &results,
          bool smoke)
{
    std::ofstream f(path);
    f << "{\n  \"bench\": \"serve\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n";
    bench::writeJsonContext(f);
    f << "  \"slo_breached\": "
      << (anySweepBreached(results) ? "true" : "false") << ",\n";
    f << "  \"cases\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const CaseResult &r = results[i];
        f << "    {\"name\": \"" << r.cfg.name << "\""
          << ", \"scene\": \"" << r.cfg.scene << "\""
          << ", \"gaussians\": " << r.cfg.n_gaussians
          << ", \"width\": " << r.cfg.width
          << ", \"height\": " << r.cfg.height
          << ", \"sh_degree\": " << r.cfg.sh_degree
          << ", \"views\": " << r.views
          << ", \"mean_subset\": " << r.mean_subset
          << ", \"clients\": " << r.cfg.clients
          << ", \"requests\": " << r.cfg.requests
          << ", \"direct_ms_per_view\": " << r.direct_ms_per_view
          << ", \"bitwise_identical\": "
          << (r.bitwise_identical ? "true" : "false")
          << ",\n     \"sweep\": [\n";
        for (size_t s = 0; s < r.sweep.size(); ++s) {
            const SweepPoint &p = r.sweep[s];
            f << "       {\"max_batch\": " << p.max_batch
              << ", \"rps\": " << p.rps
              << ", \"p50_ms\": " << p.p50_ms
              << ", \"p99_ms\": " << p.p99_ms
              << ", \"mean_batch\": " << p.mean_batch
              << ", \"elapsed_s\": " << p.elapsed_s
              << ", \"slo_verdict\": \""
              << sloVerdictName(p.slo.verdict) << "\"}"
              << (s + 1 < r.sweep.size() ? "," : "") << "\n";
        }
        f << "     ],\n     \"batch4_speedup\": " << r.batch4Speedup()
          << ",\n     \"traced_rps\": " << r.traced_rps
          << ", \"trace_overhead_frac\": " << r.trace_overhead_frac
          << ", \"traced_bitwise_identical\": "
          << (r.traced_bitwise_identical ? "true" : "false")
          << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_serve.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else {
            std::cerr << "usage: micro_serve [--smoke] [--out FILE]\n";
            return 2;
        }
    }

    // City-scale serving ladder: big models, small per-view sparsity,
    // preview-sized frames — the regime where the per-request cull is a
    // dominant cost and batching pays (see file comment).
    std::vector<ServeCase> cases;
    if (smoke) {
        cases = {{"smoke", "BigCity", 20000, 96, 54, 1, 4, 24}};
    } else {
        cases = {{"small", "BigCity", 100000, 160, 90, 2, 16, 192},
                 {"medium", "BigCity", 300000, 192, 108, 2, 16, 160},
                 {"large", "BigCity", 600000, 256, 144, 2, 16, 96}};
    }

    std::cout << "=== micro_serve: concurrent serving throughput ===\n"
              << bench::contextLine() << " (1 serve worker)\n\n";
    Table table({"Case", "Gaussians", "WxH", "Subset", "Batch", "Req/s",
                 "p50 ms", "p99 ms", "MeanB", "vs b1"});
    std::vector<CaseResult> results;
    bool all_identical = true;
    for (const ServeCase &c : cases) {
        CaseResult r = runCase(c);
        all_identical = all_identical && r.bitwise_identical
                     && r.traced_bitwise_identical;
        double rps1 = 0;
        for (const SweepPoint &p : r.sweep) {
            if (p.max_batch == 1)
                rps1 = p.rps;
            table.addRow(
                {r.cfg.name, std::to_string(r.cfg.n_gaussians),
                 std::to_string(c.width) + "x" + std::to_string(c.height),
                 std::to_string(r.mean_subset),
                 std::to_string(p.max_batch), Table::fmt(p.rps, 1),
                 Table::fmt(p.p50_ms, 1), Table::fmt(p.p99_ms, 1),
                 Table::fmt(p.mean_batch, 2),
                 Table::fmt(rps1 > 0 ? p.rps / rps1 : 0.0, 2)});
        }
        std::cout << "[" << r.cfg.name << "] direct "
                  << Table::fmt(r.direct_ms_per_view, 2)
                  << " ms/view, batched images "
                  << (r.bitwise_identical ? "bit-identical"
                                          : "MISMATCH")
                  << " vs sequential\n";
        std::cout << "[" << r.cfg.name << "] traced rerun (batch 4): "
                  << Table::fmt(r.traced_rps, 1) << " req/s ("
                  << Table::fmt(r.trace_overhead_frac * 100.0, 1)
                  << "% overhead), images "
                  << (r.traced_bitwise_identical ? "bit-identical"
                                                 : "MISMATCH")
                  << "\n";
        for (const SweepPoint &p : r.sweep)
            std::cout << "[" << r.cfg.name << "] slo (batch "
                      << p.max_batch << "): " << p.slo.summary()
                      << "\n";
        results.push_back(r);
    }
    std::cout << "\n";
    table.print(std::cout);

    writeJson(out_path, results, smoke);
    std::cout << "\nwrote " << out_path << "\n";
    if (!all_identical) {
        std::cerr << "FAIL: batched or traced images differ from "
                     "sequential\n";
        return 1;
    }
    if (anySweepBreached(results)) {
        std::cerr << "FAIL: a sweep point breached its closed-loop "
                     "SLO (see slo lines above)\n";
        return 1;
    }
    return 0;
}
