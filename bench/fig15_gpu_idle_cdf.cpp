/**
 * @file
 * Figure 15: CDF of the GPU idle rate (100 - SMs Active) for CLM vs
 * naive offloading across the five scenes on the RTX 4090, from the
 * simulated compute-stream timeline sampled Nsight-style — plus a
 * measured CDF built from the TransferEngine's real stage timers (each
 * microbatch's staging stall vs compute time) via sim/metrics.
 */

#include <iostream>

#include "common.hpp"
#include "math/stats.hpp"
#include "train/clm_trainer.hpp"
#include "train/naive_offload_trainer.hpp"
#include "train/quality_harness.hpp"

using namespace clm;
using namespace clm::bench;

namespace {

/** Measured idle-rate CDFs from the functional trainers. */
void
reportMeasured(Table &t)
{
    SceneSpec spec = SceneSpec::bicycle();
    spec.train = {1200, 8, 48, 48};
    GaussianModel gt = generateGroundTruth(spec, 1200);
    std::vector<Camera> cameras = trainCameras(spec);
    TrainConfig cfg;
    cfg.batch_size = 4;
    cfg.render.sh_degree = 1;
    cfg.loss.ssim_window = 5;
    cfg.planner.tsp.time_limit_ms = 0.5;
    std::vector<Image> gt_images =
        renderGroundTruth(gt, cameras, cfg.render);

    // CLM runs the full pipeline including the dedicated Adam thread
    // (§5.4); naive keeps Figure 3's synchronous, non-overlapped Adam.
    TrainConfig clm_cfg = cfg;
    clm_cfg.async_adam = true;
    ClmTrainer clm_t(makeTrainee(gt, 900, 5), cameras, gt_images,
                     clm_cfg);
    NaiveOffloadTrainer naive_t(makeTrainee(gt, 900, 5), cameras,
                                gt_images, cfg);
    clm_t.trainSteps(4);
    naive_t.trainSteps(4);

    auto add = [&](const char *name, const StageTimings &timings) {
        EmpiricalCdf cdf(gpuIdleSamples(timings, 2000));
        RuntimeBreakdown b = computeBreakdown(timings);
        t.addRow({"measured (func.)", name, Table::fmt(cdf.mean(), 1),
                  Table::fmt(cdf.percentile(50), 0),
                  Table::fmt(cdf.percentile(90), 0),
                  Table::fmt(100.0 * b.compute / b.total, 1)});
    };
    add(systemName(SystemKind::NaiveOffload), naive_t.stageTimings());
    add(systemName(SystemKind::Clm), clm_t.stageTimings());
}

} // namespace

int
main()
{
    std::cout << "=== Figure 15: GPU idle-rate CDFs (RTX 4090) ===\n\n";
    DeviceSpec dev = DeviceSpec::rtx4090();

    Table t({"Scene", "System", "Mean idle (%)", "P50 idle", "P90 idle",
             "Busy fraction (%)"});
    for (const SceneSpec &s : SceneSpec::all()) {
        SimWorkload w = SimWorkload::load(s);
        double n_target =
            maxTrainableGaussians(SystemKind::NaiveOffload, s, dev);
        for (SystemKind sys :
             {SystemKind::NaiveOffload, SystemKind::Clm}) {
            PlannerConfig cfg;
            cfg.system = sys;
            ThroughputResult r =
                simulateThroughput(cfg, w, n_target, dev);
            EmpiricalCdf cdf(r.idle_samples);
            t.addRow({s.name, systemName(sys),
                      Table::fmt(cdf.mean(), 1),
                      Table::fmt(cdf.percentile(50), 0),
                      Table::fmt(cdf.percentile(90), 0),
                      Table::fmt(r.utilization.sm_active, 1)});
        }
    }
    reportMeasured(t);
    t.print(std::cout);
    std::cout << "\nShape check (Figure 15): CLM's idle-rate curve "
                 "dominates naive offloading's on every scene (lower "
                 "mean idle, higher SMs-active), and high-resolution "
                 "scenes (Bicycle, Rubble) show the best utilization. "
                 "The 'measured' rows sample the TransferEngine's real "
                 "stall/compute timers; at the CPU-scale functional "
                 "profile the software rasterizer dominates, so both "
                 "systems sit near zero idle — the paper-scale contrast "
                 "comes from the simulated rows above.\n";
    return 0;
}
