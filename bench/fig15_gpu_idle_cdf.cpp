/**
 * @file
 * Figure 15: CDF of the GPU idle rate (100 - SMs Active) for CLM vs
 * naive offloading across the five scenes on the RTX 4090, from the
 * simulated compute-stream timeline sampled Nsight-style.
 */

#include <iostream>

#include "common.hpp"
#include "math/stats.hpp"

using namespace clm;
using namespace clm::bench;

int
main()
{
    std::cout << "=== Figure 15: GPU idle-rate CDFs (RTX 4090) ===\n\n";
    DeviceSpec dev = DeviceSpec::rtx4090();

    Table t({"Scene", "System", "Mean idle (%)", "P50 idle", "P90 idle",
             "Busy fraction (%)"});
    for (const SceneSpec &s : SceneSpec::all()) {
        SimWorkload w = SimWorkload::load(s);
        double n_target =
            maxTrainableGaussians(SystemKind::NaiveOffload, s, dev);
        for (SystemKind sys :
             {SystemKind::NaiveOffload, SystemKind::Clm}) {
            PlannerConfig cfg;
            cfg.system = sys;
            ThroughputResult r =
                simulateThroughput(cfg, w, n_target, dev);
            EmpiricalCdf cdf(r.idle_samples);
            t.addRow({s.name, systemName(sys),
                      Table::fmt(cdf.mean(), 1),
                      Table::fmt(cdf.percentile(50), 0),
                      Table::fmt(cdf.percentile(90), 0),
                      Table::fmt(r.utilization.sm_active, 1)});
        }
    }
    t.print(std::cout);
    std::cout << "\nShape check (Figure 15): CLM's idle-rate curve "
                 "dominates naive offloading's on every scene (lower "
                 "mean idle, higher SMs-active), and high-resolution "
                 "scenes (Bicycle, Rubble) show the best utilization.\n";
    return 0;
}
