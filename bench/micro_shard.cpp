/**
 * @file
 * Sharded-serving micro-benchmark: requests/sec and p50/p99 latency of
 * the RenderService in sharded mode over city-scale synthetic models,
 * swept across shard counts 1/2/4/8. Each request's frustum is routed
 * against the shard AABBs and only the selected shards render, so the
 * interesting outputs are (a) how much of the model the router prunes
 * per view on the BigCity camera path and (b) what that does to
 * throughput and tail latency as the shard count grows.
 *
 * Before timing, each sweep point verifies the sharded pipeline bitwise
 * against unsharded renderForward via an FNV-1a hash over every
 * activation buffer (image, final_t, n_contrib, isect_vals) — sharding
 * is a scheduling/placement choice, never a quality choice; the k-way
 * merge reconstructs the exact global depth order (see
 * shard/shard_renderer.hpp).
 *
 * Load model: N closed-loop synthetic clients walk the scene's camera
 * path from staggered offsets (same protocol as bench/micro_serve.cpp,
 * so the two JSONs are comparable).
 *
 * Prints a table and emits BENCH_shard.json (scripts/bench_shard.sh)
 * with the machine/build context block.
 *
 * Usage: micro_shard [--smoke] [--out FILE.json]
 */

#include <atomic>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "render/culling.hpp"
#include "render/rasterizer.hpp"
#include "serve/render_service.hpp"
#include "serve/snapshot.hpp"
#include "shard/router.hpp"
#include "shard/shard_renderer.hpp"
#include "shard/sharded_snapshot.hpp"

using namespace clm;

namespace {

struct ShardCase
{
    std::string name;
    std::string scene;
    size_t n_gaussians;
    int width, height;
    int sh_degree;
    int clients;
    int requests;       //!< Per sweep point.
    int probe_views;    //!< Views checked for bitwise identity.
};

struct SweepPoint
{
    int shards = 1;
    double build_ms = 0;         //!< One-time partition + carve cost.
    double rps = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double mean_selected = 0;    //!< Router: shards rendered / request.
    double frac_pruned = 0;      //!< Router: mean pruned fraction.
    bool bitwise_identical = false;
    std::vector<double> per_view_pruned;    //!< Fraction per path view.
};

struct CaseResult
{
    ShardCase cfg;
    size_t mean_subset = 0;
    int views = 0;
    double direct_ms_per_view = 0;    //!< Unsharded reference loop.
    std::vector<SweepPoint> sweep;
};

/** FNV-1a over the full forward activation state of @p out. */
uint64_t
hashOutput(const RenderOutput &out)
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const void *data, size_t bytes) {
        const unsigned char *c = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < bytes; ++i) {
            h ^= c[i];
            h *= 1099511628211ull;
        }
    };
    mix(out.image.data().data(), out.image.data().size() * sizeof(float));
    mix(out.final_t.data(), out.final_t.size() * sizeof(float));
    mix(out.n_contrib.data(), out.n_contrib.size() * sizeof(uint32_t));
    mix(out.isect_vals.data(), out.isect_vals.size() * sizeof(uint32_t));
    return h;
}

/** Routed sharded renders vs unsharded: FNV hashes must match. */
bool
verifyBitIdentity(const GaussianModel &model, const ShardedSnapshot &snap,
                  const std::vector<Camera> &cams,
                  const RenderConfig &render)
{
    ShardRouter router(snap);
    ShardRenderArena arena;
    RenderArena ref_arena;
    for (const Camera &cam : cams) {
        router.route(cam.frustum(), arena.route);
        const RenderOutput &sharded =
            renderForwardSharded(snap, arena.route, cam, render, arena);
        const uint64_t hs = hashOutput(sharded);
        const RenderOutput &ref = renderForward(
            model, cam, frustumCull(model, cam), render, ref_arena);
        if (hs != hashOutput(ref))
            return false;
    }
    return true;
}

/** Drive one sweep point with closed-loop clients (micro_serve
 *  protocol: staggered offsets along the shared route). */
void
runSweepPoint(const ShardedSnapshotSlot &slot, const RenderConfig &render,
              const std::vector<Camera> &path, int n_clients,
              int n_requests, SweepPoint &p)
{
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.max_batch = 4;
    cfg.render = render;
    RenderService service(slot, cfg);

    std::atomic<int> budget{n_requests};
    Timer wall;
    std::vector<std::thread> clients;
    for (int c = 0; c < n_clients; ++c) {
        clients.emplace_back([&, c] {
            size_t pos = static_cast<size_t>(c) * path.size()
                       / static_cast<size_t>(n_clients);
            while (budget.fetch_sub(1) > 0) {
                service.submit(path[pos % path.size()]).get();
                ++pos;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    const double elapsed = wall.seconds();
    service.stop();    // join before reading stats (last batch counted)
    ServeStats stats = service.stats();

    p.rps = elapsed > 0 ? stats.requests / elapsed : 0.0;
    p.p50_ms = stats.p50_ms;
    p.p99_ms = stats.p99_ms;
    p.mean_selected = stats.mean_shards_selected;
    p.frac_pruned = stats.mean_shard_frac_pruned;
}

CaseResult
runCase(const ShardCase &c)
{
    SceneSpec spec = SceneSpec::byName(c.scene);
    GaussianModel model = generateSceneGaussians(spec, c.n_gaussians);
    const int n_views = 48;
    std::vector<Camera> path =
        generateCameraPath(spec, n_views, c.width, c.height);

    RenderConfig render;
    render.sh_degree = c.sh_degree;

    CaseResult r;
    r.cfg = c;
    r.views = n_views;

    // Reference: the direct unsharded per-view loop.
    RenderArena arena;
    size_t subset_sum = 0;
    {
        for (int v = 0; v < 4; ++v) {    // warm-up
            auto s = frustumCull(model, path[v]);
            renderForward(model, path[v], s, render, arena);
        }
        Timer t;
        const int reps = 8;
        for (int v = 0; v < reps; ++v) {
            auto s = frustumCull(model, path[v]);
            subset_sum += s.size();
            renderForward(model, path[v], s, render, arena);
        }
        r.direct_ms_per_view = t.millis() / reps;
        r.mean_subset = subset_sum / reps;
    }

    auto base = std::make_shared<ModelSnapshot>();
    base->model = model;
    base->version = 1;
    base->param_hash = hashModelParams(model);

    for (int k : {1, 2, 4, 8}) {
        SweepPoint p;
        p.shards = k;
        Timer build;
        ShardedSnapshotSlot slot(k);
        slot.publish(base);
        p.build_ms = build.millis();
        auto snap = slot.acquire();

        std::vector<Camera> probe(path.begin(),
                                  path.begin() + c.probe_views);
        p.bitwise_identical =
            verifyBitIdentity(model, *snap, probe, render);

        // Router effectiveness across the whole path (per view).
        ShardRouter router(*snap);
        std::vector<uint32_t> selected;
        for (const Camera &cam : path) {
            router.route(cam.frustum(), selected);
            p.per_view_pruned.push_back(
                1.0 - static_cast<double>(selected.size()) / k);
        }

        runSweepPoint(slot, render, path, c.clients, c.requests, p);
        r.sweep.push_back(std::move(p));
    }
    return r;
}

void
writeJson(const std::string &path, const std::vector<CaseResult> &results,
          bool smoke)
{
    std::ofstream f(path);
    f << "{\n  \"bench\": \"shard\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n";
    bench::writeJsonContext(f);
    f << "  \"cases\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const CaseResult &r = results[i];
        f << "    {\"name\": \"" << r.cfg.name << "\""
          << ", \"scene\": \"" << r.cfg.scene << "\""
          << ", \"gaussians\": " << r.cfg.n_gaussians
          << ", \"width\": " << r.cfg.width
          << ", \"height\": " << r.cfg.height
          << ", \"sh_degree\": " << r.cfg.sh_degree
          << ", \"views\": " << r.views
          << ", \"mean_subset\": " << r.mean_subset
          << ", \"clients\": " << r.cfg.clients
          << ", \"requests\": " << r.cfg.requests
          << ", \"direct_ms_per_view\": " << r.direct_ms_per_view
          << ",\n     \"sweep\": [\n";
        for (size_t s = 0; s < r.sweep.size(); ++s) {
            const SweepPoint &p = r.sweep[s];
            f << "       {\"shards\": " << p.shards
              << ", \"rps\": " << p.rps
              << ", \"p50_ms\": " << p.p50_ms
              << ", \"p99_ms\": " << p.p99_ms
              << ", \"mean_shards_selected\": " << p.mean_selected
              << ", \"frac_pruned\": " << p.frac_pruned
              << ", \"build_ms\": " << p.build_ms
              << ", \"bitwise_identical\": "
              << (p.bitwise_identical ? "true" : "false")
              << ",\n        \"per_view_pruned\": [";
            for (size_t v = 0; v < p.per_view_pruned.size(); ++v)
                f << (v ? ", " : "") << p.per_view_pruned[v];
            f << "]}" << (s + 1 < r.sweep.size() ? "," : "") << "\n";
        }
        f << "     ]}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_shard.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else {
            std::cerr << "usage: micro_shard [--smoke] [--out FILE]\n";
            return 2;
        }
    }

    // City-scale sharded serving ladder: big models whose camera paths
    // see only a part of the scene per view — the regime where frustum
    // routing bounds the per-request working set.
    std::vector<ShardCase> cases;
    if (smoke) {
        cases = {{"smoke", "BigCity", 20000, 96, 54, 1, 4, 24, 2}};
    } else {
        cases = {{"small", "BigCity", 100000, 160, 90, 2, 16, 160, 4},
                 {"medium", "BigCity", 300000, 192, 108, 2, 16, 128, 4},
                 {"large", "BigCity", 600000, 256, 144, 2, 16, 96, 3}};
    }

    std::cout << "=== micro_shard: frustum-routed sharded serving ===\n"
              << bench::contextLine() << " (1 serve worker)\n\n";
    Table table({"Case", "Gaussians", "WxH", "Shards", "Req/s", "p50 ms",
                 "p99 ms", "Sel", "Pruned", "Bitwise"});
    std::vector<CaseResult> results;
    bool all_identical = true;
    for (const ShardCase &c : cases) {
        CaseResult r = runCase(c);
        for (const SweepPoint &p : r.sweep) {
            all_identical = all_identical && p.bitwise_identical;
            table.addRow(
                {r.cfg.name, std::to_string(r.cfg.n_gaussians),
                 std::to_string(c.width) + "x" + std::to_string(c.height),
                 std::to_string(p.shards), Table::fmt(p.rps, 1),
                 Table::fmt(p.p50_ms, 1), Table::fmt(p.p99_ms, 1),
                 Table::fmt(p.mean_selected, 2),
                 Table::fmt(p.frac_pruned * 100.0, 0) + "%",
                 p.bitwise_identical ? "yes" : "NO"});
        }
        std::cout << "[" << r.cfg.name << "] direct "
                  << Table::fmt(r.direct_ms_per_view, 2)
                  << " ms/view unsharded, subset "
                  << r.mean_subset << "\n";
        results.push_back(std::move(r));
    }
    std::cout << "\n";
    table.print(std::cout);

    writeJson(out_path, results, smoke);
    std::cout << "\nwrote " << out_path << "\n";
    if (!all_identical) {
        std::cerr << "FAIL: sharded frames differ from unsharded\n";
        return 1;
    }
    return 0;
}
