/**
 * @file
 * Figure 10: GPU memory breakdown (model states vs others) for Rubble
 * and BigCity at three model sizes on the RTX 4090 — the sizes at which
 * the baseline, naive offloading and CLM respectively hit their maxima.
 */

#include <iostream>

#include "common.hpp"

using namespace clm;
using namespace clm::bench;

namespace {

void
report(const SceneSpec &scene, const std::vector<double> &sizes)
{
    DeviceSpec dev = DeviceSpec::rtx4090();
    std::cout << "--- " << scene.name << " (RTX 4090) ---\n";
    Table t({"Model size (M)", "System", "Model states (GB)",
             "Others (GB)", "Total (GB)", "Fits?"});
    for (double n : sizes) {
        for (SystemKind sys :
             {SystemKind::Baseline, SystemKind::EnhancedBaseline,
              SystemKind::NaiveOffload, SystemKind::Clm}) {
            MemoryBreakdown b = gpuMemoryDemand(sys, scene, n, dev);
            bool fits = b.total() <= dev.gpu_memory_bytes;
            t.addRow({fmtMillions(n), systemName(sys),
                      Table::fmt(b.model_state_bytes / 1e9, 1),
                      Table::fmt((b.activation_bytes + b.reserve_bytes)
                                     / 1e9,
                                 1),
                      fits ? Table::fmt(b.total() / 1e9, 1) : "-",
                      fits ? "yes" : "OOM"});
        }
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Figure 10: GPU memory breakdown (RTX 4090) ===\n\n";
    // The paper's probe sizes: baseline max / naive max / CLM max.
    report(SceneSpec::rubble(), {15.3e6, 30.4e6, 45.2e6});
    report(SceneSpec::bigCity(), {15.3e6, 46.0e6, 102.2e6});
    std::cout
        << "Shape check (Figure 10): at the common size every system "
           "fits and CLM uses the least; at the middle size only the "
           "offloading systems survive; at the largest only CLM.\n";
    return 0;
}
