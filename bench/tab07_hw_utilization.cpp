/**
 * @file
 * Table 7 / Appendix A.4: CPU-core, GPU-DRAM and PCIe RX/TX utilization
 * of CLM vs naive offloading across the five scenes on the RTX 4090,
 * derived from the simulated timeline.
 */

#include <iostream>

#include "common.hpp"

using namespace clm;
using namespace clm::bench;

int
main()
{
    std::cout << "=== Table 7: hardware utilization (RTX 4090) ===\n\n";
    DeviceSpec dev = DeviceSpec::rtx4090();
    Table t({"Scene", "Metric", "Naive (%)", "CLM (%)"});
    for (const SceneSpec &s : SceneSpec::all()) {
        SimWorkload w = SimWorkload::load(s);
        double n_target =
            maxTrainableGaussians(SystemKind::NaiveOffload, s, dev);
        PlannerConfig ncfg, ccfg;
        ncfg.system = SystemKind::NaiveOffload;
        ccfg.system = SystemKind::Clm;
        HardwareUtilization un =
            simulateThroughput(ncfg, w, n_target, dev).utilization;
        HardwareUtilization uc =
            simulateThroughput(ccfg, w, n_target, dev).utilization;
        auto row = [&](const char *metric, double a, double b) {
            t.addRow({s.name, metric, Table::fmt(a, 1),
                      Table::fmt(b, 1)});
        };
        row("CPU Util", un.cpu_util, uc.cpu_util);
        row("DRAM Read", un.dram_read_util, uc.dram_read_util);
        row("DRAM Write", un.dram_write_util, uc.dram_write_util);
        row("PCIe RX", un.pcie_rx_util, uc.pcie_rx_util);
        row("PCIe TX", un.pcie_tx_util, uc.pcie_tx_util);
    }
    t.print(std::cout);
    std::cout
        << "\nShape check (Table 7): CLM keeps CPU cores and DRAM "
           "busier than naive offloading everywhere; its PCIe RX "
           "exceeds its TX because gradient offloading is a "
           "read-modify-write (the fetch adds RX traffic); overall PCIe "
           "utilization stays low.\n";
    return 0;
}
