/**
 * @file
 * Overload micro-benchmark: what happens to the RenderService when
 * open-loop arrivals exceed capacity. Closed-loop load (micro_serve)
 * can never oversubscribe the service — every client waits for its
 * response — so this bench drives an *open-loop* arrival schedule
 * (submit at fixed ticks regardless of completions) at 1x/2x/4x of the
 * measured closed-loop capacity and records, per load point: goodput
 * (admitted completions/s), shed fraction, and the p50/p99 latency of
 * admitted requests.
 *
 * Two admission configurations face the same schedule:
 *  - "reject": ShedPolicy::Reject with a short queue and a per-request
 *    deadline — the overload-hardened configuration. Admitted p99 stays
 *    bounded (the queue and the deadline cap how stale a request can
 *    get before rendering) and goodput stays at capacity: shedding
 *    costs no render time.
 *  - "block" baseline: the pre-admission-control behavior (effectively
 *    unbounded queue, no deadline). Under sustained overload the queue
 *    — and therefore p99 — grows without bound; the bench shows it by
 *    running the same 2x overload for a short and a long schedule and
 *    reporting the p99 growth.
 *
 * Admitted frames are verified bitwise against direct renderForward
 * calls (shedding changes WHICH requests render, never WHAT a render
 * produces), and every future must resolve — a request unresolved
 * after a generous timeout counts as hung and fails the bench.
 *
 * PR 10: every load point is also judged by the obs/slo layer. Two
 * rules anchored to the case's own capacity probe — the deadline-shed
 * ratio (serve.shed_deadline / serve.requests: a healthy Reject
 * config sheds at ADMISSION, so deadline expiry stays rare relative
 * to renders) and an admitted-latency p99 bound — must come out
 * Healthy/Degraded for the clean reject sweep, while a worker-stall
 * fault plan (util/fault) over the SAME rules and the SAME 2x
 * schedule must flip to Breached: the bench exits non-zero if either
 * side of that contract fails, and embeds the verdicts in
 * BENCH_overload.json for the CI smoke to assert. The block baseline
 * is judged but not gated — its long-run breach is the point of the
 * comparison.
 *
 * Prints a table and emits BENCH_overload.json
 * (scripts/bench_overload.sh) with the machine/build context block.
 *
 * Usage: micro_overload [--smoke] [--out FILE.json]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "render/culling.hpp"
#include "render/rasterizer.hpp"
#include "serve/render_service.hpp"
#include "serve/snapshot.hpp"
#include "util/fault.hpp"

using namespace clm;

namespace {

struct OverloadCase
{
    std::string name;
    std::string scene;
    size_t n_gaussians;
    int width, height;
    int sh_degree;
    int capacity_requests;    //!< Closed-loop capacity probe length.
    int requests_per_x;       //!< Open-loop requests per 1x of load.
};

struct PointResult
{
    std::string policy;    //!< "reject" or "block".
    double load_x = 0;     //!< Offered load as a multiple of capacity.
    int requests = 0;
    double offered_rps = 0;
    double elapsed_s = 0;
    uint64_t admitted = 0;
    uint64_t shed_queue_full = 0;
    uint64_t shed_deadline = 0;
    int hung = 0;
    double goodput_rps = 0;
    double shed_fraction = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    /** Latency decomposition (PR 9): where admitted requests spent
     *  their time — queued vs rendering — from the registry's
     *  log-bucket histograms (deterministic bucket-edge percentiles). */
    double queue_wait_p50_ms = 0;
    double queue_wait_p99_ms = 0;
    double render_p50_ms = 0;
    double render_p99_ms = 0;
    double mean_batch = 0;
    bool bitwise_checked = false;
    bool bitwise_identical = true;
    /** SLO evaluation over the point's whole window (SloMonitor
     *  total(): deadline-shed ratio + admitted-latency p99). */
    SloReport slo;
};

struct CaseResult
{
    OverloadCase cfg;
    double direct_ms_per_view = 0;
    double capacity_rps = 0;     //!< Closed-loop, through the service.
    double capacity_p99_ms = 0;
    std::vector<PointResult> points;       //!< Reject policy sweep.
    PointResult baseline_short;            //!< Block @ 2x, short run.
    PointResult baseline_long;             //!< Block @ 2x, 3x-long run.
    PointResult fault_point;               //!< Reject @ 2x + worker stall.

    const PointResult *
    rejectAt(double x) const
    {
        for (const PointResult &p : points)
            if (p.load_x == x)
                return &p;
        return nullptr;
    }
};

/** Closed-loop capacity probe: N clients, one in flight each, through
 *  the overload-hardened service's own render path (workers/max_batch
 *  as configured) — the honest "what can this box do" number the load
 *  multipliers are anchored to. */
void
measureCapacity(const SnapshotSlot &slot, const RenderConfig &render,
                const std::vector<Camera> &path, int n_requests,
                CaseResult &out)
{
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.max_batch = 4;
    cfg.render = render;
    RenderService service(slot, cfg);

    std::atomic<int> budget{n_requests};
    Timer wall;
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
            size_t pos = static_cast<size_t>(c) * path.size() / 4;
            while (budget.fetch_sub(1) > 0) {
                service.submit(path[pos % path.size()]).get();
                ++pos;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    const double elapsed = wall.seconds();
    service.stop();
    ServeStats stats = service.stats();
    out.capacity_rps =
        elapsed > 0 ? static_cast<double>(stats.requests) / elapsed : 0;
    out.capacity_p99_ms = stats.p99_ms;
}

/** The per-case SLO rule set, anchored to the case's own timing: a
 *  healthy Reject config sheds at admission (queue-full), so deadline
 *  expiry must stay rare relative to renders; admitted p99 must stay
 *  within the deadline plus a generous multiple of one render.
 *  @p deadline_ms is 0 for the block baseline (no deadline — the
 *  latency bound alone then judges it). */
std::vector<SloRule>
makeSloRules(double direct_ms, double deadline_ms)
{
    std::vector<SloRule> rules(2);
    rules[0].kind = SloRuleKind::CounterRatio;
    rules[0].metric = "serve.shed_deadline";
    rules[0].denominator = "serve.requests";
    rules[0].name = "deadline_shed_ratio";
    rules[0].warn = 0.1;
    rules[0].fail = 0.5;
    rules[1].kind = SloRuleKind::HistogramPercentile;
    rules[1].metric = "serve.latency_ms";
    rules[1].percentile = 99;
    rules[1].name = "latency_p99_ms";
    rules[1].warn = deadline_ms + 8.0 * direct_ms;
    rules[1].fail = deadline_ms + 24.0 * direct_ms;
    return rules;
}

/**
 * Drive one open-loop point: submit @p n_requests on the absolute
 * schedule t_i = i / rate (no waiting for completions), then wait for
 * every future. Verifies the first @p verify_n admitted frames bitwise
 * against direct renders AFTER timing ends. The point's service gets
 * a private MetricsRegistry watched by an SloMonitor built from
 * @p slo_rules; the total-window verdict lands in PointResult::slo.
 */
PointResult
driveOpenLoop(const SnapshotSlot &slot, const GaussianModel &model,
              const std::vector<Camera> &path, ServeConfig cfg,
              const std::string &policy_name, double load_x,
              double rate_rps, int n_requests, int verify_n,
              const std::vector<SloRule> &slo_rules)
{
    MetricsRegistry registry;
    cfg.metrics = &registry;
    RenderService service(slot, cfg);
    SloMonitor slo(registry, slo_rules);
    std::vector<std::future<RenderResponse>> pending;
    pending.reserve(n_requests);

    Timer wall;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n_requests; ++i) {
        const auto due =
            t0
            + std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(i / rate_rps));
        std::this_thread::sleep_until(due);
        pending.push_back(
            service.submit(path[static_cast<size_t>(i) % path.size()]));
    }

    PointResult r;
    r.policy = policy_name;
    r.load_x = load_x;
    r.requests = n_requests;
    r.offered_rps = rate_rps;

    // Every future must resolve — the no-hang contract. Keep only the
    // images needed for the bitwise check; verification renders run
    // after timing so they don't pollute goodput.
    std::vector<std::pair<size_t, Image>> to_verify;
    for (int i = 0; i < n_requests; ++i) {
        if (pending[i].wait_for(std::chrono::seconds(60))
            != std::future_status::ready) {
            ++r.hung;
            continue;
        }
        RenderResponse resp = pending[i].get();
        if (resp.ok()
            && to_verify.size() < static_cast<size_t>(verify_n))
            to_verify.emplace_back(static_cast<size_t>(i) % path.size(),
                                   std::move(resp.image));
    }
    r.elapsed_s = wall.seconds();
    service.stop();
    r.slo = slo.total(r.elapsed_s);

    ServeStats stats = service.stats();
    r.admitted = stats.requests;
    r.shed_queue_full = stats.shed_queue_full;
    r.shed_deadline = stats.shed_deadline;
    r.goodput_rps =
        r.elapsed_s > 0
            ? static_cast<double>(r.admitted) / r.elapsed_s
            : 0;
    r.shed_fraction =
        stats.submitted > 0
            ? static_cast<double>(stats.shed_queue_full
                                  + stats.shed_deadline)
                  / static_cast<double>(stats.submitted)
            : 0;
    r.p50_ms = stats.p50_ms;
    r.p99_ms = stats.p99_ms;
    r.queue_wait_p50_ms = stats.queue_wait_p50_ms;
    r.queue_wait_p99_ms = stats.queue_wait_p99_ms;
    r.render_p50_ms = stats.render_p50_ms;
    r.render_p99_ms = stats.render_p99_ms;
    r.mean_batch = stats.mean_batch;

    r.bitwise_checked = !to_verify.empty();
    for (const auto &v : to_verify) {
        auto subset = frustumCull(model, path[v.first]);
        Image direct =
            renderForward(model, path[v.first], subset, cfg.render)
                .image;
        if (!(direct.data() == v.second.data()))
            r.bitwise_identical = false;
    }
    return r;
}

CaseResult
runCase(const OverloadCase &c)
{
    SceneSpec spec = SceneSpec::byName(c.scene);
    GaussianModel model = generateSceneGaussians(spec, c.n_gaussians);
    std::vector<Camera> path =
        generateCameraPath(spec, 48, c.width, c.height);

    RenderConfig render;
    render.sh_degree = c.sh_degree;

    CaseResult r;
    r.cfg = c;

    // Direct per-view reference (sizes the deadline below).
    RenderArena arena;
    {
        for (int v = 0; v < 4; ++v) {
            auto s = frustumCull(model, path[v]);
            renderForward(model, path[v], s, render, arena);
        }
        Timer t;
        const int reps = 8;
        for (int v = 0; v < reps; ++v) {
            auto s = frustumCull(model, path[v]);
            renderForward(model, path[v], s, render, arena);
        }
        r.direct_ms_per_view = t.millis() / reps;
    }

    SnapshotSlot slot;
    slot.publish(model, 0);
    measureCapacity(slot, render, path, c.capacity_requests, r);

    // The overload-hardened configuration: short queue + deadline +
    // Reject. The deadline (in queue-wait terms) is what bounds
    // admitted p99 under overload; the queue bound is what keeps the
    // shed path cheap.
    ServeConfig reject_cfg;
    reject_cfg.workers = 1;
    reject_cfg.max_batch = 4;
    reject_cfg.queue_capacity = 6;
    reject_cfg.render = render;
    reject_cfg.admission.shed = ShedPolicy::Reject;
    reject_cfg.admission.deadline_s =
        6.0 * r.direct_ms_per_view / 1e3;

    const double deadline_ms = reject_cfg.admission.deadline_s * 1e3;
    const std::vector<SloRule> reject_rules =
        makeSloRules(r.direct_ms_per_view, deadline_ms);

    const int verify_n = 12;
    for (double x : {1.0, 2.0, 4.0}) {
        const int n = static_cast<int>(c.requests_per_x * x);
        r.points.push_back(driveOpenLoop(
            slot, model, path, reject_cfg, "reject", x,
            x * r.capacity_rps, n, verify_n, reject_rules));
    }

    // Blocking baseline: the pre-admission-control service — submit
    // blocks only at a far-away capacity bound, requests queue without
    // deadline. p99 then scales with how LONG the overload lasts, which
    // the short/long pair makes visible. Judged by the same rule
    // shapes (deadline 0: the latency bound alone) but never gated —
    // its long-run breach is the demonstration.
    ServeConfig block_cfg = reject_cfg;
    block_cfg.admission = AdmissionConfig{};    // Block, no deadline
    block_cfg.queue_capacity = 1u << 20;
    const std::vector<SloRule> block_rules =
        makeSloRules(r.direct_ms_per_view, 0.0);
    r.baseline_short = driveOpenLoop(slot, model, path, block_cfg,
                                     "block", 2.0, 2.0 * r.capacity_rps,
                                     c.requests_per_x, verify_n,
                                     block_rules);
    r.baseline_long = driveOpenLoop(slot, model, path, block_cfg,
                                    "block", 2.0, 2.0 * r.capacity_rps,
                                    3 * c.requests_per_x, verify_n,
                                    block_rules);

    // Fault injection: the SAME 2x schedule and the SAME rules as the
    // clean reject point, but the worker stalls (util/fault) far past
    // the deadline on every pop — queued requests expire at dequeue,
    // so deadline sheds swamp renders and the deadline-shed ratio
    // rule must flip to Breached. This is the discriminator the
    // acceptance gate asserts from both sides.
    FaultPlan stall_plan;
    stall_plan.at(FaultPoint::WorkerStall).every_n = 1;
    stall_plan.at(FaultPoint::WorkerStall).stall_ms =
        std::max(100.0, 4.0 * deadline_ms);
    FaultInjector stall(stall_plan);
    ServeConfig fault_cfg = reject_cfg;
    fault_cfg.faults = &stall;
    r.fault_point = driveOpenLoop(slot, model, path, fault_cfg,
                                  "reject+stall", 2.0,
                                  2.0 * r.capacity_rps, c.requests_per_x,
                                  verify_n, reject_rules);
    return r;
}

void
writePoint(std::ofstream &f, const PointResult &p, const char *indent)
{
    f << indent << "{\"policy\": \"" << p.policy << "\""
      << ", \"load_x\": " << p.load_x
      << ", \"requests\": " << p.requests
      << ", \"offered_rps\": " << p.offered_rps
      << ", \"goodput_rps\": " << p.goodput_rps
      << ", \"admitted\": " << p.admitted
      << ", \"shed_queue_full\": " << p.shed_queue_full
      << ", \"shed_deadline\": " << p.shed_deadline
      << ", \"shed_fraction\": " << p.shed_fraction
      << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
      << ", \"queue_wait_p50_ms\": " << p.queue_wait_p50_ms
      << ", \"queue_wait_p99_ms\": " << p.queue_wait_p99_ms
      << ", \"render_p50_ms\": " << p.render_p50_ms
      << ", \"render_p99_ms\": " << p.render_p99_ms
      << ", \"mean_batch\": " << p.mean_batch
      << ", \"elapsed_s\": " << p.elapsed_s
      << ", \"hung_requests\": " << p.hung
      << ", \"slo_verdict\": \"" << sloVerdictName(p.slo.verdict)
      << "\", \"slo\": [";
    for (size_t i = 0; i < p.slo.rules.size(); ++i) {
        const SloObservation &o = p.slo.rules[i];
        f << (i ? ", " : "") << "{\"rule\": \"" << o.name
          << "\", \"value\": " << o.value
          << ", \"samples\": " << o.samples << ", \"verdict\": \""
          << sloVerdictName(o.verdict) << "\"}";
    }
    f << "]}";
}

/** Any CLEAN reject point Breached — the flag scripts/bench_gate.py
 *  fails on (fault point and block baselines excluded by design). */
bool
anyCleanRejectBreached(const std::vector<CaseResult> &results)
{
    for (const CaseResult &r : results)
        for (const PointResult &p : r.points)
            if (p.slo.verdict == SloVerdict::Breached)
                return true;
    return false;
}

void
writeJson(const std::string &path, const std::vector<CaseResult> &results,
          bool smoke, int total_hung, bool all_identical)
{
    std::ofstream f(path);
    f << "{\n  \"bench\": \"overload\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n";
    bench::writeJsonContext(f);
    f << "  \"hung_requests\": " << total_hung << ",\n"
      << "  \"admitted_bitwise_identical\": "
      << (all_identical ? "true" : "false") << ",\n"
      << "  \"slo_breached\": "
      << (anyCleanRejectBreached(results) ? "true" : "false") << ",\n";
    f << "  \"cases\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const CaseResult &r = results[i];
        const PointResult *p1 = r.rejectAt(1.0);
        const PointResult *p2 = r.rejectAt(2.0);
        const double p99_ratio_2x =
            (p1 && p2 && p1->p99_ms > 0) ? p2->p99_ms / p1->p99_ms : 0;
        const double goodput_frac_2x =
            (p2 && r.capacity_rps > 0)
                ? p2->goodput_rps / r.capacity_rps
                : 0;
        const double baseline_growth =
            r.baseline_short.p99_ms > 0
                ? r.baseline_long.p99_ms / r.baseline_short.p99_ms
                : 0;
        f << "    {\"name\": \"" << r.cfg.name << "\""
          << ", \"scene\": \"" << r.cfg.scene << "\""
          << ", \"gaussians\": " << r.cfg.n_gaussians
          << ", \"width\": " << r.cfg.width
          << ", \"height\": " << r.cfg.height
          << ", \"sh_degree\": " << r.cfg.sh_degree
          << ", \"direct_ms_per_view\": " << r.direct_ms_per_view
          << ", \"capacity_rps\": " << r.capacity_rps
          << ", \"capacity_p99_ms\": " << r.capacity_p99_ms
          << ",\n     \"points\": [\n";
        for (size_t s = 0; s < r.points.size(); ++s) {
            writePoint(f, r.points[s], "       ");
            f << (s + 1 < r.points.size() ? "," : "") << "\n";
        }
        f << "     ],\n     \"baseline_short\": ";
        writePoint(f, r.baseline_short, "");
        f << ",\n     \"baseline_long\": ";
        writePoint(f, r.baseline_long, "");
        f << ",\n     \"fault_point\": ";
        writePoint(f, r.fault_point, "");
        f << ",\n     \"admitted_p99_ratio_2x\": " << p99_ratio_2x
          << ",\n     \"goodput_frac_of_capacity_2x\": "
          << goodput_frac_2x
          << ",\n     \"baseline_p99_growth\": " << baseline_growth
          << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_overload.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else {
            std::cerr << "usage: micro_overload [--smoke] [--out FILE]\n";
            return 2;
        }
    }

    std::vector<OverloadCase> cases;
    if (smoke) {
        cases = {{"smoke", "BigCity", 20000, 96, 54, 1, 48, 48}};
    } else {
        cases = {{"small", "BigCity", 100000, 160, 90, 2, 96, 240},
                 {"medium", "BigCity", 300000, 192, 108, 2, 64, 120}};
    }

    std::cout
        << "=== micro_overload: open-loop overload behavior ===\n"
        << bench::contextLine()
        << " (1 serve worker, reject: queue=8 + deadline; block: "
           "unbounded)\n\n";
    Table table({"Case", "Policy", "Load", "Offered", "Goodput",
                 "Shed%", "p50 ms", "p99 ms", "Hung", "SLO"});
    std::vector<CaseResult> results;
    int total_hung = 0;
    bool all_identical = true;
    for (const OverloadCase &c : cases) {
        CaseResult r = runCase(c);
        std::cout << "[" << r.cfg.name << "] direct "
                  << Table::fmt(r.direct_ms_per_view, 2)
                  << " ms/view, capacity "
                  << Table::fmt(r.capacity_rps, 1) << " req/s (p99 "
                  << Table::fmt(r.capacity_p99_ms, 1) << " ms)\n";
        auto add_row = [&](const PointResult &p) {
            total_hung += p.hung;
            all_identical = all_identical
                            && (!p.bitwise_checked || p.bitwise_identical);
            table.addRow({r.cfg.name, p.policy,
                          Table::fmt(p.load_x, 0) + "x",
                          Table::fmt(p.offered_rps, 1),
                          Table::fmt(p.goodput_rps, 1),
                          Table::fmt(p.shed_fraction * 100.0, 1),
                          Table::fmt(p.p50_ms, 1),
                          Table::fmt(p.p99_ms, 1),
                          std::to_string(p.hung),
                          sloVerdictName(p.slo.verdict)});
        };
        for (const PointResult &p : r.points)
            add_row(p);
        add_row(r.baseline_short);
        add_row(r.baseline_long);
        add_row(r.fault_point);
        results.push_back(std::move(r));
    }
    std::cout << "\n";
    table.print(std::cout);
    for (const CaseResult &r : results) {
        const PointResult *p1 = r.rejectAt(1.0);
        const PointResult *p2 = r.rejectAt(2.0);
        if (p1 && p2 && p1->p99_ms > 0 && r.capacity_rps > 0)
            std::cout << "[" << r.cfg.name
                      << "] reject@2x: p99 "
                      << Table::fmt(p2->p99_ms / p1->p99_ms, 2)
                      << "x of 1x-load p99, goodput "
                      << Table::fmt(
                             p2->goodput_rps / r.capacity_rps * 100.0, 1)
                      << "% of capacity; block baseline p99 grows "
                      << Table::fmt(r.baseline_long.p99_ms
                                        / r.baseline_short.p99_ms,
                                    2)
                      << "x when the run is 3x longer\n";
        if (p2)
            std::cout << "[" << r.cfg.name
                      << "] reject@2x decomposition: queue-wait p99 "
                      << Table::fmt(p2->queue_wait_p99_ms, 1)
                      << " ms vs render p99 "
                      << Table::fmt(p2->render_p99_ms, 1) << " ms\n";
        std::cout << "[" << r.cfg.name << "] slo: clean reject@2x "
                  << r.points[1].slo.summary() << "\n[" << r.cfg.name
                  << "] slo: worker-stall fault "
                  << r.fault_point.slo.summary() << "\n";
    }

    writeJson(out_path, results, smoke, total_hung, all_identical);
    std::cout << "\nwrote " << out_path << "\n";
    if (total_hung > 0) {
        std::cerr << "FAIL: " << total_hung
                  << " requests never resolved\n";
        return 1;
    }
    if (!all_identical) {
        std::cerr << "FAIL: admitted frames differ from direct renders\n";
        return 1;
    }
    // The two-sided SLO contract: the overload-hardened config must
    // never BREACH on a clean run (Healthy/Degraded both acceptable —
    // overload sheds by design), and the worker-stall fault must be
    // caught as a breach (a monitor that can't see a stalled worker
    // is not watching anything).
    int rc = 0;
    for (const CaseResult &r : results) {
        for (const PointResult &p : r.points)
            if (p.slo.verdict == SloVerdict::Breached) {
                std::cerr << "FAIL: [" << r.cfg.name
                          << "] clean reject@" << p.load_x
                          << "x breached SLO: "
                          << p.slo.summary() << "\n";
                rc = 1;
            }
        if (r.fault_point.slo.verdict != SloVerdict::Breached) {
            std::cerr << "FAIL: [" << r.cfg.name
                      << "] worker-stall fault NOT caught as breach: "
                      << r.fault_point.slo.summary() << "\n";
            rc = 1;
        }
    }
    return rc;
}
