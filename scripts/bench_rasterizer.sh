#!/usr/bin/env bash
# Build and run the rasterizer micro-benchmark, emitting
# BENCH_rasterizer.json in the repo root so the perf trajectory of the
# render hot path is tracked across PRs.
#
# The JSON includes a machine/build context block (thread count,
# compiler, SIMD backend, CLM_DISABLE_SIMD), so recorded points are
# comparable across runs; pin the worker count with CLM_THREADS=N.
#
# Uses a dedicated build-release/ tree so it never flips the cached
# build type of the default build/ directory that verify.sh uses.
#
# Usage: scripts/bench_rasterizer.sh [--smoke]
#   --smoke  tiny single-rep run (CI "builds and runs" gate, no numbers
#            worth recording)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j"$JOBS" --target micro_rasterizer
./build-release/micro_rasterizer "$@" --out BENCH_rasterizer.json

# Judge this run against the matched-context bench history, then record
# it (bench/history/rasterizer.jsonl). Exits non-zero on a breached regression
# or an embedded SLO breach. Skip with CLM_BENCH_GATE=off; bless a new
# baseline after an intentional perf change with
#   python3 scripts/bench_gate.py bless --bench rasterizer --context-of BENCH_rasterizer.json
if [ "${CLM_BENCH_GATE:-on}" != "off" ]; then
  python3 scripts/bench_gate.py gate --bench rasterizer --json BENCH_rasterizer.json
fi
