#!/usr/bin/env bash
# Build and run the sharded-serving micro-benchmark, emitting
# BENCH_shard.json in the repo root: requests/sec and p50/p99 latency of
# the RenderService in sharded mode over city-scale models, swept across
# shard counts 1/2/4/8, with the per-view fraction of shards the frustum
# router pruned and a bitwise-identity flag (sharded frames are verified
# hash-identical to unsharded renderForward before timing).
#
# The JSON includes the machine/build context block (thread count,
# compiler, SIMD backend, CLM_DISABLE_SIMD). Worker threads default to
# CLM_THREADS=1 so recorded points are single-core-comparable across
# runs; export CLM_THREADS to override.
#
# Uses the shared build-release/ tree so it never flips the cached
# build type of the default build/ directory that verify.sh uses.
#
# Usage: scripts/bench_shard.sh [--smoke]
#   --smoke   tiny single-case run (CI "builds and runs" gate)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
export CLM_THREADS="${CLM_THREADS:-1}"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j"$JOBS" --target micro_shard
./build-release/micro_shard "$@" --out BENCH_shard.json

# Judge this run against the matched-context bench history, then record
# it (bench/history/shard.jsonl). Exits non-zero on a breached regression
# or an embedded SLO breach. Skip with CLM_BENCH_GATE=off; bless a new
# baseline after an intentional perf change with
#   python3 scripts/bench_gate.py bless --bench shard --context-of BENCH_shard.json
if [ "${CLM_BENCH_GATE:-on}" != "off" ]; then
  python3 scripts/bench_gate.py gate --bench shard --json BENCH_shard.json
fi
