#!/usr/bin/env bash
# Build and run the composed-serving micro-benchmark, emitting
# BENCH_compose.json in the repo root: requests/sec and p50/p99 latency
# of the RenderService across the batch x shards grid {1,4} x {1,8} on
# city-scale models with a single render worker, plus the headline
# composed_speedup (batch=4, K=8 vs view-at-a-time unsharded) and a
# bitwise-identity flag per grid point (composed frames are verified
# hash-identical to sequential unsharded renderForward — under the
# dispatched SIMD kernel table AND the forced scalar table — before
# timing).
#
# The JSON includes the machine/build context block (thread count,
# compiler, SIMD backend, CLM_DISABLE_SIMD). Worker threads default to
# CLM_THREADS=1 so recorded points are single-core-comparable across
# runs; export CLM_THREADS to override.
#
# Uses the shared build-release/ tree so it never flips the cached
# build type of the default build/ directory that verify.sh uses.
#
# Usage: scripts/bench_compose.sh [--smoke]
#   --smoke   tiny single-case run (CI "builds and runs" gate)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
export CLM_THREADS="${CLM_THREADS:-1}"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j"$JOBS" --target micro_compose
./build-release/micro_compose "$@" --out BENCH_compose.json

# Judge this run against the matched-context bench history, then record
# it (bench/history/compose.jsonl). Exits non-zero on a breached regression
# or an embedded SLO breach. Skip with CLM_BENCH_GATE=off; bless a new
# baseline after an intentional perf change with
#   python3 scripts/bench_gate.py bless --bench compose --context-of BENCH_compose.json
if [ "${CLM_BENCH_GATE:-on}" != "off" ]; then
  python3 scripts/bench_gate.py gate --bench compose --json BENCH_compose.json
fi
