#!/usr/bin/env bash
# Build and run the serving micro-benchmark, emitting BENCH_serve.json
# in the repo root: requests/sec and p50/p99 latency of the
# RenderService over city-scale models, swept across coalescing batch
# sizes 1/2/4/8 (max_batch=1 is view-at-a-time serving; the fused
# multi-view pipeline serves the larger batches and its frames are
# verified bit-identical to sequential renders before timing).
#
# The JSON includes the machine/build context block (thread count,
# compiler, SIMD backend, CLM_DISABLE_SIMD). Worker threads default to
# CLM_THREADS=1 so recorded points are single-core-comparable across
# runs (the batching speedup is an algorithmic-sharing win, not a
# parallelism win); export CLM_THREADS to override.
#
# Uses the shared build-release/ tree so it never flips the cached
# build type of the default build/ directory that verify.sh uses.
#
# Usage: scripts/bench_serve.sh [--smoke]
#   --smoke   tiny single-case run (CI "builds and runs" gate)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
export CLM_THREADS="${CLM_THREADS:-1}"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j"$JOBS" --target micro_serve
./build-release/micro_serve "$@" --out BENCH_serve.json

# Judge this run against the matched-context bench history, then record
# it (bench/history/serve.jsonl). Exits non-zero on a breached regression
# or an embedded SLO breach. Skip with CLM_BENCH_GATE=off; bless a new
# baseline after an intentional perf change with
#   python3 scripts/bench_gate.py bless --bench serve --context-of BENCH_serve.json
if [ "${CLM_BENCH_GATE:-on}" != "off" ]; then
  python3 scripts/bench_gate.py gate --bench serve --json BENCH_serve.json
fi
