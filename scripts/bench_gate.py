#!/usr/bin/env python3
"""Bench-history regression gate.

Every bench script appends its run to bench/history/<bench>.jsonl and
checks the run against the matched-context baseline BEFORE recording
it (so a run is never its own baseline). A record is one JSON line:

    {"ts": ..., "bench": "serve", "smoke": true,
     "context_key": "ab12cd34ef56", "context": {...},
     "metrics": {"small.b4.rps": 320.8, ...}, "slo_breached": false}

Context matching: runs only compare against history from the same
machine shape — the context_key hashes the bench name, smoke flag and
the BENCH context block (threads, compiler, simd dispatch, build
type). A fresh machine (or a compiler upgrade) therefore starts with
"no_baseline" — the gate passes and seeds history instead of
comparing apples to oranges.

Noise-aware tolerance bands: the baseline per metric is the BEST of
the last --baseline-n matched runs (min for lower-is-better, max for
higher-is-better) — min-of-N absorbs one-sided scheduler noise — and
the regression ratio is symmetric (how many times worse than
baseline, regardless of direction), judged against warn/fail bands
scaled per metric kind (latency percentiles get more slack than
throughput) and widened for --smoke-sized runs.

Verdicts mirror obs/slo.hpp: healthy / degraded / breached (plus
no_baseline). `check` exits non-zero on breached — including when the
bench itself embedded "slo_breached": true — and writes a
machine-readable verdict JSON for CI to upload.

Usage:
  bench_gate.py record --bench NAME --json FILE [--history DIR]
  bench_gate.py check  --bench NAME --json FILE [--history DIR]
                       [--out FILE] [--baseline-n N] [--warn R] [--fail R]
  bench_gate.py gate   --bench NAME --json FILE ...   # check, then record;
                                                      # exits with check's status
  bench_gate.py bless  --bench NAME [--history DIR] [--context-of FILE]

Blessing a new baseline after an INTENTIONAL perf change: run
`bless --bench X --context-of BENCH_X.json` to drop the matched
context's history (or omit --context-of to drop the bench's whole
history); the next run re-seeds it.
"""

import argparse
import hashlib
import json
import os
import sys
import time

# ---------------------------------------------------------------------------
# context keying

CONTEXT_FIELDS = (
    "threads",
    "clm_threads_env",
    "compiler",
    "simd",
    "simd_dispatch",
    "simd_disabled",
    "build",
)


def context_key(bench, data):
    ctx = data.get("context", {})
    basis = {"bench": bench, "smoke": bool(data.get("smoke", False))}
    for field in CONTEXT_FIELDS:
        basis[field] = ctx.get(field)
    blob = json.dumps(basis, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


# ---------------------------------------------------------------------------
# metric extraction: {name: (value, direction, tolerance_scale)}
# direction "higher" = regressions are drops, "lower" = regressions are
# rises. tolerance_scale widens the bands for noisier metric kinds.

LAT = 1.5     # latency percentiles: noisier than throughput
RATIO = 2.0   # speedup ratios: quotient of two noisy numbers


def extract_serve(data):
    m = {}
    for case in data.get("cases", []):
        name = case.get("name", "case")
        m[f"{name}.direct_ms_per_view"] = (case["direct_ms_per_view"], "lower", LAT)
        for pt in case.get("sweep", []):
            b = pt.get("max_batch", 0)
            m[f"{name}.b{b}.rps"] = (pt["rps"], "higher", 1.0)
            m[f"{name}.b{b}.p99_ms"] = (pt["p99_ms"], "lower", LAT)
        if case.get("batch4_speedup"):
            m[f"{name}.batch4_speedup"] = (case["batch4_speedup"], "higher", RATIO)
    return m


def extract_overload(data):
    m = {}
    for case in data.get("cases", []):
        name = case.get("name", "case")
        m[f"{name}.capacity_rps"] = (case["capacity_rps"], "higher", 1.0)
        for pt in case.get("points", []):
            if pt.get("policy") != "reject":
                continue
            x = pt.get("load_x", 0)
            tag = f"{name}.reject{x:g}x"
            m[f"{tag}.goodput_rps"] = (pt["goodput_rps"], "higher", 1.0)
            if pt.get("p99_ms", 0) > 0:
                m[f"{tag}.p99_ms"] = (pt["p99_ms"], "lower", LAT)
    return m


def extract_train_step(data):
    m = {}
    for case in data.get("cases", []):
        name = case.get("name", "case")
        for field, tol in (("step_ms", 1.0), ("raster_bwd_ms", 1.0),
                           ("composite_ms", LAT)):
            if field in case:
                m[f"{name}.{field}"] = (case[field], "lower", tol)
    return m


def extract_compose(data):
    m = {}
    for case in data.get("cases", []):
        name = case.get("name", "case")
        if case.get("composed_speedup"):
            m[f"{name}.composed_speedup"] = (case["composed_speedup"],
                                             "higher", RATIO)
        for pt in case.get("grid", []):
            tag = f"{name}.b{pt.get('batch', 0)}s{pt.get('shards', 0)}"
            m[f"{tag}.rps"] = (pt["rps"], "higher", 1.0)
            if pt.get("p99_ms", 0) > 0:
                m[f"{tag}.p99_ms"] = (pt["p99_ms"], "lower", LAT)
    return m


def extract_generic(data):
    """Fallback: scrape rps/p99 fields wherever they sit."""
    m = {}

    def walk(node, path):
        if isinstance(node, dict):
            label = node.get("name")
            for k, v in node.items():
                sub = f"{path}.{label or k}" if label and k != "name" else f"{path}.{k}"
                walk(v, sub if label is None else f"{path}.{label}.{k}")
        elif isinstance(node, list):
            for i, v in enumerate(node):
                walk(v, f"{path}[{i}]")
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            leaf = path.rsplit(".", 1)[-1]
            if leaf == "rps" or leaf.endswith(("_rps", "_per_s")):
                m[path.lstrip(".")] = (node, "higher", 1.0)
            elif leaf == "p99_ms":
                m[path.lstrip(".")] = (node, "lower", LAT)
            elif leaf in ("fwd_ms", "bwd_ms", "step_ms"):
                m[path.lstrip(".")] = (node, "lower", 1.0)

    walk(data, "")
    return m


EXTRACTORS = {
    "serve": extract_serve,
    "overload": extract_overload,
    "train_step": extract_train_step,
    "compose": extract_compose,
}


def extract_metrics(bench, data):
    return EXTRACTORS.get(bench, extract_generic)(data)


# ---------------------------------------------------------------------------
# history

def history_path(history_dir, bench):
    return os.path.join(history_dir, f"{bench}.jsonl")


def load_history(history_dir, bench):
    path = history_path(history_dir, bench)
    records = []
    if not os.path.exists(path):
        return records
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                print(f"[bench_gate] skipping corrupt history line in {path}",
                      file=sys.stderr)
    return records


def make_record(bench, data):
    return {
        "ts": time.time(),
        "bench": bench,
        "smoke": bool(data.get("smoke", False)),
        "context_key": context_key(bench, data),
        "context": data.get("context", {}),
        "metrics": {k: v for k, (v, _d, _t) in
                    sorted(extract_metrics(bench, data).items())},
        "slo_breached": bool(data.get("slo_breached", False)),
    }


def record_run(args, data):
    os.makedirs(args.history, exist_ok=True)
    rec = make_record(args.bench, data)
    with open(history_path(args.history, args.bench), "a") as f:
        f.write(json.dumps(rec) + "\n")
    print(f"[bench_gate] recorded {args.bench} run "
          f"(context {rec['context_key']}, {len(rec['metrics'])} metrics) "
          f"-> {history_path(args.history, args.bench)}")
    return 0


# ---------------------------------------------------------------------------
# check

VERDICT_RANK = {"no_baseline": 0, "healthy": 0, "degraded": 1, "breached": 2}


def regression_ratio(value, baseline, direction):
    """Symmetric 'times worse than baseline, minus one': 3x slower and
    3x less throughput both come out as 2.0. <= 0 means no regression."""
    if baseline <= 0 or value <= 0:
        return 0.0
    if direction == "lower":
        return value / baseline - 1.0
    return baseline / value - 1.0


def check_run(args, data):
    key = context_key(args.bench, data)
    metrics = extract_metrics(args.bench, data)
    history = [r for r in load_history(args.history, args.bench)
               if r.get("context_key") == key]
    baseline_runs = history[-args.baseline_n:]

    smoke_scale = 2.0 if data.get("smoke", False) else 1.0
    results = []
    worst = "healthy"
    for name in sorted(metrics):
        value, direction, tol = metrics[name]
        base_values = [r["metrics"][name] for r in baseline_runs
                       if name in r.get("metrics", {})]
        entry = {"name": name, "value": value, "direction": direction}
        if not base_values:
            entry["verdict"] = "no_baseline"
            results.append(entry)
            continue
        baseline = (min(base_values) if direction == "lower"
                    else max(base_values))
        ratio = regression_ratio(value, baseline, direction)
        warn = args.warn * tol * smoke_scale
        fail = args.fail * tol * smoke_scale
        verdict = ("breached" if ratio > fail
                   else "degraded" if ratio > warn else "healthy")
        entry.update(baseline=baseline, ratio=round(ratio, 4),
                     warn=round(warn, 4), fail=round(fail, 4),
                     verdict=verdict)
        results.append(entry)
        if VERDICT_RANK[verdict] > VERDICT_RANK[worst]:
            worst = verdict

    slo_breached = bool(data.get("slo_breached", False))
    if slo_breached:
        worst = "breached"
    if not baseline_runs and worst == "healthy" and not slo_breached:
        overall = "no_baseline"
    else:
        overall = worst

    verdict_doc = {
        "bench": args.bench,
        "context_key": key,
        "smoke": bool(data.get("smoke", False)),
        "baseline_runs": len(baseline_runs),
        "slo_breached": slo_breached,
        "verdict": overall,
        "metrics": results,
    }
    out_path = args.out or f"BENCH_gate_{args.bench}.json"
    with open(out_path, "w") as f:
        json.dump(verdict_doc, f, indent=1)
        f.write("\n")

    regressed = [r for r in results
                 if r.get("verdict") in ("degraded", "breached")]
    print(f"[bench_gate] {args.bench}: {overall} "
          f"(context {key}, {len(baseline_runs)} baseline runs, "
          f"{len(regressed)} regressed metrics) -> {out_path}")
    for r in regressed:
        print(f"[bench_gate]   {r['verdict']}: {r['name']} = "
              f"{r['value']:.4g} vs baseline {r['baseline']:.4g} "
              f"({r['ratio']:+.0%}, fail band {r['fail']:.0%})")
    if slo_breached:
        print(f"[bench_gate]   breached: bench embedded slo_breached=true")
    return 1 if overall == "breached" else 0


def bless(args):
    path = history_path(args.history, args.bench)
    if not os.path.exists(path):
        print(f"[bench_gate] no history at {path}; nothing to bless")
        return 0
    records = load_history(args.history, args.bench)
    if args.context_of:
        with open(args.context_of) as f:
            key = context_key(args.bench, json.load(f))
        kept = [r for r in records if r.get("context_key") != key]
        dropped = len(records) - len(kept)
        with open(path, "w") as f:
            for r in kept:
                f.write(json.dumps(r) + "\n")
        print(f"[bench_gate] blessed {args.bench}: dropped {dropped} "
              f"records for context {key}; next run re-seeds the baseline")
    else:
        os.remove(path)
        print(f"[bench_gate] blessed {args.bench}: dropped all "
              f"{len(records)} records; next run re-seeds the baseline")
    return 0


# ---------------------------------------------------------------------------

def main(argv):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    default_history = os.path.join(repo_root, "bench", "history")

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("command", choices=["record", "check", "gate", "bless"])
    ap.add_argument("--bench", required=True,
                    help="bench name (history file + extractor)")
    ap.add_argument("--json", help="BENCH_*.json produced by the bench")
    ap.add_argument("--history", default=default_history,
                    help=f"history directory (default {default_history})")
    ap.add_argument("--out", help="verdict JSON path "
                                  "(default BENCH_gate_<bench>.json)")
    ap.add_argument("--baseline-n", type=int, default=5,
                    help="baseline = best of the last N matched runs")
    ap.add_argument("--warn", type=float, default=0.15,
                    help="base degraded band (relative regression)")
    ap.add_argument("--fail", type=float, default=0.35,
                    help="base breached band (relative regression)")
    ap.add_argument("--context-of", help="bless: BENCH json whose "
                                         "context's records to drop")
    args = ap.parse_args(argv)

    if args.command == "bless":
        return bless(args)

    if not args.json:
        ap.error(f"{args.command} requires --json")
    try:
        with open(args.json) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"[bench_gate] cannot read {args.json}: {e}", file=sys.stderr)
        return 2

    if args.command == "record":
        return record_run(args, data)
    if args.command == "check":
        return check_run(args, data)
    # gate: judge against PRE-existing history, then record this run —
    # in that order, so a run is never compared against itself.
    rc = check_run(args, data)
    record_run(args, data)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
