#!/usr/bin/env bash
# Build and run the end-to-end train-step micro-benchmark, emitting
# BENCH_train_step.json in the repo root: a per-stage breakdown
# (cull/project/bin/composite/loss fwd+bwd/rasterizer bwd/adam) so the
# perf trajectory of the *whole* training step is tracked across PRs,
# plus the SAT-loss speedup over the retained brute-force reference and
# a per-kernel-table backward sweep (raster_bwd_by_backend: every SIMD
# backend the CPU supports, forced one at a time on the same inputs,
# with forward/backward_bitwise_identical flags from hashing the image
# and all gradient buffers across backends).
#
# The JSON includes a machine/build context block (thread count,
# compiler, build-baseline "simd" ISA, runtime-dispatched
# "simd_dispatch" backend, CLM_DISABLE_SIMD); pin the worker count with
# CLM_THREADS=N for comparable runs, and force the dispatched backend
# with CLM_SIMD=avx2|sse2|neon|scalar.
#
# Uses a dedicated build-release/ tree so it never flips the cached
# build type of the default build/ directory that verify.sh uses.
#
# Usage: scripts/bench_train_step.sh [--smoke] [--no-ref]
#   --smoke   tiny single-rep run (CI "builds and runs" gate)
#   --no-ref  skip the brute-force loss baseline timing
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j"$JOBS" --target micro_train_step
./build-release/micro_train_step "$@" --out BENCH_train_step.json

# Judge this run against the matched-context bench history, then record
# it (bench/history/train_step.jsonl). Exits non-zero on a breached regression
# or an embedded SLO breach. Skip with CLM_BENCH_GATE=off; bless a new
# baseline after an intentional perf change with
#   python3 scripts/bench_gate.py bless --bench train_step --context-of BENCH_train_step.json
if [ "${CLM_BENCH_GATE:-on}" != "off" ]; then
  python3 scripts/bench_gate.py gate --bench train_step --json BENCH_train_step.json
fi
