#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the full test suite, then
# repeat under AddressSanitizer + UBSan (-DCLM_SANITIZE=ON).
#
# Usage: scripts/verify.sh [--no-sanitize]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
SANITIZE=1
if [[ "${1:-}" == "--no-sanitize" ]]; then
    SANITIZE=0
fi

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

if [[ "$SANITIZE" == "1" ]]; then
    echo "== sanitized: ASan + UBSan build + ctest =="
    cmake -B build-sanitize -S . -DCLM_SANITIZE=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build build-sanitize -j"$JOBS"
    ctest --test-dir build-sanitize --output-on-failure -j"$JOBS"
fi

echo "verify: OK"
