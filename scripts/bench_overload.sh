#!/usr/bin/env bash
# Build and run the overload micro-benchmark, emitting
# BENCH_overload.json in the repo root: open-loop arrivals at 1x/2x/4x
# of measured closed-loop capacity against (a) the overload-hardened
# admission configuration (ShedPolicy::Reject, short queue, per-request
# deadline) and (b) the blocking baseline (unbounded queue, no
# deadline). Records goodput, shed fraction, and admitted p50/p99 per
# load point, plus the baseline's p99 growth between a short and a
# 3x-longer run at the same 2x overload.
#
# Invariants the binary itself enforces (non-zero exit on violation):
#   - hung_requests == 0: every submitted future resolves.
#   - admitted_bitwise_identical == true: admitted frames match direct
#     renderForward output bit-for-bit — shedding changes WHICH
#     requests render, never WHAT a render produces.
#
# Worker threads default to CLM_THREADS=2 (one serve worker plus the
# render pool needs a second core for the open-loop driver not to
# starve the schedule); export CLM_THREADS to override.
#
# Uses the shared build-release/ tree so it never flips the cached
# build type of the default build/ directory that verify.sh uses.
#
# Usage: scripts/bench_overload.sh [--smoke]
#   --smoke   tiny single-case run (CI "builds and runs" gate)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
export CLM_THREADS="${CLM_THREADS:-2}"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j"$JOBS" --target micro_overload
./build-release/micro_overload "$@" --out BENCH_overload.json

# Judge this run against the matched-context bench history, then record
# it (bench/history/overload.jsonl). Exits non-zero on a breached regression
# or an embedded SLO breach. Skip with CLM_BENCH_GATE=off; bless a new
# baseline after an intentional perf change with
#   python3 scripts/bench_gate.py bless --bench overload --context-of BENCH_overload.json
if [ "${CLM_BENCH_GATE:-on}" != "off" ]; then
  python3 scripts/bench_gate.py gate --bench overload --json BENCH_overload.json
fi
