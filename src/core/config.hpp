/**
 * @file
 * Top-level CLM configuration: aggregates the trainer, planner, renderer
 * and scene settings behind one validated struct — the single knob surface
 * a downstream user touches.
 */

#ifndef CLM_CORE_CONFIG_HPP
#define CLM_CORE_CONFIG_HPP

#include "scene/scene_spec.hpp"
#include "train/trainer.hpp"

namespace clm {

/** Everything needed to set up a CLM training session. */
struct ClmConfig
{
    /** Scene to train (synthetic stand-ins for the paper datasets). */
    SceneSpec scene = SceneSpec::bicycle();
    /** Which training system to run (CLM by default). */
    SystemKind system = SystemKind::Clm;
    /** Model capacity in Gaussians; 0 means the scene's train profile. */
    size_t model_size = 0;
    /** Shared trainer settings (batch size taken from the scene). */
    TrainConfig train;

    /** Fill derived defaults (batch size, resolutions) from the scene. */
    void applySceneDefaults();

    /** Panics on inconsistent settings. */
    void validate() const;
};

} // namespace clm

#endif // CLM_CORE_CONFIG_HPP
