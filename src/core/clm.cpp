#include "core/clm.hpp"

#include "render/culling.hpp"
#include "serve/snapshot.hpp"
#include "shard/sharded_snapshot.hpp"
#include "util/logging.hpp"

namespace clm {

Clm::Clm(ClmConfig config) : config_(std::move(config))
{
    config_.applySceneDefaults();
    config_.validate();

    const SceneSpec &scene = config_.scene;
    cameras_ = trainCameras(scene);

    // Ground truth: a reference reconstruction of the scene rendered
    // through the same pipeline (the synthetic stand-in for the posed
    // photographs of the real datasets).
    GaussianModel gt =
        generateGroundTruth(scene, scene.train.n_gaussians);
    std::vector<Image> gt_images =
        renderGroundTruth(gt, cameras_, config_.train.render);

    GaussianModel trainee =
        makeTrainee(gt, config_.model_size, scene.seed);
    trainer_ = makeTrainer(config_.system, std::move(trainee), cameras_,
                           std::move(gt_images), config_.train);

    // Serving hand-off: publish the initial model and keep republishing
    // at every step boundary (see Trainer::setSnapshotSink).
    snapshots_ = std::make_unique<SnapshotSlot>();
    trainer_->setSnapshotSink(snapshots_.get());
}

Clm::~Clm() = default;

ShardedSnapshotSlot &
Clm::enableSharding(int shards)
{
    if (sharded_ && sharded_->shards() == shards)
        return *sharded_;
    CLM_ASSERT(!sharded_, "sharding already enabled with a different "
                          "shard count");
    sharded_ = std::make_unique<ShardedSnapshotSlot>(shards);
    // Wiring the sink publishes immediately, so serving can start
    // before the next training step.
    trainer_->setShardedSink(sharded_.get());
    return *sharded_;
}

std::vector<BatchStats>
Clm::train(int steps)
{
    return trainer_->trainSteps(steps);
}

double
Clm::evaluatePsnr() const
{
    return trainer_->evaluatePsnr();
}

Image
Clm::renderView(size_t index) const
{
    CLM_ASSERT(index < cameras_.size(), "view index out of range");
    return renderNovelView(cameras_[index]);
}

Image
Clm::renderNovelView(const Camera &camera) const
{
    const GaussianModel &m = trainer_->model();
    auto subset = frustumCull(m, camera);
    return renderForward(m, camera, subset, config_.train.render, arena_)
        .image;
}

const GaussianModel &
Clm::model() const
{
    return trainer_->model();
}

} // namespace clm
