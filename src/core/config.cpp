#include "core/config.hpp"

#include "util/logging.hpp"

namespace clm {

void
ClmConfig::applySceneDefaults()
{
    if (model_size == 0)
        model_size = scene.train.n_gaussians;
    // The paper sizes the batch to the scene (Table 3), capped to the
    // synthetic view count.
    train.batch_size =
        std::min(scene.batch_size, scene.train.n_views);
    train.planner.system = system;
}

void
ClmConfig::validate() const
{
    CLM_ASSERT(model_size > 0, "model_size must be positive");
    CLM_ASSERT(train.batch_size > 0, "batch_size must be positive");
    CLM_ASSERT(scene.train.n_views > 0, "scene has no training views");
    CLM_ASSERT(train.render.sh_degree >= 0 && train.render.sh_degree <= 3,
               "sh_degree out of range");
}

} // namespace clm
