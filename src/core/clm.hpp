/**
 * @file
 * The CLM public facade and umbrella header. Downstream users include
 * this one header, construct a Clm session from a ClmConfig, and call
 * train() / evaluatePsnr() / renderView(); the offloading machinery runs
 * underneath exactly as in §4-§5.
 */

#ifndef CLM_CORE_CLM_HPP
#define CLM_CORE_CLM_HPP

#include <memory>

#include "core/config.hpp"
#include "gaussian/model.hpp"
#include "render/arena.hpp"
#include "render/image.hpp"
#include "scene/camera_path.hpp"
#include "scene/synthetic.hpp"
#include "train/quality_harness.hpp"

namespace clm {

class SnapshotSlot;
class ShardedSnapshotSlot;

/** One training session over a synthetic scene. */
class Clm
{
  public:
    /** Build a session: scene, cameras, ground truth and trainer. */
    explicit Clm(ClmConfig config);

    ~Clm();

    /** Run @p steps training batches; returns per-batch stats. */
    std::vector<BatchStats> train(int steps);

    /** Mean PSNR over all training views. */
    double evaluatePsnr() const;

    /** Render view @p index from the current model. */
    Image renderView(size_t index) const;

    /** Render a *novel* view (not in the training set) — the task of
     *  Figure 1 — from the given camera. */
    Image renderNovelView(const Camera &camera) const;

    /** The current model. */
    const GaussianModel &model() const;

    /** The underlying trainer (system-specific accounting). */
    Trainer &trainer() { return *trainer_; }
    const Trainer &trainer() const { return *trainer_; }

    const ClmConfig &config() const { return config_; }
    size_t viewCount() const { return cameras_.size(); }
    const Camera &camera(size_t i) const { return cameras_[i]; }

    /** Live model snapshots for serving (serve/snapshot.hpp): the
     *  pre-training state is published at construction and the trainer
     *  republishes after every train() batch and densification, so a
     *  RenderService can serve this session concurrently with training
     *  without ever observing torn parameters. */
    SnapshotSlot &snapshots() { return *snapshots_; }
    const SnapshotSlot &snapshots() const { return *snapshots_; }

    /** Spatially shard every published snapshot into @p shards cells
     *  (shard/sharded_snapshot.hpp): the trainer re-publishes sharded
     *  snapshots at the same publish points as the plain slot, so a
     *  sharded RenderService can serve this session concurrently with
     *  training. Idempotent for the same count; the returned slot
     *  lives as long as the session. */
    ShardedSnapshotSlot &enableSharding(int shards);

    /** The sharded slot; nullptr unless enableSharding() was called. */
    ShardedSnapshotSlot *shardedSnapshots() { return sharded_.get(); }

  private:
    ClmConfig config_;
    std::vector<Camera> cameras_;
    std::unique_ptr<SnapshotSlot> snapshots_;
    std::unique_ptr<ShardedSnapshotSlot> sharded_;
    std::unique_ptr<Trainer> trainer_;
    /** Render scratch for the facade's view renders (mutable: scratch
     *  only — reuse never changes results). */
    mutable RenderArena arena_;
};

} // namespace clm

#endif // CLM_CORE_CLM_HPP
