#include "render/rasterizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace clm {

size_t
RenderOutput::totalTileIntersections() const
{
    size_t n = 0;
    for (const auto &l : tile_lists)
        n += l.size();
    return n;
}

size_t
RenderOutput::activationBytes() const
{
    size_t bytes = image.data().size() * sizeof(float);
    bytes += final_t.size() * sizeof(float);
    bytes += n_contrib.size() * sizeof(uint32_t);
    bytes += projected.size() * sizeof(ProjectedGaussian);
    bytes += totalTileIntersections() * sizeof(uint32_t);
    return bytes;
}

RenderOutput
renderForward(const GaussianModel &model, const Camera &camera,
              const std::vector<uint32_t> &subset, const RenderConfig &cfg)
{
    CLM_ASSERT(cfg.tile_size > 0, "bad tile size");
    const int w = camera.width();
    const int h = camera.height();

    RenderOutput out;
    out.image = Image(w, h, cfg.background);
    out.final_t.assign(static_cast<size_t>(w) * h, 1.0f);
    out.n_contrib.assign(static_cast<size_t>(w) * h, 0);
    out.tiles_x = (w + cfg.tile_size - 1) / cfg.tile_size;
    out.tiles_y = (h + cfg.tile_size - 1) / cfg.tile_size;
    out.tile_lists.assign(
        static_cast<size_t>(out.tiles_x) * out.tiles_y, {});

    // 1. Project the subset.
    out.projected.reserve(subset.size());
    for (uint32_t gi : subset)
        out.projected.push_back(
            projectGaussian(model, gi, camera, cfg.sh_degree));

    // 2. Bin footprints to tiles.
    for (size_t s = 0; s < out.projected.size(); ++s) {
        const ProjectedGaussian &p = out.projected[s];
        if (!p.valid || p.radius <= 0.0f)
            continue;
        int x0 = static_cast<int>(
            std::floor((p.mean2d.x - p.radius) / cfg.tile_size));
        int x1 = static_cast<int>(
            std::floor((p.mean2d.x + p.radius) / cfg.tile_size));
        int y0 = static_cast<int>(
            std::floor((p.mean2d.y - p.radius) / cfg.tile_size));
        int y1 = static_cast<int>(
            std::floor((p.mean2d.y + p.radius) / cfg.tile_size));
        x0 = std::max(x0, 0);
        y0 = std::max(y0, 0);
        x1 = std::min(x1, out.tiles_x - 1);
        y1 = std::min(y1, out.tiles_y - 1);
        for (int ty = y0; ty <= y1; ++ty)
            for (int tx = x0; tx <= x1; ++tx)
                out.tile_lists[static_cast<size_t>(ty) * out.tiles_x + tx]
                    .push_back(static_cast<uint32_t>(s));
    }

    // 3. Depth-sort each tile's list (front to back).
    for (auto &list : out.tile_lists) {
        std::sort(list.begin(), list.end(),
                  [&](uint32_t a, uint32_t b) {
                      return out.projected[a].depth
                           < out.projected[b].depth;
                  });
    }

    // 4. Composite each pixel front-to-back. Tiles touch disjoint
    //    pixels, so they parallelize with identical results.
    auto composite_tile = [&](size_t tile_index) {
        int ty = static_cast<int>(tile_index) / out.tiles_x;
        int tx = static_cast<int>(tile_index) % out.tiles_x;
        {
            const auto &list = out.tile_lists[tile_index];
            if (list.empty())
                return;
            int px0 = tx * cfg.tile_size;
            int py0 = ty * cfg.tile_size;
            int px1 = std::min(px0 + cfg.tile_size, w);
            int py1 = std::min(py0 + cfg.tile_size, h);
            for (int py = py0; py < py1; ++py) {
                for (int px = px0; px < px1; ++px) {
                    float t_acc = 1.0f;
                    Vec3 c_acc{0, 0, 0};
                    uint32_t last = 0;
                    Vec2 pix{px + 0.5f, py + 0.5f};
                    for (size_t pos = 0; pos < list.size(); ++pos) {
                        const ProjectedGaussian &g =
                            out.projected[list[pos]];
                        Vec2 d = g.mean2d - pix;
                        float power =
                            -0.5f * (g.conic_a * d.x * d.x
                                     + g.conic_c * d.y * d.y)
                            - g.conic_b * d.x * d.y;
                        if (power > 0.0f)
                            continue;
                        float alpha =
                            std::min(0.99f, g.opacity * std::exp(power));
                        if (alpha < cfg.alpha_min)
                            continue;
                        float t_next = t_acc * (1.0f - alpha);
                        if (t_next < cfg.transmittance_min)
                            break;
                        c_acc += g.color * (alpha * t_acc);
                        t_acc = t_next;
                        last = static_cast<uint32_t>(pos) + 1;
                    }
                    size_t pi = static_cast<size_t>(py) * w + px;
                    out.final_t[pi] = t_acc;
                    out.n_contrib[pi] = last;
                    out.image.setPixel(px, py,
                                       c_acc + cfg.background * t_acc);
                }
            }
        }
    };
    size_t n_tiles = out.tile_lists.size();
    if (cfg.parallel && n_tiles > 1) {
        ThreadPool::global().parallelFor(
            n_tiles, [&](size_t begin, size_t end) {
                for (size_t t = begin; t < end; ++t)
                    composite_tile(t);
            });
    } else {
        for (size_t t = 0; t < n_tiles; ++t)
            composite_tile(t);
    }
    return out;
}

} // namespace clm
