#include "render/rasterizer.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "render/arena.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace clm {

size_t
RenderOutput::activationBytes() const
{
    size_t bytes = image.data().size() * sizeof(float);
    bytes += final_t.size() * sizeof(float);
    bytes += n_contrib.size() * sizeof(uint32_t);
    bytes += projected.size() * sizeof(ProjectedGaussian);
    bytes += isect_vals.size() * sizeof(uint32_t);
    bytes += tile_ranges.size() * sizeof(TileRange);
    return bytes;
}

RenderOutput
renderForward(const GaussianModel &model, const Camera &camera,
              const std::vector<uint32_t> &subset, const RenderConfig &cfg)
{
    RenderArena arena;
    renderForward(model, camera, subset, cfg, arena);
    return std::move(arena.out);
}

const RenderOutput &
renderForward(const GaussianModel &model, const Camera &camera,
              const std::vector<uint32_t> &subset, const RenderConfig &cfg,
              RenderArena &arena)
{
    CLM_ASSERT(cfg.tile_size > 0, "bad tile size");
    const int w = camera.width();
    const int h = camera.height();
    const TileGrid grid = TileGrid::forImage(w, h, cfg.tile_size);

    RenderOutput &out = arena.out;
    // No prefill: the composite pass writes every pixel of every tile
    // (empty tiles included), so filling here would be a wasted
    // full-frame sweep.
    out.image.resetUnfilled(w, h);
    out.final_t.resize(static_cast<size_t>(w) * h);
    out.n_contrib.resize(static_cast<size_t>(w) * h);
    out.tiles_x = grid.tiles_x;
    out.tiles_y = grid.tiles_y;

    // 1. Project the subset (entries are independent, so the parallel
    //    split cannot change results).
    const size_t n = subset.size();
    out.projected.resize(n);
    auto project_range = [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s)
            out.projected[s] =
                projectGaussian(model, subset[s], camera, cfg.sh_degree);
    };
    if (cfg.parallel && n >= kMinParallelSubset)
        ThreadPool::global().parallelFor(n, project_range);
    else
        project_range(0, n);

    // 2. Flat binning: count -> scan -> fill -> one stable radix sort,
    //    yielding contiguous per-tile front-to-back ranges.
    buildTileIntersections(out.projected, grid, cfg.alpha_min,
                           cfg.exact_tile_bounds, cfg.parallel,
                           arena.binning, out.isect_vals, out.tile_ranges);

    // 3. Composite each pixel front-to-back. Tiles touch disjoint
    //    pixels, so any parallel split produces identical results. Each
    //    worker chunk packs the tile's hot fields into staging so the
    //    per-pixel loop streams through one sequential array, a
    //    conservative per-Gaussian power threshold skips the exp for
    //    pairs that provably fail the alpha test, and a per-row power
    //    bound skips whole rows the footprint cannot reach (the exact
    //    tests still run near the thresholds, so the output is bitwise
    //    unchanged).
    computeAlphaCutPowers(out.projected, cfg.alpha_min, cfg.parallel,
                          arena.alpha_cut, arena.row_k);
    arena.cuts_alpha_min = cfg.alpha_min;
    const size_t n_tiles = grid.tileCount();
    size_t n_chunks = 1;
    if (cfg.parallel && n_tiles > 1)
        n_chunks = std::min<size_t>(
            n_tiles, static_cast<size_t>(ThreadPool::global().threads()) * 2);
    const size_t tiles_per_chunk = (n_tiles + n_chunks - 1) / n_chunks;
    if (arena.stages.size() < n_chunks)
        arena.stages.resize(n_chunks);

    const float alpha_min = cfg.alpha_min;
    const float t_min = cfg.transmittance_min;
    const Vec3 background = cfg.background;

    auto composite_chunk = [&](size_t c) {
        TileStage &stage = arena.stages[c];
        const size_t t0 = c * tiles_per_chunk;
        const size_t t1 = std::min(t0 + tiles_per_chunk, n_tiles);
        for (size_t t = t0; t < t1; ++t) {
            const TileRange range = out.tile_ranges[t];
            const size_t len = range.size();
            if (len == 0) {
                // Nothing binned: write the background directly (the
                // output buffers are not prefilled).
                const int ety = static_cast<int>(t) / grid.tiles_x;
                const int etx = static_cast<int>(t) % grid.tiles_x;
                const int epx0 = etx * cfg.tile_size;
                const int epy0 = ety * cfg.tile_size;
                const int epx1 = std::min(epx0 + cfg.tile_size, w);
                const int epy1 = std::min(epy0 + cfg.tile_size, h);
                for (int py = epy0; py < epy1; ++py) {
                    for (int px = epx0; px < epx1; ++px) {
                        size_t pi = static_cast<size_t>(py) * w + px;
                        out.final_t[pi] = 1.0f;
                        out.n_contrib[pi] = 0;
                        out.image.setPixel(px, py, background);
                    }
                }
                continue;
            }
            stage.stageFrom(out.projected, out.isect_vals, range,
                            arena.alpha_cut, arena.row_k,
                            /*for_backward=*/false);
            const StagedGaussian *hot = stage.hot.data();
            const Vec3 *colors = stage.color.data();

            const int ty = static_cast<int>(t) / grid.tiles_x;
            const int tx = static_cast<int>(t) % grid.tiles_x;
            const int px0 = tx * cfg.tile_size;
            const int py0 = ty * cfg.tile_size;
            const int px1 = std::min(px0 + cfg.tile_size, w);
            const int py1 = std::min(py0 + cfg.tile_size, h);
            for (int py = py0; py < py1; ++py) {
                const float pcy = py + 0.5f;
                // Pixels are processed in quads of four: one sweep over
                // the tile list serves four independent lanes, so the
                // staged fields are loaded once per quad and the power
                // evaluation vectorizes. Each lane runs the exact
                // scalar per-pixel arithmetic (a lane's early
                // termination just masks it out), so results are
                // bitwise identical to the one-pixel-at-a-time loop.
                int px = px0;
                for (; px + 4 <= px1; px += 4) {
                    float t_acc[4] = {1.0f, 1.0f, 1.0f, 1.0f};
                    Vec3 c_acc[4] = {};
                    uint32_t last[4] = {0, 0, 0, 0};
                    bool done[4] = {false, false, false, false};
                    int active = 4;
                    float pcx[4];
                    for (int l = 0; l < 4; ++l)
                        pcx[l] = (px + l) + 0.5f;
                    for (size_t pos = 0; pos < len && active > 0;
                         ++pos) {
                        const StagedGaussian e = hot[pos];
                        const float dy = e.mean_y - pcy;
                        // No pixel of this row can reach the alpha cut.
                        if (-0.5f * e.row_k * dy * dy + kRowCutMargin
                            < e.power_cut)
                            continue;
                        float power[4];
                        for (int l = 0; l < 4; ++l) {
                            float dx = e.mean_x - pcx[l];
                            power[l] = -0.5f * (e.conic_a * dx * dx
                                                + e.conic_c * dy * dy)
                                     - e.conic_b * dx * dy;
                        }
                        // Whole quad provably below the alpha cut:
                        // skip the per-lane work. (Explicit per-lane
                        // comparisons: a NaN power must NOT be skipped,
                        // matching the scalar loop.)
                        if (power[0] < e.power_cut
                            && power[1] < e.power_cut
                            && power[2] < e.power_cut
                            && power[3] < e.power_cut)
                            continue;
                        for (int l = 0; l < 4; ++l) {
                            if (done[l])
                                continue;
                            if (power[l] > 0.0f)
                                continue;
                            if (power[l] < e.power_cut)
                                continue;    // alpha < alpha_min
                            float alpha = std::min(
                                0.99f,
                                e.opacity * std::exp(power[l]));
                            if (alpha < alpha_min)
                                continue;
                            float t_next = t_acc[l] * (1.0f - alpha);
                            if (t_next < t_min) {
                                done[l] = true;    // lane "break"
                                --active;
                                continue;
                            }
                            c_acc[l] += colors[pos]
                                        * (alpha * t_acc[l]);
                            t_acc[l] = t_next;
                            last[l] = static_cast<uint32_t>(pos) + 1;
                        }
                    }
                    for (int l = 0; l < 4; ++l) {
                        size_t pi =
                            static_cast<size_t>(py) * w + px + l;
                        out.final_t[pi] = t_acc[l];
                        out.n_contrib[pi] = last[l];
                        out.image.setPixel(
                            px + l, py,
                            c_acc[l] + background * t_acc[l]);
                    }
                }
                for (; px < px1; ++px) {
                    float t_acc = 1.0f;
                    Vec3 c_acc{0, 0, 0};
                    uint32_t last = 0;
                    const float pcx = px + 0.5f;
                    for (size_t pos = 0; pos < len; ++pos) {
                        const StagedGaussian e = hot[pos];
                        float dx = e.mean_x - pcx;
                        float dy = e.mean_y - pcy;
                        // Same row cut as the quad path, so every
                        // pixel of a row skips the same entries.
                        if (-0.5f * e.row_k * dy * dy + kRowCutMargin
                            < e.power_cut)
                            continue;
                        float power = -0.5f * (e.conic_a * dx * dx
                                               + e.conic_c * dy * dy)
                                    - e.conic_b * dx * dy;
                        if (power > 0.0f)
                            continue;
                        if (power < e.power_cut)
                            continue;    // provably alpha < alpha_min
                        float alpha = std::min(
                            0.99f, e.opacity * std::exp(power));
                        if (alpha < alpha_min)
                            continue;
                        float t_next = t_acc * (1.0f - alpha);
                        if (t_next < t_min)
                            break;
                        c_acc += colors[pos] * (alpha * t_acc);
                        t_acc = t_next;
                        last = static_cast<uint32_t>(pos) + 1;
                    }
                    size_t pi = static_cast<size_t>(py) * w + px;
                    out.final_t[pi] = t_acc;
                    out.n_contrib[pi] = last;
                    out.image.setPixel(px, py,
                                       c_acc + background * t_acc);
                }
            }
        }
    };
    if (n_chunks > 1) {
        ThreadPool::global().parallelFor(
            n_chunks, [&](size_t begin, size_t end) {
                for (size_t c = begin; c < end; ++c)
                    composite_chunk(c);
            });
    } else {
        composite_chunk(0);
    }
    return out;
}

} // namespace clm
