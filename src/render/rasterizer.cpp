#include "render/rasterizer.hpp"

#include <algorithm>
#include <utility>

#include "render/arena.hpp"
#include "render/compositor.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace clm {

size_t
RenderOutput::activationBytes() const
{
    size_t bytes = image.data().size() * sizeof(float);
    bytes += final_t.size() * sizeof(float);
    bytes += n_contrib.size() * sizeof(uint32_t);
    bytes += projected.size() * sizeof(ProjectedGaussian);
    bytes += isect_vals.size() * sizeof(uint32_t);
    bytes += tile_ranges.size() * sizeof(TileRange);
    return bytes;
}

RenderOutput
renderForward(const GaussianModel &model, const Camera &camera,
              const std::vector<uint32_t> &subset, const RenderConfig &cfg)
{
    RenderArena arena;
    renderForward(model, camera, subset, cfg, arena);
    return std::move(arena.out);
}

const RenderOutput &
renderForward(const GaussianModel &model, const Camera &camera,
              const std::vector<uint32_t> &subset, const RenderConfig &cfg,
              RenderArena &arena)
{
    CLM_ASSERT(cfg.tile_size > 0, "bad tile size");
    const int w = camera.width();
    const int h = camera.height();
    const TileGrid grid = TileGrid::forImage(w, h, cfg.tile_size);

    RenderOutput &out = arena.out;
    // No prefill: the composite pass writes every pixel of every tile
    // (empty tiles included), so filling here would be a wasted
    // full-frame sweep.
    out.image.resetUnfilled(w, h);
    out.final_t.resize(static_cast<size_t>(w) * h);
    out.n_contrib.resize(static_cast<size_t>(w) * h);
    out.tiles_x = grid.tiles_x;
    out.tiles_y = grid.tiles_y;

    // StageClock both fills the legacy stage_times fields and, when
    // tracing is live, records one span per stage (PR 9 consolidation
    // of the ad-hoc Timer pattern).
    StageClock stage_clock;

    // 1. Project the subset (entries are independent, so the parallel
    //    split cannot change results).
    const size_t n = subset.size();
    out.projected.resize(n);
    auto project_range = [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s)
            out.projected[s] =
                projectGaussian(model, subset[s], camera, cfg.sh_degree);
    };
    if (cfg.parallel && n >= kMinParallelSubset)
        ThreadPool::global().parallelFor(n, project_range);
    else
        project_range(0, n);
    arena.stage_times.project_s = stage_clock.lap("render.project");

    // 2. Flat binning: count -> scan -> fill -> one stable radix sort,
    //    yielding contiguous per-tile front-to-back ranges. The
    //    conservative compositing cuts are computed here too (they are
    //    per-subset-entry preprocessing, not per-pixel work).
    buildTileIntersections(out.projected, grid, cfg.alpha_min,
                           cfg.exact_tile_bounds, cfg.parallel,
                           arena.binning, out.isect_vals, out.tile_ranges);
    computeAlphaCutPowers(out.projected, cfg.alpha_min, cfg.parallel,
                          arena.alpha_cut, arena.row_k);
    arena.cuts_alpha_min = cfg.alpha_min;
    arena.stage_times.bin_s = stage_clock.lap("render.bin");

    // 3. Composite each pixel front-to-back through the shared per-tile
    //    kernels (render/compositor.hpp). Tiles touch disjoint pixels,
    //    so any parallel split produces identical results; each worker
    //    chunk uses its own staging scratch.
    const size_t n_tiles = grid.tileCount();
    size_t n_chunks = 1;
    if (cfg.parallel && n_tiles > 1)
        n_chunks = std::min<size_t>(
            n_tiles, static_cast<size_t>(ThreadPool::global().threads()) * 2);
    const size_t tiles_per_chunk = (n_tiles + n_chunks - 1) / n_chunks;
    if (arena.stages.size() < n_chunks)
        arena.stages.resize(n_chunks);

    auto composite_chunk = [&](size_t c) {
        const size_t t0 = c * tiles_per_chunk;
        const size_t t1 = std::min(t0 + tiles_per_chunk, n_tiles);
        detail::compositeTileRange(cfg, grid, arena.alpha_cut,
                                   arena.row_k, arena.stages[c], t0, t1,
                                   out);
    };
    if (n_chunks > 1) {
        ThreadPool::global().parallelFor(
            n_chunks, [&](size_t begin, size_t end) {
                for (size_t c = begin; c < end; ++c)
                    composite_chunk(c);
            });
    } else {
        composite_chunk(0);
    }
    arena.stage_times.composite_s = stage_clock.lap("render.composite");
    return out;
}

} // namespace clm
