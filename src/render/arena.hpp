/**
 * @file
 * Reusable render scratch. One RenderArena owned by a long-lived object
 * (Trainer, Clm session, quality harness loop) lets every renderForward /
 * renderBackward call reuse its activation buffers (image, final_t,
 * n_contrib, projected footprints, flat intersection buffer) and working
 * scratch (binning keys, tile staging, backward gradient accumulators)
 * instead of reallocating them per view — the rasterizer is the system
 * hot path, called once per view per training step by every trainer.
 *
 * An arena is NOT thread-safe: one arena per concurrently rendering
 * caller. It is also purely an optimization — results are bitwise
 * identical to the arena-free overloads.
 */

#ifndef CLM_RENDER_ARENA_HPP
#define CLM_RENDER_ARENA_HPP

#include <cstddef>
#include <vector>

#include "render/binning.hpp"
#include "render/rasterizer.hpp"

namespace clm {

/**
 * Tile-local staging of the hot footprint fields (SoA): before the
 * per-pixel loop, one tile's Gaussians are packed compactly so forward
 * compositing and the backward replay stream sequentially through memory
 * instead of striding across the full ProjectedGaussian records.
 */
/** One staged footprint's hot test fields, packed into half a cache
 *  line so the compositing loops touch a single sequential stream (and
 *  keep one base pointer live instead of seven). */
struct alignas(32) StagedGaussian
{
    float mean_x, mean_y;          //!< Pixel-space center.
    float conic_a, conic_b, conic_c;
    /** Conservative alpha-cut power threshold (binning.hpp): pairs with
     *  power below it provably fail the alpha test, skipping the exp. */
    float power_cut;
    float opacity;
    /** Vertical conic curvature conic_c - conic_b^2 / conic_a: bounds
     *  the best power any pixel of a row can reach, so whole rows the
     *  footprint cannot touch are skipped without evaluating power. */
    float row_k;
};

struct TileStage
{
    std::vector<StagedGaussian> hot;   //!< Per-entry test fields.
    std::vector<Vec3> color;           //!< Touched only on contribution.
    /** Per-staged-entry gradient accumulators (backward only). */
    std::vector<ProjectionGrads> grads;

    /** @name SIMD batch staging (backward replay)
     * SoA mirrors of the staged fields, filled when stageFrom() is
     * asked to @p stage_soa: the backward kernel replays 8 pixels per
     * F8 batch straight from these arrays
     * (render/simd_kernels.hpp::BackwardTileArgs). Padded to a
     * multiple of 8 with entries whose power_cut is +inf, so padding
     * lanes can never pass the alpha-cut test. */
    /// @{
    std::vector<float> soa_mean_x, soa_mean_y;
    std::vector<float> soa_conic_a, soa_conic_b, soa_conic_c;
    std::vector<float> soa_power_cut, soa_row_k;
    std::vector<float> soa_opacity;
    std::vector<float> soa_color_r, soa_color_g, soa_color_b;
    /** Per-entry 8-lane gradient partials (kG8Comps components per
     *  entry, lane-major), accumulated by the backward kernel and
     *  reduced in fixed lane order — the deterministic lane reduction.
     *  Zeroed per tile by renderBackward. */
    std::vector<float> grad8;
    /// @}

    /** Size for @p n Gaussians; @p for_backward also zero-inits grads. */
    void prepare(size_t n, bool for_backward);

    /** Pack one tile's Gaussians (the @p range slice of @p isect_vals)
     *  from @p projected plus the per-subset cut arrays into this
     *  stage — the single staging step shared by the forward composite
     *  and the backward replay, so the two passes can never desync.
     *  @p stage_soa additionally fills the SoA mirrors (backward SIMD
     *  batching). */
    void stageFrom(const std::vector<ProjectedGaussian> &projected,
                   const std::vector<uint32_t> &isect_vals,
                   TileRange range, const std::vector<float> &alpha_cut,
                   const std::vector<float> &row_k, bool for_backward,
                   bool stage_soa = false);

    /** Bytes currently held (for memory accounting). */
    size_t bytes() const;
};

/** Wall-clock stage breakdown of the last renderForward() into an
 *  arena (bench/micro_train_step reads it; see ISSUE's BENCH JSON). */
struct RenderStageTimes
{
    double project_s = 0;      //!< Subset projection.
    double bin_s = 0;          //!< Flat binning + sort + alpha cuts.
    double composite_s = 0;    //!< Per-tile compositing.
};

/** See file comment. */
class RenderArena
{
  public:
    /** Forward activation state, valid after renderForward(..., arena)
     *  until the next render into this arena. */
    RenderOutput out;

    /** @name Working scratch (contents are garbage between calls) */
    /// @{
    BinningScratch binning;
    /** Per-subset-entry alpha-cut power thresholds (exp skipping). */
    std::vector<float> alpha_cut;
    /** Per-subset-entry vertical conic curvature (row skipping). */
    std::vector<float> row_k;
    /** alpha_min the cut arrays were computed with (against this
     *  arena's `out.projected`); negative = not computed. Lets the
     *  backward pass skip recomputing the cuts when it replays the
     *  forward activation still held by this arena. */
    float cuts_alpha_min = -1.0f;
    /** Per-worker-chunk tile staging (forward and backward). */
    std::vector<TileStage> stages;
    /** Backward: per-subset-entry footprint gradients (reduced). */
    std::vector<ProjectionGrads> grads;
    /** Backward: per-chunk partial accumulators, reduced in chunk order
     *  so results never depend on thread scheduling. */
    std::vector<std::vector<ProjectionGrads>> grad_partials;
    /// @}

    /** Stage breakdown of the last renderForward() into this arena. */
    RenderStageTimes stage_times;

    /** Approximate bytes held by activation state + scratch. */
    size_t footprintBytes() const;
};

} // namespace clm

#endif // CLM_RENDER_ARENA_HPP
