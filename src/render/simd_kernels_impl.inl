/**
 * @file
 * Body of one backend's render kernel table. Included by each
 * render/simd_kernels_<backend>.cpp inside an anonymous namespace,
 * after that TU forced its F8 backend (CLM_F8_FORCE_*) — so `F8` below
 * resolves to the TU's backend and the same source compiles once per
 * ISA. The AVX2 TU includes this inside a target("avx2") pragma region;
 * to keep AVX2 codegen out of comdat symbols shared with baseline TUs,
 * these bodies stick to F8, plain arithmetic and raw pointers — no std::
 * templates, no containers, no lambdas.
 *
 * Determinism contract (the whole point of this layer): every statement
 * is a fixed sequence of IEEE single ops identical across backends, so
 * for equal inputs all backends produce bitwise-equal outputs.
 */

/**
 * Forward per-tile compositor: 8-pixel groups, one F8 lane per pixel,
 * the whole alpha-test/compositing recurrence evaluated as masked batch
 * arithmetic with exp8() replacing the scalar std::exp. Lane
 * termination (transmittance floor, tile edge) is a mask; every lane
 * runs the same fixed op sequence, so results are run-to-run
 * deterministic and independent of threading (tiles touch disjoint
 * pixels). Differs from compositeTileScalar only through exp8's
 * <= kExp8MaxUlp rounding.
 */
void
kernelCompositeTile(const CompositeTileArgs &a)
{
    const StagedGaussian *hot = a.hot;
    const Vec3 *colors = a.colors;
    const size_t len = a.len;
    const int w = a.width;

    const F8 zero = F8::zero();
    const F8 one = F8::broadcast(1.0f);
    const F8 neg_half = F8::broadcast(-0.5f);
    const F8 v_alpha_min = F8::broadcast(a.alpha_min);
    const F8 v_t_min = F8::broadcast(a.t_min);
    const F8 v_clamp = F8::broadcast(0.99f);
    alignas(32) const float iota_a[8] = {0, 1, 2, 3, 4, 5, 6, 7};
    const F8 iota = F8::load(iota_a);

    for (int py = a.py0; py < a.py1; ++py) {
        const float pcy = py + 0.5f;
        for (int px = a.px0; px < a.px1; px += 8) {
            const int lanes = a.px1 - px < 8 ? a.px1 - px : 8;
            const F8 pcx =
                F8::broadcast(px + 0.5f) + iota;
            F8 t_acc = one;
            F8 cr = zero, cg = zero, cb = zero;
            F8 last = zero;
            // Lanes past the tile edge start terminated: they flow
            // through the same arithmetic but are masked out of every
            // update and never stored back.
            F8 active =
                F8::lt(iota, F8::broadcast(static_cast<float>(lanes)));
            for (size_t pos = 0; pos < len; ++pos) {
                const StagedGaussian e = hot[pos];
                const float dy = e.mean_y - pcy;
                // No pixel of this row can reach the alpha cut.
                if (-0.5f * e.row_k * dy * dy + kRowCutMargin
                    < e.power_cut)
                    continue;
                const F8 dx = F8::broadcast(e.mean_x) - pcx;
                // Same operand association as the scalar path
                // ((a*dx)*dx, (c*dy)*dy, (b*dx)*dy), so for equal
                // inputs the power bits are identical and the ONLY
                // deviation from compositeTileScalar is exp8's
                // rounding.
                const F8 power =
                    neg_half
                        * (F8::broadcast(e.conic_a) * dx * dx
                           + F8::broadcast(e.conic_c * dy * dy))
                    - F8::broadcast(e.conic_b) * dx
                          * F8::broadcast(dy);
                const F8 cut = F8::broadcast(e.power_cut);
                // Candidate lanes: alive, power in [cut, 0]. Built from
                // the same two comparisons the scalar path branches on
                // (NaN power is a candidate there too).
                F8 ok = F8::bitAndNot(
                    F8::bitOr(F8::gt(power, zero), F8::lt(power, cut)),
                    active);
                if (!F8::any(ok))
                    continue;
                F8 alpha = F8::min(
                    v_clamp, F8::broadcast(e.opacity) * exp8(power));
                ok = F8::bitAndNot(F8::lt(alpha, v_alpha_min), ok);
                if (!F8::any(ok))
                    continue;
                const F8 t_next = t_acc * (one - alpha);
                // Lanes whose transmittance would drop below the floor
                // terminate WITHOUT compositing this entry — the exact
                // scalar "break" semantics.
                const F8 terminate = F8::lt(t_next, v_t_min);
                const F8 contrib = F8::bitAndNot(terminate, ok);
                const F8 wgt = F8::bitAnd(contrib, alpha * t_acc);
                cr = cr + F8::broadcast(colors[pos].x) * wgt;
                cg = cg + F8::broadcast(colors[pos].y) * wgt;
                cb = cb + F8::broadcast(colors[pos].z) * wgt;
                t_acc = F8::select(contrib, t_next, t_acc);
                last = F8::select(
                    contrib, F8::broadcast(static_cast<float>(pos + 1)),
                    last);
                active = F8::bitAndNot(F8::bitAnd(ok, terminate), active);
                if (!F8::any(active))
                    break;
            }
            alignas(32) float ta[8], la[8], ra[8], ga[8], ba[8];
            t_acc.store(ta);
            last.store(la);
            cr.store(ra);
            cg.store(ga);
            cb.store(ba);
            for (int l = 0; l < lanes; ++l) {
                const size_t pi = static_cast<size_t>(py) * w + px + l;
                a.final_t[pi] = ta[l];
                a.n_contrib[pi] = static_cast<uint32_t>(la[l]);
                // Image::setPixel layout: interleaved RGB, row-major.
                float *pix = a.image + pi * 3;
                pix[0] = ra[l] + a.background.x * ta[l];
                pix[1] = ga[l] + a.background.y * ta[l];
                pix[2] = ba[l] + a.background.z * ta[l];
            }
        }
    }
}

/** grad8[comp] += v for one staged entry's 8 lane partials. Masked
 *  lanes of @p v must hold exact +-0.0f so they leave partials
 *  unchanged up to the sign of zero (fixed op order keeps even that
 *  deterministic). */
inline void
g8Add(float *g8, int comp, F8 v)
{
    float *p = g8 + comp * 8;
    (F8::load(p) + v).store(p);
}

/**
 * Backward per-tile replay: 8-pixel groups, one F8 lane per pixel. Each
 * group replays the tile list back-to-front from the group's deepest
 * composited prefix; a lane joins at its own n_contrib via a mask, so
 * the per-lane arithmetic (alpha recompute, transmittance rewind
 * through t / (1 - alpha), dL/dalpha chain) is exactly the scalar
 * replay's sequence on that lane's values. Per-Gaussian gradients
 * accumulate into per-entry 8-lane partials (grad8) in pixel-group
 * order; the caller reduces the 8 lanes in fixed lane order — so
 * gradients are deterministic run-to-run, parallel == serial, and
 * bitwise identical across every F8 backend (exp8 and friends are
 * bit-equal everywhere).
 *
 * Mirrors the forward kernel's tests (same row cut, same power window,
 * same exp8 bits), so the replay composites exactly the entries the
 * forward composited.
 */
void
kernelBackwardTile(const BackwardTileArgs &a)
{
    const int w = a.width;

    const F8 zero = F8::zero();
    const F8 one = F8::broadcast(1.0f);
    const F8 neg_half = F8::broadcast(-0.5f);
    const F8 v_alpha_min = F8::broadcast(a.alpha_min);
    const F8 v_clamp = F8::broadcast(0.99f);
    alignas(32) const float iota_a[8] = {0, 1, 2, 3, 4, 5, 6, 7};
    const F8 iota = F8::load(iota_a);
    const F8 bg_r = F8::broadcast(a.background.x);
    const F8 bg_g = F8::broadcast(a.background.y);
    const F8 bg_b = F8::broadcast(a.background.z);

    for (int py = a.py0; py < a.py1; ++py) {
        const float pcy = py + 0.5f;
        for (int px = a.px0; px < a.px1; px += 8) {
            const int lanes = a.px1 - px < 8 ? a.px1 - px : 8;
            // Gather the group's per-pixel forward activation. Lanes
            // past the tile edge read n_contrib = 0: they never join
            // the replay and contribute exact zeros.
            alignas(32) float nc_a[8], ft_a[8];
            alignas(32) float dr_a[8], dg_a[8], db_a[8];
            uint32_t maxc = 0;
            for (int l = 0; l < 8; ++l) {
                if (l < lanes) {
                    const size_t pi =
                        static_cast<size_t>(py) * w + px + l;
                    const uint32_t nc = a.n_contrib[pi];
                    if (nc > maxc)
                        maxc = nc;
                    nc_a[l] = static_cast<float>(nc);
                    ft_a[l] = a.final_t[pi];
                    const float *dp = a.d_image + pi * 3;
                    dr_a[l] = dp[0];
                    dg_a[l] = dp[1];
                    db_a[l] = dp[2];
                } else {
                    nc_a[l] = 0.0f;
                    ft_a[l] = 1.0f;
                    dr_a[l] = dg_a[l] = db_a[l] = 0.0f;
                }
            }
            if (maxc == 0)
                continue;
            const F8 pcx = F8::broadcast(px + 0.5f) + iota;
            // n_contrib < kSimdMaxStagedEntries = 2^24, so the float
            // lane holds it exactly and lt() is an exact integer test.
            const F8 nc_f = F8::load(nc_a);
            const F8 fin_t = F8::load(ft_a);
            const F8 dpr = F8::load(dr_a);
            const F8 dpg = F8::load(dg_a);
            const F8 dpb = F8::load(db_a);
            // Same association as Vec3::dot: (x + y) + z.
            const F8 bg_dot = bg_r * dpr + bg_g * dpg + bg_b * dpb;

            F8 t_acc = fin_t;
            F8 last_alpha = zero;
            F8 last_r = zero, last_g = zero, last_b = zero;
            F8 rec_r = zero, rec_g = zero, rec_b = zero;
            for (size_t pos = maxc; pos-- > 0;) {
                const float dy_s = a.mean_y[pos] - pcy;
                // No pixel of this row reaches the cut — uniform
                // across the group's 8 lanes (dy depends only on py).
                if (-0.5f * a.row_k[pos] * dy_s * dy_s + kRowCutMargin
                    < a.power_cut[pos])
                    continue;
                // Lanes whose composited prefix includes this entry.
                const F8 join = F8::lt(
                    F8::broadcast(static_cast<float>(pos)), nc_f);
                const F8 dx = F8::broadcast(a.mean_x[pos]) - pcx;
                const F8 dy = F8::broadcast(dy_s);
                // Identical association to the forward kernel, so the
                // power (and hence alpha) bits match the forward pass.
                const F8 power =
                    neg_half
                        * (F8::broadcast(a.conic_a[pos]) * dx * dx
                           + F8::broadcast(a.conic_c[pos] * dy_s
                                           * dy_s))
                    - F8::broadcast(a.conic_b[pos]) * dx * dy;
                const F8 cut = F8::broadcast(a.power_cut[pos]);
                F8 ok = F8::bitAndNot(
                    F8::bitOr(F8::gt(power, zero), F8::lt(power, cut)),
                    join);
                if (!F8::any(ok))
                    continue;
                const F8 gval = exp8(power);
                const F8 raw_alpha =
                    F8::broadcast(a.opacity[pos]) * gval;
                const F8 clamped = F8::gt(raw_alpha, v_clamp);
                const F8 alpha = F8::min(v_clamp, raw_alpha);
                ok = F8::bitAndNot(F8::lt(alpha, v_alpha_min), ok);
                if (!F8::any(ok))
                    continue;

                // Transmittance in front of this Gaussian (rewind);
                // untouched on lanes that skip the entry.
                const F8 om_alpha = one - alpha;
                t_acc = F8::select(ok, t_acc / om_alpha, t_acc);
                const F8 dch_dcolor = F8::bitAnd(ok, alpha * t_acc);

                // c - (color accumulated behind this Gaussian).
                rec_r = F8::select(
                    ok, last_r * last_alpha + rec_r * (one - last_alpha),
                    rec_r);
                rec_g = F8::select(
                    ok, last_g * last_alpha + rec_g * (one - last_alpha),
                    rec_g);
                rec_b = F8::select(
                    ok, last_b * last_alpha + rec_b * (one - last_alpha),
                    rec_b);
                const F8 col_r = F8::broadcast(a.color_r[pos]);
                const F8 col_g = F8::broadcast(a.color_g[pos]);
                const F8 col_b = F8::broadcast(a.color_b[pos]);
                last_r = F8::select(ok, col_r, last_r);
                last_g = F8::select(ok, col_g, last_g);
                last_b = F8::select(ok, col_b, last_b);
                F8 dl_dalpha = (col_r - rec_r) * dpr
                             + (col_g - rec_g) * dpg
                             + (col_b - rec_b) * dpb;

                float *g8 = a.grad8
                          + pos * static_cast<size_t>(kG8Comps) * 8;
                g8Add(g8, kG8ColorR, dpr * dch_dcolor);
                g8Add(g8, kG8ColorG, dpg * dch_dcolor);
                g8Add(g8, kG8ColorB, dpb * dch_dcolor);

                dl_dalpha = dl_dalpha * t_acc;
                last_alpha = F8::select(ok, alpha, last_alpha);

                // Background shows through less when alpha grows.
                dl_dalpha = dl_dalpha
                          + ((zero - fin_t) / om_alpha) * bg_dot;

                // min(0.99, .) sub-gradient = 0 on clamped lanes: they
                // keep the color gradient above but contribute nothing
                // to opacity/mean/conic.
                const F8 grad_ok = F8::bitAndNot(clamped, ok);
                if (!F8::any(grad_ok))
                    continue;
                g8Add(g8, kG8Opacity,
                      F8::bitAnd(grad_ok, gval * dl_dalpha));

                // G = exp(power(d)), d = mean - pix.
                const F8 gdl =
                    gval * (F8::broadcast(a.opacity[pos]) * dl_dalpha);
                const F8 ca8 = F8::broadcast(a.conic_a[pos]);
                const F8 cb8 = F8::broadcast(a.conic_b[pos]);
                const F8 cc8 = F8::broadcast(a.conic_c[pos]);
                g8Add(g8, kG8MeanX,
                      F8::bitAnd(grad_ok,
                                 gdl * ((zero - ca8) * dx - cb8 * dy)));
                g8Add(g8, kG8MeanY,
                      F8::bitAnd(grad_ok,
                                 gdl * ((zero - cc8) * dy - cb8 * dx)));
                g8Add(g8, kG8ConicA,
                      F8::bitAnd(grad_ok,
                                 gdl * (neg_half * dx * dx)));
                g8Add(g8, kG8ConicB,
                      F8::bitAnd(grad_ok, gdl * ((zero - dx) * dy)));
                g8Add(g8, kG8ConicC,
                      F8::bitAnd(grad_ok,
                                 gdl * (neg_half * dy * dy)));
            }
        }
    }
}

/**
 * Packed frustum plane sweep (the batch culler's prefilter): 8 entries
 * per op against the 6 planes, no early exit but no branches either.
 * Writes the per-lane "clearly outside" mask; the caller runs the exact
 * Ellipsoid/Frustum predicate on surviving lanes, so membership can
 * never differ from the per-view cull.
 */
void
kernelCullPrefilter(const CullPrefilterArgs &a)
{
    F8 nx[6], ny[6], nz[6], nd[6], margin[6];
    for (int j = 0; j < 6; ++j) {
        nx[j] = F8::broadcast(a.plane_nx[j]);
        ny[j] = F8::broadcast(a.plane_ny[j]);
        nz[j] = F8::broadcast(a.plane_nz[j]);
        nd[j] = F8::broadcast(a.plane_d[j]);
        margin[j] = F8::broadcast(a.margin[j]);
    }
    for (size_t b = 0; b < a.padded; b += 8) {
        const F8 px = F8::load(a.cx + b);
        const F8 py = F8::load(a.cy + b);
        const F8 pz = F8::load(a.cz + b);
        const F8 thr = F8::load(a.neg_thresh + b);
        F8 rejected = F8::zero();
        for (int j = 0; j < 6; ++j) {
            F8 dist = nx[j] * px + ny[j] * py + nz[j] * pz + nd[j];
            rejected =
                F8::bitOr(rejected, F8::lt(dist, thr - margin[j]));
        }
        rejected.store(a.rejected + b);
    }
}
