/**
 * @file
 * Per-tile forward compositing kernels, shared by the single-view
 * rasterizer (render/rasterizer.cpp) and the fused multi-view batch
 * pipeline (render/batch.cpp). Both entry points run the exact same
 * kernels over the exact same staged inputs, which is what makes the
 * batched forward bitwise identical to sequential renderForward calls.
 */

#ifndef CLM_RENDER_COMPOSITOR_HPP
#define CLM_RENDER_COMPOSITOR_HPP

#include <cstddef>
#include <vector>

#include "render/binning.hpp"
#include "render/rasterizer.hpp"

namespace clm {

struct TileStage;

namespace detail {

/**
 * Composite the tiles [@p t0, @p t1) of @p out's tile grid: stage each
 * tile's Gaussians from @p out (projected footprints + sorted
 * intersections + per-entry cuts), then run the SIMD or scalar reference
 * compositor per RenderConfig::use_simd. Empty tiles write the
 * background directly. Tiles touch disjoint pixels, so any parallel
 * split over tile ranges produces identical results; @p stage is the
 * calling worker's private staging scratch.
 *
 * @p stage_soa additionally fills the stage's SoA mirrors for tiles the
 * backward replay would SIMD-batch (cfg.use_simd and the staged-entry
 * bound) — the retained-staging mode of renderForwardBatch, which lets
 * renderBackwardBatch replay each tile without re-staging it. Staging
 * is pure data movement, so the composited pixels are unchanged.
 */
void compositeTileRange(const RenderConfig &cfg, const TileGrid &grid,
                        const std::vector<float> &alpha_cut,
                        const std::vector<float> &row_k, TileStage &stage,
                        size_t t0, size_t t1, RenderOutput &out,
                        bool stage_soa = false);

} // namespace detail

} // namespace clm

#endif // CLM_RENDER_COMPOSITOR_HPP
