/**
 * @file
 * EWA splatting projection: maps a 3D Gaussian to its screen-space footprint
 * (2D mean, 2D covariance/conic, radius, view-dependent color), plus the
 * analytic backward pass. The math follows the reference 3DGS / gsplat
 * kernels: Sigma2D = J W Sigma W^T J^T + 0.3 I, conic = Sigma2D^-1.
 */

#ifndef CLM_RENDER_PROJECTION_HPP
#define CLM_RENDER_PROJECTION_HPP

#include <array>
#include <cstdint>

#include "gaussian/model.hpp"
#include "render/camera.hpp"

namespace clm {

/** Screen-space blur added to the projected covariance diagonal (pixels^2). */
constexpr float kScreenBlur = 0.3f;

/** One Gaussian's projected footprint and the state cached for backward. */
struct ProjectedGaussian
{
    uint32_t index = 0;        //!< Global Gaussian index.
    bool valid = false;        //!< False when behind near plane/degenerate.

    Vec2 mean2d;               //!< Pixel-space center.
    float depth = 0.0f;        //!< Camera-space z (sort key).
    float conic_a = 0.0f;      //!< Conic (inverse 2D covariance) [0][0].
    float conic_b = 0.0f;      //!< Conic [0][1] == [1][0].
    float conic_c = 0.0f;      //!< Conic [1][1].
    float radius = 0.0f;       //!< 3-sigma pixel radius for tile binning.
    float opacity = 0.0f;      //!< World (post-sigmoid) opacity.
    Vec3 color;                //!< View-dependent RGB from SH.
    std::array<bool, 3> color_valid{true, true, true};  //!< Clamp mask.

    // Cached intermediates for the backward pass.
    Vec3 t;                    //!< Camera-space position (unclamped).
    bool clamped_u = false;    //!< t.x/t.z hit the frustum guard band.
    bool clamped_v = false;    //!< t.y/t.z hit the frustum guard band.
    float cov2d_a = 0.0f, cov2d_b = 0.0f, cov2d_c = 0.0f;  //!< With blur.
};

/** Gradients flowing from the rasterizer into one projected Gaussian. */
struct ProjectionGrads
{
    Vec2 d_mean2d;
    float d_conic_a = 0.0f;
    float d_conic_b = 0.0f;    //!< Gradient of the single off-diagonal.
    float d_conic_c = 0.0f;
    Vec3 d_color;
    float d_opacity = 0.0f;    //!< Gradient w.r.t. *world* opacity.
};

/**
 * Project Gaussian @p i of @p model through @p camera.
 *
 * @param sh_degree Active spherical-harmonics degree in [0, 3].
 * @return The footprint; .valid == false when the Gaussian is behind the
 *         near plane or its projected covariance is degenerate.
 */
ProjectedGaussian projectGaussian(const GaussianModel &model, size_t i,
                                  const Camera &camera, int sh_degree = 3);

/**
 * projectGaussian() with the view-independent per-Gaussian work hoisted
 * out: @p sigma must equal model.covariance(i) and @p opacity must equal
 * model.worldOpacity(i) — both are pure functions of the model row, so
 * passing precomputed values yields bitwise-identical footprints. The
 * batched multi-view pipeline (render/batch.hpp) computes them once per
 * union entry and reuses them across every view of the batch.
 */
ProjectedGaussian projectGaussianPre(const GaussianModel &model, size_t i,
                                     const Camera &camera, int sh_degree,
                                     const Mat3 &sigma, float opacity);

/**
 * Backward of projectGaussian(): chain @p grads (w.r.t. the footprint)
 * through the projection into parameter gradients, accumulated into @p out
 * at row proj.index.
 */
void projectGaussianBackward(const GaussianModel &model,
                             const Camera &camera, int sh_degree,
                             const ProjectedGaussian &proj,
                             const ProjectionGrads &grads,
                             GaussianGrads &out);

} // namespace clm

#endif // CLM_RENDER_PROJECTION_HPP
