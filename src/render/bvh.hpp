/**
 * @file
 * Bounding-volume hierarchy over Gaussian 3-sigma bounds — the spatial
 * acceleration structure the paper proposes as future work (§8) to
 * replace the linear frustum-culling sweep. Interior nodes store merged
 * AABBs; culling descends only into subtrees whose boxes intersect the
 * frustum and falls back to the exact per-Gaussian ellipsoid test at the
 * leaves, so the result is identical to the linear sweep.
 */

#ifndef CLM_RENDER_BVH_HPP
#define CLM_RENDER_BVH_HPP

#include <cstdint>
#include <vector>

#include "gaussian/model.hpp"
#include "math/aabb.hpp"
#include "render/camera.hpp"

namespace clm {

/** BVH build parameters. */
struct BvhConfig
{
    /** Max Gaussians per leaf; smaller = deeper tree, tighter boxes. */
    int leaf_size = 16;
};

/**
 * Static median-split BVH over a model's Gaussians. Rebuild after
 * densification or large position updates; between rebuilds,
 * refit() cheaply re-tightens boxes for parameter drift.
 */
class GaussianBvh
{
  public:
    /** Build from @p model (3-sigma bounds per Gaussian). */
    GaussianBvh(const GaussianModel &model, BvhConfig config = {});

    /**
     * Frustum culling through the tree. Produces exactly the same index
     * set as frustumCull() (ascending order).
     */
    std::vector<uint32_t> cull(const Camera &camera) const;

    /**
     * Re-tighten all node boxes bottom-up from @p model's current
     * parameters without changing the topology. Cheap (O(n)).
     */
    void refit(const GaussianModel &model);

    /** Number of tree nodes (leaves + interior). */
    size_t nodeCount() const { return nodes_.size(); }

    /** Number of Gaussians indexed. */
    size_t size() const { return primitive_order_.size(); }

    /** Culling statistics of the most recent cull() call. */
    struct CullStats
    {
        size_t nodes_visited = 0;
        size_t boxes_rejected = 0;
        size_t leaf_tests = 0;    //!< Exact ellipsoid tests performed.
    };
    const CullStats &lastStats() const { return stats_; }

  private:
    struct Node
    {
        Aabb box;
        int32_t left = -1;      //!< Interior: left child; leaf: -1.
        int32_t right = -1;
        uint32_t first = 0;     //!< Leaf: first primitive slot.
        uint32_t count = 0;     //!< Leaf: primitive count (0 = interior).
    };

    /** 3-sigma AABB of one Gaussian. */
    static Aabb gaussianBounds(const GaussianModel &model, size_t i);

    int32_t build(std::vector<uint32_t> &prims, size_t begin, size_t end,
                  const std::vector<Aabb> &bounds);

    void cullNode(int32_t node, const Camera &camera,
                  std::vector<uint32_t> &out) const;

    Aabb refitNode(int32_t node, const std::vector<Aabb> &bounds);

    BvhConfig config_;
    const GaussianModel *model_ = nullptr;    //!< For leaf exact tests.
    std::vector<Node> nodes_;
    std::vector<uint32_t> primitive_order_;
    int32_t root_ = -1;
    mutable CullStats stats_;
};

} // namespace clm

#endif // CLM_RENDER_BVH_HPP
