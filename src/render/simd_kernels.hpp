/**
 * @file
 * Runtime-dispatched SIMD render kernels. One binary carries a kernel
 * table per F8 backend its architecture can express (x86-64: avx2 +
 * sse2 + scalar; aarch64: neon + scalar); renderKernels() returns the
 * table for the startup dispatch choice (math/simd_backend.hpp —
 * CPUID-selected, CLM_SIMD-overridable), and renderKernelsFor() gives
 * tests/benches any compiled-in table for in-process cross-backend
 * comparison (RenderConfig::kernels).
 *
 * Every backend's kernel runs the same IEEE op sequence (see
 * math/simd.hpp), so the dispatch choice NEVER changes an output bit —
 * only speed. The argument structs are raw pointers + scalars on
 * purpose: the AVX2 table is compiled in a baseline TU under a target
 * pragma, and keeping the kernel surface free of templates/containers
 * keeps AVX2 codegen out of every vague-linkage (comdat) symbol a
 * baseline TU might share.
 */

#ifndef CLM_RENDER_SIMD_KERNELS_HPP
#define CLM_RENDER_SIMD_KERNELS_HPP

#include <cstddef>
#include <cstdint>

#include "math/simd_backend.hpp"
#include "math/vec.hpp"

namespace clm {

struct StagedGaussian;

/** Forward compositing of one tile: 8-pixel groups, one F8 lane per
 *  pixel (the body formerly known as compositeTileSimd). */
struct CompositeTileArgs
{
    const StagedGaussian *hot;    //!< Staged tile entries (AoS).
    const Vec3 *colors;           //!< Per-entry view-space colors.
    size_t len;                   //!< Staged entry count.
    int px0, px1, py0, py1;       //!< Pixel rect of the tile (clipped).
    int width;                    //!< Full image width in pixels.
    float alpha_min;
    float t_min;
    Vec3 background;
    float *image;                 //!< Full image, interleaved RGB rows.
    float *final_t;               //!< Full image, per pixel.
    uint32_t *n_contrib;          //!< Full image, per pixel.
};

/** Component order of the backward kernel's per-entry 8-lane gradient
 *  partials: grad8[(pos * kG8Comps + comp) * 8 + lane]. */
enum : int
{
    kG8MeanX = 0,
    kG8MeanY,
    kG8ConicA,
    kG8ConicB,
    kG8ConicC,
    kG8ColorR,
    kG8ColorG,
    kG8ColorB,
    kG8Opacity,
    kG8Comps
};

/** Backward replay of one tile: 8-pixel groups, one F8 lane per pixel,
 *  accumulating per-entry gradients into 8-lane partials that the
 *  caller reduces in fixed lane order (deterministic lane reduction). */
struct BackwardTileArgs
{
    /** @name SoA staged tile fields, padded to a multiple of 8 with
     *  power_cut = +inf entries (TileStage::stageFrom). */
    /// @{
    const float *mean_x, *mean_y;
    const float *conic_a, *conic_b, *conic_c;
    const float *power_cut, *row_k;
    const float *opacity;
    const float *color_r, *color_g, *color_b;
    /// @}
    size_t len;                   //!< Staged entry count (unpadded).
    int px0, px1, py0, py1;       //!< Pixel rect of the tile (clipped).
    int width;                    //!< Full image width in pixels.
    float alpha_min;
    Vec3 background;
    const float *final_t;         //!< Forward activation, full image.
    const uint32_t *n_contrib;    //!< Forward activation, full image.
    const float *d_image;         //!< dL/d(pixel), interleaved RGB.
    /** len * kG8Comps * 8 floats, zeroed by the caller; masked-out
     *  lanes contribute exact +0.0f. */
    float *grad8;
};

/** Batched frustum plane sweep of the batch culler: fills a per-entry
 *  reject mask (nonzero = clearly outside some plane by more than the
 *  margin; the caller runs the exact predicate on the rest). */
struct CullPrefilterArgs
{
    const float *cx, *cy, *cz;    //!< Centers, padded to a multiple of 8.
    const float *neg_thresh;      //!< -radius - eps term (+inf padding).
    size_t padded;                //!< Entry count, multiple of 8.
    float plane_nx[6], plane_ny[6], plane_nz[6], plane_d[6];
    float margin[6];
    float *rejected;              //!< @p padded lanes of mask output.
};

/** One backend's kernel table. */
struct RenderKernels
{
    SimdBackend backend;
    const char *name;
    void (*composite_tile)(const CompositeTileArgs &);
    void (*backward_tile)(const BackwardTileArgs &);
    void (*cull_prefilter)(const CullPrefilterArgs &);
};

/** The table of the startup dispatch choice (simdDispatchBackend()).
 *  Never null: the scalar table exists in every build. */
const RenderKernels &renderKernels();

/** @p backend's table, or nullptr when it is not compiled into this
 *  binary / unsafe on this CPU. For tests and per-backend benches. */
const RenderKernels *renderKernelsFor(SimdBackend backend);

/** @name Per-backend table instances
 * Defined by render/simd_kernels_<backend>.cpp; nullptr when the
 * backend is not compiled in. Use renderKernelsFor() instead.
 */
/// @{
const RenderKernels *renderKernelsScalar();
const RenderKernels *renderKernelsSse2();
const RenderKernels *renderKernelsAvx2();
const RenderKernels *renderKernelsNeon();
/// @}

} // namespace clm

#endif // CLM_RENDER_SIMD_KERNELS_HPP
