/**
 * @file
 * Training loss: (1 - lambda) * L1 + lambda * D-SSIM, the reference 3DGS
 * objective, with an exact analytic backward pass into dL/d(rendered).
 */

#ifndef CLM_RENDER_LOSS_HPP
#define CLM_RENDER_LOSS_HPP

#include "render/image.hpp"

namespace clm {

/** Loss weighting and SSIM window parameters. */
struct LossConfig
{
    float lambda_dssim = 0.2f;    //!< Weight of the D-SSIM term.
    int ssim_window = 11;         //!< Box window edge (odd).
    float ssim_c1 = 0.01f * 0.01f;    //!< (k1 L)^2 with L = 1.
    float ssim_c2 = 0.03f * 0.03f;    //!< (k2 L)^2 with L = 1.
};

/** Scalar loss values from one view. */
struct LossResult
{
    double total = 0.0;
    double l1 = 0.0;
    double dssim = 0.0;    //!< 1 - mean SSIM.
};

/**
 * Compute the loss between @p rendered and @p ground_truth.
 *
 * @param d_rendered When non-null, filled with dL/d(rendered) (same size
 *        as the images); the buffer is overwritten, not accumulated.
 */
LossResult computeLoss(const Image &rendered, const Image &ground_truth,
                       Image *d_rendered, const LossConfig &config = {});

/**
 * Mean SSIM between two images (box window, clamped borders). Forward only.
 */
double meanSsim(const Image &a, const Image &b, const LossConfig &config = {});

} // namespace clm

#endif // CLM_RENDER_LOSS_HPP
