/**
 * @file
 * Training loss: (1 - lambda) * L1 + lambda * D-SSIM, the reference 3DGS
 * objective, with an exact analytic backward pass into dL/d(rendered).
 *
 * The SSIM statistics (box window, clamped borders) are computed from
 * summed-area tables: five integral images (x, y, x^2, y^2, x*y) fused
 * across the three channels give every center's window statistics in
 * O(1), and the backward scatter collapses to three more integral
 * images of the per-center gradient coefficient fields — so the whole
 * loss is O(w*h) forward and backward instead of the brute-force
 * O(w*h*window^2). Both directions tile across the global ThreadPool
 * with a fixed chunk partition and an in-order partial reduction (the
 * backward-rasterizer determinism recipe): parallel runs are bitwise
 * identical to serial runs on the same machine.
 *
 * The pre-SAT brute-force implementation is retained as
 * computeLossReference() — the ground truth for tests and the speedup
 * baseline for bench/micro_train_step.
 */

#ifndef CLM_RENDER_LOSS_HPP
#define CLM_RENDER_LOSS_HPP

#include <vector>

#include "render/image.hpp"

namespace clm {

/** Loss weighting and SSIM window parameters. */
struct LossConfig
{
    float lambda_dssim = 0.2f;    //!< Weight of the D-SSIM term.
    int ssim_window = 11;         //!< Box window edge (odd).
    float ssim_c1 = 0.01f * 0.01f;    //!< (k1 L)^2 with L = 1.
    float ssim_c2 = 0.03f * 0.03f;    //!< (k2 L)^2 with L = 1.
    /** Tile the SAT passes across the global thread pool. The chunk
     *  partition is derived from the pool size whether or not this is
     *  set, so parallel and serial runs perform identical arithmetic
     *  (bitwise-equal results on any one machine; machines with
     *  different core counts may differ in the last bits of the
     *  reduction, exactly like the backward rasterizer). */
    bool parallel = true;
};

/** Scalar loss values from one view. */
struct LossResult
{
    double total = 0.0;
    double l1 = 0.0;
    double dssim = 0.0;    //!< 1 - mean SSIM.
};

/** Wall-clock split of one computeLoss call (train-step bench). */
struct LossStageTimes
{
    double forward_s = 0;     //!< L1 + SSIM statistics passes.
    double backward_s = 0;    //!< Gradient field + scatter passes.
};

/**
 * Reusable scratch for the SAT loss. One per concurrently-evaluating
 * caller (a Trainer owns one); holds up to 33 doubles per pixel when
 * gradients are requested (15-field statistics SAT, 9-field coefficient
 * image, 9-field coefficient SAT), reused across calls.
 */
struct LossScratch
{
    std::vector<double> sat;          //!< (w+1)*(h+1)*15 statistics SAT.
    std::vector<double> field;        //!< w*h*9 gradient coefficients.
    std::vector<double> field_sat;    //!< (w+1)*(h+1)*9 coefficient SAT.
};

/**
 * Compute the loss between @p rendered and @p ground_truth.
 *
 * @param d_rendered When non-null, filled with dL/d(rendered) (same size
 *        as the images); the buffer is overwritten, not accumulated.
 */
LossResult computeLoss(const Image &rendered, const Image &ground_truth,
                       Image *d_rendered, const LossConfig &config = {});

/**
 * Scratch-reusing overload for hot loops (bitwise-identical results).
 * @p times, when non-null, receives the forward/backward wall split.
 */
LossResult computeLoss(const Image &rendered, const Image &ground_truth,
                       Image *d_rendered, const LossConfig &config,
                       LossScratch &scratch,
                       LossStageTimes *times = nullptr);

/**
 * Reference implementation: the serial O(w*h*window^2) brute-force
 * window sweep (forward and backward). Retained as the accuracy ground
 * truth for tests and as the speedup baseline for the train-step
 * micro-bench; not used by any training path.
 */
LossResult computeLossReference(const Image &rendered,
                                const Image &ground_truth,
                                Image *d_rendered,
                                const LossConfig &config = {},
                                LossStageTimes *times = nullptr);

/**
 * Mean SSIM between two images (box window, clamped borders). Forward
 * only, via the same SAT passes as computeLoss.
 */
double meanSsim(const Image &a, const Image &b, const LossConfig &config = {});

} // namespace clm

#endif // CLM_RENDER_LOSS_HPP
