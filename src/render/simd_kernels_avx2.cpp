/**
 * @file
 * AVX2 instance of the render kernel table, compiled on every x86 build
 * WITHOUT -mavx2: the kernel bodies (and the F8 backend they use) sit
 * inside a target("avx2") pragma region, so only these functions get
 * AVX2 codegen and the binary stays runnable on SSE2-only machines —
 * the dispatch layer (math/simd_backend.hpp) only selects this table
 * when CPUID reports AVX2.
 *
 * Vague-linkage discipline: every header whose inline/template code a
 * baseline TU might also instantiate (render structs, <algorithm>, the
 * std headers behind them) is included BEFORE the pragma region, so the
 * region contains only this TU's private F8 backend (its qualified
 * names are unique to AVX2-forced TUs) and the anonymous-namespace
 * kernel bodies. Nothing with AVX2 codegen can be comdat-merged into a
 * baseline caller.
 */

#include "render/simd_kernels.hpp"

#if !defined(CLM_DISABLE_SIMD) \
    && (defined(__x86_64__) || defined(__i386__)) \
    && (defined(__GNUC__) || defined(__clang__))

// Pre-include (outside the target region) everything the kernels touch.
#include <cmath>
#include <cstdint>
#include <cstring>

#include "render/arena.hpp"
#include "render/binning.hpp"

#define CLM_F8_FORCE_AVX2 1

#if defined(__clang__)
#pragma clang attribute push(__attribute__((target("avx2"))), \
                             apply_to = function)
#else
#pragma GCC push_options
#pragma GCC target("avx2")
#endif

#include "math/simd.hpp"

namespace clm {

namespace {
#include "render/simd_kernels_impl.inl"
} // namespace

} // namespace clm

#if defined(__clang__)
#pragma clang attribute pop
#else
#pragma GCC pop_options
#endif

namespace clm {

const RenderKernels *
renderKernelsAvx2()
{
    static const RenderKernels table{SimdBackend::kAvx2, "avx2",
                                     &kernelCompositeTile,
                                     &kernelBackwardTile,
                                     &kernelCullPrefilter};
    return &table;
}

} // namespace clm

#else

namespace clm {

const RenderKernels *
renderKernelsAvx2()
{
    return nullptr;
}

} // namespace clm

#endif
