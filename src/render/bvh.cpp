#include "render/bvh.hpp"

#include <algorithm>
#include <numeric>

#include "math/ellipsoid.hpp"
#include "util/logging.hpp"

namespace clm {

Aabb
GaussianBvh::gaussianBounds(const GaussianModel &model, size_t i)
{
    // Conservative: the 3-sigma ellipsoid fits inside the sphere of its
    // largest semi-axis.
    Ellipsoid e = Ellipsoid::fromGaussian(model.position(i),
                                          model.worldScale(i),
                                          model.rotation(i));
    Aabb box;
    box.extend(e.center);
    box.inflate(e.boundingRadius());
    return box;
}

GaussianBvh::GaussianBvh(const GaussianModel &model, BvhConfig config)
    : config_(config), model_(&model)
{
    CLM_ASSERT(config_.leaf_size >= 1, "leaf size must be positive");
    size_t n = model.size();
    primitive_order_.resize(n);
    std::iota(primitive_order_.begin(), primitive_order_.end(), 0u);
    if (n == 0)
        return;

    std::vector<Aabb> bounds(n);
    for (size_t i = 0; i < n; ++i)
        bounds[i] = gaussianBounds(model, i);

    nodes_.reserve(2 * n / std::max(config_.leaf_size, 1) + 2);
    root_ = build(primitive_order_, 0, n, bounds);
}

int32_t
GaussianBvh::build(std::vector<uint32_t> &prims, size_t begin, size_t end,
                   const std::vector<Aabb> &bounds)
{
    Node node;
    for (size_t i = begin; i < end; ++i) {
        node.box.extend(bounds[prims[i]].lo);
        node.box.extend(bounds[prims[i]].hi);
    }

    size_t count = end - begin;
    if (count <= static_cast<size_t>(config_.leaf_size)) {
        node.first = static_cast<uint32_t>(begin);
        node.count = static_cast<uint32_t>(count);
        // Ascending order inside the leaf keeps the output sorted cheap.
        std::sort(prims.begin() + begin, prims.begin() + end);
        nodes_.push_back(node);
        return static_cast<int32_t>(nodes_.size()) - 1;
    }

    // Median split along the widest axis of the centroid extent.
    Aabb centroid_box;
    for (size_t i = begin; i < end; ++i)
        centroid_box.extend(bounds[prims[i]].center());
    Vec3 ext = centroid_box.extent();
    int axis = 0;
    if (ext.y > ext.x)
        axis = 1;
    if (ext.z > (axis == 0 ? ext.x : ext.y))
        axis = 2;

    size_t mid = begin + count / 2;
    std::nth_element(prims.begin() + begin, prims.begin() + mid,
                     prims.begin() + end, [&](uint32_t a, uint32_t b) {
                         return bounds[a].center()[axis]
                              < bounds[b].center()[axis];
                     });

    // Reserve our slot first so children land after us.
    nodes_.push_back(node);
    int32_t self = static_cast<int32_t>(nodes_.size()) - 1;
    int32_t left = build(prims, begin, mid, bounds);
    int32_t right = build(prims, mid, end, bounds);
    nodes_[self].left = left;
    nodes_[self].right = right;
    return self;
}

void
GaussianBvh::cullNode(int32_t idx, const Camera &camera,
                      std::vector<uint32_t> &out) const
{
    const Node &node = nodes_[idx];
    ++stats_.nodes_visited;
    if (!camera.frustum().intersectsAabb(node.box)) {
        ++stats_.boxes_rejected;
        return;
    }
    if (node.count > 0 || node.left < 0) {    // leaf
        const Frustum &fr = camera.frustum();
        for (uint32_t k = 0; k < node.count; ++k) {
            uint32_t g = primitive_order_[node.first + k];
            ++stats_.leaf_tests;
            Ellipsoid e = Ellipsoid::fromGaussian(
                model_->position(g), model_->worldScale(g),
                model_->rotation(g));
            if (!fr.intersectsSphere(e.center, e.boundingRadius()))
                continue;
            if (e.intersectsFrustum(fr))
                out.push_back(g);
        }
        return;
    }
    cullNode(node.left, camera, out);
    cullNode(node.right, camera, out);
}

std::vector<uint32_t>
GaussianBvh::cull(const Camera &camera) const
{
    stats_ = {};
    std::vector<uint32_t> out;
    if (root_ >= 0)
        cullNode(root_, camera, out);
    std::sort(out.begin(), out.end());
    return out;
}

Aabb
GaussianBvh::refitNode(int32_t idx, const std::vector<Aabb> &bounds)
{
    Node &node = nodes_[idx];
    Aabb box;
    if (node.count > 0 || node.left < 0) {
        for (uint32_t k = 0; k < node.count; ++k) {
            const Aabb &b = bounds[primitive_order_[node.first + k]];
            box.extend(b.lo);
            box.extend(b.hi);
        }
    } else {
        Aabb l = refitNode(node.left, bounds);
        Aabb r = refitNode(node.right, bounds);
        box.extend(l.lo);
        box.extend(l.hi);
        box.extend(r.lo);
        box.extend(r.hi);
    }
    node.box = box;
    return box;
}

void
GaussianBvh::refit(const GaussianModel &model)
{
    CLM_ASSERT(model.size() == primitive_order_.size(),
               "refit requires an unchanged topology; rebuild instead");
    model_ = &model;
    if (root_ < 0)
        return;
    std::vector<Aabb> bounds(model.size());
    for (size_t i = 0; i < model.size(); ++i)
        bounds[i] = gaussianBounds(model, i);
    refitNode(root_, bounds);
}

} // namespace clm
