#include "render/binning.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace clm {

namespace {

/** Below this many items a parallel pass costs more than it saves. */
constexpr size_t kMinParallel = 512;

/** Minimum items per radix chunk (keeps histogram overhead amortized). */
constexpr size_t kMinRadixChunk = 4096;

size_t
chunkCount(size_t n, size_t min_chunk, bool parallel)
{
    if (!parallel || n < 2 * min_chunk)
        return 1;
    size_t by_size = n / min_chunk;
    return std::max<size_t>(
        1, std::min<size_t>(ThreadPool::global().threads(), by_size));
}

/** Run @p body(chunk_index) over [0, n_chunks), possibly in parallel. */
template <typename Body>
void
forEachChunk(size_t n_chunks, const Body &body)
{
    if (n_chunks <= 1) {
        for (size_t c = 0; c < n_chunks; ++c)
            body(c);
        return;
    }
    ThreadPool::global().parallelFor(n_chunks,
                                     [&](size_t begin, size_t end) {
                                         for (size_t c = begin; c < end;
                                              ++c)
                                             body(c);
                                     });
}

} // namespace

TileGrid
TileGrid::forImage(int width, int height, int tile_size)
{
    CLM_ASSERT(tile_size > 0, "bad tile size");
    TileGrid g;
    g.tile_size = tile_size;
    g.width = width;
    g.height = height;
    g.tiles_x = (width + tile_size - 1) / tile_size;
    g.tiles_y = (height + tile_size - 1) / tile_size;
    return g;
}

size_t
BinningScratch::bytes() const
{
    return spans.capacity() * sizeof(TileSpan)
         + offsets.capacity() * sizeof(uint32_t)
         + hist.capacity() * sizeof(uint32_t)
         + keys.capacity() * sizeof(uint64_t)
         + keys_tmp.capacity() * sizeof(uint64_t)
         + vals_tmp.capacity() * sizeof(uint32_t);
}

uint32_t
depthBits(float depth)
{
    // Non-negative IEEE floats compare like their bit patterns.
    uint32_t bits;
    std::memcpy(&bits, &depth, sizeof(bits));
    return bits;
}

float
footprintCutRadius2(const ProjectedGaussian &p, float alpha_min)
{
    if (!p.valid || p.radius <= 0.0f)
        return -1.0f;
    // alpha = opacity * exp(-0.5 q) with q = d^T conic d >=
    // lambda_min(conic) * |d|^2, so alpha < alpha_min is guaranteed once
    // |d|^2 > 2 ln(opacity / alpha_min) / lambda_min. The bound is
    // computed from the float conic the pixel test actually evaluates
    // (not from cov2d — the conic carries the inversion's conditioning
    // error), with lambda_min under-estimated via a safe determinant
    // (det minus its cancellation-error budget, over the stable
    // det / lambda_max form). Ill-conditioned conics fall back to
    // "no cut" instead of risking a drop the pixel test would keep.
    float ratio = alpha_min > 0.0f
                      ? p.opacity / alpha_min
                      : std::numeric_limits<float>::infinity();
    if (ratio <= 1.0f)
        return 0.0f;    // can only pass the alpha test dead-center
    const float ca = p.conic_a, cb = p.conic_b, cc = p.conic_c;
    float det = ca * cc - cb * cb;
    float det_safe = det - kConicEps * (ca * cc + cb * cb);
    if (!(det_safe > 0.0f) || !(ca > 0.0f))
        return std::numeric_limits<float>::infinity();
    float mid = 0.5f * (ca + cc);
    float lambda_max =
        mid + std::sqrt(std::max(0.0f, mid * mid - det));
    if (!(lambda_max > 0.0f))
        return std::numeric_limits<float>::infinity();
    float lambda_min_safe = det_safe / lambda_max;
    return 2.0f * std::log(ratio) / lambda_min_safe;
}

void
computeAlphaCutPowers(const std::vector<ProjectedGaussian> &projected,
                      float alpha_min, bool parallel,
                      std::vector<float> &alpha_cut,
                      std::vector<float> &row_k)
{
    const size_t n = projected.size();
    alpha_cut.resize(n);
    row_k.resize(n);
    auto body = [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
            const ProjectedGaussian &p = projected[s];
            // opacity is a sigmoid output (> 0) for valid footprints;
            // invalid ones carry 0 and never reach the compositor.
            alpha_cut[s] = p.opacity > 0.0f
                               ? alphaCutPower(p.opacity, alpha_min)
                               : 0.0f;
            row_k[s] = rowCurvature(p);
        }
    };
    if (parallel && n >= kMinParallel)
        ThreadPool::global().parallelFor(n, body);
    else
        body(0, n);
}

TileSpan
computeTileSpan(const ProjectedGaussian &p, const TileGrid &grid,
                float alpha_min, bool exact_bounds)
{
    TileSpan span;    // default-empty
    if (!p.valid || p.radius <= 0.0f)
        return span;

    const float ts = static_cast<float>(grid.tile_size);
    span.x0 = clampedFloor((p.mean2d.x - p.radius) / ts, 0, grid.tiles_x);
    span.x1 = clampedFloor((p.mean2d.x + p.radius) / ts, -1,
                           grid.tiles_x - 1);
    span.y0 = clampedFloor((p.mean2d.y - p.radius) / ts, 0, grid.tiles_y);
    span.y1 = clampedFloor((p.mean2d.y + p.radius) / ts, -1,
                           grid.tiles_y - 1);

    span.cut2 = exact_bounds
                    ? footprintCutRadius2(p, alpha_min)
                    : std::numeric_limits<float>::infinity();
    return span;
}

bool
tileOverlaps(const ProjectedGaussian &p, const TileSpan &span, int tx,
             int ty, const TileGrid &grid)
{
    // Distance from the footprint center to the tile's pixel-center
    // rectangle (compositing samples pixel centers at +0.5).
    float rx0 = tx * grid.tile_size + 0.5f;
    float rx1 = std::min((tx + 1) * grid.tile_size, grid.width) - 0.5f;
    float ry0 = ty * grid.tile_size + 0.5f;
    float ry1 = std::min((ty + 1) * grid.tile_size, grid.height) - 0.5f;
    float dx = p.mean2d.x - std::clamp(p.mean2d.x, rx0, rx1);
    float dy = p.mean2d.y - std::clamp(p.mean2d.y, ry0, ry1);
    return dx * dx + dy * dy <= span.cut2;
}

void
radixSortPairs(std::vector<uint64_t> &keys, std::vector<uint32_t> &vals,
               std::vector<uint64_t> &keys_scratch,
               std::vector<uint32_t> &vals_scratch, int key_bits,
               bool parallel, std::vector<uint32_t> *hist_scratch)
{
    const size_t n = keys.size();
    CLM_ASSERT(vals.size() == n, "keys/vals size mismatch");
    if (n <= 1)
        return;
    key_bits = std::clamp(key_bits, 1, 64);
    // Wider digits cut the number of passes over the data once the
    // input dwarfs the histogram; past ~11 bits the scatter fans out
    // over too many cache lines and loses again. The choice only
    // affects speed: the output is the unique stable sort either way.
    const int digit_bits = n >= 65536 ? 11 : 8;
    const size_t radix = size_t{1} << digit_bits;
    const uint64_t digit_mask = radix - 1;
    const int passes = (key_bits + digit_bits - 1) / digit_bits;

    keys_scratch.resize(n);
    vals_scratch.resize(n);

    const size_t n_chunks = chunkCount(n, kMinRadixChunk, parallel);
    const size_t chunk = (n + n_chunks - 1) / n_chunks;
    std::vector<uint32_t> local_hist;
    std::vector<uint32_t> &hist =
        hist_scratch != nullptr ? *hist_scratch : local_hist;
    hist.resize(n_chunks * radix);

    bool in_scratch = false;
    for (int pass = 0; pass < passes; ++pass) {
        const int shift = pass * digit_bits;
        const uint64_t *sk =
            in_scratch ? keys_scratch.data() : keys.data();
        const uint32_t *sv =
            in_scratch ? vals_scratch.data() : vals.data();
        uint64_t *dk = in_scratch ? keys.data() : keys_scratch.data();
        uint32_t *dv = in_scratch ? vals.data() : vals_scratch.data();

        std::fill(hist.begin(), hist.end(), 0u);
        forEachChunk(n_chunks, [&](size_t c) {
            uint32_t *h = &hist[c * radix];
            size_t b = c * chunk, e = std::min(b + chunk, n);
            for (size_t i = b; i < e; ++i)
                ++h[(sk[i] >> shift) & digit_mask];
        });

        // All keys share this digit? Then the pass is the identity.
        bool uniform = false;
        for (size_t d = 0; d < radix && !uniform; ++d) {
            size_t total = 0;
            for (size_t c = 0; c < n_chunks; ++c)
                total += hist[c * radix + d];
            uniform = total == n;
        }
        if (uniform)
            continue;

        // Exclusive scan in (digit-major, chunk-minor) order turns each
        // chunk's histogram into its write cursors: chunk c's run of
        // digit d lands after every earlier chunk's run of d and after
        // every smaller digit — exactly the stable sort placement.
        uint32_t running = 0;
        for (size_t d = 0; d < radix; ++d) {
            for (size_t c = 0; c < n_chunks; ++c) {
                uint32_t count = hist[c * radix + d];
                hist[c * radix + d] = running;
                running += count;
            }
        }

        forEachChunk(n_chunks, [&](size_t c) {
            uint32_t *cursor = &hist[c * radix];
            size_t b = c * chunk, e = std::min(b + chunk, n);
            for (size_t i = b; i < e; ++i) {
                uint32_t pos = cursor[(sk[i] >> shift) & digit_mask]++;
                dk[pos] = sk[i];
                dv[pos] = sv[i];
            }
        });
        in_scratch = !in_scratch;
    }

    if (in_scratch) {
        keys.swap(keys_scratch);
        vals.swap(vals_scratch);
    }
}

size_t
buildTileIntersections(const std::vector<ProjectedGaussian> &projected,
                       const TileGrid &grid, float alpha_min,
                       bool exact_bounds, bool parallel,
                       BinningScratch &scratch,
                       std::vector<uint32_t> &sorted_vals,
                       std::vector<TileRange> &tile_ranges)
{
    const size_t n = projected.size();
    const size_t n_tiles = grid.tileCount();
    scratch.spans.resize(n);
    scratch.offsets.assign(n + 1, 0);

    // 1. Count: candidate span + exact-overlap test per footprint.
    auto count_range = [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
            TileSpan span = computeTileSpan(projected[s], grid, alpha_min,
                                            exact_bounds);
            scratch.spans[s] = span;
            uint32_t touched = 0;
            for (int ty = span.y0; ty <= span.y1; ++ty)
                for (int tx = span.x0; tx <= span.x1; ++tx)
                    if (tileOverlaps(projected[s], span, tx, ty, grid))
                        ++touched;
            scratch.offsets[s + 1] = touched;
        }
    };
    if (parallel && n >= kMinParallel)
        ThreadPool::global().parallelFor(n, count_range);
    else
        count_range(0, n);

    // 2. Exclusive scan -> per-footprint write offsets.
    for (size_t s = 0; s < n; ++s)
        scratch.offsets[s + 1] += scratch.offsets[s];
    const size_t total = scratch.offsets[n];
    CLM_ASSERT(total <= std::numeric_limits<uint32_t>::max(),
               "intersection count overflows 32-bit ranges");

    // 3. Fill keys/values; each footprint writes its own disjoint slice,
    //    so the flat buffer is deterministic under any parallel split.
    scratch.keys.resize(total);
    sorted_vals.resize(total);
    auto fill_range = [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
            const TileSpan &span = scratch.spans[s];
            if (span.empty())
                continue;
            size_t o = scratch.offsets[s];
            const uint64_t depth = depthBits(projected[s].depth);
            for (int ty = span.y0; ty <= span.y1; ++ty)
                for (int tx = span.x0; tx <= span.x1; ++tx) {
                    if (!tileOverlaps(projected[s], span, tx, ty, grid))
                        continue;
                    uint64_t tile = static_cast<uint64_t>(ty) * grid.tiles_x
                                  + tx;
                    scratch.keys[o] = (tile << 32) | depth;
                    sorted_vals[o] = static_cast<uint32_t>(s);
                    ++o;
                }
        }
    };
    if (parallel && n >= kMinParallel)
        ThreadPool::global().parallelFor(n, fill_range);
    else
        fill_range(0, n);

    // 4. One stable radix sort instead of a std::sort per tile. The fill
    //    pass emits a given tile's entries in subset order, so stability
    //    breaks depth ties by subset position.
    const int key_bits =
        32 + bitWidth(n_tiles > 0 ? static_cast<uint32_t>(n_tiles - 1)
                                  : 0u);
    radixSortPairs(scratch.keys, sorted_vals, scratch.keys_tmp,
                   scratch.vals_tmp, key_bits, parallel, &scratch.hist);

    // 5. Contiguous per-tile ranges from the sorted keys.
    tile_ranges.resize(n_tiles);
    size_t e = 0;
    for (size_t t = 0; t < n_tiles; ++t) {
        TileRange r;
        r.begin = static_cast<uint32_t>(e);
        while (e < total && (scratch.keys[e] >> 32) == t)
            ++e;
        r.end = static_cast<uint32_t>(e);
        tile_ranges[t] = r;
    }
    CLM_ASSERT(e == total, "unclaimed intersections past the tile grid");
    return total;
}

} // namespace clm
