/**
 * @file
 * Pinhole camera with pose and intrinsics; provides the view/projection
 * transforms and the culling frustum for one training view.
 */

#ifndef CLM_RENDER_CAMERA_HPP
#define CLM_RENDER_CAMERA_HPP

#include "math/frustum.hpp"
#include "math/mat.hpp"
#include "math/vec.hpp"

namespace clm {

/** A posed pinhole camera (one training view). */
class Camera
{
  public:
    /**
     * Construct from a pose and intrinsics.
     *
     * @param eye Camera center in world space.
     * @param world_to_cam Rotation from world to camera axes (camera looks
     *        down +z, x right, y down — the COLMAP/3DGS convention).
     * @param width Image width in pixels.
     * @param height Image height in pixels.
     * @param fov_y_rad Vertical field of view in radians.
     * @param z_near Near plane distance.
     * @param z_far Far plane distance.
     */
    Camera(const Vec3 &eye, const Mat3 &world_to_cam, int width, int height,
           float fov_y_rad, float z_near = 0.01f, float z_far = 1000.0f);

    /** Build a camera looking from @p eye toward @p target. */
    static Camera lookAt(const Vec3 &eye, const Vec3 &target,
                         const Vec3 &up, int width, int height,
                         float fov_y_rad, float z_near = 0.01f,
                         float z_far = 1000.0f);

    const Vec3 &eye() const { return eye_; }
    const Mat3 &worldToCam() const { return world_to_cam_; }
    int width() const { return width_; }
    int height() const { return height_; }
    float fx() const { return fx_; }
    float fy() const { return fy_; }
    float cx() const { return cx_; }
    float cy() const { return cy_; }
    float zNear() const { return z_near_; }
    float zFar() const { return z_far_; }

    /** World point to camera space (z is depth along the optical axis). */
    Vec3 toCameraSpace(const Vec3 &p_world) const;

    /** The 4x4 view matrix (world to camera, homogeneous). */
    Mat4 viewMatrix() const;

    /** The 4x4 OpenGL-style perspective projection matrix. */
    Mat4 projectionMatrix() const;

    /** View frustum in world space, for selection. */
    const Frustum &frustum() const { return frustum_; }

    /** Total pixels, a proxy for rendering cost. */
    size_t pixels() const
    { return static_cast<size_t>(width_) * height_; }

  private:
    Vec3 eye_;
    Mat3 world_to_cam_;
    int width_;
    int height_;
    float fov_y_;
    float z_near_;
    float z_far_;
    float fx_, fy_, cx_, cy_;
    Frustum frustum_;
};

} // namespace clm

#endif // CLM_RENDER_CAMERA_HPP
