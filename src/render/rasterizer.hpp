/**
 * @file
 * Tile-based differentiable rasterizer for 3D Gaussian splats — the CPU
 * equivalent of the gsplat CUDA kernels (§5). The forward pass composites
 * depth-sorted Gaussians front-to-back per pixel with early termination;
 * the backward pass replays each pixel back-to-front and produces analytic
 * gradients for every learnable parameter.
 *
 * The binning/sorting core follows the flat key-sort design of real 3DGS
 * pipelines (see render/binning.hpp): projection runs in parallel over the
 * subset, intersections are expanded into one flat buffer of
 * `(tile_id << 32 | depth_bits)` keys by a count → scan → fill pass, a
 * single stable radix sort replaces the per-tile std::sort, and tiles
 * composite from contiguous ranges through tile-local SoA staging. All
 * stages are deterministic: the parallel path is bitwise-identical to the
 * serial path, with depth ties broken by subset position.
 *
 * Per the pre-rendering-frustum-culling design (§5.1), the rasterizer takes
 * an explicit in-frustum index set: it never touches Gaussians outside it.
 * Hot-loop callers (one render per view per training step) should pass a
 * RenderArena (render/arena.hpp) to reuse activation buffers across calls.
 */

#ifndef CLM_RENDER_RASTERIZER_HPP
#define CLM_RENDER_RASTERIZER_HPP

#include <cstdint>
#include <vector>

#include "gaussian/model.hpp"
#include "math/simd_backend.hpp"
#include "render/binning.hpp"
#include "render/camera.hpp"
#include "render/image.hpp"
#include "render/projection.hpp"

namespace clm {

class RenderArena;
struct RenderKernels;

/** SIMD tile-length gate shared by the forward compositor and the
 *  backward replay (they MUST agree, or a tile could composite with
 *  exp8 but replay with std::exp): the SIMD paths track the 1-based
 *  "last contributor" position in a float lane, which is exact only up
 *  to 2^24, so longer-staged tiles (never seen in practice) fall back
 *  to the scalar loop in both passes. */
constexpr size_t kSimdMaxStagedEntries = size_t(1) << 24;

/** Rasterization settings. */
struct RenderConfig
{
    int sh_degree = 3;              //!< Active SH degree.
    Vec3 background{0, 0, 0};       //!< Composited behind the splats.
    int tile_size = 16;             //!< Square tile edge in pixels.
    float alpha_min = 1.0f / 255.0f;    //!< Contribution threshold.
    float transmittance_min = 1e-4f;    //!< Early-termination threshold.
    /** Rasterize across the global thread pool. Bitwise-identical to the
     *  serial path: every stage (projection, flat binning, stable radix
     *  sort, per-tile compositing, fixed-order gradient reduction) is
     *  deterministic. Forward results are additionally independent of
     *  the machine's thread count; backward gradients accumulate over a
     *  fixed tile-chunk partition derived from the pool size, so they
     *  are identical serial-vs-parallel on any one machine but may
     *  differ in the last bits between machines with different core
     *  counts. */
    bool parallel = true;
    /** Drop candidate tiles the footprint provably cannot contribute to
     *  (exact circle-vs-tile-rect test, see render/binning.hpp). Never
     *  changes the rendered image or the gradients — only the number of
     *  tile intersections binned. Off reproduces the plain square bound
     *  (kept togglable so benches can report the reduction). */
    bool exact_tile_bounds = true;
    /** Composite and replay through the 8-lane SIMD kernel tables
     *  (render/simd_kernels.hpp): 8-pixel groups with batched
     *  power/alpha evaluation and the polynomial exp8() in the forward
     *  pass, and the 8-pixel-lane gradient replay in the backward
     *  pass. Still fully deterministic — run-to-run, parallel ≡
     *  serial, and even across ISA backends and dispatch choices
     *  (every backend runs the same IEEE op sequence) — but NOT
     *  bit-identical to the scalar reference path: exp8 is within
     *  kExp8MaxUlp of std::exp, which moves quality-harness PSNR by
     *  well under 0.05 dB (asserted in tests). Off runs the pre-SIMD
     *  scalar loops unchanged. Defaults to off in
     *  -DCLM_DISABLE_SIMD=ON builds, which therefore reproduce the
     *  scalar reference bit for bit. */
    bool use_simd = !kSimdDisabled;
    /** Kernel table the SIMD paths run. nullptr (the default) uses the
     *  startup dispatch choice, renderKernels(); tests and benches set
     *  it (renderKernelsFor()) to force a specific backend in-process.
     *  The choice never changes an output bit (all tables run the same
     *  IEEE op sequence), only speed. */
    const RenderKernels *kernels = nullptr;
};

/**
 * Forward-pass result plus the activation state the backward pass needs.
 * The memory footprint of this struct is what the paper calls "activation
 * memory": it scales with resolution and with |S_i|, not with N.
 */
struct RenderOutput
{
    Image image;

    /** Per-pixel transmittance remaining after compositing. */
    std::vector<float> final_t;

    /**
     * Per-pixel 1-based position (in the pixel's tile range) of the last
     * composited Gaussian; 0 when nothing contributed.
     */
    std::vector<uint32_t> n_contrib;

    /** Projected footprints of the in-frustum subset (invalid ones kept
     *  in place so intersections can index by subset position). */
    std::vector<ProjectedGaussian> projected;

    /** Flat intersection buffer: subset positions sorted by
     *  (tile, depth, subset position) — each tile's slice is its
     *  front-to-back compositing order. */
    std::vector<uint32_t> isect_vals;

    /** Per-tile [begin, end) range into isect_vals (row-major tiles). */
    std::vector<TileRange> tile_ranges;

    int tiles_x = 0;
    int tiles_y = 0;

    /** Flat intersection count (the paper's "num intersections"). */
    size_t totalTileIntersections() const { return isect_vals.size(); }

    /** Bytes held by this activation state. Counts every member buffer
     *  exactly (the flat intersection/tile-range buffers included);
     *  unlike the old nested per-tile vectors there is no per-tile heap
     *  bookkeeping left uncounted. */
    size_t activationBytes() const;
};

/**
 * Render @p camera's view from the Gaussians listed in @p subset.
 *
 * @param subset In-frustum Gaussian indices (e.g. from frustumCull()).
 *        Indices outside the camera frustum are harmless (they project to
 *        invalid/zero-contribution footprints) but waste work.
 */
RenderOutput renderForward(const GaussianModel &model, const Camera &camera,
                           const std::vector<uint32_t> &subset,
                           const RenderConfig &config = {});

/**
 * Arena overload for hot loops: renders into @p arena.out, reusing its
 * buffers across calls instead of reallocating per view. The returned
 * reference aliases @p arena.out and stays valid until the next render
 * into the same arena. Results are bitwise-identical to the value-
 * returning overload.
 */
const RenderOutput &renderForward(const GaussianModel &model,
                                  const Camera &camera,
                                  const std::vector<uint32_t> &subset,
                                  const RenderConfig &config,
                                  RenderArena &arena);

/**
 * Backward pass: given dL/d(image), accumulate parameter gradients into
 * @p out (sized for the full model; only rows in the rendered subset are
 * touched — the sparsity property the offload design relies on).
 */
void renderBackward(const GaussianModel &model, const Camera &camera,
                    const RenderConfig &config, const RenderOutput &fwd,
                    const Image &d_image, GaussianGrads &out);

/**
 * Arena overload: uses @p arena's gradient accumulators and tile staging
 * as scratch (reused across calls). @p fwd may be @p arena.out. Results
 * are bitwise-identical to the arena-free overload.
 */
void renderBackward(const GaussianModel &model, const Camera &camera,
                    const RenderConfig &config, const RenderOutput &fwd,
                    const Image &d_image, GaussianGrads &out,
                    RenderArena &arena);

} // namespace clm

#endif // CLM_RENDER_RASTERIZER_HPP
