/**
 * @file
 * Tile-based differentiable rasterizer for 3D Gaussian splats — the CPU
 * equivalent of the gsplat CUDA kernels (§5). The forward pass composites
 * depth-sorted Gaussians front-to-back per pixel with early termination;
 * the backward pass replays each pixel back-to-front and produces analytic
 * gradients for every learnable parameter.
 *
 * Per the pre-rendering-frustum-culling design (§5.1), the rasterizer takes
 * an explicit in-frustum index set: it never touches Gaussians outside it.
 */

#ifndef CLM_RENDER_RASTERIZER_HPP
#define CLM_RENDER_RASTERIZER_HPP

#include <cstdint>
#include <vector>

#include "gaussian/model.hpp"
#include "render/camera.hpp"
#include "render/image.hpp"
#include "render/projection.hpp"

namespace clm {

/** Rasterization settings. */
struct RenderConfig
{
    int sh_degree = 3;              //!< Active SH degree.
    Vec3 background{0, 0, 0};       //!< Composited behind the splats.
    int tile_size = 16;             //!< Square tile edge in pixels.
    float alpha_min = 1.0f / 255.0f;    //!< Contribution threshold.
    float transmittance_min = 1e-4f;    //!< Early-termination threshold.
    /** Rasterize tiles across the global thread pool. Results are
     *  bitwise-identical to the serial path (tiles are independent and
     *  backward reductions run in a fixed order). */
    bool parallel = true;
};

/**
 * Forward-pass result plus the activation state the backward pass needs.
 * The memory footprint of this struct is what the paper calls "activation
 * memory": it scales with resolution and with |S_i|, not with N.
 */
struct RenderOutput
{
    Image image;

    /** Per-pixel transmittance remaining after compositing. */
    std::vector<float> final_t;

    /**
     * Per-pixel 1-based position (in the pixel's tile list) of the last
     * composited Gaussian; 0 when nothing contributed.
     */
    std::vector<uint32_t> n_contrib;

    /** Projected footprints of the in-frustum subset (invalid ones kept
     *  in place so tile lists can index by subset position). */
    std::vector<ProjectedGaussian> projected;

    /** Per-tile, depth-sorted indices into `projected`. */
    std::vector<std::vector<uint32_t>> tile_lists;

    int tiles_x = 0;
    int tiles_y = 0;

    /** Sum over tiles of list lengths (the paper's "num intersections"). */
    size_t totalTileIntersections() const;

    /** Approximate bytes held by this activation state. */
    size_t activationBytes() const;
};

/**
 * Render @p camera's view from the Gaussians listed in @p subset.
 *
 * @param subset In-frustum Gaussian indices (e.g. from frustumCull()).
 *        Indices outside the camera frustum are harmless (they project to
 *        invalid/zero-contribution footprints) but waste work.
 */
RenderOutput renderForward(const GaussianModel &model, const Camera &camera,
                           const std::vector<uint32_t> &subset,
                           const RenderConfig &config = {});

/**
 * Backward pass: given dL/d(image), accumulate parameter gradients into
 * @p out (sized for the full model; only rows in the rendered subset are
 * touched — the sparsity property the offload design relies on).
 */
void renderBackward(const GaussianModel &model, const Camera &camera,
                    const RenderConfig &config, const RenderOutput &fwd,
                    const Image &d_image, GaussianGrads &out);

} // namespace clm

#endif // CLM_RENDER_RASTERIZER_HPP
