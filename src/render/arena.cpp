#include "render/arena.hpp"

namespace clm {

void
TileStage::prepare(size_t n, bool for_backward)
{
    hot.resize(n);
    color.resize(n);
    if (for_backward)
        grads.assign(n, ProjectionGrads{});
}

void
TileStage::stageFrom(const std::vector<ProjectedGaussian> &projected,
                     const std::vector<uint32_t> &isect_vals,
                     TileRange range, const std::vector<float> &alpha_cut,
                     const std::vector<float> &row_k, bool for_backward)
{
    const size_t len = range.size();
    prepare(len, for_backward);
    for (size_t j = 0; j < len; ++j) {
        const uint32_t s = isect_vals[range.begin + j];
        const ProjectedGaussian &g = projected[s];
        StagedGaussian &e = hot[j];
        e.mean_x = g.mean2d.x;
        e.mean_y = g.mean2d.y;
        e.conic_a = g.conic_a;
        e.conic_b = g.conic_b;
        e.conic_c = g.conic_c;
        e.power_cut = alpha_cut[s];
        e.opacity = g.opacity;
        e.row_k = row_k[s];
        color[j] = g.color;
    }
}

size_t
TileStage::bytes() const
{
    return hot.capacity() * sizeof(StagedGaussian)
         + color.capacity() * sizeof(Vec3)
         + grads.capacity() * sizeof(ProjectionGrads);
}

size_t
RenderArena::footprintBytes() const
{
    size_t bytes = out.activationBytes() + binning.bytes()
                 + (alpha_cut.capacity() + row_k.capacity())
                       * sizeof(float);
    for (const TileStage &stage : stages)
        bytes += stage.bytes();
    bytes += grads.capacity() * sizeof(ProjectionGrads);
    for (const auto &partial : grad_partials)
        bytes += partial.capacity() * sizeof(ProjectionGrads);
    return bytes;
}

} // namespace clm
