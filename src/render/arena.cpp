#include "render/arena.hpp"

#include <limits>

namespace clm {

void
TileStage::prepare(size_t n, bool for_backward)
{
    hot.resize(n);
    color.resize(n);
    if (for_backward)
        grads.assign(n, ProjectionGrads{});
}

void
TileStage::stageFrom(const std::vector<ProjectedGaussian> &projected,
                     const std::vector<uint32_t> &isect_vals,
                     TileRange range, const std::vector<float> &alpha_cut,
                     const std::vector<float> &row_k, bool for_backward,
                     bool stage_soa)
{
    const size_t len = range.size();
    prepare(len, for_backward);
    for (size_t j = 0; j < len; ++j) {
        const uint32_t s = isect_vals[range.begin + j];
        const ProjectedGaussian &g = projected[s];
        StagedGaussian &e = hot[j];
        e.mean_x = g.mean2d.x;
        e.mean_y = g.mean2d.y;
        e.conic_a = g.conic_a;
        e.conic_b = g.conic_b;
        e.conic_c = g.conic_c;
        e.power_cut = alpha_cut[s];
        e.opacity = g.opacity;
        e.row_k = row_k[s];
        color[j] = g.color;
    }
    if (!stage_soa)
        return;
    const size_t padded = (len + 7) & ~size_t(7);
    soa_mean_x.resize(padded);
    soa_mean_y.resize(padded);
    soa_conic_a.resize(padded);
    soa_conic_b.resize(padded);
    soa_conic_c.resize(padded);
    soa_power_cut.resize(padded);
    soa_row_k.resize(padded);
    soa_opacity.resize(padded);
    soa_color_r.resize(padded);
    soa_color_g.resize(padded);
    soa_color_b.resize(padded);
    for (size_t j = 0; j < len; ++j) {
        const StagedGaussian &e = hot[j];
        soa_mean_x[j] = e.mean_x;
        soa_mean_y[j] = e.mean_y;
        soa_conic_a[j] = e.conic_a;
        soa_conic_b[j] = e.conic_b;
        soa_conic_c[j] = e.conic_c;
        soa_power_cut[j] = e.power_cut;
        soa_row_k[j] = e.row_k;
        soa_opacity[j] = e.opacity;
        soa_color_r[j] = color[j].x;
        soa_color_g[j] = color[j].y;
        soa_color_b[j] = color[j].z;
    }
    for (size_t j = len; j < padded; ++j) {
        soa_mean_x[j] = 0.0f;
        soa_mean_y[j] = 0.0f;
        soa_conic_a[j] = 0.0f;
        soa_conic_b[j] = 0.0f;
        soa_conic_c[j] = 0.0f;
        // +inf cut: padding lanes always fail `power >= power_cut`.
        soa_power_cut[j] = std::numeric_limits<float>::infinity();
        soa_row_k[j] = 0.0f;
        soa_opacity[j] = 0.0f;
        soa_color_r[j] = 0.0f;
        soa_color_g[j] = 0.0f;
        soa_color_b[j] = 0.0f;
    }
}

size_t
TileStage::bytes() const
{
    size_t soa = (soa_mean_x.capacity() + soa_mean_y.capacity()
                  + soa_conic_a.capacity() + soa_conic_b.capacity()
                  + soa_conic_c.capacity() + soa_power_cut.capacity()
                  + soa_row_k.capacity() + soa_opacity.capacity()
                  + soa_color_r.capacity() + soa_color_g.capacity()
                  + soa_color_b.capacity() + grad8.capacity())
               * sizeof(float);
    return hot.capacity() * sizeof(StagedGaussian)
         + color.capacity() * sizeof(Vec3)
         + grads.capacity() * sizeof(ProjectionGrads) + soa;
}

size_t
RenderArena::footprintBytes() const
{
    size_t bytes = out.activationBytes() + binning.bytes()
                 + (alpha_cut.capacity() + row_k.capacity())
                       * sizeof(float);
    for (const TileStage &stage : stages)
        bytes += stage.bytes();
    bytes += grads.capacity() * sizeof(ProjectionGrads);
    for (const auto &partial : grad_partials)
        bytes += partial.capacity() * sizeof(ProjectionGrads);
    return bytes;
}

} // namespace clm
