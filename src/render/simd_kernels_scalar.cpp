/**
 * @file
 * Scalar instance of the render kernel table — compiled into every
 * build (it is the dispatch fallback, and the only table of
 * -DCLM_DISABLE_SIMD=ON builds). Runs the same F8 op sequence as the
 * vector backends lane by lane, so its outputs are bitwise identical
 * to theirs.
 */

#include "render/simd_kernels.hpp"

#include "render/arena.hpp"
#include "render/binning.hpp"

#define CLM_F8_FORCE_SCALAR 1
#include "math/simd.hpp"

namespace clm {

namespace {
#include "render/simd_kernels_impl.inl"
} // namespace

const RenderKernels *
renderKernelsScalar()
{
    static const RenderKernels table{SimdBackend::kScalar, "scalar",
                                     &kernelCompositeTile,
                                     &kernelBackwardTile,
                                     &kernelCullPrefilter};
    return &table;
}

} // namespace clm
