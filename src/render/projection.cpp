#include "render/projection.hpp"

#include <algorithm>
#include <cmath>

#include "math/sh.hpp"

namespace clm {

namespace {

/** Guard band multiplier for the J-matrix frustum clamp (reference value). */
constexpr float kGuardBand = 1.3f;

/** Rows of T = J W used by the 2D covariance (J's third row is zero). */
struct CovT
{
    // t_row[r][k]: r in {0,1}, k in {0,1,2}
    float t0[3];
    float t1[3];
};

/** Build the 2x3 transform T = J W from camera-space position. */
CovT
buildCovT(const Camera &cam, float u, float v, float z)
{
    const Mat3 &w = cam.worldToCam();
    float fx = cam.fx(), fy = cam.fy();
    float iz = 1.0f / z;
    float iz2 = iz * iz;
    // J = [[fx/z, 0, -fx*u/z^2], [0, fy/z, -fy*v/z^2]]
    float j00 = fx * iz, j02 = -fx * u * iz2;
    float j11 = fy * iz, j12 = -fy * v * iz2;
    CovT t;
    for (int k = 0; k < 3; ++k) {
        t.t0[k] = j00 * w.m[0][k] + j02 * w.m[2][k];
        t.t1[k] = j11 * w.m[1][k] + j12 * w.m[2][k];
    }
    return t;
}

} // namespace

namespace {

/**
 * Shared projection body. When @p sigma_pre / @p opacity_pre are null the
 * covariance and world opacity are computed here, at the same program
 * points as before the batched path existed; both are pure functions of
 * the model row, so the precomputed variant is bitwise identical.
 */
ProjectedGaussian
projectGaussianImpl(const GaussianModel &model, size_t i,
                    const Camera &camera, int sh_degree,
                    const Mat3 *sigma_pre, const float *opacity_pre)
{
    ProjectedGaussian p;
    p.index = static_cast<uint32_t>(i);

    Vec3 t = camera.toCameraSpace(model.position(i));
    p.t = t;
    if (t.z < camera.zNear())
        return p;    // invalid: behind the near plane

    // Guard-band clamp for the Jacobian (reference 3DGS behaviour).
    float tan_half_y = std::tan(0.5f * 2.0f
                                * std::atan(0.5f * camera.height()
                                            / camera.fy()));
    // fy = 0.5*h/tan(fov/2) => tan(fov/2) = 0.5*h/fy; same for x.
    tan_half_y = 0.5f * camera.height() / camera.fy();
    float tan_half_x = 0.5f * camera.width() / camera.fx();
    float lim_x = kGuardBand * tan_half_x;
    float lim_y = kGuardBand * tan_half_y;
    float txz = t.x / t.z;
    float tyz = t.y / t.z;
    float ctxz = std::clamp(txz, -lim_x, lim_x);
    float ctyz = std::clamp(tyz, -lim_y, lim_y);
    p.clamped_u = ctxz != txz;
    p.clamped_v = ctyz != tyz;
    float u = ctxz * t.z;
    float v = ctyz * t.z;

    // 2D mean (uses the unclamped position).
    p.mean2d = {camera.fx() * t.x / t.z + camera.cx(),
                camera.fy() * t.y / t.z + camera.cy()};
    p.depth = t.z;

    // 2D covariance: cov = T Sigma T^T + blur I.
    Mat3 sigma = sigma_pre != nullptr ? *sigma_pre : model.covariance(i);
    CovT ct = buildCovT(camera, u, v, t.z);
    auto quad = [&](const float *a, const float *b) {
        float acc = 0.0f;
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                acc += a[r] * sigma.m[r][c] * b[c];
        return acc;
    };
    p.cov2d_a = quad(ct.t0, ct.t0) + kScreenBlur;
    p.cov2d_b = quad(ct.t0, ct.t1);
    p.cov2d_c = quad(ct.t1, ct.t1) + kScreenBlur;

    float det = p.cov2d_a * p.cov2d_c - p.cov2d_b * p.cov2d_b;
    if (det <= 0.0f)
        return p;    // invalid: degenerate footprint
    float inv_det = 1.0f / det;
    p.conic_a = p.cov2d_c * inv_det;
    p.conic_b = -p.cov2d_b * inv_det;
    p.conic_c = p.cov2d_a * inv_det;

    // 3-sigma extent from the largest eigenvalue.
    float mid = 0.5f * (p.cov2d_a + p.cov2d_c);
    float disc = std::sqrt(std::max(0.1f, mid * mid - det));
    float lambda_max = mid + disc;
    p.radius = std::ceil(3.0f * std::sqrt(lambda_max));

    // View-dependent color.
    Vec3 view = model.position(i) - camera.eye();
    Vec3 dir = view.normalized();
    const float *sh = model.sh(i);
    Vec3 color = shEvaluate(sh, dir, sh_degree);
    p.color = color;
    // The clamp in shEvaluate zeroes negative channels; recover the mask.
    {
        auto basis = shBasis(dir);
        int nb = shBasisCount(std::clamp(sh_degree, 0, 3));
        Vec3 raw{0.5f, 0.5f, 0.5f};
        for (int k = 0; k < nb; ++k) {
            raw.x += basis[k] * sh[k * 3 + 0];
            raw.y += basis[k] * sh[k * 3 + 1];
            raw.z += basis[k] * sh[k * 3 + 2];
        }
        p.color_valid = {raw.x > 0.0f, raw.y > 0.0f, raw.z > 0.0f};
    }

    p.opacity =
        opacity_pre != nullptr ? *opacity_pre : model.worldOpacity(i);
    p.valid = true;
    return p;
}

} // namespace

ProjectedGaussian
projectGaussian(const GaussianModel &model, size_t i, const Camera &camera,
                int sh_degree)
{
    return projectGaussianImpl(model, i, camera, sh_degree, nullptr,
                               nullptr);
}

ProjectedGaussian
projectGaussianPre(const GaussianModel &model, size_t i,
                   const Camera &camera, int sh_degree, const Mat3 &sigma,
                   float opacity)
{
    return projectGaussianImpl(model, i, camera, sh_degree, &sigma,
                               &opacity);
}

void
projectGaussianBackward(const GaussianModel &model, const Camera &camera,
                        int sh_degree, const ProjectedGaussian &proj,
                        const ProjectionGrads &grads, GaussianGrads &out)
{
    if (!proj.valid)
        return;
    size_t i = proj.index;
    const Vec3 &t = proj.t;
    float z = t.z;
    float iz = 1.0f / z;
    float iz2 = iz * iz;
    float fx = camera.fx(), fy = camera.fy();

    // --- conic -> cov2d: conic = cov^{-1}, dL/dcov = -C dL/dconic C with
    // symmetric matrices (C = conic).
    Mat2 conic;
    conic.m = {{{proj.conic_a, proj.conic_b},
                {proj.conic_b, proj.conic_c}}};
    Mat2 dconic;
    // The rasterizer reports the gradient of the scalar b (which appears
    // twice in the matrix); split it across the two symmetric slots.
    dconic.m = {{{grads.d_conic_a, 0.5f * grads.d_conic_b},
                 {0.5f * grads.d_conic_b, grads.d_conic_c}}};
    // dcov = -C * dconic * C
    auto mul2 = [](const Mat2 &a, const Mat2 &b) {
        Mat2 r;
        for (int x = 0; x < 2; ++x)
            for (int y = 0; y < 2; ++y)
                r.m[x][y] = a.m[x][0] * b.m[0][y] + a.m[x][1] * b.m[1][y];
        return r;
    };
    Mat2 dcov = mul2(mul2(conic, dconic), conic);
    dcov.m[0][0] = -dcov.m[0][0];
    dcov.m[0][1] = -dcov.m[0][1];
    dcov.m[1][0] = -dcov.m[1][0];
    dcov.m[1][1] = -dcov.m[1][1];

    // --- cov2d -> Sigma (3x3) and T (2x3): cov = T Sigma T^T.
    float u = proj.clamped_u
                  ? std::copysign(kGuardBand * 0.5f * camera.width()
                                      / camera.fx() * z, t.x)
                  : t.x;
    float v = proj.clamped_v
                  ? std::copysign(kGuardBand * 0.5f * camera.height()
                                      / camera.fy() * z, t.y)
                  : t.y;
    CovT ct = buildCovT(camera, u, v, z);
    Mat3 sigma = model.covariance(i);

    // dSigma = T^T dcov T  (T is 2x3).
    Mat3 dsigma;
    const float *trows[2] = {ct.t0, ct.t1};
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
            float acc = 0.0f;
            for (int a = 0; a < 2; ++a)
                for (int b = 0; b < 2; ++b)
                    acc += trows[a][r] * dcov.m[a][b] * trows[b][c];
            dsigma.m[r][c] = acc;
        }
    }

    // dT = 2 * dcov * T * Sigma  (dcov symmetric, Sigma symmetric).
    float dT[2][3] = {{0, 0, 0}, {0, 0, 0}};
    // first compute (T * Sigma): 2x3
    float tsig[2][3];
    for (int a = 0; a < 2; ++a)
        for (int c = 0; c < 3; ++c) {
            float acc = 0.0f;
            for (int k = 0; k < 3; ++k)
                acc += trows[a][k] * sigma.m[k][c];
            tsig[a][c] = acc;
        }
    for (int a = 0; a < 2; ++a)
        for (int c = 0; c < 3; ++c)
            dT[a][c] = 2.0f * (dcov.m[a][0] * tsig[0][c]
                               + dcov.m[a][1] * tsig[1][c]);

    // --- T = J W -> dJ = dT W^T.
    const Mat3 &w = camera.worldToCam();
    float dj00 = 0, dj02 = 0, dj11 = 0, dj12 = 0;
    for (int k = 0; k < 3; ++k) {
        dj00 += dT[0][k] * w.m[0][k];
        dj02 += dT[0][k] * w.m[2][k];
        dj11 += dT[1][k] * w.m[1][k];
        dj12 += dT[1][k] * w.m[2][k];
    }

    // --- J entries -> camera-space position t.
    // J00 = fx/z, J02 = -fx*u/z^2, J11 = fy/z, J12 = -fy*v/z^2.
    Vec3 dt{0, 0, 0};
    float du = -fx * iz2 * dj02;        // d/d u
    float dv = -fy * iz2 * dj12;        // d/d v
    dt.x += proj.clamped_u ? 0.0f : du;
    dt.y += proj.clamped_v ? 0.0f : dv;
    dt.z += -fx * iz2 * dj00 - fy * iz2 * dj11
          + 2.0f * fx * u * iz2 * iz * dj02
          + 2.0f * fy * v * iz2 * iz * dj12;
    // When clamped, u = +-lim * z so du/dz = +-lim adds to dz.
    if (proj.clamped_u)
        dt.z += (u * iz) * du;
    if (proj.clamped_v)
        dt.z += (v * iz) * dv;

    // --- mean2d -> t (projection uses the unclamped t).
    dt.x += fx * iz * grads.d_mean2d.x;
    dt.y += fy * iz * grads.d_mean2d.y;
    dt.z += -fx * t.x * iz2 * grads.d_mean2d.x
          - fy * t.y * iz2 * grads.d_mean2d.y;

    // --- t = W (p - eye) -> world position.
    Mat3 wt = w.transposed();
    Vec3 dpos = wt.mul(dt);

    // --- Sigma = M M^T with M = R S -> dM = 2 dSigma_sym M.
    Quat q = model.rotation(i);
    Quat qn = q.normalized();
    Mat3 r = qn.toRotationMatrix();
    Vec3 ws = model.worldScale(i);
    // dSigma is already symmetric by construction above.
    Mat3 m_rs;    // M = R * diag(ws)
    for (int a = 0; a < 3; ++a)
        for (int b = 0; b < 3; ++b)
            m_rs.m[a][b] = r.m[a][b] * ws[b];
    Mat3 dm;
    for (int a = 0; a < 3; ++a)
        for (int b = 0; b < 3; ++b) {
            float acc = 0.0f;
            for (int k = 0; k < 3; ++k)
                acc += (dsigma.m[a][k] + dsigma.m[k][a]) * m_rs.m[k][b];
            dm.m[a][b] = acc;
        }

    // dM -> dR (dR_ab = dM_ab * s_b) and ds_b = sum_a dM_ab R_ab.
    Vec3 dws{0, 0, 0};
    Mat3 dr;
    for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
            dr.m[a][b] = dm.m[a][b] * ws[b];
        }
    }
    dws.x = dm.m[0][0] * r.m[0][0] + dm.m[1][0] * r.m[1][0]
          + dm.m[2][0] * r.m[2][0];
    dws.y = dm.m[0][1] * r.m[0][1] + dm.m[1][1] * r.m[1][1]
          + dm.m[2][1] * r.m[2][1];
    dws.z = dm.m[0][2] * r.m[0][2] + dm.m[1][2] * r.m[1][2]
          + dm.m[2][2] * r.m[2][2];
    // world scale = exp(log scale): d log = ws * dws.
    Vec3 dls{ws.x * dws.x, ws.y * dws.y, ws.z * dws.z};

    // dR -> dq (normalized), using the analytic dR/dq tables.
    float qw = qn.w, qx = qn.x, qy = qn.y, qz = qn.z;
    auto contract = [&](const float drdq[3][3]) {
        float acc = 0.0f;
        for (int a = 0; a < 3; ++a)
            for (int b = 0; b < 3; ++b)
                acc += dr.m[a][b] * drdq[a][b];
        return acc;
    };
    const float drdw[3][3] = {{0, -2 * qz, 2 * qy},
                              {2 * qz, 0, -2 * qx},
                              {-2 * qy, 2 * qx, 0}};
    const float drdx[3][3] = {{0, 2 * qy, 2 * qz},
                              {2 * qy, -4 * qx, -2 * qw},
                              {2 * qz, 2 * qw, -4 * qx}};
    const float drdy[3][3] = {{-4 * qy, 2 * qx, 2 * qw},
                              {2 * qx, 0, 2 * qz},
                              {-2 * qw, 2 * qz, -4 * qy}};
    const float drdz[3][3] = {{-4 * qz, -2 * qw, 2 * qx},
                              {2 * qw, -4 * qz, 2 * qy},
                              {2 * qx, 2 * qy, 0}};
    Vec4 dqn{contract(drdw), contract(drdx), contract(drdy),
             contract(drdz)};

    // Through normalization: dq = (I - qn qn^T) / |q| * dqn.
    float qnorm = q.norm();
    if (qnorm <= 0.0f)
        qnorm = 1.0f;
    Vec4 qv{qn.w, qn.x, qn.y, qn.z};
    float dot = qv.dot(dqn);
    Vec4 dq{(dqn.x - qv.x * dot) / qnorm, (dqn.y - qv.y * dot) / qnorm,
            (dqn.z - qv.z * dot) / qnorm, (dqn.w - qv.w * dot) / qnorm};

    // --- Color -> SH coefficients and direction -> position.
    Vec3 view = model.position(i) - camera.eye();
    float vnorm = view.norm();
    Vec3 dir = vnorm > 0.0f ? view / vnorm : Vec3{0, 0, 1};
    shBackward(dir, sh_degree, grads.d_color, proj.color_valid,
               &out.d_sh[i * kShDim]);

    Vec3 masked{proj.color_valid[0] ? grads.d_color.x : 0.0f,
                proj.color_valid[1] ? grads.d_color.y : 0.0f,
                proj.color_valid[2] ? grads.d_color.z : 0.0f};
    if (vnorm > 0.0f) {
        auto bg = shBasisGrad(dir);
        int nb = shBasisCount(std::clamp(sh_degree, 0, 3));
        const float *sh = model.sh(i);
        Vec3 ddir{0, 0, 0};
        for (int k = 0; k < nb; ++k) {
            float coeff_dot = sh[k * 3 + 0] * masked.x
                            + sh[k * 3 + 1] * masked.y
                            + sh[k * 3 + 2] * masked.z;
            ddir += bg[k] * coeff_dot;
        }
        // dir = view/|view|: dview = (I - dir dir^T)/|view| * ddir.
        float dd = dir.dot(ddir);
        Vec3 dview = (ddir - dir * dd) / vnorm;
        dpos += dview;
    }

    // --- Opacity: world = sigmoid(raw).
    float op = proj.opacity;
    float draw = grads.d_opacity * op * (1.0f - op);

    // Accumulate.
    out.d_position[i] += dpos;
    out.d_log_scale[i] += dls;
    out.d_rotation[i].w += dq.x;
    out.d_rotation[i].x += dq.y;
    out.d_rotation[i].y += dq.z;
    out.d_rotation[i].z += dq.w;
    out.d_opacity[i] += draw;
}

} // namespace clm
