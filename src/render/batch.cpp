#include "render/batch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/ellipsoid.hpp"
#include "render/binning.hpp"
#include "render/culling.hpp"
#include "render/compositor.hpp"
#include "render/simd_kernels.hpp"
#include "render/projection.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace clm {

namespace {

/** Below this many items a parallel per-entry pass costs more than it
 *  saves (mirrors the binning-stage threshold). */
constexpr size_t kMinParallel = 512;

/** Run @p body over [0, n), through the pool when worthwhile (the
 *  shared poolForRange policy with this file's threshold). */
template <typename Body>
void
forRange(size_t n, bool parallel, const Body &body)
{
    poolForRange(n, parallel, kMinParallel, body);
}

/**
 * The packed plane sweep of one view: 8 Gaussians per op against the 6
 * frustum planes, no early exit but no branches either. Lanes that are
 * not *clearly* outside (per the kCullPrefilterEps margin) fall through
 * to the exact scalar predicate — the same Ellipsoid/Frustum member
 * functions frustumCull() runs, on the same values, so membership can
 * never differ from the per-view cull.
 */
void
cullViewPacked(const GaussianModel &model, const BatchCullScratch &st,
               const Camera &cam, std::vector<uint32_t> &sel)
{
    sel.clear();
    const Frustum &fr = cam.frustum();
    const RenderKernels &kern = renderKernels();
    CullPrefilterArgs args;
    for (int j = 0; j < 6; ++j) {
        const Plane &pl = fr.plane(j);
        args.plane_nx[j] = pl.n.x;
        args.plane_ny[j] = pl.n.y;
        args.plane_nz[j] = pl.n.z;
        args.plane_d[j] = pl.d;
        args.margin[j] = kCullPrefilterEps * std::fabs(pl.d);
    }
    const size_t n = model.size();
    const size_t padded = st.cx.size();
    // Per-view (and hence per-thread in pass 2) mask buffer on the
    // stack: the dispatched kernel sweeps one block, then the scalar
    // scan below confirms surviving lanes with the exact predicate.
    constexpr size_t kBlock = 1024;
    alignas(32) float rejected[kBlock];
    for (size_t b0 = 0; b0 < padded; b0 += kBlock) {
        const size_t blk =
            padded - b0 < kBlock ? padded - b0 : kBlock;
        args.cx = st.cx.data() + b0;
        args.cy = st.cy.data() + b0;
        args.cz = st.cz.data() + b0;
        args.neg_thresh = st.neg_thresh.data() + b0;
        args.padded = blk;
        args.rejected = rejected;
        kern.cull_prefilter(args);
        for (size_t k = 0; k < blk; ++k) {
            const size_t i = b0 + k;
            if (i >= n)
                break;
            if (rejected[k] != 0.0f)
                continue;    // clearly outside this view
            // Exact predicate — identical to frustumCull().
            Ellipsoid e = Ellipsoid::fromGaussian(
                model.position(i), model.worldScale(i),
                model.rotation(i));
            if (!fr.intersectsSphere(e.center, e.boundingRadius()))
                continue;
            if (e.intersectsFrustum(fr))
                sel.push_back(static_cast<uint32_t>(i));
        }
    }
}

} // namespace

size_t
BatchCullScratch::bytes() const
{
    return (cx.capacity() + cy.capacity() + cz.capacity()
            + neg_thresh.capacity())
         * sizeof(float);
}

void
frustumCullBatch(const GaussianModel &model,
                 const std::vector<Camera> &cameras,
                 BatchCullScratch &scratch,
                 std::vector<std::vector<uint32_t>> &subsets,
                 bool parallel, uint64_t cache_key)
{
    const size_t B = cameras.size();
    CLM_ASSERT(B >= 1, "empty camera batch");
    subsets.resize(B);

    const size_t n = model.size();
    // Snapshot-scoped cache: the SoA stage is a pure function of the
    // model, so when the caller vouches (by key) that the model is the
    // same published state as last time, pass 1 is skipped whole and
    // the sweep below reads the cached stage.
    const bool cached = cache_key != 0 && scratch.cached_key == cache_key
                     && scratch.cached_size == n;
    if (!cached) {
        // Pass 1 — shared per-Gaussian setup, paid once for the whole
        // batch: world scale (3 exp), bounding radius, packed
        // thresholds.
        const size_t padded = (n + 7) & ~size_t(7);
        scratch.cx.resize(padded);
        scratch.cy.resize(padded);
        scratch.cz.resize(padded);
        scratch.neg_thresh.resize(padded);
        forRange(n, parallel, [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                const float r = cullBoundingRadius(model, i);
                const Vec3 &p = model.position(i);
                float m = std::fabs(p.x);
                if (std::fabs(p.y) > m)
                    m = std::fabs(p.y);
                if (std::fabs(p.z) > m)
                    m = std::fabs(p.z);
                scratch.cx[i] = p.x;
                scratch.cy[i] = p.y;
                scratch.cz[i] = p.z;
                // NaN radii/centers poison the threshold, so their
                // lanes are never pre-rejected and the exact test
                // decides.
                scratch.neg_thresh[i] =
                    -r - kCullPrefilterEps * (3.0f * m);
            }
        });
        for (size_t i = n; i < padded; ++i) {
            scratch.cx[i] = scratch.cy[i] = scratch.cz[i] = 0.0f;
            // Padding lanes always read "clearly outside" so they can
            // never force the scalar path.
            scratch.neg_thresh[i] =
                std::numeric_limits<float>::infinity();
        }
        scratch.cached_key = cache_key;
        scratch.cached_size = n;
    }

    // Pass 2 — each view sweeps the shared stage. Views are
    // independent, so the parallel split cannot change results.
    if (parallel && B > 1) {
        ThreadPool::global().parallelFor(
            B, [&](size_t begin, size_t end) {
                for (size_t v = begin; v < end; ++v)
                    cullViewPacked(model, scratch, cameras[v],
                                   subsets[v]);
            });
    } else {
        for (size_t v = 0; v < B; ++v)
            cullViewPacked(model, scratch, cameras[v], subsets[v]);
    }
}

size_t
BatchRenderArena::footprintBytes() const
{
    size_t bytes = cull.bytes();
    for (const RenderArena &a : views)
        bytes += a.footprintBytes();
    bytes += union_indices.capacity() * sizeof(uint32_t);
    for (const auto &s : slots)
        bytes += s.capacity() * sizeof(uint32_t);
    bytes += sigma.capacity() * sizeof(Mat3);
    bytes += (opacity.capacity() + power_cut.capacity()) * sizeof(float);
    bytes += binning.bytes();
    bytes += fused_vals.capacity() * sizeof(uint32_t);
    for (const auto &g : grad8_scratch)
        bytes += g.capacity() * sizeof(float);
    bytes += (chain_offsets.capacity() + chain_fill.capacity())
           * sizeof(size_t);
    bytes += chain_pairs.capacity() * sizeof(uint64_t);
    return bytes;
}

void
renderForwardBatch(const GaussianModel &model,
                   const std::vector<Camera> &cameras,
                   const std::vector<std::vector<uint32_t>> &subsets,
                   const RenderConfig &cfg, BatchRenderArena &ba)
{
    const size_t B = cameras.size();
    CLM_ASSERT(B >= 1, "empty render batch");
    CLM_ASSERT(subsets.size() == B, "one subset per camera required");
    CLM_ASSERT(cfg.tile_size > 0, "bad tile size");
    if (ba.views.size() < B)
        ba.views.resize(B);

    StageClock stage_clock;

    // --- 1. Union of the batch's subsets (ascending k-way merge) plus
    // each entry's union slot, so the view-independent per-Gaussian
    // work below is computed once per distinct Gaussian, not once per
    // (view, Gaussian) pair.
    ba.union_indices.clear();
    ba.slots.resize(B);
    std::vector<size_t> cur(B, 0);
    size_t total = 0;
    for (size_t v = 0; v < B; ++v) {
        ba.slots[v].resize(subsets[v].size());
        total += subsets[v].size();
    }
    for (;;) {
        uint32_t next = std::numeric_limits<uint32_t>::max();
        bool any = false;
        for (size_t v = 0; v < B; ++v) {
            if (cur[v] < subsets[v].size()) {
                any = true;
                next = std::min(next, subsets[v][cur[v]]);
            }
        }
        if (!any)
            break;
        const uint32_t slot =
            static_cast<uint32_t>(ba.union_indices.size());
        ba.union_indices.push_back(next);
        for (size_t v = 0; v < B; ++v) {
            if (cur[v] < subsets[v].size()
                && subsets[v][cur[v]] == next) {
                ba.slots[v][cur[v]] = slot;
                ++cur[v];
                CLM_ASSERT(cur[v] >= subsets[v].size()
                               || subsets[v][cur[v]] > next,
                           "batch subsets must be ascending and unique");
            }
        }
    }

    // --- 2. Per-union-entry precompute: the view-independent share of
    // projection and of the compositing cuts. covariance() and
    // worldOpacity() are pure functions of the model row, so reusing
    // them across views is bitwise neutral.
    const size_t n_union = ba.union_indices.size();
    ba.sigma.resize(n_union);
    ba.opacity.resize(n_union);
    ba.power_cut.resize(n_union);
    forRange(n_union, cfg.parallel, [&](size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
            const size_t i = ba.union_indices[u];
            ba.sigma[u] = model.covariance(i);
            const float op = model.worldOpacity(i);
            ba.opacity[u] = op;
            ba.power_cut[u] =
                op > 0.0f ? alphaCutPower(op, cfg.alpha_min) : 0.0f;
        }
    });
    ba.stage_times.precompute_s = stage_clock.lap("render.precompute");

    // --- 3. Projection: one flat pass over every (view, entry) pair,
    // reading the precomputed covariance/opacity through the slot map.
    std::vector<TileGrid> grids(B);
    std::vector<size_t> prefix(B + 1, 0);
    for (size_t v = 0; v < B; ++v) {
        const Camera &cam = cameras[v];
        grids[v] =
            TileGrid::forImage(cam.width(), cam.height(), cfg.tile_size);
        prefix[v + 1] = prefix[v] + subsets[v].size();
        RenderOutput &out = ba.views[v].out;
        out.image.resetUnfilled(cam.width(), cam.height());
        out.final_t.resize(cam.pixels());
        out.n_contrib.resize(cam.pixels());
        out.tiles_x = grids[v].tiles_x;
        out.tiles_y = grids[v].tiles_y;
        out.projected.resize(subsets[v].size());
    }
    // View of flat pair index f; clamps to the last view so an empty
    // range probe (begin == total, e.g. every subset empty) stays in
    // bounds — the probing loop body then never runs.
    auto viewOf = [&](size_t f) {
        size_t v = 0;
        while (v + 1 < B && prefix[v + 1] <= f)
            ++v;
        return v;
    };
    forRange(total, cfg.parallel, [&](size_t begin, size_t end) {
        size_t v = viewOf(begin);
        for (size_t f = begin; f < end; ++f) {
            while (v + 1 < B && prefix[v + 1] <= f)
                ++v;
            const size_t s = f - prefix[v];
            ba.views[v].out.projected[s] = projectGaussianPre(
                model, subsets[v][s], cameras[v], cfg.sh_degree,
                ba.sigma[ba.slots[v][s]],
                ba.opacity[ba.slots[v][s]]);
        }
    });
    // Compositing cuts: gather the shared alpha-cut threshold, compute
    // the view-dependent row curvature — both through the same
    // expressions as computeAlphaCutPowers(), bit for bit.
    for (size_t v = 0; v < B; ++v) {
        RenderArena &av = ba.views[v];
        const size_t n_v = subsets[v].size();
        av.alpha_cut.resize(n_v);
        av.row_k.resize(n_v);
        for (size_t s = 0; s < n_v; ++s) {
            const ProjectedGaussian &p = av.out.projected[s];
            av.alpha_cut[s] =
                p.opacity > 0.0f ? ba.power_cut[ba.slots[v][s]] : 0.0f;
            av.row_k[s] = rowCurvature(p);
        }
        av.cuts_alpha_min = cfg.alpha_min;
    }
    ba.stage_times.project_s = stage_clock.lap("render.project");

    // --- 4. Fused binning: every view's intersections go into ONE flat
    // key buffer — keys are (view-offset tile id << 32 | depth bits),
    // values are view-LOCAL subset positions — sorted by one stable
    // radix sort. View ids occupy the most significant key bits, so
    // view v's slice of the sorted buffer is exactly the stable sort of
    // its own keys: identical to what buildTileIntersections would have
    // produced for that view alone.
    std::vector<size_t> tile_base(B + 1, 0);
    for (size_t v = 0; v < B; ++v)
        tile_base[v + 1] = tile_base[v] + grids[v].tileCount();
    const size_t total_tiles = tile_base[B];
    CLM_ASSERT(total_tiles <= std::numeric_limits<uint32_t>::max(),
               "batch tile count overflows the 32-bit key field");

    BinningScratch &bs = ba.binning;
    bs.spans.resize(total);
    bs.offsets.assign(total + 1, 0);
    forRange(total, cfg.parallel, [&](size_t begin, size_t end) {
        size_t v = viewOf(begin);
        for (size_t f = begin; f < end; ++f) {
            while (v + 1 < B && prefix[v + 1] <= f)
                ++v;
            const size_t s = f - prefix[v];
            const ProjectedGaussian &p = ba.views[v].out.projected[s];
            TileSpan span = computeTileSpan(p, grids[v], cfg.alpha_min,
                                            cfg.exact_tile_bounds);
            bs.spans[f] = span;
            uint32_t touched = 0;
            for (int ty = span.y0; ty <= span.y1; ++ty)
                for (int tx = span.x0; tx <= span.x1; ++tx)
                    if (tileOverlaps(p, span, tx, ty, grids[v]))
                        ++touched;
            bs.offsets[f + 1] = touched;
        }
    });
    for (size_t f = 0; f < total; ++f)
        bs.offsets[f + 1] += bs.offsets[f];
    const size_t total_isect = bs.offsets[total];
    CLM_ASSERT(total_isect <= std::numeric_limits<uint32_t>::max(),
               "batch intersection count overflows 32-bit ranges");

    bs.keys.resize(total_isect);
    ba.fused_vals.resize(total_isect);
    forRange(total, cfg.parallel, [&](size_t begin, size_t end) {
        size_t v = viewOf(begin);
        for (size_t f = begin; f < end; ++f) {
            while (v + 1 < B && prefix[v + 1] <= f)
                ++v;
            const TileSpan &span = bs.spans[f];
            if (span.empty())
                continue;
            const size_t s = f - prefix[v];
            const ProjectedGaussian &p = ba.views[v].out.projected[s];
            const uint64_t depth = depthBits(p.depth);
            size_t o = bs.offsets[f];
            for (int ty = span.y0; ty <= span.y1; ++ty)
                for (int tx = span.x0; tx <= span.x1; ++tx) {
                    if (!tileOverlaps(p, span, tx, ty, grids[v]))
                        continue;
                    const uint64_t tile =
                        tile_base[v]
                        + static_cast<uint64_t>(ty) * grids[v].tiles_x
                        + tx;
                    bs.keys[o] = (tile << 32) | depth;
                    ba.fused_vals[o] = static_cast<uint32_t>(s);
                    ++o;
                }
        }
    });

    const int key_bits =
        32
        + bitWidth(total_tiles > 0
                       ? static_cast<uint32_t>(total_tiles - 1)
                       : 0u);
    radixSortPairs(bs.keys, ba.fused_vals, bs.keys_tmp, bs.vals_tmp,
                   key_bits, cfg.parallel, &bs.hist);

    // Carve per-view tile ranges out of the one sorted buffer; each
    // view's slice is copied into its own RenderOutput so the per-view
    // activation state matches sequential renderForward exactly.
    size_t e = 0;
    for (size_t v = 0; v < B; ++v) {
        RenderOutput &out = ba.views[v].out;
        const size_t n_tiles = grids[v].tileCount();
        out.tile_ranges.resize(n_tiles);
        const size_t slice_begin = e;
        for (size_t t = 0; t < n_tiles; ++t) {
            TileRange r;
            r.begin = static_cast<uint32_t>(e - slice_begin);
            const uint64_t vtile = tile_base[v] + t;
            while (e < total_isect && (bs.keys[e] >> 32) == vtile)
                ++e;
            r.end = static_cast<uint32_t>(e - slice_begin);
            out.tile_ranges[t] = r;
        }
        out.isect_vals.assign(ba.fused_vals.begin() + slice_begin,
                              ba.fused_vals.begin() + e);
    }
    CLM_ASSERT(e == total_isect,
               "unclaimed intersections past the batch tile grid");
    ba.stage_times.bin_s = stage_clock.lap("render.bin");

    // --- 5. Composite. All views' tiles form one task list, so a
    // thread pool parallelizes across views as well as tiles
    // (cross-view parallelism); tiles touch disjoint pixels and the
    // kernels are the same as renderForward's, so results do not
    // depend on the split.
    struct ChunkTask
    {
        uint32_t view;
        uint32_t stage;    //!< Index into that view's arena stages.
        uint32_t t0, t1;
    };
    size_t chunk_target = total_tiles;
    if (cfg.parallel && total_tiles > 1) {
        const size_t want =
            static_cast<size_t>(ThreadPool::global().threads()) * 2;
        chunk_target =
            std::max<size_t>(1, (total_tiles + want - 1) / want);
    }
    // Retained-staging mode (training): one stage slot per TILE, with
    // the SoA mirrors the SIMD backward replay reads, so
    // renderBackwardBatch replays from the forward's staging instead of
    // re-staging every tile. Staging is pure data movement — the
    // composited pixels cannot change.
    if (ba.retain_staging)
        chunk_target = 1;
    std::vector<ChunkTask> tasks;
    for (size_t v = 0; v < B; ++v) {
        const size_t n_tiles = grids[v].tileCount();
        const size_t n_chunks =
            n_tiles == 0 ? 0
                         : (n_tiles + chunk_target - 1) / chunk_target;
        if (ba.views[v].stages.size() < n_chunks)
            ba.views[v].stages.resize(n_chunks);
        for (size_t c = 0; c < n_chunks; ++c) {
            const size_t t0 = c * chunk_target;
            const size_t t1 = std::min(t0 + chunk_target, n_tiles);
            tasks.push_back({static_cast<uint32_t>(v),
                             static_cast<uint32_t>(c),
                             static_cast<uint32_t>(t0),
                             static_cast<uint32_t>(t1)});
        }
    }
    auto run_task = [&](const ChunkTask &task) {
        RenderArena &av = ba.views[task.view];
        detail::compositeTileRange(cfg, grids[task.view], av.alpha_cut,
                                   av.row_k, av.stages[task.stage],
                                   task.t0, task.t1, av.out,
                                   /*stage_soa=*/ba.retain_staging);
    };
    if (cfg.parallel && tasks.size() > 1) {
        ThreadPool::global().parallelFor(
            tasks.size(), [&](size_t begin, size_t end) {
                for (size_t t = begin; t < end; ++t)
                    run_task(tasks[t]);
            });
    } else {
        for (const ChunkTask &task : tasks)
            run_task(task);
    }
    ba.stage_times.composite_s = stage_clock.lap("render.composite");
}

} // namespace clm
