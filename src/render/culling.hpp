/**
 * @file
 * Pre-rendering frustum culling (§5.1): computes the in-frustum index set
 * S_i for a view *before* rasterization, so downstream kernels only process
 * |S_i| Gaussians and the offload engine knows exactly which parameter rows
 * a microbatch needs. Only selection-critical attributes (position, scale,
 * rotation) are read — the property that makes attribute-wise offload
 * possible (§4.1).
 */

#ifndef CLM_RENDER_CULLING_HPP
#define CLM_RENDER_CULLING_HPP

#include <cstdint>
#include <vector>

#include "gaussian/model.hpp"
#include "math/ellipsoid.hpp"
#include "render/camera.hpp"

namespace clm {

/**
 * The kCullSigma bounding-sphere radius of Gaussian @p i — the largest
 * semi-axis of the cull ellipsoid, i.e. exactly
 * Ellipsoid::fromGaussian(...).boundingRadius(). ONE definition shared
 * by the batched cull stage (render/batch.cpp) and the shard
 * partitioner's AABBs (shard/partitioner.cpp), both of whose
 * conservatism arguments require "at least the radius frustumCull
 * tests" — keeping the expression in one place keeps those proofs
 * attached to the code they depend on.
 */
inline float
cullBoundingRadius(const GaussianModel &model, size_t i)
{
    const Vec3 scale = model.worldScale(i);
    float r = kCullSigma * scale.x;
    if (kCullSigma * scale.y > r)
        r = kCullSigma * scale.y;
    if (kCullSigma * scale.z > r)
        r = kCullSigma * scale.z;
    return r;
}

/**
 * Compute the in-frustum Gaussian index set S for @p camera.
 *
 * A Gaussian is selected when its 3-sigma ellipsoid intersects the view
 * frustum (§4.1). Indices are returned in ascending order.
 */
std::vector<uint32_t> frustumCull(const GaussianModel &model,
                                  const Camera &camera);

/** Out-parameter overload for hot loops: clears @p selected and fills
 *  it with exactly the value-returning overload's result, reusing the
 *  caller's buffer capacity (the sharded serving path culls K compact
 *  models per request). */
void frustumCull(const GaussianModel &model, const Camera &camera,
                 std::vector<uint32_t> &selected);

/**
 * Same selection rule evaluated from packed critical-attribute records
 * (10 floats per Gaussian: position, log-scale, rotation) — the exact data
 * the GPU-resident critical store holds.
 *
 * @param critical Pointer to @p count records of kCriticalDim floats.
 */
std::vector<uint32_t> frustumCullPacked(const float *critical, size_t count,
                                        const Camera &camera);

/**
 * Per-view sparsity rho_i = |S_i| / N (§3). Returns 0 for an empty model.
 */
double sparsity(size_t in_frustum, size_t total);

} // namespace clm

#endif // CLM_RENDER_CULLING_HPP
