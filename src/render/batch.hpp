/**
 * @file
 * Fused multi-view batch rendering — the serving-side pipeline pass the
 * ROADMAP calls multi-view batching. A batch of B views is culled,
 * projected and binned through ONE pass each instead of view-at-a-time:
 *
 *  - frustumCullBatch(): one sweep over the model builds a shared SoA
 *    cull stage (world-space bounding spheres — the per-Gaussian setup
 *    every view would otherwise redo, including the 3 exp() of the
 *    world scale), then each view runs an 8-wide packed plane prefilter
 *    over it; only near-boundary survivors run the exact per-view
 *    ellipsoid test. Membership is bitwise identical to frustumCull()
 *    per view: the prefilter only rejects Gaussians that provably fail
 *    the exact sphere test, under an explicit error margin
 *    (kCullPrefilterEps) that covers the float-evaluation differences
 *    between the packed and scalar plane distances.
 *
 *  - renderForwardBatch(): the union of the batch's subsets is formed
 *    once, the view-independent per-Gaussian work (3D covariance, world
 *    opacity, alpha-cut power threshold) is precomputed once per union
 *    entry and reused by every view's projection, and all views'
 *    tile intersections are expanded into ONE flat key buffer — keys
 *    carry (view-offset tile id, depth) — sorted by a single stable
 *    radix sort, with per-view tile ranges carved out of the one sorted
 *    buffer. Compositing runs the same per-tile kernels as
 *    renderForward over each view's carved ranges, so every view's
 *    RenderOutput (image, final_t, n_contrib, intersections, ranges) is
 *    bitwise identical to a sequential renderForward call with the same
 *    subset — asserted by tests/test_serve.cpp in both the SIMD and
 *    -DCLM_DISABLE_SIMD=ON flavors.
 *
 * The fused pass is what makes batched serving (serve/render_service)
 * faster than view-at-a-time serving on one core: the shared
 * per-Gaussian work is paid once per batch instead of once per view.
 * With a thread pool it additionally exposes cross-view parallelism
 * (all views' tiles form one task list).
 */

#ifndef CLM_RENDER_BATCH_HPP
#define CLM_RENDER_BATCH_HPP

#include <cstdint>
#include <vector>

#include "gaussian/model.hpp"
#include "math/mat.hpp"
#include "render/arena.hpp"
#include "render/camera.hpp"
#include "render/rasterizer.hpp"

namespace clm {

/**
 * Relative error budget of the packed cull prefilter: a view may
 * pre-reject a Gaussian only when its packed plane distance clears the
 * sphere test by more than kCullPrefilterEps times the distance's term
 * magnitudes (|n_k p_k| <= |p|_inf per component, plus |d|). The true
 * float-evaluation difference between the packed and scalar distances
 * is a few ulp (~1e-7 relative, FMA contraction included), so 1e-4
 * over-covers it by ~1000x; anything closer to the boundary falls
 * through to the exact scalar test. Same error-budget idiom as the
 * binning cuts (render/binning.hpp).
 */
constexpr float kCullPrefilterEps = 1e-4f;

/** Reusable scratch of frustumCullBatch: the shared SoA cull stage
 *  (padded to a multiple of 8 for the packed sweep). The stage is a
 *  pure function of the model parameters, so it can be cached across
 *  batches keyed by the snapshot version being served (the first rung
 *  of the ROADMAP's snapshot-scoped serving caches). */
struct BatchCullScratch
{
    std::vector<float> cx, cy, cz;    //!< Bounding-sphere centers.
    /** Packed reject threshold: -radius - eps * 3|p|_inf (padding lanes
     *  hold +inf, so they always read as "clearly outside"). */
    std::vector<float> neg_thresh;

    /** @name Snapshot-scoped cache tag
     * Non-zero cached_key means the SoA stage above was built from a
     * model tagged with that key (a ModelSnapshot version) of
     * cached_size Gaussians; frustumCullBatch skips the rebuild when a
     * caller passes the same key again. 0 = untagged (always rebuild).
     */
    /// @{
    uint64_t cached_key = 0;
    size_t cached_size = 0;
    /// @}

    /** Bytes currently held (for memory accounting). */
    size_t bytes() const;
};

/**
 * Cull @p model against every camera of the batch in one fused pass.
 * @p subsets[v] receives exactly frustumCull(model, cameras[v]) — same
 * membership, same (ascending) order, in every build flavor.
 * Deterministic under any parallel split.
 *
 * @param cache_key Non-zero tags the shared SoA stage with this key
 *        (callers pass the ModelSnapshot version they render): when
 *        @p scratch already holds the stage for the same key and model
 *        size, the per-Gaussian rebuild — including the 3 worldScale
 *        exp() per row — is skipped entirely, amortizing it across all
 *        batches served from one snapshot. The stage is a pure function
 *        of the model, so the cache is bitwise neutral; callers must
 *        pass distinct keys for distinct models (snapshot versions do).
 *        0 (the default) rebuilds unconditionally and untags.
 */
void frustumCullBatch(const GaussianModel &model,
                      const std::vector<Camera> &cameras,
                      BatchCullScratch &scratch,
                      std::vector<std::vector<uint32_t>> &subsets,
                      bool parallel = true, uint64_t cache_key = 0);

/** Wall-clock stage breakdown of the last renderForwardBatch(). */
struct BatchStageTimes
{
    double precompute_s = 0;    //!< Union merge + per-entry precompute.
    double project_s = 0;       //!< All views' projections.
    double bin_s = 0;           //!< Fused binning + one sort + carve.
    double composite_s = 0;     //!< All views' tile compositing.
};

/**
 * Scratch + outputs of the fused batch pipeline. Holds one RenderArena
 * per view (view v's output lands in views[v].out, exactly as if
 * renderForward had rendered into that arena) plus the fused-pass
 * scratch. Not thread-safe: one BatchRenderArena per concurrently
 * serving worker.
 */
class BatchRenderArena
{
  public:
    /** Per-view arenas; resized on demand by renderForwardBatch. */
    std::vector<RenderArena> views;

    /**
     * Retained-staging mode (set BEFORE renderForwardBatch; training
     * callers enable it, serving callers leave it off): the forward
     * composite uses one stage slot per TILE instead of per worker
     * chunk and also fills the SoA mirrors SIMD backward replay reads,
     * so renderBackwardBatch can replay every tile from the forward's
     * staging instead of re-staging it — each tile is staged ONCE per
     * training step instead of twice. Pure data movement either way:
     * forward pixels and backward gradients are bitwise unchanged.
     * Costs memory proportional to the batch's total intersections.
     */
    bool retain_staging = false;

    /** @name Fused-pass scratch (contents are garbage between calls) */
    /// @{
    BatchCullScratch cull;
    std::vector<uint32_t> union_indices;    //!< Ascending union of subsets.
    /** Per view: union slot of each subset entry. */
    std::vector<std::vector<uint32_t>> slots;
    std::vector<Mat3> sigma;          //!< Per-union-entry 3D covariance.
    std::vector<float> opacity;       //!< Per-union-entry world opacity.
    std::vector<float> power_cut;     //!< Per-union-entry alpha cut.
    BinningScratch binning;           //!< Fused key/offset scratch.
    std::vector<uint32_t> fused_vals; //!< One sorted buffer, all views.
    /// @}

    /** @name Fused-backward scratch (renderBackwardBatch) */
    /// @{
    /** Per (view, chunk) replay task: its private 8-lane gradient
     *  partial buffer, kept all-zero between tiles (the flush re-zeroes
     *  the block it reads while it is cache-hot), so the per-tile cold
     *  memset of the sequential backward disappears. */
    std::vector<std::vector<float>> grad8_scratch;
    /** Union-entry CSR over the batch: chain_offsets[u] ..
     *  chain_offsets[u+1] index chain_pairs, each (view << 32 | subset
     *  position), views ascending — the per-model-row accumulation
     *  order of the sequential per-view chain. */
    std::vector<size_t> chain_offsets;
    std::vector<size_t> chain_fill;
    std::vector<uint64_t> chain_pairs;
    /// @}

    /** Stage breakdown of the last renderForwardBatch() call. */
    BatchStageTimes stage_times;

    /** Approximate bytes held (all per-view arenas + fused scratch). */
    size_t footprintBytes() const;
};

/**
 * Render every view of the batch through the fused pipeline (see file
 * comment). @p subsets[v] lists view v's in-frustum Gaussians and must
 * be ascending and duplicate-free (the frustumCull contract). Results
 * land in @p arena.views[v].out and are bitwise identical to
 * renderForward(model, cameras[v], subsets[v], config).
 */
void renderForwardBatch(const GaussianModel &model,
                        const std::vector<Camera> &cameras,
                        const std::vector<std::vector<uint32_t>> &subsets,
                        const RenderConfig &config,
                        BatchRenderArena &arena);

/**
 * Fused multi-view backward: back-propagate every view of the batch
 * last rendered by renderForwardBatch() into @p arena (the forward
 * activation, union map and per-view cut arrays it left behind are the
 * replay inputs — call this with the SAME model, cameras and config,
 * before the next forward into the arena). Gradients accumulate into
 * @p out exactly as the sequential per-view loop
 *
 *     for v: renderBackward(model, cameras[v], config,
 *                           arena.views[v].out, d_images[v], out)
 *
 * would produce them, bit for bit, under any dispatch backend and any
 * parallel split:
 *
 *  - Each view's tiles replay in the sequential pass's fixed chunk
 *    partition through the same kernels, with per-view per-chunk
 *    gradient partials reduced in the same fixed chunk order and the
 *    same fixed-lane-order SIMD reduction.
 *  - The projection chain then runs once per batch over the union of
 *    the views' subsets: distinct union entries touch distinct model
 *    rows (parallel-safe), and within a union entry the per-view
 *    contributions accumulate in ascending view order — the exact
 *    accumulation order of the sequential loop.
 *
 * What makes it faster than the sequential loop on one core: with
 * retain_staging the per-tile staging already happened in the forward
 * (staged once per step, not twice), and the 8-lane partial buffers
 * stay zero between tiles so the sequential pass's per-tile cold
 * memset is gone. With a thread pool it additionally schedules all
 * (view, chunk) replay tasks as one list (cross-view parallelism, one
 * barrier instead of one per view).
 */
void renderBackwardBatch(const GaussianModel &model,
                         const std::vector<Camera> &cameras,
                         const RenderConfig &config,
                         const std::vector<Image> &d_images,
                         GaussianGrads &out, BatchRenderArena &arena);

} // namespace clm

#endif // CLM_RENDER_BATCH_HPP
