/**
 * @file
 * SSE2 instance of the render kernel table. SSE2 is the x86-64
 * baseline, so no target pragma is needed — the TU simply forces the
 * SSE2 F8 backend. Absent (nullptr) on non-x86 targets and in
 * -DCLM_DISABLE_SIMD=ON builds.
 */

#include "render/simd_kernels.hpp"

#if !defined(CLM_DISABLE_SIMD) \
    && (defined(__x86_64__) || (defined(__i386__) && defined(__SSE2__)))

#include "render/arena.hpp"
#include "render/binning.hpp"

#define CLM_F8_FORCE_SSE2 1
#include "math/simd.hpp"

namespace clm {

namespace {
#include "render/simd_kernels_impl.inl"
} // namespace

const RenderKernels *
renderKernelsSse2()
{
    static const RenderKernels table{SimdBackend::kSse2, "sse2",
                                     &kernelCompositeTile,
                                     &kernelBackwardTile,
                                     &kernelCullPrefilter};
    return &table;
}

} // namespace clm

#else

namespace clm {

const RenderKernels *
renderKernelsSse2()
{
    return nullptr;
}

} // namespace clm

#endif
