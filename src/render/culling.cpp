#include "render/culling.hpp"

#include "math/ellipsoid.hpp"

namespace clm {

std::vector<uint32_t>
frustumCull(const GaussianModel &model, const Camera &camera)
{
    std::vector<uint32_t> selected;
    frustumCull(model, camera, selected);
    return selected;
}

void
frustumCull(const GaussianModel &model, const Camera &camera,
            std::vector<uint32_t> &selected)
{
    selected.clear();
    const Frustum &fr = camera.frustum();
    for (size_t i = 0; i < model.size(); ++i) {
        Ellipsoid e = Ellipsoid::fromGaussian(
            model.position(i), model.worldScale(i), model.rotation(i));
        // Cheap bounding-sphere accept/reject first, exact support test
        // only near the boundary.
        if (!fr.intersectsSphere(e.center, e.boundingRadius()))
            continue;
        if (e.intersectsFrustum(fr))
            selected.push_back(static_cast<uint32_t>(i));
    }
}

std::vector<uint32_t>
frustumCullPacked(const float *critical, size_t count, const Camera &camera)
{
    std::vector<uint32_t> selected;
    const Frustum &fr = camera.frustum();
    for (size_t i = 0; i < count; ++i) {
        const float *rec = critical + i * kCriticalDim;
        Vec3 pos{rec[0], rec[1], rec[2]};
        Vec3 scale{std::exp(rec[3]), std::exp(rec[4]), std::exp(rec[5])};
        Quat rot{rec[6], rec[7], rec[8], rec[9]};
        Ellipsoid e = Ellipsoid::fromGaussian(pos, scale, rot);
        if (!fr.intersectsSphere(e.center, e.boundingRadius()))
            continue;
        if (e.intersectsFrustum(fr))
            selected.push_back(static_cast<uint32_t>(i));
    }
    return selected;
}

double
sparsity(size_t in_frustum, size_t total)
{
    return total == 0 ? 0.0
                      : static_cast<double>(in_frustum) / total;
}

} // namespace clm
