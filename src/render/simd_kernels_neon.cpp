/**
 * @file
 * NEON instance of the render kernel table (AArch64, where NEON is
 * baseline — no target pragma needed). Absent (nullptr) elsewhere and
 * in -DCLM_DISABLE_SIMD=ON builds.
 */

#include "render/simd_kernels.hpp"

#if !defined(CLM_DISABLE_SIMD) && defined(__aarch64__) \
    && defined(__ARM_NEON)

#include "render/arena.hpp"
#include "render/binning.hpp"

#define CLM_F8_FORCE_NEON 1
#include "math/simd.hpp"

namespace clm {

namespace {
#include "render/simd_kernels_impl.inl"
} // namespace

const RenderKernels *
renderKernelsNeon()
{
    static const RenderKernels table{SimdBackend::kNeon, "neon",
                                     &kernelCompositeTile,
                                     &kernelBackwardTile,
                                     &kernelCullPrefilter};
    return &table;
}

} // namespace clm

#else

namespace clm {

const RenderKernels *
renderKernelsNeon()
{
    return nullptr;
}

} // namespace clm

#endif
