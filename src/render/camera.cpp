#include "render/camera.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace clm {

Camera::Camera(const Vec3 &eye, const Mat3 &world_to_cam, int width,
               int height, float fov_y_rad, float z_near, float z_far)
    : eye_(eye), world_to_cam_(world_to_cam), width_(width), height_(height),
      fov_y_(fov_y_rad), z_near_(z_near), z_far_(z_far)
{
    CLM_ASSERT(width > 0 && height > 0, "bad image size");
    CLM_ASSERT(fov_y_rad > 0.0f && fov_y_rad < 3.14f, "bad fov");
    float tan_half = std::tan(0.5f * fov_y_);
    fy_ = 0.5f * height_ / tan_half;
    fx_ = fy_;    // square pixels
    cx_ = 0.5f * width_;
    cy_ = 0.5f * height_;
    frustum_ =
        Frustum::fromViewProjection(projectionMatrix().mul(viewMatrix()));
}

Camera
Camera::lookAt(const Vec3 &eye, const Vec3 &target, const Vec3 &up,
               int width, int height, float fov_y_rad, float z_near,
               float z_far)
{
    Vec3 fwd = (target - eye).normalized();
    Vec3 right = fwd.cross(up).normalized();
    Vec3 down = fwd.cross(right);    // y points down in camera space
    Mat3 r;
    r.m[0] = {right.x, right.y, right.z};
    r.m[1] = {down.x, down.y, down.z};
    r.m[2] = {fwd.x, fwd.y, fwd.z};
    return Camera(eye, r, width, height, fov_y_rad, z_near, z_far);
}

Vec3
Camera::toCameraSpace(const Vec3 &p_world) const
{
    return world_to_cam_.mul(p_world - eye_);
}

Mat4
Camera::viewMatrix() const
{
    Mat4 v = Mat4::identity();
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            v.m[i][j] = world_to_cam_.m[i][j];
    Vec3 t = world_to_cam_.mul(eye_) * -1.0f;
    v.m[0][3] = t.x;
    v.m[1][3] = t.y;
    v.m[2][3] = t.z;
    return v;
}

Mat4
Camera::projectionMatrix() const
{
    float tan_half_y = std::tan(0.5f * fov_y_);
    float tan_half_x = tan_half_y * width_ / height_;
    Mat4 p;
    p.m[0][0] = 1.0f / tan_half_x;
    p.m[1][1] = 1.0f / tan_half_y;
    p.m[2][2] = (z_far_ + z_near_) / (z_far_ - z_near_);
    p.m[2][3] = -2.0f * z_far_ * z_near_ / (z_far_ - z_near_);
    p.m[3][2] = 1.0f;
    return p;
}

} // namespace clm
