#include "render/simd_kernels.hpp"

#include "math/simd_backend.hpp"

namespace clm {

const RenderKernels *
renderKernelsFor(SimdBackend backend)
{
    switch (backend) {
    case SimdBackend::kScalar:
        return renderKernelsScalar();
    case SimdBackend::kSse2:
        return renderKernelsSse2();
    case SimdBackend::kNeon:
        return renderKernelsNeon();
    case SimdBackend::kAvx2:
        // Table may be compiled in but unsafe on this CPU: gate on the
        // same support check the dispatch uses.
        return simdBackendSupported(SimdBackend::kAvx2)
                   ? renderKernelsAvx2()
                   : nullptr;
    }
    return nullptr;
}

const RenderKernels &
renderKernels()
{
    static const RenderKernels *const chosen = [] {
        if (const RenderKernels *k =
                renderKernelsFor(simdDispatchBackend()))
            return k;
        return renderKernelsScalar();    // compiled into every build
    }();
    return *chosen;
}

} // namespace clm
