/**
 * @file
 * Flat key-sorted tile binning for the rasterizer — the CPU analogue of the
 * gsplat intersection pipeline. Instead of one heap-allocated vector per
 * touched tile, footprints are expanded into a single flat buffer of
 * 64-bit `(tile_id << 32 | depth_bits)` keys by a count → exclusive-scan →
 * fill pass, sorted once with a stable parallel radix sort, and exposed as
 * contiguous per-tile ranges. The output is the unique stable sort of the
 * intersections, so it is bitwise-identical whether built serially or in
 * parallel, with depth ties broken by subset position.
 *
 * Also hosts the exact circle-vs-tile-rect overlap test: the classic
 * square bound bins corner tiles the footprint never reaches. A tile can
 * be dropped *provably without changing the rendered image* when every
 * pixel-center in it is farther from the footprint center than the radius
 * at which `opacity * exp(-0.5 * d^T conic d)` falls below the
 * rasterizer's alpha_min cut (using d^T conic d >= lambda_min(conic) *
 * |d|^2, under-estimated with an error budget; see footprintCutRadius2)
 * — those pixels would be skipped by the per-pixel alpha test anyway.
 */

#ifndef CLM_RENDER_BINNING_HPP
#define CLM_RENDER_BINNING_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "render/projection.hpp"

namespace clm {

/** Width in bits of @p v (index of the highest set bit, plus one; 0
 *  for 0) — sizes the tile field of the radixSortPairs key so sort
 *  passes over known-zero bits are skipped. Shared by the single-view
 *  and batched binning paths, which must stay in sync on key layout. */
inline int
bitWidth(uint32_t v)
{
    int bits = 0;
    while (v != 0) {
        ++bits;
        v >>= 1;
    }
    return bits;
}

/** floor(@p v) clamped into [@p lo, @p hi] — the clamp happens in float
 *  space, so out-of-int-range (or NaN) inputs never hit the undefined
 *  float-to-int cast. NaN clamps to @p lo. */
inline int
clampedFloor(float v, int lo, int hi)
{
    float f = std::floor(v);
    if (!(f > static_cast<float>(lo)))
        return lo;
    if (f >= static_cast<float>(hi))
        return hi;
    return static_cast<int>(f);
}

/** ceil(@p v) clamped into [@p lo, @p hi]; NaN clamps to @p lo. */
inline int
clampedCeil(float v, int lo, int hi)
{
    float c = std::ceil(v);
    if (!(c > static_cast<float>(lo)))
        return lo;
    if (c >= static_cast<float>(hi))
        return hi;
    return static_cast<int>(c);
}

/** Tile decomposition of a render target. */
struct TileGrid
{
    int tiles_x = 0;
    int tiles_y = 0;
    int tile_size = 16;    //!< Square tile edge in pixels.
    int width = 0;         //!< Render target width in pixels.
    int height = 0;        //!< Render target height in pixels.

    size_t tileCount() const
    { return static_cast<size_t>(tiles_x) * tiles_y; }

    /** Grid covering a @p width x @p height target. */
    static TileGrid forImage(int width, int height, int tile_size);
};

/** Half-open range [begin, end) into the sorted intersection buffer. */
struct TileRange
{
    uint32_t begin = 0;
    uint32_t end = 0;

    uint32_t size() const { return end - begin; }
};

/** One footprint's candidate tile rectangle (inclusive tile indices;
 *  empty when x0 > x1 or y0 > y1) plus its exact-overlap cut radius. */
struct TileSpan
{
    int x0 = 0, x1 = -1;
    int y0 = 0, y1 = -1;
    /** Squared pixel distance beyond which the footprint provably cannot
     *  pass the alpha_min test; +inf disables the exact test. */
    float cut2 = 0.0f;

    bool empty() const { return x0 > x1 || y0 > y1; }
};

/** Reusable scratch for buildTileIntersections (lives in RenderArena). */
struct BinningScratch
{
    std::vector<TileSpan> spans;        //!< Per-subset-entry candidate span.
    std::vector<uint32_t> offsets;      //!< Exclusive scan of tile counts.
    std::vector<uint64_t> keys;         //!< (tile << 32 | depth) sort keys.
    std::vector<uint64_t> keys_tmp;     //!< Radix ping-pong buffers.
    std::vector<uint32_t> vals_tmp;
    std::vector<uint32_t> hist;         //!< Radix per-chunk histograms.

    /** Bytes currently held (for memory accounting). */
    size_t bytes() const;
};

/** Order-preserving bit pattern of a non-negative depth (monotonic:
 *  a < b  <=>  depthBits(a) < depthBits(b) for all finite a, b >= 0). */
uint32_t depthBits(float depth);

/**
 * Squared pixel radius beyond which @p p provably cannot pass the
 * rasterizer's `alpha >= alpha_min` test (see file comment): dropping
 * pixels or tiles farther out can never change the rendered image. The
 * bound is derived from the float conic the pixel test evaluates, with
 * a conservative error budget; ill-conditioned conics return +infinity
 * ("no cut") rather than risk a wrong drop. Returns a negative value
 * for invalid footprints.
 */
float footprintCutRadius2(const ProjectedGaussian &p, float alpha_min);

/** Margin (in power units) under which a whole-row power bound is
 *  trusted to skip a row; generous relative to the float rounding of
 *  the bound and of the power evaluation near the threshold. */
constexpr float kRowCutMargin = 1e-2f;

/**
 * Relative error budget charged against every conic-derived bound
 * (det = a*c - b^2, c - b^2/a, eigenvalues): the true rounding error of
 * these expressions is a few ulp (~1e-7) of the *un-cancelled* term
 * magnitudes, so deducting 1e-4 of those magnitudes over-covers it by
 * ~1000x — including the additional float-evaluation error of the
 * per-pixel power itself, which scales with the same magnitudes. For
 * ill-conditioned (needle) conics the deduction drives the bound to
 * its safe fallback (no cut) instead of risking a wrong drop.
 */
constexpr float kConicEps = 1e-4f;

/** Absolute margin (in log-alpha space, where one float ulp is ~1e-6)
 *  on the per-Gaussian alpha-cut power threshold. */
constexpr float kPowerCutMargin = 1e-4f;

/**
 * Per-Gaussian alpha-cut power threshold: `power < alphaCutPower(...)`
 * guarantees `opacity * exp(power) < alpha_min`. One expression shared
 * by computeAlphaCutPowers() and the batched pipeline's per-union-entry
 * precompute, so both produce the same bits from the same opacity.
 * @p opacity must be > 0 (a sigmoid output).
 */
inline float
alphaCutPower(float opacity, float alpha_min)
{
    // alpha = opacity * exp(power) < alpha_min is mathematically
    // power < ln(alpha_min / opacity); the absolute margin absorbs the
    // rounding of log/exp/multiply, so skipping below the threshold can
    // never drop a pair the exact test would have accepted.
    return std::log(alpha_min / opacity) - kPowerCutMargin;
}

/**
 * Vertical conic curvature `c - b^2/a` with its cancellation-error
 * budget deducted: the best power any pixel with vertical offset dy can
 * reach is `-0.5 * rowCurvature(p) * dy^2`, so a whole pixel row is
 * provably missed when that bound (plus kRowCutMargin) is below the
 * alpha-cut threshold. Needle conics clamp to 0 = "never skip a row".
 */
inline float
rowCurvature(const ProjectedGaussian &p)
{
    // max over dx of power(dx, dy) is -0.5 * (c - b^2/a) * dy^2
    // (complete the square; a > 0 whenever the conic is valid).
    if (!(p.conic_a > 0.0f))
        return 0.0f;
    float cross = p.conic_b * p.conic_b / p.conic_a;
    float k = p.conic_c - cross
            - kConicEps * (std::fabs(p.conic_c) + cross);
    return std::max(k, 0.0f);
}

/** Below this many subset entries, parallelizing a per-entry render
 *  pass (projection, gradient chaining) costs more than it saves.
 *  Shared by the forward and backward rasterizer passes. */
constexpr size_t kMinParallelSubset = 256;

/**
 * Per-subset-entry conservative compositing cuts.
 *
 * @param alpha_cut Out: power thresholds — `power < alpha_cut[s]`
 *        guarantees `opacity * exp(power) < alpha_min`, so the
 *        rasterizer can skip the (expensive) exp for the vast majority
 *        of missing pixel/Gaussian pairs; the exact alpha test still
 *        runs near the boundary, so results stay bitwise identical.
 * @param row_k Out: vertical conic curvature `c - b^2/a` — the best
 *        power any pixel with vertical offset dy can reach is
 *        `-0.5 * row_k[s] * dy^2`, so a whole pixel row is provably
 *        missed when that bound (plus kRowCutMargin) is below
 *        alpha_cut[s].
 *
 * Deterministic under any parallel split (entries are independent).
 */
void computeAlphaCutPowers(const std::vector<ProjectedGaussian> &projected,
                           float alpha_min, bool parallel,
                           std::vector<float> &alpha_cut,
                           std::vector<float> &row_k);

/**
 * Candidate tile rectangle of @p p on @p grid — the 3-sigma square bound,
 * clamped to the grid — plus the exact-overlap cut radius (see file
 * comment). @p exact_bounds off sets cut2 = +inf, reproducing the plain
 * square binning.
 */
TileSpan computeTileSpan(const ProjectedGaussian &p, const TileGrid &grid,
                         float alpha_min, bool exact_bounds);

/**
 * Does @p p's footprint reach tile (@p tx, @p ty)? True when the tile's
 * pixel-center rectangle comes within sqrt(span.cut2) pixels of the
 * footprint center. Callers iterate tiles inside @p span only.
 */
bool tileOverlaps(const ProjectedGaussian &p, const TileSpan &span, int tx,
                  int ty, const TileGrid &grid);

/**
 * Stable LSD radix sort of @p keys with @p vals carried along, least
 * significant byte first. Only the low @p key_bits bits participate
 * (pass 64 for a full sort; fewer known-significant bits skip passes).
 * The sorted result is guaranteed to end up in @p keys / @p vals; the
 * scratch vectors are resized as needed and their contents are garbage
 * afterwards. The output is the unique stable sort, so it does not depend
 * on thread count or on @p parallel.
 *
 * @param hist_scratch Optional reusable histogram buffer (hot-loop
 *        callers pass BinningScratch::hist to avoid a per-call
 *        allocation); nullptr allocates locally.
 */
void radixSortPairs(std::vector<uint64_t> &keys,
                    std::vector<uint32_t> &vals,
                    std::vector<uint64_t> &keys_scratch,
                    std::vector<uint32_t> &vals_scratch, int key_bits = 64,
                    bool parallel = true,
                    std::vector<uint32_t> *hist_scratch = nullptr);

/**
 * Expand @p projected into the flat sorted intersection buffer:
 * count touched tiles per footprint, exclusive-scan into offsets, fill
 * `(tile << 32 | depth_bits)` keys + subset-position values, radix-sort,
 * and derive contiguous per-tile ranges.
 *
 * @param sorted_vals Out: subset positions sorted by (tile, depth, subset
 *        position) — the per-tile front-to-back compositing order.
 * @param tile_ranges Out: per-tile [begin, end) into @p sorted_vals.
 * @return Total number of tile intersections.
 */
size_t buildTileIntersections(
    const std::vector<ProjectedGaussian> &projected, const TileGrid &grid,
    float alpha_min, bool exact_bounds, bool parallel,
    BinningScratch &scratch, std::vector<uint32_t> &sorted_vals,
    std::vector<TileRange> &tile_ranges);

} // namespace clm

#endif // CLM_RENDER_BINNING_HPP
