#include "render/loss.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.hpp"

namespace clm {

namespace {

/**
 * Per-center SSIM statistics for one channel, plus the three coefficient
 * fields the backward pass scatters through the window.
 */
struct SsimField
{
    std::vector<double> mu_x, mu_y;
    std::vector<double> d_mu;      // dSSIM/dmu_x at each center
    std::vector<double> d_var;     // dSSIM/dsigma_x2 at each center
    std::vector<double> d_cov;     // dSSIM/dsigma_xy at each center
    std::vector<double> inv_n;     // 1/window-size at each center
    double ssim_sum = 0.0;
};

SsimField
ssimChannel(const Image &x_img, const Image &y_img, int ch,
            const LossConfig &cfg, bool want_grads)
{
    const int w = x_img.width();
    const int h = x_img.height();
    const int r = cfg.ssim_window / 2;
    const size_t n = static_cast<size_t>(w) * h;

    SsimField f;
    f.mu_x.resize(n);
    f.mu_y.resize(n);
    if (want_grads) {
        f.d_mu.assign(n, 0.0);
        f.d_var.assign(n, 0.0);
        f.d_cov.assign(n, 0.0);
        f.inv_n.assign(n, 0.0);
    }

    const std::vector<float> &xd = x_img.data();
    const std::vector<float> &yd = y_img.data();
    auto at = [&](const std::vector<float> &d, int px, int py) {
        return double(d[(static_cast<size_t>(py) * w + px) * 3 + ch]);
    };

    for (int py = 0; py < h; ++py) {
        for (int px = 0; px < w; ++px) {
            int x0 = std::max(px - r, 0), x1 = std::min(px + r, w - 1);
            int y0 = std::max(py - r, 0), y1 = std::min(py + r, h - 1);
            int cnt = (x1 - x0 + 1) * (y1 - y0 + 1);
            double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
            for (int yy = y0; yy <= y1; ++yy) {
                for (int xx = x0; xx <= x1; ++xx) {
                    double xv = at(xd, xx, yy);
                    double yv = at(yd, xx, yy);
                    sx += xv;
                    sy += yv;
                    sxx += xv * xv;
                    syy += yv * yv;
                    sxy += xv * yv;
                }
            }
            double mx = sx / cnt, my = sy / cnt;
            double vx = sxx / cnt - mx * mx;
            double vy = syy / cnt - my * my;
            double cxy = sxy / cnt - mx * my;

            double u = 2.0 * mx * my + cfg.ssim_c1;
            double v = 2.0 * cxy + cfg.ssim_c2;
            double s = mx * mx + my * my + cfg.ssim_c1;
            double t = vx + vy + cfg.ssim_c2;
            double ssim = (u * v) / (s * t);
            f.ssim_sum += ssim;

            size_t pi = static_cast<size_t>(py) * w + px;
            f.mu_x[pi] = mx;
            f.mu_y[pi] = my;
            if (want_grads) {
                f.d_mu[pi] = 2.0 * my * v / (s * t)
                           - (u * v) * 2.0 * mx / (s * s * t);
                f.d_var[pi] = -(u * v) / (s * t * t);
                f.d_cov[pi] = 2.0 * u / (s * t);
                f.inv_n[pi] = 1.0 / cnt;
            }
        }
    }
    return f;
}

} // namespace

double
meanSsim(const Image &a, const Image &b, const LossConfig &cfg)
{
    CLM_ASSERT(a.width() == b.width() && a.height() == b.height(),
               "image size mismatch");
    double acc = 0.0;
    for (int ch = 0; ch < 3; ++ch)
        acc += ssimChannel(a, b, ch, cfg, false).ssim_sum;
    return acc / (3.0 * a.pixels());
}

LossResult
computeLoss(const Image &rendered, const Image &gt, Image *d_rendered,
            const LossConfig &cfg)
{
    CLM_ASSERT(rendered.width() == gt.width()
                   && rendered.height() == gt.height(),
               "image size mismatch");
    CLM_ASSERT(cfg.ssim_window % 2 == 1, "ssim window must be odd");

    const int w = rendered.width();
    const int h = rendered.height();
    const size_t total_vals = rendered.data().size();
    const double lam = cfg.lambda_dssim;

    if (d_rendered)
        *d_rendered = Image(w, h, {0, 0, 0});

    LossResult result;
    result.l1 = rendered.l1(gt);

    // L1 gradient: (1-lam)/total * sign(x - y).
    if (d_rendered) {
        auto &dd = d_rendered->data();
        const auto &xd = rendered.data();
        const auto &yd = gt.data();
        double scale = (1.0 - lam) / total_vals;
        for (size_t i = 0; i < total_vals; ++i) {
            double diff = double(xd[i]) - double(yd[i]);
            dd[i] += static_cast<float>(
                scale * (diff > 0 ? 1.0 : (diff < 0 ? -1.0 : 0.0)));
        }
    }

    // SSIM term, per channel.
    const int r = cfg.ssim_window / 2;
    double ssim_acc = 0.0;
    const double pixel_count = static_cast<double>(rendered.pixels());
    for (int ch = 0; ch < 3; ++ch) {
        SsimField f =
            ssimChannel(rendered, gt, ch, cfg, d_rendered != nullptr);
        ssim_acc += f.ssim_sum;
        if (!d_rendered)
            continue;
        // dL/dx(q) = -lam / (3P) * sum_{centers p covering q} (1/N_p) *
        //   [d_mu(p) + d_var(p)*2*(x(q)-mu_x(p)) + d_cov(p)*(y(q)-mu_y(p))]
        auto &dd = d_rendered->data();
        const auto &xd = rendered.data();
        const auto &yd = gt.data();
        double scale = -lam / (3.0 * pixel_count);
        for (int qy = 0; qy < h; ++qy) {
            for (int qx = 0; qx < w; ++qx) {
                size_t qi = static_cast<size_t>(qy) * w + qx;
                double xq = xd[qi * 3 + ch];
                double yq = yd[qi * 3 + ch];
                double acc = 0.0;
                int py0 = std::max(qy - r, 0), py1 = std::min(qy + r, h - 1);
                int px0 = std::max(qx - r, 0), px1 = std::min(qx + r, w - 1);
                for (int py = py0; py <= py1; ++py) {
                    for (int px = px0; px <= px1; ++px) {
                        size_t pi = static_cast<size_t>(py) * w + px;
                        acc += f.inv_n[pi]
                             * (f.d_mu[pi]
                                + f.d_var[pi] * 2.0 * (xq - f.mu_x[pi])
                                + f.d_cov[pi] * (yq - f.mu_y[pi]));
                    }
                }
                dd[qi * 3 + ch] += static_cast<float>(scale * acc);
            }
        }
    }
    double mean_ssim = ssim_acc / (3.0 * pixel_count);
    result.dssim = 1.0 - mean_ssim;
    result.total = (1.0 - lam) * result.l1 + lam * result.dssim;
    return result;
}

} // namespace clm
