#include "render/loss.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace clm {

namespace {

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/** Fixed row-chunk plan shared by every parallel pass: derived from the
 *  pool size only (NOT from the parallel flag), so serial and parallel
 *  execution perform identical arithmetic — the backward-rasterizer
 *  determinism recipe. */
struct ChunkPlan
{
    size_t n_chunks = 1;
    size_t per_chunk = 0;

    static ChunkPlan forRows(size_t rows)
    {
        ChunkPlan p;
        p.n_chunks = std::max<size_t>(
            1, std::min<size_t>(
                   rows,
                   static_cast<size_t>(ThreadPool::global().threads()) * 2));
        p.per_chunk = rows == 0 ? 0 : (rows + p.n_chunks - 1) / p.n_chunks;
        return p;
    }
};

/** Run @p body(chunk_index) over the plan, across the pool or serially
 *  in chunk order — the split itself never changes. */
template <typename Body>
void
runChunks(const ChunkPlan &plan, bool parallel, const Body &body)
{
    if (parallel && plan.n_chunks > 1) {
        ThreadPool::global().parallelFor(
            plan.n_chunks, [&](size_t begin, size_t end) {
                for (size_t c = begin; c < end; ++c)
                    body(c);
            });
    } else {
        for (size_t c = 0; c < plan.n_chunks; ++c)
            body(c);
    }
}

/**
 * Column-prefix pass of a SAT whose rows already hold row prefixes:
 * row y += row y-1 walking down, split into flat column slices (each
 * slice sees the same serial y-order, so any split is deterministic).
 * Row 0 is the zero guard row; row 1 needs no add.
 */
void
satColumnPrefix(std::vector<double> &sat, size_t row_w, int h,
                bool parallel)
{
    const ChunkPlan cols = ChunkPlan::forRows(row_w);
    runChunks(cols, parallel, [&](size_t c) {
        const size_t i0 = c * cols.per_chunk;
        const size_t i1 = std::min<size_t>(i0 + cols.per_chunk, row_w);
        for (int y = 2; y <= h; ++y) {
            double *cur = &sat[static_cast<size_t>(y) * row_w];
            const double *prev =
                &sat[static_cast<size_t>(y - 1) * row_w];
            for (size_t i = i0; i < i1; ++i)
                cur[i] += prev[i];
        }
    });
}

/**
 * Build a summed-area table over a per-pixel @p values image of
 * @p stride doubles per pixel (fused fields): row-prefix pass (rows are
 * independent) followed by the column-prefix pass, both tiled over the
 * pool. @p sat is laid out (h+1) x (w+1) x stride with a zero guard
 * row/column, so any clamped box sum is four corner lookups.
 */
void
buildSat(const double *values, int w, int h, int stride, bool parallel,
         std::vector<double> &sat)
{
    const size_t row_w = static_cast<size_t>(w + 1) * stride;
    sat.resize(row_w * (h + 1));
    std::memset(sat.data(), 0, row_w * sizeof(double));    // guard row

    const ChunkPlan rows = ChunkPlan::forRows(h);
    runChunks(rows, parallel, [&](size_t c) {
        const size_t y0 = c * rows.per_chunk;
        const size_t y1 = std::min<size_t>(y0 + rows.per_chunk, h);
        std::vector<double> run(stride);
        for (size_t y = y0; y < y1; ++y) {
            std::fill(run.begin(), run.end(), 0.0);
            double *dst = &sat[(y + 1) * row_w];
            std::memset(dst, 0, stride * sizeof(double));    // guard col
            const double *src =
                values + y * static_cast<size_t>(w) * stride;
            for (int x = 0; x < w; ++x) {
                for (int k = 0; k < stride; ++k)
                    run[k] += src[static_cast<size_t>(x) * stride + k];
                std::memcpy(dst + (static_cast<size_t>(x) + 1) * stride,
                            run.data(), stride * sizeof(double));
            }
        }
    });
    satColumnPrefix(sat, row_w, h, parallel);
}

// Fused-channel layouts.
constexpr int kStats = 5;                  // sx, sy, sxx, syy, sxy
constexpr int kSatStride = 3 * kStats;     // all 3 channels in one pass
constexpr int kFieldStride = 3 * 3;        // A, B, C per channel

/**
 * SSIM statistics pass: build the fused 15-field SAT of (x, y, x^2,
 * y^2, x*y) for all channels, then evaluate every center's window
 * statistics in O(1). Returns the ssim sum over all pixels and
 * channels (chunk partials reduced in chunk order). When @p field is
 * non-null, also writes the three backward coefficient fields per
 * channel:
 *
 *   A = (1/N) * (d_mu - 2*d_var*mu_x - d_cov*mu_y)
 *   B = (1/N) * d_var        (coefficient of 2*x(q))
 *   C = (1/N) * d_cov        (coefficient of y(q))
 *
 * so dL_ssim/dx(q) reduces to a clamped box sum of (A, B, C) around q
 * — the set of centers whose clamped window covers q is exactly the
 * clamped window around q, border pixels included.
 */
double
ssimStatsPass(const Image &x_img, const Image &y_img, const LossConfig &cfg,
              LossScratch &scratch, double *field)
{
    const int w = x_img.width();
    const int h = x_img.height();
    const int r = cfg.ssim_window / 2;
    const std::vector<float> &xd = x_img.data();
    const std::vector<float> &yd = y_img.data();

    // Pass 1: per-pixel moments, fused across channels, straight into
    // the SAT fill (no intermediate moment image: the row-prefix run
    // accumulates the moments as it walks the row).
    const size_t row_w = static_cast<size_t>(w + 1) * kSatStride;
    std::vector<double> &sat = scratch.sat;
    sat.resize(row_w * (h + 1));
    std::memset(sat.data(), 0, row_w * sizeof(double));

    const ChunkPlan rows = ChunkPlan::forRows(h);
    runChunks(rows, cfg.parallel, [&](size_t c) {
        const size_t y0 = c * rows.per_chunk;
        const size_t y1 = std::min<size_t>(y0 + rows.per_chunk, h);
        for (size_t y = y0; y < y1; ++y) {
            double run[kSatStride] = {};
            double *dst = &sat[(y + 1) * row_w];
            std::memset(dst, 0, kSatStride * sizeof(double));
            const float *xp = &xd[y * static_cast<size_t>(w) * 3];
            const float *yp = &yd[y * static_cast<size_t>(w) * 3];
            for (int x = 0; x < w; ++x) {
                for (int ch = 0; ch < 3; ++ch) {
                    const double xv = xp[x * 3 + ch];
                    const double yv = yp[x * 3 + ch];
                    double *m = run + ch * kStats;
                    m[0] += xv;
                    m[1] += yv;
                    m[2] += xv * xv;
                    m[3] += yv * yv;
                    m[4] += xv * yv;
                }
                std::memcpy(
                    dst + (static_cast<size_t>(x) + 1) * kSatStride, run,
                    sizeof(run));
            }
        }
    });
    satColumnPrefix(sat, row_w, h, cfg.parallel);

    // Pass 2: O(1) window statistics per center.
    std::vector<double> partials(rows.n_chunks, 0.0);
    runChunks(rows, cfg.parallel, [&](size_t c) {
        const size_t py0c = c * rows.per_chunk;
        const size_t py1c = std::min<size_t>(py0c + rows.per_chunk, h);
        double local = 0.0;
        for (size_t py = py0c; py < py1c; ++py) {
            const int y0 = std::max<int>(static_cast<int>(py) - r, 0);
            const int y1 =
                std::min<int>(static_cast<int>(py) + r, h - 1);
            const double *top = &sat[static_cast<size_t>(y0) * row_w];
            const double *bot =
                &sat[static_cast<size_t>(y1 + 1) * row_w];
            for (int px = 0; px < w; ++px) {
                const int x0 = std::max(px - r, 0);
                const int x1 = std::min(px + r, w - 1);
                const double inv = 1.0 / ((x1 - x0 + 1) * (y1 - y0 + 1));
                const double *c00 =
                    top + static_cast<size_t>(x0) * kSatStride;
                const double *c01 =
                    top + static_cast<size_t>(x1 + 1) * kSatStride;
                const double *c10 =
                    bot + static_cast<size_t>(x0) * kSatStride;
                const double *c11 =
                    bot + static_cast<size_t>(x1 + 1) * kSatStride;
                const size_t pi = py * static_cast<size_t>(w) + px;
                for (int ch = 0; ch < 3; ++ch) {
                    const int b = ch * kStats;
                    const double sx =
                        c11[b] - c01[b] - c10[b] + c00[b];
                    const double sy = c11[b + 1] - c01[b + 1]
                                    - c10[b + 1] + c00[b + 1];
                    const double sxx = c11[b + 2] - c01[b + 2]
                                     - c10[b + 2] + c00[b + 2];
                    const double syy = c11[b + 3] - c01[b + 3]
                                     - c10[b + 3] + c00[b + 3];
                    const double sxy = c11[b + 4] - c01[b + 4]
                                     - c10[b + 4] + c00[b + 4];
                    const double mx = sx * inv, my = sy * inv;
                    const double vx = sxx * inv - mx * mx;
                    const double vy = syy * inv - my * my;
                    const double cxy = sxy * inv - mx * my;

                    const double u = 2.0 * mx * my + cfg.ssim_c1;
                    const double v = 2.0 * cxy + cfg.ssim_c2;
                    const double s = mx * mx + my * my + cfg.ssim_c1;
                    const double t = vx + vy + cfg.ssim_c2;
                    local += (u * v) / (s * t);

                    if (field) {
                        const double d_mu =
                            2.0 * my * v / (s * t)
                            - (u * v) * 2.0 * mx / (s * s * t);
                        const double d_var = -(u * v) / (s * t * t);
                        const double d_cov = 2.0 * u / (s * t);
                        double *f = field + pi * kFieldStride + ch * 3;
                        f[0] = inv
                             * (d_mu - 2.0 * d_var * mx - d_cov * my);
                        f[1] = inv * d_var;
                        f[2] = inv * d_cov;
                    }
                }
            }
        }
        partials[c] = local;
    });
    double ssim_sum = 0.0;
    for (double p : partials)
        ssim_sum += p;
    return ssim_sum;
}

// ---------------------------------------------------------------------------
// Brute-force reference (the pre-SAT implementation, serial)
// ---------------------------------------------------------------------------

/**
 * Per-center SSIM statistics for one channel, plus the three coefficient
 * fields the backward pass scatters through the window.
 */
struct SsimField
{
    std::vector<double> mu_x, mu_y;
    std::vector<double> d_mu;      // dSSIM/dmu_x at each center
    std::vector<double> d_var;     // dSSIM/dsigma_x2 at each center
    std::vector<double> d_cov;     // dSSIM/dsigma_xy at each center
    std::vector<double> inv_n;     // 1/window-size at each center
    double ssim_sum = 0.0;
};

SsimField
ssimChannel(const Image &x_img, const Image &y_img, int ch,
            const LossConfig &cfg, bool want_grads)
{
    const int w = x_img.width();
    const int h = x_img.height();
    const int r = cfg.ssim_window / 2;
    const size_t n = static_cast<size_t>(w) * h;

    SsimField f;
    f.mu_x.resize(n);
    f.mu_y.resize(n);
    if (want_grads) {
        f.d_mu.assign(n, 0.0);
        f.d_var.assign(n, 0.0);
        f.d_cov.assign(n, 0.0);
        f.inv_n.assign(n, 0.0);
    }

    const std::vector<float> &xd = x_img.data();
    const std::vector<float> &yd = y_img.data();
    auto at = [&](const std::vector<float> &d, int px, int py) {
        return double(d[(static_cast<size_t>(py) * w + px) * 3 + ch]);
    };

    for (int py = 0; py < h; ++py) {
        for (int px = 0; px < w; ++px) {
            int x0 = std::max(px - r, 0), x1 = std::min(px + r, w - 1);
            int y0 = std::max(py - r, 0), y1 = std::min(py + r, h - 1);
            int cnt = (x1 - x0 + 1) * (y1 - y0 + 1);
            double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
            for (int yy = y0; yy <= y1; ++yy) {
                for (int xx = x0; xx <= x1; ++xx) {
                    double xv = at(xd, xx, yy);
                    double yv = at(yd, xx, yy);
                    sx += xv;
                    sy += yv;
                    sxx += xv * xv;
                    syy += yv * yv;
                    sxy += xv * yv;
                }
            }
            double mx = sx / cnt, my = sy / cnt;
            double vx = sxx / cnt - mx * mx;
            double vy = syy / cnt - my * my;
            double cxy = sxy / cnt - mx * my;

            double u = 2.0 * mx * my + cfg.ssim_c1;
            double v = 2.0 * cxy + cfg.ssim_c2;
            double s = mx * mx + my * my + cfg.ssim_c1;
            double t = vx + vy + cfg.ssim_c2;
            double ssim = (u * v) / (s * t);
            f.ssim_sum += ssim;

            size_t pi = static_cast<size_t>(py) * w + px;
            f.mu_x[pi] = mx;
            f.mu_y[pi] = my;
            if (want_grads) {
                f.d_mu[pi] = 2.0 * my * v / (s * t)
                           - (u * v) * 2.0 * mx / (s * s * t);
                f.d_var[pi] = -(u * v) / (s * t * t);
                f.d_cov[pi] = 2.0 * u / (s * t);
                f.inv_n[pi] = 1.0 / cnt;
            }
        }
    }
    return f;
}

} // namespace

LossResult
computeLoss(const Image &rendered, const Image &gt, Image *d_rendered,
            const LossConfig &cfg)
{
    LossScratch scratch;
    return computeLoss(rendered, gt, d_rendered, cfg, scratch, nullptr);
}

LossResult
computeLoss(const Image &rendered, const Image &gt, Image *d_rendered,
            const LossConfig &cfg, LossScratch &scratch,
            LossStageTimes *times)
{
    CLM_ASSERT(rendered.width() == gt.width()
                   && rendered.height() == gt.height(),
               "image size mismatch");
    CLM_ASSERT(cfg.ssim_window % 2 == 1, "ssim window must be odd");

    const int w = rendered.width();
    const int h = rendered.height();
    const size_t pixels = rendered.pixels();
    const size_t total_vals = rendered.data().size();
    const double lam = cfg.lambda_dssim;
    const int r = cfg.ssim_window / 2;

    Timer timer;

    LossResult result;
    result.l1 = rendered.l1(gt);

    // Forward SSIM statistics (+ the backward coefficient fields when
    // gradients are wanted).
    double *field = nullptr;
    if (d_rendered) {
        scratch.field.resize(pixels * kFieldStride);
        field = scratch.field.data();
    }
    const double ssim_sum =
        ssimStatsPass(rendered, gt, cfg, scratch, field);
    const double mean_ssim = ssim_sum / (3.0 * pixels);
    result.dssim = 1.0 - mean_ssim;
    result.total = (1.0 - lam) * result.l1 + lam * result.dssim;
    if (times)
        times->forward_s = timer.seconds();
    if (!d_rendered)
        return result;
    timer.reset();

    // Backward: SAT the coefficient fields, then one fused scatter pass
    // writing dL/dx(q) = L1 sign term + ssim_scale * (S_A + 2 x(q) S_B
    // + y(q) S_C) — every output value written exactly once, so the
    // pass parallelizes over disjoint rows.
    buildSat(field, w, h, kFieldStride, cfg.parallel, scratch.field_sat);
    const std::vector<double> &fsat = scratch.field_sat;
    const size_t frow_w = static_cast<size_t>(w + 1) * kFieldStride;

    d_rendered->resetUnfilled(w, h);
    std::vector<float> &dd = d_rendered->data();
    const std::vector<float> &xd = rendered.data();
    const std::vector<float> &yd = gt.data();
    const double l1_scale = (1.0 - lam) / total_vals;
    const double ssim_scale = -lam / (3.0 * pixels);

    const ChunkPlan rows = ChunkPlan::forRows(h);
    runChunks(rows, cfg.parallel, [&](size_t c) {
        const size_t qy0c = c * rows.per_chunk;
        const size_t qy1c = std::min<size_t>(qy0c + rows.per_chunk, h);
        for (size_t qy = qy0c; qy < qy1c; ++qy) {
            const int y0 = std::max<int>(static_cast<int>(qy) - r, 0);
            const int y1 =
                std::min<int>(static_cast<int>(qy) + r, h - 1);
            const double *top = &fsat[static_cast<size_t>(y0) * frow_w];
            const double *bot =
                &fsat[static_cast<size_t>(y1 + 1) * frow_w];
            for (int qx = 0; qx < w; ++qx) {
                const int x0 = std::max(qx - r, 0);
                const int x1 = std::min(qx + r, w - 1);
                const double *c00 =
                    top + static_cast<size_t>(x0) * kFieldStride;
                const double *c01 =
                    top + static_cast<size_t>(x1 + 1) * kFieldStride;
                const double *c10 =
                    bot + static_cast<size_t>(x0) * kFieldStride;
                const double *c11 =
                    bot + static_cast<size_t>(x1 + 1) * kFieldStride;
                const size_t qi = qy * static_cast<size_t>(w) + qx;
                for (int ch = 0; ch < 3; ++ch) {
                    const int b = ch * 3;
                    const double sa =
                        c11[b] - c01[b] - c10[b] + c00[b];
                    const double sb = c11[b + 1] - c01[b + 1]
                                    - c10[b + 1] + c00[b + 1];
                    const double sc = c11[b + 2] - c01[b + 2]
                                    - c10[b + 2] + c00[b + 2];
                    const double xq = xd[qi * 3 + ch];
                    const double yq = yd[qi * 3 + ch];
                    const double acc = sa + 2.0 * xq * sb + yq * sc;
                    const double diff = xq - yq;
                    const double sign =
                        diff > 0 ? 1.0 : (diff < 0 ? -1.0 : 0.0);
                    dd[qi * 3 + ch] = static_cast<float>(
                        l1_scale * sign + ssim_scale * acc);
                }
            }
        }
    });
    if (times)
        times->backward_s = timer.seconds();
    return result;
}

LossResult
computeLossReference(const Image &rendered, const Image &gt,
                     Image *d_rendered, const LossConfig &cfg,
                     LossStageTimes *times)
{
    CLM_ASSERT(rendered.width() == gt.width()
                   && rendered.height() == gt.height(),
               "image size mismatch");
    CLM_ASSERT(cfg.ssim_window % 2 == 1, "ssim window must be odd");

    const int w = rendered.width();
    const int h = rendered.height();
    const size_t total_vals = rendered.data().size();
    const double lam = cfg.lambda_dssim;

    Timer timer;
    double fwd_s = 0, bwd_s = 0;

    if (d_rendered)
        *d_rendered = Image(w, h, {0, 0, 0});

    LossResult result;
    result.l1 = rendered.l1(gt);

    // L1 gradient: (1-lam)/total * sign(x - y).
    if (d_rendered) {
        auto &dd = d_rendered->data();
        const auto &xd = rendered.data();
        const auto &yd = gt.data();
        double scale = (1.0 - lam) / total_vals;
        for (size_t i = 0; i < total_vals; ++i) {
            double diff = double(xd[i]) - double(yd[i]);
            dd[i] += static_cast<float>(
                scale * (diff > 0 ? 1.0 : (diff < 0 ? -1.0 : 0.0)));
        }
    }
    fwd_s += timer.seconds();

    // SSIM term, per channel.
    const int r = cfg.ssim_window / 2;
    double ssim_acc = 0.0;
    const double pixel_count = static_cast<double>(rendered.pixels());
    for (int ch = 0; ch < 3; ++ch) {
        timer.reset();
        SsimField f =
            ssimChannel(rendered, gt, ch, cfg, d_rendered != nullptr);
        ssim_acc += f.ssim_sum;
        fwd_s += timer.seconds();
        if (!d_rendered)
            continue;
        timer.reset();
        // dL/dx(q) = -lam / (3P) * sum_{centers p covering q} (1/N_p) *
        //   [d_mu(p) + d_var(p)*2*(x(q)-mu_x(p)) + d_cov(p)*(y(q)-mu_y(p))]
        auto &dd = d_rendered->data();
        const auto &xd = rendered.data();
        const auto &yd = gt.data();
        double scale = -lam / (3.0 * pixel_count);
        for (int qy = 0; qy < h; ++qy) {
            for (int qx = 0; qx < w; ++qx) {
                size_t qi = static_cast<size_t>(qy) * w + qx;
                double xq = xd[qi * 3 + ch];
                double yq = yd[qi * 3 + ch];
                double acc = 0.0;
                int py0 = std::max(qy - r, 0), py1 = std::min(qy + r, h - 1);
                int px0 = std::max(qx - r, 0), px1 = std::min(qx + r, w - 1);
                for (int py = py0; py <= py1; ++py) {
                    for (int px = px0; px <= px1; ++px) {
                        size_t pi = static_cast<size_t>(py) * w + px;
                        acc += f.inv_n[pi]
                             * (f.d_mu[pi]
                                + f.d_var[pi] * 2.0 * (xq - f.mu_x[pi])
                                + f.d_cov[pi] * (yq - f.mu_y[pi]));
                    }
                }
                dd[qi * 3 + ch] += static_cast<float>(scale * acc);
            }
        }
        bwd_s += timer.seconds();
    }
    double mean_ssim = ssim_acc / (3.0 * pixel_count);
    result.dssim = 1.0 - mean_ssim;
    result.total = (1.0 - lam) * result.l1 + lam * result.dssim;
    if (times) {
        times->forward_s = fwd_s;
        times->backward_s = bwd_s;
    }
    return result;
}

double
meanSsim(const Image &a, const Image &b, const LossConfig &cfg)
{
    CLM_ASSERT(a.width() == b.width() && a.height() == b.height(),
               "image size mismatch");
    LossScratch scratch;
    const double ssim_sum = ssimStatsPass(a, b, cfg, scratch, nullptr);
    return ssim_sum / (3.0 * a.pixels());
}

} // namespace clm
