#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "render/arena.hpp"
#include "render/batch.hpp"
#include "render/rasterizer.hpp"
#include "render/simd_kernels.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace clm {

namespace {

void
accumulate(ProjectionGrads &into, const ProjectionGrads &from)
{
    into.d_mean2d += from.d_mean2d;
    into.d_conic_a += from.d_conic_a;
    into.d_conic_b += from.d_conic_b;
    into.d_conic_c += from.d_conic_c;
    into.d_color += from.d_color;
    into.d_opacity += from.d_opacity;
}

/** Sum 8 lane partials left to right — THE fixed lane order of the
 *  deterministic lane reduction. */
float
sumLanes(const float *p)
{
    float s = p[0];
    for (int l = 1; l < 8; ++l)
        s += p[l];
    return s;
}

/** Reduce one staged entry's 8-lane gradient partials (the backward
 *  kernel's grad8 block) into a ProjectionGrads, lanes in fixed order. */
ProjectionGrads
reduceLanes(const float *g8)
{
    ProjectionGrads g;
    g.d_mean2d.x = sumLanes(g8 + kG8MeanX * 8);
    g.d_mean2d.y = sumLanes(g8 + kG8MeanY * 8);
    g.d_conic_a = sumLanes(g8 + kG8ConicA * 8);
    g.d_conic_b = sumLanes(g8 + kG8ConicB * 8);
    g.d_conic_c = sumLanes(g8 + kG8ConicC * 8);
    g.d_color.x = sumLanes(g8 + kG8ColorR * 8);
    g.d_color.y = sumLanes(g8 + kG8ColorG * 8);
    g.d_color.z = sumLanes(g8 + kG8ColorB * 8);
    g.d_opacity = sumLanes(g8 + kG8Opacity * 8);
    return g;
}

/**
 * Scalar-reference backward replay of one tile (the pre-SIMD path,
 * kept verbatim behind RenderConfig::use_simd == false and for
 * -DCLM_DISABLE_SIMD=ON builds): per-pixel back-to-front replay with
 * std::exp, accumulating into stage.grads.
 */
void
backwardTileScalar(TileStage &stage, const RenderOutput &fwd,
                   const Image &d_image, int px0, int px1, int py0,
                   int py1, int w, float alpha_min,
                   const Vec3 &background)
{
    const StagedGaussian *hot = stage.hot.data();
    const Vec3 *colors = stage.color.data();
    for (int py = py0; py < py1; ++py) {
        const float pcy = py + 0.5f;
        for (int px = px0; px < px1; ++px) {
            size_t pi = static_cast<size_t>(py) * w + px;
            uint32_t n_contrib = fwd.n_contrib[pi];
            if (n_contrib == 0)
                continue;
            const float pcx = px + 0.5f;
            Vec3 dpix = d_image.pixel(px, py);
            float bg_dot = background.dot(dpix);

            // Replay back-to-front over the composited prefix.
            float t_acc = fwd.final_t[pi];
            float last_alpha = 0.0f;
            Vec3 last_color{0, 0, 0};
            Vec3 accum_rec{0, 0, 0};
            for (size_t pos = n_contrib; pos-- > 0;) {
                const StagedGaussian e = hot[pos];
                float dx = e.mean_x - pcx;
                float dy = e.mean_y - pcy;
                // No pixel of this row reaches the cut.
                if (-0.5f * e.row_k * dy * dy + kRowCutMargin
                    < e.power_cut)
                    continue;
                float power = -0.5f * (e.conic_a * dx * dx
                                       + e.conic_c * dy * dy)
                            - e.conic_b * dx * dy;
                if (power > 0.0f)
                    continue;
                if (power < e.power_cut)
                    continue;    // alpha < alpha_min
                float gval = std::exp(power);
                float raw_alpha = e.opacity * gval;
                bool clamped = raw_alpha > 0.99f;
                float alpha = clamped ? 0.99f : raw_alpha;
                if (alpha < alpha_min)
                    continue;

                // Transmittance in front of this Gaussian.
                t_acc = t_acc / (1.0f - alpha);
                float dchannel_dcolor = alpha * t_acc;

                float dl_dalpha = 0.0f;
                // c - (color accumulated behind this Gaussian).
                accum_rec = last_color * last_alpha
                          + accum_rec * (1.0f - last_alpha);
                last_color = colors[pos];
                dl_dalpha +=
                    (colors[pos].x - accum_rec.x) * dpix.x;
                dl_dalpha +=
                    (colors[pos].y - accum_rec.y) * dpix.y;
                dl_dalpha +=
                    (colors[pos].z - accum_rec.z) * dpix.z;

                ProjectionGrads &g = stage.grads[pos];
                g.d_color += dpix * dchannel_dcolor;

                dl_dalpha *= t_acc;
                last_alpha = alpha;

                // Background shows through less when alpha grows.
                dl_dalpha +=
                    (-fwd.final_t[pi] / (1.0f - alpha)) * bg_dot;

                if (clamped)
                    continue;    // min(0.99, .) sub-gradient = 0

                float dl_dg = e.opacity * dl_dalpha;
                g.d_opacity += gval * dl_dalpha;

                // G = exp(power(d)), d = mean - pix.
                float gdl = gval * dl_dg;
                g.d_mean2d.x += gdl * (-e.conic_a * dx
                                       - e.conic_b * dy);
                g.d_mean2d.y += gdl * (-e.conic_c * dy
                                       - e.conic_b * dx);
                g.d_conic_a += gdl * (-0.5f * dx * dx);
                g.d_conic_b += gdl * (-dx * dy);
                g.d_conic_c += gdl * (-0.5f * dy * dy);
            }
        }
    }
}

} // namespace

void
renderBackward(const GaussianModel &model, const Camera &camera,
               const RenderConfig &cfg, const RenderOutput &fwd,
               const Image &d_image, GaussianGrads &out)
{
    RenderArena scratch;
    renderBackward(model, camera, cfg, fwd, d_image, out, scratch);
}

void
renderBackward(const GaussianModel &model, const Camera &camera,
               const RenderConfig &cfg, const RenderOutput &fwd,
               const Image &d_image, GaussianGrads &out,
               RenderArena &arena)
{
    CLM_ASSERT(out.size() == model.size(),
               "gradient buffer must cover the full model");
    CLM_ASSERT(d_image.width() == camera.width()
                   && d_image.height() == camera.height(),
               "d_image size mismatch");

    const int w = camera.width();
    const int h = camera.height();
    const size_t n = fwd.projected.size();
    const size_t n_tiles = fwd.tile_ranges.size();

    // Per-subset-entry gradient accumulators for the footprint
    // quantities. A Gaussian can appear in several tiles; tiles are
    // processed in a FIXED chunk partition (the same whether execution
    // is serial or parallel) with one accumulator array per chunk,
    // reduced in chunk order afterwards — so the arithmetic, and hence
    // every output bit, never depends on thread scheduling.
    arena.grads.assign(n, ProjectionGrads{});
    const size_t n_chunks = std::max<size_t>(
        1, std::min<size_t>(n_tiles, ThreadPool::global().threads()));
    const size_t tiles_per_chunk =
        n_tiles == 0 ? 0 : (n_tiles + n_chunks - 1) / n_chunks;
    if (arena.stages.size() < n_chunks)
        arena.stages.resize(n_chunks);
    arena.grad_partials.resize(n_chunks);
    for (auto &partial : arena.grad_partials)
        partial.assign(n, ProjectionGrads{});

    // When replaying the forward activation still held by this arena,
    // the cut arrays for fwd.projected are already in place.
    if (&fwd != &arena.out || arena.cuts_alpha_min != cfg.alpha_min
        || arena.alpha_cut.size() != n) {
        computeAlphaCutPowers(fwd.projected, cfg.alpha_min, cfg.parallel,
                              arena.alpha_cut, arena.row_k);
        arena.cuts_alpha_min = cfg.alpha_min;
    }

    const float alpha_min = cfg.alpha_min;
    const Vec3 background = cfg.background;
    // Runtime-dispatched per-ISA kernel table (or the table cfg.kernels
    // forces). Must agree with the forward pass's table choice only in
    // spirit: every table runs the same IEEE op sequence, so the replay
    // recomputes the forward's alpha bits under any of them.
    const RenderKernels &kern =
        cfg.kernels ? *cfg.kernels : renderKernels();

    auto backward_chunk = [&](size_t c) {
        TileStage &stage = arena.stages[c];
        std::vector<ProjectionGrads> &acc = arena.grad_partials[c];
        const size_t t0 = c * tiles_per_chunk;
        const size_t t1 = std::min(t0 + tiles_per_chunk, n_tiles);
        for (size_t t = t0; t < t1; ++t) {
            const TileRange range = fwd.tile_ranges[t];
            const size_t len = range.size();
            if (len == 0)
                continue;
            // Stage the tile's hot fields so the replay streams
            // sequentially through memory. Shared with the forward pass
            // so the two stagings cannot desync. The SIMD kernel reads
            // the SoA mirrors and accumulates into grad8; the scalar
            // reference path accumulates into stage.grads instead.
            const bool simd_batch =
                cfg.use_simd && len < kSimdMaxStagedEntries;
            stage.stageFrom(fwd.projected, fwd.isect_vals, range,
                            arena.alpha_cut, arena.row_k,
                            /*for_backward=*/!simd_batch,
                            /*stage_soa=*/simd_batch);

            const int ty = static_cast<int>(t) / fwd.tiles_x;
            const int tx = static_cast<int>(t) % fwd.tiles_x;
            const int px0 = tx * cfg.tile_size;
            const int py0 = ty * cfg.tile_size;
            const int px1 = std::min(px0 + cfg.tile_size, w);
            const int py1 = std::min(py0 + cfg.tile_size, h);

            if (simd_batch) {
                // 8-pixel-lane SIMD replay: per-entry 8-lane gradient
                // partials, then the deterministic lane reduction.
                stage.grad8.resize(len
                                   * static_cast<size_t>(kG8Comps) * 8);
                std::memset(stage.grad8.data(), 0,
                            stage.grad8.size() * sizeof(float));
                BackwardTileArgs args;
                args.mean_x = stage.soa_mean_x.data();
                args.mean_y = stage.soa_mean_y.data();
                args.conic_a = stage.soa_conic_a.data();
                args.conic_b = stage.soa_conic_b.data();
                args.conic_c = stage.soa_conic_c.data();
                args.power_cut = stage.soa_power_cut.data();
                args.row_k = stage.soa_row_k.data();
                args.opacity = stage.soa_opacity.data();
                args.color_r = stage.soa_color_r.data();
                args.color_g = stage.soa_color_g.data();
                args.color_b = stage.soa_color_b.data();
                args.len = len;
                args.px0 = px0;
                args.px1 = px1;
                args.py0 = py0;
                args.py1 = py1;
                args.width = w;
                args.alpha_min = alpha_min;
                args.background = background;
                args.final_t = fwd.final_t.data();
                args.n_contrib = fwd.n_contrib.data();
                args.d_image = d_image.data().data();
                args.grad8 = stage.grad8.data();
                kern.backward_tile(args);

                // Flush: reduce each staged entry's 8 lanes in fixed
                // lane order, then accumulate in staged order into
                // this chunk's per-subset array.
                for (size_t j = 0; j < len; ++j)
                    accumulate(
                        acc[fwd.isect_vals[range.begin + j]],
                        reduceLanes(stage.grad8.data()
                                    + j * static_cast<size_t>(kG8Comps)
                                          * 8));
            } else {
                backwardTileScalar(stage, fwd, d_image, px0, px1, py0,
                                   py1, w, alpha_min, background);

                // Flush the tile-local accumulators into this chunk's
                // per-subset array (one entry per Gaussian per tile).
                for (size_t j = 0; j < len; ++j)
                    accumulate(acc[fwd.isect_vals[range.begin + j]],
                               stage.grads[j]);
            }
        }
    };

    if (cfg.parallel && n_chunks > 1) {
        ThreadPool::global().parallelFor(
            n_chunks, [&](size_t begin, size_t end) {
                for (size_t c = begin; c < end; ++c)
                    backward_chunk(c);
            });
    } else {
        for (size_t c = 0; c < n_chunks; ++c)
            backward_chunk(c);
    }

    // Deterministic reduction in chunk order.
    for (const auto &partial : arena.grad_partials)
        for (size_t s = 0; s < n; ++s)
            accumulate(arena.grads[s], partial[s]);

    // Chain footprint gradients through the projection. Subset entries
    // map to distinct model rows, so this parallelizes safely.
    auto chain = [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s)
            projectGaussianBackward(model, camera, cfg.sh_degree,
                                    fwd.projected[s], arena.grads[s], out);
    };
    if (cfg.parallel && n >= kMinParallelSubset)
        ThreadPool::global().parallelFor(n, chain);
    else
        chain(0, n);
}

void
renderBackwardBatch(const GaussianModel &model,
                    const std::vector<Camera> &cameras,
                    const RenderConfig &cfg,
                    const std::vector<Image> &d_images, GaussianGrads &out,
                    BatchRenderArena &ba)
{
    const size_t B = cameras.size();
    CLM_ASSERT(B >= 1, "empty backward batch");
    CLM_ASSERT(d_images.size() == B, "one loss-gradient image per view");
    CLM_ASSERT(ba.views.size() >= B && ba.slots.size() == B,
               "renderBackwardBatch must follow renderForwardBatch on "
               "the same arena");
    CLM_ASSERT(out.size() == model.size(),
               "gradient buffer must cover the full model");

    const float alpha_min = cfg.alpha_min;
    const Vec3 background = cfg.background;
    const RenderKernels &kern =
        cfg.kernels ? *cfg.kernels : renderKernels();
    const size_t threads = ThreadPool::global().threads();

    // Per-view setup, replicating the sequential pass exactly: the cut
    // arrays (already in place from the forward into this arena — the
    // same guard renderBackward uses), and the FIXED per-view chunk
    // partition its reduction order is defined over.
    struct Task
    {
        uint32_t view;
        uint32_t chunk;
        uint32_t t0, t1;
    };
    std::vector<Task> tasks;
    for (size_t v = 0; v < B; ++v) {
        RenderArena &av = ba.views[v];
        const RenderOutput &fwd = av.out;
        const size_t n = fwd.projected.size();
        CLM_ASSERT(ba.slots[v].size() == n,
                   "arena union map does not match the forward batch");
        CLM_ASSERT(d_images[v].width() == cameras[v].width()
                       && d_images[v].height() == cameras[v].height(),
                   "d_image size mismatch");
        if (av.cuts_alpha_min != cfg.alpha_min
            || av.alpha_cut.size() != n) {
            computeAlphaCutPowers(fwd.projected, cfg.alpha_min,
                                  cfg.parallel, av.alpha_cut, av.row_k);
            av.cuts_alpha_min = cfg.alpha_min;
        }
        const size_t n_tiles = fwd.tile_ranges.size();
        const size_t n_chunks = std::max<size_t>(
            1, std::min<size_t>(n_tiles, threads));
        const size_t tiles_per_chunk =
            n_tiles == 0 ? 0 : (n_tiles + n_chunks - 1) / n_chunks;
        av.grad_partials.resize(n_chunks);
        if (ba.retain_staging) {
            CLM_ASSERT(av.stages.size() >= n_tiles,
                       "retained staging missing — render the batch "
                       "with retain_staging set first");
        } else if (av.stages.size() < n_chunks) {
            av.stages.resize(n_chunks);
        }
        for (size_t c = 0; c < n_chunks; ++c) {
            const size_t t0 = c * tiles_per_chunk;
            const size_t t1 = std::min(t0 + tiles_per_chunk, n_tiles);
            tasks.push_back({static_cast<uint32_t>(v),
                             static_cast<uint32_t>(c),
                             static_cast<uint32_t>(t0),
                             static_cast<uint32_t>(t1)});
        }
    }
    ba.grad8_scratch.resize(tasks.size());

    // --- 1. Replay: every (view, chunk) task runs the sequential
    // pass's per-chunk body — same tiles, same staged inputs, same
    // kernels, same flush order — as ONE task list (cross-view
    // parallelism). With retained staging the tile is already staged;
    // the 8-lane partial buffer is kept all-zero between tiles by the
    // flush, replacing the sequential pass's per-tile cold memset.
    auto run_task = [&](size_t ti) {
        const Task &task = tasks[ti];
        RenderArena &av = ba.views[task.view];
        const RenderOutput &fwd = av.out;
        const Image &d_image = d_images[task.view];
        const int w = cameras[task.view].width();
        const int h = cameras[task.view].height();
        std::vector<ProjectionGrads> &acc = av.grad_partials[task.chunk];
        acc.assign(fwd.projected.size(), ProjectionGrads{});
        std::vector<float> &g8 = ba.grad8_scratch[ti];
        for (size_t t = task.t0; t < task.t1; ++t) {
            const TileRange range = fwd.tile_ranges[t];
            const size_t len = range.size();
            if (len == 0)
                continue;
            const bool simd_batch =
                cfg.use_simd && len < kSimdMaxStagedEntries;
            TileStage &stage =
                av.stages[ba.retain_staging ? t : task.chunk];
            if (!ba.retain_staging) {
                stage.stageFrom(fwd.projected, fwd.isect_vals, range,
                                av.alpha_cut, av.row_k,
                                /*for_backward=*/!simd_batch,
                                /*stage_soa=*/simd_batch);
            } else if (!simd_batch) {
                // Forward staging carries hot/color; the scalar replay
                // additionally accumulates into stage.grads.
                stage.grads.assign(len, ProjectionGrads{});
            }

            const int ty = static_cast<int>(t) / fwd.tiles_x;
            const int tx = static_cast<int>(t) % fwd.tiles_x;
            const int px0 = tx * cfg.tile_size;
            const int py0 = ty * cfg.tile_size;
            const int px1 = std::min(px0 + cfg.tile_size, w);
            const int py1 = std::min(py0 + cfg.tile_size, h);

            if (simd_batch) {
                const size_t need =
                    len * static_cast<size_t>(kG8Comps) * 8;
                // Growth zero-fills; the existing prefix is zero by the
                // flush invariant below.
                if (g8.size() < need)
                    g8.resize(need, 0.0f);
                BackwardTileArgs args;
                args.mean_x = stage.soa_mean_x.data();
                args.mean_y = stage.soa_mean_y.data();
                args.conic_a = stage.soa_conic_a.data();
                args.conic_b = stage.soa_conic_b.data();
                args.conic_c = stage.soa_conic_c.data();
                args.power_cut = stage.soa_power_cut.data();
                args.row_k = stage.soa_row_k.data();
                args.opacity = stage.soa_opacity.data();
                args.color_r = stage.soa_color_r.data();
                args.color_g = stage.soa_color_g.data();
                args.color_b = stage.soa_color_b.data();
                args.len = len;
                args.px0 = px0;
                args.px1 = px1;
                args.py0 = py0;
                args.py1 = py1;
                args.width = w;
                args.alpha_min = alpha_min;
                args.background = background;
                args.final_t = fwd.final_t.data();
                args.n_contrib = fwd.n_contrib.data();
                args.d_image = d_image.data().data();
                args.grad8 = g8.data();
                kern.backward_tile(args);

                // Flush in staged order with the fixed lane reduction,
                // re-zeroing each block while it is cache-hot (the
                // all-zero-between-tiles invariant).
                for (size_t j = 0; j < len; ++j) {
                    float *blk =
                        g8.data()
                        + j * static_cast<size_t>(kG8Comps) * 8;
                    accumulate(acc[fwd.isect_vals[range.begin + j]],
                               reduceLanes(blk));
                    std::memset(blk, 0,
                                static_cast<size_t>(kG8Comps) * 8
                                    * sizeof(float));
                }
            } else {
                backwardTileScalar(stage, fwd, d_image, px0, px1, py0,
                                   py1, w, alpha_min, background);
                for (size_t j = 0; j < len; ++j)
                    accumulate(acc[fwd.isect_vals[range.begin + j]],
                               stage.grads[j]);
            }
        }
    };
    if (cfg.parallel && tasks.size() > 1) {
        ThreadPool::global().parallelFor(
            tasks.size(), [&](size_t begin, size_t end) {
                for (size_t ti = begin; ti < end; ++ti)
                    run_task(ti);
            });
    } else {
        for (size_t ti = 0; ti < tasks.size(); ++ti)
            run_task(ti);
    }

    // --- 2. Per-view reduction in chunk order — element-wise over
    // (view, entry), so any parallel split is the same arithmetic.
    for (size_t v = 0; v < B; ++v) {
        RenderArena &av = ba.views[v];
        const size_t n = av.out.projected.size();
        av.grads.resize(n);
        poolForRange(n, cfg.parallel, kMinParallelSubset,
                     [&](size_t begin, size_t end) {
                         for (size_t s = begin; s < end; ++s) {
                             ProjectionGrads g{};
                             for (const auto &partial : av.grad_partials)
                                 accumulate(g, partial[s]);
                             av.grads[s] = g;
                         }
                     });
    }

    // --- 3. Projection chain, once per batch over the union of the
    // views' subsets. Distinct union entries touch distinct model rows
    // (parallel-safe); within an entry the per-view contributions
    // accumulate in ascending view order — exactly the sequential
    // loop's per-row accumulation order.
    const size_t n_union = ba.union_indices.size();
    ba.chain_offsets.assign(n_union + 1, 0);
    size_t total_pairs = 0;
    for (size_t v = 0; v < B; ++v) {
        for (uint32_t u : ba.slots[v])
            ++ba.chain_offsets[u + 1];
        total_pairs += ba.slots[v].size();
    }
    for (size_t u = 0; u < n_union; ++u)
        ba.chain_offsets[u + 1] += ba.chain_offsets[u];
    ba.chain_pairs.resize(total_pairs);
    ba.chain_fill.assign(ba.chain_offsets.begin(),
                         ba.chain_offsets.end() - 1);
    for (size_t v = 0; v < B; ++v) {
        const std::vector<uint32_t> &slots = ba.slots[v];
        for (size_t s = 0; s < slots.size(); ++s)
            ba.chain_pairs[ba.chain_fill[slots[s]]++] =
                (static_cast<uint64_t>(v) << 32) | s;
    }
    poolForRange(
        n_union, cfg.parallel, kMinParallelSubset,
        [&](size_t begin, size_t end) {
            for (size_t u = begin; u < end; ++u) {
                for (size_t e = ba.chain_offsets[u];
                     e < ba.chain_offsets[u + 1]; ++e) {
                    const uint64_t pair = ba.chain_pairs[e];
                    const size_t v = static_cast<size_t>(pair >> 32);
                    const size_t s =
                        static_cast<size_t>(pair & 0xffffffffu);
                    const RenderArena &av = ba.views[v];
                    projectGaussianBackward(model, cameras[v],
                                            cfg.sh_degree,
                                            av.out.projected[s],
                                            av.grads[s], out);
                }
            }
        });
}

} // namespace clm
