#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "render/arena.hpp"
#include "render/rasterizer.hpp"
#include "render/simd_kernels.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace clm {

namespace {

void
accumulate(ProjectionGrads &into, const ProjectionGrads &from)
{
    into.d_mean2d += from.d_mean2d;
    into.d_conic_a += from.d_conic_a;
    into.d_conic_b += from.d_conic_b;
    into.d_conic_c += from.d_conic_c;
    into.d_color += from.d_color;
    into.d_opacity += from.d_opacity;
}

/** Sum 8 lane partials left to right — THE fixed lane order of the
 *  deterministic lane reduction. */
float
sumLanes(const float *p)
{
    float s = p[0];
    for (int l = 1; l < 8; ++l)
        s += p[l];
    return s;
}

/** Reduce one staged entry's 8-lane gradient partials (the backward
 *  kernel's grad8 block) into a ProjectionGrads, lanes in fixed order. */
ProjectionGrads
reduceLanes(const float *g8)
{
    ProjectionGrads g;
    g.d_mean2d.x = sumLanes(g8 + kG8MeanX * 8);
    g.d_mean2d.y = sumLanes(g8 + kG8MeanY * 8);
    g.d_conic_a = sumLanes(g8 + kG8ConicA * 8);
    g.d_conic_b = sumLanes(g8 + kG8ConicB * 8);
    g.d_conic_c = sumLanes(g8 + kG8ConicC * 8);
    g.d_color.x = sumLanes(g8 + kG8ColorR * 8);
    g.d_color.y = sumLanes(g8 + kG8ColorG * 8);
    g.d_color.z = sumLanes(g8 + kG8ColorB * 8);
    g.d_opacity = sumLanes(g8 + kG8Opacity * 8);
    return g;
}

/**
 * Scalar-reference backward replay of one tile (the pre-SIMD path,
 * kept verbatim behind RenderConfig::use_simd == false and for
 * -DCLM_DISABLE_SIMD=ON builds): per-pixel back-to-front replay with
 * std::exp, accumulating into stage.grads.
 */
void
backwardTileScalar(TileStage &stage, const RenderOutput &fwd,
                   const Image &d_image, int px0, int px1, int py0,
                   int py1, int w, float alpha_min,
                   const Vec3 &background)
{
    const StagedGaussian *hot = stage.hot.data();
    const Vec3 *colors = stage.color.data();
    for (int py = py0; py < py1; ++py) {
        const float pcy = py + 0.5f;
        for (int px = px0; px < px1; ++px) {
            size_t pi = static_cast<size_t>(py) * w + px;
            uint32_t n_contrib = fwd.n_contrib[pi];
            if (n_contrib == 0)
                continue;
            const float pcx = px + 0.5f;
            Vec3 dpix = d_image.pixel(px, py);
            float bg_dot = background.dot(dpix);

            // Replay back-to-front over the composited prefix.
            float t_acc = fwd.final_t[pi];
            float last_alpha = 0.0f;
            Vec3 last_color{0, 0, 0};
            Vec3 accum_rec{0, 0, 0};
            for (size_t pos = n_contrib; pos-- > 0;) {
                const StagedGaussian e = hot[pos];
                float dx = e.mean_x - pcx;
                float dy = e.mean_y - pcy;
                // No pixel of this row reaches the cut.
                if (-0.5f * e.row_k * dy * dy + kRowCutMargin
                    < e.power_cut)
                    continue;
                float power = -0.5f * (e.conic_a * dx * dx
                                       + e.conic_c * dy * dy)
                            - e.conic_b * dx * dy;
                if (power > 0.0f)
                    continue;
                if (power < e.power_cut)
                    continue;    // alpha < alpha_min
                float gval = std::exp(power);
                float raw_alpha = e.opacity * gval;
                bool clamped = raw_alpha > 0.99f;
                float alpha = clamped ? 0.99f : raw_alpha;
                if (alpha < alpha_min)
                    continue;

                // Transmittance in front of this Gaussian.
                t_acc = t_acc / (1.0f - alpha);
                float dchannel_dcolor = alpha * t_acc;

                float dl_dalpha = 0.0f;
                // c - (color accumulated behind this Gaussian).
                accum_rec = last_color * last_alpha
                          + accum_rec * (1.0f - last_alpha);
                last_color = colors[pos];
                dl_dalpha +=
                    (colors[pos].x - accum_rec.x) * dpix.x;
                dl_dalpha +=
                    (colors[pos].y - accum_rec.y) * dpix.y;
                dl_dalpha +=
                    (colors[pos].z - accum_rec.z) * dpix.z;

                ProjectionGrads &g = stage.grads[pos];
                g.d_color += dpix * dchannel_dcolor;

                dl_dalpha *= t_acc;
                last_alpha = alpha;

                // Background shows through less when alpha grows.
                dl_dalpha +=
                    (-fwd.final_t[pi] / (1.0f - alpha)) * bg_dot;

                if (clamped)
                    continue;    // min(0.99, .) sub-gradient = 0

                float dl_dg = e.opacity * dl_dalpha;
                g.d_opacity += gval * dl_dalpha;

                // G = exp(power(d)), d = mean - pix.
                float gdl = gval * dl_dg;
                g.d_mean2d.x += gdl * (-e.conic_a * dx
                                       - e.conic_b * dy);
                g.d_mean2d.y += gdl * (-e.conic_c * dy
                                       - e.conic_b * dx);
                g.d_conic_a += gdl * (-0.5f * dx * dx);
                g.d_conic_b += gdl * (-dx * dy);
                g.d_conic_c += gdl * (-0.5f * dy * dy);
            }
        }
    }
}

} // namespace

void
renderBackward(const GaussianModel &model, const Camera &camera,
               const RenderConfig &cfg, const RenderOutput &fwd,
               const Image &d_image, GaussianGrads &out)
{
    RenderArena scratch;
    renderBackward(model, camera, cfg, fwd, d_image, out, scratch);
}

void
renderBackward(const GaussianModel &model, const Camera &camera,
               const RenderConfig &cfg, const RenderOutput &fwd,
               const Image &d_image, GaussianGrads &out,
               RenderArena &arena)
{
    CLM_ASSERT(out.size() == model.size(),
               "gradient buffer must cover the full model");
    CLM_ASSERT(d_image.width() == camera.width()
                   && d_image.height() == camera.height(),
               "d_image size mismatch");

    const int w = camera.width();
    const int h = camera.height();
    const size_t n = fwd.projected.size();
    const size_t n_tiles = fwd.tile_ranges.size();

    // Per-subset-entry gradient accumulators for the footprint
    // quantities. A Gaussian can appear in several tiles; tiles are
    // processed in a FIXED chunk partition (the same whether execution
    // is serial or parallel) with one accumulator array per chunk,
    // reduced in chunk order afterwards — so the arithmetic, and hence
    // every output bit, never depends on thread scheduling.
    arena.grads.assign(n, ProjectionGrads{});
    const size_t n_chunks = std::max<size_t>(
        1, std::min<size_t>(n_tiles, ThreadPool::global().threads()));
    const size_t tiles_per_chunk =
        n_tiles == 0 ? 0 : (n_tiles + n_chunks - 1) / n_chunks;
    if (arena.stages.size() < n_chunks)
        arena.stages.resize(n_chunks);
    arena.grad_partials.resize(n_chunks);
    for (auto &partial : arena.grad_partials)
        partial.assign(n, ProjectionGrads{});

    // When replaying the forward activation still held by this arena,
    // the cut arrays for fwd.projected are already in place.
    if (&fwd != &arena.out || arena.cuts_alpha_min != cfg.alpha_min
        || arena.alpha_cut.size() != n) {
        computeAlphaCutPowers(fwd.projected, cfg.alpha_min, cfg.parallel,
                              arena.alpha_cut, arena.row_k);
        arena.cuts_alpha_min = cfg.alpha_min;
    }

    const float alpha_min = cfg.alpha_min;
    const Vec3 background = cfg.background;
    // Runtime-dispatched per-ISA kernel table (or the table cfg.kernels
    // forces). Must agree with the forward pass's table choice only in
    // spirit: every table runs the same IEEE op sequence, so the replay
    // recomputes the forward's alpha bits under any of them.
    const RenderKernels &kern =
        cfg.kernels ? *cfg.kernels : renderKernels();

    auto backward_chunk = [&](size_t c) {
        TileStage &stage = arena.stages[c];
        std::vector<ProjectionGrads> &acc = arena.grad_partials[c];
        const size_t t0 = c * tiles_per_chunk;
        const size_t t1 = std::min(t0 + tiles_per_chunk, n_tiles);
        for (size_t t = t0; t < t1; ++t) {
            const TileRange range = fwd.tile_ranges[t];
            const size_t len = range.size();
            if (len == 0)
                continue;
            // Stage the tile's hot fields so the replay streams
            // sequentially through memory. Shared with the forward pass
            // so the two stagings cannot desync. The SIMD kernel reads
            // the SoA mirrors and accumulates into grad8; the scalar
            // reference path accumulates into stage.grads instead.
            const bool simd_batch =
                cfg.use_simd && len < kSimdMaxStagedEntries;
            stage.stageFrom(fwd.projected, fwd.isect_vals, range,
                            arena.alpha_cut, arena.row_k,
                            /*for_backward=*/!simd_batch,
                            /*stage_soa=*/simd_batch);

            const int ty = static_cast<int>(t) / fwd.tiles_x;
            const int tx = static_cast<int>(t) % fwd.tiles_x;
            const int px0 = tx * cfg.tile_size;
            const int py0 = ty * cfg.tile_size;
            const int px1 = std::min(px0 + cfg.tile_size, w);
            const int py1 = std::min(py0 + cfg.tile_size, h);

            if (simd_batch) {
                // 8-pixel-lane SIMD replay: per-entry 8-lane gradient
                // partials, then the deterministic lane reduction.
                stage.grad8.resize(len
                                   * static_cast<size_t>(kG8Comps) * 8);
                std::memset(stage.grad8.data(), 0,
                            stage.grad8.size() * sizeof(float));
                BackwardTileArgs args;
                args.mean_x = stage.soa_mean_x.data();
                args.mean_y = stage.soa_mean_y.data();
                args.conic_a = stage.soa_conic_a.data();
                args.conic_b = stage.soa_conic_b.data();
                args.conic_c = stage.soa_conic_c.data();
                args.power_cut = stage.soa_power_cut.data();
                args.row_k = stage.soa_row_k.data();
                args.opacity = stage.soa_opacity.data();
                args.color_r = stage.soa_color_r.data();
                args.color_g = stage.soa_color_g.data();
                args.color_b = stage.soa_color_b.data();
                args.len = len;
                args.px0 = px0;
                args.px1 = px1;
                args.py0 = py0;
                args.py1 = py1;
                args.width = w;
                args.alpha_min = alpha_min;
                args.background = background;
                args.final_t = fwd.final_t.data();
                args.n_contrib = fwd.n_contrib.data();
                args.d_image = d_image.data().data();
                args.grad8 = stage.grad8.data();
                kern.backward_tile(args);

                // Flush: reduce each staged entry's 8 lanes in fixed
                // lane order, then accumulate in staged order into
                // this chunk's per-subset array.
                for (size_t j = 0; j < len; ++j)
                    accumulate(
                        acc[fwd.isect_vals[range.begin + j]],
                        reduceLanes(stage.grad8.data()
                                    + j * static_cast<size_t>(kG8Comps)
                                          * 8));
            } else {
                backwardTileScalar(stage, fwd, d_image, px0, px1, py0,
                                   py1, w, alpha_min, background);

                // Flush the tile-local accumulators into this chunk's
                // per-subset array (one entry per Gaussian per tile).
                for (size_t j = 0; j < len; ++j)
                    accumulate(acc[fwd.isect_vals[range.begin + j]],
                               stage.grads[j]);
            }
        }
    };

    if (cfg.parallel && n_chunks > 1) {
        ThreadPool::global().parallelFor(
            n_chunks, [&](size_t begin, size_t end) {
                for (size_t c = begin; c < end; ++c)
                    backward_chunk(c);
            });
    } else {
        for (size_t c = 0; c < n_chunks; ++c)
            backward_chunk(c);
    }

    // Deterministic reduction in chunk order.
    for (const auto &partial : arena.grad_partials)
        for (size_t s = 0; s < n; ++s)
            accumulate(arena.grads[s], partial[s]);

    // Chain footprint gradients through the projection. Subset entries
    // map to distinct model rows, so this parallelizes safely.
    auto chain = [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s)
            projectGaussianBackward(model, camera, cfg.sh_degree,
                                    fwd.projected[s], arena.grads[s], out);
    };
    if (cfg.parallel && n >= kMinParallelSubset)
        ThreadPool::global().parallelFor(n, chain);
    else
        chain(0, n);
}

} // namespace clm
