#include <algorithm>
#include <cmath>
#include <vector>

#include "render/rasterizer.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace clm {

void
renderBackward(const GaussianModel &model, const Camera &camera,
               const RenderConfig &cfg, const RenderOutput &fwd,
               const Image &d_image, GaussianGrads &out)
{
    CLM_ASSERT(out.size() == model.size(),
               "gradient buffer must cover the full model");
    CLM_ASSERT(d_image.width() == camera.width()
                   && d_image.height() == camera.height(),
               "d_image size mismatch");

    const int w = camera.width();
    const int h = camera.height();

    // Per-subset-entry gradient accumulators for the footprint
    // quantities. A Gaussian can appear in several tiles, so parallel
    // execution uses one accumulator array per chunk, reduced in fixed
    // chunk order afterwards (deterministic results).
    std::vector<ProjectionGrads> pg(fwd.projected.size());

    auto backward_tile = [&](size_t tile_index,
                             std::vector<ProjectionGrads> &acc_pg) {
        int ty = static_cast<int>(tile_index) / fwd.tiles_x;
        int tx = static_cast<int>(tile_index) % fwd.tiles_x;
        {
            const auto &list = fwd.tile_lists[tile_index];
            if (list.empty())
                return;
            int px0 = tx * cfg.tile_size;
            int py0 = ty * cfg.tile_size;
            int px1 = std::min(px0 + cfg.tile_size, w);
            int py1 = std::min(py0 + cfg.tile_size, h);
            for (int py = py0; py < py1; ++py) {
                for (int px = px0; px < px1; ++px) {
                    size_t pi = static_cast<size_t>(py) * w + px;
                    uint32_t n_contrib = fwd.n_contrib[pi];
                    if (n_contrib == 0)
                        continue;
                    Vec2 pix{px + 0.5f, py + 0.5f};
                    Vec3 dpix = d_image.pixel(px, py);
                    float bg_dot =
                        cfg.background.dot(dpix);

                    // Replay back-to-front over the composited prefix.
                    float t_acc = fwd.final_t[pi];
                    float last_alpha = 0.0f;
                    Vec3 last_color{0, 0, 0};
                    Vec3 accum_rec{0, 0, 0};
                    for (size_t pos = n_contrib; pos-- > 0;) {
                        uint32_t s = list[pos];
                        const ProjectedGaussian &g = fwd.projected[s];
                        Vec2 d = g.mean2d - pix;
                        float power =
                            -0.5f * (g.conic_a * d.x * d.x
                                     + g.conic_c * d.y * d.y)
                            - g.conic_b * d.x * d.y;
                        if (power > 0.0f)
                            continue;
                        float gval = std::exp(power);
                        float raw_alpha = g.opacity * gval;
                        bool clamped = raw_alpha > 0.99f;
                        float alpha = clamped ? 0.99f : raw_alpha;
                        if (alpha < cfg.alpha_min)
                            continue;

                        // Transmittance in front of this Gaussian.
                        t_acc = t_acc / (1.0f - alpha);
                        float dchannel_dcolor = alpha * t_acc;

                        float dl_dalpha = 0.0f;
                        // c - (color accumulated behind this Gaussian).
                        accum_rec = last_color * last_alpha
                                  + accum_rec * (1.0f - last_alpha);
                        last_color = g.color;
                        dl_dalpha += (g.color.x - accum_rec.x) * dpix.x;
                        dl_dalpha += (g.color.y - accum_rec.y) * dpix.y;
                        dl_dalpha += (g.color.z - accum_rec.z) * dpix.z;

                        ProjectionGrads &acc = acc_pg[s];
                        acc.d_color += dpix * dchannel_dcolor;

                        dl_dalpha *= t_acc;
                        last_alpha = alpha;

                        // Background shows through less when alpha grows.
                        dl_dalpha +=
                            (-fwd.final_t[pi] / (1.0f - alpha)) * bg_dot;

                        if (clamped)
                            continue;    // min(0.99, .) sub-gradient = 0

                        float dl_dg = g.opacity * dl_dalpha;
                        acc.d_opacity += gval * dl_dalpha;

                        // G = exp(power(d)), d = mean - pix.
                        float gdl = gval * dl_dg;
                        acc.d_mean2d.x +=
                            gdl * (-g.conic_a * d.x - g.conic_b * d.y);
                        acc.d_mean2d.y +=
                            gdl * (-g.conic_c * d.y - g.conic_b * d.x);
                        acc.d_conic_a += gdl * (-0.5f * d.x * d.x);
                        acc.d_conic_b += gdl * (-d.x * d.y);
                        acc.d_conic_c += gdl * (-0.5f * d.y * d.y);
                    }
                }
            }
        }
    };

    const size_t n_tiles = fwd.tile_lists.size();
    if (cfg.parallel && n_tiles > 1) {
        ThreadPool &pool = ThreadPool::global();
        size_t n_chunks =
            std::min<size_t>(n_tiles, pool.threads());
        std::vector<std::vector<ProjectionGrads>> partials(
            n_chunks, std::vector<ProjectionGrads>(fwd.projected.size()));
        size_t chunk = (n_tiles + n_chunks - 1) / n_chunks;
        pool.parallelFor(n_chunks, [&](size_t cb, size_t ce) {
            for (size_t c = cb; c < ce; ++c) {
                size_t t0 = c * chunk;
                size_t t1 = std::min(t0 + chunk, n_tiles);
                for (size_t t = t0; t < t1; ++t)
                    backward_tile(t, partials[c]);
            }
        });
        // Deterministic reduction in chunk order.
        for (const auto &partial : partials) {
            for (size_t s = 0; s < pg.size(); ++s) {
                pg[s].d_mean2d += partial[s].d_mean2d;
                pg[s].d_conic_a += partial[s].d_conic_a;
                pg[s].d_conic_b += partial[s].d_conic_b;
                pg[s].d_conic_c += partial[s].d_conic_c;
                pg[s].d_color += partial[s].d_color;
                pg[s].d_opacity += partial[s].d_opacity;
            }
        }
    } else {
        for (size_t t = 0; t < n_tiles; ++t)
            backward_tile(t, pg);
    }

    // Chain footprint gradients through the projection. Subset entries
    // map to distinct model rows, so this parallelizes safely.
    auto chain = [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s)
            projectGaussianBackward(model, camera, cfg.sh_degree,
                                    fwd.projected[s], pg[s], out);
    };
    if (cfg.parallel && fwd.projected.size() > 256)
        ThreadPool::global().parallelFor(fwd.projected.size(), chain);
    else
        chain(0, fwd.projected.size());
}

} // namespace clm
