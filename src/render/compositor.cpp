#include "render/compositor.hpp"

#include <algorithm>
#include <cmath>

#include "render/arena.hpp"
#include "render/simd_kernels.hpp"

namespace clm {

namespace {

/**
 * Reference per-tile compositor (the pre-SIMD scalar path, bit-exact
 * with PR 2): quads of four pixels sharing one sweep over the staged
 * tile list, plus a scalar remainder loop. Retained as the reference
 * semantics behind RenderConfig::use_simd == false and for
 * -DCLM_DISABLE_SIMD=ON builds.
 */
void
compositeTileScalar(const TileStage &stage, size_t len, int px0, int px1,
                    int py0, int py1, int w, float alpha_min, float t_min,
                    const Vec3 &background, RenderOutput &out)
{
    const StagedGaussian *hot = stage.hot.data();
    const Vec3 *colors = stage.color.data();
    for (int py = py0; py < py1; ++py) {
        const float pcy = py + 0.5f;
        // Pixels are processed in quads of four: one sweep over
        // the tile list serves four independent lanes, so the
        // staged fields are loaded once per quad and the power
        // evaluation vectorizes. Each lane runs the exact
        // scalar per-pixel arithmetic (a lane's early
        // termination just masks it out), so results are
        // bitwise identical to the one-pixel-at-a-time loop.
        int px = px0;
        for (; px + 4 <= px1; px += 4) {
            float t_acc[4] = {1.0f, 1.0f, 1.0f, 1.0f};
            Vec3 c_acc[4] = {};
            uint32_t last[4] = {0, 0, 0, 0};
            bool done[4] = {false, false, false, false};
            int active = 4;
            float pcx[4];
            for (int l = 0; l < 4; ++l)
                pcx[l] = (px + l) + 0.5f;
            for (size_t pos = 0; pos < len && active > 0; ++pos) {
                const StagedGaussian e = hot[pos];
                const float dy = e.mean_y - pcy;
                // No pixel of this row can reach the alpha cut.
                if (-0.5f * e.row_k * dy * dy + kRowCutMargin
                    < e.power_cut)
                    continue;
                float power[4];
                for (int l = 0; l < 4; ++l) {
                    float dx = e.mean_x - pcx[l];
                    power[l] = -0.5f * (e.conic_a * dx * dx
                                        + e.conic_c * dy * dy)
                             - e.conic_b * dx * dy;
                }
                // Whole quad provably below the alpha cut:
                // skip the per-lane work. (Explicit per-lane
                // comparisons: a NaN power must NOT be skipped,
                // matching the scalar loop.)
                if (power[0] < e.power_cut && power[1] < e.power_cut
                    && power[2] < e.power_cut
                    && power[3] < e.power_cut)
                    continue;
                for (int l = 0; l < 4; ++l) {
                    if (done[l])
                        continue;
                    if (power[l] > 0.0f)
                        continue;
                    if (power[l] < e.power_cut)
                        continue;    // alpha < alpha_min
                    float alpha = std::min(
                        0.99f, e.opacity * std::exp(power[l]));
                    if (alpha < alpha_min)
                        continue;
                    float t_next = t_acc[l] * (1.0f - alpha);
                    if (t_next < t_min) {
                        done[l] = true;    // lane "break"
                        --active;
                        continue;
                    }
                    c_acc[l] += colors[pos] * (alpha * t_acc[l]);
                    t_acc[l] = t_next;
                    last[l] = static_cast<uint32_t>(pos) + 1;
                }
            }
            for (int l = 0; l < 4; ++l) {
                size_t pi = static_cast<size_t>(py) * w + px + l;
                out.final_t[pi] = t_acc[l];
                out.n_contrib[pi] = last[l];
                out.image.setPixel(px + l, py,
                                   c_acc[l] + background * t_acc[l]);
            }
        }
        for (; px < px1; ++px) {
            float t_acc = 1.0f;
            Vec3 c_acc{0, 0, 0};
            uint32_t last = 0;
            const float pcx = px + 0.5f;
            for (size_t pos = 0; pos < len; ++pos) {
                const StagedGaussian e = hot[pos];
                float dx = e.mean_x - pcx;
                float dy = e.mean_y - pcy;
                // Same row cut as the quad path, so every
                // pixel of a row skips the same entries.
                if (-0.5f * e.row_k * dy * dy + kRowCutMargin
                    < e.power_cut)
                    continue;
                float power = -0.5f * (e.conic_a * dx * dx
                                       + e.conic_c * dy * dy)
                            - e.conic_b * dx * dy;
                if (power > 0.0f)
                    continue;
                if (power < e.power_cut)
                    continue;    // provably alpha < alpha_min
                float alpha =
                    std::min(0.99f, e.opacity * std::exp(power));
                if (alpha < alpha_min)
                    continue;
                float t_next = t_acc * (1.0f - alpha);
                if (t_next < t_min)
                    break;
                c_acc += colors[pos] * (alpha * t_acc);
                t_acc = t_next;
                last = static_cast<uint32_t>(pos) + 1;
            }
            size_t pi = static_cast<size_t>(py) * w + px;
            out.final_t[pi] = t_acc;
            out.n_contrib[pi] = last;
            out.image.setPixel(px, py, c_acc + background * t_acc);
        }
    }
}

} // namespace

namespace detail {

void
compositeTileRange(const RenderConfig &cfg, const TileGrid &grid,
                   const std::vector<float> &alpha_cut,
                   const std::vector<float> &row_k, TileStage &stage,
                   size_t t0, size_t t1, RenderOutput &out, bool stage_soa)
{
    const int w = grid.width;
    const int h = grid.height;
    const float alpha_min = cfg.alpha_min;
    const float t_min = cfg.transmittance_min;
    const Vec3 background = cfg.background;
    for (size_t t = t0; t < t1; ++t) {
        const TileRange range = out.tile_ranges[t];
        const size_t len = range.size();
        const int ty = static_cast<int>(t) / grid.tiles_x;
        const int tx = static_cast<int>(t) % grid.tiles_x;
        const int px0 = tx * cfg.tile_size;
        const int py0 = ty * cfg.tile_size;
        const int px1 = std::min(px0 + cfg.tile_size, w);
        const int py1 = std::min(py0 + cfg.tile_size, h);
        if (len == 0) {
            // Nothing binned: write the background directly (the
            // output buffers are not prefilled).
            for (int py = py0; py < py1; ++py) {
                for (int px = px0; px < px1; ++px) {
                    size_t pi = static_cast<size_t>(py) * w + px;
                    out.final_t[pi] = 1.0f;
                    out.n_contrib[pi] = 0;
                    out.image.setPixel(px, py, background);
                }
            }
            continue;
        }
        stage.stageFrom(out.projected, out.isect_vals, range, alpha_cut,
                        row_k, /*for_backward=*/false,
                        /*stage_soa=*/stage_soa && cfg.use_simd
                            && len < kSimdMaxStagedEntries);
        if (cfg.use_simd && len < kSimdMaxStagedEntries) {
            // SIMD path: the runtime-dispatched per-ISA kernel (or the
            // table cfg.kernels forces). The kernel body is the former
            // compositeTileSimd, one copy per F8 backend — every table
            // produces bitwise-identical pixels.
            const RenderKernels &kern =
                cfg.kernels ? *cfg.kernels : renderKernels();
            CompositeTileArgs args;
            args.hot = stage.hot.data();
            args.colors = stage.color.data();
            args.len = len;
            args.px0 = px0;
            args.px1 = px1;
            args.py0 = py0;
            args.py1 = py1;
            args.width = w;
            args.alpha_min = alpha_min;
            args.t_min = t_min;
            args.background = background;
            args.image = out.image.data().data();
            args.final_t = out.final_t.data();
            args.n_contrib = out.n_contrib.data();
            kern.composite_tile(args);
        } else {
            compositeTileScalar(stage, len, px0, px1, py0, py1, w,
                                alpha_min, t_min, background, out);
        }
    }
}

} // namespace detail

} // namespace clm
