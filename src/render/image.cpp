#include "render/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hpp"

namespace clm {

Image::Image(int width, int height, const Vec3 &fill)
{
    reset(width, height, fill);
}

void
Image::reset(int width, int height, const Vec3 &fill)
{
    resetUnfilled(width, height);
    for (size_t i = 0; i < pixels(); ++i) {
        data_[i * 3 + 0] = fill.x;
        data_[i * 3 + 1] = fill.y;
        data_[i * 3 + 2] = fill.z;
    }
}

void
Image::resetUnfilled(int width, int height)
{
    CLM_ASSERT(width >= 0 && height >= 0, "negative image size");
    width_ = width;
    height_ = height;
    data_.resize(pixels() * 3);
}

Vec3
Image::pixel(int x, int y) const
{
    size_t i = (static_cast<size_t>(y) * width_ + x) * 3;
    return {data_[i], data_[i + 1], data_[i + 2]};
}

void
Image::setPixel(int x, int y, const Vec3 &c)
{
    size_t i = (static_cast<size_t>(y) * width_ + x) * 3;
    data_[i] = c.x;
    data_[i + 1] = c.y;
    data_[i + 2] = c.z;
}

void
Image::addPixel(int x, int y, const Vec3 &c)
{
    size_t i = (static_cast<size_t>(y) * width_ + x) * 3;
    data_[i] += c.x;
    data_[i + 1] += c.y;
    data_[i + 2] += c.z;
}

double
Image::mse(const Image &other) const
{
    CLM_ASSERT(width_ == other.width_ && height_ == other.height_,
               "image size mismatch");
    if (data_.empty())
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < data_.size(); ++i) {
        double d = double(data_[i]) - double(other.data_[i]);
        acc += d * d;
    }
    return acc / data_.size();
}

double
Image::psnr(const Image &other) const
{
    double m = mse(other);
    if (m <= 0.0)
        return 99.0;    // identical images; cap like common tooling
    return 10.0 * std::log10(1.0 / m);
}

double
Image::l1(const Image &other) const
{
    CLM_ASSERT(width_ == other.width_ && height_ == other.height_,
               "image size mismatch");
    if (data_.empty())
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < data_.size(); ++i)
        acc += std::abs(double(data_[i]) - double(other.data_[i]));
    return acc / data_.size();
}

void
Image::writePpm(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        CLM_FATAL("cannot open ", path, " for writing");
    std::fprintf(f, "P6\n%d %d\n255\n", width_, height_);
    for (size_t i = 0; i < data_.size(); ++i) {
        float v = std::clamp(data_[i], 0.0f, 1.0f);
        unsigned char byte = static_cast<unsigned char>(v * 255.0f + 0.5f);
        std::fwrite(&byte, 1, 1, f);
    }
    std::fclose(f);
}

} // namespace clm
