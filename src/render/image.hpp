/**
 * @file
 * Dense 3-channel float image plus the PSNR metric used throughout the
 * paper's quality evaluation (Figure 9).
 */

#ifndef CLM_RENDER_IMAGE_HPP
#define CLM_RENDER_IMAGE_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "math/vec.hpp"

namespace clm {

/** Row-major HxWx3 float image with values nominally in [0, 1]. */
class Image
{
  public:
    Image() = default;

    /** Allocate a @p width x @p height image filled with @p fill. */
    Image(int width, int height, const Vec3 &fill = {0, 0, 0});

    /** Re-shape to @p width x @p height and refill, reusing the existing
     *  buffer when large enough (arena render paths call this per view). */
    void reset(int width, int height, const Vec3 &fill = {0, 0, 0});

    /** Re-shape without refilling: existing pixel contents are
     *  unspecified. For callers that overwrite every pixel anyway. */
    void resetUnfilled(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    size_t pixels() const
    { return static_cast<size_t>(width_) * height_; }

    /** Pixel access (no bounds check in release). */
    Vec3 pixel(int x, int y) const;
    void setPixel(int x, int y, const Vec3 &c);
    void addPixel(int x, int y, const Vec3 &c);

    /** Raw channel buffer: 3 floats per pixel, row-major. */
    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** Mean squared error against @p other (same dimensions). */
    double mse(const Image &other) const;

    /** Peak signal-to-noise ratio in dB against @p other (peak = 1.0). */
    double psnr(const Image &other) const;

    /** Mean absolute (L1) error against @p other. */
    double l1(const Image &other) const;

    /** Write a binary PPM (P6) file, clamping to [0, 1]. */
    void writePpm(const std::string &path) const;

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<float> data_;
};

} // namespace clm

#endif // CLM_RENDER_IMAGE_HPP
