#include "sim/cost_model.hpp"

#include <algorithm>

#include "gaussian/attributes.hpp"
#include "util/logging.hpp"

namespace clm {

namespace {

/** The constants in CostModelConfig are calibrated on this bandwidth. */
constexpr double kReferenceDramBw = 1008.0e9;
constexpr double kReferenceFlops = 82.6e12;

} // namespace

CostModel::CostModel(const DeviceSpec &device, CostModelConfig config)
    : device_(device), config_(config)
{
    // Rendering kernels on these workloads are mostly DRAM-bound with a
    // small compute component: blend the two ratios 90/10. This puts the
    // 2080 Ti at ~2x the 4090's kernel time, matching the ~1.5-2x the
    // paper measures rather than the 7x FLOP ratio.
    double bw_ratio = kReferenceDramBw / device_.dram_bw;
    double flop_ratio = kReferenceFlops / device_.flops;
    compute_scale_ = 0.9 * bw_ratio + 0.1 * flop_ratio;
}

double
CostModel::pcieSeconds(double bytes) const
{
    if (bytes <= 0)
        return 0.0;
    return device_.pcie_latency_s
         + bytes / (device_.pcie_bw * config_.pcie_efficiency);
}

double
CostModel::kernelSeconds(double gaussians, double pixels) const
{
    return (config_.kernel_sec_per_gaussian * gaussians
            + config_.kernel_sec_per_pixel * pixels)
           * compute_scale_;
}

double
CostModel::cpuAdamSeconds(double gaussians, bool scattered) const
{
    double params = gaussians * kParamsPerGaussian;
    double throughput = device_.adam_params_per_sec_per_core
                        * device_.cpu_cores
                        * config_.cpu_adam_parallel_efficiency;
    double t = params / throughput;
    if (scattered)
        t *= config_.cpu_adam_scatter_penalty;
    return t;
}

double
CostModel::duration(const PlanOp &op) const
{
    if (op.fixed_seconds > 0)
        return op.fixed_seconds;

    switch (op.kind) {
      case OpKind::Cull:
        return config_.cull_sec_per_gaussian * op.gaussians
               * compute_scale_;
      case OpKind::Schedule:
        return op.fixed_seconds;    // zero when unmeasured
      case OpKind::Forward:
        return kernelSeconds(op.gaussians, op.pixels)
               * config_.forward_fraction;
      case OpKind::Backward:
        return kernelSeconds(op.gaussians, op.pixels)
               * (1.0 - config_.forward_fraction);
      case OpKind::LoadParams:
        return pcieSeconds(op.h2d_bytes)
               + config_.pipeline_sync_overhead_s;
      case OpKind::LoadAll:
        return pcieSeconds(op.h2d_bytes);
      case OpKind::StoreGrads:
        // RMW: the fetch and the store share the link directions; the
        // slower direction bounds the kernel.
        return std::max(pcieSeconds(op.d2h_bytes),
                        pcieSeconds(op.h2d_bytes));
      case OpKind::StoreAll:
        return pcieSeconds(op.d2h_bytes);
      case OpKind::WriteCritical:
        return pcieSeconds(op.h2d_bytes);
      case OpKind::CopyCached:
      case OpKind::CarryGrads:
        return op.dram_bytes
               / (device_.dram_bw * config_.dram_copy_efficiency);
      case OpKind::CpuAdam:
        return cpuAdamSeconds(op.gaussians, op.scattered_adam);
      case OpKind::GpuAdam:
        return config_.gpu_adam_sec_per_gaussian * op.gaussians
               * compute_scale_;
    }
    CLM_PANIC("unreachable op kind");
}

} // namespace clm
