#include "sim/memory_model.hpp"

#include "gaussian/attributes.hpp"
#include "util/logging.hpp"

namespace clm {

double
modelStateDemandBytes(double n_gaussians)
{
    return n_gaussians * kModelStateBytesPerGaussian;
}

MemoryBreakdown
gpuMemoryDemand(SystemKind system, const SceneSpec &scene,
                double n, const DeviceSpec &device,
                const MemoryModelConfig &cfg)
{
    MemoryBreakdown b;
    b.reserve_bytes = device.gpu_reserve_bytes;

    double pixels = static_cast<double>(scene.paper_width)
                  * scene.paper_height;
    double pixel_act = pixels * cfg.act_bytes_per_pixel;
    double base_act = n * cfg.act_bytes_per_gaussian_base;
    double culled_act =
        n * scene.mean_rho * cfg.act_bytes_per_gaussian_culled;

    switch (system) {
      case SystemKind::Baseline:
        // Params + grads + two Adam moments, all resident; fused culling
        // keeps per-input-Gaussian intermediates alive.
        b.model_state_bytes = n * kModelStateBytesPerGaussian;
        b.activation_bytes = base_act
                           + n * cfg.act_bytes_per_gaussian_fused
                           + pixel_act;
        break;
      case SystemKind::EnhancedBaseline:
        b.model_state_bytes = n * kModelStateBytesPerGaussian;
        b.activation_bytes = base_act + culled_act + pixel_act;
        break;
      case SystemKind::NaiveOffload:
        // Optimizer state lives on the CPU; the GPU transiently holds all
        // parameters plus the accumulating gradient tensor.
        b.model_state_bytes =
            n * 2.0 * kParamsPerGaussian * sizeof(float);
        b.activation_bytes = base_act + culled_act + pixel_act;
        break;
      case SystemKind::Clm: {
        // Resident: critical attributes of all Gaussians; double buffers
        // sized for the worst-case in-frustum count.
        double buffer_rows = n * scene.max_rho * cfg.clm_buffer_slack;
        double buffer_bytes =
            2.0 * buffer_rows
            * (kNonCriticalBytesPerGaussian
               + kParamsPerGaussian * sizeof(float));
        b.model_state_bytes =
            n * kCriticalBytesPerGaussian + buffer_bytes;
        b.activation_bytes = base_act + culled_act + pixel_act;
        break;
      }
    }
    return b;
}

double
maxTrainableGaussians(SystemKind system, const SceneSpec &scene,
                      const DeviceSpec &device,
                      const MemoryModelConfig &cfg)
{
    double capacity = device.gpu_memory_bytes;
    auto fits = [&](double n) {
        return gpuMemoryDemand(system, scene, n, device, cfg).total()
               <= capacity;
    };
    if (!fits(1.0))
        return 0.0;
    double lo = 1.0, hi = 1.0;
    while (fits(hi))
        hi *= 2.0;
    for (int it = 0; it < 64; ++it) {
        double mid = 0.5 * (lo + hi);
        if (fits(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace clm
