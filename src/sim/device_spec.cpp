#include "sim/device_spec.hpp"

namespace clm {

DeviceSpec
DeviceSpec::rtx4090()
{
    DeviceSpec d;
    d.name = "RTX 4090";
    d.gpu_memory_bytes = 24.0e9;
    d.gpu_reserve_bytes = 1.6e9;
    d.flops = 82.6e12;
    d.dram_bw = 1008.0e9;
    d.pcie_bw = 24.0e9;          // PCIe 4.0 x16, effective
    d.pcie_latency_s = 12e-6;
    d.cpu_cores = 16;            // Threadripper PRO 5955WX
    d.host_memory_bytes = 128.0e9;
    d.adam_params_per_sec_per_core = 220.0e6;
    return d;
}

DeviceSpec
DeviceSpec::rtx2080ti()
{
    DeviceSpec d;
    d.name = "RTX 2080 Ti";
    d.gpu_memory_bytes = 11.0e9;
    d.gpu_reserve_bytes = 0.9e9;
    d.flops = 13.4e12;
    d.dram_bw = 616.0e9;
    d.pcie_bw = 12.0e9;          // PCIe 3.0 x16, effective
    d.pcie_latency_s = 15e-6;
    d.cpu_cores = 20;            // Xeon E5-2660 v3
    d.host_memory_bytes = 256.0e9;
    d.adam_params_per_sec_per_core = 110.0e6;    // older, slower cores
    return d;
}

} // namespace clm
