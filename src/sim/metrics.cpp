#include "sim/metrics.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace clm {

namespace {

/** Estimated DRAM traffic of an op (kernels are ~80% bandwidth-bound). */
double
kernelDramBytes(const PlanOp &op, const OpRecord &rec,
                const DeviceSpec &device)
{
    switch (op.kind) {
      case OpKind::Forward:
      case OpKind::Backward:
      case OpKind::Cull:
      case OpKind::GpuAdam:
        return 0.8 * rec.duration() * device.dram_bw;
      default:
        return op.dram_bytes + op.h2d_bytes + op.d2h_bytes;
    }
}

bool
isComputeKernel(const PlanOp &op)
{
    return op.engine == EngineId::ComputeStream;
}

} // namespace

HardwareUtilization
computeUtilization(const BatchPlan &plan, const Timeline &tl,
                   const DeviceSpec &device)
{
    CLM_ASSERT(tl.records.size() == plan.ops.size(), "timeline mismatch");
    HardwareUtilization u;
    if (tl.makespan <= 0)
        return u;

    double h2d = 0, d2h = 0, dram_read = 0, dram_write = 0;
    for (size_t i = 0; i < plan.ops.size(); ++i) {
        const PlanOp &op = plan.ops[i];
        h2d += op.h2d_bytes;
        d2h += op.d2h_bytes;
        double dram = kernelDramBytes(op, tl.records[i], device);
        // Roughly 60/40 read/write split for kernels; transfers write on
        // load and read on store.
        dram_read += 0.6 * dram;
        dram_write += 0.4 * dram;
    }

    u.cpu_util = 100.0 * tl.engineBusy(plan, EngineId::CpuThread)
               / tl.makespan;
    u.sm_active = 100.0 * tl.engineBusy(plan, EngineId::ComputeStream)
                / tl.makespan;
    u.pcie_rx_util = 100.0 * h2d / (tl.makespan * device.pcie_bw);
    u.pcie_tx_util = 100.0 * d2h / (tl.makespan * device.pcie_bw);
    u.dram_read_util =
        100.0 * dram_read / (tl.makespan * device.dram_bw);
    u.dram_write_util =
        100.0 * dram_write / (tl.makespan * device.dram_bw);

    auto clamp_pct = [](double &v) { v = std::min(v, 100.0); };
    clamp_pct(u.cpu_util);
    clamp_pct(u.sm_active);
    clamp_pct(u.pcie_rx_util);
    clamp_pct(u.pcie_tx_util);
    clamp_pct(u.dram_read_util);
    clamp_pct(u.dram_write_util);
    return u;
}

std::vector<double>
gpuIdleSamples(const BatchPlan &plan, const Timeline &tl, int n_samples)
{
    auto intervals = tl.engineIntervals(plan, EngineId::ComputeStream);
    std::vector<double> samples;
    samples.reserve(n_samples);
    size_t cursor = 0;
    for (int s = 0; s < n_samples; ++s) {
        double t = tl.makespan * (s + 0.5) / n_samples;
        while (cursor < intervals.size() && intervals[cursor].second < t)
            ++cursor;
        bool busy = cursor < intervals.size()
                 && intervals[cursor].first <= t
                 && t <= intervals[cursor].second;
        samples.push_back(busy ? 0.0 : 100.0);
    }
    return samples;
}

RuntimeBreakdown
computeBreakdown(const BatchPlan &plan, const Timeline &tl)
{
    RuntimeBreakdown b;
    b.total = tl.makespan;

    double adam_total = 0;
    for (size_t i = 0; i < plan.ops.size(); ++i) {
        const PlanOp &op = plan.ops[i];
        double dur = tl.records[i].duration();
        if (isComputeKernel(op))
            b.compute += dur;
        else if (op.engine == EngineId::CommStream)
            b.communication += dur;
        else if (op.kind == OpKind::Schedule)
            b.scheduling += dur;
        else if (op.kind == OpKind::CpuAdam)
            adam_total += dur;
    }
    b.trailing_adam = adamTrailingSeconds(plan, tl);
    b.overlapped_adam = std::max(0.0, adam_total - b.trailing_adam);
    return b;
}

RuntimeBreakdown
computeBreakdown(const StageTimings &t)
{
    RuntimeBreakdown b;
    b.total = t.batch_seconds;
    b.compute = t[TrainStage::Compute];
    b.communication = t.communication();
    b.scheduling = t[TrainStage::Schedule];
    if (t.finalize_inline) {
        // Finalization blocked the critical path between microbatches:
        // all of it is non-overlapped, wherever it fell in the batch.
        b.trailing_adam = t[TrainStage::Finalize];
        b.overlapped_adam = 0;
    } else {
        b.trailing_adam = t.trailing_adam_seconds;
        b.overlapped_adam = std::max(
            0.0, t[TrainStage::Finalize] - t.trailing_adam_seconds);
    }
    return b;
}

std::vector<double>
gpuIdleSamples(const StageTimings &t, int n_samples)
{
    // Reconstruct a sequential busy/idle timeline from the measured
    // durations: scheduling (idle), then per microbatch the staging stall
    // (idle) followed by compute (busy), then trailing Adam (idle). With
    // prefetch enabled the stalls are the *exposed* staging time, exactly
    // what SMs-active sampling would see.
    struct Segment
    {
        double duration;
        bool busy;
    };
    std::vector<Segment> segments;
    segments.push_back({t[TrainStage::Schedule], false});
    for (const StageTimings::Microbatch &mb : t.microbatches) {
        segments.push_back({mb.wait, false});
        segments.push_back({mb.compute, true});
    }
    // Inline finalization stalls the compute engine for its full
    // duration; a dedicated Adam thread exposes only the trailing part.
    segments.push_back({t.finalize_inline ? t[TrainStage::Finalize]
                                          : t.trailing_adam_seconds,
                        false});

    double span = 0;
    for (const Segment &s : segments)
        span += s.duration;
    std::vector<double> samples;
    samples.reserve(n_samples);
    if (span <= 0)
        return samples;
    size_t cursor = 0;
    double cursor_end = segments[0].duration;
    for (int s = 0; s < n_samples; ++s) {
        double at = span * (s + 0.5) / n_samples;
        while (cursor + 1 < segments.size() && cursor_end < at) {
            ++cursor;
            cursor_end += segments[cursor].duration;
        }
        samples.push_back(segments[cursor].busy ? 0.0 : 100.0);
    }
    return samples;
}

double
adamTrailingSeconds(const BatchPlan &plan, const Timeline &tl)
{
    double last_transfer_end = 0;
    double last_adam_end = 0;
    for (size_t i = 0; i < plan.ops.size(); ++i) {
        const PlanOp &op = plan.ops[i];
        if (op.kind == OpKind::StoreGrads || op.kind == OpKind::StoreAll)
            last_transfer_end =
                std::max(last_transfer_end, tl.records[i].end);
        if (op.kind == OpKind::CpuAdam)
            last_adam_end = std::max(last_adam_end, tl.records[i].end);
    }
    return std::max(0.0, last_adam_end - last_transfer_end);
}

} // namespace clm
