/**
 * @file
 * Hardware descriptions of the paper's two testbeds (§6.1): an RTX 4090
 * (24 GB, PCIe 4.0, Threadripper 5955WX 16 cores) and an RTX 2080 Ti
 * (11 GB, PCIe 3.0, Xeon E5-2660v3 20 cores). The 4090 has ~7x the FLOPs
 * and ~1.6x the DRAM bandwidth of the 2080 Ti; PCIe 4.0 has 2x the
 * bandwidth of PCIe 3.0 — the ratios the paper's analysis leans on.
 */

#ifndef CLM_SIM_DEVICE_SPEC_HPP
#define CLM_SIM_DEVICE_SPEC_HPP

#include <cstddef>
#include <string>

namespace clm {

/** One GPU + host testbed. */
struct DeviceSpec
{
    std::string name;

    /** @name GPU */
    /// @{
    double gpu_memory_bytes = 0;    //!< Total device memory.
    double gpu_reserve_bytes = 0;   //!< Framework/fragmentation reserve.
    double flops = 0;               //!< Peak fp32 FLOP/s.
    double dram_bw = 0;             //!< Device memory bandwidth (B/s).
    /// @}

    /** @name Interconnect */
    /// @{
    double pcie_bw = 0;             //!< Effective PCIe bandwidth (B/s).
    double pcie_latency_s = 0;      //!< Per-transfer launch latency.
    /// @}

    /** @name Host */
    /// @{
    int cpu_cores = 0;
    double host_memory_bytes = 0;
    /** Adam parameter-update throughput per core (params/s), in the
     *  ballpark of ZeRO-Offload's vectorized CPU Adam. */
    double adam_params_per_sec_per_core = 0;
    /// @}

    /** Usable GPU bytes after the reserve. */
    double usableGpuBytes() const
    { return gpu_memory_bytes - gpu_reserve_bytes; }

    /** The RTX 4090 testbed (PCIe 4.0, 128 GB RAM, 16 cores). */
    static DeviceSpec rtx4090();

    /** The RTX 2080 Ti testbed (PCIe 3.0, 256 GB RAM, 20 cores). */
    static DeviceSpec rtx2080ti();
};

} // namespace clm

#endif // CLM_SIM_DEVICE_SPEC_HPP
