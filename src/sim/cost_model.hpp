/**
 * @file
 * Per-op duration model. Rendering kernels are modeled as bandwidth-bound
 * (they move a roughly fixed number of bytes per processed Gaussian and
 * per pixel), which reproduces the paper's observation that the 4090 is
 * only ~1.5x faster than the 2080 Ti on these kernels despite having ~7x
 * the FLOPs. Transfers are bytes / effective-PCIe-bandwidth + latency;
 * CPU Adam is parameters / (cores x per-core throughput).
 */

#ifndef CLM_SIM_COST_MODEL_HPP
#define CLM_SIM_COST_MODEL_HPP

#include "offload/batch_plan.hpp"
#include "sim/device_spec.hpp"

namespace clm {

/** Calibration constants, expressed on the RTX 4090 and scaled to other
 *  devices by bandwidth/FLOP ratios. */
struct CostModelConfig
{
    /** Forward+backward kernel seconds per processed Gaussian (4090). */
    double kernel_sec_per_gaussian = 24e-9;
    /** Forward+backward kernel seconds per output pixel (4090). */
    double kernel_sec_per_pixel = 3.2e-9;
    /** Fraction of the fwd+bwd cost attributed to the forward pass. */
    double forward_fraction = 0.35;
    /** Culling kernel seconds per Gaussian (4090) — a trivial kernel. */
    double cull_sec_per_gaussian = 0.35e-9;
    /** GPU Adam seconds per Gaussian (4090). */
    double gpu_adam_sec_per_gaussian = 1.2e-9;
    /** Fraction of peak PCIe bandwidth a batched gather/scatter reaches. */
    double pcie_efficiency = 0.85;
    /** Fraction of peak DRAM bandwidth GPU-to-GPU copies reach. */
    double dram_copy_efficiency = 0.70;
    /** Parallel efficiency of the multi-core CPU Adam. */
    double cpu_adam_parallel_efficiency = 0.85;
    /** Slowdown of CPU Adam over a *scattered* index subset relative to
     *  a bulk sweep (random access + per-record dispatch). */
    double cpu_adam_scatter_penalty = 2.0;
    /** Per-microbatch stream-sync/launch overhead of the pipelined
     *  selective load path (events, double-buffer handoff, GIL). */
    double pipeline_sync_overhead_s = 1.5e-3;
};

/** Computes the duration of plan ops on a device. */
class CostModel
{
  public:
    CostModel(const DeviceSpec &device, CostModelConfig config = {});

    /** Seconds op @p op takes on this device. */
    double duration(const PlanOp &op) const;

    const DeviceSpec &device() const { return device_; }
    const CostModelConfig &config() const { return config_; }

    /** Seconds to move @p bytes over PCIe (one direction). */
    double pcieSeconds(double bytes) const;

    /** Seconds for a rendering kernel over G Gaussians and P pixels. */
    double kernelSeconds(double gaussians, double pixels) const;

    /** Seconds of CPU Adam over @p gaussians (all 59 params each).
     *  @param scattered True for scattered-subset updates. */
    double cpuAdamSeconds(double gaussians, bool scattered = false) const;

  private:
    DeviceSpec device_;
    CostModelConfig config_;
    double compute_scale_;    //!< Kernel slowdown vs the 4090 reference.
};

} // namespace clm

#endif // CLM_SIM_COST_MODEL_HPP
