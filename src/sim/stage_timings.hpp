/**
 * @file
 * Measured per-stage wall-clock accounting for the offload pipeline. The
 * TransferEngine (and the trainers driving it) stamp every pipeline stage
 * — scheduling, pinned-pool gather, cached copy, compute, RMW gradient
 * scatter, carried-gradient accumulation, finalization Adam — into a
 * StageTimings record. sim/metrics converts the record into the same
 * RuntimeBreakdown / idle-sample shapes the discrete-event simulator
 * produces, so the Figure 13/15 benches can print measured stage timers
 * next to simulated ones instead of recomputing either.
 */

#ifndef CLM_SIM_STAGE_TIMINGS_HPP
#define CLM_SIM_STAGE_TIMINGS_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace clm {

class MetricsRegistry;

/** The instrumented stages of one offloaded training batch. */
enum class TrainStage : uint8_t
{
    Schedule = 0,    //!< Culling + batch planning (ordering, cache, fin).
    Gather,          //!< Selective pinned->device parameter gather (H2D).
    CacheCopy,       //!< Device-to-device cached parameter copy.
    Compute,         //!< Forward + backward of one microbatch.
    Scatter,         //!< RMW gradient offload device->pinned (D2H).
    Carry,           //!< On-device carried-gradient accumulation.
    Finalize,        //!< Subset CPU Adam + parameter write-back.
};

constexpr int kNumTrainStages = 7;

/** Short display name of a stage (bench table headers). */
const char *stageName(TrainStage s);

/** Tracer span name of a stage ("train.schedule", "train.gather", ...;
 *  a string literal, as the tracer requires). */
const char *stageSpanName(TrainStage s);

/** Accumulated measured stage timings, potentially over several batches. */
struct StageTimings
{
    /** Busy seconds per stage (indexed by TrainStage). */
    std::array<double, kNumTrainStages> seconds{};
    /** Number of timed invocations per stage. */
    std::array<uint64_t, kNumTrainStages> count{};

    /** One microbatch as the compute engine saw it: how long it stalled
     *  waiting for staging, then how long it computed. */
    struct Microbatch
    {
        double wait = 0;       //!< Exposed staging stall (GPU idle).
        double compute = 0;    //!< Forward + backward busy time.
    };
    std::vector<Microbatch> microbatches;

    /** Wall-clock seconds across all accounted batches. */
    double batch_seconds = 0;
    /** Finalization work left after the last gradient scatter (the
     *  Table 5b "trailing Adam" quantity, measured). */
    double trailing_adam_seconds = 0;
    /** True when finalization ran inline on the critical path (no
     *  dedicated Adam thread): then *all* Finalize time is
     *  non-overlapped, regardless of where it fell in the batch. */
    bool finalize_inline = false;

    /** Per-microbatch samples are capped at this many entries (the
     *  scalar stage counters keep accumulating past the cap), bounding
     *  memory over production-length runs. */
    static constexpr size_t kMaxMicrobatchSamples = 1u << 16;

    /** Busy seconds of one stage. */
    double operator[](TrainStage s) const
    { return seconds[static_cast<size_t>(s)]; }

    /** Record @p secs of busy time for stage @p s. When the global
     *  tracer is enabled, also records a train.<stage> span covering
     *  the interval that just elapsed — the offload pipeline's stage
     *  accounting and the tracer share this single entry point. */
    void add(TrainStage s, double secs);

    /** Record one microbatch's (stall, compute) pair. */
    void noteMicrobatch(double wait_seconds, double compute_seconds);

    /** Fold @p other into this record. */
    void merge(const StageTimings &other);

    /** Discard everything. */
    void reset();

    /** Sum of all stage busy seconds. */
    double total() const;

    /** Transfer busy seconds: gather + cached copy + scatter + carry. */
    double communication() const;

    /** Publish the record into @p registry: counter
     *  train.stage.<name>.calls and gauge train.stage.<name>.busy_s
     *  per stage, plus train.batch_s / train.trailing_adam_s gauges —
     *  how the offload stage accounting reaches the unified
     *  JSON-lines metrics snapshot. */
    void exportTo(MetricsRegistry &registry) const;
};

} // namespace clm

#endif // CLM_SIM_STAGE_TIMINGS_HPP
