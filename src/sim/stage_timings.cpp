#include "sim/stage_timings.hpp"

#include "util/logging.hpp"

namespace clm {

const char *
stageName(TrainStage s)
{
    switch (s) {
      case TrainStage::Schedule:
        return "Schedule";
      case TrainStage::Gather:
        return "Gather";
      case TrainStage::CacheCopy:
        return "CacheCopy";
      case TrainStage::Compute:
        return "Compute";
      case TrainStage::Scatter:
        return "Scatter";
      case TrainStage::Carry:
        return "Carry";
      case TrainStage::Finalize:
        return "Finalize";
    }
    CLM_PANIC("unreachable stage");
}

void
StageTimings::add(TrainStage s, double secs)
{
    seconds[static_cast<size_t>(s)] += secs;
    count[static_cast<size_t>(s)] += 1;
}

void
StageTimings::noteMicrobatch(double wait_seconds, double compute_seconds)
{
    if (microbatches.size() < kMaxMicrobatchSamples)
        microbatches.push_back({wait_seconds, compute_seconds});
}

void
StageTimings::merge(const StageTimings &other)
{
    for (int s = 0; s < kNumTrainStages; ++s) {
        seconds[s] += other.seconds[s];
        count[s] += other.count[s];
    }
    microbatches.insert(microbatches.end(), other.microbatches.begin(),
                        other.microbatches.end());
    batch_seconds += other.batch_seconds;
    trailing_adam_seconds += other.trailing_adam_seconds;
    finalize_inline = finalize_inline || other.finalize_inline;
}

void
StageTimings::reset()
{
    seconds.fill(0);
    count.fill(0);
    microbatches.clear();
    batch_seconds = 0;
    trailing_adam_seconds = 0;
    finalize_inline = false;
}

double
StageTimings::total() const
{
    double acc = 0;
    for (double s : seconds)
        acc += s;
    return acc;
}

double
StageTimings::communication() const
{
    return (*this)[TrainStage::Gather] + (*this)[TrainStage::CacheCopy]
           + (*this)[TrainStage::Scatter] + (*this)[TrainStage::Carry];
}

} // namespace clm
