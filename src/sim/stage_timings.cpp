#include "sim/stage_timings.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace clm {

const char *
stageName(TrainStage s)
{
    switch (s) {
      case TrainStage::Schedule:
        return "Schedule";
      case TrainStage::Gather:
        return "Gather";
      case TrainStage::CacheCopy:
        return "CacheCopy";
      case TrainStage::Compute:
        return "Compute";
      case TrainStage::Scatter:
        return "Scatter";
      case TrainStage::Carry:
        return "Carry";
      case TrainStage::Finalize:
        return "Finalize";
    }
    CLM_PANIC("unreachable stage");
}

const char *
stageSpanName(TrainStage s)
{
    switch (s) {
      case TrainStage::Schedule:
        return "train.schedule";
      case TrainStage::Gather:
        return "train.gather";
      case TrainStage::CacheCopy:
        return "train.cachecopy";
      case TrainStage::Compute:
        return "train.compute";
      case TrainStage::Scatter:
        return "train.scatter";
      case TrainStage::Carry:
        return "train.carry";
      case TrainStage::Finalize:
        return "train.finalize";
    }
    CLM_PANIC("unreachable stage");
}

void
StageTimings::add(TrainStage s, double secs)
{
    seconds[static_cast<size_t>(s)] += secs;
    count[static_cast<size_t>(s)] += 1;
    // Callers time stages as "do work; add(stage, elapsed)", so the
    // interval being reported is the one that just ended: [now - secs,
    // now] on the tracer clock.
    if (Tracer *tracer = Tracer::current()) {
        const uint64_t now_ns = tracer->nowNs();
        const uint64_t dur_ns = secs > 0
            ? static_cast<uint64_t>(secs * 1e9) : 0;
        tracer->record(stageSpanName(s), currentTraceId(),
                       now_ns >= dur_ns ? now_ns - dur_ns : 0, now_ns);
    }
}

void
StageTimings::noteMicrobatch(double wait_seconds, double compute_seconds)
{
    if (microbatches.size() < kMaxMicrobatchSamples)
        microbatches.push_back({wait_seconds, compute_seconds});
}

void
StageTimings::merge(const StageTimings &other)
{
    for (int s = 0; s < kNumTrainStages; ++s) {
        seconds[s] += other.seconds[s];
        count[s] += other.count[s];
    }
    microbatches.insert(microbatches.end(), other.microbatches.begin(),
                        other.microbatches.end());
    batch_seconds += other.batch_seconds;
    trailing_adam_seconds += other.trailing_adam_seconds;
    finalize_inline = finalize_inline || other.finalize_inline;
}

void
StageTimings::reset()
{
    seconds.fill(0);
    count.fill(0);
    microbatches.clear();
    batch_seconds = 0;
    trailing_adam_seconds = 0;
    finalize_inline = false;
}

double
StageTimings::total() const
{
    double acc = 0;
    for (double s : seconds)
        acc += s;
    return acc;
}

double
StageTimings::communication() const
{
    return (*this)[TrainStage::Gather] + (*this)[TrainStage::CacheCopy]
           + (*this)[TrainStage::Scatter] + (*this)[TrainStage::Carry];
}

void
StageTimings::exportTo(MetricsRegistry &registry) const
{
    for (int s = 0; s < kNumTrainStages; ++s) {
        const std::string base =
            std::string("train.stage.") + stageName(static_cast<TrainStage>(s));
        // Counters are monotonic: re-exporting adds the delta a caller
        // accumulated since reset(); gauges are last-write-wins.
        registry.counter(base + ".calls").add(count[s]);
        registry.gauge(base + ".busy_s").set(seconds[s]);
    }
    registry.gauge("train.batch_s").set(batch_seconds);
    registry.gauge("train.trailing_adam_s").set(trailing_adam_seconds);
}

} // namespace clm
