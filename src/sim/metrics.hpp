/**
 * @file
 * Hardware-utilization metrics from two sources. (a) The simulated
 * timeline: the quantities Nsight Systems provides in the paper —
 * SMs-active idle-rate CDF (Figure 15), CPU-core utilization, GPU DRAM
 * read/write bandwidth utilization and PCIe RX/TX utilization (Table 7),
 * plus the runtime decomposition of Figure 13. (b) Measured StageTimings
 * recorded by the TransferEngine while the functional trainers run: the
 * same RuntimeBreakdown / idle-sample shapes, derived from real stage
 * timers instead of the cost model.
 */

#ifndef CLM_SIM_METRICS_HPP
#define CLM_SIM_METRICS_HPP

#include <vector>

#include "math/stats.hpp"
#include "sim/engine.hpp"
#include "sim/stage_timings.hpp"

namespace clm {

/** Table 7's row set, all values in percent. */
struct HardwareUtilization
{
    double cpu_util = 0;
    double dram_read_util = 0;
    double dram_write_util = 0;
    double pcie_rx_util = 0;    //!< CPU -> GPU direction.
    double pcie_tx_util = 0;    //!< GPU -> CPU direction.
    double sm_active = 0;       //!< Mean SMs-active (compute busy share).
};

/** Compute Table 7-style utilizations from a timeline. */
HardwareUtilization computeUtilization(const BatchPlan &plan,
                                       const Timeline &timeline,
                                       const DeviceSpec &device);

/**
 * Sample the GPU idle rate (100 - SMs Active) at @p n_samples uniform
 * times across the makespan, emulating the 10 kHz GPU_METRICS sampling of
 * §6.4. Feed the result to EmpiricalCdf for the Figure 15 curves.
 */
std::vector<double> gpuIdleSamples(const BatchPlan &plan,
                                   const Timeline &timeline,
                                   int n_samples = 2000);

/** Figure 13's per-batch runtime decomposition (seconds). */
struct RuntimeBreakdown
{
    double total = 0;
    double compute = 0;            //!< GPU kernel busy time.
    double communication = 0;      //!< PCIe transfer busy time.
    double scheduling = 0;         //!< CLM planning (cull + TSP).
    double overlapped_adam = 0;    //!< CPU Adam hidden under GPU work.
    double trailing_adam = 0;      //!< CPU Adam after the last transfer.
};

/** Decompose a simulated batch the way Figure 13 does. */
RuntimeBreakdown computeBreakdown(const BatchPlan &plan,
                                  const Timeline &timeline);

/**
 * Decompose *measured* stage timers (recorded by the TransferEngine) the
 * way Figure 13 does: compute = forward+backward busy time, communication
 * = gather + cached copy + scatter + carry busy time, scheduling = cull +
 * plan, and finalization Adam split into its overlapped and trailing
 * shares.
 */
RuntimeBreakdown computeBreakdown(const StageTimings &timings);

/**
 * Sample the measured GPU idle rate from stage timers: the compute engine
 * is busy during each microbatch's forward/backward and idle while it
 * stalls on staging, scheduling, or trailing Adam. Same sampling scheme
 * as the simulated overload, so both feed EmpiricalCdf for Figure 15.
 */
std::vector<double> gpuIdleSamples(const StageTimings &timings,
                                   int n_samples = 2000);

/**
 * CPU Adam trailing time (Table 5b): time from the completion of the last
 * GPU->CPU gradient transfer to the completion of the last CPU Adam op.
 */
double adamTrailingSeconds(const BatchPlan &plan, const Timeline &timeline);

} // namespace clm

#endif // CLM_SIM_METRICS_HPP
