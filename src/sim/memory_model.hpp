/**
 * @file
 * GPU memory-demand model for the four systems (§6.2, Figures 8 and 10).
 * Components: model states (the 59 x 4 x 4-byte estimate of §2.2, or the
 * system's reduced form), per-Gaussian bookkeeping, per-in-frustum
 * activations, per-pixel activations, CLM's double buffers, and a
 * framework/fragmentation reserve (Appendix A.3). The max-trainable model
 * size is the largest N whose demand fits the device.
 */

#ifndef CLM_SIM_MEMORY_MODEL_HPP
#define CLM_SIM_MEMORY_MODEL_HPP

#include "offload/planner.hpp"
#include "scene/scene_spec.hpp"
#include "sim/device_spec.hpp"

namespace clm {

/** Calibration constants for the memory model (bytes). */
struct MemoryModelConfig
{
    /** Per-Gaussian bookkeeping (culling buffers, allocator slack) that
     *  every system pays regardless of sparsity. */
    double act_bytes_per_gaussian_base = 160;
    /** Extra per-*input*-Gaussian activations when culling is fused into
     *  the kernels (baseline only, §5.1). */
    double act_bytes_per_gaussian_fused = 195;
    /** Activations per *in-frustum* Gaussian for pre-culled systems. */
    double act_bytes_per_gaussian_culled = 400;
    /** Activations per output pixel (render targets, loss, SSIM). */
    double act_bytes_per_pixel = 210;
    /** CLM double-buffer sizing margin over the max in-frustum count. */
    double clm_buffer_slack = 1.15;
};

/** GPU memory demand, split the way Figure 10 plots it. */
struct MemoryBreakdown
{
    double model_state_bytes = 0;    //!< Parameter-proportional state.
    double activation_bytes = 0;     //!< "Others" (activations etc.).
    double reserve_bytes = 0;        //!< Framework reserve.

    double total() const
    { return model_state_bytes + activation_bytes + reserve_bytes; }
};

/** Predict GPU memory demand for training @p n Gaussians of @p scene. */
MemoryBreakdown gpuMemoryDemand(SystemKind system, const SceneSpec &scene,
                                double n_gaussians,
                                const DeviceSpec &device,
                                const MemoryModelConfig &config = {});

/**
 * Largest N (in Gaussians) trainable without OOM on @p device — the
 * quantity plotted in Figure 8. Monotone in N, found by binary search.
 */
double maxTrainableGaussians(SystemKind system, const SceneSpec &scene,
                             const DeviceSpec &device,
                             const MemoryModelConfig &config = {});

/** The paper's Table 2 estimate: model-state bytes for N Gaussians. */
double modelStateDemandBytes(double n_gaussians);

} // namespace clm

#endif // CLM_SIM_MEMORY_MODEL_HPP
