#include "sim/engine.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace clm {

double
Timeline::engineBusy(const BatchPlan &plan, EngineId engine) const
{
    double busy = 0.0;
    for (size_t i = 0; i < records.size(); ++i)
        if (plan.ops[i].engine == engine)
            busy += records[i].duration();
    return busy;
}

std::vector<std::pair<double, double>>
Timeline::engineIntervals(const BatchPlan &plan, EngineId engine) const
{
    std::vector<std::pair<double, double>> out;
    for (size_t i = 0; i < records.size(); ++i)
        if (plan.ops[i].engine == engine
            && records[i].duration() > 0.0)
            out.emplace_back(records[i].start, records[i].end);
    std::sort(out.begin(), out.end());
    return out;
}

Timeline
simulate(const BatchPlan &plan, const CostModel &cost)
{
    plan.validate();
    Timeline tl;
    tl.records.resize(plan.ops.size());

    // Per-engine frontier: completion time of the engine's last op.
    double engine_free[kNumEngines] = {0.0, 0.0, 0.0};

    // Ops are emitted in dependency-consistent order (validate() enforces
    // deps precede users), so one forward sweep schedules everything.
    for (size_t i = 0; i < plan.ops.size(); ++i) {
        const PlanOp &op = plan.ops[i];
        int e = static_cast<int>(op.engine);
        double ready = engine_free[e];    // stream FIFO
        for (int d : op.deps)
            ready = std::max(ready, tl.records[d].end);
        double dur = cost.duration(op);
        CLM_ASSERT(dur >= 0.0, "negative duration for ", op.label);
        tl.records[i].start = ready;
        tl.records[i].end = ready + dur;
        engine_free[e] = tl.records[i].end;
        tl.makespan = std::max(tl.makespan, tl.records[i].end);
    }
    return tl;
}

} // namespace clm
