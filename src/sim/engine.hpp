/**
 * @file
 * Discrete-event execution of a BatchPlan on a device: each engine
 * (compute stream, communication stream, CPU thread) executes its ops in
 * emission order — CUDA-stream FIFO semantics — and an op additionally
 * waits for its cross-engine dependencies (CUDA events / the pinned signal
 * buffer of §5.4). The resulting timeline is what every performance
 * experiment of §6.3/§6.4 is measured on.
 */

#ifndef CLM_SIM_ENGINE_HPP
#define CLM_SIM_ENGINE_HPP

#include <vector>

#include "offload/batch_plan.hpp"
#include "sim/cost_model.hpp"

namespace clm {

/** Execution record of one op. */
struct OpRecord
{
    double start = 0.0;
    double end = 0.0;
    double duration() const { return end - start; }
};

/** The simulated batch execution. */
struct Timeline
{
    std::vector<OpRecord> records;    //!< Parallel to plan.ops.
    double makespan = 0.0;            //!< Batch wall-clock seconds.

    /** Busy seconds of one engine. */
    double engineBusy(const BatchPlan &plan, EngineId engine) const;

    /** Busy-interval list (start, end) for an engine, sorted by start. */
    std::vector<std::pair<double, double>>
    engineIntervals(const BatchPlan &plan, EngineId engine) const;
};

/**
 * Run @p plan on the device described by @p cost.
 *
 * Semantics: op i may start when (a) every earlier op on the same engine
 * has finished (FIFO streams), and (b) every op in deps has finished
 * (events). Durations come from the cost model.
 */
Timeline simulate(const BatchPlan &plan, const CostModel &cost);

} // namespace clm

#endif // CLM_SIM_ENGINE_HPP
