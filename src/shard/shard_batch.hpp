/**
 * @file
 * Composed serving pipeline: sharded rendering × fused multi-view
 * batching, stacked so both amortizations apply to the same request
 * batch while every per-view frame stays *bitwise identical* to
 * sequential unsharded renderForward().
 *
 * The composition routes each view's frustum through the ShardRouter
 * and unions the per-view selections — the batch touches exactly the
 * union of the shards any member view can see, never fewer (the
 * union-routing conservation argument: a shard absent from the union is
 * absent from EVERY view's selection, and by the router's per-view
 * conservation argument all of its members fail that view's exact cull,
 * so it contributes nothing to any frame). Each union shard then runs
 * the PR-4 fused batch stages over the views routed to it:
 *
 *  - frustumCullBatch() over the compact shard model with the
 *    snapshot-scoped SoA cull cache keyed (snapshot version, shard id),
 *    so the shared per-Gaussian cull setup is rebuilt only when a new
 *    snapshot is published — not per wakeup (see shardCullCacheKey).
 *  - One union-of-subsets precompute per shard (3D covariance, world
 *    opacity, alpha-cut power via the same expressions as
 *    renderForwardBatch), reused by every routed view's
 *    projectGaussianPre() — the per-Gaussian work is paid once per
 *    (batch, shard), not once per (view, shard).
 *  - One fused binning + ONE radix sort per shard across its routed
 *    views (view-offset tile keys). A view's slice of the shard's
 *    sorted buffer is exactly the stable (tile << 32 | depth) sort
 *    buildTileIntersections() would produce for that (shard, view)
 *    pair alone — the same per-shard runs renderForwardSharded feeds
 *    its merge.
 *
 * Per view, the per-shard results are then assembled exactly as
 * renderForwardSharded() does: global-subset k-way merge of the shards'
 * ascending global index lists, then a per-tile k-way merge of the
 * per-shard sorted runs keyed (depth_bits, global subset position) —
 * which reconstructs the unique stable sort the unsharded radix sort
 * produces (within a shard a run is sorted by (depth, local position)
 * and local->global is monotone). Compositing runs the shared per-tile
 * kernels over ONE task list spanning all views, exposing cross-view
 * parallelism exactly like renderForwardBatch. Every stage is either a
 * pure per-row function (bitwise equal by construction) or an exact
 * order reconstruction, so the composed output is bit-for-bit the
 * sequential unsharded frame — asserted per view, per K, in SIMD and
 * scalar flavors by tests/test_compose.cpp.
 */

#ifndef CLM_SHARD_SHARD_BATCH_HPP
#define CLM_SHARD_SHARD_BATCH_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "render/arena.hpp"
#include "render/batch.hpp"
#include "render/camera.hpp"
#include "render/rasterizer.hpp"
#include "shard/router.hpp"
#include "shard/sharded_snapshot.hpp"

namespace clm {

/**
 * Cache tag for a (snapshot version, shard id) pair, fed to
 * frustumCullBatch()'s snapshot-scoped SoA cull cache. Distinct pairs
 * map to distinct non-zero keys (shard id + 1 occupies the low 16 bits,
 * so the key is non-zero even for version 0, which ModelSnapshot never
 * publishes anyway). 16 bits bound the shard count at 65535 — ~4
 * orders of magnitude above any configured K.
 */
inline uint64_t
shardCullCacheKey(uint64_t snapshot_version, uint32_t shard_id)
{
    return (snapshot_version << 16) | (static_cast<uint64_t>(shard_id) + 1);
}

/**
 * Scratch + outputs of the composed pipeline. Holds one RenderArena per
 * view (view v's frame lands in views[v].out, exactly as if
 * renderForward had rendered into that arena) plus per-SHARD-ID scratch
 * whose cull stage persists across calls — the slot for shard s is
 * always shards[s], not the s-th *selected* shard, so the
 * (version, shard) cull cache keeps hitting even as the routed set
 * changes between wakeups. Not thread-safe: one arena per concurrently
 * serving worker.
 */
class ShardBatchRenderArena
{
  public:
    /** Per-view arenas; resized on demand. */
    std::vector<RenderArena> views;

    /** @name Routing state of the last call */
    /// @{
    /** Per view: ShardRouter::route() selection (ascending). */
    std::vector<std::vector<uint32_t>> routes;
    /** Ascending union of the per-view selections. */
    std::vector<uint32_t> union_shards;
    /// @}

    /** Per-shard fused-pass scratch. Only `cull` carries state between
     *  calls (the snapshot-scoped cache); everything else is garbage. */
    struct ShardScratch
    {
        BatchCullScratch cull;    //!< Persistent (version, shard) cache.
        /** Batch views routed to this shard (ascending view indices). */
        std::vector<uint32_t> route_views;
        std::vector<Camera> cams; //!< Their cameras, same order.
        /** Per routed view: local in-frustum indices (ascending). */
        std::vector<std::vector<uint32_t>> subsets;
        /** Per routed view: union slot of each subset entry. */
        std::vector<std::vector<uint32_t>> slots;
        std::vector<uint32_t> union_local; //!< Ascending subset union.
        std::vector<Mat3> sigma;           //!< Per-union-entry covariance.
        std::vector<float> opacity;        //!< Per-union-entry opacity.
        std::vector<float> power_cut;      //!< Per-union-entry alpha cut.
        /** Per routed view: projected footprints, index rewritten to
         *  the GLOBAL Gaussian index (as renderForwardSharded does). */
        std::vector<std::vector<ProjectedGaussian>> projected;
        /** Per routed view: local subset position -> global (per-view)
         *  subset position, filled by the per-view global merge. */
        std::vector<std::vector<uint32_t>> global_pos;
        /** Per routed view: tile ranges, ABSOLUTE into fused_vals. */
        std::vector<std::vector<TileRange>> tile_ranges;
        BinningScratch binning;            //!< Fused key/offset scratch.
        std::vector<uint32_t> fused_vals;  //!< One sorted buffer/shard.

        size_t bytes() const;
    };
    /** Indexed by shard id (resized to the snapshot's shard count). */
    std::vector<ShardScratch> shards;

    /** @name Per-view assembly scratch */
    /// @{
    /** Per view: its (shard id, routed-view slot) parts, ascending by
     *  shard id. */
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> view_parts;
    /** Per view: per-global-entry depth key for the tile merge. */
    std::vector<std::vector<uint32_t>> depth_bits;
    std::vector<size_t> merge_cursors;
    /// @}

    /** Stage breakdown of the last renderForwardBatchSharded() call. */
    BatchStageTimes stage_times;

    /** Approximate bytes held (all per-view arenas + all scratch). */
    size_t footprintBytes() const;
};

/**
 * Render every view of the batch through the composed sharded + fused
 * pipeline (see file comment). Routing runs inside: per-view
 * selections land in @p arena.routes and their union in
 * @p arena.union_shards (for serving stats). Results land in
 * @p arena.views[v].out and are bitwise identical to
 * renderForward(base, cameras[v], frustumCull(base, cameras[v])) on the
 * snapshot's base model.
 *
 * @param snapshot_version Non-zero enables the (version, shard id)
 *        cull-stage cache (callers pass snapshot.base->version): each
 *        shard's shared SoA cull stage is rebuilt only when the
 *        published version changes. 0 rebuilds unconditionally.
 */
void renderForwardBatchSharded(const ShardedSnapshot &snapshot,
                               const ShardRouter &router,
                               const std::vector<Camera> &cameras,
                               const RenderConfig &config,
                               ShardBatchRenderArena &arena,
                               uint64_t snapshot_version = 0);

} // namespace clm

#endif // CLM_SHARD_SHARD_BATCH_HPP
