#include "shard/router.hpp"

#include <cmath>
#include <utility>

namespace clm {

bool
shardMayIntersect(const Frustum &frustum, const Aabb &box)
{
    if (box.empty())
        return false;
    for (int j = 0; j < 6; ++j) {
        const Plane &pl = frustum.plane(j);
        // Most-positive vertex along the plane normal: if even it is
        // clearly below the plane, the whole box (and so every member
        // cull sphere inside it) is outside the frustum.
        const Vec3 v{
            pl.n.x >= 0.0f ? box.hi.x : box.lo.x,
            pl.n.y >= 0.0f ? box.hi.y : box.lo.y,
            pl.n.z >= 0.0f ? box.hi.z : box.lo.z,
        };
        const float dist = pl.n.dot(v) + pl.d;
        const float margin =
            kShardRouteEps
            * (std::fabs(pl.n.x * v.x) + std::fabs(pl.n.y * v.y)
               + std::fabs(pl.n.z * v.z) + std::fabs(pl.d));
        if (dist < -margin)
            return false;
    }
    return true;
}

ShardRouter::ShardRouter(const ShardedSnapshot &snapshot)
{
    bounds_.reserve(snapshot.shards.size());
    for (const ModelShard &s : snapshot.shards)
        bounds_.push_back(s.bounds);
}

ShardRouter::ShardRouter(std::vector<Aabb> bounds)
    : bounds_(std::move(bounds))
{
}

void
ShardRouter::route(const Frustum &frustum,
                   std::vector<uint32_t> &selected) const
{
    selected.clear();
    for (size_t s = 0; s < bounds_.size(); ++s)
        if (shardMayIntersect(frustum, bounds_[s]))
            selected.push_back(static_cast<uint32_t>(s));
}

} // namespace clm
