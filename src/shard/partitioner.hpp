/**
 * @file
 * Spatial model sharding: recursive median split of the Gaussians into K
 * shards by their world-space centers — the partition step of the
 * multi-worker serving scale-out (ROADMAP). Each shard records its member
 * indices (ascending) plus a conservative world AABB that contains every
 * member's kCullSigma bounding sphere, the same sphere frustumCull()
 * tests first. That containment is what lets the ShardRouter prune a
 * shard against a request frustum without ever changing the rendered
 * image: a shard AABB fully outside a frustum plane implies every member
 * sphere is outside that plane, so the exact per-Gaussian cull would
 * have rejected all of them anyway.
 *
 * The split is by *count* (nth_element at n/2, ties broken by global
 * index), not by coordinate value, so it is deterministic, always
 * balances within one Gaussian, and degenerates gracefully when many
 * Gaussians share a center (K > occupied cells just yields empty
 * shards). K is arbitrary (not only powers of two): the leaf with the
 * most members is split until K leaves exist.
 */

#ifndef CLM_SHARD_PARTITIONER_HPP
#define CLM_SHARD_PARTITIONER_HPP

#include <cstdint>
#include <vector>

#include "gaussian/model.hpp"
#include "math/aabb.hpp"

namespace clm {

/** One spatial cell of the partition. */
struct ShardCell
{
    /** Member Gaussian indices into the source model, ascending. */
    std::vector<uint32_t> members;

    /** Conservative world bounds: contains every member's kCullSigma
     *  bounding sphere (empty when the cell has no members). */
    Aabb bounds;
};

/** A K-way spatial partition of a model (shards are disjoint and cover
 *  every Gaussian; some may be empty when K exceeds what the spatial
 *  distribution can occupy). */
struct ShardPartition
{
    std::vector<ShardCell> cells;

    size_t shardCount() const { return cells.size(); }
};

/**
 * Partition @p model into exactly @p shards cells by recursive median
 * split over the Gaussian centers (see file comment). Deterministic:
 * depends only on the model parameters and @p shards — non-finite
 * coordinates included (the split comparator totally orders float bit
 * patterns, so NaN never breaks the strict weak ordering). A cell
 * holding any member with a non-finite center or cull radius gets the
 * full-range AABB: frustumCull conservatively *keeps* such rows, so
 * their shard must never be prunable.
 */
ShardPartition partitionModel(const GaussianModel &model, int shards);

} // namespace clm

#endif // CLM_SHARD_PARTITIONER_HPP
