#include "shard/shard_renderer.hpp"

#include <algorithm>
#include <limits>

#include "render/compositor.hpp"
#include "render/culling.hpp"
#include "render/projection.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace clm {

namespace {

/** Run @p body over [0, n), through the pool when worthwhile (the
 *  shared poolForRange policy with the single-view pipeline's
 *  per-subset-entry threshold). */
template <typename Body>
void
forRange(size_t n, bool parallel, const Body &body)
{
    poolForRange(n, parallel, kMinParallelSubset, body);
}

} // namespace

size_t
ShardRenderArena::ShardScratch::bytes() const
{
    size_t b = subset.capacity() * sizeof(uint32_t);
    b += projected.capacity() * sizeof(ProjectedGaussian);
    b += binning.bytes();
    b += isect_vals.capacity() * sizeof(uint32_t);
    b += tile_ranges.capacity() * sizeof(TileRange);
    b += global_pos.capacity() * sizeof(uint32_t);
    return b;
}

size_t
ShardRenderArena::footprintBytes() const
{
    size_t b = out.activationBytes();
    for (const ShardScratch &s : shards)
        b += s.bytes();
    b += (alpha_cut.capacity() + row_k.capacity()) * sizeof(float);
    b += depth_bits.capacity() * sizeof(uint32_t);
    for (const TileStage &st : stages)
        b += st.bytes();
    b += route.capacity() * sizeof(uint32_t);
    b += merge_cursors.capacity() * sizeof(size_t);
    return b;
}

const RenderOutput &
renderForwardSharded(const ShardedSnapshot &snapshot,
                     const std::vector<uint32_t> &shard_ids,
                     const Camera &camera, const RenderConfig &cfg,
                     ShardRenderArena &arena)
{
    CLM_ASSERT(cfg.tile_size > 0, "bad tile size");
    const size_t S = shard_ids.size();
    for (size_t s = 0; s < S; ++s) {
        CLM_ASSERT(shard_ids[s] < snapshot.shardCount(),
                   "shard id out of range");
        CLM_ASSERT(s == 0 || shard_ids[s] > shard_ids[s - 1],
                   "shard ids must be ascending and unique");
    }

    const int w = camera.width();
    const int h = camera.height();
    const TileGrid grid = TileGrid::forImage(w, h, cfg.tile_size);

    RenderOutput &out = arena.out;
    out.image.resetUnfilled(w, h);
    out.final_t.resize(static_cast<size_t>(w) * h);
    out.n_contrib.resize(static_cast<size_t>(w) * h);
    out.tiles_x = grid.tiles_x;
    out.tiles_y = grid.tiles_y;

    if (arena.shards.size() < S)
        arena.shards.resize(S);

    // --- 1. Per-shard single-view stages: cull, project, bin — the
    // exact pipeline renderForward runs, over the compact shard model.
    // The footprint index is rewritten to the *global* Gaussian index
    // so the assembled activation state matches the unsharded one.
    size_t total = 0;
    for (size_t s = 0; s < S; ++s) {
        ShardRenderArena::ShardScratch &sh = arena.shards[s];
        const ModelShard &shard = snapshot.shards[shard_ids[s]];
        frustumCull(shard.model, camera, sh.subset);
        const size_t ns = sh.subset.size();
        total += ns;
        sh.projected.resize(ns);
        forRange(ns, cfg.parallel, [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                ProjectedGaussian p = projectGaussian(
                    shard.model, sh.subset[i], camera, cfg.sh_degree);
                p.index = shard.global_indices[sh.subset[i]];
                sh.projected[i] = p;
            }
        });
        buildTileIntersections(sh.projected, grid, cfg.alpha_min,
                               cfg.exact_tile_bounds, cfg.parallel,
                               sh.binning, sh.isect_vals,
                               sh.tile_ranges);
    }
    CLM_ASSERT(total <= std::numeric_limits<uint32_t>::max(),
               "sharded subset overflows 32-bit positions");

    // --- 2. Global subset assembly: k-way merge of the shards'
    // (ascending, disjoint) global index lists. Footprints land at
    // their global subset position — the order frustumCull on the base
    // model yields — and each shard records its local->global position
    // map for the intersection merge below.
    out.projected.resize(total);
    std::vector<size_t> &cur = arena.merge_cursors;
    cur.assign(S, 0);
    for (size_t s = 0; s < S; ++s)
        arena.shards[s].global_pos.resize(arena.shards[s].subset.size());
    for (size_t gp = 0; gp < total; ++gp) {
        size_t pick = S;
        uint32_t best = std::numeric_limits<uint32_t>::max();
        for (size_t s = 0; s < S; ++s) {
            const ShardRenderArena::ShardScratch &sh = arena.shards[s];
            if (cur[s] >= sh.subset.size())
                continue;
            const uint32_t g = sh.projected[cur[s]].index;
            if (pick == S || g < best) {
                pick = s;
                best = g;
            }
        }
        CLM_ASSERT(pick < S, "global merge ran dry early");
        ShardRenderArena::ShardScratch &sh = arena.shards[pick];
        sh.global_pos[cur[pick]] = static_cast<uint32_t>(gp);
        out.projected[gp] = sh.projected[cur[pick]];
        ++cur[pick];
    }

    // Per-global-entry compositing cuts and depth keys — the cuts
    // through the same expressions as renderForward (bit for bit), the
    // depth keys for the stable intersection merge.
    computeAlphaCutPowers(out.projected, cfg.alpha_min, cfg.parallel,
                          arena.alpha_cut, arena.row_k);
    arena.depth_bits.resize(total);
    forRange(total, cfg.parallel, [&](size_t begin, size_t end) {
        for (size_t gp = begin; gp < end; ++gp)
            arena.depth_bits[gp] = depthBits(out.projected[gp].depth);
    });

    // --- 3. Reconstruct the global front-to-back order: per tile,
    // k-way merge the shards' sorted runs by (depth_bits, global
    // position). Within a shard a run is sorted by (depth, local
    // position) and local->global is monotone, so this merge is
    // exactly the unique stable sort the unsharded radix sort
    // produces. Global positions are unique across shards, so the
    // packed (depth << 32 | gp) compare is total.
    const size_t n_tiles = grid.tileCount();
    out.tile_ranges.resize(n_tiles);
    size_t total_isect = 0;
    for (size_t t = 0; t < n_tiles; ++t) {
        TileRange r;
        r.begin = static_cast<uint32_t>(total_isect);
        for (size_t s = 0; s < S; ++s)
            total_isect += arena.shards[s].tile_ranges[t].size();
        CLM_ASSERT(total_isect <= std::numeric_limits<uint32_t>::max(),
                   "sharded intersections overflow 32-bit ranges");
        r.end = static_cast<uint32_t>(total_isect);
        out.tile_ranges[t] = r;
    }
    out.isect_vals.resize(total_isect);

    auto merge_tiles = [&](size_t t0, size_t t1) {
        std::vector<uint32_t> heads(S);
        for (size_t t = t0; t < t1; ++t) {
            uint32_t o = out.tile_ranges[t].begin;
            for (size_t s = 0; s < S; ++s)
                heads[s] = arena.shards[s].tile_ranges[t].begin;
            while (o < out.tile_ranges[t].end) {
                size_t pick = S;
                uint64_t best = 0;
                for (size_t s = 0; s < S; ++s) {
                    const ShardRenderArena::ShardScratch &sh =
                        arena.shards[s];
                    if (heads[s] >= sh.tile_ranges[t].end)
                        continue;
                    const uint32_t gp =
                        sh.global_pos[sh.isect_vals[heads[s]]];
                    const uint64_t key =
                        (static_cast<uint64_t>(arena.depth_bits[gp])
                         << 32)
                        | gp;
                    if (pick == S || key < best) {
                        pick = s;
                        best = key;
                    }
                }
                CLM_ASSERT(pick < S, "tile merge ran dry early");
                out.isect_vals[o++] = static_cast<uint32_t>(best);
                ++heads[pick];
            }
        }
    };
    if (cfg.parallel && n_tiles > 1 && total_isect >= kMinParallelSubset)
        ThreadPool::global().parallelFor(
            n_tiles,
            [&](size_t begin, size_t end) { merge_tiles(begin, end); });
    else
        merge_tiles(0, n_tiles);

    // --- 4. Composite through the shared per-tile kernels, exactly as
    // renderForward does (tiles touch disjoint pixels; the chunking
    // cannot change results).
    size_t n_chunks = 1;
    if (cfg.parallel && n_tiles > 1)
        n_chunks = std::min<size_t>(
            n_tiles,
            static_cast<size_t>(ThreadPool::global().threads()) * 2);
    const size_t tiles_per_chunk = (n_tiles + n_chunks - 1) / n_chunks;
    if (arena.stages.size() < n_chunks)
        arena.stages.resize(n_chunks);
    auto composite_chunk = [&](size_t c) {
        const size_t t0 = c * tiles_per_chunk;
        const size_t t1 = std::min(t0 + tiles_per_chunk, n_tiles);
        detail::compositeTileRange(cfg, grid, arena.alpha_cut,
                                   arena.row_k, arena.stages[c], t0, t1,
                                   out);
    };
    if (n_chunks > 1) {
        ThreadPool::global().parallelFor(
            n_chunks, [&](size_t begin, size_t end) {
                for (size_t c = begin; c < end; ++c)
                    composite_chunk(c);
            });
    } else {
        composite_chunk(0);
    }
    return out;
}

const RenderOutput &
renderForwardSharded(const ShardedSnapshot &snapshot, const Camera &camera,
                     const RenderConfig &cfg, ShardRenderArena &arena)
{
    std::vector<uint32_t> all(snapshot.shardCount());
    for (size_t s = 0; s < all.size(); ++s)
        all[s] = static_cast<uint32_t>(s);
    return renderForwardSharded(snapshot, all, camera, cfg, arena);
}

} // namespace clm
