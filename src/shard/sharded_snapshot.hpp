/**
 * @file
 * Sharded model snapshots: the serving-side representation of a spatial
 * partition. A ShardedSnapshot is carved from one immutable
 * ModelSnapshot (serve/snapshot.hpp) — per-shard global index lists
 * plus *compact* per-shard models whose rows are bitwise copies of the
 * base model's rows — so each shard can be culled, projected and binned
 * against only its own slice of the scene, bounding the per-request
 * working set the way city-scale splatting systems partition scenes
 * into spatial cells.
 *
 * Rebuilds happen once per publish, not per request: the
 * ShardedSnapshotSlot keeps the partition of the base snapshot version
 * it was built from and re-partitions only when the version changes
 * (publishing the same ModelSnapshot twice is a no-op). Readers acquire
 * by shared_ptr exactly like ModelSnapshot readers and can keep
 * rendering from a retired sharded snapshot for as long as they like.
 */

#ifndef CLM_SHARD_SHARDED_SNAPSHOT_HPP
#define CLM_SHARD_SHARDED_SNAPSHOT_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/snapshot.hpp"
#include "shard/partitioner.hpp"

namespace clm {

/** One spatial shard of a published model. */
struct ModelShard
{
    /** Member rows in the base model, ascending. local row i of
     *  `model` is global row `global_indices[i]`. */
    std::vector<uint32_t> global_indices;

    /** Compact model holding exactly the member rows (bitwise copies),
     *  in global_indices order. */
    GaussianModel model;

    /** Conservative world bounds of every member's cull sphere (see
     *  shard/partitioner.hpp); empty for an empty shard. */
    Aabb bounds;
};

/** An immutable K-way sharding of one published ModelSnapshot. */
struct ShardedSnapshot
{
    /** The base snapshot the shards were carved from (version,
     *  param_hash and train_step provide response provenance). */
    std::shared_ptr<const ModelSnapshot> base;

    std::vector<ModelShard> shards;

    size_t shardCount() const { return shards.size(); }

    /** Total Gaussians across all shards (== base->model.size()). */
    size_t totalGaussians() const;
};

/**
 * Carve @p base into @p shards spatial shards (partitionModel() over
 * the base model, then compact row copies). Deterministic.
 */
std::shared_ptr<const ShardedSnapshot>
buildShardedSnapshot(std::shared_ptr<const ModelSnapshot> base,
                     int shards);

/**
 * Single-publisher / multi-reader slot of the current ShardedSnapshot,
 * mirroring SnapshotSlot. publish() re-partitions only when the base
 * snapshot version changed since the last build; acquire() is safe
 * from any number of threads.
 */
class ShardedSnapshotSlot
{
  public:
    explicit ShardedSnapshotSlot(int shards);

    /** Shard count every published snapshot is carved into. */
    int shards() const { return shards_; }

    /** Rebuild from @p base if its version differs from the current
     *  sharded snapshot's base version (no-op otherwise, so calling at
     *  every publish point costs one version compare between model
     *  changes). Ignores nullptr. */
    void publish(std::shared_ptr<const ModelSnapshot> base);

    /** The current sharded snapshot; nullptr before the first
     *  publish(). */
    std::shared_ptr<const ShardedSnapshot> acquire() const;

    /** Base snapshot version of the current sharded snapshot (0 before
     *  the first publish). */
    uint64_t version() const;

  private:
    const int shards_;
    mutable std::mutex mutex_;
    std::shared_ptr<const ShardedSnapshot> current_;
};

} // namespace clm

#endif // CLM_SHARD_SHARDED_SNAPSHOT_HPP
