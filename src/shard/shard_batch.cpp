#include "shard/shard_batch.hpp"

#include <algorithm>
#include <limits>

#include "render/binning.hpp"
#include "render/compositor.hpp"
#include "render/projection.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace clm {

namespace {

/** Run @p body over [0, n), through the pool when worthwhile (the
 *  shared poolForRange policy with the single-view pipeline's
 *  per-subset-entry threshold). */
template <typename Body>
void
forRange(size_t n, bool parallel, const Body &body)
{
    poolForRange(n, parallel, kMinParallelSubset, body);
}

/**
 * The PR-4 fused batch stages over ONE shard's routed views: union of
 * the routed subsets, shared per-union-entry precompute, flat
 * projection (footprint index rewritten to the global Gaussian index),
 * and one fused binning + radix sort whose per-view slices are exactly
 * the stable (tile << 32 | depth) sorts buildTileIntersections() would
 * produce per (shard, view). Tile ranges are recorded ABSOLUTE into the
 * shard's one sorted buffer — the per-view merge reads the runs in
 * place, no carve copy.
 *
 * This mirrors renderForwardBatch() stage for stage (same expressions,
 * same key layout, same insertion order) so the per-(shard, view) runs
 * are bit-for-bit what the unsharded fused pass — and hence sequential
 * renderForward — would sort for that shard's rows.
 */
void
runShardFusedStages(const ModelShard &shard,
                    const std::vector<TileGrid> &grids,
                    const RenderConfig &cfg,
                    ShardBatchRenderArena::ShardScratch &sh)
{
    const size_t B = sh.route_views.size();
    const std::vector<std::vector<uint32_t>> &subsets = sh.subsets;
    const GaussianModel &model = shard.model;

    // Union of the routed views' subsets (ascending k-way merge) plus
    // each entry's union slot — renderForwardBatch() stage 1.
    sh.union_local.clear();
    sh.slots.resize(B);
    std::vector<size_t> cur(B, 0);
    size_t total = 0;
    for (size_t v = 0; v < B; ++v) {
        sh.slots[v].resize(subsets[v].size());
        total += subsets[v].size();
    }
    for (;;) {
        uint32_t next = std::numeric_limits<uint32_t>::max();
        bool any = false;
        for (size_t v = 0; v < B; ++v) {
            if (cur[v] < subsets[v].size()) {
                any = true;
                next = std::min(next, subsets[v][cur[v]]);
            }
        }
        if (!any)
            break;
        const uint32_t slot = static_cast<uint32_t>(sh.union_local.size());
        sh.union_local.push_back(next);
        for (size_t v = 0; v < B; ++v) {
            if (cur[v] < subsets[v].size() && subsets[v][cur[v]] == next) {
                sh.slots[v][cur[v]] = slot;
                ++cur[v];
                CLM_ASSERT(cur[v] >= subsets[v].size()
                               || subsets[v][cur[v]] > next,
                           "shard subsets must be ascending and unique");
            }
        }
    }

    // Per-union-entry precompute — pure per-row functions, so sharing
    // them across the routed views is bitwise neutral (stage 2).
    const size_t n_union = sh.union_local.size();
    sh.sigma.resize(n_union);
    sh.opacity.resize(n_union);
    sh.power_cut.resize(n_union);
    forRange(n_union, cfg.parallel, [&](size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
            const size_t i = sh.union_local[u];
            sh.sigma[u] = model.covariance(i);
            const float op = model.worldOpacity(i);
            sh.opacity[u] = op;
            sh.power_cut[u] =
                op > 0.0f ? alphaCutPower(op, cfg.alpha_min) : 0.0f;
        }
    });

    // Projection: one flat pass over every (routed view, entry) pair
    // (stage 3), with the footprint index rewritten to the GLOBAL
    // Gaussian index — exactly what renderForwardSharded does, so the
    // per-view global merge sees ascending disjoint global lists.
    std::vector<size_t> prefix(B + 1, 0);
    sh.projected.resize(B);
    sh.global_pos.resize(B);
    for (size_t v = 0; v < B; ++v) {
        prefix[v + 1] = prefix[v] + subsets[v].size();
        sh.projected[v].resize(subsets[v].size());
        sh.global_pos[v].resize(subsets[v].size());
    }
    auto viewOf = [&](size_t f) {
        size_t v = 0;
        while (v + 1 < B && prefix[v + 1] <= f)
            ++v;
        return v;
    };
    forRange(total, cfg.parallel, [&](size_t begin, size_t end) {
        size_t v = viewOf(begin);
        for (size_t f = begin; f < end; ++f) {
            while (v + 1 < B && prefix[v + 1] <= f)
                ++v;
            const size_t s = f - prefix[v];
            const uint32_t local = subsets[v][s];
            ProjectedGaussian p = projectGaussianPre(
                model, local, sh.cams[v], cfg.sh_degree,
                sh.sigma[sh.slots[v][s]], sh.opacity[sh.slots[v][s]]);
            p.index = shard.global_indices[local];
            sh.projected[v][s] = p;
        }
    });

    // Fused binning (stage 4): ONE flat key buffer across the routed
    // views — keys are (view-offset tile id << 32 | depth bits), values
    // are view-LOCAL subset positions — sorted by one stable radix
    // sort. View slices use per-ROUTED-view tile offsets over the
    // views' own grids.
    std::vector<size_t> tile_base(B + 1, 0);
    for (size_t v = 0; v < B; ++v)
        tile_base[v + 1] =
            tile_base[v] + grids[sh.route_views[v]].tileCount();
    const size_t total_tiles = tile_base[B];
    CLM_ASSERT(total_tiles <= std::numeric_limits<uint32_t>::max(),
               "shard batch tile count overflows the 32-bit key field");

    BinningScratch &bs = sh.binning;
    bs.spans.resize(total);
    bs.offsets.assign(total + 1, 0);
    forRange(total, cfg.parallel, [&](size_t begin, size_t end) {
        size_t v = viewOf(begin);
        for (size_t f = begin; f < end; ++f) {
            while (v + 1 < B && prefix[v + 1] <= f)
                ++v;
            const size_t s = f - prefix[v];
            const TileGrid &grid = grids[sh.route_views[v]];
            const ProjectedGaussian &p = sh.projected[v][s];
            TileSpan span = computeTileSpan(p, grid, cfg.alpha_min,
                                            cfg.exact_tile_bounds);
            bs.spans[f] = span;
            uint32_t touched = 0;
            for (int ty = span.y0; ty <= span.y1; ++ty)
                for (int tx = span.x0; tx <= span.x1; ++tx)
                    if (tileOverlaps(p, span, tx, ty, grid))
                        ++touched;
            bs.offsets[f + 1] = touched;
        }
    });
    for (size_t f = 0; f < total; ++f)
        bs.offsets[f + 1] += bs.offsets[f];
    const size_t total_isect = bs.offsets[total];
    CLM_ASSERT(total_isect <= std::numeric_limits<uint32_t>::max(),
               "shard batch intersections overflow 32-bit ranges");

    bs.keys.resize(total_isect);
    sh.fused_vals.resize(total_isect);
    forRange(total, cfg.parallel, [&](size_t begin, size_t end) {
        size_t v = viewOf(begin);
        for (size_t f = begin; f < end; ++f) {
            while (v + 1 < B && prefix[v + 1] <= f)
                ++v;
            const TileSpan &span = bs.spans[f];
            if (span.empty())
                continue;
            const size_t s = f - prefix[v];
            const TileGrid &grid = grids[sh.route_views[v]];
            const ProjectedGaussian &p = sh.projected[v][s];
            const uint64_t depth = depthBits(p.depth);
            size_t o = bs.offsets[f];
            for (int ty = span.y0; ty <= span.y1; ++ty)
                for (int tx = span.x0; tx <= span.x1; ++tx) {
                    if (!tileOverlaps(p, span, tx, ty, grid))
                        continue;
                    const uint64_t tile =
                        tile_base[v]
                        + static_cast<uint64_t>(ty) * grid.tiles_x + tx;
                    bs.keys[o] = (tile << 32) | depth;
                    sh.fused_vals[o] = static_cast<uint32_t>(s);
                    ++o;
                }
        }
    });

    const int key_bits =
        32
        + bitWidth(total_tiles > 0
                       ? static_cast<uint32_t>(total_tiles - 1)
                       : 0u);
    radixSortPairs(bs.keys, sh.fused_vals, bs.keys_tmp, bs.vals_tmp,
                   key_bits, cfg.parallel, &bs.hist);

    // Record each routed view's tile ranges ABSOLUTE into the one
    // sorted buffer — the per-view tile merge reads the runs in place.
    size_t e = 0;
    sh.tile_ranges.resize(B);
    for (size_t v = 0; v < B; ++v) {
        const TileGrid &grid = grids[sh.route_views[v]];
        const size_t n_tiles = grid.tileCount();
        sh.tile_ranges[v].resize(n_tiles);
        for (size_t t = 0; t < n_tiles; ++t) {
            TileRange r;
            r.begin = static_cast<uint32_t>(e);
            const uint64_t vtile = tile_base[v] + t;
            while (e < total_isect && (bs.keys[e] >> 32) == vtile)
                ++e;
            r.end = static_cast<uint32_t>(e);
            sh.tile_ranges[v][t] = r;
        }
    }
    CLM_ASSERT(e == total_isect,
               "unclaimed intersections past the shard batch tile grid");
}

} // namespace

size_t
ShardBatchRenderArena::ShardScratch::bytes() const
{
    size_t b = cull.bytes();
    b += route_views.capacity() * sizeof(uint32_t);
    b += cams.capacity() * sizeof(Camera);
    for (const auto &s : subsets)
        b += s.capacity() * sizeof(uint32_t);
    for (const auto &s : slots)
        b += s.capacity() * sizeof(uint32_t);
    b += union_local.capacity() * sizeof(uint32_t);
    b += sigma.capacity() * sizeof(Mat3);
    b += (opacity.capacity() + power_cut.capacity()) * sizeof(float);
    for (const auto &p : projected)
        b += p.capacity() * sizeof(ProjectedGaussian);
    for (const auto &g : global_pos)
        b += g.capacity() * sizeof(uint32_t);
    for (const auto &t : tile_ranges)
        b += t.capacity() * sizeof(TileRange);
    b += binning.bytes();
    b += fused_vals.capacity() * sizeof(uint32_t);
    return b;
}

size_t
ShardBatchRenderArena::footprintBytes() const
{
    size_t b = 0;
    for (const RenderArena &a : views)
        b += a.footprintBytes();
    for (const auto &r : routes)
        b += r.capacity() * sizeof(uint32_t);
    b += union_shards.capacity() * sizeof(uint32_t);
    for (const ShardScratch &s : shards)
        b += s.bytes();
    for (const auto &p : view_parts)
        b += p.capacity() * sizeof(std::pair<uint32_t, uint32_t>);
    for (const auto &d : depth_bits)
        b += d.capacity() * sizeof(uint32_t);
    b += merge_cursors.capacity() * sizeof(size_t);
    return b;
}

void
renderForwardBatchSharded(const ShardedSnapshot &snapshot,
                          const ShardRouter &router,
                          const std::vector<Camera> &cameras,
                          const RenderConfig &cfg,
                          ShardBatchRenderArena &arena,
                          uint64_t snapshot_version)
{
    const size_t B = cameras.size();
    CLM_ASSERT(B >= 1, "empty render batch");
    CLM_ASSERT(cfg.tile_size > 0, "bad tile size");
    const size_t K = snapshot.shardCount();
    CLM_ASSERT(router.shardCount() == K, "router/snapshot shard mismatch");
    CLM_ASSERT(K < 0xFFFFu, "shard count overflows the cull cache key");

    StageClock stage_clock;

    // --- 1. Route every view, union the selections. The per-shard-id
    // scratch slots persist across calls so the (version, shard) cull
    // cache keeps hitting as the routed set changes between wakeups.
    if (arena.views.size() < B)
        arena.views.resize(B);
    if (arena.shards.size() < K)
        arena.shards.resize(K);
    arena.routes.resize(B);
    arena.view_parts.resize(B);
    arena.depth_bits.resize(B);
    arena.union_shards.clear();
    for (size_t v = 0; v < B; ++v) {
        router.route(cameras[v].frustum(), arena.routes[v]);
        arena.view_parts[v].clear();
    }
    for (size_t s = 0; s < K; ++s) {
        arena.shards[s].route_views.clear();
        arena.shards[s].cams.clear();
    }
    for (size_t v = 0; v < B; ++v)
        for (uint32_t s : arena.routes[v]) {
            ShardBatchRenderArena::ShardScratch &sh = arena.shards[s];
            if (sh.route_views.empty())
                arena.union_shards.push_back(s);
            arena.view_parts[v].push_back(
                {s, static_cast<uint32_t>(sh.route_views.size())});
            sh.route_views.push_back(static_cast<uint32_t>(v));
            sh.cams.push_back(cameras[v]);
        }
    std::sort(arena.union_shards.begin(), arena.union_shards.end());
    // view_parts rows are ascending by shard id because each route is;
    // union_shards needed the sort (discovery order follows views).
    // Routing gets its own span; stage_times.precompute_s keeps its
    // PR-8 meaning (routing + setup + fused cull) by summing the laps.
    const double route_s = stage_clock.lap("shard.route");

    // Per-view grids + output activation buffers.
    std::vector<TileGrid> grids(B);
    for (size_t v = 0; v < B; ++v) {
        const Camera &cam = cameras[v];
        grids[v] =
            TileGrid::forImage(cam.width(), cam.height(), cfg.tile_size);
        RenderOutput &out = arena.views[v].out;
        out.image.resetUnfilled(cam.width(), cam.height());
        out.final_t.resize(cam.pixels());
        out.n_contrib.resize(cam.pixels());
        out.tiles_x = grids[v].tiles_x;
        out.tiles_y = grids[v].tiles_y;
    }

    // --- 2. Per union shard: fused cull over the routed views (with
    // the snapshot-scoped cache), then the fused batch stages.
    for (uint32_t s : arena.union_shards) {
        ShardBatchRenderArena::ShardScratch &sh = arena.shards[s];
        const ModelShard &shard = snapshot.shards[s];
        const uint64_t key =
            snapshot_version != 0 ? shardCullCacheKey(snapshot_version, s)
                                  : 0;
        frustumCullBatch(shard.model, sh.cams, sh.cull, sh.subsets,
                         cfg.parallel, key);
    }
    arena.stage_times.precompute_s = route_s + stage_clock.lap("shard.cull");
    for (uint32_t s : arena.union_shards)
        runShardFusedStages(snapshot.shards[s], grids, cfg,
                            arena.shards[s]);
    arena.stage_times.project_s = stage_clock.lap("shard.stage");

    // --- 3. Per-view assembly, exactly as renderForwardSharded: global
    // subset k-way merge of the view's shard parts (ascending disjoint
    // global index lists), cuts + depth keys, then a per-tile k-way
    // merge of the per-shard sorted runs keyed (depth_bits, global
    // position) — the unique stable sort of the unsharded keys.
    for (size_t v = 0; v < B; ++v) {
        const auto &parts = arena.view_parts[v];
        const size_t S = parts.size();
        RenderArena &av = arena.views[v];
        RenderOutput &out = av.out;

        size_t total = 0;
        for (const auto &pt : parts)
            total += arena.shards[pt.first].subsets[pt.second].size();
        CLM_ASSERT(total <= std::numeric_limits<uint32_t>::max(),
                   "composed subset overflows 32-bit positions");
        out.projected.resize(total);
        av.alpha_cut.resize(total);
        av.row_k.resize(total);
        av.cuts_alpha_min = cfg.alpha_min;

        std::vector<size_t> &cur = arena.merge_cursors;
        cur.assign(S, 0);
        for (size_t gp = 0; gp < total; ++gp) {
            size_t pick = S;
            uint32_t best = std::numeric_limits<uint32_t>::max();
            for (size_t s = 0; s < S; ++s) {
                const ShardBatchRenderArena::ShardScratch &sh =
                    arena.shards[parts[s].first];
                const uint32_t vi = parts[s].second;
                if (cur[s] >= sh.subsets[vi].size())
                    continue;
                const uint32_t g = sh.projected[vi][cur[s]].index;
                if (pick == S || g < best) {
                    pick = s;
                    best = g;
                }
            }
            CLM_ASSERT(pick < S, "composed global merge ran dry early");
            ShardBatchRenderArena::ShardScratch &sh =
                arena.shards[parts[pick].first];
            const uint32_t vi = parts[pick].second;
            sh.global_pos[vi][cur[pick]] = static_cast<uint32_t>(gp);
            const ProjectedGaussian &p = sh.projected[vi][cur[pick]];
            out.projected[gp] = p;
            // Compositing cuts: gather the shared alpha-cut threshold,
            // the same expressions as computeAlphaCutPowers bit for bit
            // (the gather idiom of renderForwardBatch).
            av.alpha_cut[gp] =
                p.opacity > 0.0f
                    ? sh.power_cut[sh.slots[vi][cur[pick]]]
                    : 0.0f;
            ++cur[pick];
        }
        std::vector<uint32_t> &dbits = arena.depth_bits[v];
        dbits.resize(total);
        forRange(total, cfg.parallel, [&](size_t begin, size_t end) {
            for (size_t gp = begin; gp < end; ++gp) {
                av.row_k[gp] = rowCurvature(out.projected[gp]);
                dbits[gp] = depthBits(out.projected[gp].depth);
            }
        });

        const size_t n_tiles = grids[v].tileCount();
        out.tile_ranges.resize(n_tiles);
        size_t total_isect = 0;
        for (size_t t = 0; t < n_tiles; ++t) {
            TileRange r;
            r.begin = static_cast<uint32_t>(total_isect);
            for (const auto &pt : parts)
                total_isect += arena.shards[pt.first]
                                   .tile_ranges[pt.second][t]
                                   .size();
            CLM_ASSERT(total_isect
                           <= std::numeric_limits<uint32_t>::max(),
                       "composed intersections overflow 32-bit ranges");
            r.end = static_cast<uint32_t>(total_isect);
            out.tile_ranges[t] = r;
        }
        out.isect_vals.resize(total_isect);

        auto merge_tiles = [&](size_t t0, size_t t1) {
            std::vector<uint32_t> heads(S);
            for (size_t t = t0; t < t1; ++t) {
                uint32_t o = out.tile_ranges[t].begin;
                for (size_t s = 0; s < S; ++s)
                    heads[s] = arena.shards[parts[s].first]
                                   .tile_ranges[parts[s].second][t]
                                   .begin;
                while (o < out.tile_ranges[t].end) {
                    size_t pick = S;
                    uint64_t best = 0;
                    for (size_t s = 0; s < S; ++s) {
                        const ShardBatchRenderArena::ShardScratch &sh =
                            arena.shards[parts[s].first];
                        const uint32_t vi = parts[s].second;
                        if (heads[s] >= sh.tile_ranges[vi][t].end)
                            continue;
                        const uint32_t gp =
                            sh.global_pos[vi]
                                         [sh.fused_vals[heads[s]]];
                        const uint64_t key =
                            (static_cast<uint64_t>(dbits[gp]) << 32)
                            | gp;
                        if (pick == S || key < best) {
                            pick = s;
                            best = key;
                        }
                    }
                    CLM_ASSERT(pick < S,
                               "composed tile merge ran dry early");
                    out.isect_vals[o++] = static_cast<uint32_t>(best);
                    ++heads[pick];
                }
            }
        };
        if (cfg.parallel && n_tiles > 1
            && total_isect >= kMinParallelSubset)
            ThreadPool::global().parallelFor(
                n_tiles, [&](size_t begin, size_t end) {
                    merge_tiles(begin, end);
                });
        else
            merge_tiles(0, n_tiles);
    }
    arena.stage_times.bin_s = stage_clock.lap("shard.merge");

    // --- 4. Composite: ONE task list spanning all views' tiles, the
    // cross-view parallelism of renderForwardBatch. Tiles touch
    // disjoint pixels and the kernels are the shared per-tile ones, so
    // results do not depend on the split.
    struct ChunkTask
    {
        uint32_t view;
        uint32_t stage;
        uint32_t t0, t1;
    };
    size_t total_tiles = 0;
    for (size_t v = 0; v < B; ++v)
        total_tiles += grids[v].tileCount();
    size_t chunk_target = total_tiles;
    if (cfg.parallel && total_tiles > 1) {
        const size_t want =
            static_cast<size_t>(ThreadPool::global().threads()) * 2;
        chunk_target =
            std::max<size_t>(1, (total_tiles + want - 1) / want);
    }
    std::vector<ChunkTask> tasks;
    for (size_t v = 0; v < B; ++v) {
        const size_t n_tiles = grids[v].tileCount();
        const size_t n_chunks =
            n_tiles == 0 ? 0
                         : (n_tiles + chunk_target - 1) / chunk_target;
        if (arena.views[v].stages.size() < n_chunks)
            arena.views[v].stages.resize(n_chunks);
        for (size_t c = 0; c < n_chunks; ++c) {
            const size_t t0 = c * chunk_target;
            const size_t t1 = std::min(t0 + chunk_target, n_tiles);
            tasks.push_back({static_cast<uint32_t>(v),
                             static_cast<uint32_t>(c),
                             static_cast<uint32_t>(t0),
                             static_cast<uint32_t>(t1)});
        }
    }
    auto run_task = [&](const ChunkTask &task) {
        RenderArena &av = arena.views[task.view];
        detail::compositeTileRange(cfg, grids[task.view], av.alpha_cut,
                                   av.row_k, av.stages[task.stage],
                                   task.t0, task.t1, av.out);
    };
    if (cfg.parallel && tasks.size() > 1) {
        ThreadPool::global().parallelFor(
            tasks.size(), [&](size_t begin, size_t end) {
                for (size_t t = begin; t < end; ++t)
                    run_task(tasks[t]);
            });
    } else {
        for (const ChunkTask &task : tasks)
            run_task(task);
    }
    arena.stage_times.composite_s = stage_clock.lap("render.composite");
}

} // namespace clm
