#include "shard/sharded_snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/logging.hpp"

namespace clm {

size_t
ShardedSnapshot::totalGaussians() const
{
    size_t n = 0;
    for (const ModelShard &s : shards)
        n += s.model.size();
    return n;
}

std::shared_ptr<const ShardedSnapshot>
buildShardedSnapshot(std::shared_ptr<const ModelSnapshot> base, int shards)
{
    CLM_ASSERT(base != nullptr, "cannot shard a null snapshot");
    auto out = std::make_shared<ShardedSnapshot>();
    const GaussianModel &model = base->model;

    ShardPartition part = partitionModel(model, shards);
    out->shards.resize(part.cells.size());
    for (size_t s = 0; s < part.cells.size(); ++s) {
        ModelShard &shard = out->shards[s];
        shard.global_indices = std::move(part.cells[s].members);
        shard.bounds = part.cells[s].bounds;
        // Compact row copies: every attribute is copied bit for bit, so
        // per-shard culling/projection sees exactly the base model's
        // rows (the exactness argument of shard/shard_renderer.hpp
        // starts here).
        const size_t n = shard.global_indices.size();
        shard.model.resize(n);
        for (size_t i = 0; i < n; ++i) {
            const size_t g = shard.global_indices[i];
            shard.model.position(i) = model.position(g);
            shard.model.logScale(i) = model.logScale(g);
            shard.model.rotation(i) = model.rotation(g);
            std::memcpy(shard.model.sh(i), model.sh(g),
                        kShDim * sizeof(float));
            shard.model.rawOpacity(i) = model.rawOpacity(g);
        }
    }
    out->base = std::move(base);
    return out;
}

ShardedSnapshotSlot::ShardedSnapshotSlot(int shards) : shards_(shards)
{
    CLM_ASSERT(shards >= 1, "need at least one shard");
}

void
ShardedSnapshotSlot::publish(std::shared_ptr<const ModelSnapshot> base)
{
    if (!base)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (current_ && current_->base
            && current_->base->version == base->version)
            return;    // same published state: the partition is current
    }
    // Re-partition outside the lock (readers keep serving the previous
    // sharded snapshot untouched); publish() is single-caller like
    // SnapshotSlot::publish, so no competing rebuild can interleave.
    std::shared_ptr<const ShardedSnapshot> built =
        buildShardedSnapshot(std::move(base), shards_);
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = std::move(built);
}

std::shared_ptr<const ShardedSnapshot>
ShardedSnapshotSlot::acquire() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
}

uint64_t
ShardedSnapshotSlot::version() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return current_ && current_->base ? current_->base->version : 0;
}

} // namespace clm
