/**
 * @file
 * Frustum-routed shard selection: intersect a request's view frustum
 * with the shards' world AABBs and return the candidate shards the
 * request must render. Routing is *conservative with an explicit error
 * budget* (the same idiom as the cull prefilter in render/batch.hpp): a
 * shard is pruned only when its AABB clears a frustum plane by more
 * than kShardRouteEps times the plane-distance term magnitudes. Because
 * each shard AABB contains every member's cull bounding sphere
 * (shard/partitioner.hpp), an AABB provably outside a plane means every
 * member sphere is outside it, so frustumCull() would have rejected all
 * members anyway — pruning can drop per-request work but can never
 * change the rendered image.
 *
 * False positives (a shard routed whose members all cull away) are
 * harmless: the per-shard cull returns empty and the renderer skips it.
 */

#ifndef CLM_SHARD_ROUTER_HPP
#define CLM_SHARD_ROUTER_HPP

#include <cstdint>
#include <vector>

#include "math/aabb.hpp"
#include "math/frustum.hpp"
#include "shard/sharded_snapshot.hpp"

namespace clm {

/**
 * Relative error budget of the routing plane test: a shard may be
 * pruned only when the AABB's most-positive vertex is below the plane
 * by more than kShardRouteEps times the distance's term magnitudes
 * (|n_k v_k| per component, plus |d|). The true float-evaluation
 * difference between the AABB corner distance and the member sphere
 * distances it bounds is a few ulp (~1e-7 relative), so 1e-4
 * over-covers it by ~1000x; anything closer to the boundary stays
 * routed and the exact per-Gaussian cull decides.
 */
constexpr float kShardRouteEps = 1e-4f;

/**
 * True when @p box may intersect @p frustum under the kShardRouteEps
 * margin (see file comment). Empty boxes never intersect.
 */
bool shardMayIntersect(const Frustum &frustum, const Aabb &box);

/**
 * Routes requests to shards by frustum/AABB intersection. Holds copies
 * of the shard bounds, so a router stays valid independently of the
 * snapshot it was built from (workers rebuild per acquired snapshot —
 * the copy is K AABBs, trivially cheap).
 */
class ShardRouter
{
  public:
    ShardRouter() = default;

    /** Build over @p snapshot's shard bounds. */
    explicit ShardRouter(const ShardedSnapshot &snapshot);

    /** Build over explicit bounds (tests). */
    explicit ShardRouter(std::vector<Aabb> bounds);

    /** Shard ids whose AABB may intersect @p frustum, ascending,
     *  written into @p selected (cleared first; reusable buffer for
     *  hot-loop callers). */
    void route(const Frustum &frustum,
               std::vector<uint32_t> &selected) const;

    size_t shardCount() const { return bounds_.size(); }
    const Aabb &bounds(size_t s) const { return bounds_[s]; }

  private:
    std::vector<Aabb> bounds_;
};

} // namespace clm

#endif // CLM_SHARD_ROUTER_HPP
