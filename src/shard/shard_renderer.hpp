/**
 * @file
 * Exact sharded forward rendering: compose per-shard rasterization
 * results into a frame that is *bitwise identical* to unsharded
 * renderForward() for any shard count, in SIMD and scalar builds alike.
 *
 * Each selected shard runs the existing single-view stages over its
 * compact model — frustumCull, projection, and the flat key-sorted
 * binning of render/binning.hpp — producing its own
 * (tile << 32 | depth) key-sorted intersection buffer. The global
 * front-to-back order is then reconstructed exactly:
 *
 *  1. The per-shard in-frustum subsets (mapped to global indices) are
 *     k-way merged into the global subset — precisely the set and order
 *     frustumCull(base_model, camera) would return, because shard rows
 *     are bitwise copies and the cull predicate is per-row.
 *  2. Per-shard projected footprints are placed at their global subset
 *     positions (projection is a pure per-row function, so the values
 *     are the bits renderForward would have computed).
 *  3. Each tile's per-shard sorted runs are k-way merged by
 *     (depth_bits, global subset position). Within a shard a tile run
 *     is sorted by (depth, local position) and the local->global
 *     position map is monotone, so the merge yields exactly the unique
 *     stable sort of the global keys — the same tie-breaking (depth,
 *     then subset position) the single radix sort produces.
 *  4. Compositing runs the shared render/compositor kernels over the
 *     merged ranges — the same kernels, same staged inputs, same bits.
 *
 * Shards pruned by the ShardRouter contribute nothing, and by the
 * router's conservation argument their members would have failed the
 * exact cull anyway — so routing changes work, never pixels.
 */

#ifndef CLM_SHARD_SHARD_RENDERER_HPP
#define CLM_SHARD_SHARD_RENDERER_HPP

#include <cstdint>
#include <vector>

#include "render/arena.hpp"
#include "render/camera.hpp"
#include "render/rasterizer.hpp"
#include "shard/sharded_snapshot.hpp"

namespace clm {

/**
 * Reusable scratch + output of the sharded pipeline (one per
 * concurrently serving worker, like RenderArena). The assembled global
 * activation state lands in `out` exactly as renderForward would have
 * produced it.
 */
class ShardRenderArena
{
  public:
    /** Assembled global forward activation state (bitwise identical to
     *  unsharded renderForward into an arena). */
    RenderOutput out;

    /** @name Per-selected-shard scratch (contents are garbage between
     *  calls; slot s serves the s-th *selected* shard of the call) */
    /// @{
    struct ShardScratch
    {
        std::vector<uint32_t> subset;     //!< Local in-frustum indices.
        std::vector<ProjectedGaussian> projected;
        BinningScratch binning;
        std::vector<uint32_t> isect_vals; //!< Local key-sorted buffer.
        std::vector<TileRange> tile_ranges;
        /** Local subset position -> global subset position. */
        std::vector<uint32_t> global_pos;

        size_t bytes() const;
    };
    std::vector<ShardScratch> shards;
    /// @}

    /** @name Global assembly scratch */
    /// @{
    std::vector<float> alpha_cut;      //!< Per-global-entry cuts.
    std::vector<float> row_k;
    std::vector<uint32_t> depth_bits;  //!< Per-global-entry depth key.
    std::vector<TileStage> stages;     //!< Per-chunk compositing stage.
    std::vector<uint32_t> route;       //!< Router output scratch.
    std::vector<size_t> merge_cursors; //!< Global-merge head positions.
    /// @}

    /** Approximate bytes held (activation state + all scratch). */
    size_t footprintBytes() const;
};

/**
 * Render @p camera's view from the shards listed in @p shard_ids
 * (ascending ids into @p snapshot.shards — e.g. from
 * ShardRouter::route()). Results land in @p arena.out and are bitwise
 * identical to renderForward(base, camera, frustumCull(base, camera))
 * whenever @p shard_ids includes every shard whose members the exact
 * cull would select — which any ShardRouter selection does. The
 * returned reference aliases @p arena.out.
 */
const RenderOutput &
renderForwardSharded(const ShardedSnapshot &snapshot,
                     const std::vector<uint32_t> &shard_ids,
                     const Camera &camera, const RenderConfig &config,
                     ShardRenderArena &arena);

/** Convenience overload rendering ALL shards (no routing). */
const RenderOutput &
renderForwardSharded(const ShardedSnapshot &snapshot, const Camera &camera,
                     const RenderConfig &config, ShardRenderArena &arena);

} // namespace clm

#endif // CLM_SHARD_SHARD_RENDERER_HPP
