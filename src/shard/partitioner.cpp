#include "shard/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "render/culling.hpp"
#include "util/logging.hpp"

namespace clm {

namespace {

/** One in-progress leaf of the recursive split: a [begin, end) slice of
 *  the shared index scratch plus the AABB of the member *centers* (the
 *  split geometry; the published bounds add the sphere radii later). */
struct Leaf
{
    size_t begin = 0, end = 0;
    Aabb centers;

    size_t count() const { return end - begin; }
};

/** Longest axis of @p box: 0/1/2 for x/y/z, ties resolved in that
 *  order so the split sequence is deterministic. */
int
longestAxis(const Aabb &box)
{
    if (box.empty())
        return 0;
    const Vec3 e = box.extent();
    int axis = 0;
    float best = e.x;
    if (e.y > best) {
        axis = 1;
        best = e.y;
    }
    if (e.z > best)
        axis = 2;
    return axis;
}

float
axisCoord(const Vec3 &p, int axis)
{
    return axis == 0 ? p.x : axis == 1 ? p.y : p.z;
}

/** Monotone total order over float bit patterns (same sign-flip trick
 *  as depthBits): agrees with operator< for ordered values and gives
 *  NaNs a fixed, deterministic rank — so the split comparator below is
 *  a strict weak order even when training has diverged into NaN
 *  positions (operator< alone would make every NaN compare equivalent
 *  to everything, which is UB in nth_element). */
uint32_t
orderedBits(float v)
{
    uint32_t b;
    std::memcpy(&b, &v, sizeof(b));
    return (b & 0x80000000u) ? ~b : (b | 0x80000000u);
}

Aabb
centerBounds(const GaussianModel &model, const uint32_t *idx, size_t n)
{
    Aabb box;
    for (size_t i = 0; i < n; ++i)
        box.extend(model.position(idx[i]));
    return box;
}

} // namespace

ShardPartition
partitionModel(const GaussianModel &model, int shards)
{
    CLM_ASSERT(shards >= 1, "need at least one shard");
    const size_t n = model.size();

    // Index scratch the recursive split permutes in place.
    std::vector<uint32_t> idx(n);
    for (size_t i = 0; i < n; ++i)
        idx[i] = static_cast<uint32_t>(i);

    std::vector<Leaf> leaves;
    leaves.push_back({0, n, centerBounds(model, idx.data(), n)});

    // Split until K leaves: always the most-populated leaf (ties ->
    // lowest leaf id), by count at the median of the longest center
    // axis. A median-by-count split works even when every center is
    // identical, so K > occupied-cells simply produces empty leaves
    // once counts reach 0/1.
    while (leaves.size() < static_cast<size_t>(shards)) {
        size_t pick = 0;
        for (size_t l = 1; l < leaves.size(); ++l)
            if (leaves[l].count() > leaves[pick].count())
                pick = l;
        Leaf leaf = leaves[pick];
        const size_t half = leaf.count() / 2;
        const int axis = longestAxis(leaf.centers);
        uint32_t *base = idx.data() + leaf.begin;
        std::nth_element(
            base, base + half, base + leaf.count(),
            [&](uint32_t a, uint32_t b) {
                const uint32_t ca =
                    orderedBits(axisCoord(model.position(a), axis));
                const uint32_t cb =
                    orderedBits(axisCoord(model.position(b), axis));
                // Global index breaks coordinate ties so the partition
                // never depends on nth_element's internal order.
                return ca < cb || (ca == cb && a < b);
            });
        Leaf lo{leaf.begin, leaf.begin + half,
                centerBounds(model, base, half)};
        Leaf hi{leaf.begin + half, leaf.end,
                centerBounds(model, base + half, leaf.count() - half)};
        leaves[pick] = lo;
        leaves.push_back(hi);
    }

    ShardPartition part;
    part.cells.resize(leaves.size());
    for (size_t l = 0; l < leaves.size(); ++l) {
        ShardCell &cell = part.cells[l];
        cell.members.assign(idx.begin() + leaves[l].begin,
                            idx.begin() + leaves[l].end);
        std::sort(cell.members.begin(), cell.members.end());
        bool unbounded = false;
        for (uint32_t g : cell.members) {
            // Bounds must contain the member's cull sphere, not just
            // its center — see the routing-safety argument in the
            // file comment.
            const float r = cullBoundingRadius(model, g);
            const Vec3 &p = model.position(g);
            if (!(std::isfinite(p.x) && std::isfinite(p.y)
                  && std::isfinite(p.z) && std::isfinite(r))) {
                // frustumCull conservatively KEEPS non-finite rows
                // (every plane reject compares false), but
                // Aabb::extend would silently drop a NaN point — so
                // the cell must become unprunable instead.
                unbounded = true;
                continue;
            }
            cell.bounds.extend(p - Vec3{r, r, r});
            cell.bounds.extend(p + Vec3{r, r, r});
        }
        if (unbounded) {
            constexpr float m = std::numeric_limits<float>::max();
            cell.bounds.lo = Vec3{-m, -m, -m};
            cell.bounds.hi = Vec3{m, m, m};
        }
    }
    return part;
}

} // namespace clm
