/**
 * @file
 * Shared per-trainer offload state that ClmTrainer and NaiveOffloadTrainer
 * previously duplicated: the packed GPU-resident critical store (§4.1),
 * the scratch render model whose non-critical rows are materialized from
 * staged device buffers, the gradient staging buffers, batch workload
 * construction (pre-rendering frustum culling, §5.1), planner invocation,
 * and the finalization step (subset CPU Adam from pinned gradient records
 * plus parameter write-back, §4.2.2/§5.4).
 */

#ifndef CLM_TRAIN_TRAINER_CONTEXT_HPP
#define CLM_TRAIN_TRAINER_CONTEXT_HPP

#include <vector>

#include "gaussian/adam.hpp"
#include "gaussian/densify.hpp"
#include "gaussian/model.hpp"
#include "offload/planner.hpp"
#include "offload/transfer_engine.hpp"
#include "render/camera.hpp"

namespace clm {

/** See file comment. Holds references to the owning trainer's master
 *  model and optimizer; owns every derived offload-side structure.
 *  (Render scratch is NOT here: every render of the offload trainers
 *  goes through Trainer::renderAndBackprop, so the reusable RenderArena
 *  lives once in the Trainer base.) */
class TrainerContext
{
  public:
    TrainerContext(GaussianModel &model, CpuAdam &adam,
                   Densifier &densifier);

    /** (Re)build the critical store and scratch buffers for the master
     *  model's current topology (construction, densification). */
    void rebuild();

    /** Pre-rendering frustum culling from the packed critical store. */
    std::vector<uint32_t> cullView(const Camera &camera) const;

    /** Build the planner workload for a batch of views (culling every
     *  view from the critical store). */
    BatchWorkload buildWorkload(const std::vector<Camera> &cameras,
                                const std::vector<int> &view_ids) const;

    /** Run the batch planner and stash the result. */
    const BatchPlanResult &planViews(const PlannerConfig &config,
                                     const BatchWorkload &workload);

    /** The planner result of the most recent batch (for inspection). */
    const BatchPlanResult &lastPlan() const { return last_plan_; }

    /** The workload's per-view sets reordered into processing order. */
    std::vector<std::vector<uint32_t>>
    orderedSets(const BatchWorkload &workload) const;

    /** Materialize the staged non-critical parameter rows of @p buf into
     *  the scratch render model. */
    void materialize(const DeviceBuffer &buf);

    /** The render-input model: critical attributes always valid,
     *  non-critical rows valid only after materialize(). */
    GaussianModel &scratch() { return scratch_; }

    /** Per-microbatch backprop target. */
    GaussianGrads &scratchGrads() { return scratch_grads_; }

    /**
     * Finalize @p fin (§4.2.2, §5.4): unpack the completed gradient
     * records from @p pool, feed densification statistics when
     * @p observe_densify, run subset CPU Adam on the master model, write
     * updated non-critical parameters back into the pool records, zero
     * the gradient records, and push updated critical attributes to the
     * critical store + scratch model.
     *
     * @return Number of Gaussians updated.
     */
    size_t finalize(PinnedPool &pool, const std::vector<uint32_t> &fin,
                    bool observe_densify);

    /** Failure injection (tests only): overwrite every non-critical
     *  attribute of the scratch model with NaN; see
     *  ClmTrainer::debugPoisonScratchNonCritical(). */
    void debugPoisonScratchNonCritical();

  private:
    /** Push master's critical attributes for @p indices to the critical
     *  store and the scratch model. */
    void writeBackCritical(const std::vector<uint32_t> &indices);

    GaussianModel &model_;      //!< Master copy (CPU, Adam-updated).
    CpuAdam &adam_;
    Densifier &densifier_;
    std::vector<float> critical_;    //!< Packed critical store ("GPU").
    GaussianModel scratch_;          //!< Materialized render inputs.
    GaussianGrads scratch_grads_;    //!< Per-microbatch backprop target.
    GaussianGrads cpu_grads_;        //!< Staging for subset Adam.
    BatchPlanResult last_plan_;
};

} // namespace clm

#endif // CLM_TRAIN_TRAINER_CONTEXT_HPP
