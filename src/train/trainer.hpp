/**
 * @file
 * Functional training drivers. All three trainers (GPU-only, naive
 * offload, CLM) implement the same minibatch-SGD-with-gradient-
 * accumulation algorithm over the shared differentiable rasterizer, so
 * their parameter trajectories are equivalent — the paper's offloading
 * techniques change *where* state lives and *when* updates run, never the
 * math. Both offloaded trainers are thin policies over the shared
 * offload subsystem (TrainerContext + TransferEngine): CLM enables
 * caching, prefetch overlap and finalization-driven subset Adam; naive
 * offloading stages the whole model synchronously each batch.
 */

#ifndef CLM_TRAIN_TRAINER_HPP
#define CLM_TRAIN_TRAINER_HPP

#include <memory>
#include <vector>

#include "gaussian/adam.hpp"
#include "gaussian/densify.hpp"
#include "gaussian/model.hpp"
#include "math/rng.hpp"
#include "offload/planner.hpp"
#include "render/arena.hpp"
#include "render/batch.hpp"
#include "render/camera.hpp"
#include "render/loss.hpp"
#include "render/rasterizer.hpp"

namespace clm {

class SnapshotSlot;
class ShardedSnapshotSlot;

/** Shared trainer settings. */
struct TrainConfig
{
    int batch_size = 4;
    RenderConfig render;
    LossConfig loss;
    AdamConfig adam;
    /** CLM-specific planning knobs (ordering, caching, overlap). */
    PlannerConfig planner;
    /** Every this many batches the active SH degree increases by one,
     *  up to render.sh_degree (reference 3DGS ramps every 1000 iters);
     *  0 disables the ramp. */
    int sh_degree_interval = 0;
    /** Run CLM's CPU Adam on a real dedicated thread (§5.4), overlapped
     *  with subsequent microbatches. Safe by the finalization property:
     *  a finalized Gaussian is never touched again within the batch, so
     *  the Adam thread and the render path access disjoint rows. */
    bool async_adam = false;
    /** Stage microbatch k+1 on the TransferEngine's worker thread while
     *  k computes (§5.3). Bit-identical to synchronous staging; disable
     *  to serialize transfers onto the critical path (the naive trainer
     *  always runs without prefetch). */
    bool prefetch = true;
    /** GPU-only trainer: run multi-view batches through the fused
     *  forward/backward pair (renderForwardBatch + renderBackwardBatch,
     *  render/batch.hpp) instead of view-at-a-time. The fused pair is
     *  bitwise identical to the sequential loop — same per-view frames,
     *  same gradients, same Adam subset — so the parameter trajectory
     *  is unchanged; disable to force the view-at-a-time reference
     *  path. Offloaded trainers ignore this (their microbatch
     *  scheduling is inherently view-at-a-time). */
    bool fused_batch = true;
    uint64_t seed = 42;
};

/** Per-batch outcome and accounting. */
struct BatchStats
{
    double loss = 0.0;              //!< Mean loss over the batch's views.
    double h2d_bytes = 0.0;         //!< CPU->GPU traffic this batch.
    double d2h_bytes = 0.0;         //!< GPU->CPU traffic this batch.
    size_t gaussians_rendered = 0;  //!< Sum of |S_i| over the batch.
    size_t adam_updated = 0;        //!< Gaussians whose Adam step ran.
    size_t cache_hits = 0;          //!< PCIe loads avoided (CLM).
};

/** Abstract training system over a fixed set of posed views. */
class Trainer
{
  public:
    /**
     * @param model Initial scene representation (copied).
     * @param cameras Training views.
     * @param ground_truth One image per camera.
     */
    Trainer(GaussianModel model, std::vector<Camera> cameras,
            std::vector<Image> ground_truth, TrainConfig config);

    virtual ~Trainer() = default;

    /** Run one batch over the given view indices. */
    virtual BatchStats trainBatch(const std::vector<int> &view_ids) = 0;

    /** Run @p steps batches of randomly sampled views. */
    std::vector<BatchStats> trainSteps(int steps);

    /** Mean PSNR of the current model over all training views. */
    double evaluatePsnr() const;

    /** Current model (the trainer's source of truth). */
    virtual const GaussianModel &model() const { return model_; }

    /** @name Adaptive density control (§2.1)
     * Enable observation, then call densifyNow() periodically; trainers
     * rebuild their internal (offloaded) state after topology changes.
     */
    /// @{
    void enableDensification(DensifyConfig config = {});
    bool densificationEnabled() const { return densify_enabled_; }
    virtual DensifyStats densifyNow();
    /// @}

    const TrainConfig &config() const { return config_; }
    size_t viewCount() const { return cameras_.size(); }
    const Camera &camera(size_t i) const { return cameras_[i]; }
    const Image &groundTruth(size_t i) const { return ground_truth_[i]; }

    /** SH degree active for the next batch (ramp-up, standard 3DGS
     *  practice when sh_degree_interval > 0). */
    int activeShDegree() const;

    /** Number of completed training batches. */
    int batchesDone() const { return batches_done_; }

    /** @name Train-time model snapshots (serving hand-off)
     * With a sink installed, the trainer publishes an immutable copy of
     * the model into it at every step boundary — once immediately, then
     * after every trainSteps() batch and after densifyNow() — so a
     * RenderService can serve the live model concurrently without ever
     * observing torn parameters. @p slot must outlive the trainer
     * (nullptr detaches).
     */
    /// @{
    void setSnapshotSink(SnapshotSlot *slot);

    /** Also carve every published snapshot into spatial shards
     *  (shard/sharded_snapshot.hpp), at the same publish points as the
     *  plain sink — the slot re-partitions only when the published
     *  version actually changed. Requires a snapshot sink to be
     *  installed first; @p slot must outlive the trainer (nullptr
     *  detaches). */
    void setShardedSink(ShardedSnapshotSlot *slot);

    /** Publish the current model now (no-op without a sink). */
    void publishSnapshot();
    /// @}

  protected:
    /** Called by trainers at the start of every batch. */
    void noteBatchStart() { ++batches_done_; }

    /** Render settings with the ramped SH degree applied. */
    RenderConfig activeRenderConfig() const;

    /** Render view @p v from @p m (restricted to @p subset), compute the
     *  loss gradient and backpropagate into @p grads. @return the loss. */
    double renderAndBackprop(const GaussianModel &m, int v,
                             const std::vector<uint32_t> &subset,
                             GaussianGrads &grads);

    /** Called by trainers after a batch to feed densify statistics. */
    void observeDensify(const GaussianGrads &grads);

    /** Rebuild trainer-local buffers after the model was restructured. */
    virtual void onModelResized() {}

    GaussianModel model_;
    std::vector<Camera> cameras_;
    std::vector<Image> ground_truth_;
    TrainConfig config_;
    CpuAdam adam_;
    Rng rng_;
    Densifier densifier_;
    bool densify_enabled_ = false;
    int batches_done_ = 0;
    SnapshotSlot *snapshot_sink_ = nullptr;    //!< Non-owning.
    ShardedSnapshotSlot *sharded_sink_ = nullptr;    //!< Non-owning.

    /** Render scratch reused across every view/step this trainer runs
     *  (every trainer renders through renderAndBackprop/evaluatePsnr).
     *  mutable: purely scratch — reuse never changes results. */
    mutable RenderArena arena_;

    /** SAT-loss scratch reused across renderAndBackprop calls (same
     *  scratch-only contract as arena_). */
    LossScratch loss_scratch_;
};

/**
 * GPU-only training (the paper's "baseline" and "enhanced baseline" —
 * functionally identical; the enhanced flag only changes the modeled
 * kernel input size, which the performance simulator accounts for).
 */
class GpuOnlyTrainer : public Trainer
{
  public:
    GpuOnlyTrainer(GaussianModel model, std::vector<Camera> cameras,
                   std::vector<Image> ground_truth, TrainConfig config);

    BatchStats trainBatch(const std::vector<int> &view_ids) override;

  protected:
    void onModelResized() override { grads_.resize(model_.size()); }

    GaussianGrads grads_;

    /** Fused-batch scratch (TrainConfig::fused_batch): batch arenas +
     *  per-view loss gradients, reused across steps. */
    BatchRenderArena batch_arena_;
    std::vector<Image> d_images_;
};

/** Factory helpers for the quality harness and examples. */
std::unique_ptr<Trainer> makeTrainer(SystemKind system, GaussianModel model,
                                     std::vector<Camera> cameras,
                                     std::vector<Image> ground_truth,
                                     TrainConfig config);

} // namespace clm

#endif // CLM_TRAIN_TRAINER_HPP
