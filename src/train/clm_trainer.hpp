/**
 * @file
 * The functional CLM trainer: executes every mechanism of §4/§5 —
 * attribute-wise offload (GPU-resident critical store, pinned non-critical
 * records), pre-rendering frustum culling from the packed critical store,
 * TSP-ordered microbatches, precise Gaussian caching through real double
 * buffers, RMW gradient offloading, and finalization-driven subset CPU
 * Adam — and produces parameter trajectories equivalent to GPU-only
 * training (verified by the integration tests).
 */

#ifndef CLM_TRAIN_CLM_TRAINER_HPP
#define CLM_TRAIN_CLM_TRAINER_HPP

#include <array>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>

#include "offload/pinned_pool.hpp"
#include "offload/selective_copy.hpp"
#include "train/trainer.hpp"

namespace clm {

/** See file comment. */
class ClmTrainer : public Trainer
{
  public:
    ClmTrainer(GaussianModel model, std::vector<Camera> cameras,
               std::vector<Image> ground_truth, TrainConfig config);

    ~ClmTrainer() override;

    BatchStats trainBatch(const std::vector<int> &view_ids) override;

    /** The CPU-resident master copy (updated by CPU Adam). */
    const GaussianModel &model() const override { return model_; }

    /** Pinned host memory in use (the Table 6 quantity). */
    size_t pinnedBytes() const { return pool_.bytes(); }

    /** Peak rows ever bound in one device buffer (memory accounting). */
    size_t peakBufferRows() const { return peak_buffer_rows_; }

    /** The planner result of the most recent batch (for inspection). */
    const BatchPlanResult &lastPlan() const { return last_plan_; }

    /** Densification with offload-state rebuild: drains the Adam thread,
     *  restructures the model, then rebuilds the pinned pool, critical
     *  store, scratch model and double buffers. */
    DensifyStats densifyNow() override;

    /**
     * Failure injection (tests only): overwrite every non-critical
     * attribute of the "GPU" scratch model with NaN. Training must be
     * unaffected, because the attribute-wise offload guarantees every
     * rendered Gaussian's non-critical attributes are loaded from pinned
     * memory first (§4.1) — any read of an unloaded attribute poisons
     * the output and fails the test.
     */
    void debugPoisonScratchNonCritical();

  protected:
    void onModelResized() override;

  private:
    /** Push master's critical attributes for @p indices to the "GPU". */
    void writeBackCritical(const std::vector<uint32_t> &indices);

    /** Hand a finalized set to the Adam thread (async) or run inline. */
    void dispatchFinalization(std::vector<uint32_t> fin, size_t slot,
                              BatchStats &stats);

    /** Block until the Adam thread has drained all queued work. */
    void drainAdamThread();

    /** The §5.4 dedicated-thread loop: wait on the signal buffer, run
     *  subset Adam, repeat. */
    void adamThreadLoop();

    /** Run CPU Adam for the finalized set @p fin and sync the pool.
     *  @return Number of Gaussians updated. */
    size_t finalizeGaussians(const std::vector<uint32_t> &fin);

    PinnedPool pool_;                  //!< Pinned params + grads (CPU).
    std::vector<float> critical_;      //!< Packed critical store ("GPU").
    GaussianModel gpu_scratch_;        //!< Materialized render inputs.
    std::array<DeviceBuffer, 2> buffers_;    //!< CLM's double buffer.
    GaussianGrads scratch_grads_;      //!< Per-microbatch backprop target.
    GaussianGrads cpu_grads_;          //!< Staging for subset Adam.
    BatchPlanResult last_plan_;
    size_t peak_buffer_rows_ = 0;

    // Dedicated CPU Adam thread state (active when config_.async_adam).
    struct AdamJob
    {
        std::vector<uint32_t> fin;
        size_t signal_slot;
    };
    std::thread adam_thread_;
    std::mutex adam_mutex_;
    std::condition_variable adam_cv_;
    std::queue<AdamJob> adam_jobs_;
    size_t adam_pending_ = 0;
    bool adam_stop_ = false;
    std::atomic<size_t> async_adam_updated_{0};
};

/** Pack one Gaussian's gradient row into the 59-float pinned record
 *  layout: position, log-scale, rotation, SH, opacity. */
void packGradRecord(const GaussianGrads &grads, size_t i, float *out);

/** Unpack a 59-float gradient record into @p grads at row @p i. */
void unpackGradRecord(const float *in, GaussianGrads &grads, size_t i);

} // namespace clm

#endif // CLM_TRAIN_CLM_TRAINER_HPP
