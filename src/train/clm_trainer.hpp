/**
 * @file
 * The functional CLM trainer, now a thin policy over the shared offload
 * subsystem: TrainerContext holds the attribute-split state (critical
 * store, scratch render model, finalization Adam) and TransferEngine owns
 * the whole data path (pinned pool, double-buffered staging, prefetch
 * overlap, RMW gradient scatter, dedicated finalization thread). The
 * trainer itself only culls, plans (§4.2), renders, and feeds gradient
 * rows — and produces parameter trajectories equivalent to GPU-only
 * training (verified by the integration tests).
 */

#ifndef CLM_TRAIN_CLM_TRAINER_HPP
#define CLM_TRAIN_CLM_TRAINER_HPP

#include "offload/transfer_engine.hpp"
#include "train/trainer.hpp"
#include "train/trainer_context.hpp"

namespace clm {

/** See file comment. */
class ClmTrainer : public Trainer
{
  public:
    ClmTrainer(GaussianModel model, std::vector<Camera> cameras,
               std::vector<Image> ground_truth, TrainConfig config);

    BatchStats trainBatch(const std::vector<int> &view_ids) override;

    /** The CPU-resident master copy (updated by CPU Adam). */
    const GaussianModel &model() const override { return model_; }

    /** Pinned host memory in use (the Table 6 quantity). */
    size_t pinnedBytes() const { return engine_.pinnedBytes(); }

    /** Peak rows ever bound in one device buffer (memory accounting). */
    size_t peakBufferRows() const { return engine_.peakBufferRows(); }

    /** The planner result of the most recent batch (for inspection). */
    const BatchPlanResult &lastPlan() const { return ctx_.lastPlan(); }

    /** Measured per-stage wall times from the TransferEngine (feeds the
     *  Figure 13/15 benches through sim/metrics). */
    const StageTimings &stageTimings() const { return engine_.timings(); }

    /** Densification with offload-state rebuild: drains the engine's
     *  threads, restructures the model, then rebuilds the critical
     *  store, scratch model, pinned pool and double buffers. */
    DensifyStats densifyNow() override;

    /**
     * Failure injection (tests only): overwrite every non-critical
     * attribute of the "GPU" scratch model with NaN. Training must be
     * unaffected, because the attribute-wise offload guarantees every
     * rendered Gaussian's non-critical attributes are loaded from pinned
     * memory first (§4.1) — any read of an unloaded attribute poisons
     * the output and fails the test.
     */
    void debugPoisonScratchNonCritical()
    { ctx_.debugPoisonScratchNonCritical(); }

  protected:
    void onModelResized() override;

  private:
    TrainerContext ctx_;
    TransferEngine engine_;
};

} // namespace clm

#endif // CLM_TRAIN_CLM_TRAINER_HPP
