/**
 * @file
 * Functional naive offloading (§2.2, Figure 3): every batch bulk-copies
 * all 59 parameters of every Gaussian to the "GPU" working copy, trains
 * one image at a time with gradient accumulation, bulk-copies all
 * gradients back, and runs CPU Adam. The math is identical to GPU-only
 * training; only the (fully accounted) data movement differs.
 */

#ifndef CLM_TRAIN_NAIVE_OFFLOAD_TRAINER_HPP
#define CLM_TRAIN_NAIVE_OFFLOAD_TRAINER_HPP

#include "train/trainer.hpp"

namespace clm {

/** See file comment. */
class NaiveOffloadTrainer : public Trainer
{
  public:
    NaiveOffloadTrainer(GaussianModel model, std::vector<Camera> cameras,
                        std::vector<Image> ground_truth,
                        TrainConfig config);

    BatchStats trainBatch(const std::vector<int> &view_ids) override;

    /** The CPU-resident master copy is the source of truth. */
    const GaussianModel &model() const override { return model_; }

  protected:
    void onModelResized() override { grads_.resize(model_.size()); }

  private:
    GaussianModel gpu_copy_;    //!< Per-batch working copy ("GPU").
    GaussianGrads grads_;       //!< Accumulated on the "GPU".
};

} // namespace clm

#endif // CLM_TRAIN_NAIVE_OFFLOAD_TRAINER_HPP
