/**
 * @file
 * Functional naive offloading (§2.2, Figure 3), expressed as the
 * degenerate policy over the shared TransferEngine: prefetch and caching
 * disabled, the whole model staged as a single microbatch ("load ALL
 * parameters"), per-view rendering with gradient accumulation into the
 * staging rows, one bulk RMW scatter ("store ALL gradients"), then CPU
 * Adam over the touched set. The math is identical to GPU-only training;
 * only the (fully accounted) data movement differs.
 */

#ifndef CLM_TRAIN_NAIVE_OFFLOAD_TRAINER_HPP
#define CLM_TRAIN_NAIVE_OFFLOAD_TRAINER_HPP

#include "offload/transfer_engine.hpp"
#include "train/trainer.hpp"
#include "train/trainer_context.hpp"

namespace clm {

/** See file comment. */
class NaiveOffloadTrainer : public Trainer
{
  public:
    NaiveOffloadTrainer(GaussianModel model, std::vector<Camera> cameras,
                        std::vector<Image> ground_truth,
                        TrainConfig config);

    BatchStats trainBatch(const std::vector<int> &view_ids) override;

    /** The CPU-resident master copy is the source of truth. */
    const GaussianModel &model() const override { return model_; }

    /** Measured per-stage wall times (the exposed bulk transfers show up
     *  as staging stalls — the Figure 13/15 contrast to CLM). */
    const StageTimings &stageTimings() const { return engine_.timings(); }

    /** Drains the engine before the model is restructured. */
    DensifyStats densifyNow() override;

  protected:
    void onModelResized() override;

  private:
    TrainerContext ctx_;
    TransferEngine engine_;
};

} // namespace clm

#endif // CLM_TRAIN_NAIVE_OFFLOAD_TRAINER_HPP
