#include "train/naive_offload_trainer.hpp"

#include <algorithm>
#include <numeric>

#include "util/logging.hpp"

namespace clm {

namespace {

TransferEngineConfig
naiveEngineConfig(const TrainConfig &config)
{
    // Figure 3's pipeline has no overlap: transfers sit on the critical
    // path (prefetch off) and every record reloads each batch (caching
    // is disabled per batch in the cache plan below).
    TransferEngineConfig ec;
    ec.prefetch = false;
    ec.async_finalize = config.async_adam;
    return ec;
}

} // namespace

NaiveOffloadTrainer::NaiveOffloadTrainer(GaussianModel model,
                                         std::vector<Camera> cameras,
                                         std::vector<Image> ground_truth,
                                         TrainConfig config)
    : Trainer(std::move(model), std::move(cameras),
              std::move(ground_truth), config),
      ctx_(model_, adam_, densifier_),
      engine_(model_.size(), naiveEngineConfig(config_))
{
    engine_.setFinalizeFn([this](const std::vector<uint32_t> &fin) {
        return ctx_.finalize(engine_.pool(), fin, densificationEnabled());
    });
    engine_.uploadParams(model_);
}

void
NaiveOffloadTrainer::onModelResized()
{
    ctx_.rebuild();
    engine_.reset(model_.size());
    engine_.uploadParams(model_);
}

DensifyStats
NaiveOffloadTrainer::densifyNow()
{
    engine_.drain();
    return Trainer::densifyNow();
}

BatchStats
NaiveOffloadTrainer::trainBatch(const std::vector<int> &view_ids)
{
    noteBatchStart();
    BatchStats stats;
    size_t n = model_.size();

    // "Load ALL parameters" — the full CPU->GPU copy of Figure 3, as one
    // whole-model microbatch with caching disabled.
    std::vector<uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0u);
    CachePlan cache = planCache({all}, /*enable_cache=*/false);
    engine_.beginBatch({all}, std::move(cache), FinalizationSchedule{});
    DeviceBuffer &buf = engine_.acquire(0);
    ctx_.materialize(buf);

    // Train one view at a time with gradient accumulation into the
    // staging rows (the "GPU" working copy).
    std::vector<uint32_t> touched;
    for (int v : view_ids) {
        std::vector<uint32_t> subset = ctx_.cullView(cameras_[v]);
        stats.gaussians_rendered += subset.size();
        ctx_.scratchGrads().zeroRows(subset);
        stats.loss += renderAndBackprop(ctx_.scratch(), v, subset,
                                        ctx_.scratchGrads());
        accumulateGradRows(ctx_.scratchGrads(), buf, subset);
        touched.insert(touched.end(), subset.begin(), subset.end());
    }
    stats.loss /= view_ids.size();

    // "Store ALL gradients" — the full GPU->CPU scatter — then CPU Adam
    // on the master copy (sparse over touched Gaussians, the same rule
    // every trainer uses so trajectories are comparable).
    engine_.release(0);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    engine_.finalizeNow(std::move(touched));
    engine_.endBatch();

    // Figure 3 moves every Gaussian's full 59-parameter record in both
    // directions; the engine's record counters scale accordingly.
    const TransferEngine::Counters &c = engine_.counters();
    stats.h2d_bytes = static_cast<double>(c.records_loaded)
                      * kParamBytesPerGaussian;
    stats.d2h_bytes = static_cast<double>(c.records_stored)
                      * kParamBytesPerGaussian;
    stats.adam_updated = c.finalized;
    return stats;
}

} // namespace clm
