#include "train/naive_offload_trainer.hpp"

#include <algorithm>

#include "render/culling.hpp"

namespace clm {

NaiveOffloadTrainer::NaiveOffloadTrainer(GaussianModel model,
                                         std::vector<Camera> cameras,
                                         std::vector<Image> ground_truth,
                                         TrainConfig config)
    : Trainer(std::move(model), std::move(cameras),
              std::move(ground_truth), config)
{
    grads_.resize(model_.size());
}

BatchStats
NaiveOffloadTrainer::trainBatch(const std::vector<int> &view_ids)
{
    noteBatchStart();
    BatchStats stats;
    size_t n = model_.size();

    // "Load ALL parameters" — the full CPU->GPU copy of Figure 3.
    gpu_copy_ = model_;
    stats.h2d_bytes =
        static_cast<double>(n) * kParamBytesPerGaussian;

    grads_.zero();
    std::vector<uint32_t> touched;
    for (int v : view_ids) {
        auto subset = frustumCull(gpu_copy_, cameras_[v]);
        stats.gaussians_rendered += subset.size();
        stats.loss += renderAndBackprop(gpu_copy_, v, subset, grads_);
        touched.insert(touched.end(), subset.begin(), subset.end());
    }
    stats.loss /= view_ids.size();

    // "Store ALL gradients" — the full GPU->CPU copy.
    stats.d2h_bytes =
        static_cast<double>(n) * kParamBytesPerGaussian;

    // CPU Adam on the master copy (sparse over touched Gaussians, the
    // same rule every trainer uses so trajectories are comparable).
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    adam_.updateSubset(model_, grads_, touched);
    stats.adam_updated = touched.size();
    observeDensify(grads_);
    return stats;
}

} // namespace clm
