/**
 * @file
 * Quality-scaling harness (Figure 9): renders ground-truth images from a
 * reference model, then trains models of increasing capacity and reports
 * PSNR — the "larger models improve reconstruction quality" experiment,
 * scaled to CPU-feasible sizes.
 */

#ifndef CLM_TRAIN_QUALITY_HARNESS_HPP
#define CLM_TRAIN_QUALITY_HARNESS_HPP

#include <vector>

#include "scene/scene_spec.hpp"
#include "train/trainer.hpp"

namespace clm {

/** Sweep settings. */
struct QualityConfig
{
    /** Trainee model sizes (Gaussians); Figure 9 doubles them. */
    std::vector<size_t> model_sizes{1000, 2000, 4000, 8000};
    /** Ground-truth model size (the "scene"). */
    size_t gt_gaussians = 8000;
    /** Training steps per size. */
    int steps = 30;
    /** Training system to use (Figure 9 trains with CLM). */
    SystemKind system = SystemKind::Clm;
    TrainConfig train;
};

/** One point of the Figure 9 curve. */
struct QualityPoint
{
    size_t model_size = 0;
    double psnr_initial = 0;
    double psnr_final = 0;
    double loss_final = 0;
};

/**
 * Run the sweep on @p spec's train profile. The trainee of size k is
 * seeded with a k-subset of the ground-truth Gaussians (perturbed), so
 * capacity maps to representable detail exactly as in the paper.
 */
std::vector<QualityPoint> runQualitySweep(const SceneSpec &spec,
                                          const QualityConfig &config);

/** Render ground-truth images for @p cameras from @p gt_model. */
std::vector<Image> renderGroundTruth(const GaussianModel &gt_model,
                                     const std::vector<Camera> &cameras,
                                     const RenderConfig &render);

/**
 * Build a trainee of @p size from the ground truth: a subset of the GT
 * Gaussians with perturbed parameters (position jitter, flattened colors,
 * reduced opacity) so training has real work to do.
 */
GaussianModel makeTrainee(const GaussianModel &gt, size_t size,
                          uint64_t seed);

} // namespace clm

#endif // CLM_TRAIN_QUALITY_HARNESS_HPP
