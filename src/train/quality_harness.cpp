#include "train/quality_harness.hpp"

#include <algorithm>
#include <numeric>

#include "render/arena.hpp"
#include "render/culling.hpp"
#include "scene/camera_path.hpp"
#include "scene/synthetic.hpp"
#include "util/logging.hpp"

namespace clm {

std::vector<Image>
renderGroundTruth(const GaussianModel &gt_model,
                  const std::vector<Camera> &cameras,
                  const RenderConfig &render)
{
    std::vector<Image> images;
    images.reserve(cameras.size());
    RenderArena arena;    // reused across the whole sweep
    for (const Camera &cam : cameras) {
        auto subset = frustumCull(gt_model, cam);
        images.push_back(
            renderForward(gt_model, cam, subset, render, arena).image);
    }
    return images;
}

GaussianModel
makeTrainee(const GaussianModel &gt, size_t size, uint64_t seed)
{
    CLM_ASSERT(size > 0, "empty trainee");
    Rng rng(seed);
    GaussianModel m;

    // Deterministic stratified subset: every (n/size)-th GT Gaussian, so
    // small trainees still cover the whole scene.
    size_t n = gt.size();
    for (size_t k = 0; k < size; ++k) {
        size_t src = std::min(n - 1, k * n / size);
        m.append(gt.position(src), gt.logScale(src), gt.rotation(src),
                 gt.sh(src), gt.rawOpacity(src));
        size_t i = m.size() - 1;
        // Perturb so training must recover the scene.
        m.position(i) += rng.normal3({0, 0, 0}, 0.05f);
        float *sh = m.sh(i);
        for (int c = 0; c < 3; ++c)
            sh[c] = 0.6f * sh[c] + rng.normal(0.0f, 0.05f);
        m.rawOpacity(i) = gt.rawOpacity(src) - 0.5f;
    }
    return m;
}

std::vector<QualityPoint>
runQualitySweep(const SceneSpec &spec, const QualityConfig &config)
{
    GaussianModel gt = generateGroundTruth(spec, config.gt_gaussians);
    std::vector<Camera> cameras = trainCameras(spec);
    std::vector<Image> gt_images =
        renderGroundTruth(gt, cameras, config.train.render);

    std::vector<QualityPoint> points;
    for (size_t size : config.model_sizes) {
        GaussianModel trainee = makeTrainee(gt, size, spec.seed + size);
        auto trainer = makeTrainer(config.system, std::move(trainee),
                                   cameras, gt_images, config.train);
        QualityPoint p;
        p.model_size = size;
        p.psnr_initial = trainer->evaluatePsnr();
        auto stats = trainer->trainSteps(config.steps);
        p.psnr_final = trainer->evaluatePsnr();
        p.loss_final = stats.empty() ? 0.0 : stats.back().loss;
        points.push_back(p);
    }
    return points;
}

} // namespace clm
