#include "train/clm_trainer.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "render/culling.hpp"
#include "util/logging.hpp"

namespace clm {

void
packGradRecord(const GaussianGrads &grads, size_t i, float *out)
{
    out[0] = grads.d_position[i].x;
    out[1] = grads.d_position[i].y;
    out[2] = grads.d_position[i].z;
    out[3] = grads.d_log_scale[i].x;
    out[4] = grads.d_log_scale[i].y;
    out[5] = grads.d_log_scale[i].z;
    out[6] = grads.d_rotation[i].w;
    out[7] = grads.d_rotation[i].x;
    out[8] = grads.d_rotation[i].y;
    out[9] = grads.d_rotation[i].z;
    std::memcpy(out + kShOffset, &grads.d_sh[i * kShDim],
                kShDim * sizeof(float));
    out[kOpacityOffset] = grads.d_opacity[i];
}

void
unpackGradRecord(const float *in, GaussianGrads &grads, size_t i)
{
    grads.d_position[i] = {in[0], in[1], in[2]};
    grads.d_log_scale[i] = {in[3], in[4], in[5]};
    grads.d_rotation[i] = {in[6], in[7], in[8], in[9]};
    std::memcpy(&grads.d_sh[i * kShDim], in + kShOffset,
                kShDim * sizeof(float));
    grads.d_opacity[i] = in[kOpacityOffset];
}

ClmTrainer::ClmTrainer(GaussianModel model, std::vector<Camera> cameras,
                       std::vector<Image> ground_truth, TrainConfig config)
    : Trainer(std::move(model), std::move(cameras),
              std::move(ground_truth), config),
      pool_(model_.size()),
      critical_(model_.size() * kCriticalDim),
      gpu_scratch_(model_.size()),
      buffers_{DeviceBuffer(model_.size()), DeviceBuffer(model_.size())}
{
    if (config_.async_adam)
        adam_thread_ = std::thread([this] { adamThreadLoop(); });
    onModelResized();
}

void
ClmTrainer::onModelResized()
{
    // (Re)build the offload state for the current model topology.
    // Attribute-wise offload (§4.1): non-critical attributes go to pinned
    // CPU memory; critical attributes are resident on the "GPU".
    size_t n = model_.size();
    if (pool_.size() != n)
        pool_ = PinnedPool(n);
    critical_.assign(n * kCriticalDim, 0.0f);
    gpu_scratch_.resize(n);
    buffers_ = {DeviceBuffer(n), DeviceBuffer(n)};
    pool_.uploadParams(model_);
    pool_.zeroGradients();
    for (size_t i = 0; i < n; ++i) {
        model_.packCritical(i, &critical_[i * kCriticalDim]);
        // The scratch render model shares the critical attributes; its
        // non-critical rows are only valid while loaded.
        gpu_scratch_.unpackCritical(i, &critical_[i * kCriticalDim]);
    }
    scratch_grads_.resize(n);
    cpu_grads_.resize(n);
}

void
ClmTrainer::debugPoisonScratchNonCritical()
{
    float poison[kNonCriticalDim];
    for (int k = 0; k < kNonCriticalDim; ++k)
        poison[k] = std::numeric_limits<float>::quiet_NaN();
    for (size_t i = 0; i < gpu_scratch_.size(); ++i)
        gpu_scratch_.unpackNonCritical(i, poison);
}

DensifyStats
ClmTrainer::densifyNow()
{
    // The Adam thread holds references into the offload state; quiesce
    // it before restructuring (the real system synchronizes the stream
    // and the Adam thread before densification for the same reason).
    drainAdamThread();
    return Trainer::densifyNow();
}

ClmTrainer::~ClmTrainer()
{
    if (adam_thread_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(adam_mutex_);
            adam_stop_ = true;
        }
        adam_cv_.notify_all();
        adam_thread_.join();
    }
}

void
ClmTrainer::adamThreadLoop()
{
    for (;;) {
        AdamJob job;
        {
            std::unique_lock<std::mutex> lock(adam_mutex_);
            adam_cv_.wait(lock, [this] {
                return adam_stop_ || !adam_jobs_.empty();
            });
            if (adam_stop_ && adam_jobs_.empty())
                return;
            job = std::move(adam_jobs_.front());
            adam_jobs_.pop();
        }
        // Honour the §5.4 handshake: the communication "stream" set the
        // gradient-completion flag via DMA before enqueueing the job.
        uint32_t *signal = pool_.signalSlot(job.signal_slot);
        CLM_ASSERT(*signal == 1u, "adam thread woke before gradients");
        async_adam_updated_ += finalizeGaussians(job.fin);
        *signal = 0;
        {
            std::lock_guard<std::mutex> lock(adam_mutex_);
            --adam_pending_;
            if (adam_pending_ == 0)
                adam_cv_.notify_all();
        }
    }
}

void
ClmTrainer::dispatchFinalization(std::vector<uint32_t> fin, size_t slot,
                                 BatchStats &stats)
{
    if (fin.empty())
        return;
    if (!config_.async_adam) {
        stats.adam_updated += finalizeGaussians(fin);
        return;
    }
    // "DMA" the completion signal, then wake the Adam thread (§5.4).
    *pool_.signalSlot(slot) = 1;
    {
        std::lock_guard<std::mutex> lock(adam_mutex_);
        adam_jobs_.push(AdamJob{std::move(fin), slot});
        ++adam_pending_;
    }
    adam_cv_.notify_one();
}

void
ClmTrainer::drainAdamThread()
{
    if (!config_.async_adam)
        return;
    std::unique_lock<std::mutex> lock(adam_mutex_);
    adam_cv_.wait(lock, [this] { return adam_pending_ == 0; });
}

void
ClmTrainer::writeBackCritical(const std::vector<uint32_t> &indices)
{
    for (uint32_t g : indices) {
        model_.packCritical(g, &critical_[size_t(g) * kCriticalDim]);
        gpu_scratch_.unpackCritical(g,
                                    &critical_[size_t(g) * kCriticalDim]);
    }
}

size_t
ClmTrainer::finalizeGaussians(const std::vector<uint32_t> &fin)
{
    if (fin.empty())
        return 0;
    // Gradients for the finalized set are complete in pinned memory;
    // stage them and run subset Adam on the master copy (§4.2.2, §5.4).
    for (uint32_t g : fin)
        unpackGradRecord(pool_.gradRecord(g), cpu_grads_, g);
    if (densificationEnabled())
        for (uint32_t g : fin)
            densifier_.observeNorm(g, cpu_grads_.positionGradNorm(g));
    adam_.updateSubset(model_, cpu_grads_, fin);

    // Updated non-critical parameters become visible to future loads;
    // gradient records reset for the next batch.
    for (uint32_t g : fin) {
        model_.packNonCritical(g, pool_.paramRecord(g));
        std::memset(pool_.gradRecord(g), 0,
                    kParamsPerGaussian * sizeof(float));
    }
    // Updated critical attributes flow back to the GPU store (§4.1).
    writeBackCritical(fin);
    return fin.size();
}

BatchStats
ClmTrainer::trainBatch(const std::vector<int> &view_ids)
{
    noteBatchStart();
    BatchStats stats;
    size_t b = view_ids.size();
    CLM_ASSERT(b > 0, "empty batch");

    // 1. Pre-rendering frustum culling from the packed critical store.
    BatchWorkload wl;
    wl.sets.reserve(b);
    wl.camera_centers.reserve(b);
    for (int v : view_ids) {
        wl.sets.push_back(frustumCullPacked(critical_.data(),
                                            model_.size(), cameras_[v]));
        wl.camera_centers.push_back(cameras_[v].eye());
    }
    wl.n_synthetic = model_.size();
    wl.n_target = static_cast<double>(model_.size());
    wl.pixels_per_view = cameras_[view_ids[0]].pixels();

    // 2. Plan: ordering, caching, finalization (§4.2).
    PlannerConfig pc = config_.planner;
    pc.system = SystemKind::Clm;
    last_plan_ = planBatch(pc, wl);
    const CachePlan &cache = last_plan_.cache;
    const FinalizationSchedule &fin = last_plan_.fin;

    // 3. Execute microbatches in planned order.
    for (size_t i = 0; i < b; ++i) {
        int view = view_ids[last_plan_.order[i]];
        const std::vector<uint32_t> &set =
            wl.sets[last_plan_.order[i]];
        const MicrobatchTransfers &t = cache.mb[i];

        DeviceBuffer &buf = buffers_[i % 2];
        DeviceBuffer &prev = buffers_[(i + 1) % 2];
        buf.bind(set);
        peak_buffer_rows_ = std::max(peak_buffer_rows_, buf.rows());

        // Selective load (PCIe) + cache copy (GPU-GPU) (§4.2.1, §5.2).
        gatherParams(pool_, buf, t.load_new);
        if (i > 0)
            copyCachedParams(prev, buf, t.copy_cached);
        stats.h2d_bytes += static_cast<double>(t.load_new.size())
                           * kNonCriticalBytesPerGaussian;
        stats.cache_hits += t.copy_cached.size();

        // Gradient buffer: zero, then take over carried accumulations
        // from the previous microbatch (§5.3).
        buf.zeroGrads();
        if (i > 0)
            accumulateCarriedGrads(prev, buf,
                                   cache.mb[i - 1].carry_grads);

        // Materialize render inputs for this subset.
        for (size_t r = 0; r < set.size(); ++r)
            gpu_scratch_.unpackNonCritical(set[r], buf.paramRow(r));

        // Forward + backward on the "GPU".
        scratch_grads_.zeroRows(set);
        stats.gaussians_rendered += set.size();
        stats.loss +=
            renderAndBackprop(gpu_scratch_, view, set, scratch_grads_);

        // Microbatch gradients into the device buffer rows.
        for (size_t r = 0; r < set.size(); ++r) {
            float rec[kParamsPerGaussian];
            packGradRecord(scratch_grads_, set[r], rec);
            float *row = buf.gradRow(r);
            for (int k = 0; k < kParamsPerGaussian; ++k)
                row[k] += rec[k];
        }

        // Selective RMW gradient offload for rows not needed next (§5.3).
        scatterAccumulateGrads(buf, pool_, t.store_grads);
        stats.d2h_bytes += static_cast<double>(t.store_grads.size())
                           * kGradBytesPerGaussian;

        // Overlapped CPU Adam: everything finalized by this microbatch
        // (inline, or handed to the dedicated Adam thread).
        dispatchFinalization(fin.finalized_after[i + 1], i % 64, stats);
    }

    // The batch completes only when the Adam thread has applied every
    // queued update (the next batch's culling must see them).
    drainAdamThread();
    stats.adam_updated += async_adam_updated_.exchange(0);

    stats.loss /= b;
    return stats;
}

} // namespace clm
