#include "train/clm_trainer.hpp"

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace clm {

namespace {

TransferEngineConfig
engineConfig(const TrainConfig &config)
{
    TransferEngineConfig ec;
    ec.prefetch = config.prefetch;
    ec.async_finalize = config.async_adam;
    return ec;
}

} // namespace

ClmTrainer::ClmTrainer(GaussianModel model, std::vector<Camera> cameras,
                       std::vector<Image> ground_truth, TrainConfig config)
    : Trainer(std::move(model), std::move(cameras),
              std::move(ground_truth), config),
      ctx_(model_, adam_, densifier_),
      engine_(model_.size(), engineConfig(config_))
{
    engine_.setFinalizeFn([this](const std::vector<uint32_t> &fin) {
        return ctx_.finalize(engine_.pool(), fin, densificationEnabled());
    });
    engine_.uploadParams(model_);
}

void
ClmTrainer::onModelResized()
{
    ctx_.rebuild();
    engine_.reset(model_.size());
    engine_.uploadParams(model_);
}

DensifyStats
ClmTrainer::densifyNow()
{
    // The finalization thread holds references into the offload state;
    // quiesce it before restructuring (the real system synchronizes the
    // stream and the Adam thread before densification for the same
    // reason).
    engine_.drain();
    return Trainer::densifyNow();
}

BatchStats
ClmTrainer::trainBatch(const std::vector<int> &view_ids)
{
    noteBatchStart();
    BatchStats stats;
    size_t b = view_ids.size();
    CLM_ASSERT(b > 0, "empty batch");

    // 1. Pre-rendering frustum culling (§5.1) + batch planning (§4.2):
    // ordering, caching, finalization — the Figure 13 scheduling stage.
    Timer sched;
    BatchWorkload wl = ctx_.buildWorkload(cameras_, view_ids);
    PlannerConfig pc = config_.planner;
    pc.system = SystemKind::Clm;
    const BatchPlanResult &plan = ctx_.planViews(pc, wl);
    engine_.addStageTime(TrainStage::Schedule, sched.seconds());

    // 2. Execute microbatches in planned order through the engine.
    engine_.beginBatch(ctx_.orderedSets(wl), plan.cache, plan.fin);
    for (size_t i = 0; i < b; ++i) {
        int view = view_ids[plan.order[i]];
        DeviceBuffer &buf = engine_.acquire(i);
        const std::vector<uint32_t> &set = buf.indices();

        // Materialize render inputs, then forward + backward.
        ctx_.materialize(buf);
        ctx_.scratchGrads().zeroRows(set);
        stats.gaussians_rendered += set.size();
        stats.loss += renderAndBackprop(ctx_.scratch(), view, set,
                                        ctx_.scratchGrads());

        // Microbatch gradients into the device buffer rows.
        accumulateGradRows(ctx_.scratchGrads(), buf);
        engine_.release(i);
    }
    // The batch completes only when the finalization thread has applied
    // every queued update (the next batch's culling must see them).
    engine_.endBatch();

    const TransferEngine::Counters &c = engine_.counters();
    stats.h2d_bytes = static_cast<double>(c.records_loaded)
                      * kNonCriticalBytesPerGaussian;
    stats.d2h_bytes =
        static_cast<double>(c.records_stored) * kGradBytesPerGaussian;
    stats.cache_hits = c.cache_hits;
    stats.adam_updated = c.finalized;
    stats.loss /= b;
    return stats;
}

} // namespace clm
