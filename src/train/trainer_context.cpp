#include "train/trainer_context.hpp"

#include <cstring>
#include <limits>

#include "render/culling.hpp"
#include "util/logging.hpp"

namespace clm {

TrainerContext::TrainerContext(GaussianModel &model, CpuAdam &adam,
                               Densifier &densifier)
    : model_(model), adam_(adam), densifier_(densifier)
{
    rebuild();
}

void
TrainerContext::rebuild()
{
    // Attribute-wise offload (§4.1): non-critical attributes live in the
    // engine's pinned pool; critical attributes are resident here.
    size_t n = model_.size();
    critical_.assign(n * kCriticalDim, 0.0f);
    scratch_.resize(n);
    for (size_t i = 0; i < n; ++i) {
        model_.packCritical(i, &critical_[i * kCriticalDim]);
        // The scratch render model shares the critical attributes; its
        // non-critical rows are only valid while materialized.
        scratch_.unpackCritical(i, &critical_[i * kCriticalDim]);
    }
    scratch_grads_.resize(n);
    cpu_grads_.resize(n);
}

std::vector<uint32_t>
TrainerContext::cullView(const Camera &camera) const
{
    return frustumCullPacked(critical_.data(), model_.size(), camera);
}

BatchWorkload
TrainerContext::buildWorkload(const std::vector<Camera> &cameras,
                              const std::vector<int> &view_ids) const
{
    CLM_ASSERT(!view_ids.empty(), "empty batch");
    BatchWorkload wl;
    wl.sets.reserve(view_ids.size());
    wl.camera_centers.reserve(view_ids.size());
    for (int v : view_ids) {
        wl.sets.push_back(cullView(cameras[v]));
        wl.camera_centers.push_back(cameras[v].eye());
    }
    wl.n_synthetic = model_.size();
    wl.n_target = static_cast<double>(model_.size());
    wl.pixels_per_view = cameras[view_ids[0]].pixels();
    return wl;
}

const BatchPlanResult &
TrainerContext::planViews(const PlannerConfig &config,
                          const BatchWorkload &workload)
{
    last_plan_ = planBatch(config, workload);
    return last_plan_;
}

std::vector<std::vector<uint32_t>>
TrainerContext::orderedSets(const BatchWorkload &workload) const
{
    std::vector<std::vector<uint32_t>> ordered;
    ordered.reserve(last_plan_.order.size());
    for (int o : last_plan_.order)
        ordered.push_back(workload.sets[o]);
    return ordered;
}

void
TrainerContext::materialize(const DeviceBuffer &buf)
{
    const std::vector<uint32_t> &set = buf.indices();
    for (size_t r = 0; r < set.size(); ++r)
        scratch_.unpackNonCritical(set[r], buf.paramRow(r));
}

void
TrainerContext::writeBackCritical(const std::vector<uint32_t> &indices)
{
    for (uint32_t g : indices) {
        model_.packCritical(g, &critical_[size_t(g) * kCriticalDim]);
        scratch_.unpackCritical(g, &critical_[size_t(g) * kCriticalDim]);
    }
}

size_t
TrainerContext::finalize(PinnedPool &pool,
                         const std::vector<uint32_t> &fin,
                         bool observe_densify)
{
    if (fin.empty())
        return 0;
    // Gradients for the finalized set are complete in pinned memory;
    // stage them and run subset Adam on the master copy (§4.2.2, §5.4).
    for (uint32_t g : fin)
        unpackGradRecord(pool.gradRecord(g), cpu_grads_, g);
    if (observe_densify)
        for (uint32_t g : fin)
            densifier_.observeNorm(g, cpu_grads_.positionGradNorm(g));
    adam_.updateSubset(model_, cpu_grads_, fin);

    // Updated non-critical parameters become visible to future loads;
    // gradient records reset for the next batch.
    for (uint32_t g : fin) {
        model_.packNonCritical(g, pool.paramRecord(g));
        std::memset(pool.gradRecord(g), 0,
                    kParamsPerGaussian * sizeof(float));
    }
    // Updated critical attributes flow back to the GPU store (§4.1).
    writeBackCritical(fin);
    return fin.size();
}

void
TrainerContext::debugPoisonScratchNonCritical()
{
    float poison[kNonCriticalDim];
    for (int k = 0; k < kNonCriticalDim; ++k)
        poison[k] = std::numeric_limits<float>::quiet_NaN();
    for (size_t i = 0; i < scratch_.size(); ++i)
        scratch_.unpackNonCritical(i, poison);
}

} // namespace clm
