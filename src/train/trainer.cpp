#include "train/trainer.hpp"

#include <algorithm>

#include "math/simd_backend.hpp"
#include "obs/trace.hpp"
#include "render/culling.hpp"
#include "serve/snapshot.hpp"
#include "shard/sharded_snapshot.hpp"
#include "train/clm_trainer.hpp"
#include "train/naive_offload_trainer.hpp"
#include "util/logging.hpp"

namespace clm {

Trainer::Trainer(GaussianModel model, std::vector<Camera> cameras,
                 std::vector<Image> ground_truth, TrainConfig config)
    : model_(std::move(model)), cameras_(std::move(cameras)),
      ground_truth_(std::move(ground_truth)), config_(config),
      adam_(config.adam), rng_(config.seed)
{
    CLM_ASSERT(cameras_.size() == ground_truth_.size(),
               "one ground-truth image per camera required");
    CLM_ASSERT(!cameras_.empty(), "need at least one view");
    adam_.reset(model_.size());
    // One startup line so training logs record which SIMD kernel table
    // the run dispatched to (CLM_SIMD can override the CPUID choice).
    static const bool logged_simd = [] {
        inform("render kernels: ", simdDispatchName(),
               " (build ", simdIsaName(), ")");
        return true;
    }();
    (void)logged_simd;
}

std::vector<BatchStats>
Trainer::trainSteps(int steps)
{
    std::vector<BatchStats> stats;
    stats.reserve(steps);
    for (int s = 0; s < steps; ++s) {
        std::vector<int> ids;
        ids.reserve(config_.batch_size);
        for (int b = 0; b < config_.batch_size; ++b)
            ids.push_back(static_cast<int>(
                rng_.uniformInt(0, cameras_.size() - 1)));
        stats.push_back(trainBatch(ids));
        // Step boundary: no batch is in flight, so the model is a
        // consistent state — safe to hand to concurrent readers.
        publishSnapshot();
    }
    return stats;
}

void
Trainer::setSnapshotSink(SnapshotSlot *slot)
{
    snapshot_sink_ = slot;
    publishSnapshot();    // readers get the pre-training state at once
}

void
Trainer::setShardedSink(ShardedSnapshotSlot *slot)
{
    CLM_ASSERT(slot == nullptr || snapshot_sink_ != nullptr,
               "sharded sink requires a snapshot sink (shards are "
               "carved from published ModelSnapshots)");
    sharded_sink_ = slot;
    // Seed from the already-published snapshot (setSnapshotSink
    // guarantees one exists) instead of republishing: the model hasn't
    // changed, so bumping the version here would only invalidate
    // snapshot-keyed serving caches and inflate served version spans.
    if (slot != nullptr)
        slot->publish(snapshot_sink_->acquire());
}

void
Trainer::publishSnapshot()
{
    // Unconditional: a reader attaching at ANY later point must find
    // the latest step's state, so every boundary republishes. The cost
    // (one model copy + hash) is small next to a training batch at the
    // session model sizes trainers run; skipping republishes while the
    // slot is idle would hand late-attaching readers a stale model.
    if (snapshot_sink_ != nullptr) {
        ScopedSpan span("train.publish");
        snapshot_sink_->publish(model(), batches_done_);
        // Sharded republish at the same point; the slot no-ops unless
        // the version advanced, so this re-partitions exactly once per
        // model change.
        if (sharded_sink_ != nullptr)
            sharded_sink_->publish(snapshot_sink_->acquire());
    }
}

double
Trainer::evaluatePsnr() const
{
    const GaussianModel &m = model();
    double acc = 0.0;
    for (size_t v = 0; v < cameras_.size(); ++v) {
        auto subset = frustumCull(m, cameras_[v]);
        const RenderOutput &out =
            renderForward(m, cameras_[v], subset, config_.render, arena_);
        acc += out.image.psnr(ground_truth_[v]);
    }
    return acc / cameras_.size();
}

void
Trainer::enableDensification(DensifyConfig config)
{
    densifier_ = Densifier(config);
    densifier_.reset(model_.size());
    densify_enabled_ = true;
}

void
Trainer::observeDensify(const GaussianGrads &grads)
{
    if (densify_enabled_)
        densifier_.observe(grads);
}

DensifyStats
Trainer::densifyNow()
{
    CLM_ASSERT(densify_enabled_, "enableDensification() first");
    DensifyStats stats = densifier_.densify(model_, adam_, rng_);
    onModelResized();
    // Densification restructures the model; republish so serving reads
    // the new topology instead of a retired snapshot for too long.
    publishSnapshot();
    return stats;
}

int
Trainer::activeShDegree() const
{
    if (config_.sh_degree_interval <= 0)
        return config_.render.sh_degree;
    return std::min(config_.render.sh_degree,
                    batches_done_ / config_.sh_degree_interval);
}

RenderConfig
Trainer::activeRenderConfig() const
{
    RenderConfig cfg = config_.render;
    cfg.sh_degree = activeShDegree();
    return cfg;
}

double
Trainer::renderAndBackprop(const GaussianModel &m, int v,
                           const std::vector<uint32_t> &subset,
                           GaussianGrads &grads)
{
    const Camera &cam = cameras_[v];
    RenderConfig render = activeRenderConfig();
    // StageClock: per-step spans (train.forward / train.loss /
    // train.backward) with zero cost when tracing is off.
    StageClock stage_clock;
    const RenderOutput &out =
        renderForward(m, cam, subset, render, arena_);
    stage_clock.lap("train.forward");
    Image d_image;
    LossResult loss = computeLoss(out.image, ground_truth_[v], &d_image,
                                  config_.loss, loss_scratch_);
    stage_clock.lap("train.loss");
    renderBackward(m, cam, render, out, d_image, grads, arena_);
    stage_clock.lap("train.backward");
    return loss.total;
}

GpuOnlyTrainer::GpuOnlyTrainer(GaussianModel model,
                               std::vector<Camera> cameras,
                               std::vector<Image> ground_truth,
                               TrainConfig config)
    : Trainer(std::move(model), std::move(cameras), std::move(ground_truth),
              config)
{
    grads_.resize(model_.size());
}

BatchStats
GpuOnlyTrainer::trainBatch(const std::vector<int> &view_ids)
{
    noteBatchStart();
    BatchStats stats;
    grads_.zero();

    std::vector<uint32_t> touched;
    if (config_.fused_batch && view_ids.size() > 1) {
        // Fused multi-view step: one batched cull, one fused forward
        // with retained staging, one fused backward. Bitwise identical
        // to the sequential loop below — per-view frames, gradients and
        // the Adam subset (the union IS sort+unique of the concatenated
        // subsets) all match, so the trajectory is unchanged.
        const size_t B = view_ids.size();
        RenderConfig render = activeRenderConfig();
        std::vector<Camera> cams;
        cams.reserve(B);
        for (int v : view_ids)
            cams.push_back(cameras_[v]);
        std::vector<std::vector<uint32_t>> subsets;
        StageClock stage_clock;
        frustumCullBatch(model_, cams, batch_arena_.cull, subsets,
                         render.parallel);
        batch_arena_.retain_staging = true;
        renderForwardBatch(model_, cams, subsets, render, batch_arena_);
        stage_clock.lap("train.forward");
        d_images_.resize(B);
        for (size_t i = 0; i < B; ++i) {
            stats.gaussians_rendered += subsets[i].size();
            LossResult loss = computeLoss(
                batch_arena_.views[i].out.image,
                ground_truth_[view_ids[i]], &d_images_[i], config_.loss,
                loss_scratch_);
            stats.loss += loss.total;
        }
        stage_clock.lap("train.loss");
        renderBackwardBatch(model_, cams, render, d_images_, grads_,
                            batch_arena_);
        stage_clock.lap("train.backward");
        touched = batch_arena_.union_indices;
    } else {
        for (int v : view_ids) {
            auto subset = frustumCull(model_, cameras_[v]);
            stats.gaussians_rendered += subset.size();
            stats.loss += renderAndBackprop(model_, v, subset, grads_);
            touched.insert(touched.end(), subset.begin(), subset.end());
        }
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
    }
    stats.loss /= view_ids.size();

    {
        ScopedSpan span("train.adam");
        adam_.updateSubset(model_, grads_, touched);
    }
    stats.adam_updated = touched.size();
    observeDensify(grads_);
    return stats;
}

std::unique_ptr<Trainer>
makeTrainer(SystemKind system, GaussianModel model,
            std::vector<Camera> cameras, std::vector<Image> ground_truth,
            TrainConfig config)
{
    switch (system) {
      case SystemKind::Baseline:
      case SystemKind::EnhancedBaseline:
        return std::make_unique<GpuOnlyTrainer>(
            std::move(model), std::move(cameras), std::move(ground_truth),
            config);
      case SystemKind::NaiveOffload:
        return std::make_unique<NaiveOffloadTrainer>(
            std::move(model), std::move(cameras), std::move(ground_truth),
            config);
      case SystemKind::Clm:
        return std::make_unique<ClmTrainer>(
            std::move(model), std::move(cameras), std::move(ground_truth),
            config);
    }
    CLM_PANIC("unreachable system kind");
}

} // namespace clm
