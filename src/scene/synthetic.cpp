#include "scene/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "math/rng.hpp"
#include "util/logging.hpp"

namespace clm {

namespace {

/** Sample one content position for the scene type. */
Vec3
samplePosition(const SceneSpec &spec, Rng &rng)
{
    const Vec3 &lo = spec.world_lo;
    const Vec3 &hi = spec.world_hi;
    Vec3 c = (lo + hi) * 0.5f;
    Vec3 ext = hi - lo;

    switch (spec.type) {
      case SceneType::Yard: {
        // Central object cluster, surrounding ground ring, and a far
        // background shell (trees/sky) — matching the unbounded
        // capture of Mip-NeRF-style yard scenes, where each orbit view
        // only covers a sector of the content.
        float u = rng.uniform();
        float min_ext = std::min(ext.x, ext.y);
        if (u < 0.30f) {
            return rng.normal3(c + Vec3{0, 0, 1.0f}, 0.14f * min_ext);
        }
        float ang = rng.uniform(0.0f, 6.2831853f);
        if (u < 0.75f) {
            float rad = rng.uniform(0.18f, 0.42f) * min_ext;
            return {c.x + rad * std::cos(ang), c.y + rad * std::sin(ang),
                    lo.z + rng.uniform(0.0f, 0.25f * ext.z)};
        }
        float rad = rng.uniform(0.42f, 0.5f) * min_ext;
        return {c.x + rad * std::cos(ang), c.y + rad * std::sin(ang),
                rng.uniform(lo.z, hi.z)};
      }
      case SceneType::Aerial: {
        // Terrain: uniform in plan, height from low-frequency bumps.
        float x = rng.uniform(lo.x, hi.x);
        float y = rng.uniform(lo.y, hi.y);
        float bump = 0.5f * (std::sin(0.21f * x) + std::cos(0.17f * y));
        float z = lo.z + (0.3f + 0.25f * bump + rng.uniform(0.0f, 0.3f))
                         * ext.z;
        return {x, y, std::clamp(z, lo.z, hi.z)};
      }
      case SceneType::Indoor: {
        // 4x4 grid of rooms; content hugs the rooms.
        int rx = static_cast<int>(rng.uniformInt(0, 3));
        int ry = static_cast<int>(rng.uniformInt(0, 3));
        float room_w = ext.x / 4.0f;
        float room_h = ext.y / 4.0f;
        Vec3 room_c{lo.x + (rx + 0.5f) * room_w,
                    lo.y + (ry + 0.5f) * room_h, c.z};
        return {rng.normal(room_c.x, 0.22f * room_w),
                rng.normal(room_c.y, 0.22f * room_h),
                rng.uniform(lo.z, hi.z)};
      }
      case SceneType::Street: {
        // Content along the long road band, denser near the roadside.
        float x = rng.uniform(lo.x, hi.x);
        float side = rng.uniform() < 0.5f ? -1.0f : 1.0f;
        float y = side * std::abs(rng.normal(0.0f, 0.35f * ext.y * 0.5f));
        y = std::clamp(y + c.y, lo.y, hi.y);
        return {x, y, rng.uniform(lo.z, hi.z)};
      }
      case SceneType::AerialCity: {
        // City blocks: a regular grid of buildings with street gaps.
        constexpr int kBlocks = 18;
        int bx = static_cast<int>(rng.uniformInt(0, kBlocks - 1));
        int by = static_cast<int>(rng.uniformInt(0, kBlocks - 1));
        float bw = ext.x / kBlocks;
        float bh = ext.y / kBlocks;
        Vec3 block_c{lo.x + (bx + 0.5f) * bw, lo.y + (by + 0.5f) * bh, 0};
        float x = rng.normal(block_c.x, 0.28f * bw);
        float y = rng.normal(block_c.y, 0.28f * bh);
        // Buildings of varying height per block.
        float height = (0.2f + 0.8f * ((bx * 7 + by * 13) % 10) / 10.0f)
                       * ext.z;
        float z = lo.z + rng.uniform(0.0f, height);
        return {std::clamp(x, lo.x, hi.x), std::clamp(y, lo.y, hi.y), z};
      }
    }
    return c;
}

/**
 * Heuristic per-Gaussian scale: neighbour spacing for n points spread over
 * the content volume, so a converged-looking reconstruction results.
 */
float
typicalScale(const SceneSpec &spec, size_t n)
{
    Vec3 ext = spec.world_hi - spec.world_lo;
    double volume = double(ext.x) * ext.y * std::max(ext.z, 1.0f);
    double spacing = std::cbrt(volume / std::max<size_t>(n, 1));
    return static_cast<float>(0.4 * spacing);
}

GaussianModel
generate(const SceneSpec &spec, size_t n, bool ground_truth)
{
    Rng rng(spec.seed + (ground_truth ? 0x6007 : 0));
    GaussianModel m;
    m.resize(n);
    float base_scale = typicalScale(spec, n);
    constexpr float kY0 = 0.28209479177387814f;

    for (size_t i = 0; i < n; ++i) {
        Vec3 pos = samplePosition(spec, rng);
        m.position(i) = pos;

        // Mildly anisotropic scales around the typical spacing.
        float ls = std::log(base_scale);
        m.logScale(i) = {ls + rng.normal(0.0f, 0.3f),
                         ls + rng.normal(0.0f, 0.3f),
                         ls + rng.normal(0.0f, 0.3f)};

        Vec3 axis{rng.normal(), rng.normal(), rng.normal()};
        if (axis.norm() < 1e-6f)
            axis = {0, 0, 1};
        m.rotation(i) =
            Quat::fromAxisAngle(axis, rng.uniform(0.0f, 3.1415926f));

        Vec3 color;
        if (ground_truth) {
            // Smooth color field over space + small per-splat detail.
            color = {
                0.5f + 0.35f * std::sin(0.35f * pos.x + 0.11f * pos.z),
                0.5f + 0.35f * std::sin(0.29f * pos.y + 1.7f),
                0.5f + 0.35f * std::sin(0.21f * (pos.x + pos.y)),
            };
            color += Vec3{rng.normal(0.0f, 0.05f), rng.normal(0.0f, 0.05f),
                          rng.normal(0.0f, 0.05f)};
            color = {std::clamp(color.x, 0.05f, 0.95f),
                     std::clamp(color.y, 0.05f, 0.95f),
                     std::clamp(color.z, 0.05f, 0.95f)};
        } else {
            color = {rng.uniform(0.1f, 0.9f), rng.uniform(0.1f, 0.9f),
                     rng.uniform(0.1f, 0.9f)};
        }
        float *sh = m.sh(i);
        sh[0] = (color.x - 0.5f) / kY0;
        sh[1] = (color.y - 0.5f) / kY0;
        sh[2] = (color.z - 0.5f) / kY0;

        float op = ground_truth ? rng.uniform(0.55f, 0.95f)
                                : rng.uniform(0.2f, 0.8f);
        m.rawOpacity(i) = inverseSigmoid(op);
    }
    return m;
}

} // namespace

GaussianModel
generateSceneGaussians(const SceneSpec &spec, size_t n)
{
    return generate(spec, n, false);
}

GaussianModel
generateGroundTruth(const SceneSpec &spec, size_t n)
{
    return generate(spec, n, true);
}

} // namespace clm
