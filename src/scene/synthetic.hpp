/**
 * @file
 * Procedural Gaussian-cloud generation per scene type. The generators place
 * Gaussians where the corresponding real dataset has content (central
 * object, terrain, rooms, street band, city blocks) so the per-view
 * in-frustum sets produced by culling have the same sparsity and overlap
 * structure as the paper's datasets (§3, Figure 5).
 */

#ifndef CLM_SCENE_SYNTHETIC_HPP
#define CLM_SCENE_SYNTHETIC_HPP

#include "gaussian/model.hpp"
#include "scene/scene_spec.hpp"

namespace clm {

/**
 * Generate @p n Gaussians for @p spec's world.
 *
 * The result is deterministic for a given (spec.seed, n).
 * Scales are sized so neighbouring Gaussians overlap slightly, as in a
 * converged reconstruction; opacities are mid-range.
 */
GaussianModel generateSceneGaussians(const SceneSpec &spec, size_t n);

/**
 * Generate a ground-truth model for quality experiments: same placement
 * distribution as generateSceneGaussians() but with spatially-coherent
 * colors (smooth color field plus per-Gaussian detail) and solid opacities,
 * so rendered images contain structure a trainee model must reproduce.
 */
GaussianModel generateGroundTruth(const SceneSpec &spec, size_t n);

} // namespace clm

#endif // CLM_SCENE_SYNTHETIC_HPP
