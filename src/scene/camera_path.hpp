/**
 * @file
 * Camera-trajectory generation per scene type. Paths reproduce the capture
 * patterns of the real datasets (orbit, lawnmower sweep, room visits,
 * street drive), which is what gives 3DGS training its spatial locality:
 * consecutive and nearby views share most of their in-frustum Gaussians.
 */

#ifndef CLM_SCENE_CAMERA_PATH_HPP
#define CLM_SCENE_CAMERA_PATH_HPP

#include <vector>

#include "render/camera.hpp"
#include "scene/scene_spec.hpp"

namespace clm {

/**
 * Generate @p n_views posed cameras for @p spec at the given resolution.
 *
 * The path visits the scene in capture order (the "Camera Order" of
 * Table 4 is meaningful for it); deterministic per spec.
 */
std::vector<Camera> generateCameraPath(const SceneSpec &spec, int n_views,
                                       int width, int height);

/** Convenience: the sim-profile path (spec.sim view count/resolution). */
std::vector<Camera> simCameras(const SceneSpec &spec);

/** Convenience: the train-profile path (spec.train count/resolution). */
std::vector<Camera> trainCameras(const SceneSpec &spec);

} // namespace clm

#endif // CLM_SCENE_CAMERA_PATH_HPP
