#include "scene/scene_spec.hpp"

#include "util/logging.hpp"

namespace clm {

SceneSpec
SceneSpec::bicycle()
{
    SceneSpec s;
    s.name = "Bicycle";
    s.type = SceneType::Yard;
    s.paper_images = 200;
    s.paper_width = 3840;
    s.paper_height = 2160;
    s.batch_size = 4;
    s.paper_gaussians_m = 9.0;
    s.paper_memory_gb = 10.0;
    s.mean_rho = 0.22;
    s.max_rho = 0.33;
    s.world_lo = {-10, -10, -2};
    s.world_hi = {10, 10, 8};
    s.camera_fov_y = 0.85f;
    s.camera_z_far = 11.0f;
    s.seed = 101;
    s.sim = {60000, 64, 3840, 2160};
    s.train = {4000, 24, 96, 54};
    return s;
}

SceneSpec
SceneSpec::rubble()
{
    SceneSpec s;
    s.name = "Rubble";
    s.type = SceneType::Aerial;
    s.paper_images = 1600;
    s.paper_width = 3840;
    s.paper_height = 2160;
    s.batch_size = 8;
    s.paper_gaussians_m = 40.0;
    s.paper_memory_gb = 50.0;
    s.mean_rho = 0.085;
    s.max_rho = 0.15;
    s.world_lo = {-30, -30, 0};
    s.world_hi = {30, 30, 4};
    s.camera_fov_y = 1.2f;
    s.camera_z_far = 80.0f;
    s.seed = 202;
    s.sim = {90000, 96, 3840, 2160};
    s.train = {6000, 32, 96, 54};
    return s;
}

SceneSpec
SceneSpec::alameda()
{
    SceneSpec s;
    s.name = "Alameda";
    s.type = SceneType::Indoor;
    s.paper_images = 1700;
    s.paper_width = 2048;
    s.paper_height = 1536;
    s.batch_size = 8;
    s.paper_gaussians_m = 45.0;
    s.paper_memory_gb = 60.0;
    s.mean_rho = 0.065;
    s.max_rho = 0.13;
    s.world_lo = {-20, -20, 0};
    s.world_hi = {20, 20, 3};
    s.camera_fov_y = 1.1f;
    s.camera_z_far = 14.0f;
    s.seed = 303;
    s.sim = {90000, 96, 2048, 1536};
    s.train = {6000, 32, 96, 72};
    return s;
}

SceneSpec
SceneSpec::ithaca()
{
    SceneSpec s;
    s.name = "Ithaca";
    s.type = SceneType::Street;
    s.paper_images = 8200;
    s.paper_width = 1920;
    s.paper_height = 1080;
    s.batch_size = 16;
    s.paper_gaussians_m = 70.0;
    s.paper_memory_gb = 80.0;
    s.mean_rho = 0.025;
    s.max_rho = 0.06;
    s.world_lo = {-400, -8, 0};
    s.world_hi = {400, 8, 6};
    s.camera_fov_y = 1.0f;
    s.camera_z_far = 25.0f;
    s.seed = 404;
    s.sim = {120000, 128, 1920, 1080};
    s.train = {6000, 40, 96, 54};
    return s;
}

SceneSpec
SceneSpec::bigCity()
{
    SceneSpec s;
    s.name = "BigCity";
    s.type = SceneType::AerialCity;
    s.paper_images = 60000;
    s.paper_width = 1920;
    s.paper_height = 1080;
    s.batch_size = 64;
    s.paper_gaussians_m = 100.0;
    s.paper_memory_gb = 110.0;
    s.mean_rho = 0.0039;
    s.max_rho = 0.0106;
    s.world_lo = {-300, -300, 0};
    s.world_hi = {300, 300, 10};
    s.camera_fov_y = 0.9f;
    s.camera_z_far = 120.0f;
    s.seed = 505;
    s.sim = {150000, 256, 1920, 1080};
    s.train = {8000, 48, 96, 54};
    return s;
}

std::vector<SceneSpec>
SceneSpec::all()
{
    return {bicycle(), rubble(), alameda(), ithaca(), bigCity()};
}

SceneSpec
SceneSpec::byName(const std::string &name)
{
    for (const SceneSpec &s : all())
        if (s.name == name)
            return s;
    CLM_FATAL("unknown scene: ", name);
}

} // namespace clm
