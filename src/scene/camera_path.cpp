#include "scene/camera_path.hpp"

#include <cmath>

#include "math/rng.hpp"
#include "util/logging.hpp"

namespace clm {

namespace {

constexpr float kTau = 6.2831853f;

Camera
makeLookAt(const SceneSpec &spec, const Vec3 &eye, const Vec3 &target,
           int w, int h)
{
    return Camera::lookAt(eye, target, {0, 0, 1}, w, h, spec.camera_fov_y,
                          0.05f, spec.camera_z_far);
}

} // namespace

std::vector<Camera>
generateCameraPath(const SceneSpec &spec, int n_views, int w, int h)
{
    CLM_ASSERT(n_views > 0, "need at least one view");
    std::vector<Camera> cams;
    cams.reserve(n_views);
    Rng rng(spec.seed ^ 0xCA3E7A);

    const Vec3 &lo = spec.world_lo;
    const Vec3 &hi = spec.world_hi;
    Vec3 c = (lo + hi) * 0.5f;
    Vec3 ext = hi - lo;

    switch (spec.type) {
      case SceneType::Yard: {
        // Orbit ring looking at the central object; small jitter mimics a
        // handheld capture.
        float radius = 0.46f * std::min(ext.x, ext.y);
        for (int i = 0; i < n_views; ++i) {
            float ang = kTau * i / n_views;
            Vec3 eye{c.x + radius * std::cos(ang),
                     c.y + radius * std::sin(ang),
                     c.z + 0.25f * ext.z + rng.uniform(-0.4f, 0.4f)};
            Vec3 tgt = c + Vec3{rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f), 0.5f};
            cams.push_back(makeLookAt(spec, eye, tgt, w, h));
        }
        break;
      }
      case SceneType::Aerial:
      case SceneType::AerialCity: {
        // Serpentine lawnmower sweep at constant altitude, looking down
        // with a slight forward tilt.
        int rows = std::max(1, static_cast<int>(std::sqrt(
                                   static_cast<float>(n_views))));
        int cols = (n_views + rows - 1) / rows;
        float alt = spec.type == SceneType::AerialCity
                        ? hi.z + 0.04f * std::min(ext.x, ext.y)
                        : hi.z + 0.18f * std::min(ext.x, ext.y);
        int produced = 0;
        for (int r = 0; r < rows && produced < n_views; ++r) {
            for (int k = 0; k < cols && produced < n_views; ++k) {
                int col = (r % 2 == 0) ? k : cols - 1 - k;    // serpentine
                float x = lo.x + ext.x * (col + 0.5f) / cols;
                float y = lo.y + ext.y * (r + 0.5f) / rows;
                Vec3 eye{x + rng.uniform(-0.5f, 0.5f),
                         y + rng.uniform(-0.5f, 0.5f), alt};
                float tilt = spec.type == SceneType::AerialCity
                                 ? 0.05f
                                 : 0.15f;
                Vec3 tgt{x + rng.uniform(-1.0f, 1.0f),
                         y + tilt * ext.y / rows, lo.z};
                cams.push_back(makeLookAt(spec, eye, tgt, w, h));
                ++produced;
            }
        }
        break;
      }
      case SceneType::Indoor: {
        // Visit the 4x4 room grid room by room; pan inside each room.
        int per_room = std::max(1, n_views / 16);
        int produced = 0;
        for (int ry = 0; ry < 4 && produced < n_views; ++ry) {
            for (int rxi = 0; rxi < 4 && produced < n_views; ++rxi) {
                int rx = (ry % 2 == 0) ? rxi : 3 - rxi;    // snake visit
                float room_w = ext.x / 4.0f;
                float room_h = ext.y / 4.0f;
                Vec3 rc{lo.x + (rx + 0.5f) * room_w,
                        lo.y + (ry + 0.5f) * room_h, c.z};
                for (int k = 0; k < per_room && produced < n_views; ++k) {
                    float ang = kTau * k / per_room;
                    Vec3 eye = rc + Vec3{rng.uniform(-0.15f, 0.15f) * room_w,
                                         rng.uniform(-0.15f, 0.15f) * room_h,
                                         0.0f};
                    Vec3 tgt = eye + Vec3{std::cos(ang), std::sin(ang), 0};
                    cams.push_back(makeLookAt(spec, eye, tgt, w, h));
                    ++produced;
                }
            }
        }
        while (produced < n_views) {    // remainder: corridor shots
            Vec3 eye{rng.uniform(lo.x, hi.x), rng.uniform(lo.y, hi.y), c.z};
            Vec3 tgt = eye + Vec3{rng.normal(), rng.normal(), 0};
            cams.push_back(makeLookAt(spec, eye, tgt, w, h));
            ++produced;
        }
        break;
      }
      case SceneType::Street: {
        // Drive down the road, camera facing forward with slight yaw.
        for (int i = 0; i < n_views; ++i) {
            float x = lo.x + ext.x * (i + 0.5f) / n_views;
            Vec3 eye{x, c.y + rng.uniform(-1.0f, 1.0f),
                     lo.z + 0.3f * ext.z};
            Vec3 tgt{x + 10.0f, c.y + rng.uniform(-2.0f, 2.0f),
                     lo.z + 0.3f * ext.z};
            cams.push_back(makeLookAt(spec, eye, tgt, w, h));
        }
        break;
      }
    }
    CLM_ASSERT(static_cast<int>(cams.size()) == n_views,
               "camera path generation under-produced");
    return cams;
}

std::vector<Camera>
simCameras(const SceneSpec &spec)
{
    return generateCameraPath(spec, spec.sim.n_views, spec.sim.width,
                              spec.sim.height);
}

std::vector<Camera>
trainCameras(const SceneSpec &spec)
{
    return generateCameraPath(spec, spec.train.n_views, spec.train.width,
                              spec.train.height);
}

} // namespace clm
