/**
 * @file
 * Scene specifications mirroring the paper's five evaluation datasets
 * (Tables 2 and 3): Bicycle (yard), Rubble (aerial), Alameda (indoor),
 * Ithaca365 (street) and MatrixCity BigCity (city-scale aerial).
 *
 * Each spec carries (a) the paper-reported workload statistics used by the
 * analytic memory/performance models at full scale, and (b) scaled-down
 * synthetic profiles used to *generate* a concrete scene + camera path with
 * the same sparsity and locality structure on CPU.
 */

#ifndef CLM_SCENE_SCENE_SPEC_HPP
#define CLM_SCENE_SCENE_SPEC_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "math/vec.hpp"

namespace clm {

/** The five scene topologies evaluated in the paper (Table 3). */
enum class SceneType
{
    Yard,        //!< Orbit around a central object (Bicycle).
    Aerial,      //!< Lawnmower sweep over terrain (Rubble).
    Indoor,      //!< Rooms and corridors (Alameda).
    Street,      //!< Long drive with forward camera (Ithaca365).
    AerialCity,  //!< City-scale aerial sweep (MatrixCity BigCity).
};

/** A concrete synthetic instantiation size for experiments. */
struct EvalProfile
{
    size_t n_gaussians = 0;    //!< Synthetic scene Gaussian count.
    int n_views = 0;           //!< Camera-path length.
    int width = 0;             //!< Render width (pixels).
    int height = 0;            //!< Render height (pixels).
};

/** Full description of one evaluation scene. */
struct SceneSpec
{
    std::string name;
    SceneType type = SceneType::Yard;

    /** @name Paper-reported full-scale workload (Tables 2 and 3) */
    /// @{
    int paper_images = 0;           //!< Training-view count.
    int paper_width = 0;            //!< Native image width.
    int paper_height = 0;           //!< Native image height.
    int batch_size = 0;             //!< Training batch size (Table 3).
    double paper_gaussians_m = 0;   //!< Gaussians for good quality (M).
    double paper_memory_gb = 0;     //!< Paper's memory-demand estimate.
    double mean_rho = 0;            //!< Mean per-view sparsity (§3/Fig 5).
    double max_rho = 0;             //!< Maximum per-view sparsity.
    /// @}

    /** @name Synthetic world geometry */
    /// @{
    Vec3 world_lo;                  //!< Scene bounding box, low corner.
    Vec3 world_hi;                  //!< Scene bounding box, high corner.
    float camera_fov_y = 1.0f;      //!< Vertical FoV (radians).
    float camera_z_far = 100.0f;    //!< Far plane (limits street/indoor).
    uint64_t seed = 1;              //!< Deterministic generation seed.
    /// @}

    /** Profile for planner/simulator experiments (no rendering). */
    EvalProfile sim;
    /** Profile for functional training/quality experiments. */
    EvalProfile train;

    /** @name Paper scene presets */
    /// @{
    static SceneSpec bicycle();
    static SceneSpec rubble();
    static SceneSpec alameda();
    static SceneSpec ithaca();
    static SceneSpec bigCity();
    /// @}

    /** All five presets in the paper's table order. */
    static std::vector<SceneSpec> all();

    /** Look up a preset by (case-sensitive) name. */
    static SceneSpec byName(const std::string &name);
};

} // namespace clm

#endif // CLM_SCENE_SCENE_SPEC_HPP
