/**
 * @file
 * Dense 2x2 / 3x3 / 4x4 matrix types (row-major) for projective geometry and
 * covariance manipulation in the splatting pipeline.
 */

#ifndef CLM_MATH_MAT_HPP
#define CLM_MATH_MAT_HPP

#include <array>
#include <cmath>

#include "math/vec.hpp"

namespace clm {

/** Symmetric-friendly 2x2 matrix used for projected (screen) covariances. */
struct Mat2
{
    // m[r][c]
    std::array<std::array<float, 2>, 2> m{{{0, 0}, {0, 0}}};

    static constexpr Mat2
    identity()
    {
        Mat2 r;
        r.m = {{{1, 0}, {0, 1}}};
        return r;
    }

    constexpr float det() const
    { return m[0][0] * m[1][1] - m[0][1] * m[1][0]; }

    /** Inverse; caller must ensure det() != 0. */
    Mat2
    inverse() const
    {
        float d = det();
        Mat2 r;
        r.m[0][0] = m[1][1] / d;
        r.m[0][1] = -m[0][1] / d;
        r.m[1][0] = -m[1][0] / d;
        r.m[1][1] = m[0][0] / d;
        return r;
    }

    constexpr Vec2
    mul(const Vec2 &v) const
    {
        return {m[0][0] * v.x + m[0][1] * v.y, m[1][0] * v.x + m[1][1] * v.y};
    }
};

/** Row-major 3x3 matrix. */
struct Mat3
{
    std::array<std::array<float, 3>, 3> m{};

    static Mat3
    identity()
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            r.m[i][i] = 1.0f;
        return r;
    }

    /** Diagonal matrix from a vector. */
    static Mat3
    diag(const Vec3 &d)
    {
        Mat3 r;
        r.m[0][0] = d.x;
        r.m[1][1] = d.y;
        r.m[2][2] = d.z;
        return r;
    }

    Vec3
    mul(const Vec3 &v) const
    {
        return {
            m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
        };
    }

    Mat3
    mul(const Mat3 &o) const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                for (int k = 0; k < 3; ++k)
                    r.m[i][j] += m[i][k] * o.m[k][j];
        return r;
    }

    Mat3
    transposed() const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[j][i];
        return r;
    }

    float
    det() const
    {
        return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
             - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
             + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    }
};

/** Row-major 4x4 matrix (view and projection transforms). */
struct Mat4
{
    std::array<std::array<float, 4>, 4> m{};

    static Mat4
    identity()
    {
        Mat4 r;
        for (int i = 0; i < 4; ++i)
            r.m[i][i] = 1.0f;
        return r;
    }

    Vec4
    mul(const Vec4 &v) const
    {
        Vec4 r;
        r.x = m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z + m[0][3] * v.w;
        r.y = m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z + m[1][3] * v.w;
        r.z = m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z + m[2][3] * v.w;
        r.w = m[3][0] * v.x + m[3][1] * v.y + m[3][2] * v.z + m[3][3] * v.w;
        return r;
    }

    Mat4
    mul(const Mat4 &o) const
    {
        Mat4 r;
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                for (int k = 0; k < 4; ++k)
                    r.m[i][j] += m[i][k] * o.m[k][j];
        return r;
    }

    /** Upper-left 3x3 block. */
    Mat3
    topLeft3() const
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[i][j];
        return r;
    }
};

} // namespace clm

#endif // CLM_MATH_MAT_HPP
