/**
 * @file
 * Real spherical harmonics up to degree 3 (16 basis functions). 3DGS stores
 * 16 RGB coefficients per Gaussian (48 floats) and evaluates the view-
 * dependent color as a function of the normalized view direction.
 */

#ifndef CLM_MATH_SH_HPP
#define CLM_MATH_SH_HPP

#include <array>

#include "math/vec.hpp"

namespace clm {

/** Number of SH basis functions at the maximum supported degree (3). */
constexpr int kShBasis = 16;

/** Number of SH coefficients per Gaussian (16 bases x RGB). */
constexpr int kShCoeffs = kShBasis * 3;

/**
 * Evaluate the 16 real SH basis functions at unit direction @p dir.
 *
 * @param dir Normalized view direction.
 * @return Basis values Y_0..Y_15 in standard (l,m) order.
 */
std::array<float, kShBasis> shBasis(const Vec3 &dir);

/**
 * Evaluate view-dependent RGB color from SH coefficients.
 *
 * Matches the reference 3DGS convention: color = 0.5 + sum_i Y_i * c_i,
 * clamped to be non-negative.
 *
 * @param coeffs 48 floats laid out as [basis][rgb].
 * @param dir Normalized direction from camera center to the Gaussian.
 * @param degree Active SH degree in [0, 3]; higher-degree coefficients are
 *               ignored (3DGS ramps the degree up during training).
 */
Vec3 shEvaluate(const float *coeffs, const Vec3 &dir, int degree = 3);

/**
 * Backward pass of shEvaluate: accumulate d(loss)/d(coeff) given
 * d(loss)/d(color). The clamp's sub-gradient is handled by the caller via
 * @p color_valid (per-channel: false where the forward clamped to zero).
 */
void shBackward(const Vec3 &dir, int degree, const Vec3 &d_color,
                const std::array<bool, 3> &color_valid, float *d_coeffs);

/**
 * Gradients of the 16 SH basis functions with respect to the (pre-
 * normalization-projection) direction components. Entry i is
 * (dY_i/dx, dY_i/dy, dY_i/dz) evaluated at @p dir.
 */
std::array<Vec3, kShBasis> shBasisGrad(const Vec3 &dir);

/** Number of basis functions active at @p degree (degree in [0,3]). */
constexpr int
shBasisCount(int degree)
{
    return (degree + 1) * (degree + 1);
}

} // namespace clm

#endif // CLM_MATH_SH_HPP
