#include "math/simd.hpp"

namespace clm {

const char *
simdIsaName()
{
#if defined(CLM_SIMD_ISA_AVX2)
    return "avx2";
#elif defined(CLM_SIMD_ISA_SSE2)
    return "sse2";
#elif defined(CLM_SIMD_ISA_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

} // namespace clm
