#include "math/simd.hpp"

#include <cstring>

#include "util/env.hpp"
#include "util/logging.hpp"

namespace clm {

const char *
simdBackendName(SimdBackend backend)
{
    switch (backend) {
    case SimdBackend::kAvx2:
        return "avx2";
    case SimdBackend::kSse2:
        return "sse2";
    case SimdBackend::kNeon:
        return "neon";
    case SimdBackend::kScalar:
        return "scalar";
    }
    return "scalar";
}

const char *
simdIsaName()
{
#if defined(CLM_SIMD_ISA_AVX2)
    return "avx2";
#elif defined(CLM_SIMD_ISA_SSE2)
    return "sse2";
#elif defined(CLM_SIMD_ISA_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

bool
simdBackendSupported(SimdBackend backend)
{
#ifdef CLM_DISABLE_SIMD
    // Scalar reference build: only the scalar table is compiled in.
    return backend == SimdBackend::kScalar;
#else
    switch (backend) {
    case SimdBackend::kScalar:
        return true;
    case SimdBackend::kSse2:
        // SSE2 is the x86-64 baseline; the SSE2 kernel TU is compiled
        // whenever the target is x86 with SSE2 available.
#if defined(__x86_64__) || (defined(__i386__) && defined(__SSE2__))
        return true;
#else
        return false;
#endif
    case SimdBackend::kNeon:
#if defined(__aarch64__) && defined(__ARM_NEON)
        return true;
#else
        return false;
#endif
    case SimdBackend::kAvx2:
        // The AVX2 kernel TU is compiled on every x86 build (under a
        // target pragma), so support is purely a CPUID question.
#if (defined(__x86_64__) || defined(__i386__)) \
    && (defined(__GNUC__) || defined(__clang__))
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    }
    return false;
#endif
}

SimdBackend
simdPreferredBackend()
{
    if (simdBackendSupported(SimdBackend::kAvx2))
        return SimdBackend::kAvx2;
    if (simdBackendSupported(SimdBackend::kSse2))
        return SimdBackend::kSse2;
    if (simdBackendSupported(SimdBackend::kNeon))
        return SimdBackend::kNeon;
    return SimdBackend::kScalar;
}

SimdBackend
simdResolveBackend(const char *token, SimdBackend preferred)
{
    if (!token)
        return preferred;
    SimdBackend requested;
    if (std::strcmp(token, "avx2") == 0)
        requested = SimdBackend::kAvx2;
    else if (std::strcmp(token, "sse2") == 0)
        requested = SimdBackend::kSse2;
    else if (std::strcmp(token, "neon") == 0)
        requested = SimdBackend::kNeon;
    else if (std::strcmp(token, "scalar") == 0)
        requested = SimdBackend::kScalar;
    else {
        // envChoice() already warned for CLM_SIMD; this guards direct
        // callers (tests) handing in arbitrary tokens.
        warn("unknown SIMD backend \"", token, "\"; using ",
             simdBackendName(preferred));
        return preferred;
    }
    if (!simdBackendSupported(requested)) {
        warn("CLM_SIMD=", token,
             " is not supported by this build/CPU; using ",
             simdBackendName(preferred));
        return preferred;
    }
    return requested;
}

SimdBackend
simdDispatchBackend()
{
    static const SimdBackend chosen = [] {
        static const char *const kChoices[] = {"avx2", "sse2", "neon",
                                               "scalar"};
        const char *token = envChoice("CLM_SIMD", kChoices, 4, nullptr);
        return simdResolveBackend(token, simdPreferredBackend());
    }();
    return chosen;
}

const char *
simdDispatchName()
{
    return simdBackendName(simdDispatchBackend());
}

} // namespace clm
