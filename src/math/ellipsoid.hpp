/**
 * @file
 * The 3-sigma ellipsoid of an anisotropic Gaussian and its (conservative)
 * frustum intersection test — the geometric core of selection (§4.1):
 * a Gaussian is in-frustum iff its 3-sigma ellipsoid intersects the frustum.
 */

#ifndef CLM_MATH_ELLIPSOID_HPP
#define CLM_MATH_ELLIPSOID_HPP

#include "math/frustum.hpp"
#include "math/quat.hpp"
#include "math/vec.hpp"

namespace clm {

/** Number of standard deviations used for selection, per the paper (§4.1). */
constexpr float kCullSigma = 3.0f;

/**
 * An ellipsoid { c + R diag(r) u : |u| <= 1 } with center c, rotation R
 * (from a quaternion) and per-axis radii r.
 */
struct Ellipsoid
{
    Vec3 center;
    Quat rotation;
    Vec3 radii;    //!< Semi-axes; for a Gaussian these are kCullSigma*scale.

    /** The 3-sigma ellipsoid of a Gaussian (scale given in std-devs). */
    static Ellipsoid
    fromGaussian(const Vec3 &pos, const Vec3 &scale, const Quat &rot,
                 float sigma = kCullSigma)
    {
        return {pos, rot, scale * sigma};
    }

    /** Radius of the bounding sphere (largest semi-axis). */
    float
    boundingRadius() const
    {
        float r = radii.x;
        if (radii.y > r)
            r = radii.y;
        if (radii.z > r)
            r = radii.z;
        return r;
    }

    /**
     * Support distance: the extent of the ellipsoid along unit direction
     * @p dir, i.e. max over the ellipsoid surface of dot(p - center, dir).
     * For an ellipsoid this is |diag(r) R^T dir|.
     */
    float supportDistance(const Vec3 &dir) const;

    /**
     * Exact plane-based frustum test: the ellipsoid is rejected iff it lies
     * strictly outside some frustum plane, using the support distance along
     * the plane normal. (Conservative for convex-region intersection, exact
     * per plane — matching production 3DGS cullers.)
     */
    bool intersectsFrustum(const Frustum &f) const;
};

} // namespace clm

#endif // CLM_MATH_ELLIPSOID_HPP
