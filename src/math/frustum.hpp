/**
 * @file
 * View frustum represented as six inward-facing planes, extracted from a
 * view-projection matrix. Used by the 3-sigma frustum culling step (§4.1).
 */

#ifndef CLM_MATH_FRUSTUM_HPP
#define CLM_MATH_FRUSTUM_HPP

#include <array>

#include "math/aabb.hpp"
#include "math/mat.hpp"
#include "math/vec.hpp"

namespace clm {

/** A plane n.p + d = 0 with the inside half-space n.p + d >= 0. */
struct Plane
{
    Vec3 n;    //!< Plane normal (not necessarily unit until normalize()).
    float d = 0.0f;

    /** Signed distance (in units of |n|) from @p p to the plane. */
    float signedDistance(const Vec3 &p) const { return n.dot(p) + d; }

    /** Scale so |n| == 1; required before using signedDistance metrically. */
    void
    normalize()
    {
        float len = n.norm();
        if (len > 0.0f) {
            n = n * (1.0f / len);
            d /= len;
        }
    }
};

/**
 * Six-plane view frustum. Plane order: left, right, bottom, top, near, far.
 */
class Frustum
{
  public:
    /**
     * Extract normalized frustum planes from a row-major view-projection
     * matrix using the Gribb-Hartmann method (clip-space convention
     * -w <= x,y,z <= w).
     */
    static Frustum fromViewProjection(const Mat4 &view_proj);

    /** True when @p p is inside or on all six planes. */
    bool contains(const Vec3 &p) const;

    /**
     * Conservative sphere test: true when the sphere of @p radius around
     * @p center intersects the frustum (possibly including some misses near
     * edges, as is standard for plane-based tests).
     */
    bool intersectsSphere(const Vec3 &center, float radius) const;

    /** Conservative AABB intersection test. */
    bool intersectsAabb(const Aabb &box) const;

    /** Access one of the six planes. */
    const Plane &plane(int i) const { return planes_[i]; }

  private:
    std::array<Plane, 6> planes_;
};

} // namespace clm

#endif // CLM_MATH_FRUSTUM_HPP
