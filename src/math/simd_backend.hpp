/**
 * @file
 * Runtime SIMD backend selection — the dispatch half of the SIMD layer,
 * deliberately free of intrinsics and of the F8 type so render headers
 * can depend on it without pulling vector code into every translation
 * unit (the per-ISA kernel TUs compile F8 under their own target
 * pragmas; see render/simd_kernels_*.cpp).
 *
 * One binary carries kernel tables for every backend its architecture
 * can express (x86-64: avx2 + sse2 + scalar; aarch64: neon + scalar);
 * at startup the best CPU-supported backend is picked in the order
 * AVX2 -> SSE2 -> NEON -> scalar. The CLM_SIMD environment variable
 * (avx2|sse2|neon|scalar) overrides the choice downward for testing —
 * an unsupported or malformed value warns and keeps the automatic
 * pick. Because every F8 backend runs the same IEEE op sequence,
 * switching backends never changes a single output bit, only speed;
 * CI runs the full test suite under forced CLM_SIMD=sse2/scalar to
 * hold that guarantee.
 *
 * -DCLM_DISABLE_SIMD=ON builds compile only the scalar table (and flip
 * RenderConfig::use_simd's default to false), reproducing the pre-SIMD
 * scalar reference bit for bit.
 */

#ifndef CLM_MATH_SIMD_BACKEND_HPP
#define CLM_MATH_SIMD_BACKEND_HPP

namespace clm {

/** True when built with -DCLM_DISABLE_SIMD=ON (scalar reference build). */
#ifdef CLM_DISABLE_SIMD
constexpr bool kSimdDisabled = true;
#else
constexpr bool kSimdDisabled = false;
#endif

/** The F8 implementations a binary can dispatch between. */
enum class SimdBackend
{
    kScalar = 0,
    kSse2,
    kNeon,
    kAvx2,
};

/** Number of SimdBackend values (for iteration in benches/tests). */
constexpr int kNumSimdBackends = 4;

/** "avx2", "sse2", "neon" or "scalar". */
const char *simdBackendName(SimdBackend backend);

/** Compile-time baseline backend name of F8 in ordinary (non-kernel)
 *  translation units: "avx2", "sse2", "neon" or "scalar". This is what
 *  the compiler flags picked (-march=native, -DCLM_DISABLE_SIMD), NOT
 *  the runtime dispatch choice — see simdDispatchName(). */
const char *simdIsaName();

/** Whether this build + CPU can run @p backend's kernel table. */
bool simdBackendSupported(SimdBackend backend);

/** Best CPU-supported backend: AVX2 -> SSE2 -> NEON -> scalar. */
SimdBackend simdPreferredBackend();

/**
 * The backend the kernel dispatch tables actually run: the preferred
 * backend unless CLM_SIMD forces another supported one. Resolved once
 * at first use and cached for the process lifetime.
 */
SimdBackend simdDispatchBackend();

/** simdBackendName(simdDispatchBackend()). */
const char *simdDispatchName();

/**
 * Pure resolution step behind simdDispatchBackend(), exposed for tests:
 * map a CLM_SIMD token (may be null = unset) onto a backend, warning
 * and falling back to @p preferred when the token is unknown or names
 * an unsupported backend.
 */
SimdBackend simdResolveBackend(const char *token, SimdBackend preferred);

} // namespace clm

#endif // CLM_MATH_SIMD_BACKEND_HPP
