#include "math/sh.hpp"

#include <algorithm>

namespace clm {

namespace {

// Real SH constants (standard 3DGS values).
constexpr float kC0 = 0.28209479177387814f;
constexpr float kC1 = 0.4886025119029199f;
constexpr float kC2[5] = {
    1.0925484305920792f, -1.0925484305920792f, 0.31539156525252005f,
    -1.0925484305920792f, 0.5462742152960396f,
};
constexpr float kC3[7] = {
    -0.5900435899266435f, 2.890611442640554f,  -0.4570457994644658f,
    0.3731763325901154f,  -0.4570457994644658f, 1.445305721320277f,
    -0.5900435899266435f,
};

} // namespace

std::array<float, kShBasis>
shBasis(const Vec3 &dir)
{
    float x = dir.x, y = dir.y, z = dir.z;
    float xx = x * x, yy = y * y, zz = z * z;
    float xy = x * y, yz = y * z, xz = x * z;

    std::array<float, kShBasis> b{};
    b[0] = kC0;
    b[1] = -kC1 * y;
    b[2] = kC1 * z;
    b[3] = -kC1 * x;
    b[4] = kC2[0] * xy;
    b[5] = kC2[1] * yz;
    b[6] = kC2[2] * (2.0f * zz - xx - yy);
    b[7] = kC2[3] * xz;
    b[8] = kC2[4] * (xx - yy);
    b[9] = kC3[0] * y * (3.0f * xx - yy);
    b[10] = kC3[1] * xy * z;
    b[11] = kC3[2] * y * (4.0f * zz - xx - yy);
    b[12] = kC3[3] * z * (2.0f * zz - 3.0f * xx - 3.0f * yy);
    b[13] = kC3[4] * x * (4.0f * zz - xx - yy);
    b[14] = kC3[5] * z * (xx - yy);
    b[15] = kC3[6] * x * (xx - 3.0f * yy);
    return b;
}

std::array<Vec3, kShBasis>
shBasisGrad(const Vec3 &dir)
{
    float x = dir.x, y = dir.y, z = dir.z;
    float xx = x * x, yy = y * y, zz = z * z;

    std::array<Vec3, kShBasis> g{};
    g[0] = {0, 0, 0};
    g[1] = {0, -kC1, 0};
    g[2] = {0, 0, kC1};
    g[3] = {-kC1, 0, 0};
    g[4] = {kC2[0] * y, kC2[0] * x, 0};
    g[5] = {0, kC2[1] * z, kC2[1] * y};
    g[6] = {-2 * kC2[2] * x, -2 * kC2[2] * y, 4 * kC2[2] * z};
    g[7] = {kC2[3] * z, 0, kC2[3] * x};
    g[8] = {2 * kC2[4] * x, -2 * kC2[4] * y, 0};
    g[9] = {kC3[0] * 6 * x * y, kC3[0] * (3 * xx - 3 * yy), 0};
    g[10] = {kC3[1] * y * z, kC3[1] * x * z, kC3[1] * x * y};
    g[11] = {-2 * kC3[2] * x * y, kC3[2] * (4 * zz - xx - 3 * yy),
             8 * kC3[2] * y * z};
    g[12] = {-6 * kC3[3] * x * z, -6 * kC3[3] * y * z,
             kC3[3] * (6 * zz - 3 * xx - 3 * yy)};
    g[13] = {kC3[4] * (4 * zz - 3 * xx - yy), -2 * kC3[4] * x * y,
             8 * kC3[4] * x * z};
    g[14] = {2 * kC3[5] * x * z, -2 * kC3[5] * y * z, kC3[5] * (xx - yy)};
    g[15] = {kC3[6] * (3 * xx - 3 * yy), -6 * kC3[6] * x * y, 0};
    return g;
}

Vec3
shEvaluate(const float *coeffs, const Vec3 &dir, int degree)
{
    auto basis = shBasis(dir);
    int nb = shBasisCount(std::clamp(degree, 0, 3));

    Vec3 c{0.0f, 0.0f, 0.0f};
    for (int i = 0; i < nb; ++i) {
        c.x += basis[i] * coeffs[i * 3 + 0];
        c.y += basis[i] * coeffs[i * 3 + 1];
        c.z += basis[i] * coeffs[i * 3 + 2];
    }
    c += Vec3{0.5f, 0.5f, 0.5f};
    return {std::max(c.x, 0.0f), std::max(c.y, 0.0f), std::max(c.z, 0.0f)};
}

void
shBackward(const Vec3 &dir, int degree, const Vec3 &d_color,
           const std::array<bool, 3> &color_valid, float *d_coeffs)
{
    auto basis = shBasis(dir);
    int nb = shBasisCount(std::clamp(degree, 0, 3));

    float dr = color_valid[0] ? d_color.x : 0.0f;
    float dg = color_valid[1] ? d_color.y : 0.0f;
    float db = color_valid[2] ? d_color.z : 0.0f;

    for (int i = 0; i < nb; ++i) {
        d_coeffs[i * 3 + 0] += basis[i] * dr;
        d_coeffs[i * 3 + 1] += basis[i] * dg;
        d_coeffs[i * 3 + 2] += basis[i] * db;
    }
}

} // namespace clm
