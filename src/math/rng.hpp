/**
 * @file
 * Deterministic pseudo-random number generation. All stochastic components
 * (scene synthesis, initialization, SGD view sampling, TSP restarts) draw
 * from seeded engines so every experiment is reproducible.
 */

#ifndef CLM_MATH_RNG_HPP
#define CLM_MATH_RNG_HPP

#include <cstdint>
#include <random>

#include "math/vec.hpp"

namespace clm {

/** Seeded RNG wrapper with the distributions the code base needs. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed) : engine_(seed) {}

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo = 0.0f, float hi = 1.0f)
    {
        return std::uniform_real_distribution<float>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] (inclusive). */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
    }

    /** Standard normal sample scaled by @p sigma around @p mu. */
    float
    normal(float mu = 0.0f, float sigma = 1.0f)
    {
        return std::normal_distribution<float>(mu, sigma)(engine_);
    }

    /** Uniform point in the axis-aligned box [lo, hi]^3. */
    Vec3
    uniformInBox(const Vec3 &lo, const Vec3 &hi)
    {
        return {uniform(lo.x, hi.x), uniform(lo.y, hi.y),
                uniform(lo.z, hi.z)};
    }

    /** Isotropic normal point around @p mu. */
    Vec3
    normal3(const Vec3 &mu, float sigma)
    {
        return {normal(mu.x, sigma), normal(mu.y, sigma),
                normal(mu.z, sigma)};
    }

    /** Underlying engine, for std::shuffle and friends. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace clm

#endif // CLM_MATH_RNG_HPP
