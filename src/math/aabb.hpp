/**
 * @file
 * Axis-aligned bounding box, used by the scene generators and as a
 * conservative bound in frustum-ellipsoid intersection tests.
 */

#ifndef CLM_MATH_AABB_HPP
#define CLM_MATH_AABB_HPP

#include <algorithm>
#include <limits>

#include "math/vec.hpp"

namespace clm {

/** Axis-aligned box [lo, hi]. An empty box has lo > hi. */
struct Aabb
{
    Vec3 lo{std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max()};
    Vec3 hi{std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest()};

    /** True when no point has been included. */
    bool
    empty() const
    {
        return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z;
    }

    /** Grow the box to include @p p. */
    void
    extend(const Vec3 &p)
    {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        lo.z = std::min(lo.z, p.z);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
        hi.z = std::max(hi.z, p.z);
    }

    /** Grow the box by @p r on every side. */
    void
    inflate(float r)
    {
        Vec3 d{r, r, r};
        lo -= d;
        hi += d;
    }

    Vec3 center() const { return (lo + hi) * 0.5f; }
    Vec3 extent() const { return hi - lo; }

    bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y
            && p.z >= lo.z && p.z <= hi.z;
    }
};

} // namespace clm

#endif // CLM_MATH_AABB_HPP
