#include "math/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hpp"

namespace clm {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++count_;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples))
{
    std::sort(sorted_.begin(), sorted_.end());
}

double
EmpiricalCdf::at(double x) const
{
    if (sorted_.empty())
        return 0.0;
    auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / sorted_.size();
}

double
EmpiricalCdf::percentile(double p) const
{
    // Empty and single-sample reservoirs are answered here rather than
    // asserted away: callers (ServeStats on a run that shed everything,
    // bench warmups) legitimately hit both.
    if (sorted_.empty())
        return 0.0;
    p = std::min(std::max(p, 0.0), 100.0);
    if (sorted_.size() == 1)
        return sorted_[0];
    double rank = (p / 100.0) * (sorted_.size() - 1);
    size_t lo = static_cast<size_t>(std::floor(rank));
    size_t hi = std::min(lo + 1, sorted_.size() - 1);
    double frac = rank - lo;
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>>
EmpiricalCdf::series(double lo, double hi, int points) const
{
    CLM_ASSERT(points >= 2, "series needs at least two points");
    std::vector<std::pair<double, double>> out;
    out.reserve(points);
    for (int i = 0; i < points; ++i) {
        double x = lo + (hi - lo) * i / (points - 1);
        out.emplace_back(x, at(x));
    }
    return out;
}

double
EmpiricalCdf::mean() const
{
    if (sorted_.empty())
        return 0.0;
    return std::accumulate(sorted_.begin(), sorted_.end(), 0.0)
         / sorted_.size();
}

} // namespace clm
