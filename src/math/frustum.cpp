#include "math/frustum.hpp"

namespace clm {

Frustum
Frustum::fromViewProjection(const Mat4 &vp)
{
    Frustum f;
    auto row = [&](int r) {
        return Vec4{vp.m[r][0], vp.m[r][1], vp.m[r][2], vp.m[r][3]};
    };
    Vec4 r0 = row(0), r1 = row(1), r2 = row(2), r3 = row(3);

    auto make = [](const Vec4 &v) {
        Plane p;
        p.n = v.xyz();
        p.d = v.w;
        p.normalize();
        return p;
    };

    f.planes_[0] = make(r3 + r0);          // left:   w + x >= 0
    f.planes_[1] = make(r3 + r0 * -1.0f);  // right:  w - x >= 0
    f.planes_[2] = make(r3 + r1);          // bottom: w + y >= 0
    f.planes_[3] = make(r3 + r1 * -1.0f);  // top:    w - y >= 0
    f.planes_[4] = make(r3 + r2);          // near:   w + z >= 0
    f.planes_[5] = make(r3 + r2 * -1.0f);  // far:    w - z >= 0
    return f;
}

bool
Frustum::contains(const Vec3 &p) const
{
    for (const auto &pl : planes_)
        if (pl.signedDistance(p) < 0.0f)
            return false;
    return true;
}

bool
Frustum::intersectsSphere(const Vec3 &center, float radius) const
{
    for (const auto &pl : planes_)
        if (pl.signedDistance(center) < -radius)
            return false;
    return true;
}

bool
Frustum::intersectsAabb(const Aabb &box) const
{
    for (const auto &pl : planes_) {
        // Most-positive vertex along the plane normal.
        Vec3 v{
            pl.n.x >= 0.0f ? box.hi.x : box.lo.x,
            pl.n.y >= 0.0f ? box.hi.y : box.lo.y,
            pl.n.z >= 0.0f ? box.hi.z : box.lo.z,
        };
        if (pl.signedDistance(v) < 0.0f)
            return false;
    }
    return true;
}

} // namespace clm
