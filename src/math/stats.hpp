/**
 * @file
 * Small statistics helpers used by the evaluation harnesses: running
 * mean/min/max, empirical CDFs (Figure 5, Figure 15) and percentiles.
 */

#ifndef CLM_MATH_STATS_HPP
#define CLM_MATH_STATS_HPP

#include <cstddef>
#include <vector>

namespace clm {

/** Streaming mean / min / max / count accumulator. */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    size_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Empirical cumulative distribution function over a sample set.
 * Mirrors the CDF plots in the paper (Figures 5 and 15).
 */
class EmpiricalCdf
{
  public:
    /** Build from samples (copied then sorted). */
    explicit EmpiricalCdf(std::vector<double> samples);

    /** Fraction of samples <= @p x, in [0, 1]. */
    double at(double x) const;

    /** The p-th percentile via linear interpolation. Total: an empty
     *  CDF answers 0, a single sample answers that sample, and p is
     *  clamped into [0, 100] — callers need not guard. */
    double percentile(double p) const;

    /**
     * Evaluate the CDF at @p points evenly spaced x positions spanning
     * [lo, hi]; returns (x, F(x)) pairs — the series a plot would draw.
     */
    std::vector<std::pair<double, double>>
    series(double lo, double hi, int points) const;

    size_t count() const { return sorted_.size(); }
    double min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
    double max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }
    double mean() const;

  private:
    std::vector<double> sorted_;
};

} // namespace clm

#endif // CLM_MATH_STATS_HPP
