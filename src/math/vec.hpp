/**
 * @file
 * Small fixed-size vector types used throughout the renderer and the
 * Gaussian model. Header-only for inlining in the rasterizer hot loops.
 */

#ifndef CLM_MATH_VEC_HPP
#define CLM_MATH_VEC_HPP

#include <cmath>

namespace clm {

/** 2-component float vector (pixel/screen space). */
struct Vec2
{
    float x = 0.0f;
    float y = 0.0f;

    constexpr Vec2() = default;
    constexpr Vec2(float x_, float y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
    Vec2 &operator+=(const Vec2 &o) { x += o.x; y += o.y; return *this; }

    constexpr float dot(const Vec2 &o) const { return x * o.x + y * o.y; }
    float norm() const { return std::sqrt(dot(*this)); }
};

/** 3-component float vector (world/camera space, RGB colors). */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(const Vec3 &o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3 &o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(float s) const
    { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    Vec3 &operator+=(const Vec3 &o)
    { x += o.x; y += o.y; z += o.z; return *this; }
    Vec3 &operator-=(const Vec3 &o)
    { x -= o.x; y -= o.y; z -= o.z; return *this; }
    Vec3 &operator*=(float s) { x *= s; y *= s; z *= s; return *this; }

    constexpr float dot(const Vec3 &o) const
    { return x * o.x + y * o.y + z * o.z; }

    constexpr Vec3
    cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    float norm() const { return std::sqrt(dot(*this)); }

    Vec3
    normalized() const
    {
        float n = norm();
        return n > 0.0f ? (*this) * (1.0f / n) : Vec3{0.0f, 0.0f, 0.0f};
    }

    /** Component-wise product (Hadamard). */
    constexpr Vec3 cwiseMul(const Vec3 &o) const
    { return {x * o.x, y * o.y, z * o.z}; }

    float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
};

inline constexpr Vec3 operator*(float s, const Vec3 &v) { return v * s; }
inline constexpr Vec2 operator*(float s, const Vec2 &v) { return v * s; }

/** 4-component float vector (homogeneous coordinates, quaternions-as-data). */
struct Vec4
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;
    float w = 0.0f;

    constexpr Vec4() = default;
    constexpr Vec4(float x_, float y_, float z_, float w_)
        : x(x_), y(y_), z(z_), w(w_) {}

    constexpr Vec4 operator+(const Vec4 &o) const
    { return {x + o.x, y + o.y, z + o.z, w + o.w}; }
    constexpr Vec4 operator*(float s) const
    { return {x * s, y * s, z * s, w * s}; }

    constexpr float dot(const Vec4 &o) const
    { return x * o.x + y * o.y + z * o.z + w * o.w; }

    float norm() const { return std::sqrt(dot(*this)); }

    constexpr Vec3 xyz() const { return {x, y, z}; }
};

} // namespace clm

#endif // CLM_MATH_VEC_HPP
