/**
 * @file
 * Unit quaternion utilities. 3DGS stores each Gaussian's rotation as a
 * (w, x, y, z) quaternion; the covariance is R(q) diag(s)^2 R(q)^T.
 */

#ifndef CLM_MATH_QUAT_HPP
#define CLM_MATH_QUAT_HPP

#include <cmath>

#include "math/mat.hpp"
#include "math/vec.hpp"

namespace clm {

/** Quaternion in (w, x, y, z) order, matching the 3DGS parameter layout. */
struct Quat
{
    float w = 1.0f;
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Quat() = default;
    constexpr Quat(float w_, float x_, float y_, float z_)
        : w(w_), x(x_), y(y_), z(z_) {}

    /** Quaternion from an axis-angle rotation; @p axis need not be unit. */
    static Quat
    fromAxisAngle(const Vec3 &axis, float angle)
    {
        Vec3 a = axis.normalized();
        float h = 0.5f * angle;
        float s = std::sin(h);
        return {std::cos(h), a.x * s, a.y * s, a.z * s};
    }

    float norm() const { return std::sqrt(w * w + x * x + y * y + z * z); }

    Quat
    normalized() const
    {
        float n = norm();
        if (n <= 0.0f)
            return {1.0f, 0.0f, 0.0f, 0.0f};
        return {w / n, x / n, y / n, z / n};
    }

    /**
     * Rotation matrix of the *normalized* quaternion. The normalization is
     * folded in (as in the reference 3DGS kernels) so raw, unnormalized
     * parameters can be used directly.
     */
    Mat3
    toRotationMatrix() const
    {
        Quat q = normalized();
        float ww = q.w, xx = q.x, yy = q.y, zz = q.z;
        Mat3 r;
        r.m[0][0] = 1 - 2 * (yy * yy + zz * zz);
        r.m[0][1] = 2 * (xx * yy - ww * zz);
        r.m[0][2] = 2 * (xx * zz + ww * yy);
        r.m[1][0] = 2 * (xx * yy + ww * zz);
        r.m[1][1] = 1 - 2 * (xx * xx + zz * zz);
        r.m[1][2] = 2 * (yy * zz - ww * xx);
        r.m[2][0] = 2 * (xx * zz - ww * yy);
        r.m[2][1] = 2 * (yy * zz + ww * xx);
        r.m[2][2] = 1 - 2 * (xx * xx + yy * yy);
        return r;
    }
};

} // namespace clm

#endif // CLM_MATH_QUAT_HPP
