#include "math/ellipsoid.hpp"

namespace clm {

float
Ellipsoid::supportDistance(const Vec3 &dir) const
{
    Mat3 rt = rotation.toRotationMatrix().transposed();
    Vec3 local = rt.mul(dir);
    Vec3 scaled = local.cwiseMul(radii);
    return scaled.norm();
}

bool
Ellipsoid::intersectsFrustum(const Frustum &f) const
{
    for (int i = 0; i < 6; ++i) {
        const Plane &pl = f.plane(i);
        float dist = pl.signedDistance(center);
        if (dist < -supportDistance(pl.n))
            return false;
    }
    return true;
}

} // namespace clm
